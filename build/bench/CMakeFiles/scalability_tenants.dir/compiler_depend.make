# Empty compiler generated dependencies file for scalability_tenants.
# This may be replaced when dependencies are built.
