file(REMOVE_RECURSE
  "CMakeFiles/scalability_tenants.dir/scalability_tenants.cpp.o"
  "CMakeFiles/scalability_tenants.dir/scalability_tenants.cpp.o.d"
  "scalability_tenants"
  "scalability_tenants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_tenants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
