# Empty dependencies file for tab01_oversubscription.
# This may be replaced when dependencies are built.
