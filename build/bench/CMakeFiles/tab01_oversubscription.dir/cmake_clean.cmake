file(REMOVE_RECURSE
  "CMakeFiles/tab01_oversubscription.dir/tab01_oversubscription.cpp.o"
  "CMakeFiles/tab01_oversubscription.dir/tab01_oversubscription.cpp.o.d"
  "tab01_oversubscription"
  "tab01_oversubscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_oversubscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
