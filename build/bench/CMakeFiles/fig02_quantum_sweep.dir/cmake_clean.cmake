file(REMOVE_RECURSE
  "CMakeFiles/fig02_quantum_sweep.dir/fig02_quantum_sweep.cpp.o"
  "CMakeFiles/fig02_quantum_sweep.dir/fig02_quantum_sweep.cpp.o.d"
  "fig02_quantum_sweep"
  "fig02_quantum_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_quantum_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
