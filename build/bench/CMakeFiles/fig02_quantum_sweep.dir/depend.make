# Empty dependencies file for fig02_quantum_sweep.
# This may be replaced when dependencies are built.
