file(REMOVE_RECURSE
  "../lib/libpreempt_benchutil.a"
)
