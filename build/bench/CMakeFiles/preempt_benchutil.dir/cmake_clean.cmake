file(REMOVE_RECURSE
  "../lib/libpreempt_benchutil.a"
  "../lib/libpreempt_benchutil.pdb"
  "CMakeFiles/preempt_benchutil.dir/bench_util.cc.o"
  "CMakeFiles/preempt_benchutil.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preempt_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
