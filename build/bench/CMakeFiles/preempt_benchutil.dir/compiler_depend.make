# Empty compiler generated dependencies file for preempt_benchutil.
# This may be replaced when dependencies are built.
