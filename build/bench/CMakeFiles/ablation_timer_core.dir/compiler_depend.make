# Empty compiler generated dependencies file for ablation_timer_core.
# This may be replaced when dependencies are built.
