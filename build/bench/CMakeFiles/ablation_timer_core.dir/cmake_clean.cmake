file(REMOVE_RECURSE
  "CMakeFiles/ablation_timer_core.dir/ablation_timer_core.cpp.o"
  "CMakeFiles/ablation_timer_core.dir/ablation_timer_core.cpp.o.d"
  "ablation_timer_core"
  "ablation_timer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
