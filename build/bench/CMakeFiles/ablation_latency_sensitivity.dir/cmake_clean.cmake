file(REMOVE_RECURSE
  "CMakeFiles/ablation_latency_sensitivity.dir/ablation_latency_sensitivity.cpp.o"
  "CMakeFiles/ablation_latency_sensitivity.dir/ablation_latency_sensitivity.cpp.o.d"
  "ablation_latency_sensitivity"
  "ablation_latency_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latency_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
