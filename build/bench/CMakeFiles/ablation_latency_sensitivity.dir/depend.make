# Empty dependencies file for ablation_latency_sensitivity.
# This may be replaced when dependencies are built.
