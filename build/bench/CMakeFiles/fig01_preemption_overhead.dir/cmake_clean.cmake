file(REMOVE_RECURSE
  "CMakeFiles/fig01_preemption_overhead.dir/fig01_preemption_overhead.cpp.o"
  "CMakeFiles/fig01_preemption_overhead.dir/fig01_preemption_overhead.cpp.o.d"
  "fig01_preemption_overhead"
  "fig01_preemption_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_preemption_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
