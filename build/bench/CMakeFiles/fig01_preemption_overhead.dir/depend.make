# Empty dependencies file for fig01_preemption_overhead.
# This may be replaced when dependencies are built.
