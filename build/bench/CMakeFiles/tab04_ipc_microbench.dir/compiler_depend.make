# Empty compiler generated dependencies file for tab04_ipc_microbench.
# This may be replaced when dependencies are built.
