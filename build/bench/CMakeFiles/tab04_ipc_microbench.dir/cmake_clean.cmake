file(REMOVE_RECURSE
  "CMakeFiles/tab04_ipc_microbench.dir/tab04_ipc_microbench.cpp.o"
  "CMakeFiles/tab04_ipc_microbench.dir/tab04_ipc_microbench.cpp.o.d"
  "tab04_ipc_microbench"
  "tab04_ipc_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_ipc_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
