# Empty compiler generated dependencies file for ablation_timing_wheel.
# This may be replaced when dependencies are built.
