file(REMOVE_RECURSE
  "CMakeFiles/ablation_timing_wheel.dir/ablation_timing_wheel.cpp.o"
  "CMakeFiles/ablation_timing_wheel.dir/ablation_timing_wheel.cpp.o.d"
  "ablation_timing_wheel"
  "ablation_timing_wheel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timing_wheel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
