# Empty compiler generated dependencies file for fig01_ipc_gap.
# This may be replaced when dependencies are built.
