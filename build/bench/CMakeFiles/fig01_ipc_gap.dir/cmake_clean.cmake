file(REMOVE_RECURSE
  "CMakeFiles/fig01_ipc_gap.dir/fig01_ipc_gap.cpp.o"
  "CMakeFiles/fig01_ipc_gap.dir/fig01_ipc_gap.cpp.o.d"
  "fig01_ipc_gap"
  "fig01_ipc_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_ipc_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
