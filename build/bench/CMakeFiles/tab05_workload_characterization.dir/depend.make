# Empty dependencies file for tab05_workload_characterization.
# This may be replaced when dependencies are built.
