file(REMOVE_RECURSE
  "CMakeFiles/tab05_workload_characterization.dir/tab05_workload_characterization.cpp.o"
  "CMakeFiles/tab05_workload_characterization.dir/tab05_workload_characterization.cpp.o.d"
  "tab05_workload_characterization"
  "tab05_workload_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_workload_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
