file(REMOVE_RECURSE
  "CMakeFiles/fig10_rpc_overhead.dir/fig10_rpc_overhead.cpp.o"
  "CMakeFiles/fig10_rpc_overhead.dir/fig10_rpc_overhead.cpp.o.d"
  "fig10_rpc_overhead"
  "fig10_rpc_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rpc_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
