# Empty dependencies file for fig10_rpc_overhead.
# This may be replaced when dependencies are built.
