# Empty dependencies file for fig14_colocation_dynamic.
# This may be replaced when dependencies are built.
