file(REMOVE_RECURSE
  "CMakeFiles/fig14_colocation_dynamic.dir/fig14_colocation_dynamic.cpp.o"
  "CMakeFiles/fig14_colocation_dynamic.dir/fig14_colocation_dynamic.cpp.o.d"
  "fig14_colocation_dynamic"
  "fig14_colocation_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_colocation_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
