# Empty compiler generated dependencies file for fig12_timer_precision.
# This may be replaced when dependencies are built.
