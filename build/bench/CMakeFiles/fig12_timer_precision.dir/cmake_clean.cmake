file(REMOVE_RECURSE
  "CMakeFiles/fig12_timer_precision.dir/fig12_timer_precision.cpp.o"
  "CMakeFiles/fig12_timer_precision.dir/fig12_timer_precision.cpp.o.d"
  "fig12_timer_precision"
  "fig12_timer_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_timer_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
