file(REMOVE_RECURSE
  "CMakeFiles/fig09_adaptive_slo.dir/fig09_adaptive_slo.cpp.o"
  "CMakeFiles/fig09_adaptive_slo.dir/fig09_adaptive_slo.cpp.o.d"
  "fig09_adaptive_slo"
  "fig09_adaptive_slo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_adaptive_slo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
