# Empty compiler generated dependencies file for fig09_adaptive_slo.
# This may be replaced when dependencies are built.
