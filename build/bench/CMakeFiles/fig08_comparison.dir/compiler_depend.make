# Empty compiler generated dependencies file for fig08_comparison.
# This may be replaced when dependencies are built.
