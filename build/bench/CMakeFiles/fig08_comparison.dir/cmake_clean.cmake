file(REMOVE_RECURSE
  "CMakeFiles/fig08_comparison.dir/fig08_comparison.cpp.o"
  "CMakeFiles/fig08_comparison.dir/fig08_comparison.cpp.o.d"
  "fig08_comparison"
  "fig08_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
