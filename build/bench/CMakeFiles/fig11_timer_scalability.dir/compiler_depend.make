# Empty compiler generated dependencies file for fig11_timer_scalability.
# This may be replaced when dependencies are built.
