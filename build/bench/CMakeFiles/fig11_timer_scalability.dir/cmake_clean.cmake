file(REMOVE_RECURSE
  "CMakeFiles/fig11_timer_scalability.dir/fig11_timer_scalability.cpp.o"
  "CMakeFiles/fig11_timer_scalability.dir/fig11_timer_scalability.cpp.o.d"
  "fig11_timer_scalability"
  "fig11_timer_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_timer_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
