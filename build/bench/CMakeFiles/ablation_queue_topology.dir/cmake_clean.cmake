file(REMOVE_RECURSE
  "CMakeFiles/ablation_queue_topology.dir/ablation_queue_topology.cpp.o"
  "CMakeFiles/ablation_queue_topology.dir/ablation_queue_topology.cpp.o.d"
  "ablation_queue_topology"
  "ablation_queue_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queue_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
