# Empty dependencies file for ablation_queue_topology.
# This may be replaced when dependencies are built.
