file(REMOVE_RECURSE
  "CMakeFiles/ablation_work_stealing.dir/ablation_work_stealing.cpp.o"
  "CMakeFiles/ablation_work_stealing.dir/ablation_work_stealing.cpp.o.d"
  "ablation_work_stealing"
  "ablation_work_stealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_work_stealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
