# Empty compiler generated dependencies file for ablation_cancellation.
# This may be replaced when dependencies are built.
