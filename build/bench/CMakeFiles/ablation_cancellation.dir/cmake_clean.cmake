file(REMOVE_RECURSE
  "CMakeFiles/ablation_cancellation.dir/ablation_cancellation.cpp.o"
  "CMakeFiles/ablation_cancellation.dir/ablation_cancellation.cpp.o.d"
  "ablation_cancellation"
  "ablation_cancellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cancellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
