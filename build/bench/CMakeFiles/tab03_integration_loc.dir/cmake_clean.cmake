file(REMOVE_RECURSE
  "CMakeFiles/tab03_integration_loc.dir/tab03_integration_loc.cpp.o"
  "CMakeFiles/tab03_integration_loc.dir/tab03_integration_loc.cpp.o.d"
  "tab03_integration_loc"
  "tab03_integration_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_integration_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
