# Empty compiler generated dependencies file for tab03_integration_loc.
# This may be replaced when dependencies are built.
