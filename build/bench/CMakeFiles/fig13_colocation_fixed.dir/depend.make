# Empty dependencies file for fig13_colocation_fixed.
# This may be replaced when dependencies are built.
