file(REMOVE_RECURSE
  "CMakeFiles/fig13_colocation_fixed.dir/fig13_colocation_fixed.cpp.o"
  "CMakeFiles/fig13_colocation_fixed.dir/fig13_colocation_fixed.cpp.o.d"
  "fig13_colocation_fixed"
  "fig13_colocation_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_colocation_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
