# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_logging[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_histogram[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_containers[1]_include.cmake")
include("/root/repo/build/tests/test_cli_table[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_uintr_unit[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_machine[1]_include.cmake")
include("/root/repo/build/tests/test_quantum_controller[1]_include.cmake")
include("/root/repo/build/tests/test_timing_wheel[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_utimer_model[1]_include.cmake")
include("/root/repo/build/tests/test_libpreemptible_sim[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_preemptible_real[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_pool[1]_include.cmake")
include("/root/repo/build/tests/test_integration_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_oracles_features[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive_driver[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_ipc_model[1]_include.cmake")
include("/root/repo/build/tests/test_accounting_stress[1]_include.cmake")
