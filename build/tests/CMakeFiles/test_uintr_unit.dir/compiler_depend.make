# Empty compiler generated dependencies file for test_uintr_unit.
# This may be replaced when dependencies are built.
