file(REMOVE_RECURSE
  "CMakeFiles/test_uintr_unit.dir/test_uintr_unit.cc.o"
  "CMakeFiles/test_uintr_unit.dir/test_uintr_unit.cc.o.d"
  "test_uintr_unit"
  "test_uintr_unit.pdb"
  "test_uintr_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uintr_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
