# Empty dependencies file for test_integration_shapes.
# This may be replaced when dependencies are built.
