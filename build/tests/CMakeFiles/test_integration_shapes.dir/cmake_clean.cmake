file(REMOVE_RECURSE
  "CMakeFiles/test_integration_shapes.dir/test_integration_shapes.cc.o"
  "CMakeFiles/test_integration_shapes.dir/test_integration_shapes.cc.o.d"
  "test_integration_shapes"
  "test_integration_shapes.pdb"
  "test_integration_shapes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
