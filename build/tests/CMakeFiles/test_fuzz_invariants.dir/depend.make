# Empty dependencies file for test_fuzz_invariants.
# This may be replaced when dependencies are built.
