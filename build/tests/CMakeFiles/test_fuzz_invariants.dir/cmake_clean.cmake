file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_invariants.dir/test_fuzz_invariants.cc.o"
  "CMakeFiles/test_fuzz_invariants.dir/test_fuzz_invariants.cc.o.d"
  "test_fuzz_invariants"
  "test_fuzz_invariants.pdb"
  "test_fuzz_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
