# Empty dependencies file for test_libpreemptible_sim.
# This may be replaced when dependencies are built.
