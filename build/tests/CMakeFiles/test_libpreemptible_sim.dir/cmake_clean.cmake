file(REMOVE_RECURSE
  "CMakeFiles/test_libpreemptible_sim.dir/test_libpreemptible_sim.cc.o"
  "CMakeFiles/test_libpreemptible_sim.dir/test_libpreemptible_sim.cc.o.d"
  "test_libpreemptible_sim"
  "test_libpreemptible_sim.pdb"
  "test_libpreemptible_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_libpreemptible_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
