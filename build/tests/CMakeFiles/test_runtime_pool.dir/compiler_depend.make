# Empty compiler generated dependencies file for test_runtime_pool.
# This may be replaced when dependencies are built.
