file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_pool.dir/test_runtime_pool.cc.o"
  "CMakeFiles/test_runtime_pool.dir/test_runtime_pool.cc.o.d"
  "test_runtime_pool"
  "test_runtime_pool.pdb"
  "test_runtime_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
