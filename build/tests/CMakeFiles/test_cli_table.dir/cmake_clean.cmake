file(REMOVE_RECURSE
  "CMakeFiles/test_cli_table.dir/test_cli_table.cc.o"
  "CMakeFiles/test_cli_table.dir/test_cli_table.cc.o.d"
  "test_cli_table"
  "test_cli_table.pdb"
  "test_cli_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cli_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
