# Empty dependencies file for test_cli_table.
# This may be replaced when dependencies are built.
