# Empty compiler generated dependencies file for test_utimer_model.
# This may be replaced when dependencies are built.
