file(REMOVE_RECURSE
  "CMakeFiles/test_utimer_model.dir/test_utimer_model.cc.o"
  "CMakeFiles/test_utimer_model.dir/test_utimer_model.cc.o.d"
  "test_utimer_model"
  "test_utimer_model.pdb"
  "test_utimer_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_utimer_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
