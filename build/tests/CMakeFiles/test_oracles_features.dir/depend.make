# Empty dependencies file for test_oracles_features.
# This may be replaced when dependencies are built.
