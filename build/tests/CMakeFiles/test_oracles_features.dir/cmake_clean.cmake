file(REMOVE_RECURSE
  "CMakeFiles/test_oracles_features.dir/test_oracles_features.cc.o"
  "CMakeFiles/test_oracles_features.dir/test_oracles_features.cc.o.d"
  "test_oracles_features"
  "test_oracles_features.pdb"
  "test_oracles_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oracles_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
