# Empty dependencies file for test_quantum_controller.
# This may be replaced when dependencies are built.
