file(REMOVE_RECURSE
  "CMakeFiles/test_quantum_controller.dir/test_quantum_controller.cc.o"
  "CMakeFiles/test_quantum_controller.dir/test_quantum_controller.cc.o.d"
  "test_quantum_controller"
  "test_quantum_controller.pdb"
  "test_quantum_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantum_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
