file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_machine.dir/test_kernel_machine.cc.o"
  "CMakeFiles/test_kernel_machine.dir/test_kernel_machine.cc.o.d"
  "test_kernel_machine"
  "test_kernel_machine.pdb"
  "test_kernel_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
