# Empty dependencies file for test_adaptive_driver.
# This may be replaced when dependencies are built.
