file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_driver.dir/test_adaptive_driver.cc.o"
  "CMakeFiles/test_adaptive_driver.dir/test_adaptive_driver.cc.o.d"
  "test_adaptive_driver"
  "test_adaptive_driver.pdb"
  "test_adaptive_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
