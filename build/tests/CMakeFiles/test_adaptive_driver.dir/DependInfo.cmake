
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive_driver.cc" "tests/CMakeFiles/test_adaptive_driver.dir/test_adaptive_driver.cc.o" "gcc" "tests/CMakeFiles/test_adaptive_driver.dir/test_adaptive_driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/preempt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/preemptible/CMakeFiles/preemptible.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/preempt_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime_sim/CMakeFiles/preempt_runtime_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/preempt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/preempt_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/preempt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/preempt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/preempt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
