file(REMOVE_RECURSE
  "CMakeFiles/test_timing_wheel.dir/test_timing_wheel.cc.o"
  "CMakeFiles/test_timing_wheel.dir/test_timing_wheel.cc.o.d"
  "test_timing_wheel"
  "test_timing_wheel.pdb"
  "test_timing_wheel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_wheel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
