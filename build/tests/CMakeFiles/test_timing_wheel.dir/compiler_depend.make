# Empty compiler generated dependencies file for test_timing_wheel.
# This may be replaced when dependencies are built.
