file(REMOVE_RECURSE
  "CMakeFiles/test_preemptible_real.dir/test_preemptible_real.cc.o"
  "CMakeFiles/test_preemptible_real.dir/test_preemptible_real.cc.o.d"
  "test_preemptible_real"
  "test_preemptible_real.pdb"
  "test_preemptible_real[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preemptible_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
