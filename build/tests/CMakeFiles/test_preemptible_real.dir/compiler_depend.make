# Empty compiler generated dependencies file for test_preemptible_real.
# This may be replaced when dependencies are built.
