# Empty dependencies file for test_ipc_model.
# This may be replaced when dependencies are built.
