file(REMOVE_RECURSE
  "CMakeFiles/test_ipc_model.dir/test_ipc_model.cc.o"
  "CMakeFiles/test_ipc_model.dir/test_ipc_model.cc.o.d"
  "test_ipc_model"
  "test_ipc_model.pdb"
  "test_ipc_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
