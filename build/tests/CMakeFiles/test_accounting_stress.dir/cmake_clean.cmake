file(REMOVE_RECURSE
  "CMakeFiles/test_accounting_stress.dir/test_accounting_stress.cc.o"
  "CMakeFiles/test_accounting_stress.dir/test_accounting_stress.cc.o.d"
  "test_accounting_stress"
  "test_accounting_stress.pdb"
  "test_accounting_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accounting_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
