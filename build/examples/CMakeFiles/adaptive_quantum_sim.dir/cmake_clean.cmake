file(REMOVE_RECURSE
  "CMakeFiles/adaptive_quantum_sim.dir/adaptive_quantum_sim.cpp.o"
  "CMakeFiles/adaptive_quantum_sim.dir/adaptive_quantum_sim.cpp.o.d"
  "adaptive_quantum_sim"
  "adaptive_quantum_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_quantum_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
