# Empty compiler generated dependencies file for adaptive_quantum_sim.
# This may be replaced when dependencies are built.
