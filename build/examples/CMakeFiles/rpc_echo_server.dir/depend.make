# Empty dependencies file for rpc_echo_server.
# This may be replaced when dependencies are built.
