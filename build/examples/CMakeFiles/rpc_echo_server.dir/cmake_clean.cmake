file(REMOVE_RECURSE
  "CMakeFiles/rpc_echo_server.dir/rpc_echo_server.cpp.o"
  "CMakeFiles/rpc_echo_server.dir/rpc_echo_server.cpp.o.d"
  "rpc_echo_server"
  "rpc_echo_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_echo_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
