file(REMOVE_RECURSE
  "CMakeFiles/kv_colocation.dir/kv_colocation.cpp.o"
  "CMakeFiles/kv_colocation.dir/kv_colocation.cpp.o.d"
  "kv_colocation"
  "kv_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
