# Empty compiler generated dependencies file for kv_colocation.
# This may be replaced when dependencies are built.
