file(REMOVE_RECURSE
  "CMakeFiles/preemptible.dir/adaptive_driver.cc.o"
  "CMakeFiles/preemptible.dir/adaptive_driver.cc.o.d"
  "CMakeFiles/preemptible.dir/fcontext.cc.o"
  "CMakeFiles/preemptible.dir/fcontext.cc.o.d"
  "CMakeFiles/preemptible.dir/fcontext_x86_64.S.o"
  "CMakeFiles/preemptible.dir/preemptible_fn.cc.o"
  "CMakeFiles/preemptible.dir/preemptible_fn.cc.o.d"
  "CMakeFiles/preemptible.dir/runtime.cc.o"
  "CMakeFiles/preemptible.dir/runtime.cc.o.d"
  "CMakeFiles/preemptible.dir/stack_pool.cc.o"
  "CMakeFiles/preemptible.dir/stack_pool.cc.o.d"
  "CMakeFiles/preemptible.dir/uintr_syscalls.cc.o"
  "CMakeFiles/preemptible.dir/uintr_syscalls.cc.o.d"
  "CMakeFiles/preemptible.dir/utimer.cc.o"
  "CMakeFiles/preemptible.dir/utimer.cc.o.d"
  "libpreemptible.a"
  "libpreemptible.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/preemptible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
