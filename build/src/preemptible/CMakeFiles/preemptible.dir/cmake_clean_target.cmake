file(REMOVE_RECURSE
  "libpreemptible.a"
)
