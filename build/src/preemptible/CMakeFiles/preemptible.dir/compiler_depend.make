# Empty compiler generated dependencies file for preemptible.
# This may be replaced when dependencies are built.
