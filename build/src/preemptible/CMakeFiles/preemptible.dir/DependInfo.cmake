
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/preemptible/fcontext_x86_64.S" "/root/repo/build/src/preemptible/CMakeFiles/preemptible.dir/fcontext_x86_64.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/src"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/preemptible/adaptive_driver.cc" "src/preemptible/CMakeFiles/preemptible.dir/adaptive_driver.cc.o" "gcc" "src/preemptible/CMakeFiles/preemptible.dir/adaptive_driver.cc.o.d"
  "/root/repo/src/preemptible/fcontext.cc" "src/preemptible/CMakeFiles/preemptible.dir/fcontext.cc.o" "gcc" "src/preemptible/CMakeFiles/preemptible.dir/fcontext.cc.o.d"
  "/root/repo/src/preemptible/preemptible_fn.cc" "src/preemptible/CMakeFiles/preemptible.dir/preemptible_fn.cc.o" "gcc" "src/preemptible/CMakeFiles/preemptible.dir/preemptible_fn.cc.o.d"
  "/root/repo/src/preemptible/runtime.cc" "src/preemptible/CMakeFiles/preemptible.dir/runtime.cc.o" "gcc" "src/preemptible/CMakeFiles/preemptible.dir/runtime.cc.o.d"
  "/root/repo/src/preemptible/stack_pool.cc" "src/preemptible/CMakeFiles/preemptible.dir/stack_pool.cc.o" "gcc" "src/preemptible/CMakeFiles/preemptible.dir/stack_pool.cc.o.d"
  "/root/repo/src/preemptible/uintr_syscalls.cc" "src/preemptible/CMakeFiles/preemptible.dir/uintr_syscalls.cc.o" "gcc" "src/preemptible/CMakeFiles/preemptible.dir/uintr_syscalls.cc.o.d"
  "/root/repo/src/preemptible/utimer.cc" "src/preemptible/CMakeFiles/preemptible.dir/utimer.cc.o" "gcc" "src/preemptible/CMakeFiles/preemptible.dir/utimer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/preempt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/preempt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
