file(REMOVE_RECURSE
  "CMakeFiles/preempt_hw.dir/ipc.cc.o"
  "CMakeFiles/preempt_hw.dir/ipc.cc.o.d"
  "CMakeFiles/preempt_hw.dir/kernel.cc.o"
  "CMakeFiles/preempt_hw.dir/kernel.cc.o.d"
  "CMakeFiles/preempt_hw.dir/machine.cc.o"
  "CMakeFiles/preempt_hw.dir/machine.cc.o.d"
  "CMakeFiles/preempt_hw.dir/posted_ipi.cc.o"
  "CMakeFiles/preempt_hw.dir/posted_ipi.cc.o.d"
  "CMakeFiles/preempt_hw.dir/uintr.cc.o"
  "CMakeFiles/preempt_hw.dir/uintr.cc.o.d"
  "libpreempt_hw.a"
  "libpreempt_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preempt_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
