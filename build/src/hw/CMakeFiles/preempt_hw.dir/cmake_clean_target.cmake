file(REMOVE_RECURSE
  "libpreempt_hw.a"
)
