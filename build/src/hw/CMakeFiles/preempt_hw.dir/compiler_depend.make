# Empty compiler generated dependencies file for preempt_hw.
# This may be replaced when dependencies are built.
