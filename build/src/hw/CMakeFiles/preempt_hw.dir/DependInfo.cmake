
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/ipc.cc" "src/hw/CMakeFiles/preempt_hw.dir/ipc.cc.o" "gcc" "src/hw/CMakeFiles/preempt_hw.dir/ipc.cc.o.d"
  "/root/repo/src/hw/kernel.cc" "src/hw/CMakeFiles/preempt_hw.dir/kernel.cc.o" "gcc" "src/hw/CMakeFiles/preempt_hw.dir/kernel.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/hw/CMakeFiles/preempt_hw.dir/machine.cc.o" "gcc" "src/hw/CMakeFiles/preempt_hw.dir/machine.cc.o.d"
  "/root/repo/src/hw/posted_ipi.cc" "src/hw/CMakeFiles/preempt_hw.dir/posted_ipi.cc.o" "gcc" "src/hw/CMakeFiles/preempt_hw.dir/posted_ipi.cc.o.d"
  "/root/repo/src/hw/uintr.cc" "src/hw/CMakeFiles/preempt_hw.dir/uintr.cc.o" "gcc" "src/hw/CMakeFiles/preempt_hw.dir/uintr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/preempt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/preempt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
