# Empty dependencies file for preempt_core.
# This may be replaced when dependencies are built.
