
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/quantum_controller.cc" "src/core/CMakeFiles/preempt_core.dir/quantum_controller.cc.o" "gcc" "src/core/CMakeFiles/preempt_core.dir/quantum_controller.cc.o.d"
  "/root/repo/src/core/timing_wheel.cc" "src/core/CMakeFiles/preempt_core.dir/timing_wheel.cc.o" "gcc" "src/core/CMakeFiles/preempt_core.dir/timing_wheel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/preempt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
