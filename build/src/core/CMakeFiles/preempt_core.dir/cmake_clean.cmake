file(REMOVE_RECURSE
  "CMakeFiles/preempt_core.dir/quantum_controller.cc.o"
  "CMakeFiles/preempt_core.dir/quantum_controller.cc.o.d"
  "CMakeFiles/preempt_core.dir/timing_wheel.cc.o"
  "CMakeFiles/preempt_core.dir/timing_wheel.cc.o.d"
  "libpreempt_core.a"
  "libpreempt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preempt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
