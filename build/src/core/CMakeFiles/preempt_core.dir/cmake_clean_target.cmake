file(REMOVE_RECURSE
  "libpreempt_core.a"
)
