file(REMOVE_RECURSE
  "CMakeFiles/preempt_baselines.dir/libinger_sim.cc.o"
  "CMakeFiles/preempt_baselines.dir/libinger_sim.cc.o.d"
  "CMakeFiles/preempt_baselines.dir/oracle_sim.cc.o"
  "CMakeFiles/preempt_baselines.dir/oracle_sim.cc.o.d"
  "CMakeFiles/preempt_baselines.dir/shinjuku_sim.cc.o"
  "CMakeFiles/preempt_baselines.dir/shinjuku_sim.cc.o.d"
  "libpreempt_baselines.a"
  "libpreempt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preempt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
