file(REMOVE_RECURSE
  "libpreempt_baselines.a"
)
