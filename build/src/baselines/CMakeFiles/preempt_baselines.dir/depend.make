# Empty dependencies file for preempt_baselines.
# This may be replaced when dependencies are built.
