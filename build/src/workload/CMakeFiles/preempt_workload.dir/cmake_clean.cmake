file(REMOVE_RECURSE
  "CMakeFiles/preempt_workload.dir/generator.cc.o"
  "CMakeFiles/preempt_workload.dir/generator.cc.o.d"
  "CMakeFiles/preempt_workload.dir/loadsweep.cc.o"
  "CMakeFiles/preempt_workload.dir/loadsweep.cc.o.d"
  "CMakeFiles/preempt_workload.dir/spec.cc.o"
  "CMakeFiles/preempt_workload.dir/spec.cc.o.d"
  "CMakeFiles/preempt_workload.dir/trace.cc.o"
  "CMakeFiles/preempt_workload.dir/trace.cc.o.d"
  "libpreempt_workload.a"
  "libpreempt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preempt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
