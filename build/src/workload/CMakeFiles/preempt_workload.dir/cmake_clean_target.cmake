file(REMOVE_RECURSE
  "libpreempt_workload.a"
)
