# Empty compiler generated dependencies file for preempt_workload.
# This may be replaced when dependencies are built.
