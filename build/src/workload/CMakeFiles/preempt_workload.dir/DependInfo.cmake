
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/preempt_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/preempt_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/loadsweep.cc" "src/workload/CMakeFiles/preempt_workload.dir/loadsweep.cc.o" "gcc" "src/workload/CMakeFiles/preempt_workload.dir/loadsweep.cc.o.d"
  "/root/repo/src/workload/spec.cc" "src/workload/CMakeFiles/preempt_workload.dir/spec.cc.o" "gcc" "src/workload/CMakeFiles/preempt_workload.dir/spec.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/preempt_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/preempt_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/preempt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/preempt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
