# Empty compiler generated dependencies file for preempt_common.
# This may be replaced when dependencies are built.
