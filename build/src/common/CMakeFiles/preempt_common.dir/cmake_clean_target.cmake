file(REMOVE_RECURSE
  "libpreempt_common.a"
)
