file(REMOVE_RECURSE
  "CMakeFiles/preempt_common.dir/cli.cc.o"
  "CMakeFiles/preempt_common.dir/cli.cc.o.d"
  "CMakeFiles/preempt_common.dir/dist.cc.o"
  "CMakeFiles/preempt_common.dir/dist.cc.o.d"
  "CMakeFiles/preempt_common.dir/histogram.cc.o"
  "CMakeFiles/preempt_common.dir/histogram.cc.o.d"
  "CMakeFiles/preempt_common.dir/logging.cc.o"
  "CMakeFiles/preempt_common.dir/logging.cc.o.d"
  "CMakeFiles/preempt_common.dir/stats.cc.o"
  "CMakeFiles/preempt_common.dir/stats.cc.o.d"
  "CMakeFiles/preempt_common.dir/table.cc.o"
  "CMakeFiles/preempt_common.dir/table.cc.o.d"
  "libpreempt_common.a"
  "libpreempt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preempt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
