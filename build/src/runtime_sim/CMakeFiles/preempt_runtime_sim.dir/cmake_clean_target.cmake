file(REMOVE_RECURSE
  "libpreempt_runtime_sim.a"
)
