file(REMOVE_RECURSE
  "CMakeFiles/preempt_runtime_sim.dir/libpreemptible_sim.cc.o"
  "CMakeFiles/preempt_runtime_sim.dir/libpreemptible_sim.cc.o.d"
  "CMakeFiles/preempt_runtime_sim.dir/utimer_model.cc.o"
  "CMakeFiles/preempt_runtime_sim.dir/utimer_model.cc.o.d"
  "libpreempt_runtime_sim.a"
  "libpreempt_runtime_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preempt_runtime_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
