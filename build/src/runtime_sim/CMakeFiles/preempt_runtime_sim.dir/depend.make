# Empty dependencies file for preempt_runtime_sim.
# This may be replaced when dependencies are built.
