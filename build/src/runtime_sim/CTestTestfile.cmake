# CMake generated Testfile for 
# Source directory: /root/repo/src/runtime_sim
# Build directory: /root/repo/build/src/runtime_sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
