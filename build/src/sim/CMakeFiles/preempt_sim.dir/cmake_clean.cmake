file(REMOVE_RECURSE
  "CMakeFiles/preempt_sim.dir/event_queue.cc.o"
  "CMakeFiles/preempt_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/preempt_sim.dir/simulator.cc.o"
  "CMakeFiles/preempt_sim.dir/simulator.cc.o.d"
  "libpreempt_sim.a"
  "libpreempt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preempt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
