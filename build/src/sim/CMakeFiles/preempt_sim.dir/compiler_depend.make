# Empty compiler generated dependencies file for preempt_sim.
# This may be replaced when dependencies are built.
