file(REMOVE_RECURSE
  "libpreempt_sim.a"
)
