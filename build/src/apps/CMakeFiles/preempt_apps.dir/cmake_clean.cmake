file(REMOVE_RECURSE
  "CMakeFiles/preempt_apps.dir/compressor.cc.o"
  "CMakeFiles/preempt_apps.dir/compressor.cc.o.d"
  "CMakeFiles/preempt_apps.dir/kvstore.cc.o"
  "CMakeFiles/preempt_apps.dir/kvstore.cc.o.d"
  "CMakeFiles/preempt_apps.dir/rpc_model.cc.o"
  "CMakeFiles/preempt_apps.dir/rpc_model.cc.o.d"
  "libpreempt_apps.a"
  "libpreempt_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preempt_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
