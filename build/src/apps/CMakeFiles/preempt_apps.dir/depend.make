# Empty dependencies file for preempt_apps.
# This may be replaced when dependencies are built.
