file(REMOVE_RECURSE
  "libpreempt_apps.a"
)
