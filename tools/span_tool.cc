/**
 * @file
 * Offline task-span inspector: re-reads a --trace-out Chrome trace
 * file, folds the task-lifecycle records back into TaskSpans
 * (obs/spans.hh), verifies the exact scheduler-delay decomposition,
 * and prints a per-tenant delay-attribution table; --json writes the
 * same breakdown as machine-readable JSON ("preempt.spans.v2",
 * validated by tools/check_bench_json.py --spans). --window-us=N
 * additionally restricts a "window" copy of every per-tenant block to
 * the spans that finished in the last N us of the trace (anchored at
 * the latest span end), mirroring the live publisher's sliding-window
 * series; without the flag the window covers the whole trace.
 *
 * The parser targets this repository's own exporter output
 * (obs/export.cc): one event object per line, fixed key order. It is
 * not a general Chrome-trace reader.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <locale>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/time.hh"
#include "obs/export.hh"
#include "obs/spans.hh"
#include "obs/trace.hh"

using namespace preempt;

namespace {

/** kindName() reversed; unknown names return kCount. */
obs::EventKind
kindFromName(const std::string &name)
{
    for (std::uint16_t k = 0;
         k < static_cast<std::uint16_t>(obs::EventKind::kCount); ++k) {
        auto kind = static_cast<obs::EventKind>(k);
        if (name == obs::kindName(kind))
            return kind;
    }
    return obs::EventKind::kCount;
}

/** Extract the value following `"key": ` on an event line. */
bool
findValue(const std::string &line, const std::string &key,
          std::string &out)
{
    std::string needle = "\"" + key + "\": ";
    auto pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    auto end = pos;
    if (end < line.size() && line[end] == '"') {
        ++pos;
        end = line.find('"', pos);
        if (end == std::string::npos)
            return false;
    } else {
        while (end < line.size() && line[end] != ',' &&
               line[end] != '}')
            ++end;
    }
    out = line.substr(pos, end - pos);
    return true;
}

/** Exporter timestamps are fixed-point microseconds ("123.456"). */
std::uint64_t
parseTsNs(const std::string &us)
{
    auto dot = us.find('.');
    std::uint64_t whole =
        std::stoull(dot == std::string::npos ? us : us.substr(0, dot));
    std::uint64_t frac = 0;
    if (dot != std::string::npos) {
        std::string f = us.substr(dot + 1);
        f.resize(3, '0');
        frac = std::stoull(f);
    }
    return whole * 1000 + frac;
}

/** Parse every event line of an exporter trace into records. */
std::vector<obs::TraceRecord>
parseTrace(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open trace file '%s'", path.c_str());
    std::vector<obs::TraceRecord> records;
    std::string line;
    while (std::getline(in, line)) {
        std::string ph;
        if (!findValue(line, "ph", ph) || ph != "i")
            continue;
        std::string name, pid, tid, ts, id, a0, a1;
        if (!findValue(line, "name", name) ||
            !findValue(line, "pid", pid) ||
            !findValue(line, "tid", tid) ||
            !findValue(line, "ts", ts) || !findValue(line, "id", id) ||
            !findValue(line, "a0", a0) || !findValue(line, "a1", a1))
            continue;
        obs::EventKind kind = kindFromName(name);
        if (kind == obs::EventKind::kCount)
            continue;
        obs::TraceRecord rec;
        rec.ts = parseTsNs(ts);
        rec.kind = static_cast<std::uint16_t>(kind);
        rec.core = static_cast<std::uint16_t>(std::stoul(tid));
        rec.epoch = static_cast<std::uint32_t>(std::stoul(pid));
        rec.id = std::stoull(id);
        rec.a0 = std::stoull(a0);
        rec.a1 = std::stoull(a1);
        records.push_back(rec);
    }
    return records;
}

std::string
num(double v)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.precision(6);
    os << std::fixed << v;
    return os.str();
}

void
histJson(std::ostringstream &os, const LatencyHistogram &h)
{
    os << "{\"count\": " << h.count() << ", \"min\": " << h.min()
       << ", \"max\": " << h.max() << ", \"mean\": " << num(h.mean())
       << ", \"p50\": " << h.p50() << ", \"p90\": " << h.p90()
       << ", \"p99\": " << h.p99() << ", \"p999\": " << h.p999() << "}";
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    std::string tracePath = cli.getString("trace", "");
    std::string jsonPath = cli.getString("json", "");
    std::int64_t sloUs = cli.getInt("slo-us", 0);
    std::int64_t windowUs = cli.getInt("window-us", 0);
    bool perSpan = cli.getBool("spans", false);
    cli.rejectUnknown();
    fatal_if(tracePath.empty(),
             "usage: span_tool --trace=FILE [--json=OUT] [--slo-us=N] "
             "[--window-us=N] [--spans]");

    std::vector<obs::TraceRecord> records = parseTrace(tracePath);

    obs::SpanCollector::Anomalies anomalies;
    std::vector<obs::TaskSpan> spans =
        obs::buildSpans(records, &anomalies);

    std::uint64_t sloNs =
        sloUs > 0 ? static_cast<std::uint64_t>(
                        usToNs(static_cast<double>(sloUs)))
                  : 0;
    // Window anchor: the latest span end. --window-us=0 keeps every
    // span in the window, so "window" degenerates to the lifetime
    // block (same shape, easy downstream handling).
    std::uint64_t maxEnd = 0;
    for (const obs::TaskSpan &s : spans)
        maxEnd = std::max(maxEnd, s.endTs);
    std::uint64_t windowNs =
        windowUs > 0 ? static_cast<std::uint64_t>(
                           usToNs(static_cast<double>(windowUs)))
                     : 0;
    std::uint64_t windowStart =
        windowNs != 0 && maxEnd > windowNs ? maxEnd - windowNs : 0;

    std::uint64_t violations = 0;
    std::map<std::uint32_t, obs::SpanCollector::TenantStats> tenants;
    std::map<std::uint32_t, obs::SpanCollector::TenantStats> windowed;
    auto fold = [&](obs::SpanCollector::TenantStats &t,
                    const obs::TaskSpan &s, bool countSlo) {
        if (!s.completed) {
            ++t.cancelled;
            return;
        }
        ++t.completed;
        t.queued.record(s.breakdown.queuedNs);
        t.running.record(s.breakdown.runningNs);
        t.preempted.record(s.breakdown.preemptedNs);
        t.timerLag.record(s.breakdown.timerLagNs);
        t.total.record(s.latencyNs());
        if (sloNs != 0 && s.latencyNs() > sloNs) {
            ++t.violations;
            if (countSlo)
                ++violations;
        }
    };
    for (const obs::TaskSpan &s : spans) {
        fold(tenants[s.tenant], s, true);
        if (s.endTs >= windowStart)
            fold(windowed[s.tenant], s, false);
    }
    std::uint64_t invariantViolations = 0;
    for (const obs::TaskSpan &s : spans)
        if (!s.invariantHolds())
            ++invariantViolations;

    std::printf("trace: %zu records, %zu spans "
                "(%llu invariant violations, %llu anomalies)\n",
                records.size(), spans.size(),
                static_cast<unsigned long long>(invariantViolations),
                static_cast<unsigned long long>(anomalies.total()));

    ConsoleTable table("Per-tenant scheduler-delay attribution (mean "
                       "ns over completed spans)");
    table.header({"tenant", "spans", "queued", "running", "preempted",
                  "timer lag", "total p99"});
    for (const auto &[tenant, t] : tenants) {
        table.row({std::to_string(tenant),
                   std::to_string(t.completed),
                   ConsoleTable::num(t.queued.mean(), 0),
                   ConsoleTable::num(t.running.mean(), 0),
                   ConsoleTable::num(t.preempted.mean(), 0),
                   ConsoleTable::num(t.timerLag.mean(), 0),
                   std::to_string(t.total.p99())});
    }
    table.print();

    if (perSpan) {
        std::printf("\n%-8s %-6s %-4s %10s %10s %10s %10s %10s\n",
                    "id", "tenant", "segs", "queued", "running",
                    "preempted", "lag", "total");
        for (const obs::TaskSpan &s : spans) {
            std::printf(
                "%-8llu %-6u %-4u %10llu %10llu %10llu %10llu %10llu%s\n",
                static_cast<unsigned long long>(s.id), s.tenant,
                s.segments,
                static_cast<unsigned long long>(s.breakdown.queuedNs),
                static_cast<unsigned long long>(s.breakdown.runningNs),
                static_cast<unsigned long long>(
                    s.breakdown.preemptedNs),
                static_cast<unsigned long long>(s.breakdown.timerLagNs),
                static_cast<unsigned long long>(s.latencyNs()),
                s.completed ? "" : " (cancelled)");
        }
    }

    if (!jsonPath.empty()) {
        std::ostringstream os;
        os.imbue(std::locale::classic());
        os << "{\n  \"schema\": \"preempt.spans.v2\",\n";
        os << "  \"spans\": " << spans.size() << ",\n";
        os << "  \"window_us\": " << windowUs << ",\n";
        os << "  \"invariant_violations\": " << invariantViolations
           << ",\n";
        os << "  \"slo_violations\": " << violations << ",\n";
        os << "  \"anomalies\": {\"orphan_events\": "
           << anomalies.orphanEvents
           << ", \"clamped_times\": " << anomalies.clampedTimes
           << ", \"reopened_tasks\": " << anomalies.reopenedTasks
           << ", \"dangling_spans\": " << anomalies.danglingSpans
           << "},\n";
        os << "  \"tenants\": {";
        bool first = true;
        for (const auto &[tenant, t] : tenants) {
            os << (first ? "\n" : ",\n") << "    \"" << tenant
               << "\": {\"completed\": " << t.completed
               << ", \"cancelled\": " << t.cancelled
               << ", \"violations\": " << t.violations;
            auto field = [&](const char *name,
                             const LatencyHistogram &h) {
                os << ", \"" << name << "\": ";
                histJson(os, h);
            };
            field("queued", t.queued);
            field("running", t.running);
            field("preempted", t.preempted);
            field("timer_lag", t.timerLag);
            field("total", t.total);
            const auto &w = windowed[tenant];
            os << ", \"window\": {\"completed\": " << w.completed
               << ", \"cancelled\": " << w.cancelled
               << ", \"violations\": " << w.violations;
            field("queued", w.queued);
            field("running", w.running);
            field("preempted", w.preempted);
            field("timer_lag", w.timerLag);
            field("total", w.total);
            os << "}}";
            first = false;
        }
        os << (first ? "}\n" : "\n  }\n") << "}\n";

        std::string text = os.str();
        std::string err;
        fatal_if(!obs::validateJson(text, &err),
                 "span_tool emitted invalid JSON: %s", err.c_str());
        std::ofstream out(jsonPath);
        fatal_if(!out, "cannot open '%s'", jsonPath.c_str());
        out << text;
    }
    return invariantViolations == 0 ? 0 : 1;
}
