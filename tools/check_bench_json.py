#!/usr/bin/env python3
"""Validate a freshly generated BENCH_*.json against the checked-in
reference of the same bench.

The reference file acts as the schema: the generated file must contain
exactly the same keys with the same JSON shapes (objects, arrays,
numbers, strings). Every number must be finite, and any field that
names a ratio (speedup, *_ratio) must be strictly positive — a NaN or
zero there means the bench silently divided by a failed measurement.

Usage: check_bench_json.py GENERATED REFERENCE
"""

import json
import math
import sys


def fail(path, msg):
    raise SystemExit(f"schema check failed at {path or '<root>'}: {msg}")


def is_ratio_key(key):
    return key == "speedup" or key.endswith("_speedup") or \
        key.endswith("_ratio")


def check(gen, ref, path="", key=""):
    if isinstance(ref, dict):
        if not isinstance(gen, dict):
            fail(path, f"expected object, got {type(gen).__name__}")
        missing = sorted(ref.keys() - gen.keys())
        extra = sorted(gen.keys() - ref.keys())
        if missing:
            fail(path, f"missing keys {missing}")
        if extra:
            fail(path, f"unexpected keys {extra}")
        for k in ref:
            check(gen[k], ref[k], f"{path}.{k}" if path else k, k)
    elif isinstance(ref, list):
        if not isinstance(gen, list):
            fail(path, f"expected array, got {type(gen).__name__}")
        if not gen:
            fail(path, "array is empty")
        # Arrays are homogeneous: validate every element against the
        # reference's first element.
        for i, item in enumerate(gen):
            check(item, ref[0], f"{path}[{i}]", key)
    elif isinstance(ref, bool):
        if not isinstance(gen, bool):
            fail(path, f"expected bool, got {type(gen).__name__}")
    elif isinstance(ref, (int, float)):
        if isinstance(gen, bool) or not isinstance(gen, (int, float)):
            fail(path, f"expected number, got {type(gen).__name__}")
        if not math.isfinite(gen):
            fail(path, f"non-finite number {gen}")
        if is_ratio_key(key) and gen <= 0:
            fail(path, f"ratio must be > 0, got {gen}")
    elif isinstance(ref, str):
        if not isinstance(gen, str):
            fail(path, f"expected string, got {type(gen).__name__}")
    elif ref is None:
        if gen is not None:
            fail(path, f"expected null, got {type(gen).__name__}")
    else:
        fail(path, f"unhandled reference type {type(ref).__name__}")


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    generated, reference = sys.argv[1], sys.argv[2]
    with open(generated) as f:
        gen = json.load(f)
    with open(reference) as f:
        ref = json.load(f)
    check(gen, ref)
    bench = gen.get("bench", "?") if isinstance(gen, dict) else "?"
    print(f"{generated}: schema OK (bench={bench})")


if __name__ == "__main__":
    main()
