#!/usr/bin/env python3
"""Validate generated JSON artifacts.

Default mode compares a freshly generated BENCH_*.json against the
checked-in reference of the same bench. The reference file acts as the
schema: the generated file must contain exactly the same keys with the
same JSON shapes (objects, arrays, numbers, strings). Every number
must be finite, and any field that names a ratio (speedup, *_ratio)
must be strictly positive — a NaN or zero there means the bench
silently divided by a failed measurement.

Two schema-pinned modes validate the live-telemetry artifacts:

  --telemetry FILE   a TelemetryPublisher snapshot dump / HTTP
                     /metrics.json body (schema "preempt.telemetry.v1"
                     with the sliding-window fields: window_sec /
                     window_epochs, per-counter window_rate_per_sec
                     and resets, per-gauge window_watermark, and
                     per-tenant "window" span blocks)
  --spans FILE       a tools/span_tool --json export
                     (schema "preempt.spans.v2")

A third pinned mode validates the admission-control overload sweep:

  --admission FILE [--strict]
                     a bench/fig_admission --out file. Schema always;
                     --strict (used on the checked-in
                     BENCH_admission.json, i.e. a full-length run)
                     additionally enforces the acceptance bars: LC p99
                     with the policy ON at least 5x lower than OFF on
                     every overloaded point, admitted-BE throughput
                     degrading monotonically to a floor above 20% of
                     its knee.

Usage: check_bench_json.py GENERATED REFERENCE
       check_bench_json.py --telemetry FILE
       check_bench_json.py --spans FILE
       check_bench_json.py --admission FILE [--strict]
"""

import json
import math
import sys


def fail(path, msg):
    raise SystemExit(f"schema check failed at {path or '<root>'}: {msg}")


def is_ratio_key(key):
    return key == "speedup" or key.endswith("_speedup") or \
        key.endswith("_ratio")


def check(gen, ref, path="", key=""):
    if isinstance(ref, dict):
        if not isinstance(gen, dict):
            fail(path, f"expected object, got {type(gen).__name__}")
        missing = sorted(ref.keys() - gen.keys())
        extra = sorted(gen.keys() - ref.keys())
        if missing:
            fail(path, f"missing keys {missing}")
        if extra:
            fail(path, f"unexpected keys {extra}")
        for k in ref:
            check(gen[k], ref[k], f"{path}.{k}" if path else k, k)
    elif isinstance(ref, list):
        if not isinstance(gen, list):
            fail(path, f"expected array, got {type(gen).__name__}")
        if not gen:
            fail(path, "array is empty")
        # Arrays are homogeneous: validate every element against the
        # reference's first element.
        for i, item in enumerate(gen):
            check(item, ref[0], f"{path}[{i}]", key)
    elif isinstance(ref, bool):
        if not isinstance(gen, bool):
            fail(path, f"expected bool, got {type(gen).__name__}")
    elif isinstance(ref, (int, float)):
        if isinstance(gen, bool) or not isinstance(gen, (int, float)):
            fail(path, f"expected number, got {type(gen).__name__}")
        if not math.isfinite(gen):
            fail(path, f"non-finite number {gen}")
        if is_ratio_key(key) and gen <= 0:
            fail(path, f"ratio must be > 0, got {gen}")
    elif isinstance(ref, str):
        if not isinstance(gen, str):
            fail(path, f"expected string, got {type(gen).__name__}")
    elif ref is None:
        if gen is not None:
            fail(path, f"expected null, got {type(gen).__name__}")
    else:
        fail(path, f"unhandled reference type {type(ref).__name__}")


def expect(obj, path, keys_types):
    """Require obj to be a dict carrying exactly typed keys."""
    if not isinstance(obj, dict):
        fail(path, f"expected object, got {type(obj).__name__}")
    for k, types in keys_types.items():
        if k not in obj:
            fail(path, f"missing key '{k}'")
        v = obj[k]
        if isinstance(v, bool) or not isinstance(v, types):
            fail(f"{path}.{k}",
                 f"expected {types}, got {type(v).__name__}")
        if isinstance(v, (int, float)) and not math.isfinite(v):
            fail(f"{path}.{k}", f"non-finite number {v}")


QUANTILES = {"count": int, "min": (int, float), "max": (int, float),
             "mean": (int, float), "p50": (int, float),
             "p90": (int, float), "p99": (int, float),
             "p999": (int, float)}


def check_quantiles(obj, path):
    expect(obj, path, QUANTILES)
    if obj["count"] > 0 and obj["min"] > obj["max"]:
        fail(path, f"min {obj['min']} > max {obj['max']}")


def check_telemetry(path):
    with open(path) as f:
        snap = json.load(f)
    expect(snap, "", {
        "schema": str, "seq": int, "wall_ns": int, "mono_ns": int,
        "uptime_sec": (int, float), "interval_sec": (int, float),
        "window_sec": (int, float), "window_epochs": int,
        "checksum": str, "counters": dict, "gauges": dict,
        "timers": dict, "spans": dict,
    })
    if snap["schema"] != "preempt.telemetry.v1":
        fail("schema", f"expected preempt.telemetry.v1, "
                       f"got '{snap['schema']}'")
    if snap["seq"] < 1:
        fail("seq", "snapshot was never published (seq < 1)")
    if snap["window_epochs"] < 1:
        fail("window_epochs", "window ring must hold >= 1 epoch")
    try:
        int(snap["checksum"], 16)
    except ValueError:
        fail("checksum", f"not a hex string: '{snap['checksum']}'")
    for name, c in snap["counters"].items():
        expect(c, f"counters.{name}",
               {"value": int, "rate_per_sec": (int, float),
                "window_rate_per_sec": (int, float), "resets": int})
        if c["value"] < 0:
            fail(f"counters.{name}.value", "counter went negative")
    for name, g in snap["gauges"].items():
        expect(g, f"gauges.{name}",
               {"value": int, "watermark": int,
                "window_watermark": int})
    for name, t in snap["timers"].items():
        check_quantiles(t, f"timers.{name}")
        if "window" not in t:
            fail(f"timers.{name}", "missing sliding-window stats")
        check_quantiles(t["window"], f"timers.{name}.window")
        if t["window"]["count"] > t["count"]:
            fail(f"timers.{name}.window",
                 "window count exceeds lifetime count")
    spans = snap["spans"]
    expect(spans, "spans", {"invariant_violations": int,
                            "anomalies": int, "tenants": dict})

    def check_breakdown(t, tpath):
        expect(t, tpath, {"completed": int, "cancelled": int,
                          "violations": int})
        for part in ("queued", "running", "preempted", "timer_lag",
                     "total"):
            if part not in t:
                fail(tpath, f"missing breakdown '{part}'")
            check_quantiles(t[part], f"{tpath}.{part}")

    for tenant, t in spans["tenants"].items():
        tpath = f"spans.tenants.{tenant}"
        check_breakdown(t, tpath)
        if "window" not in t:
            fail(tpath, "missing sliding-window breakdown")
        check_breakdown(t["window"], f"{tpath}.window")
        if t["window"]["completed"] > t["completed"]:
            fail(f"{tpath}.window",
                 "window completed exceeds lifetime completed")
    print(f"{path}: telemetry snapshot OK (seq={snap['seq']}, "
          f"{len(snap['counters'])} counters, "
          f"{len(snap['gauges'])} gauges, "
          f"{len(snap['timers'])} timers, "
          f"{len(spans['tenants'])} tenants)")


def check_spans(path):
    with open(path) as f:
        doc = json.load(f)
    expect(doc, "", {"schema": str, "spans": int, "window_us": int,
                     "invariant_violations": int, "slo_violations": int,
                     "anomalies": dict, "tenants": dict})
    if doc["schema"] != "preempt.spans.v2":
        fail("schema",
             f"expected preempt.spans.v2, got '{doc['schema']}'")
    expect(doc["anomalies"], "anomalies",
           {"orphan_events": int, "clamped_times": int,
            "reopened_tasks": int, "dangling_spans": int})
    if doc["invariant_violations"] != 0:
        fail("invariant_violations",
             f"{doc['invariant_violations']} spans failed "
             "queued+running+preempted+timer_lag == latency")
    total = 0
    for tenant, t in doc["tenants"].items():
        tpath = f"tenants.{tenant}"
        expect(t, tpath, {"completed": int, "cancelled": int,
                          "violations": int, "window": dict})
        for part in ("queued", "running", "preempted", "timer_lag",
                     "total"):
            if part not in t:
                fail(tpath, f"missing breakdown '{part}'")
            check_quantiles(t[part], f"{tpath}.{part}")
        w = t["window"]
        wpath = f"{tpath}.window"
        expect(w, wpath, {"completed": int, "cancelled": int,
                          "violations": int})
        for part in ("queued", "running", "preempted", "timer_lag",
                     "total"):
            if part not in w:
                fail(wpath, f"missing breakdown '{part}'")
            check_quantiles(w[part], f"{wpath}.{part}")
        if w["completed"] > t["completed"]:
            fail(wpath, "window completed exceeds lifetime completed")
        total += t["completed"] + t["cancelled"]
    if total != doc["spans"]:
        fail("tenants", f"per-tenant spans sum to {total}, "
                        f"top-level says {doc['spans']}")
    print(f"{path}: span export OK ({doc['spans']} spans, "
          f"{len(doc['tenants'])} tenants, 0 invariant violations)")


ADMISSION_STATES = ("admit", "throttle", "shed_be", "shed_lc")


def check_admission(path, strict):
    with open(path) as f:
        doc = json.load(f)
    expect(doc, "", {
        "bench": str, "unit": str, "duration_ms": (int, float),
        "warmup_ms": (int, float), "overload_from_krps": (int, float),
        "lc_p99_min_off_on_ratio": (int, float),
        "be_floor_of_knee_ratio": (int, float), "results": list,
    })
    if doc["bench"] != "fig_admission":
        fail("bench", f"expected fig_admission, got '{doc['bench']}'")
    # expect() treats bools as non-numbers, so the flag is checked
    # by hand.
    if not isinstance(doc.get("be_admitted_monotone"), bool):
        fail("be_admitted_monotone", "expected bool")
    if not doc["results"]:
        fail("results", "array is empty")
    prev_krps = None
    overloaded = 0
    for i, r in enumerate(doc["results"]):
        rpath = f"results[{i}]"
        expect(r, rpath, {
            "krps": (int, float), "lc_p99_off_ns": int,
            "lc_p99_on_ns": int, "be_rps_off": (int, float),
            "be_rps_on": (int, float), "rejected_lc": int,
            "rejected_be": int, "state": str,
        })
        if r["state"] not in ADMISSION_STATES:
            fail(f"{rpath}.state", f"unknown state '{r['state']}'")
        if prev_krps is not None and r["krps"] <= prev_krps:
            fail(f"{rpath}.krps", "sweep loads must increase")
        prev_krps = r["krps"]
        if r["krps"] >= doc["overload_from_krps"]:
            overloaded += 1
    if overloaded == 0:
        fail("overload_from_krps", "no overloaded points in the sweep")
    if strict:
        ratio = doc["lc_p99_min_off_on_ratio"]
        if ratio < 5:
            fail("lc_p99_min_off_on_ratio",
                 f"admission must keep LC p99 >= 5x lower than the "
                 f"off leg on every overloaded point, got {ratio}")
        if not doc["be_admitted_monotone"]:
            fail("be_admitted_monotone",
                 "admitted-BE throughput regressed non-monotonically")
        floor = doc["be_floor_of_knee_ratio"]
        if floor <= 0.2:
            fail("be_floor_of_knee_ratio",
                 f"admitted-BE collapsed (floor {floor} of knee)")
        rejected = sum(r["rejected_lc"] + r["rejected_be"]
                       for r in doc["results"])
        if rejected == 0:
            fail("results", "overload shed nothing — policy inert?")
    mode = "strict acceptance" if strict else "schema"
    print(f"{path}: admission sweep {mode} OK "
          f"({len(doc['results'])} points, "
          f"min off/on ratio {doc['lc_p99_min_off_on_ratio']})")


def main():
    if sys.argv[1:2] == ["--admission"] and len(sys.argv) in (3, 4):
        if len(sys.argv) == 4 and sys.argv[3] != "--strict":
            raise SystemExit(__doc__)
        check_admission(sys.argv[2], strict=len(sys.argv) == 4)
        return
    if len(sys.argv) == 3 and sys.argv[1] == "--telemetry":
        check_telemetry(sys.argv[2])
        return
    if len(sys.argv) == 3 and sys.argv[1] == "--spans":
        check_spans(sys.argv[2])
        return
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    generated, reference = sys.argv[1], sys.argv[2]
    with open(generated) as f:
        gen = json.load(f)
    with open(reference) as f:
        ref = json.load(f)
    check(gen, ref)
    bench = gen.get("bench", "?") if isinstance(gen, dict) else "?"
    print(f"{generated}: schema OK (bench={bench})")


if __name__ == "__main__":
    main()
