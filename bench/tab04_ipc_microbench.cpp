/**
 * @file
 * Table IV: overhead of IPC / event-notification mechanisms, measured
 * with 1 M ping-pong notifications of 1-byte messages (the adapted
 * ipc-bench suite of the paper).
 *
 * Expected shape: uintrFd delivers ~10x lower average latency than the
 * fastest kernel mechanism (message queues) with a far higher
 * sustainable message rate; a blocked uintrFd receiver pays the
 * kernel-assisted wakeup (~2.4 us) but still beats every kernel path.
 */

#include <cstdio>

#include "common/cli.hh"
#include "obs/session.hh"
#include "common/table.hh"
#include "hw/ipc.hh"

using namespace preempt;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    std::uint64_t n = static_cast<std::uint64_t>(
        cli.getInt("messages", 1000000));
    std::uint64_t seed = static_cast<std::uint64_t>(cli.getInt("seed", 1));
    cli.rejectUnknown();

    hw::LatencyConfig cfg;
    ConsoleTable table("Table IV: IPC mechanism overhead (" +
                       std::to_string(n) + " messages)");
    table.header({"mechanism", "avg (us)", "min (us)", "std (us)",
                  "rate (msg/s)"});

    double fastest_kernel_avg = 0;
    double uintr_avg = 0;
    for (const auto &mech : hw::allIpcMechanisms(cfg)) {
        hw::IpcBenchResult r = hw::runIpcPingPong(mech, n, seed);
        table.row({r.name, ConsoleTable::num(r.avgUs, 3),
                   ConsoleTable::num(r.minUs, 3),
                   ConsoleTable::num(r.stdUs, 3),
                   ConsoleTable::num(r.rateMsgPerSec, 0)});
        if (mech.kind == hw::IpcKind::MessageQueue)
            fastest_kernel_avg = r.avgUs;
        if (mech.kind == hw::IpcKind::UintrFd)
            uintr_avg = r.avgUs;
    }
    table.print();
    if (uintr_avg > 0) {
        std::printf("\nuintrFd vs fastest kernel IPC (mq): %.1fx lower "
                    "average latency (paper: ~10x)\n",
                    fastest_kernel_avg / uintr_avg);
    }
    return 0;
}
