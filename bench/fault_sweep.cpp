/**
 * @file
 * Schedule fuzzing sweep: run many seeded LibPreemptible
 * configurations under random fault plans and check the global
 * invariants of DESIGN.md section 9 (no lost tasks, no double
 * dispatch, causality, bounded tail). The CI smoke job runs this with
 * fixed seeds; any violation prints the (seed, plan) pair needed to
 * reproduce it and fails the process.
 *
 *   fault_sweep --configs=1000 --seed=1
 *   fault_sweep --configs=1 --seed=7 --faults=drop:utimer@0.3
 *
 * Configs are independent cells of the parallel experiment harness
 * (--jobs=N). Output is deterministic in (--configs, --seed,
 * --faults) and independent of --jobs: every cell derives entirely
 * from its own seed and totals merge in seed order, which CI uses as
 * the sequential-vs-parallel byte-identity check.
 */

#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "bench/fault_sweep_cell.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "obs/session.hh"

using namespace preempt;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    std::uint64_t configs =
        static_cast<std::uint64_t>(cli.getInt("configs", 1000));
    std::uint64_t base_seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 1));
    std::string forced = cli.getString("faults", "");
    exp::Harness harness = bench::makeHarness(cli, obsSession);
    cli.rejectUnknown();

    std::vector<bench::FaultConfigOutcome> outcomes =
        harness.map<bench::FaultConfigOutcome>(
            configs, [&](const exp::CellEnv &env) {
                return bench::runFaultConfig(base_seed + env.index,
                                             forced);
            });

    struct SweepTotals
    {
        std::uint64_t configs = 0;
        std::uint64_t requests = 0;
        std::uint64_t injected = 0;
        std::uint64_t watchdogRecoveries = 0;
        std::uint64_t droppedPlans = 0;
        std::uint64_t redundantFires = 0;
        TimeNs worstP99 = 0;
    };
    SweepTotals totals;
    for (const bench::FaultConfigOutcome &o : outcomes) {
        ++totals.configs;
        totals.requests += o.requests;
        totals.injected += o.injected;
        totals.droppedPlans += o.droppedPlans;
        totals.watchdogRecoveries += o.watchdogRecoveries;
        totals.redundantFires += o.redundantFires;
        if (o.p99 > totals.worstP99)
            totals.worstP99 = o.p99;
    }

    ConsoleTable table("Fault sweep: " + std::to_string(configs) +
                       " seeded configs, all invariants held");
    table.header({"metric", "value"});
    table.row({"configs", std::to_string(totals.configs)});
    table.row({"requests", std::to_string(totals.requests)});
    table.row({"faults injected", std::to_string(totals.injected)});
    table.row({"utimer fires dropped",
               std::to_string(totals.droppedPlans)});
    table.row({"watchdog recoveries",
               std::to_string(totals.watchdogRecoveries)});
    table.row({"redundant fires absorbed",
               std::to_string(totals.redundantFires)});
    table.row({"worst p99 (us)",
               std::to_string(totals.worstP99 / 1000)});
    table.print();
    return 0;
}
