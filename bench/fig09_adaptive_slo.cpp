/**
 * @file
 * Fig. 9: adaptive time quanta reduce SLO violations (SLO = 50 us) on
 * the dynamic workload C. Compares a static-quantum LibPreemptible
 * against the Algorithm 1 controller, printing per-period SLO
 * violation rates and the quantum trajectory.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "common/cli.hh"
#include "obs/session.hh"
#include "fault/fault.hh"
#include "common/table.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

using namespace preempt;

namespace {

struct Timeline
{
    std::vector<std::uint64_t> total;
    std::vector<std::uint64_t> miss;
    std::vector<TimeNs> quantum;
};

Timeline
run(bool adaptive, TimeNs static_quantum, double rps, TimeNs duration,
    TimeNs period, TimeNs slo)
{
    sim::Simulator sim(42);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 4;
    rc.adaptive = adaptive;
    rc.quantum = static_quantum;
    rc.controllerParams.period = period;
    rc.controllerParams.tMin = usToNs(3);
    rc.controllerParams.tMax = usToNs(100);
    rc.statsHorizon = period;

    std::size_t bins = static_cast<std::size_t>(duration / period) + 1;
    Timeline tl;
    tl.total.assign(bins, 0);
    tl.miss.assign(bins, 0);
    tl.quantum.assign(bins, static_quantum);

    rc.completionHook = [&](TimeNs now, const workload::Request &req) {
        std::size_t b = static_cast<std::size_t>(now / period);
        if (b < bins) {
            ++tl.total[b];
            if (req.latency() > slo)
                ++tl.miss[b];
        }
    };
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);
    if (adaptive) {
        sim.every(period, [&](TimeNs now) {
            std::size_t b = static_cast<std::size_t>(now / period);
            if (b < bins)
                tl.quantum[b] = server.currentQuantum();
        });
    }

    workload::WorkloadSpec spec{workload::makeServiceLaw("C", duration),
                                workload::RateLaw::constant(rps), duration};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runUntil(duration + msToNs(100));
    return tl;
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    fault::Session faultSession(cli);
    // Default sized so both phases of C are stable: the exponential
    // second half caps 4-worker capacity at ~800 kRPS.
    double rps = cli.getDouble("rps", 650e3);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 1200));
    TimeNs period = msToNs(cli.getDouble("period-ms", 100));
    TimeNs slo = usToNs(cli.getDouble("slo-us", 50));
    exp::Harness harness =
        bench::makeHarness(cli, obsSession, &faultSession);
    cli.rejectUnknown();

    // Two independent cells; each labels its own trace epoch (the
    // cell-local equivalent of obs::Session::beginRun).
    struct Cfg
    {
        const char *name;
        bool adaptive;
    };
    const Cfg cfgs[] = {{"static", false}, {"adaptive", true}};
    std::vector<Timeline> timelines = harness.map<Timeline>(
        2, [&](const exp::CellEnv &env) {
            const Cfg &c = cfgs[env.index];
            obs::beginEpoch(c.name);
            return run(c.adaptive, usToNs(50), rps, duration, period,
                       slo);
        });
    const Timeline &fixed = timelines[0];
    const Timeline &adaptive = timelines[1];

    ConsoleTable table("Fig. 9: SLO violations on dynamic workload C "
                       "(50 us SLO), static 50 us vs Algorithm 1");
    table.header({"t (ms)", "static miss %", "adaptive miss %",
                  "adaptive quantum (us)"});
    double static_total = 0, adaptive_total = 0;
    std::uint64_t static_n = 0, adaptive_n = 0;
    for (std::size_t b = 0; b < fixed.total.size(); ++b) {
        if (fixed.total[b] == 0 && adaptive.total[b] == 0)
            continue;
        auto pct = [](std::uint64_t miss, std::uint64_t total) {
            return total ? 100.0 * static_cast<double>(miss) /
                               static_cast<double>(total)
                         : 0.0;
        };
        table.row({ConsoleTable::num(
                       nsToMs(static_cast<TimeNs>(b) * period), 0),
                   ConsoleTable::num(pct(fixed.miss[b], fixed.total[b]), 2),
                   ConsoleTable::num(
                       pct(adaptive.miss[b], adaptive.total[b]), 2),
                   ConsoleTable::num(nsToUs(adaptive.quantum[b]), 0)});
        static_total += static_cast<double>(fixed.miss[b]);
        static_n += fixed.total[b];
        adaptive_total += static_cast<double>(adaptive.miss[b]);
        adaptive_n += adaptive.total[b];
    }
    table.print();
    std::printf("\noverall SLO miss: static %.2f%%, adaptive %.2f%% "
                "(adaptation runs off the critical path every period)\n",
                100.0 * static_total / static_cast<double>(static_n),
                100.0 * adaptive_total / static_cast<double>(adaptive_n));
    return 0;
}
