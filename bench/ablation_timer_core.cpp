/**
 * @file
 * Ablation: is the dedicated timer core worth a whole core? Compares
 * (a) LibPreemptible with 4 workers + 1 timer core against (b) 5
 * workers with no asynchronous preemption (the core is spent on
 * compute instead) and (c) 4 workers + timer with the signal fallback,
 * on the heavy-tailed A1 workload. The paper argues the timer core
 * pays for itself at high load despite the lost worker (section V-A),
 * costing only ~1.2 W (section V-B).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/cli.hh"
#include "obs/session.hh"
#include "common/table.hh"

using namespace preempt;
using preempt::bench::RunSpec;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 250));
    cli.rejectUnknown();

    ConsoleTable table("Ablation: dedicated timer core, p99 (us) on A1");
    table.header({"load (kRPS)", "4 workers + timer core",
                  "5 workers, no preemption", "4 workers + signal timer"});
    for (double k : {300.0, 600.0, 900.0, 1100.0}) {
        RunSpec lib;
        lib.system = "libpreemptible";
        lib.workload = "A1";
        lib.rps = k * 1e3;
        lib.quantum = usToNs(5);
        lib.workers = 4;
        lib.duration = duration;
        auto a = preempt::bench::runOne(lib);

        RunSpec nop = lib;
        nop.system = "nopreempt";
        nop.workers = 5; // the timer core becomes a worker
        auto b = preempt::bench::runOne(nop);

        RunSpec sig = lib;
        sig.system = "nouintr";
        auto c = preempt::bench::runOne(sig);

        table.row({ConsoleTable::num(k, 0), preempt::bench::fmtUs(a.p99),
                   preempt::bench::fmtUs(b.p99),
                   preempt::bench::fmtUs(c.p99)});
    }
    table.print();
    std::printf("\nexpected: the extra worker never compensates for the "
                "head-of-line blocking preemption removes; the dedicated "
                "timer core + UINTR wins at every contended load.\n");
    return 0;
}
