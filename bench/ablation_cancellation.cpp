/**
 * @file
 * Ablation: SLO-aware request cancellation (section III-B — the
 * deadline abstraction "allows the preemption or cancellation of some
 * long requests to release resources when otherwise SLO will be
 * violated"). Under overload, dropping already-hopeless requests keeps
 * the tail of the *served* requests bounded; without cancellation the
 * whole latency distribution collapses.
 */

#include <cstdio>

#include "common/cli.hh"
#include "obs/session.hh"
#include "common/table.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

using namespace preempt;

namespace {

struct Out
{
    TimeNs p99;
    double dropPct;
    double goodputK;
};

Out
run(TimeNs deadline, double rps, TimeNs duration)
{
    sim::Simulator sim(42);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 4;
    rc.quantum = usToNs(5);
    rc.requestDeadline = deadline;
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);
    workload::WorkloadSpec spec{workload::makeServiceLaw("B", duration),
                                workload::RateLaw::constant(rps), duration};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runUntil(duration + msToNs(300));
    const auto &m = server.metrics();
    double total = static_cast<double>(m.completed() + m.cancelled());
    return Out{m.lcLatency().p99(),
               total ? 100.0 * static_cast<double>(m.cancelled()) / total
                     : 0.0,
               m.throughputRps(duration) / 1e3};
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 200));
    TimeNs slo = usToNs(cli.getDouble("deadline-us", 200));
    cli.rejectUnknown();

    ConsoleTable table(
        "Ablation: SLO cancellation (deadline " +
        ConsoleTable::num(nsToUs(slo), 0) +
        " us) on exponential workload, 4 workers (capacity ~800 kRPS)");
    table.header({"load (kRPS)", "p99 no-cancel (us)", "p99 cancel (us)",
                  "dropped", "goodput (kRPS)"});
    for (double k : {400.0, 700.0, 850.0, 1000.0, 1200.0}) {
        Out off = run(0, k * 1e3, duration);
        Out on = run(slo, k * 1e3, duration);
        table.row({ConsoleTable::num(k, 0),
                   ConsoleTable::num(nsToUs(off.p99), 1),
                   ConsoleTable::num(nsToUs(on.p99), 1),
                   ConsoleTable::num(on.dropPct, 1) + "%",
                   ConsoleTable::num(on.goodputK, 0)});
    }
    table.print();
    std::printf("\nexpected: below saturation no drops and identical "
                "tails; past saturation cancellation holds the served "
                "tail near the deadline while goodput stays at "
                "capacity.\n");
    return 0;
}
