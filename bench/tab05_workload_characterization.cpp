/**
 * @file
 * Table V: standalone characterisation of the colocation workloads,
 * measured for real on this host — MICA-style KVS ops (5/95 SET/GET,
 * zipfian 0.99 keys) and 25 kB block compression — single-threaded,
 * no colocation. The paper reports ~1 us median KVS ops and ~100 us
 * median compression on Sapphire Rapids at 1.7 GHz; absolute numbers
 * here differ with the host, the shape (three orders of magnitude
 * between LC and BE medians) is what matters.
 */

#include <cstdio>
#include <string>

#include "apps/compressor.hh"
#include "apps/kvstore.hh"
#include "common/cli.hh"
#include "obs/session.hh"
#include "common/dist.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "preemptible/hosttime.hh"

using namespace preempt;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    int kv_ops = static_cast<int>(cli.getInt("kv-ops", 200000));
    int blocks = static_cast<int>(cli.getInt("blocks", 200));
    cli.rejectUnknown();

    apps::KvStore store(8, 8192);
    Rng rng(5);
    ZipfianGenerator zipf(100000, 0.99);
    for (std::uint64_t k = 0; k < 100000; ++k)
        store.set(k, std::string(16, 'v'));

    // Warm up, then measure the 5/95 SET/GET mix.
    LatencyHistogram kv_lat;
    std::string value;
    for (int i = 0; i < kv_ops; ++i) {
        std::uint64_t key = zipf.next(rng);
        bool is_set = rng.uniform() < 0.05;
        TimeNs t0 = runtime::hostNowNs();
        if (is_set)
            store.set(key, "updated-value-16b");
        else
            store.get(key, value);
        TimeNs t1 = runtime::hostNowNs();
        if (i > kv_ops / 10)
            kv_lat.record(t1 - t0);
    }

    auto block = apps::makeCompressibleBlock(apps::Compressor::kBlockSize,
                                             99);
    LatencyHistogram zl_lat;
    apps::Compressor comp;
    double ratio = 0;
    for (int i = 0; i < blocks; ++i) {
        TimeNs t0 = runtime::hostNowNs();
        auto out = comp.compress(block);
        TimeNs t1 = runtime::hostNowNs();
        if (i > blocks / 10)
            zl_lat.record(t1 - t0);
        ratio = static_cast<double>(out.size()) /
                static_cast<double>(block.size());
    }

    ConsoleTable table("Table V: standalone workload characterisation "
                       "(measured on this host, single thread)");
    table.header({"workload", "config", "median", "p99"});
    table.row({"KVS (MICA-like, LC)",
               "100k keys, zipf 0.99, 5/95 SET/GET",
               ConsoleTable::num(nsToUs(kv_lat.p50()), 2) + " us",
               ConsoleTable::num(nsToUs(kv_lat.p99()), 2) + " us"});
    table.row({"compression (zlib-like, BE)",
               "25 kB blocks, ratio " + ConsoleTable::num(ratio, 2),
               ConsoleTable::num(nsToUs(zl_lat.p50()), 1) + " us",
               ConsoleTable::num(nsToUs(zl_lat.p99()), 1) + " us"});
    table.print();
    std::printf("\npaper reference: MICA median ~1 us; zlib on 25 kB "
                "median ~100 us (SPR @ 1.7 GHz). The ~100x LC/BE "
                "separation is the property the colocation experiments "
                "rely on.\n");
    return 0;
}
