/**
 * @file
 * Table I: datacenter thread oversubscription from four widely-used
 * Google applications, plus the motivating arithmetic of section I —
 * with a 5 ms minimum kernel time slice, hundreds of runnable threads
 * per core stretch the scheduler cycle to seconds, while a 3 us
 * user-level quantum keeps it in the low milliseconds.
 */

#include <cstdio>

#include "common/table.hh"
#include "common/time.hh"
#include "hw/latency_config.hh"

using namespace preempt;

int
main()
{
    struct App
    {
        const char *name;
        int threads;
        int cores;
    };
    // Thread/core counts from the Google traces cited by Table I.
    const App apps[] = {
        {"charlie", 4842, 10},
        {"delta", 300, 4},
        {"merced", 5470, 110},
        {"whiskey", 1352, 8},
    };

    hw::LatencyConfig cfg;
    const TimeNs kernel_slice = msToNs(5);
    const TimeNs uintr_slice = cfg.utimerMinQuantum;

    ConsoleTable table(
        "Table I: thread oversubscription and scheduler-cycle impact");
    table.header({"app", "threads", "cores", "threads/core",
                  "cycle @5ms kernel slice", "cycle @3us LibUtimer"});
    for (const App &a : apps) {
        double per_core = static_cast<double>(a.threads) /
                          static_cast<double>(a.cores);
        TimeNs kernel_cycle =
            static_cast<TimeNs>(per_core * static_cast<double>(kernel_slice));
        TimeNs uintr_cycle =
            static_cast<TimeNs>(per_core * static_cast<double>(uintr_slice));
        table.row({a.name, std::to_string(a.threads),
                   std::to_string(a.cores),
                   ConsoleTable::num(per_core, 0),
                   ConsoleTable::num(nsToSec(kernel_cycle), 2) + " s",
                   ConsoleTable::num(nsToMs(uintr_cycle), 2) + " ms"});
    }
    table.print();
    std::printf("\npaper reference: 50-484 threads/core; a 5 ms slice "
                "with 200 threads/core -> ~1 s scheduler cycle.\n");
    return 0;
}
