/**
 * @file
 * Fig. 2: tail latency vs. load for different preemption quanta on 16
 * cores, for a heavy-tailed bimodal workload (left) and a light-tailed
 * exponential workload (right). 0 us quantum = no preemption.
 *
 * Expected shape: for the bimodal workload, small quanta dominate (no
 * preemption blows up at moderate load from head-of-line blocking);
 * for the exponential workload larger quanta win because preemption is
 * pure overhead when the tail is light.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "common/cli.hh"
#include "obs/session.hh"
#include "common/table.hh"

using namespace preempt;
using preempt::bench::RunSpec;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 200));
    int workers = static_cast<int>(cli.getInt("workers", 16));
    cli.rejectUnknown();

    const double quanta_us[] = {0, 5, 10, 25, 100};

    struct Wl
    {
        const char *name;
        std::vector<double> loads; // kRPS
    };
    // Capacity: A1 mean 3 us -> 16/3us = 5.3 MRPS; B mean 5 us -> 3.2 M.
    const Wl wls[] = {
        {"A1", {1000, 2000, 3000, 4000, 4600, 5000}},
        {"B", {600, 1200, 1800, 2400, 2800, 3000}},
    };

    for (const Wl &wl : wls) {
        ConsoleTable table(std::string("Fig. 2 (") +
                           (wl.name[0] == 'A' ? "bimodal " : "exponential ") +
                           wl.name + "): p99 latency (us) vs load, " +
                           std::to_string(workers) + " workers");
        std::vector<std::string> header{"load (kRPS)"};
        for (double q : quanta_us) {
            header.push_back(q == 0 ? "no preempt"
                                    : "q=" + ConsoleTable::num(q, 0) + "us");
        }
        table.header(header);

        for (double load : wl.loads) {
            std::vector<std::string> row{ConsoleTable::num(load, 0)};
            for (double q : quanta_us) {
                RunSpec spec;
                spec.system = q == 0 ? "nopreempt" : "libpreemptible";
                spec.workload = wl.name;
                spec.rps = load * 1e3;
                spec.quantum = usToNs(q);
                spec.workers = workers;
                spec.duration = duration;
                auto out = preempt::bench::runOne(spec);
                row.push_back(preempt::bench::fmtUs(out.p99));
            }
            table.row(row);
        }
        table.print();
        std::printf("\n");
    }
    return 0;
}
