/**
 * @file
 * Tenant scalability (sections I, V-B, VI): Shinjuku's ring-3-mapped
 * APIC supports only a bounded number of logical processors, while
 * LibPreemptible's kernel-maintained UITT "scales to more tenants
 * using more logical processors by design".
 *
 * This bench colocates N independent tenants (each a LibPreemptible
 * instance with its own workers and timer slots) and shows
 * (a) aggregate capacity scales with tenants while each tenant's tail
 * stays flat, and (b) the equivalent Shinjuku deployment stops fitting
 * once the worker count crosses the APIC target limit.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "common/cli.hh"
#include "obs/session.hh"
#include "common/table.hh"
#include "preemptible/hosttime.hh"
#include "preemptible/runtime.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

using namespace preempt;

namespace {

struct TenantResult
{
    double worstP99Us;
    double aggThroughputK;
};

TenantResult
runTenants(int n_tenants, int workers_each, double rps_each,
           TimeNs duration)
{
    sim::Simulator sim(42);
    hw::LatencyConfig cfg;
    std::vector<std::unique_ptr<runtime_sim::LibPreemptibleSim>> tenants;
    std::vector<std::unique_ptr<workload::OpenLoopGenerator>> gens;
    for (int t = 0; t < n_tenants; ++t) {
        runtime_sim::LibPreemptibleConfig rc;
        rc.nWorkers = workers_each;
        rc.quantum = usToNs(5);
        rc.tenant = static_cast<std::uint32_t>(t + 1);
        tenants.push_back(
            std::make_unique<runtime_sim::LibPreemptibleSim>(sim, cfg,
                                                             rc));
        auto *server = tenants.back().get();
        workload::WorkloadSpec spec{
            workload::makeServiceLaw("A1", duration),
            workload::RateLaw::constant(rps_each), duration};
        gens.push_back(std::make_unique<workload::OpenLoopGenerator>(
            sim, std::move(spec),
            [server](workload::Request &r) { server->onArrival(r); }));
        gens.back()->start();
    }
    sim.runUntil(duration + msToNs(200));

    TenantResult out{0, 0};
    for (auto &t : tenants) {
        out.worstP99Us = std::max(
            out.worstP99Us, nsToUs(t->metrics().lcLatency().p99()));
        out.aggThroughputK += t->metrics().throughputRps(duration) / 1e3;
    }
    return out;
}

/**
 * Real-runtime tenant mode (--real): colocate N actual
 * PreemptibleRuntime instances — each with its own worker threads,
 * LibUtimer thread, steal deques, and wheel shards — and complete a
 * fixed batch of work per tenant. Submission is deliberately skewed to
 * each tenant's worker 0 so the aggregate exercises the steal path of
 * every tenant at once. Wall-clock aggregate throughput is the
 * scalability readout (on a host with the cores to show it; a 1-cpu
 * container serialises everything).
 */
TenantResult
runRealTenants(int n_tenants, int workers_each, int tasks_each,
               TimeNs taskWork)
{
    std::vector<std::unique_ptr<runtime::PreemptibleRuntime>> tenants;
    for (int t = 0; t < n_tenants; ++t) {
        runtime::PreemptibleRuntime::Options opt;
        opt.nWorkers = workers_each;
        opt.queueCapacity =
            static_cast<std::size_t>(tasks_each) + 64;
        opt.idleNap = usToNs(50);
        opt.tenant = static_cast<std::uint32_t>(t + 1);
        tenants.push_back(
            std::make_unique<runtime::PreemptibleRuntime>(opt));
    }
    auto body = [taskWork] {
        TimeNs end = runtime::hostNowNs() + taskWork;
        while (runtime::hostNowNs() < end) {
        }
    };
    auto t0 = std::chrono::steady_clock::now();
    std::uint64_t dropped = 0;
    for (auto &t : tenants) {
        for (int i = 0; i < tasks_each; ++i) {
            // Bounded backoff: the queue is sized for the burst, but a
            // refusal (full inbox or admission) must not pass silently.
            bool ok = false;
            for (int attempt = 0; attempt < 50 && !ok; ++attempt) {
                ok = t->submitTo(0, body);
                if (!ok)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(100));
            }
            if (!ok)
                ++dropped;
        }
    }
    for (auto &t : tenants)
        t->quiesce();
    auto t1 = std::chrono::steady_clock::now();

    TenantResult out{0, 0};
    double secs = std::chrono::duration<double>(t1 - t0).count();
    for (auto &t : tenants) {
        out.worstP99Us = std::max(
            out.worstP99Us, nsToUs(t->stats().lcLatency.p99()));
        t->shutdown();
    }
    if (dropped > 0)
        std::fprintf(stderr,
                     "scalability_tenants: %llu submits dropped after "
                     "backoff\n",
                     static_cast<unsigned long long>(dropped));
    if (secs > 0)
        out.aggThroughputK =
            (static_cast<std::uint64_t>(n_tenants) * tasks_each -
             dropped) /
            secs / 1e3;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 150));
    int workers_each = static_cast<int>(cli.getInt("workers-each", 4));
    double rps_each = cli.getDouble("rps-each", 800e3);
    bool real = cli.getBool("real", false);
    int tasks_each = static_cast<int>(cli.getInt("tasks-each", 500));
    TimeNs taskWork = usToNs(cli.getDouble("task-us", 20));
    exp::Harness harness = bench::makeHarness(cli, obsSession);
    cli.rejectUnknown();

    if (real) {
        // Real threads oversubscribe quickly: keep the sweep short.
        const std::vector<int> counts{1, 2, 4};
        ConsoleTable table("Tenant scalability (REAL runtimes): N "
                           "colocated PreemptibleRuntime instances, "
                           "skewed submission, stealing on");
        table.header({"tenants", "total workers",
                      "worst tenant p99 (us)",
                      "aggregate throughput (kRPS)"});
        for (int n : counts) {
            TenantResult r = runRealTenants(n, workers_each,
                                            tasks_each, taskWork);
            table.row({std::to_string(n),
                       std::to_string(n * workers_each),
                       ConsoleTable::num(r.worstP99Us, 1),
                       ConsoleTable::num(r.aggThroughputK, 1)});
        }
        table.print();
        std::printf("\nexpected: aggregate throughput tracks "
                    "min(total workers, host cpus); each tenant's "
                    "skewed backlog is rebalanced by its own steal "
                    "deques.\n");
        return 0;
    }

    // One cell per tenant count.
    const std::vector<int> tenantCounts{1, 2, 4, 8, 16};
    std::vector<TenantResult> results = harness.map<TenantResult>(
        tenantCounts.size(), [&](const exp::CellEnv &env) {
            return runTenants(tenantCounts[env.index], workers_each,
                              rps_each, duration);
        });

    hw::LatencyConfig cfg;
    ConsoleTable table("Tenant scalability: N colocated LibPreemptible "
                       "tenants (4 workers + timer each, A1 @ 800 kRPS "
                       "per tenant)");
    table.header({"tenants", "total workers", "worst tenant p99 (us)",
                  "aggregate throughput (kRPS)", "fits Shinjuku APIC?"});
    for (std::size_t i = 0; i < tenantCounts.size(); ++i) {
        int n = tenantCounts[i];
        const TenantResult &r = results[i];
        int total_workers = n * (workers_each + 1); // + dispatcher
        table.row({std::to_string(n), std::to_string(total_workers),
                   ConsoleTable::num(r.worstP99Us, 1),
                   ConsoleTable::num(r.aggThroughputK, 0),
                   total_workers <= cfg.apicMaxTargets ? "yes"
                                                       : "no (> limit)"});
    }
    table.print();
    std::printf("\nexpected: per-tenant p99 flat and aggregate "
                "throughput linear in tenants; the mapped-APIC design "
                "stops fitting at %d logical targets while the UITT "
                "scales on.\n", cfg.apicMaxTargets);
    return 0;
}
