#include "bench/bench_util.hh"

#include <locale>
#include <sstream>

#include "baselines/libinger_sim.hh"
#include "baselines/shinjuku_sim.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "obs/trace.hh"
#include "runtime_sim/libpreemptible_sim.hh"

namespace preempt::bench {

std::unique_ptr<runtime_sim::ServerModel>
makeServer(sim::Simulator &sim, const hw::LatencyConfig &cfg,
           const RunSpec &spec)
{
    if (spec.system == "libpreemptible" || spec.system == "nouintr" ||
        spec.system == "nopreempt") {
        runtime_sim::LibPreemptibleConfig rc;
        rc.nWorkers = spec.workers;
        rc.quantum = spec.system == "nopreempt" ? 0 : spec.quantum;
        rc.adaptive = spec.adaptive;
        rc.controllerParams.period = spec.adaptivePeriod;
        rc.statsHorizon = spec.adaptivePeriod;
        if (spec.system == "nouintr")
            rc.delivery = runtime_sim::TimerDelivery::KernelSignal;
        rc.completionHook = spec.completionHook;
        return std::make_unique<runtime_sim::LibPreemptibleSim>(sim, cfg,
                                                                rc);
    }
    if (spec.system == "shinjuku") {
        baselines::ShinjukuConfig sc;
        sc.nWorkers = spec.workers + 1; // no timer core
        sc.quantum = spec.quantum;
        sc.completionHook = spec.completionHook;
        return std::make_unique<baselines::ShinjukuSim>(sim, cfg, sc);
    }
    if (spec.system == "libinger") {
        baselines::LibingerConfig lc;
        lc.nWorkers = spec.workers + 1;
        lc.quantum = spec.quantum;
        lc.completionHook = spec.completionHook;
        return std::make_unique<baselines::LibingerSim>(sim, cfg, lc);
    }
    fatal("unknown system '%s'", spec.system.c_str());
}

RunOutcome
runOne(const RunSpec &spec, const hw::LatencyConfig &cfg)
{
    // Each run gets its own trace epoch (-> Perfetto process): multi-
    // configuration benches re-run from virtual time 0, so their
    // timestamps would otherwise interleave on one track.
    std::ostringstream label;
    label << spec.system << " " << spec.workload << " @" << spec.rps
          << "rps q=" << nsToUs(spec.quantum) << "us";
    obs::beginEpoch(label.str());

    sim::Simulator sim(spec.seed);
    auto server = makeServer(sim, cfg, spec);
    workload::WorkloadSpec wl{
        workload::makeServiceLaw(spec.workload, spec.duration),
        workload::RateLaw::constant(spec.rps), spec.duration};
    workload::OpenLoopGenerator gen(sim, std::move(wl),
                                    [&](workload::Request &r) {
                                        server->onArrival(r);
                                    });
    gen.start();
    // Bounded drain window after the arrival horizon so overloaded
    // systems terminate.
    sim.runUntil(spec.duration + msToNs(200));

    const auto &m = server->metrics();
    RunOutcome out;
    out.name = server->name();
    out.offeredRps = spec.rps;
    out.achievedRps = m.throughputRps(spec.duration);
    out.p50 = m.lcLatency().p50();
    out.p99 = m.lcLatency().p99();
    out.maxLatency = m.lcLatency().max();
    out.overheadRatio = m.overheadRatio();
    out.completed = m.completed();
    out.preemptions = m.totalPreemptions();
    return out;
}

std::string
fmtUs(TimeNs ns)
{
    std::ostringstream os;
    // C locale: bench output is byte-compared across hosts and --jobs
    // values, so the global locale must not leak into it.
    os.imbue(std::locale::classic());
    os.precision(1);
    os << std::fixed << nsToUs(ns);
    return os.str();
}

exp::Harness
makeHarness(CommandLine &cli, obs::Session &obs, fault::Session *fault,
            std::uint64_t base_seed)
{
    int jobs = static_cast<int>(cli.getInt("jobs", 0));
    return exp::Harness(jobs, obs, fault, base_seed);
}

} // namespace preempt::bench
