/**
 * @file
 * Work-stealing microbenchmark for the real runtime: throughput vs.
 * worker count for a uniform (round-robin) and a skewed
 * (all-submit-to-one-worker) load, with stealing on and off.
 *
 * The skewed case is the point: with stealing off it degenerates to
 * one busy worker (the pre-steal round-robin runtime's behaviour when
 * placement guesses wrong); with stealing on the idle workers pull the
 * backlog over and throughput tracks the worker count again — on a
 * host that actually has the cores. --out writes BENCH_steal.json; the
 * checked-in copy records the CI container run and carries the 1-CPU
 * caveat, like BENCH_parallel.json.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <locale>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "obs/session.hh"
#include "preemptible/hosttime.hh"
#include "preemptible/runtime.hh"

using namespace preempt;
using runtime::PreemptibleRuntime;

namespace {

struct Config
{
    int workers;
    bool skewed;
    bool stealing;
};

struct Result
{
    Config cfg;
    double seconds = 0;
    double throughput = 0; ///< tasks per second
    std::uint64_t stealHits = 0;
    std::uint64_t migrations = 0;
};

Result
runOne(const Config &cfg, int tasks, TimeNs taskWork)
{
    PreemptibleRuntime::Options opt;
    opt.nWorkers = cfg.workers;
    opt.stealing = cfg.stealing;
    opt.quantum = msToNs(4);
    opt.idleNap = usToNs(50);
    opt.queueCapacity =
        static_cast<std::size_t>(tasks) + 64; // no backpressure stalls
    PreemptibleRuntime rt(opt);

    auto body = [taskWork] {
        TimeNs end = runtime::hostNowNs() + taskWork;
        while (runtime::hostNowNs() < end) {
        }
    };
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < tasks; ++i) {
        int target = cfg.skewed ? 0 : i % cfg.workers;
        fatal_if(!rt.submitTo(target, body),
                 "submission backpressure with an oversized queue");
    }
    rt.quiesce();
    auto t1 = std::chrono::steady_clock::now();
    rt.shutdown();

    Result r;
    r.cfg = cfg;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.throughput = r.seconds > 0 ? tasks / r.seconds : 0;
    auto s = rt.stats();
    r.stealHits = s.stealHits;
    r.migrations = s.migrations;
    return r;
}

std::string
jsonNum(double v)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.precision(3);
    os << std::fixed << v;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    int tasks = static_cast<int>(cli.getInt("tasks", 2000));
    TimeNs taskWork = usToNs(cli.getDouble("task-us", 30));
    int maxWorkers = static_cast<int>(cli.getInt("max-workers", 4));
    std::string out = cli.getString("out", "");
    cli.rejectUnknown();
    unsigned hostCpus = std::thread::hardware_concurrency();
    if (hostCpus == 0)
        hostCpus = 1;

    std::vector<Result> results;
    for (int w = 1; w <= maxWorkers; w *= 2) {
        for (bool skewed : {false, true}) {
            for (bool stealing : {false, true}) {
                results.push_back(
                    runOne({w, skewed, stealing}, tasks, taskWork));
            }
        }
    }

    ConsoleTable table(
        "micro_steal: " + std::to_string(tasks) + " tasks x " +
        std::to_string(nsToUs(taskWork)) + " us (" +
        std::to_string(hostCpus) + " host cpus)");
    table.header({"workers", "load", "stealing", "seconds",
                  "tasks/s", "steal hits", "migrations"});
    for (const Result &r : results) {
        table.row({std::to_string(r.cfg.workers),
                   r.cfg.skewed ? "skewed" : "uniform",
                   r.cfg.stealing ? "on" : "off",
                   ConsoleTable::num(r.seconds, 3),
                   ConsoleTable::num(r.throughput, 0),
                   std::to_string(r.stealHits),
                   std::to_string(r.migrations)});
    }
    table.print();

    // Headline ratio: skewed submit, stealing vs. the round-robin-only
    // baseline, at the largest worker count.
    double stealOn = 0, stealOff = 0;
    for (const Result &r : results) {
        if (r.cfg.workers == maxWorkers && r.cfg.skewed) {
            (r.cfg.stealing ? stealOn : stealOff) = r.throughput;
        }
    }
    double skewedSpeedup = stealOff > 0 ? stealOn / stealOff : 0;
    std::printf("\nskewed-submit speedup from stealing at %d workers: "
                "%.2fx (ceiling is min(workers, host cpus); ~1x is "
                "expected on a 1-cpu container)\n",
                maxWorkers, skewedSpeedup);

    if (!out.empty()) {
        std::ofstream os(out);
        fatal_if(!os, "cannot write %s", out.c_str());
        os.imbue(std::locale::classic());
        os << "{\n"
           << "  \"bench\": \"micro_steal\",\n"
           << "  \"unit\": \"tasks_per_second\",\n"
           << "  \"tasks\": " << tasks << ",\n"
           << "  \"task_us\": " << jsonNum(nsToUs(taskWork)) << ",\n"
           << "  \"host_cpus\": " << hostCpus << ",\n"
           << "  \"note\": \"skewed_steal_speedup has a ceiling of "
              "min(workers, host_cpus); on a 1-cpu container it sits "
              "near 1x — the >= 2x acceptance target applies to hosts "
              "with 4+ cpus (same caveat as BENCH_parallel.json)\",\n"
           << "  \"skewed_steal_speedup\": " << jsonNum(skewedSpeedup)
           << ",\n"
           << "  \"results\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const Result &r = results[i];
            os << "    {\"workers\": " << r.cfg.workers
               << ", \"load\": \""
               << (r.cfg.skewed ? "skewed" : "uniform")
               << "\", \"stealing\": "
               << (r.cfg.stealing ? "true" : "false")
               << ", \"seconds\": " << jsonNum(r.seconds)
               << ", \"tasks_per_second\": " << jsonNum(r.throughput)
               << ", \"steal_hits\": " << r.stealHits
               << ", \"migrations\": " << r.migrations << "}"
               << (i + 1 < results.size() ? "," : "") << "\n";
        }
        os << "  ]\n"
           << "}\n";
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}
