/**
 * @file
 * Ablation: two-level queues (per-worker local FIFOs + global
 * preempted list, Fig. 6) versus one central lock-protected queue.
 * The central queue gives ideal load balance but serialises every
 * dequeue; the paper's two-level design avoids that serialisation
 * while the global lists still provide load balancing.
 */

#include <cstdio>

#include "common/cli.hh"
#include "obs/session.hh"
#include "common/table.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

using namespace preempt;

namespace {

struct Out
{
    TimeNs p50;
    TimeNs p99;
    double thrK;
};

Out
run(bool central, double rps, TimeNs duration)
{
    sim::Simulator sim(42);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 16;
    rc.quantum = usToNs(5);
    rc.centralQueue = central;
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);
    workload::WorkloadSpec spec{workload::makeServiceLaw("A1", duration),
                                workload::RateLaw::constant(rps), duration};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runUntil(duration + msToNs(200));
    const auto &m = server.metrics();
    return Out{m.lcLatency().p50(), m.lcLatency().p99(),
               m.throughputRps(duration) / 1e3};
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 250));
    cli.rejectUnknown();

    ConsoleTable table("Ablation: queue topology on A1, 16 workers "
                       "(p50 / p99 us)");
    table.header({"load (kRPS)", "two-level (paper)", "central queue"});
    for (double k : {1000.0, 2000.0, 3000.0, 4000.0, 4800.0}) {
        Out two = run(false, k * 1e3, duration);
        Out one = run(true, k * 1e3, duration);
        table.row({ConsoleTable::num(k, 0),
                   ConsoleTable::num(nsToUs(two.p50), 1) + " / " +
                       ConsoleTable::num(nsToUs(two.p99), 1),
                   ConsoleTable::num(nsToUs(one.p50), 1) + " / " +
                       ConsoleTable::num(nsToUs(one.p99), 1)});
    }
    table.print();
    std::printf("\nexpected: the central queue balances perfectly while "
                "its lock is uncontended (better tails at low rates), "
                "but every dequeue serialises on one bouncing cache "
                "line (~500 ns): past ~2 MRPS it collapses while the "
                "two-level design keeps scaling to worker capacity — "
                "the paper's rationale for per-worker local queues.\n");
    return 0;
}
