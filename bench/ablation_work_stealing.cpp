/**
 * @file
 * Ablation: ZygOS-style work stealing on top of the two-level queues.
 * The paper's related-work section notes stealing is necessary for
 * µs-scale load balancing in pinned-thread designs; LibPreemptible's
 * dispatcher-side JSQ plus the global running list already balance
 * load, so stealing should add little — this bench quantifies that.
 */

#include <cstdio>

#include "common/cli.hh"
#include "obs/session.hh"
#include "common/table.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

using namespace preempt;

namespace {

TimeNs
run(bool stealing, double rps, TimeNs duration)
{
    sim::Simulator sim(42);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 4;
    rc.quantum = usToNs(5);
    rc.workStealing = stealing;
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);
    workload::WorkloadSpec spec{workload::makeServiceLaw("A1", duration),
                                workload::RateLaw::constant(rps), duration};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runUntil(duration + msToNs(300));
    return server.metrics().lcLatency().p99();
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 200));
    cli.rejectUnknown();

    ConsoleTable table("Ablation: work stealing on A1 (p99, us)");
    table.header({"load (kRPS)", "two-level (paper)", "+ work stealing"});
    for (double k : {300.0, 600.0, 900.0, 1100.0, 1250.0}) {
        table.row({ConsoleTable::num(k, 0),
                   ConsoleTable::num(nsToUs(run(false, k * 1e3, duration)),
                                     1),
                   ConsoleTable::num(nsToUs(run(true, k * 1e3, duration)),
                                     1)});
    }
    table.print();
    std::printf("\nexpected: close at every load — the dispatcher JSQ "
                "plus the global preempted list already balance; "
                "stealing shaves a little at the highest loads.\n");
    return 0;
}
