/**
 * @file
 * Admission-control overload sweep: the paper-style "LC p99 stays
 * flat while BE throughput degrades gracefully" curve, with the
 * span-driven admission plane (src/control/) on vs off.
 *
 * Workload: one worker, centralized-FCFS semantics (RoundRobin
 * policy, 5 us quantum), 80% latency-critical requests (~4 us median
 * service) colocated with 20% best-effort requests (~80 us median).
 * Offered load sweeps from well below to ~2x the worker's capacity
 * (~45 kRPS effective).
 *
 * Off leg: under overload the FCFS backlog grows without bound and
 * the LC tail explodes with it. On leg: the admission tick sees the
 * backlog (in-flight depth, per-tick queued p99, violation ratio),
 * throttles BE at an adaptive duty cycle, and the LC tail stays
 * bounded while admitted-BE throughput declines gently — no cliff.
 *
 * --out writes the fig_admission JSON (checked in as
 * BENCH_admission.json); tools/check_bench_json.py --admission gates
 * its schema, and --strict additionally enforces the acceptance
 * numbers (LC p99 off/on >= 5x on every overloaded point, monotone
 * admitted-BE degradation).
 *
 * Cells run through exp::Harness: --jobs=8 output is byte-identical
 * to --jobs=1 (the admission tick is simulated-publisher-driven —
 * zero clock reads, zero RNG draws).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <locale>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "control/admission.hh"
#include "obs/session.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

using namespace preempt;

namespace {

/** Offered loads (kRPS); the tail of the sweep is past capacity. */
const std::vector<double> kLoadsK{15, 25, 35, 45, 60, 75, 90};

/** First index of the overloaded region (>= ~1.3x capacity). */
constexpr std::size_t kOverloadFrom = 4;

struct Outcome
{
    TimeNs lcP99 = 0;          ///< post-warmup LC p99
    std::uint64_t lcDone = 0;  ///< LC completions in the window
    std::uint64_t beDone = 0;  ///< BE completions in the window
    double beRps = 0;          ///< admitted-BE throughput
    std::uint64_t rejectedLc = 0;
    std::uint64_t rejectedBe = 0;
    std::string state = "admit"; ///< final policy state
};

Outcome
run(double rps, bool admissionOn, TimeNs duration, TimeNs warmup)
{
    sim::Simulator sim(42);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 1;
    rc.quantum = usToNs(5);
    // RoundRobin = centralized-FCFS semantics: LC waits behind the
    // whole backlog, so unshed overload shows in the LC tail.
    rc.policy = runtime_sim::SchedPolicy::RoundRobin;
    if (admissionOn) {
        rc.admission.enabled = true;
        rc.admission.tickPeriod = msToNs(5);
        rc.admission.sloNs = msToNs(1);
        rc.admission.params.queuedHighNs = usToNs(1000);
        rc.admission.params.queuedLowNs = usToNs(150);
        rc.admission.params.depthHigh = 48;
        rc.admission.params.depthLow = 12;
    }

    // Post-warmup window accounting via the completion hook: the
    // transient while the policy walks to its duty equilibrium is
    // excluded from both legs identically.
    LatencyHistogram lcPost;
    std::uint64_t lcDone = 0;
    std::uint64_t beDone = 0;
    rc.completionHook = [&](TimeNs now, const workload::Request &r) {
        if (now < warmup || now > duration)
            return;
        if (r.cls == workload::RequestClass::BestEffort) {
            ++beDone;
        } else {
            ++lcDone;
            lcPost.record(r.latency());
        }
    };
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);

    workload::WorkloadSpec spec{
        workload::ServiceLaw(std::make_shared<LogNormalDist>(4000.0, 0.6)),
        workload::RateLaw::constant(rps), duration};
    spec.beFraction = 0.2;
    spec.beService = std::make_shared<workload::ServiceLaw>(
        std::make_shared<LogNormalDist>(80e3, 0.25));
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runUntil(duration + msToNs(200));

    Outcome o;
    o.lcP99 = lcPost.p99();
    o.lcDone = lcDone;
    o.beDone = beDone;
    o.beRps = static_cast<double>(beDone) / nsToSec(duration - warmup);
    o.rejectedLc = server.metrics().rejectedLc();
    o.rejectedBe = server.metrics().rejectedBe();
    if (const control::AdmissionController *ac =
            server.admissionController())
        o.state = control::stateName(ac->tenantStats(0).state);
    return o;
}

std::string
jsonNum(double v)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.precision(3);
    os << std::fixed << v;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 300));
    TimeNs warmup = msToNs(cli.getDouble("warmup-ms", 100));
    std::string mode = cli.getString("admission", "both");
    std::string out = cli.getString("out", "");
    // CI live-scrape hook: the harness merges per-cell metrics after
    // the fan-out, so the control.* series reach --stats-port only
    // once the sweep is done; holding keeps /metrics serving them.
    double holdMs = cli.getDouble("hold-ms", 0);
    exp::Harness harness = bench::makeHarness(cli, obsSession);
    cli.rejectUnknown();
    fatal_if(warmup >= duration,
             "--warmup-ms must be below --duration-ms");
    fatal_if(mode != "both" && mode != "on" && mode != "off",
             "--admission must be both|on|off");
    fatal_if(!out.empty() && mode != "both",
             "--out needs both legs (--admission=both)");

    // Cells in sequential order: per load, the requested leg(s) with
    // off before on.
    std::vector<std::pair<double, bool>> cells; // (rps, admissionOn)
    for (double k : kLoadsK) {
        if (mode != "on")
            cells.emplace_back(k * 1e3, false);
        if (mode != "off")
            cells.emplace_back(k * 1e3, true);
    }
    std::vector<Outcome> outs = harness.map<Outcome>(
        cells.size(), [&](const exp::CellEnv &env) {
            return run(cells[env.index].first, cells[env.index].second,
                       duration, warmup);
        });

    ConsoleTable table("fig_admission: overload sweep, admission " +
                       mode + " (post-warmup window)");
    if (mode == "both") {
        table.header({"load (kRPS)", "LC p99 off", "LC p99 on",
                      "off/on", "BE rps off", "BE rps on",
                      "rejected on", "state"});
        for (std::size_t i = 0; i < kLoadsK.size(); ++i) {
            const Outcome &off = outs[i * 2];
            const Outcome &on = outs[i * 2 + 1];
            double ratio =
                on.lcP99 == 0 ? 0
                              : static_cast<double>(off.lcP99) /
                                    static_cast<double>(on.lcP99);
            table.row({ConsoleTable::num(kLoadsK[i], 0),
                       bench::fmtUs(off.lcP99), bench::fmtUs(on.lcP99),
                       ConsoleTable::num(ratio, 1) + "x",
                       ConsoleTable::num(off.beRps, 0),
                       ConsoleTable::num(on.beRps, 0),
                       std::to_string(on.rejectedLc + on.rejectedBe),
                       on.state});
        }
    } else {
        table.header({"load (kRPS)", "LC p99", "BE rps", "rejected",
                      "state"});
        for (std::size_t i = 0; i < kLoadsK.size(); ++i) {
            const Outcome &o = outs[i];
            table.row({ConsoleTable::num(kLoadsK[i], 0),
                       bench::fmtUs(o.lcP99),
                       ConsoleTable::num(o.beRps, 0),
                       std::to_string(o.rejectedLc + o.rejectedBe),
                       o.state});
        }
    }
    table.print();

    if (mode != "both") {
        if (holdMs > 0)
            std::this_thread::sleep_for(std::chrono::duration<double,
                                        std::milli>(holdMs));
        return 0;
    }

    // Headline figures over the overloaded region: the worst LC
    // off/on ratio, and whether admitted-BE throughput only ever
    // degrades (5% tolerance) down to a sane floor.
    double minRatio = 0;
    bool beMonotone = true;
    double beKnee = 0;
    double beFloor = 0;
    for (std::size_t i = 0; i < kLoadsK.size(); ++i)
        beKnee = std::max(beKnee, outs[i * 2 + 1].beRps);
    for (std::size_t i = kOverloadFrom; i < kLoadsK.size(); ++i) {
        const Outcome &off = outs[i * 2];
        const Outcome &on = outs[i * 2 + 1];
        double ratio = on.lcP99 == 0
                           ? 0
                           : static_cast<double>(off.lcP99) /
                                 static_cast<double>(on.lcP99);
        if (minRatio == 0 || ratio < minRatio)
            minRatio = ratio;
        if (i > kOverloadFrom &&
            on.beRps > outs[i * 2 - 1].beRps * 1.05)
            beMonotone = false;
        if (beFloor == 0 || on.beRps < beFloor)
            beFloor = on.beRps;
    }
    double beFloorRatio = beKnee > 0 ? beFloor / beKnee : 0;
    std::printf("\noverloaded region (>= %.0f kRPS): LC p99 off/on "
                ">= %.1fx, admitted-BE floor %.0f rps (%.2fx of the "
                "knee), monotone degradation: %s\n",
                kLoadsK[kOverloadFrom], minRatio, beFloor, beFloorRatio,
                beMonotone ? "yes" : "no");

    if (!out.empty()) {
        std::ofstream os(out);
        fatal_if(!os, "cannot write %s", out.c_str());
        os.imbue(std::locale::classic());
        os << "{\n"
           << "  \"bench\": \"fig_admission\",\n"
           << "  \"unit\": \"nanoseconds_p99\",\n"
           << "  \"duration_ms\": " << jsonNum(nsToMs(duration)) << ",\n"
           << "  \"warmup_ms\": " << jsonNum(nsToMs(warmup)) << ",\n"
           << "  \"overload_from_krps\": "
           << jsonNum(kLoadsK[kOverloadFrom]) << ",\n"
           << "  \"lc_p99_min_off_on_ratio\": " << jsonNum(minRatio)
           << ",\n"
           << "  \"be_admitted_monotone\": "
           << (beMonotone ? "true" : "false") << ",\n"
           << "  \"be_floor_of_knee_ratio\": " << jsonNum(beFloorRatio)
           << ",\n"
           << "  \"results\": [\n";
        for (std::size_t i = 0; i < kLoadsK.size(); ++i) {
            const Outcome &off = outs[i * 2];
            const Outcome &on = outs[i * 2 + 1];
            os << "    {\"krps\": " << jsonNum(kLoadsK[i])
               << ", \"lc_p99_off_ns\": " << off.lcP99
               << ", \"lc_p99_on_ns\": " << on.lcP99
               << ", \"be_rps_off\": " << jsonNum(off.beRps)
               << ", \"be_rps_on\": " << jsonNum(on.beRps)
               << ", \"rejected_lc\": " << on.rejectedLc
               << ", \"rejected_be\": " << on.rejectedBe
               << ", \"state\": \"" << on.state << "\"}"
               << (i + 1 < kLoadsK.size() ? "," : "") << "\n";
        }
        os << "  ]\n"
           << "}\n";
        std::printf("wrote %s\n", out.c_str());
    }
    if (holdMs > 0)
        std::this_thread::sleep_for(std::chrono::duration<double,
                                    std::milli>(holdMs));
    return 0;
}
