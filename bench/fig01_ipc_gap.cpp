/**
 * @file
 * Fig. 1 (left): the performance gap between software-based IPC
 * delivery (kernel signals) and hardware-assisted delivery (UINTR).
 * Prints the latency distribution of both mechanisms side by side.
 */

#include <cstdio>

#include "common/cli.hh"
#include "obs/session.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "hw/ipc.hh"

using namespace preempt;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    int n = static_cast<int>(cli.getInt("samples", 200000));
    cli.rejectUnknown();

    hw::LatencyConfig cfg;
    auto signal = hw::ipcMechanism(hw::IpcKind::Signal, cfg);
    auto uintr = hw::ipcMechanism(hw::IpcKind::UintrFd, cfg);

    Rng rng(11);
    LatencyHistogram hs, hu;
    for (int i = 0; i < n; ++i) {
        hs.record(signal.oneWay.sample(rng));
        hu.record(uintr.oneWay.sample(rng));
    }

    ConsoleTable table("Fig. 1 left: SW (signal) vs HW (UINTR) IPC "
                       "delivery latency");
    table.header({"percentile", "signal (us)", "uintr (us)", "gap"});
    const double qs[] = {0.5, 0.9, 0.99, 0.999};
    for (double q : qs) {
        double s = nsToUs(hs.quantile(q));
        double u = nsToUs(hu.quantile(q));
        table.row({"p" + ConsoleTable::num(q * 100, q < 0.99 ? 0 : 1),
                   ConsoleTable::num(s, 2), ConsoleTable::num(u, 2),
                   ConsoleTable::num(s / u, 1) + "x"});
    }
    table.row({"mean", ConsoleTable::num(hs.mean() / 1e3, 2),
               ConsoleTable::num(hu.mean() / 1e3, 2),
               ConsoleTable::num(hs.mean() / hu.mean(), 1) + "x"});
    table.print();
    std::printf("\npaper reference: hardware delivery leaves a >10x gap "
                "to optimized software IPC.\n");
    return 0;
}
