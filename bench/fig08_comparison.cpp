/**
 * @file
 * Fig. 8: the headline comparison — median and 99% latency vs. load,
 * and maximum good throughput, for LibPreemptible (adaptive), Shinjuku,
 * Libinger and LibPreemptible-without-UINTR, on workloads A1, A2, B
 * and C.
 *
 * Setup mirrors the paper: 1 network thread, 5 workers for Shinjuku /
 * Libinger; 1 network thread, 4 workers + 1 timer core for
 * LibPreemptible. Maximum throughput bounds 99% latency by 200x the
 * average latency of a stable system.
 *
 * Expected shape: under high load LibPreemptible's tail is ~10x lower
 * than Shinjuku's; its max throughput is ~20-35% higher; the no-UINTR
 * fallback loses >5x in tail latency; Libinger trails everything.
 */

#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "obs/session.hh"
#include "fault/fault.hh"
#include "common/dist.hh"
#include "common/table.hh"
#include "workload/loadsweep.hh"

using namespace preempt;
using preempt::bench::RunOutcome;
using preempt::bench::RunSpec;

namespace {

struct System
{
    const char *key;
    const char *label;
    TimeNs quantum;
    bool adaptive;
};

const System kSystems[] = {
    {"libpreemptible", "LibPreemptible", usToNs(5), true},
    {"shinjuku", "Shinjuku", usToNs(5), false},
    {"libinger", "Libinger", usToNs(60), false},
    {"nouintr", "LibP w/o UINTR", usToNs(5), false},
};

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    fault::Session faultSession(cli);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 250));
    // This figure never gates submission; the flag exists so CI can
    // assert the off leg is byte-identical to the default run (the
    // admission plane must be invisible when disabled).
    std::string admission = cli.getString("admission", "off");
    exp::Harness harness =
        preempt::bench::makeHarness(cli, obsSession, &faultSession);
    cli.rejectUnknown();
    fatal_if(admission != "off",
             "fig08 supports only --admission=off (see fig_admission "
             "for the gated sweep)");

    struct Wl
    {
        const char *name;
        std::vector<double> loads_k; // kRPS operating points
        double mean_service_us;      // for the p99 bound
    };
    const Wl wls[] = {
        {"A1", {300, 600, 900, 1100, 1300}, 3.0},
        {"A2", {150, 250, 350, 420, 500}, 7.5},
        {"B", {200, 400, 600, 700, 800}, 5.0},
        {"C", {200, 400, 600, 800, 900}, 3.0},
    };

    for (const Wl &wl : wls) {
        // Grid phase: one cell per (load, system) point, submitted in
        // row order so the merged output matches the sequential run.
        std::vector<RunSpec> specs;
        for (double load : wl.loads_k) {
            for (const System &s : kSystems) {
                RunSpec spec;
                spec.system = s.key;
                spec.workload = wl.name;
                spec.rps = load * 1e3;
                spec.quantum = s.quantum;
                spec.adaptive = s.adaptive;
                spec.duration = duration;
                specs.push_back(spec);
            }
        }
        std::vector<RunOutcome> outs = harness.map<RunOutcome>(
            specs.size(), [&](const exp::CellEnv &env) {
                return preempt::bench::runOne(specs[env.index]);
            });

        ConsoleTable table(std::string("Fig. 8, workload ") + wl.name +
                           ": p50 / p99 latency (us) vs load");
        std::vector<std::string> header{"load (kRPS)"};
        for (const System &s : kSystems)
            header.push_back(s.label);
        table.header(header);

        std::size_t cell = 0;
        for (double load : wl.loads_k) {
            std::vector<std::string> row{ConsoleTable::num(load, 0)};
            for (const System &s : kSystems) {
                (void)s;
                const RunOutcome &out = outs[cell++];
                row.push_back(preempt::bench::fmtUs(out.p50) + " / " +
                              preempt::bench::fmtUs(out.p99));
            }
            table.row(row);
        }
        table.print();

        // Max throughput: p99 bounded by 200x stable-system average.
        // Sweep phase: the operating points of every system's sweep
        // are independent cells; score each system's slice afterwards.
        // The grid focuses on the saturation knee so close knees
        // (e.g. workload B) resolve.
        TimeNs bound = usToNs(200.0 * wl.mean_service_us);
        std::vector<double> grid =
            workload::sweepGrid(wl.loads_k.back() * 0.55e3,
                                wl.loads_k.back() * 1.35e3, 20);
        std::vector<RunSpec> sweepSpecs;
        for (const System &s : kSystems) {
            for (double offered : grid) {
                RunSpec spec;
                spec.system = s.key;
                spec.workload = wl.name;
                spec.rps = offered;
                spec.quantum = s.quantum;
                spec.adaptive = s.adaptive;
                spec.duration = duration;
                sweepSpecs.push_back(spec);
            }
        }
        std::vector<workload::SweepPoint> points =
            harness.map<workload::SweepPoint>(
                sweepSpecs.size(), [&](const exp::CellEnv &env) {
                    RunOutcome out =
                        preempt::bench::runOne(sweepSpecs[env.index]);
                    workload::SweepPoint p;
                    p.offeredRps = out.offeredRps;
                    p.achievedRps = out.achievedRps;
                    p.p50 = out.p50;
                    p.p99 = out.p99;
                    p.completed = out.completed;
                    return p;
                });

        ConsoleTable thr(std::string("Fig. 8, workload ") + wl.name +
                         ": max throughput (p99 <= " +
                         ConsoleTable::num(nsToUs(bound), 0) + " us)");
        thr.header({"system", "max good throughput (kRPS)"});
        double lib_thr = 0, shj_thr = 0;
        for (std::size_t si = 0; si < std::size(kSystems); ++si) {
            const System &s = kSystems[si];
            auto first = points.begin() +
                         static_cast<std::ptrdiff_t>(si * grid.size());
            workload::SweepResult sweep = workload::scoreSweep(
                {first, first + static_cast<std::ptrdiff_t>(grid.size())},
                bound);
            thr.row({s.label,
                     ConsoleTable::num(sweep.maxGoodRps / 1e3, 0)});
            if (std::string(s.key) == "libpreemptible")
                lib_thr = sweep.maxGoodRps;
            if (std::string(s.key) == "shinjuku")
                shj_thr = sweep.maxGoodRps;
        }
        thr.print();
        if (shj_thr > 0) {
            std::printf("LibPreemptible vs Shinjuku throughput: +%.0f%% "
                        "(paper: +22%% on A1, +33%% on C)\n\n",
                        100.0 * (lib_thr / shj_thr - 1.0));
        }
    }
    return 0;
}
