/**
 * @file
 * Fig. 1 (right): normalized preemption overhead (CPU time spent in
 * preemption machinery vs. lean execution time) for microsecond-scale
 * workloads running on Shinjuku, ranked by workload dispersion, each
 * at the time quantum giving it the best tail latency.
 *
 * Paper reference values: A1 0.9, A2 0.50, B 0.70, C 0.51.
 */

#include <cstdio>
#include <vector>

#include "baselines/shinjuku_sim.hh"
#include "bench/bench_util.hh"
#include "workload/generator.hh"
#include "common/cli.hh"
#include "obs/session.hh"
#include "common/dist.hh"
#include "common/rng.hh"
#include "common/table.hh"

using namespace preempt;
using preempt::bench::RunOutcome;
using preempt::bench::RunSpec;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 300));
    cli.rejectUnknown();

    struct Point
    {
        const char *wl;
        double load_rps;      // high-load operating point
        TimeNs best_quantum;  // tail-optimal quantum for Shinjuku
    };
    // Tail-optimal quanta found by the fig02-style sweep: fine slicing
    // pays off for the heavy-tailed A workloads, coarse for B.
    const Point points[] = {
        {"A1", 900e3, usToNs(5)},
        {"A2", 380e3, usToNs(10)},
        {"B", 550e3, usToNs(25)},
        {"C", 700e3, usToNs(10)},
    };

    Rng rng(3);
    ConsoleTable table("Fig. 1 right: Shinjuku preemption overhead / "
                       "execution time (ranked by dispersion)");
    table.header({"workload", "dispersion (SCV)", "quantum (us)",
                  "overhead ratio", "paper"});
    const char *paper_vals[] = {"0.90", "0.50", "0.70", "0.51"};
    int i = 0;
    for (const Point &p : points) {
        // Run Shinjuku directly so the dispatcher core's time can be
        // charged as overhead: the dedicated scheduling core spins for
        // the whole run and is pure overhead relative to lean
        // execution.
        sim::Simulator sim(42);
        hw::LatencyConfig cfg;
        baselines::ShinjukuConfig sc;
        sc.nWorkers = 6;
        sc.quantum = p.best_quantum;
        baselines::ShinjukuSim server(sim, cfg, sc);
        workload::WorkloadSpec wspec{
            workload::makeServiceLaw(p.wl, duration),
            workload::RateLaw::constant(p.load_rps), duration};
        workload::OpenLoopGenerator gen(sim, std::move(wspec),
                                        [&](workload::Request &r) {
                                            server.onArrival(r);
                                        });
        gen.start();
        sim.runUntil(duration + msToNs(100));
        const auto &m = server.metrics();
        // Overhead = worker-side preemption machinery + the whole
        // dispatcher core (replace its booked op time with the full
        // core-seconds it burns polling).
        double dispatcher_busy =
            static_cast<double>(server.machine().totalBusy()) -
            static_cast<double>(m.executionNs());
        double worker_ovh = static_cast<double>(m.preemptionOverheadNs()) -
                            dispatcher_busy;
        if (worker_ovh < 0)
            worker_ovh = static_cast<double>(m.preemptionOverheadNs());
        double overhead =
            (worker_ovh + static_cast<double>(duration)) /
            static_cast<double>(m.executionNs());

        double scv = 0;
        if (std::string(p.wl) == "C") {
            // Dispersion of the first (heavy) phase dominates.
            scv = estimateScv(*makePaperWorkload("A1"), rng, 100000);
        } else {
            scv = estimateScv(*makePaperWorkload(p.wl), rng, 100000);
        }
        table.row({p.wl, ConsoleTable::num(scv, 1),
                   ConsoleTable::num(nsToUs(p.best_quantum), 0),
                   ConsoleTable::num(overhead, 2),
                   paper_vals[i++]});
    }
    table.print();
    std::printf("\nshape check: overhead is largest for the most "
                "dispersive workload (A1) and significant everywhere.\n");
    return 0;
}
