/**
 * @file
 * Shared helpers for the per-figure bench binaries: construct any of
 * the simulated runtimes, drive it with a paper workload at a given
 * offered load, and report the metrics the paper plots.
 *
 * Core-count convention follows the evaluation setup (section V-A):
 * `workers` is the LibPreemptible worker count; Shinjuku and Libinger
 * get workers+1 because they have no dedicated timer core (paper: 1
 * network + 5 workers vs 1 network + 4 workers + 1 timer).
 */

#ifndef PREEMPT_BENCH_BENCH_UTIL_HH
#define PREEMPT_BENCH_BENCH_UTIL_HH

#include <functional>
#include <memory>
#include <string>

#include "common/time.hh"
#include "exp/harness.hh"
#include "hw/latency_config.hh"
#include "runtime_sim/server.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

namespace preempt {
class CommandLine;
} // namespace preempt

namespace preempt::obs {
class Session;
} // namespace preempt::obs

namespace preempt::bench {

/** One experiment configuration. */
struct RunSpec
{
    /** libpreemptible | shinjuku | libinger | nouintr | nopreempt */
    std::string system = "libpreemptible";
    /** A1 | A2 | B | C */
    std::string workload = "A1";
    double rps = 500e3;
    TimeNs quantum = usToNs(5);
    int workers = 4;
    TimeNs duration = msToNs(300);
    bool adaptive = false;
    TimeNs adaptivePeriod = msToNs(50);
    std::uint64_t seed = 42;
    /** Optional per-completion hook forwarded to the runtime. */
    std::function<void(TimeNs, const workload::Request &)> completionHook;
};

/** What the paper's figures report per operating point. */
struct RunOutcome
{
    std::string name;
    double offeredRps = 0;
    double achievedRps = 0;
    TimeNs p50 = 0;
    TimeNs p99 = 0;
    TimeNs maxLatency = 0;
    double overheadRatio = 0;
    std::uint64_t completed = 0;
    std::uint64_t preemptions = 0;
};

/** Build a server model for a spec inside an existing simulator. */
std::unique_ptr<runtime_sim::ServerModel>
makeServer(sim::Simulator &sim, const hw::LatencyConfig &cfg,
           const RunSpec &spec);

/** Run one experiment end to end. */
RunOutcome runOne(const RunSpec &spec,
                  const hw::LatencyConfig &cfg =
                      hw::LatencyConfig::paperCalibrated());

/**
 * Standard --jobs plumbing for the figure benches: consumes --jobs
 * (default 0 = hardware concurrency; --jobs=1 is the sequential
 * driver) and builds the cell harness wired to the bench's obs and
 * fault sessions. Output is byte-identical at any --jobs value.
 */
exp::Harness makeHarness(CommandLine &cli, obs::Session &obs,
                         fault::Session *fault = nullptr,
                         std::uint64_t base_seed = 0);

/** Render a latency value for tables (microseconds, 1 decimal). */
std::string fmtUs(TimeNs ns);

} // namespace preempt::bench

#endif // PREEMPT_BENCH_BENCH_UTIL_HH
