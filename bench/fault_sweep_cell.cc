#include "bench/fault_sweep_cell.hh"

#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "fault/fault.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

namespace preempt::bench {

namespace {

/** Candidate rules the sweep samples plans from. */
struct Candidate
{
    fault::Action action;
    fault::Site site;
    bool signalOnly; ///< only meaningful for the no-UINTR ablation
};

const Candidate kCandidates[] = {
    {fault::Action::Drop, fault::Site::Utimer, false},
    {fault::Action::Coalesce, fault::Site::Utimer, false},
    {fault::Action::Jitter, fault::Site::Utimer, false},
    {fault::Action::Duplicate, fault::Site::Utimer, false},
    {fault::Action::Slow, fault::Site::Handler, false},
    {fault::Action::Drop, fault::Site::Signal, true},
    {fault::Action::Delay, fault::Site::Signal, true},
    {fault::Action::Reorder, fault::Site::Signal, true},
};

fault::FaultPlan
randomPlan(Rng &pick, bool nouintr)
{
    fault::FaultPlan plan;
    for (const Candidate &c : kCandidates) {
        if (c.signalOnly && !nouintr)
            continue;
        if (pick.below(2) == 0)
            continue;
        fault::FaultRule rule;
        rule.action = c.action;
        rule.site = c.site;
        rule.probability = 0.02 + 0.28 * pick.uniform();
        rule.param = 0;
        if (c.action == fault::Action::Delay)
            rule.param = 100 + pick.below(4000);
        else if (c.action == fault::Action::Slow)
            rule.param = 500 + pick.below(3000);
        plan.rules.push_back(rule);
    }
    return plan;
}

} // namespace

FaultConfigOutcome
runFaultConfig(std::uint64_t seed, const std::string &forced_spec)
{
    Rng pick(seed ^ 0xfa17);

    bool nouintr = pick.below(5) == 0;
    fault::FaultPlan plan = forced_spec.empty()
                                ? randomPlan(pick, nouintr)
                                : fault::FaultPlan::parse(forced_spec);
    std::string repro = "seed=" + std::to_string(seed) +
                        " plan=" + plan.str();

    // Thread-scoped injector: cells of the parallel sweep must not
    // share fault streams (or clobber a process-global pointer).
    std::optional<fault::Injector> inj;
    if (!plan.empty())
        inj.emplace(plan, seed * 131 + 5);
    fault::ScopedThreadInjector scoped(inj ? &*inj : nullptr);

    int workers = 1 + static_cast<int>(pick.below(4));
    TimeNs quantum = usToNs(3 + pick.below(20));
    double rps = (0.15 + 0.25 * pick.uniform()) *
                 static_cast<double>(workers) / 5e-6;
    TimeNs duration = msToNs(2 + pick.below(4));

    sim::Simulator sim(seed * 7919 + 13);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = workers;
    rc.quantum = quantum;
    rc.workStealing = pick.below(2) == 1;
    rc.policy = pick.below(2) == 1
                    ? runtime_sim::SchedPolicy::NewFirst
                    : runtime_sim::SchedPolicy::RoundRobin;
    if (nouintr)
        rc.delivery = runtime_sim::TimerDelivery::KernelSignal;
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);

    workload::WorkloadSpec spec{
        workload::makeServiceLaw("A1", duration),
        workload::RateLaw::constant(rps), duration};
    workload::OpenLoopGenerator gen(
        sim, std::move(spec),
        [&](workload::Request &r) { server.onArrival(r); });
    gen.start();
    sim.runUntil(duration + secToNs(30));

    // ----- Invariants (DESIGN.md section 9) -------------------------
    const auto &m = server.metrics();
    fatal_if(m.arrived() != m.completed(),
             "request conservation violated: arrived=%llu completed=%llu "
             "(%s)",
             static_cast<unsigned long long>(m.arrived()),
             static_cast<unsigned long long>(m.completed()),
             repro.c_str());
    std::vector<TimeNs> lat;
    for (const auto &req : gen.pool()) {
        fatal_if(!req.done(), "request %llu never finished (%s)",
                 static_cast<unsigned long long>(req.id), repro.c_str());
        fatal_if(req.remaining != 0,
                 "request %llu finished with remaining work (%s)",
                 static_cast<unsigned long long>(req.id), repro.c_str());
        fatal_if(req.latency() + 2 < req.service,
                 "causality violated for request %llu (%s)",
                 static_cast<unsigned long long>(req.id), repro.c_str());
        lat.push_back(req.latency());
    }
    fatal_if(lat.size() != m.arrived(),
             "request pool does not match metrics (%s)", repro.c_str());
    TimeNs p99 = lat.empty() ? 0 : percentileNearestRank(lat, 0.99);
    fatal_if(p99 >= msToNs(500),
             "tail degradation unbounded: p99=%llu ns (%s)",
             static_cast<unsigned long long>(p99), repro.c_str());

    FaultConfigOutcome out;
    out.requests = m.arrived();
    out.watchdogRecoveries = server.watchdogRecoveries();
    out.redundantFires = server.utimer().redundantFires();
    if (inj) {
        out.injected = inj->totalInjected();
        out.droppedPlans =
            inj->injected(fault::Action::Drop, fault::Site::Utimer);
    }
    out.p99 = p99;
    return out;
}

} // namespace preempt::bench
