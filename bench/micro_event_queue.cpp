/**
 * @file
 * Microbenchmark of the discrete-event hot path, and the first entry
 * in the repo's perf-regression trajectory.
 *
 * Every figure and table in this reproduction is driven through
 * `sim::EventQueue`, so its schedule/cancel/fire cost is the simulator
 * equivalent of the kernel-timer overhead the paper's LibUtimer
 * exists to avoid. This bench pits the current implementation
 * (generation-tagged slot arena + implicit 4-ary heap + inline
 * callback storage) against a frozen copy of the seed implementation
 * (std::function + std::priority_queue + two unordered_sets) on three
 * mixes:
 *
 *   fifo          schedule N ascending-time events, fire them all —
 *                 the pure throughput path.
 *   cancel_heavy  schedule, then cancel ~75% before firing — the
 *                 runtime-shaped mix: nearly every completed request
 *                 segment revokes its pending preemption event.
 *   steady_state  a fixed population of outstanding events; each fire
 *                 schedules a successor — the simulator steady state.
 *
 * Emits BENCH_eventqueue.json (events/sec per mix per implementation,
 * plus speedups) for later PRs to regress against.
 */

#include <cstdio>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/cli.hh"
#include "obs/session.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "preemptible/hosttime.hh"
#include "sim/event_queue.hh"

using namespace preempt;

namespace {

/**
 * Frozen copy of the seed EventQueue (PR 0) kept as the bench
 * baseline: heap-allocated std::function callbacks, a binary
 * std::priority_queue, and pending_/cancelled_ hash sets paying two
 * lookups per event. Do not "fix" it — its job is to not change.
 */
class LegacyEventQueue
{
  public:
    using EventId = std::uint64_t;

    LegacyEventQueue() : nextSeq_(1) {}

    EventId
    schedule(TimeNs when, std::function<void(TimeNs)> fn)
    {
        EventId id = nextSeq_++;
        heap_.push(Entry{when, id, std::move(fn)});
        pending_.insert(id);
        return id;
    }

    void
    cancel(EventId id)
    {
        auto it = pending_.find(id);
        if (it == pending_.end())
            return;
        pending_.erase(it);
        cancelled_.insert(id);
    }

    bool
    empty()
    {
        skipDead();
        return heap_.empty();
    }

    TimeNs
    runOne()
    {
        skipDead();
        Entry entry = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        pending_.erase(entry.id);
        entry.fn(entry.when);
        return entry.when;
    }

  private:
    struct Entry
    {
        TimeNs when;
        EventId id;
        std::function<void(TimeNs)> fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    void
    skipDead()
    {
        while (!heap_.empty()) {
            auto it = cancelled_.find(heap_.top().id);
            if (it == cancelled_.end())
                return;
            cancelled_.erase(it);
            heap_.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<EventId> pending_;
    std::unordered_set<EventId> cancelled_;
    EventId nextSeq_;
};

/** Events/sec over `ops` scheduled events for one mix. */
struct MixResult
{
    double current = 0;
    double legacy = 0;
    double speedup() const { return legacy > 0 ? current / legacy : 0; }
};

/** The per-event payload: a core id and a request pointer, like the
 *  runtime's completion/preemption lambdas. */
struct Payload
{
    int core;
    std::uint64_t *sink;
};

template <typename Q>
double
runFifo(int ops)
{
    Q q;
    std::uint64_t sink = 0;
    Payload p{3, &sink};
    TimeNs t0 = runtime::hostNowNs();
    for (int i = 0; i < ops; ++i) {
        q.schedule(static_cast<TimeNs>(i) + 1, [p](TimeNs t) {
            *p.sink += t + static_cast<TimeNs>(p.core);
        });
    }
    while (!q.empty())
        q.runOne();
    TimeNs t1 = runtime::hostNowNs();
    panic_if(sink == 0, "bench sink unset");
    return static_cast<double>(ops) / nsToSec(t1 - t0);
}

template <typename Q>
double
runCancelHeavy(int ops, Rng &rng)
{
    Q q;
    std::uint64_t sink = 0;
    Payload p{5, &sink};
    // Both implementations use std::uint64_t handles.
    std::vector<std::uint64_t> ids;
    ids.reserve(256);
    TimeNs t0 = runtime::hostNowNs();
    int scheduled = 0;
    TimeNs now = 0;
    while (scheduled < ops) {
        // A batch of armed preemption deadlines...
        ids.clear();
        for (int i = 0; i < 256 && scheduled < ops; ++i, ++scheduled) {
            ids.push_back(q.schedule(now + 100 + rng.below(1000),
                                     [p](TimeNs t) { *p.sink += t; }));
        }
        // ...75% of which are revoked because the function finished
        // inside its quantum.
        for (std::size_t i = 0; i < ids.size(); ++i) {
            if (i % 4 != 0)
                q.cancel(ids[i]);
        }
        while (!q.empty())
            now = q.runOne();
    }
    TimeNs t1 = runtime::hostNowNs();
    return static_cast<double>(ops) / nsToSec(t1 - t0);
}

template <typename Q>
double
runSteadyState(int ops, int population, Rng &rng)
{
    Q q;
    std::uint64_t sink = 0;
    Payload p{7, &sink};
    for (int i = 0; i < population; ++i) {
        q.schedule(1 + rng.below(10000),
                   [p](TimeNs t) { *p.sink += t; });
    }
    TimeNs t0 = runtime::hostNowNs();
    for (int i = 0; i < ops; ++i) {
        TimeNs now = q.runOne();
        q.schedule(now + 1 + rng.below(10000),
                   [p](TimeNs t) { *p.sink += t; });
    }
    TimeNs t1 = runtime::hostNowNs();
    return static_cast<double>(ops) / nsToSec(t1 - t0);
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    int ops = static_cast<int>(cli.getInt("ops", 2000000));
    int population = static_cast<int>(cli.getInt("population", 4096));
    int reps = static_cast<int>(cli.getInt("reps", 3));
    std::string out = cli.getString("out", "BENCH_eventqueue.json");
    cli.rejectUnknown();

    MixResult fifo, cancel, steady;
    // Best-of-reps for each side independently: robust to scheduler
    // noise on a shared machine.
    for (int r = 0; r < reps; ++r) {
        Rng rng(42 + static_cast<std::uint64_t>(r));
        fifo.current =
            std::max(fifo.current, runFifo<sim::EventQueue>(ops));
        fifo.legacy = std::max(fifo.legacy, runFifo<LegacyEventQueue>(ops));
        cancel.current = std::max(
            cancel.current, runCancelHeavy<sim::EventQueue>(ops, rng));
        cancel.legacy = std::max(
            cancel.legacy, runCancelHeavy<LegacyEventQueue>(ops, rng));
        steady.current = std::max(
            steady.current,
            runSteadyState<sim::EventQueue>(ops, population, rng));
        steady.legacy = std::max(
            steady.legacy,
            runSteadyState<LegacyEventQueue>(ops, population, rng));
    }

    ConsoleTable table("EventQueue throughput (million events/sec, "
                       "best of " + std::to_string(reps) + ")");
    table.header({"mix", "current", "legacy (seed)", "speedup"});
    auto row = [&](const char *name, const MixResult &m) {
        char cur[32], leg[32], spd[32];
        std::snprintf(cur, sizeof(cur), "%.2f", m.current / 1e6);
        std::snprintf(leg, sizeof(leg), "%.2f", m.legacy / 1e6);
        std::snprintf(spd, sizeof(spd), "%.2fx", m.speedup());
        table.row({name, cur, leg, spd});
    };
    row("fifo", fifo);
    row("cancel_heavy", cancel);
    row("steady_state", steady);
    table.print();

    FILE *f = std::fopen(out.c_str(), "w");
    fatal_if(!f, "cannot open %s for writing", out.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"eventqueue\",\n");
    std::fprintf(f, "  \"unit\": \"events_per_sec\",\n");
    std::fprintf(f, "  \"ops\": %d,\n", ops);
    std::fprintf(f, "  \"population\": %d,\n", population);
    std::fprintf(f, "  \"reps\": %d,\n", reps);
    auto mix = [&](const char *name, const MixResult &m, bool last) {
        std::fprintf(f,
                     "  \"%s\": {\"current\": %.0f, \"legacy\": %.0f, "
                     "\"speedup\": %.3f}%s\n",
                     name, m.current, m.legacy, m.speedup(),
                     last ? "" : ",");
    };
    mix("fifo", fifo, false);
    mix("cancel_heavy", cancel, false);
    mix("steady_state", steady, true);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());
    return 0;
}
