/**
 * @file
 * One cell of the fault-fuzzing sweep: a seeded LibPreemptible
 * configuration under a random (or forced) fault plan, checked
 * against the global invariants of DESIGN.md section 9. Shared
 * between bench/fault_sweep (the CI sweep driver) and
 * bench/micro_parallel (which times the same cells).
 *
 * A cell is deterministic in (seed, forced_spec): the configuration,
 * the fault plan, and the injector stream all derive from the seed,
 * never from global state, so cells can run on any thread in any
 * order.
 */

#ifndef PREEMPT_BENCH_FAULT_SWEEP_CELL_HH
#define PREEMPT_BENCH_FAULT_SWEEP_CELL_HH

#include <cstdint>
#include <string>

#include "common/time.hh"

namespace preempt::bench {

/** What one fault-sweep cell contributes to the report. */
struct FaultConfigOutcome
{
    std::uint64_t requests = 0;
    std::uint64_t injected = 0;
    std::uint64_t droppedPlans = 0;
    std::uint64_t watchdogRecoveries = 0;
    std::uint64_t redundantFires = 0;
    TimeNs p99 = 0;
};

/**
 * Run one seeded config; fatal (printing the seed + plan repro line)
 * on any invariant violation. `forced_spec` overrides the random plan
 * when non-empty (the --faults flag).
 */
FaultConfigOutcome runFaultConfig(std::uint64_t seed,
                                  const std::string &forced_spec);

} // namespace preempt::bench

#endif // PREEMPT_BENCH_FAULT_SWEEP_CELL_HH
