/**
 * @file
 * Fig. 10 / section V-B "deployment overhead": a gRPC-style
 * thread-pool RPC server with exponential service times, comparing the
 * blocking no-preemption pool against LibPreemptible with T_n
 * user-level threads per kernel thread, across QPS levels.
 *
 * Expected shape: overhead is minimal at low load and stays small
 * (~1-2% on p99) even around 89% of max load; more user-level threads
 * per kernel thread cost slightly more context switching.
 */

#include <cstdio>
#include <vector>

#include "apps/rpc_model.hh"
#include "bench/bench_util.hh"
#include "common/cli.hh"
#include "obs/session.hh"
#include "common/table.hh"
#include "workload/generator.hh"

using namespace preempt;

namespace {

workload::RunMetrics
run(const apps::RpcServerConfig &rc, double rps, TimeNs duration,
    double mean_service_us)
{
    sim::Simulator sim(42);
    hw::LatencyConfig cfg;
    apps::RpcServerSim server(sim, cfg, rc);
    workload::WorkloadSpec spec{
        workload::ServiceLaw(std::make_shared<ExponentialDist>(
            mean_service_us * 1e3)),
        workload::RateLaw::constant(rps), duration};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runUntil(duration + msToNs(100));
    return server.metrics();
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 300));
    double mean_us = cli.getDouble("mean-service-us", 20);
    int kthreads = static_cast<int>(cli.getInt("kthreads", 4));
    // Deployment config: a coarse safety-net quantum (5x the mean
    // service time) that only slices runaway requests.
    TimeNs quantum = usToNs(cli.getDouble("quantum-us", 100));
    cli.rejectUnknown();

    // Capacity = kthreads / mean service.
    double max_rps = static_cast<double>(kthreads) / (mean_us * 1e-6);
    const double load_fracs[] = {0.3, 0.5, 0.7, 0.89};
    const int tns[] = {1, 2, 4, 8};

    ConsoleTable table("Fig. 10: RPC p99 latency (us) — blocking pool vs "
                       "LibPreemptible with T_n user threads/kthread");
    std::vector<std::string> header{"load", "blocking"};
    for (int tn : tns)
        header.push_back("T_n=" + std::to_string(tn));
    header.push_back("overhead @T_n=4");
    table.header(header);

    for (double frac : load_fracs) {
        double rps = frac * max_rps;
        apps::RpcServerConfig base;
        base.nKernelThreads = kthreads;
        base.userThreadsPerKernel = 1;
        base.quantum = 0;
        auto mb = run(base, rps, duration, mean_us);
        TimeNs base_p99 = mb.lcLatency().p99();

        std::vector<std::string> row{
            ConsoleTable::num(frac * 100, 0) + "%",
            preempt::bench::fmtUs(base_p99)};
        TimeNs tn4 = 0;
        for (int tn : tns) {
            apps::RpcServerConfig rc;
            rc.nKernelThreads = kthreads;
            rc.userThreadsPerKernel = tn;
            rc.quantum = quantum;
            auto m = run(rc, rps, duration, mean_us);
            TimeNs p99 = m.lcLatency().p99();
            if (tn == 4)
                tn4 = p99;
            row.push_back(preempt::bench::fmtUs(p99));
        }
        double ovh = base_p99
                         ? 100.0 * (static_cast<double>(tn4) /
                                        static_cast<double>(base_p99) -
                                    1.0)
                         : 0.0;
        row.push_back(ConsoleTable::num(ovh, 1) + "%");
        table.row(row);
    }
    table.print();
    std::printf("\npaper reference: ~1.2%% tail overhead at 89%% load; "
                "overhead grows sublinearly with load.\n");
    return 0;
}
