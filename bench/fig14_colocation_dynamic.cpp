/**
 * @file
 * Fig. 14: average latency of colocated LC and BE jobs over time under
 * a spiky load (QPS bursts from 40 to 110 kRPS), for three policies:
 *
 *   constant 50 us interval — gentle on BE, LC suffers during spikes;
 *   constant 10 us interval — LC stays low (~3 us, 5x better than no
 *     preemption), BE pays more;
 *   dynamic policy #2 — a QPS monitor sets the preemption interval
 *     between 10 and 50 us according to load: LC stays low during
 *     spikes while BE is spared during quiet periods.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.hh"
#include "common/cli.hh"
#include "obs/session.hh"
#include "common/table.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

using namespace preempt;

namespace {

struct Window
{
    double qpsK = 0;
    double lcAvgUs = 0;
    double beAvgUs = 0;
};

std::vector<Window>
run(bool dynamic, TimeNs fixed_quantum, TimeNs duration, TimeNs window)
{
    sim::Simulator sim(42);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 1;
    rc.policy = runtime_sim::SchedPolicy::NewFirst; // section V-C policy #1
    rc.quantum = fixed_quantum;

    std::size_t bins = static_cast<std::size_t>(duration / window) + 1;
    struct Acc
    {
        double lcSum = 0, beSum = 0;
        std::uint64_t lcN = 0, beN = 0, arrivals = 0;
    };
    std::vector<Acc> acc(bins);

    rc.completionHook = [&](TimeNs now, const workload::Request &req) {
        std::size_t b = static_cast<std::size_t>(now / window);
        if (b >= bins)
            return;
        if (req.cls == workload::RequestClass::BestEffort) {
            acc[b].beSum += static_cast<double>(req.latency());
            ++acc[b].beN;
        } else {
            acc[b].lcSum += static_cast<double>(req.latency());
            ++acc[b].lcN;
        }
    };

    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);

    workload::WorkloadSpec spec{
        workload::ServiceLaw(std::make_shared<LogNormalDist>(1200.0, 0.6)),
        workload::RateLaw::bursty(40e3, 110e3, duration / 4, 0.3),
        duration};
    spec.beFraction = 0.02;
    spec.beService = std::make_shared<workload::ServiceLaw>(
        std::make_shared<LogNormalDist>(100e3, 0.25));

    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        std::size_t b =
                                            static_cast<std::size_t>(
                                                sim.now() / window);
                                        if (b < bins)
                                            ++acc[b].arrivals;
                                        server.onArrival(r);
                                    });

    if (dynamic) {
        // Policy #2: QPS monitor + preemption-interval controller.
        auto last_count = std::make_shared<std::uint64_t>(0);
        sim.every(window, [&, last_count](TimeNs now) {
            std::uint64_t total = gen.generated();
            double qps = static_cast<double>(total - *last_count) /
                         nsToSec(window);
            *last_count = total;
            // Map load to the [10, 50] us interval range.
            TimeNs q = qps > 75e3 ? usToNs(10)
                                  : (qps > 55e3 ? usToNs(25) : usToNs(50));
            server.setQuantum(q);
            (void)now;
        });
    }

    gen.start();
    sim.runUntil(duration + msToNs(100));

    std::vector<Window> out;
    for (std::size_t b = 0; b * window < duration; ++b) {
        Window w;
        w.qpsK = static_cast<double>(acc[b].arrivals) / nsToSec(window) /
                 1e3;
        w.lcAvgUs = acc[b].lcN ? acc[b].lcSum / acc[b].lcN / 1e3 : 0;
        w.beAvgUs = acc[b].beN ? acc[b].beSum / acc[b].beN / 1e3 : 0;
        out.push_back(w);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 4000));
    TimeNs window = msToNs(cli.getDouble("window-ms", 250));
    exp::Harness harness = bench::makeHarness(cli, obsSession);
    cli.rejectUnknown();

    // Three policy cells: constant 50 us, constant 10 us, dynamic.
    struct Policy
    {
        bool dynamic;
        TimeNs quantum;
    };
    const Policy policies[] = {
        {false, usToNs(50)}, {false, usToNs(10)}, {true, usToNs(50)}};
    std::vector<std::vector<Window>> series =
        harness.map<std::vector<Window>>(
            3, [&](const exp::CellEnv &env) {
                const Policy &p = policies[env.index];
                return run(p.dynamic, p.quantum, duration, window);
            });
    const std::vector<Window> &c50 = series[0];
    const std::vector<Window> &c10 = series[1];
    const std::vector<Window> &dyn = series[2];

    ConsoleTable table("Fig. 14: avg latency (us) over time, bursty "
                       "40->110 kRPS load");
    table.header({"t (ms)", "QPS (k)", "LC@50us", "LC@10us", "LC@dyn",
                  "BE@50us", "BE@10us", "BE@dyn"});
    for (std::size_t b = 0; b < c50.size(); ++b) {
        table.row({ConsoleTable::num(
                       nsToMs(static_cast<TimeNs>(b) * window), 0),
                   ConsoleTable::num(c50[b].qpsK, 0),
                   ConsoleTable::num(c50[b].lcAvgUs, 1),
                   ConsoleTable::num(c10[b].lcAvgUs, 1),
                   ConsoleTable::num(dyn[b].lcAvgUs, 1),
                   ConsoleTable::num(c50[b].beAvgUs, 0),
                   ConsoleTable::num(c10[b].beAvgUs, 0),
                   ConsoleTable::num(dyn[b].beAvgUs, 0)});
    }
    table.print();

    auto avg = [](const std::vector<Window> &v, bool lc) {
        double s = 0;
        int n = 0;
        for (const auto &w : v) {
            double x = lc ? w.lcAvgUs : w.beAvgUs;
            if (x > 0) {
                s += x;
                ++n;
            }
        }
        return n ? s / n : 0.0;
    };
    std::printf("\nmeans: LC %.1f/%.1f/%.1f us, BE %.0f/%.0f/%.0f us "
                "(50us / 10us / dynamic)\n",
                avg(c50, true), avg(c10, true), avg(dyn, true),
                avg(c50, false), avg(c10, false), avg(dyn, false));
    std::printf("expected shape: dynamic tracks the 10 us policy on LC "
                "latency during spikes while staying near the 50 us "
                "policy on BE latency during quiet periods.\n");
    return 0;
}
