/**
 * @file
 * Fig. 12: precision of LibUtimer vs. a periodic kernel timer under
 * background activity, with 26 threads armed, at 100 us and 20 us
 * target quanta. The paper's observation: the kernel timer cannot
 * express 20 us (a ~60 us granularity line appears) and jitters
 * heavily, while LibUtimer's inter-fire interval tracks the target
 * with ~1% average relative error over 5000 samples.
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.hh"
#include "common/cli.hh"
#include "obs/session.hh"
#include "fault/fault.hh"
#include "common/histogram.hh"
#include "common/table.hh"
#include "hw/kernel.hh"
#include "runtime_sim/utimer_model.hh"
#include "sim/simulator.hh"

using namespace preempt;

namespace {

struct Precision
{
    double meanUs;
    double stdUs;
    double relErrPct; ///< mean |interval - target| / target
};

Precision
measure(bool use_utimer, TimeNs target, int samples, int bg_threads)
{
    sim::Simulator sim(9);
    hw::LatencyConfig cfg;
    LatencyHistogram intervals;
    double abs_err = 0;
    int collected = 0;

    if (use_utimer) {
        runtime_sim::UTimerModel utimer(
            sim, cfg, runtime_sim::TimerDelivery::Uintr);
        // Background threads keep their own deadlines armed, like the
        // stress-ng contention in the paper.
        for (int i = 0; i < bg_threads; ++i) {
            int slot = utimer.registerThread();
            utimer.startPeriodic(slot, target * 3 + 777, [](TimeNs) {});
        }
        int slot = utimer.registerThread();
        auto last = std::make_shared<TimeNs>(0);
        utimer.startPeriodic(slot, target, [&, last](TimeNs t) {
            if (*last != 0 && collected < samples) {
                TimeNs gap = t - *last;
                intervals.record(gap);
                abs_err += std::abs(static_cast<double>(gap) -
                                    static_cast<double>(target));
                ++collected;
                if (collected >= samples)
                    sim.stop();
            }
            *last = t;
        });
        sim.runUntil(secToNs(600));
    } else {
        hw::SignalPath signals(sim, cfg);
        // Background kernel timers inject signal-path contention.
        std::vector<std::unique_ptr<hw::KernelTimer>> bg;
        for (int i = 0; i < bg_threads; ++i) {
            bg.push_back(
                std::make_unique<hw::KernelTimer>(sim, cfg, signals));
            bg.back()->arm(target * 3 + 777, true, [](TimeNs, TimeNs) {});
        }
        hw::KernelTimer timer(sim, cfg, signals);
        auto last = std::make_shared<TimeNs>(0);
        timer.arm(target, true, [&, last](TimeNs t, TimeNs) {
            if (*last != 0 && collected < samples) {
                TimeNs gap = t - *last;
                intervals.record(gap);
                abs_err += std::abs(static_cast<double>(gap) -
                                    static_cast<double>(target));
                ++collected;
                if (collected >= samples)
                    sim.stop();
            }
            *last = t;
        });
        sim.runUntil(secToNs(600));
    }

    Precision p;
    p.meanUs = intervals.mean() / 1e3;
    p.stdUs = intervals.stddev() / 1e3;
    p.relErrPct = collected
                      ? 100.0 * (abs_err / collected) /
                            static_cast<double>(target)
                      : 0.0;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    fault::Session faultSession(cli);
    int samples = static_cast<int>(cli.getInt("samples", 5000));
    int bg = static_cast<int>(cli.getInt("bg-threads", 26));
    exp::Harness harness =
        bench::makeHarness(cli, obsSession, &faultSession);
    cli.rejectUnknown();

    // One cell per (target, timer) point: kernel then LibUtimer at
    // each target, matching the sequential measurement order.
    const std::vector<double> targetsUs{100.0, 20.0};
    std::vector<Precision> prec = harness.map<Precision>(
        targetsUs.size() * 2, [&](const exp::CellEnv &env) {
            TimeNs target = usToNs(targetsUs[env.index / 2]);
            return measure(env.index % 2 == 1, target, samples, bg);
        });

    ConsoleTable table("Fig. 12: timer precision with 26 armed threads "
                       "and background noise (5000 samples)");
    table.header({"timer", "target (us)", "mean interval (us)",
                  "stddev (us)", "avg rel. error"});
    for (std::size_t i = 0; i < targetsUs.size(); ++i) {
        double target_us = targetsUs[i];
        const Precision &k = prec[i * 2];
        const Precision &u = prec[i * 2 + 1];
        table.row({"kernel timer", ConsoleTable::num(target_us, 0),
                   ConsoleTable::num(k.meanUs, 1),
                   ConsoleTable::num(k.stdUs, 1),
                   ConsoleTable::num(k.relErrPct, 1) + "%"});
        table.row({"LibUtimer", ConsoleTable::num(target_us, 0),
                   ConsoleTable::num(u.meanUs, 1),
                   ConsoleTable::num(u.stdUs, 1),
                   ConsoleTable::num(u.relErrPct, 1) + "%"});
    }
    table.print();
    std::printf("\nexpected shape: the kernel timer pins to its ~60 us "
                "granularity line (so a 20 us target is unexpressible) "
                "with high variance; LibUtimer stays ~1%% off target.\n");
    return 0;
}
