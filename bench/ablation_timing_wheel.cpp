/**
 * @file
 * Ablation: LibUtimer's deadline data structure — the default linear
 * slot scan versus the hierarchical timing wheel the paper opts into
 * for large thread counts (section IV-A). Measures real host-CPU cost
 * per timer-core iteration as the registered thread count grows.
 */

#include <cstdio>
#include <vector>

#include "common/cli.hh"
#include "obs/session.hh"
#include "common/table.hh"
#include "common/rng.hh"
#include "core/timing_wheel.hh"
#include "preemptible/hosttime.hh"

using namespace preempt;

namespace {

/** ns per scan pass over n armed deadline slots (linear design). */
double
linearScanCost(int n, int iters)
{
    std::vector<TimeNs> deadlines(static_cast<std::size_t>(n));
    Rng rng(1);
    for (auto &d : deadlines)
        d = usToNs(100) + rng.below(1000000);
    volatile std::uint64_t fired = 0;
    TimeNs t0 = runtime::hostNowNs();
    for (int it = 0; it < iters; ++it) {
        TimeNs now = static_cast<TimeNs>(it) * 150;
        for (auto &d : deadlines) {
            if (d <= now) {
                fired = fired + 1;
                d = kTimeNever;
            }
        }
    }
    TimeNs t1 = runtime::hostNowNs();
    return static_cast<double>(t1 - t0) / iters;
}

/** ns per advance() tick with n live timers in the wheel. */
double
wheelCost(int n, int iters)
{
    core::TimingWheel wheel(usToNs(1), 256, 3);
    Rng rng(2);
    for (int i = 0; i < n; ++i)
        wheel.schedule(usToNs(100) + rng.below(1000000), 0);
    std::uint64_t fired = 0;
    TimeNs t0 = runtime::hostNowNs();
    for (int it = 1; it <= iters; ++it) {
        wheel.advance(static_cast<TimeNs>(it) * 150,
                      [&](std::uint64_t, TimeNs) {
                          ++fired;
                          // Keep the wheel populated like a steady
                          // runtime re-arming deadlines.
                          wheel.schedule(static_cast<TimeNs>(it) * 150 +
                                             usToNs(100),
                                         0);
                      });
    }
    TimeNs t1 = runtime::hostNowNs();
    return static_cast<double>(t1 - t0) / iters;
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    int iters = static_cast<int>(cli.getInt("iters", 20000));
    cli.rejectUnknown();

    ConsoleTable table("Ablation: timer-core cost per poll iteration "
                       "(host ns)");
    table.header({"armed threads", "linear scan", "timing wheel"});
    for (int n : {8, 32, 128, 512, 2048, 8192}) {
        table.row({std::to_string(n),
                   ConsoleTable::num(linearScanCost(n, iters), 1),
                   ConsoleTable::num(wheelCost(n, iters), 1)});
    }
    table.print();
    std::printf("\nexpected: linear scan grows with thread count; the "
                "wheel stays near-constant, justifying the paper's "
                "timing-wheel option for large deployments.\n");
    return 0;
}
