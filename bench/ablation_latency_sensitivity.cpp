/**
 * @file
 * Ablation: sensitivity of the headline result (Fig. 8 tail gap) to
 * the calibrated latency constants. The UINTR delivery cost and the
 * Shinjuku IPI/trap cost are scaled up and down; the claim "who wins
 * and by roughly what factor" should be robust across the range.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/cli.hh"
#include "obs/session.hh"
#include "common/table.hh"

using namespace preempt;
using preempt::bench::RunSpec;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    double rps = cli.getDouble("rps", 1000e3);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 250));
    cli.rejectUnknown();

    ConsoleTable table("Ablation: p99 (us) on A1 @ " +
                       ConsoleTable::num(rps / 1e3, 0) +
                       " kRPS under scaled mechanism costs");
    table.header({"cost scale", "LibPreemptible", "Shinjuku",
                  "tail gap"});
    for (double scale : {0.5, 1.0, 2.0, 4.0}) {
        hw::LatencyConfig cfg;
        cfg.uintrRunning.floorNs *= scale;
        cfg.uintrRunning.meanNs *= scale;
        cfg.senduipiCost = static_cast<TimeNs>(
            static_cast<double>(cfg.senduipiCost) * scale);
        cfg.postedIpiDelivery.floorNs *= scale;
        cfg.postedIpiDelivery.meanNs *= scale;
        cfg.shinjukuTrapCost = static_cast<TimeNs>(
            static_cast<double>(cfg.shinjukuTrapCost) * scale);

        RunSpec lib;
        lib.system = "libpreemptible";
        lib.workload = "A1";
        lib.rps = rps;
        lib.quantum = usToNs(5);
        lib.duration = duration;
        auto lo = preempt::bench::runOne(lib, cfg);

        RunSpec shj = lib;
        shj.system = "shinjuku";
        auto so = preempt::bench::runOne(shj, cfg);

        table.row({ConsoleTable::num(scale, 1) + "x",
                   preempt::bench::fmtUs(lo.p99),
                   preempt::bench::fmtUs(so.p99),
                   ConsoleTable::num(static_cast<double>(so.p99) /
                                         static_cast<double>(lo.p99),
                                     1) + "x"});
    }
    table.print();
    std::printf("\nexpected: LibPreemptible keeps a large tail advantage "
                "at every scale; the gap grows with mechanism cost.\n");
    return 0;
}
