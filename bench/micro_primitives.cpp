/**
 * @file
 * google-benchmark microbenchmarks of the library's primitives: the
 * real fcontext switch (the paper's ~40 ns claim), fn_launch/resume
 * round trips, deadline arming, the event queue, the latency
 * histogram, the KVS and the compressor.
 */

#include <benchmark/benchmark.h>

#include "apps/compressor.hh"
#include "common/dist.hh"
#include "apps/kvstore.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "preemptible/fcontext.hh"
#include "preemptible/preemptible_fn.hh"
#include "preemptible/stack_pool.hh"
#include "preemptible/utimer.hh"
#include "core/quantum_controller.hh"
#include "core/timing_wheel.hh"
#include "sim/event_queue.hh"

using namespace preempt;
using namespace preempt::runtime;
using preempt::fcontext::preempt_jump_fcontext;
using preempt::fcontext::preempt_make_fcontext;

namespace {

// ----- raw fcontext switch ------------------------------------------

void
pingEntry(fcontext::Transfer t)
{
    // Bounce forever; each jump is one switch.
    fcontext::Context back = t.fctx;
    for (;;) {
        fcontext::Transfer r = preempt_jump_fcontext(back, nullptr);
        back = r.fctx;
    }
}

void
BM_FcontextSwitch(benchmark::State &state)
{
    StackPool pool(64 * 1024);
    Stack stack = pool.acquire();
    fcontext::Context ctx = preempt_make_fcontext(
        stack.top(), stack.usable(), &pingEntry);
    // Prime: first jump enters the context.
    fcontext::Transfer t = preempt_jump_fcontext(ctx, nullptr);
    ctx = t.fctx;
    for (auto _ : state) {
        t = preempt_jump_fcontext(ctx, nullptr);
        ctx = t.fctx;
    }
    state.SetItemsProcessed(state.iterations() * 2); // two switches
    pool.release(stack);
}
BENCHMARK(BM_FcontextSwitch);

// ----- fn_launch / fn_resume round trip ------------------------------

void
BM_FnLaunchComplete(benchmark::State &state)
{
    UTimer &timer = globalUTimer();
    if (!timer.running())
        timer.init();
    if (!currentWorker())
        workerInit(timer);
    for (auto _ : state) {
        PreemptibleFn fn([] {});
        benchmark::DoNotOptimize(fn_launch(fn, 0));
    }
}
BENCHMARK(BM_FnLaunchComplete);

void
BM_FnYieldResume(benchmark::State &state)
{
    UTimer &timer = globalUTimer();
    if (!timer.running())
        timer.init();
    if (!currentWorker())
        workerInit(timer);
    bool stop = false;
    PreemptibleFn fn([&stop] {
        while (!stop)
            fn_yield();
    });
    fn_launch(fn, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(fn_resume(fn, 0));
    stop = true;
    fn_resume(fn, 0);
}
BENCHMARK(BM_FnYieldResume);

// ----- deadline arming ------------------------------------------------

void
BM_ArmDeadline(benchmark::State &state)
{
    DeadlineSlot slot;
    TimeNs t = 1;
    for (auto _ : state) {
        UTimer::armDeadline(&slot, t++);
        benchmark::DoNotOptimize(slot.deadline.load());
    }
}
BENCHMARK(BM_ArmDeadline);

// ----- simulator event queue -----------------------------------------

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    sim::EventQueue q;
    TimeNs t = 0;
    for (auto _ : state) {
        q.schedule(++t, [](TimeNs) {});
        q.runOne();
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

// ----- latency histogram ----------------------------------------------

void
BM_HistogramRecord(benchmark::State &state)
{
    LatencyHistogram h;
    Rng rng(1);
    for (auto _ : state)
        h.record(rng.below(1000000));
    benchmark::DoNotOptimize(h.p99());
}
BENCHMARK(BM_HistogramRecord);

// ----- KVS --------------------------------------------------------------

void
BM_KvGet(benchmark::State &state)
{
    apps::KvStore store(8, 8192);
    for (std::uint64_t k = 0; k < 100000; ++k)
        store.set(k, "0123456789abcdef");
    Rng rng(2);
    ZipfianGenerator zipf(100000, 0.99);
    std::string out;
    for (auto _ : state)
        benchmark::DoNotOptimize(store.get(zipf.next(rng), out));
}
BENCHMARK(BM_KvGet);

void
BM_KvSet(benchmark::State &state)
{
    apps::KvStore store(8, 8192);
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            store.set(rng.below(100000), "0123456789abcdef"));
}
BENCHMARK(BM_KvSet);

// ----- compressor --------------------------------------------------------

void
BM_Compress25kB(benchmark::State &state)
{
    auto block = apps::makeCompressibleBlock(apps::Compressor::kBlockSize,
                                             4);
    apps::Compressor comp;
    for (auto _ : state)
        benchmark::DoNotOptimize(comp.compress(block));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * block.size()));
}
BENCHMARK(BM_Compress25kB);

// ----- timing wheel -------------------------------------------------

void
BM_TimingWheelScheduleAdvance(benchmark::State &state)
{
    core::TimingWheel wheel(100, 256, 3);
    Rng rng(5);
    TimeNs now = 0;
    for (auto _ : state) {
        wheel.schedule(now + 1000 + rng.below(100000), 0);
        now += 150;
        wheel.advance(now, [](std::uint64_t, TimeNs) {});
    }
}
BENCHMARK(BM_TimingWheelScheduleAdvance);

// ----- zipfian key generation ----------------------------------------

void
BM_ZipfianNext(benchmark::State &state)
{
    Rng rng(6);
    ZipfianGenerator zipf(1000000, 0.99);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.next(rng));
}
BENCHMARK(BM_ZipfianNext);

// ----- Algorithm 1 control step ---------------------------------------

void
BM_ControllerStep(benchmark::State &state)
{
    core::QuantumControllerParams params;
    core::QuantumController ctl(params, usToNs(50));
    core::ControlInputs in;
    in.loadRps = 5e5;
    in.maxLoadRps = 1e6;
    in.maxQueueLen = 10;
    in.tailIndex = 1.5;
    for (auto _ : state)
        benchmark::DoNotOptimize(ctl.step(in));
}
BENCHMARK(BM_ControllerStep);

} // namespace

BENCHMARK_MAIN();
