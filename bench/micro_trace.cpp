/**
 * @file
 * Microbenchmark of the obs:: emission fast paths.
 *
 * Measures what every instrumentation site in the repo pays:
 *
 *   disabled   obs::emit() with no tracer installed — the cost added
 *              to un-traced runs (one relaxed load + predicted branch).
 *   enabled    obs::emit() into an installed per-core ring — the cost
 *              of actually recording (ISSUE target: <= 20 ns/record).
 *   counter    obs::addCount() with an installed registry.
 *   publisher  obs::emit() into a ring while a TelemetryPublisher
 *              snapshots in the background — proves an idle telemetry
 *              plane leaves the emit fast path unchanged (the live-
 *              telemetry ISSUE pins this within ±1% of `enabled`).
 *   span_live  obs::emitSpan() lifecycle triplets folding into an
 *              installed SpanCollector — what the per-task lifecycle
 *              sites (submit/launch/complete) pay when spans are live.
 *   window_rotate_aggregate
 *              one WindowedLatencyHistogram rotate() + aggregate()
 *              pair (K = 8) — what the publisher tick pays per
 *              windowed metric, amortised over zero record-path cost.
 *
 * Emits BENCH_trace.json (ns per operation, best of reps) so later PRs
 * can regress the overhead claims in DESIGN.md section 8.
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/windowed_histogram.hh"
#include "obs/metrics.hh"
#include "obs/session.hh"
#include "obs/spans.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "preemptible/hosttime.hh"

using namespace preempt;

namespace {

/** ns per emit with no tracer installed (the fast path everyone pays). */
double
runDisabled(int ops)
{
    panic_if(obs::tracer() != nullptr, "tracer unexpectedly installed");
    TimeNs t0 = runtime::hostNowNs();
    for (int i = 0; i < ops; ++i) {
        obs::emit(obs::EventKind::Dispatch, 0,
                  static_cast<std::uint64_t>(i), 1, 2, 3);
    }
    TimeNs t1 = runtime::hostNowNs();
    return static_cast<double>(t1 - t0) / ops;
}

/** ns per emit into an installed ring (wrap-around steady state). */
double
runEnabled(int ops)
{
    obs::Tracer::Options opt;
    opt.cores = 4;
    opt.perCoreCapacity = std::size_t{1} << 14;
    obs::Tracer tracer(opt);
    obs::setTracer(&tracer);
    TimeNs t0 = runtime::hostNowNs();
    for (int i = 0; i < ops; ++i) {
        obs::emit(obs::EventKind::Dispatch,
                  static_cast<std::uint32_t>(i & 3),
                  static_cast<std::uint64_t>(i), 1, 2, 3);
    }
    TimeNs t1 = runtime::hostNowNs();
    obs::setTracer(nullptr);
    panic_if(tracer.totalWritten() != static_cast<std::uint64_t>(ops),
             "ring lost records");
    return static_cast<double>(t1 - t0) / ops;
}

/** ns per addCount with a registry installed. */
double
runCounter(int ops)
{
    obs::MetricsRegistry reg;
    obs::setMetricsRegistry(&reg);
    obs::Counter &c = reg.counter("bench.ops"); // pre-register the name
    TimeNs t0 = runtime::hostNowNs();
    for (int i = 0; i < ops; ++i)
        c.add();
    TimeNs t1 = runtime::hostNowNs();
    obs::setMetricsRegistry(nullptr);
    panic_if(reg.counter("bench.ops").value() !=
                 static_cast<std::uint64_t>(ops),
             "counter lost increments");
    return static_cast<double>(t1 - t0) / ops;
}

/**
 * ns per emit into a ring while an idle TelemetryPublisher snapshots
 * every 10 ms. The publisher reads the registry/span collector, never
 * the rings, so this should match runEnabled() within noise — the
 * live-telemetry acceptance criterion.
 */
double
runWithPublisher(int ops)
{
#ifndef PREEMPT_OBS_DISABLED
    obs::Tracer::Options opt;
    opt.cores = 4;
    opt.perCoreCapacity = std::size_t{1} << 14;
    obs::Tracer tracer(opt);
    obs::setTracer(&tracer);
    obs::MetricsRegistry reg;
    obs::TelemetryPublisher::Options popt;
    popt.interval = msToNs(10);
    obs::TelemetryPublisher pub(&reg, nullptr, popt);
    pub.start();
    TimeNs t0 = runtime::hostNowNs();
    for (int i = 0; i < ops; ++i) {
        obs::emit(obs::EventKind::Dispatch,
                  static_cast<std::uint32_t>(i & 3),
                  static_cast<std::uint64_t>(i), 1, 2, 3);
    }
    TimeNs t1 = runtime::hostNowNs();
    pub.stop();
    obs::setTracer(nullptr);
    panic_if(tracer.totalWritten() != static_cast<std::uint64_t>(ops),
             "ring lost records");
    return static_cast<double>(t1 - t0) / ops;
#else
    // Telemetry is compiled out: measure the bare disabled emit so the
    // JSON key set stays stable across build flavours.
    return runDisabled(ops);
#endif
}

/** ns per emitSpan() across a submit/launch/complete lifecycle with a
 *  live SpanCollector installed (the per-task instrumentation cost). */
double
runSpanLive(int ops)
{
#ifndef PREEMPT_OBS_DISABLED
    int tasks = ops / 3;
    obs::SpanCollector collector;
    obs::setSpanCollector(&collector);
    TimeNs t0 = runtime::hostNowNs();
    for (int i = 0; i < tasks; ++i) {
        std::uint64_t id = static_cast<std::uint64_t>(i);
        std::uint64_t ts = id * 10;
        obs::emitSpan(obs::EventKind::TaskSubmit, 0, ts, id, 0, 0);
        obs::emitSpan(obs::EventKind::Launch, 0, ts + 2, id, 0, 100);
        obs::emitSpan(obs::EventKind::Complete, 0, ts + 5, id, 3, 0);
    }
    TimeNs t1 = runtime::hostNowNs();
    obs::setSpanCollector(nullptr);
    panic_if(collector.finished() != static_cast<std::uint64_t>(tasks),
             "span collector lost lifecycles");
    panic_if(collector.invariantViolations() != 0,
             "span invariant violated in microbench");
    return static_cast<double>(t1 - t0) / (3.0 * tasks);
#else
    return runDisabled(ops);
#endif
}

/** ns per publisher-tick window maintenance step: rotate the K = 8
 *  epoch ring and rebuild the O(K) aggregate of a populated windowed
 *  histogram. Runs entirely off the record path. */
double
runWindowRotateAggregate(int ops)
{
    // Rotation + aggregation cost is independent of the record count;
    // populate the ring so every epoch merge walks real buckets.
    WindowedLatencyHistogram w(8);
    for (int i = 0; i < 4096; ++i) {
        w.record(static_cast<std::uint64_t>(100 + i * 37));
        if ((i & 511) == 511)
            w.rotate();
    }
    int steps = ops / 4096;
    if (steps < 1)
        steps = 1;
    std::uint64_t sink = 0;
    TimeNs t0 = runtime::hostNowNs();
    for (int i = 0; i < steps; ++i) {
        w.rotate();
        w.record(static_cast<std::uint64_t>(100 + i));
        sink += w.aggregate().count();
    }
    TimeNs t1 = runtime::hostNowNs();
    panic_if(sink == 0, "window aggregate lost all samples");
    return static_cast<double>(t1 - t0) / steps;
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    int ops = static_cast<int>(cli.getInt("ops", 20000000));
    int reps = static_cast<int>(cli.getInt("reps", 5));
    std::string out = cli.getString("out", "BENCH_trace.json");
    cli.rejectUnknown();

    double disabled = 1e9, enabled = 1e9, counter = 1e9;
    double publisher = 1e9, spanLive = 1e9, windowTick = 1e9;
    for (int r = 0; r < reps; ++r) {
        disabled = std::min(disabled, runDisabled(ops));
        enabled = std::min(enabled, runEnabled(ops));
        counter = std::min(counter, runCounter(ops));
        publisher = std::min(publisher, runWithPublisher(ops));
        spanLive = std::min(spanLive, runSpanLive(ops));
        windowTick = std::min(windowTick, runWindowRotateAggregate(ops));
    }

    ConsoleTable table("obs:: emission cost (ns/op, best of " +
                       std::to_string(reps) + ")");
    table.header({"path", "ns/op"});
    auto row = [&](const char *name, double ns) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", ns);
        table.row({name, buf});
    };
    row("emit disabled", disabled);
    row("emit enabled", enabled);
    row("counter add", counter);
    row("emit + live publisher", publisher);
    row("emitSpan live fold", spanLive);
    row("window rotate+aggregate", windowTick);
    table.print();
    if (enabled > 0) {
        std::printf("publisher overhead vs enabled: %+.2f%%\n",
                    (publisher / enabled - 1.0) * 100.0);
    }

    FILE *f = std::fopen(out.c_str(), "w");
    fatal_if(!f, "cannot open %s for writing", out.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"trace\",\n");
    std::fprintf(f, "  \"unit\": \"ns_per_op\",\n");
    std::fprintf(f, "  \"ops\": %d,\n", ops);
    std::fprintf(f, "  \"reps\": %d,\n", reps);
    std::fprintf(f, "  \"emit_disabled\": %.3f,\n", disabled);
    std::fprintf(f, "  \"emit_enabled\": %.3f,\n", enabled);
    std::fprintf(f, "  \"counter_add\": %.3f,\n", counter);
    std::fprintf(f, "  \"emit_publisher\": %.3f,\n", publisher);
    std::fprintf(f, "  \"emitspan_live\": %.3f,\n", spanLive);
    std::fprintf(f, "  \"window_rotate_aggregate\": %.3f\n", windowTick);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());
    return 0;
}
