/**
 * @file
 * Fig. 13: tail latency of colocated latency-critical (MICA KVS) and
 * best-effort (zlib compression) jobs under the FCFS-with-preemption
 * scheduler.
 *
 * Left: fixed 30 us quantum vs. offered load — preemption brings the
 * LC tail down 3.2-4.4x vs. non-preemptive execution (33 us at
 * 55 kRPS in the paper).
 * Right: quantum sweep at 55 kRPS — 5 us brings the LC tail to ~8 us
 * (18.5x better than no preemption) at the cost of ~2.2x BE latency.
 *
 * Workload mix mirrors section V-C: 98% LC requests (~1 us median MICA
 * ops, 5/95 SET/GET, zipf 0.99) + 2% BE requests (~100 us compression
 * of 25 kB blocks), one worker core.
 */

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_util.hh"
#include "common/cli.hh"
#include "obs/session.hh"
#include "common/table.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

using namespace preempt;

namespace {

struct Outcome
{
    TimeNs lcP99;
    TimeNs beP99;
    double beMean;
};

Outcome
run(TimeNs quantum, double rps, TimeNs duration)
{
    sim::Simulator sim(42);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 1;
    rc.policy = runtime_sim::SchedPolicy::NewFirst; // section V-C policy #1
    rc.quantum = quantum;
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);

    // MICA small-op service law (median ~1 us) + zlib block law
    // (median ~100 us), as characterised in Table V.
    workload::WorkloadSpec spec{
        workload::ServiceLaw(std::make_shared<LogNormalDist>(1200.0, 0.6)),
        workload::RateLaw::constant(rps), duration};
    spec.beFraction = 0.02;
    spec.beService = std::make_shared<workload::ServiceLaw>(
        std::make_shared<LogNormalDist>(100e3, 0.25));

    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runUntil(duration + msToNs(200));
    return Outcome{server.metrics().lcLatency().p99(),
                   server.metrics().beLatency().p99(),
                   server.metrics().beLatency().mean()};
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 2000));
    exp::Harness harness = bench::makeHarness(cli, obsSession);
    cli.rejectUnknown();

    // Cells, in sequential execution order: per load (base, lib) for
    // the left table, then the right table's baseline and its quantum
    // sweep at 55 kRPS.
    const std::vector<double> loadsK{20.0, 30.0, 40.0, 55.0, 70.0};
    const std::vector<double> quantaUs{5.0, 10.0, 20.0, 30.0, 50.0};
    std::vector<std::pair<TimeNs, double>> cells; // (quantum, rps)
    for (double k : loadsK) {
        cells.emplace_back(0, k * 1e3);
        cells.emplace_back(usToNs(30), k * 1e3);
    }
    cells.emplace_back(0, 55e3);
    for (double q : quantaUs)
        cells.emplace_back(usToNs(q), 55e3);
    std::vector<Outcome> outs = harness.map<Outcome>(
        cells.size(), [&](const exp::CellEnv &env) {
            return run(cells[env.index].first, cells[env.index].second,
                       duration);
        });

    // Left: fixed 30 us quantum across loads.
    ConsoleTable left("Fig. 13 left: p99 latency (us), fixed 30 us "
                      "quantum vs non-preemptive");
    left.header({"load (kRPS)", "LC-Base", "LC-Lib", "improvement",
                 "BE-Base", "BE-Lib"});
    for (std::size_t i = 0; i < loadsK.size(); ++i) {
        double k = loadsK[i];
        const Outcome &base = outs[i * 2];
        const Outcome &lib = outs[i * 2 + 1];
        left.row({ConsoleTable::num(k, 0),
                  ConsoleTable::num(nsToUs(base.lcP99), 1),
                  ConsoleTable::num(nsToUs(lib.lcP99), 1),
                  ConsoleTable::num(static_cast<double>(base.lcP99) /
                                        static_cast<double>(lib.lcP99),
                                    1) + "x",
                  ConsoleTable::num(nsToUs(base.beP99), 1),
                  ConsoleTable::num(nsToUs(lib.beP99), 1)});
    }
    left.print();
    std::printf("\n");

    // Right: quantum sweep at 55 kRPS.
    const Outcome &base = outs[loadsK.size() * 2];
    ConsoleTable right("Fig. 13 right: quantum sweep at 55 kRPS");
    right.header({"quantum (us)", "LC p99 (us)", "LC improvement",
                  "BE mean (us)", "BE penalty"});
    right.row({"none", ConsoleTable::num(nsToUs(base.lcP99), 1), "1.0x",
               ConsoleTable::num(base.beMean / 1e3, 1), "1.0x"});
    for (std::size_t qi = 0; qi < quantaUs.size(); ++qi) {
        double q = quantaUs[qi];
        const Outcome &lib = outs[loadsK.size() * 2 + 1 + qi];
        right.row({ConsoleTable::num(q, 0),
                   ConsoleTable::num(nsToUs(lib.lcP99), 1),
                   ConsoleTable::num(static_cast<double>(base.lcP99) /
                                         static_cast<double>(lib.lcP99),
                                     1) + "x",
                   ConsoleTable::num(lib.beMean / 1e3, 1),
                   ConsoleTable::num(lib.beMean / base.beMean, 2) + "x"});
    }
    right.print();
    std::printf("\npaper reference: 30 us quantum -> LC tail ~33 us at "
                "55 kRPS (3.2-4.4x better); 5 us -> ~8 us (18.5x) with "
                "~2.2x BE penalty.\n");
    return 0;
}
