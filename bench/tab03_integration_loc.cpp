/**
 * @file
 * Tables II/III: integration effort. Person-week numbers (Table II)
 * are human effort and cannot be machine-reproduced; they are recorded
 * in EXPERIMENTS.md. This binary reproduces the *mechanical* half of
 * Table III: the percentage of additional code needed to integrate
 * LibPreemptible into an application, computed from this repository's
 * own integrations (the KVS+compression colocation example and the
 * RPC example) relative to the application code — the paper reports 3%
 * for MICA/Zlib and 4% for RPC.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "obs/session.hh"
#include "common/logging.hh"
#include "common/table.hh"

#ifndef PREEMPT_SOURCE_DIR
#define PREEMPT_SOURCE_DIR "."
#endif

using namespace preempt;

namespace {

/** Count non-blank, non-pure-comment lines of one file. */
long
locOf(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in.good(), "cannot open %s (run from the repo build)",
             path.c_str());
    long loc = 0;
    std::string line;
    bool in_block = false;
    while (std::getline(in, line)) {
        std::size_t i = line.find_first_not_of(" \t");
        if (i == std::string::npos)
            continue;
        std::string t = line.substr(i);
        if (in_block) {
            if (t.find("*/") != std::string::npos)
                in_block = false;
            continue;
        }
        if (t.rfind("//", 0) == 0 || t.rfind("*", 0) == 0)
            continue;
        if (t.rfind("/*", 0) == 0 || t.rfind("/**", 0) == 0) {
            if (t.find("*/") == std::string::npos)
                in_block = true;
            continue;
        }
        ++loc;
    }
    return loc;
}

long
locOfAll(const std::vector<std::string> &paths)
{
    long total = 0;
    for (const auto &p : paths)
        total += locOf(p);
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    std::string src = cli.getString("src", PREEMPT_SOURCE_DIR);
    cli.rejectUnknown();

    // "Application" code: the KVS + compressor implementations.
    long app_loc = locOfAll({src + "/src/apps/kvstore.cc",
                             src + "/src/apps/kvstore.hh",
                             src + "/src/apps/compressor.cc",
                             src + "/src/apps/compressor.hh"});
    // Integration code: the colocation example that wires the apps
    // into LibPreemptible (submit calls, quantum setup, stats).
    long integ_loc = locOf(src + "/examples/kv_colocation.cpp");

    long rpc_app_loc = locOfAll({src + "/src/apps/rpc_model.cc",
                                 src + "/src/apps/rpc_model.hh"});
    long rpc_integ_loc = locOf(src + "/bench/fig10_rpc_overhead.cpp");

    ConsoleTable table("Table III: additional code to integrate "
                       "LibPreemptible");
    table.header({"application", "app LoC", "integration LoC",
                  "additional code", "paper"});
    table.row({"KVS + compression (MICA/Zlib)", std::to_string(app_loc),
               std::to_string(integ_loc),
               ConsoleTable::num(100.0 * static_cast<double>(integ_loc) /
                                     static_cast<double>(app_loc + integ_loc),
                                 0) + "%",
               "3%"});
    table.row({"RPC server", std::to_string(rpc_app_loc),
               std::to_string(rpc_integ_loc),
               ConsoleTable::num(
                   100.0 * static_cast<double>(rpc_integ_loc) /
                       static_cast<double>(rpc_app_loc + rpc_integ_loc),
                   0) + "%",
               "4%"});
    table.print();
    std::printf("\nnote: our reimplemented applications are ~40x smaller "
                "than the real MICA/zlib/gRPC codebases (the paper's "
                "denominators); against paper-scale app sizes (~12k/2k "
                "LoC) the same integration code is ~%.0f%%/%.0f%% — in "
                "line with the paper's 3%%/4%%.\n",
                100.0 * static_cast<double>(integ_loc) / 12000.0,
                100.0 * static_cast<double>(rpc_integ_loc) / 2000.0);
    std::printf("\nTable II (integration time, person-weeks) is human "
                "effort: Shinjuku 0.9/0.5/0.7/0.51, Libinger "
                "0.35/0.23/0.12/NA, LibPreemptible 1.1/0.75/0.78/0.68 — "
                "see EXPERIMENTS.md.\n");
    return 0;
}
