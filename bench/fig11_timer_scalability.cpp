/**
 * @file
 * Fig. 11: scalability of timer-delivery overhead with thread count.
 * 1000 interrupts per thread at a 100 us interval, four designs:
 *
 *   per-thread (creation-time): every thread arms its own kernel timer
 *     at the same instant — expiries align and contend on the kernel
 *     signal lock, scaling superlinearly (up to ~100 us at high
 *     counts);
 *   per-thread (aligned): expiries explicitly staggered across the
 *     interval — contention drops ~10x at 32 threads, precision
 *     suffers;
 *   per-process (chain): one kernel timer, the handler forwards the
 *     signal down a chain of threads;
 *   LibUtimer: the dedicated user-level timer core — flat, sub-
 *     microsecond delivery at every thread count.
 */

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_util.hh"
#include "common/cli.hh"
#include "obs/session.hh"
#include "fault/fault.hh"
#include "common/histogram.hh"
#include "common/table.hh"
#include "hw/kernel.hh"
#include "runtime_sim/utimer_model.hh"
#include "sim/simulator.hh"

using namespace preempt;

namespace {

/** Mean delivery overhead (signal/interrupt path latency incurred per
 *  fire, beyond the ideal expiry time) for one design. */
double
kernelTimers(int n_threads, int fires, TimeNs interval, bool staggered,
             bool chained)
{
    sim::Simulator sim(7);
    hw::LatencyConfig cfg;
    // Fig. 11 isolates signal-path contention: fix granularity effects
    // by letting the kernel timer honour the requested interval.
    cfg.kernelTimerFloor = interval;
    cfg.kernelTimerJitter = hw::JitterSpec{0, 500, 400};
    hw::SignalPath signals(sim, cfg);
    LatencyHistogram overhead;
    int remaining = n_threads * fires;

    if (chained) {
        // One timer; the handler forwards signals thread to thread.
        std::vector<std::unique_ptr<hw::KernelTimer>> timers;
        timers.push_back(
            std::make_unique<hw::KernelTimer>(sim, cfg, signals));
        // Forwarding chain: each expiry triggers n_threads sequential
        // signal deliveries (at most one outstanding per thread).
        std::function<void(int)> forward = [&](int hop) {
            if (hop >= n_threads)
                return;
            signals.sendSignal([&, hop](TimeNs, TimeNs delay) {
                // Per-hop delivery overhead; hops serialise, so the
                // kernel lock is uncontended.
                overhead.record(delay);
                if (--remaining <= 0)
                    sim.stop();
                forward(hop + 1);
            });
        };
        timers[0]->arm(interval, true, [&](TimeNs, TimeNs) {
            forward(0);
        });
        sim.runUntil(secToNs(60));
        return overhead.mean();
    }

    std::vector<std::unique_ptr<hw::KernelTimer>> timers;
    for (int i = 0; i < n_threads; ++i) {
        timers.push_back(
            std::make_unique<hw::KernelTimer>(sim, cfg, signals));
    }
    for (int i = 0; i < n_threads; ++i) {
        TimeNs offset =
            staggered ? interval * static_cast<TimeNs>(i) /
                            static_cast<TimeNs>(n_threads)
                      : 0;
        sim.after(offset + 1, [&, i](TimeNs) {
            timers[static_cast<std::size_t>(i)]->arm(
                interval, true, [&](TimeNs t, TimeNs delay) {
                    // Full delivery overhead: kernel lock queueing +
                    // signal path + handler trampoline.
                    overhead.record(delay);
                    (void)t;
                    if (--remaining <= 0)
                        sim.stop();
                });
        });
    }
    sim.runUntil(secToNs(60));
    return overhead.mean();
}

double
libUtimer(int n_threads, int fires, TimeNs interval)
{
    sim::Simulator sim(7);
    hw::LatencyConfig cfg;
    runtime_sim::UTimerModel utimer(sim, cfg,
                                    runtime_sim::TimerDelivery::Uintr);
    LatencyHistogram overhead;
    int remaining = n_threads * fires;
    for (int i = 0; i < n_threads; ++i) {
        int slot = utimer.registerThread();
        // Measure handler-entry offset beyond the ideal periodic grid.
        struct State
        {
            TimeNs next;
        };
        auto st = std::make_shared<State>();
        st->next = sim.now() + interval;
        utimer.startPeriodic(slot, interval, [&, st](TimeNs t) {
            overhead.record(t > st->next ? t - st->next : 0);
            st->next += interval;
            if (--remaining <= 0)
                sim.stop();
        });
    }
    sim.runUntil(secToNs(60));
    return overhead.mean();
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    fault::Session faultSession(cli);
    int fires = static_cast<int>(cli.getInt("fires", 1000));
    TimeNs interval = usToNs(cli.getDouble("interval-us", 100));
    exp::Harness harness =
        bench::makeHarness(cli, obsSession, &faultSession);
    cli.rejectUnknown();

    // One cell per (thread count, design) point, row-major.
    const std::vector<int> threadCounts{1, 2, 4, 8, 16, 32};
    constexpr int kDesigns = 4;
    std::vector<double> means = harness.map<double>(
        threadCounts.size() * kDesigns, [&](const exp::CellEnv &env) {
            int n = threadCounts[env.index / kDesigns];
            switch (env.index % kDesigns) {
            case 0:
                return kernelTimers(n, fires, interval, false, false);
            case 1:
                return kernelTimers(n, fires, interval, true, false);
            case 2:
                return kernelTimers(n, fires, interval, false, true);
            default:
                return libUtimer(n, fires, interval);
            }
        });

    ConsoleTable table("Fig. 11: mean timer-delivery overhead (us), 1000 "
                       "interrupts @ 100 us interval");
    table.header({"threads", "per-thread (creation)", "per-thread (aligned)",
                  "per-process (chain)", "LibUtimer"});
    for (std::size_t i = 0; i < threadCounts.size(); ++i) {
        const double *row = &means[i * kDesigns];
        table.row({std::to_string(threadCounts[i]),
                   ConsoleTable::num(row[0] / 1e3, 2),
                   ConsoleTable::num(row[1] / 1e3, 2),
                   ConsoleTable::num(row[2] / 1e3, 2),
                   ConsoleTable::num(row[3] / 1e3, 2)});
    }
    table.print();
    std::printf("\nexpected shape: creation-time superlinear (lock "
                "contention), aligned ~10x lower at 32 threads, LibUtimer "
                "flat and lowest.\n");
    return 0;
}
