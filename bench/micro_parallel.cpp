/**
 * @file
 * Wall-clock benchmark for the parallel experiment harness
 * (src/exp): runs the same cell sets sequentially (--jobs=1) and in
 * parallel (--jobs=N) and reports the speedup.
 *
 * Two cell sets, matching the CI A/B workloads:
 *  - a fixed fig08 grid (workload A1, 4 systems x 5 loads);
 *  - the seeded fault sweep (default 1000 configs).
 *
 * Both are byte-identity workloads elsewhere; here only wall clock is
 * measured (observability stays off so the timing is pure cell work).
 * --out writes BENCH_parallel.json; the checked-in copy records the
 * 8-thread run documented in DESIGN.md section 10 (target: >= 4x on
 * the fault sweep).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <locale>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "bench/fault_sweep_cell.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "obs/session.hh"

using namespace preempt;
using preempt::bench::RunSpec;

namespace {

double
timeCells(int jobs, std::size_t count,
          const std::function<void(const exp::CellEnv &)> &body)
{
    exp::HarnessOptions ho;
    ho.jobs = jobs;
    exp::Harness harness(ho);
    auto t0 = std::chrono::steady_clock::now();
    harness.run(count, body);
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

struct Measurement
{
    double sequential = 0;
    double parallel = 0;
    std::size_t cells = 0;

    double speedup() const
    {
        return parallel > 0 ? sequential / parallel : 0;
    }
};

std::string
jsonNum(double v)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.precision(3);
    os << std::fixed << v;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    int jobs = static_cast<int>(cli.getInt("jobs", 8));
    std::uint64_t configs =
        static_cast<std::uint64_t>(cli.getInt("configs", 1000));
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 40));
    std::string out = cli.getString("out", "");
    cli.rejectUnknown();
    jobs = exp::resolveJobs(jobs);
    // Recorded alongside the timings: a speedup is only meaningful
    // relative to the cores the host actually had.
    unsigned hostCpus = std::thread::hardware_concurrency();
    if (hostCpus == 0)
        hostCpus = 1;

    // Fixed fig08 grid: workload A1, the four compared systems at the
    // five Fig. 8 operating points.
    struct System
    {
        const char *key;
        TimeNs quantum;
        bool adaptive;
    };
    const System systems[] = {
        {"libpreemptible", usToNs(5), true},
        {"shinjuku", usToNs(5), false},
        {"libinger", usToNs(60), false},
        {"nouintr", usToNs(5), false},
    };
    std::vector<RunSpec> grid;
    for (double load : {300.0, 600.0, 900.0, 1100.0, 1300.0}) {
        for (const System &s : systems) {
            RunSpec spec;
            spec.system = s.key;
            spec.workload = "A1";
            spec.rps = load * 1e3;
            spec.quantum = s.quantum;
            spec.adaptive = s.adaptive;
            spec.duration = duration;
            grid.push_back(spec);
        }
    }

    Measurement fig08;
    fig08.cells = grid.size();
    auto gridCell = [&](const exp::CellEnv &env) {
        preempt::bench::runOne(grid[env.index]);
    };
    fig08.sequential = timeCells(1, grid.size(), gridCell);
    fig08.parallel = timeCells(jobs, grid.size(), gridCell);

    Measurement sweep;
    sweep.cells = configs;
    auto sweepCell = [&](const exp::CellEnv &env) {
        preempt::bench::runFaultConfig(1 + env.index, "");
    };
    sweep.sequential = timeCells(1, configs, sweepCell);
    sweep.parallel = timeCells(jobs, configs, sweepCell);

    ConsoleTable table("Parallel harness: sequential vs --jobs=" +
                       std::to_string(jobs) + " wall clock (" +
                       std::to_string(hostCpus) + " host cpus)");
    table.header({"cell set", "cells", "sequential (s)", "parallel (s)",
                  "speedup"});
    table.row({"fig08 grid (A1)", std::to_string(fig08.cells),
               ConsoleTable::num(fig08.sequential, 2),
               ConsoleTable::num(fig08.parallel, 2),
               ConsoleTable::num(fig08.speedup(), 2) + "x"});
    table.row({"fault sweep", std::to_string(sweep.cells),
               ConsoleTable::num(sweep.sequential, 2),
               ConsoleTable::num(sweep.parallel, 2),
               ConsoleTable::num(sweep.speedup(), 2) + "x"});
    table.print();

    if (!out.empty()) {
        std::ofstream os(out);
        fatal_if(!os, "cannot write %s", out.c_str());
        os.imbue(std::locale::classic());
        os << "{\n"
           << "  \"bench\": \"parallel_harness\",\n"
           << "  \"unit\": \"seconds\",\n"
           << "  \"jobs\": " << jobs << ",\n"
           << "  \"host_cpus\": " << hostCpus << ",\n"
           << "  \"fig08_grid\": {\"cells\": " << fig08.cells
           << ", \"sequential\": " << jsonNum(fig08.sequential)
           << ", \"parallel\": " << jsonNum(fig08.parallel)
           << ", \"speedup\": " << jsonNum(fig08.speedup()) << "},\n"
           << "  \"fault_sweep\": {\"cells\": " << sweep.cells
           << ", \"sequential\": " << jsonNum(sweep.sequential)
           << ", \"parallel\": " << jsonNum(sweep.parallel)
           << ", \"speedup\": " << jsonNum(sweep.speedup()) << "}\n"
           << "}\n";
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}
