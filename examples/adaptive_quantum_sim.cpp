/**
 * @file
 * Algorithm 1 in action: the adaptive time-quantum controller on the
 * paper's dynamic workload C (heavy-tailed A1 for the first half,
 * light-tailed exponential for the second half).
 *
 * The simulated LibPreemptible server tracks the service-time tail
 * index and the load, shrinking the quantum while the workload is
 * heavy-tailed and growing it when the distribution shift makes fine
 * preemption unnecessary. The timeline of the quantum and the SLO
 * violation rate are printed per control period.
 *
 *   ./adaptive_quantum_sim [--rps=800000] [--duration-ms=2000]
 *                          [--slo-us=50]
 */

#include <cstdio>
#include <vector>

#include "common/cli.hh"
#include "obs/session.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

using namespace preempt;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    double rps = cli.getDouble("rps", 800e3);
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 2000));
    TimeNs slo = usToNs(cli.getDouble("slo-us", 50));
    cli.rejectUnknown();

    sim::Simulator sim(42);
    hw::LatencyConfig cfg;

    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 4;
    rc.adaptive = true;
    rc.quantum = usToNs(50);
    rc.controllerParams.period = msToNs(50); // scaled-down 10 s period
    rc.controllerParams.tMin = usToNs(3);
    rc.controllerParams.tMax = usToNs(100);
    rc.statsHorizon = msToNs(50);

    // Per-period SLO accounting through the completion hook.
    struct Bin
    {
        std::uint64_t total = 0;
        std::uint64_t violations = 0;
    };
    std::vector<Bin> bins(static_cast<std::size_t>(
                              duration / rc.controllerParams.period) + 2);
    rc.completionHook = [&](TimeNs now, const workload::Request &req) {
        std::size_t b = static_cast<std::size_t>(
            now / rc.controllerParams.period);
        if (b < bins.size()) {
            ++bins[b].total;
            if (req.latency() > slo)
                ++bins[b].violations;
        }
    };
    std::vector<std::pair<TimeNs, TimeNs>> quantum_trace;
    rc.quantumHook = [&](TimeNs now, TimeNs q) {
        quantum_trace.emplace_back(now, q);
    };

    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);
    workload::WorkloadSpec spec{workload::makeServiceLaw("C", duration),
                                workload::RateLaw::constant(rps), duration};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runUntil(duration + msToNs(200));

    std::printf("dynamic workload C @ %.0f kRPS, SLO %.0f us, "
                "control period %.0f ms\n\n",
                rps / 1e3, nsToUs(slo),
                nsToMs(rc.controllerParams.period));
    std::printf("%-10s %-14s %-12s %-12s\n", "t (ms)", "quantum (us)",
                "completions", "SLO-miss %");
    std::size_t qi = 0;
    for (std::size_t b = 0; b * rc.controllerParams.period < duration;
         ++b) {
        TimeNs t = static_cast<TimeNs>(b) * rc.controllerParams.period;
        while (qi + 1 < quantum_trace.size() &&
               quantum_trace[qi + 1].first <= t)
            ++qi;
        TimeNs q = quantum_trace.empty() ? server.currentQuantum()
                                         : quantum_trace[qi].second;
        double miss = bins[b].total
                          ? 100.0 * static_cast<double>(bins[b].violations) /
                                static_cast<double>(bins[b].total)
                          : 0.0;
        std::printf("%-10.0f %-14.1f %-12llu %-12.2f\n", nsToMs(t),
                    nsToUs(q),
                    static_cast<unsigned long long>(bins[b].total), miss);
    }

    const auto &m = server.metrics();
    std::printf("\noverall: %llu completed, p99 %.1f us, "
                "%.2f%% SLO violations\n",
                static_cast<unsigned long long>(m.completed()),
                nsToUs(m.lcLatency().p99()),
                100.0 * m.lcLatency().fractionAbove(slo));
    return 0;
}
