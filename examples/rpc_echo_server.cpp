/**
 * @file
 * A real RPC echo server over kernel TCP (the paper's compatibility
 * story: LibPreemptible coexists with the normal network stack — DPDK
 * or kernel TCP — without kernel changes).
 *
 * The server accepts loopback connections and serves each request on
 * the PreemptibleRuntime: a request carries a payload plus a
 * CPU-burn duration; 1% of requests are long burns that would
 * head-of-line block the rest without preemption. The built-in client
 * drives the server twice — preemption off, then on — and prints the
 * latency comparison.
 *
 *   ./rpc_echo_server [--requests=400] [--long-ms=20] [--quantum-ms=2]
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "obs/session.hh"
#include "common/histogram.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "preemptible/hosttime.hh"
#include "preemptible/runtime.hh"

using namespace preempt;
using namespace preempt::runtime;

namespace {

/** Wire format: u32 burn_us, u32 payload_len, payload bytes. The
 *  reply echoes the payload. */
struct WireHeader
{
    std::uint32_t burnUs;
    std::uint32_t payloadLen;
};

/** Connections dropped because the runtime kept refusing the submit. */
std::atomic<std::uint64_t> g_submitRejected{0};

void
setNoDelay(int fd)
{
    // Header and payload go out as separate small writes: without
    // TCP_NODELAY, Nagle + delayed ACKs add ~40 ms per direction.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool
readAll(int fd, void *buf, std::size_t len)
{
    auto *p = static_cast<char *>(buf);
    while (len > 0) {
        ssize_t n = ::read(fd, p, len);
        if (n <= 0)
            return false;
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeAll(int fd, const void *buf, std::size_t len)
{
    const auto *p = static_cast<const char *>(buf);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n <= 0)
            return false;
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

void
burnCpu(TimeNs dur)
{
    TimeNs end = hostNowNs() + dur;
    while (hostNowNs() < end) {
    }
}

/** Serve one connection: every request becomes a preemptible task. */
void
serveConnection(PreemptibleRuntime &rt, int fd)
{
    for (;;) {
        WireHeader hdr;
        if (!readAll(fd, &hdr, sizeof(hdr)))
            break;
        if (hdr.payloadLen > 1 << 20)
            break;
        auto payload = std::make_shared<std::string>();
        payload->resize(hdr.payloadLen);
        if (hdr.payloadLen &&
            !readAll(fd, payload->data(), hdr.payloadLen))
            break;
        std::atomic<bool> done{false};
        // Bounded backoff on a refused submit (inbox full or admission
        // shed); only a persistently refusing runtime drops the
        // connection, and the drop is counted.
        bool ok = false;
        for (int attempt = 0; attempt < 20 && !ok; ++attempt) {
            ok = rt.submit(
                [fd, hdr, payload, &done] {
                    burnCpu(usToNs(hdr.burnUs));
                    WireHeader reply{hdr.burnUs, hdr.payloadLen};
                    writeAll(fd, &reply, sizeof(reply));
                    if (hdr.payloadLen)
                        writeAll(fd, payload->data(), hdr.payloadLen);
                    done.store(true);
                },
                hdr.burnUs >= 1000 ? 1 : 0);
            if (!ok)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
        }
        if (!ok) {
            g_submitRejected.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        // One request at a time per connection (synchronous RPC).
        while (!done.load())
            std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    ::close(fd);
}

struct RunResult
{
    double shortP50Ms;
    double shortMaxMs;
    std::uint64_t preemptions;
};

RunResult
runServerAndClient(TimeNs quantum, int requests, TimeNs long_burn)
{
    PreemptibleRuntime::Options opt;
    // One worker: on small hosts the LC/BE interleaving must come from
    // user-level preemption, not from spare cores.
    opt.nWorkers = 1;
    opt.quantum = quantum == 0 ? kTimeNever : quantum;
    PreemptibleRuntime rt(opt);

    // Listening socket on an ephemeral loopback port.
    int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    fatal_if(listener < 0, "socket() failed");
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    fatal_if(::bind(listener, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) != 0,
             "bind() failed");
    fatal_if(::listen(listener, 4) != 0, "listen() failed");
    socklen_t alen = sizeof(addr);
    fatal_if(::getsockname(listener, reinterpret_cast<sockaddr *>(&addr),
                           &alen) != 0,
             "getsockname() failed");

    // Two connections: one carries the long-burn traffic, one the
    // short latency-critical traffic, like an LC/BE colocation.
    std::thread acceptor([&] {
        for (int i = 0; i < 2; ++i) {
            int fd = ::accept(listener, nullptr, nullptr);
            if (fd < 0)
                return;
            setNoDelay(fd);
            std::thread(serveConnection, std::ref(rt), fd).detach();
        }
    });

    auto connect_client = [&]() {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        fatal_if(fd < 0, "client socket() failed");
        fatal_if(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof(addr)) != 0,
                 "connect() failed");
        setNoDelay(fd);
        return fd;
    };
    int lc_fd = connect_client();
    int be_fd = connect_client();
    acceptor.join();
    ::close(listener);

    // Background long burns arrive at a ~40% duty cycle: short RPCs
    // that collide with a burn expose the head-of-line difference.
    std::atomic<bool> be_stop{false};
    std::thread be_client([&, long_burn] {
        std::string payload(64, 'B');
        while (!be_stop.load()) {
            WireHeader hdr{
                static_cast<std::uint32_t>(nsToUs(long_burn)),
                static_cast<std::uint32_t>(payload.size())};
            if (!writeAll(be_fd, &hdr, sizeof(hdr)) ||
                !writeAll(be_fd, payload.data(), payload.size()))
                return;
            WireHeader reply;
            std::string echo(payload.size(), 0);
            if (!readAll(be_fd, &reply, sizeof(reply)) ||
                !readAll(be_fd, echo.data(), echo.size()))
                return;
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(long_burn + long_burn / 2));
        }
    });

    // Foreground short requests measure end-to-end RPC latency.
    LatencyHistogram lat;
    std::string payload(32, 'L');
    for (int i = 0; i < requests; ++i) {
        WireHeader hdr{50, static_cast<std::uint32_t>(payload.size())};
        TimeNs t0 = hostNowNs();
        if (!writeAll(lc_fd, &hdr, sizeof(hdr)) ||
            !writeAll(lc_fd, payload.data(), payload.size()))
            break;
        WireHeader reply;
        std::string echo(payload.size(), 0);
        if (!readAll(lc_fd, &reply, sizeof(reply)) ||
            !readAll(lc_fd, echo.data(), echo.size()))
            break;
        lat.record(hostNowNs() - t0);
        panic_if(echo != payload, "echo payload corrupted");
        // Spread the probes across several burn cycles; a synchronous
        // client otherwise races past the burns between two of them.
        std::this_thread::sleep_for(std::chrono::microseconds(300));
    }

    be_stop.store(true);
    ::close(lc_fd);
    ::close(be_fd);
    be_client.join();
    rt.quiesce();
    auto stats = rt.stats();
    rt.shutdown();
    return RunResult{nsToMs(lat.p50()), nsToMs(lat.max()),
                     stats.preemptions};
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    int requests = static_cast<int>(cli.getInt("requests", 400));
    TimeNs long_burn = msToNs(cli.getDouble("long-ms", 20));
    TimeNs quantum = msToNs(cli.getDouble("quantum-ms", 2));
    cli.rejectUnknown();

    std::printf("TCP echo server on loopback: %d short RPCs racing "
                "%.0f ms compression-scale burns\n\n",
                requests, nsToMs(long_burn));

    RunResult base = runServerAndClient(0, requests, long_burn);
    std::printf("no preemption  : short RPC p50 %7.2f ms  worst %7.2f ms\n",
                base.shortP50Ms, base.shortMaxMs);
    RunResult lib = runServerAndClient(quantum, requests, long_burn);
    std::printf("LibPreemptible : short RPC p50 %7.2f ms  worst %7.2f ms  "
                "(%llu preemptions)\n",
                lib.shortP50Ms, lib.shortMaxMs,
                static_cast<unsigned long long>(lib.preemptions));
    if (lib.shortMaxMs > 0) {
        std::printf("\nworst-case head-of-line improvement: %.1fx\n",
                    base.shortMaxMs / lib.shortMaxMs);
    }
    if (std::uint64_t rej = g_submitRejected.load())
        std::fprintf(stderr,
                     "rpc_echo_server: %llu connections dropped on "
                     "persistent submit refusal\n",
                     static_cast<unsigned long long>(rej));
    return 0;
}
