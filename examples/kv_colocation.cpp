/**
 * @file
 * Real-runtime colocation demo (the section V-C scenario on the host):
 * a MICA-style KVS serves latency-critical GET/SET traffic while
 * zlib-style compression jobs run best-effort on the same workers.
 *
 * Without preemption the 25 kB compression jobs head-of-line block the
 * microsecond KVS operations; with LibPreemptible the long jobs are
 * sliced by the time quantum and KVS tail latency collapses. The demo
 * runs both configurations and prints the comparison.
 *
 *   ./kv_colocation [--workers=1] [--lc-ops=2000] [--be-jobs=3]
 *                   [--quantum-ms=2]
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

#include "apps/compressor.hh"
#include "apps/kvstore.hh"
#include "common/cli.hh"
#include "obs/session.hh"
#include "common/dist.hh"
#include "common/rng.hh"
#include "preemptible/adaptive_driver.hh"
#include "preemptible/runtime.hh"

using namespace preempt;
using namespace preempt::runtime;

namespace {

struct RunResult
{
    double lcP50Us;
    double lcP99Us;
    double beP99Ms;
    std::uint64_t preemptions;
};

RunResult
runOnce(TimeNs quantum, int workers, int lc_ops, int be_jobs,
        bool adaptive = false)
{
    apps::KvStore store(8, 4096);
    Rng rng(7);
    ZipfianGenerator zipf(100000, 0.99); // MICA default, skew 0.99

    // Preload the working set.
    for (std::uint64_t k = 0; k < 100000; ++k)
        store.set(k, std::string(16, static_cast<char>('a' + k % 26)));

    PreemptibleRuntime::Options opt;
    opt.nWorkers = workers;
    opt.quantum = quantum == 0 ? kTimeNever : quantum;
    PreemptibleRuntime rt(opt);

    // Algorithm 1 on the host: sample stats, adjust the quantum.
    std::unique_ptr<AdaptiveQuantumDriver> driver;
    if (adaptive) {
        AdaptiveQuantumDriver::Options aopt;
        aopt.params.tMin = msToNs(1);
        aopt.params.tMax = msToNs(8);
        aopt.params.k1 = aopt.params.k2 = aopt.params.k3 = msToNs(1);
        aopt.period = msToNs(30);
        driver = std::make_unique<AdaptiveQuantumDriver>(rt, aopt);
    }

    auto block = apps::makeCompressibleBlock(apps::Compressor::kBlockSize,
                                             123);

    // Best-effort compression jobs: each one compresses a stream of
    // 25 kB blocks (tens of milliseconds of CPU), far beyond the
    // quantum — exactly the head-of-line hazard of section V-C.
    std::uint64_t beRejected = 0;
    for (int j = 0; j < be_jobs; ++j) {
        // Bounded backoff; a BE job refused (inbox full or shed by the
        // admission policy) is counted, not silently dropped.
        bool ok = false;
        for (int attempt = 0; attempt < 20 && !ok; ++attempt) {
            ok = rt.submit([&block] {
                apps::Compressor comp;
                for (int rep = 0; rep < 40; ++rep) {
                    auto out = comp.compress(block);
                    (void)out;
                }
            }, /*cls=*/1);
            if (!ok)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
        }
        if (!ok)
            ++beRejected;
    }
    if (beRejected > 0)
        std::fprintf(stderr, "kv_colocation: %llu BE jobs rejected\n",
                     static_cast<unsigned long long>(beRejected));

    // Latency-critical KVS requests arrive open-loop (paced), 5% SET /
    // 95% GET with zipfian keys, racing the compression stream.
    for (int i = 0; i < lc_ops; ++i) {
        std::uint64_t key = zipf.next(rng);
        bool is_set = rng.uniform() < 0.05;
        while (!rt.submit([&store, key, is_set] {
            std::string v;
            if (is_set)
                store.set(key, "updated-value!");
            else
                store.get(key, v);
        }, /*cls=*/0)) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        std::this_thread::sleep_for(std::chrono::microseconds(300));
    }

    rt.quiesce();
    if (driver)
        driver->stop();
    auto stats = rt.stats();
    rt.shutdown();
    return RunResult{nsToUs(stats.lcLatency.p50()),
                     nsToUs(stats.lcLatency.p99()),
                     nsToMs(stats.beLatency.p99()), stats.preemptions};
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    int workers = static_cast<int>(cli.getInt("workers", 1));
    int lc_ops = static_cast<int>(cli.getInt("lc-ops", 2000));
    int be_jobs = static_cast<int>(cli.getInt("be-jobs", 3));
    TimeNs quantum = msToNs(cli.getDouble("quantum-ms", 2.0));
    cli.rejectUnknown();

    std::printf("colocating %d KVS ops with %d compression jobs on %d "
                "workers\n\n", lc_ops, be_jobs, workers);

    RunResult base = runOnce(0, workers, lc_ops, be_jobs);
    std::printf("no preemption   : LC p50 %8.1f us  p99 %10.1f us  "
                "BE p99 %7.1f ms\n",
                base.lcP50Us, base.lcP99Us, base.beP99Ms);

    RunResult lib = runOnce(quantum, workers, lc_ops, be_jobs);
    std::printf("LibPreemptible  : LC p50 %8.1f us  p99 %10.1f us  "
                "BE p99 %7.1f ms  (%llu preemptions)\n",
                lib.lcP50Us, lib.lcP99Us, lib.beP99Ms,
                static_cast<unsigned long long>(lib.preemptions));

    RunResult ad = runOnce(quantum, workers, lc_ops, be_jobs, true);
    std::printf("  + Algorithm 1 : LC p50 %8.1f us  p99 %10.1f us  "
                "BE p99 %7.1f ms  (%llu preemptions)\n",
                ad.lcP50Us, ad.lcP99Us, ad.beP99Ms,
                static_cast<unsigned long long>(ad.preemptions));

    if (lib.lcP99Us > 0) {
        std::printf("\nLC p99 improvement: %.1fx\n",
                    base.lcP99Us / lib.lcP99Us);
    }
    return 0;
}
