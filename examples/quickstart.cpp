/**
 * @file
 * Quickstart: the Fig. 7 example — a simple round-robin scheduler
 * running N static user-level threads on the real LibPreemptible
 * runtime.
 *
 * Each "thread" is a preemptible function that counts; the scheduler
 * launches them once and then keeps resuming whichever was preempted,
 * round-robin, until everyone finished. Preemption is delivered by
 * LibUtimer (UINTR on Sapphire Rapids, signal fallback elsewhere), so
 * even the never-yielding counting loops cannot monopolise the worker.
 *
 *   ./quickstart [--threads=4] [--quantum-ms=2] [--work-ms=20]
 */

#include <cstdio>
#include <vector>

#include "common/cli.hh"
#include "obs/session.hh"
#include "preemptible/hosttime.hh"
#include "preemptible/preemptible_fn.hh"
#include "preemptible/utimer.hh"

using namespace preempt;
using namespace preempt::runtime;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    int n_threads = static_cast<int>(cli.getInt("threads", 4));
    TimeNs quantum = msToNs(static_cast<double>(
        cli.getDouble("quantum-ms", 2.0)));
    TimeNs work = msToNs(static_cast<double>(cli.getDouble("work-ms", 20.0)));
    cli.rejectUnknown();

    // utimer_init: one timer thread for the whole process.
    UTimer timer;
    timer.init();

    // utimer_register: this thread becomes the (only) worker.
    workerInit(timer);

    // N static user-level threads, each spinning for work-ms of CPU.
    std::vector<std::unique_ptr<PreemptibleFn>> fns;
    std::vector<TimeNs> progress(static_cast<std::size_t>(n_threads), 0);
    for (int i = 0; i < n_threads; ++i) {
        fns.push_back(std::make_unique<PreemptibleFn>([&, i] {
            TimeNs start = hostNowNs();
            while (hostNowNs() - start < work) {
                // Simulated request work; no yields — preemption is
                // the only way the scheduler regains control.
                progress[static_cast<std::size_t>(i)] =
                    hostNowNs() - start;
            }
        }));
    }

    // The Fig. 7 round-robin loop: launch everyone once, then resume
    // in order until all functions completed.
    std::printf("round-robin over %d user-level threads, quantum %.1f ms\n",
                n_threads, nsToMs(quantum));
    int live = n_threads;
    for (int i = 0; i < n_threads; ++i) {
        if (fn_launch(*fns[static_cast<std::size_t>(i)], quantum) ==
            FnStatus::Completed)
            --live;
    }
    int rounds = 0;
    while (live > 0) {
        ++rounds;
        for (auto &fn : fns) {
            if (fn_completed(*fn))
                continue;
            if (fn_resume(*fn, quantum) == FnStatus::Completed)
                --live;
        }
    }

    for (int i = 0; i < n_threads; ++i) {
        std::printf("  thread %d: preempted %d times, ran %.1f ms\n", i,
                    fns[static_cast<std::size_t>(i)]->preemptions(),
                    nsToMs(progress[static_cast<std::size_t>(i)]));
    }
    std::printf("all %d threads completed after %d resume rounds; "
                "timer fired %llu preemptions (%s delivery)\n",
                n_threads, rounds,
                static_cast<unsigned long long>(timer.firesTotal()),
                timer.usingUintr() ? "UINTR" : "signal");

    workerShutdown();
    timer.shutdown();
    return 0;
}
