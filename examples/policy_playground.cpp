/**
 * @file
 * Policy playground: run any of the simulated runtimes on any of the
 * paper's workloads at a chosen load and quantum, and print the
 * latency profile — a quick way to explore the scheduling space the
 * evaluation section sweeps.
 *
 *   ./policy_playground --system=libpreemptible|shinjuku|libinger|
 *                        nouintr|nopreempt
 *                       [--workload=A1|A2|B|C] [--rps=600000]
 *                       [--quantum-us=5] [--workers=4]
 *                       [--duration-ms=1000] [--adaptive]
 */

#include <cstdio>
#include <memory>

#include "baselines/libinger_sim.hh"
#include "baselines/oracle_sim.hh"
#include "baselines/shinjuku_sim.hh"
#include "common/cli.hh"
#include "obs/session.hh"
#include "common/table.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

using namespace preempt;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    obs::Session obsSession(cli);
    std::string system = cli.getString("system", "libpreemptible");
    std::string wl = cli.getString("workload", "A1");
    double rps = cli.getDouble("rps", 600e3);
    TimeNs quantum = usToNs(cli.getDouble("quantum-us", 5));
    int workers = static_cast<int>(cli.getInt("workers", 4));
    TimeNs duration = msToNs(cli.getDouble("duration-ms", 1000));
    bool adaptive = cli.getBool("adaptive", false);
    cli.rejectUnknown();

    sim::Simulator sim(42);
    hw::LatencyConfig cfg;

    std::unique_ptr<runtime_sim::ServerModel> server;
    if (system == "libpreemptible" || system == "nouintr" ||
        system == "nopreempt") {
        runtime_sim::LibPreemptibleConfig rc;
        rc.nWorkers = workers;
        rc.quantum = system == "nopreempt" ? 0 : quantum;
        rc.adaptive = adaptive;
        rc.controllerParams.period = msToNs(50);
        rc.statsHorizon = msToNs(50);
        if (system == "nouintr")
            rc.delivery = runtime_sim::TimerDelivery::KernelSignal;
        server = std::make_unique<runtime_sim::LibPreemptibleSim>(sim, cfg,
                                                                  rc);
    } else if (system == "shinjuku") {
        baselines::ShinjukuConfig sc;
        sc.nWorkers = workers + 1; // same total cores (no timer core)
        sc.quantum = quantum;
        server = std::make_unique<baselines::ShinjukuSim>(sim, cfg, sc);
    } else if (system == "ps") {
        server = std::make_unique<baselines::ProcessorSharingSim>(
            sim, workers);
    } else if (system == "srpt") {
        server = std::make_unique<baselines::SrptSim>(sim, workers);
    } else if (system == "libinger") {
        baselines::LibingerConfig lc;
        lc.nWorkers = workers + 1;
        lc.quantum = quantum;
        server = std::make_unique<baselines::LibingerSim>(sim, cfg, lc);
    } else {
        fatal("unknown --system '%s'", system.c_str());
    }

    workload::WorkloadSpec spec{workload::makeServiceLaw(wl, duration),
                                workload::RateLaw::constant(rps), duration};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server->onArrival(r);
                                    });
    gen.start();
    sim.runUntil(duration + msToNs(500));

    const auto &m = server->metrics();
    ConsoleTable table(server->name() + " on workload " + wl);
    table.header({"metric", "value"});
    table.row({"offered load", ConsoleTable::num(rps / 1e3, 0) + " kRPS"});
    table.row({"throughput",
               ConsoleTable::num(m.throughputRps(duration) / 1e3, 0) +
                   " kRPS"});
    table.row({"completed", std::to_string(m.completed())});
    table.row({"p50 latency",
               ConsoleTable::num(nsToUs(m.lcLatency().p50()), 1) + " us"});
    table.row({"p99 latency",
               ConsoleTable::num(nsToUs(m.lcLatency().p99()), 1) + " us"});
    table.row({"max latency",
               ConsoleTable::num(nsToUs(m.lcLatency().max()), 1) + " us"});
    table.row({"preemptions", std::to_string(m.totalPreemptions())});
    table.row({"overhead/exec", ConsoleTable::num(m.overheadRatio(), 3)});
    table.print();
    return 0;
}
