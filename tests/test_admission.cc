/**
 * @file
 * Unit tests for the span-driven admission plane (src/control/):
 * state-machine semantics (ladder, hysteresis, duty walk), decide()
 * gating per state with exact conservation, fail-open on stale or
 * never-published snapshots, counter-reset immunity of the snapshot
 * signals, the real runtime's policy-reject path, and byte-identity
 * of the simulated runtime when the policy is configured but off.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>

#include "control/admission.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "preemptible/hosttime.hh"
#include "preemptible/runtime.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

namespace preempt::control {
namespace {

AdmissionSignals
highSignals()
{
    AdmissionSignals s;
    s.depth = 1 << 20; // any single signal at/over its high mark
    return s;
}

AdmissionSignals
lowSignals()
{
    return AdmissionSignals{}; // all zeros: at/below every low mark
}

AdmissionSignals
bandSignals(const AdmissionParams &p)
{
    AdmissionSignals s;
    s.depth = (p.depthLow + p.depthHigh) / 2; // between the marks
    return s;
}

// ----- pressure classification --------------------------------------

TEST(AdmissionPressure, ClassifiesLowBandHighAndFailsOpen)
{
    AdmissionParams p;
    EXPECT_EQ(AdmissionController::pressure(lowSignals(), p), 0);
    EXPECT_EQ(AdmissionController::pressure(bandSignals(p), p), 1);
    EXPECT_EQ(AdmissionController::pressure(highSignals(), p), 2);

    // Any one signal at its high mark dominates.
    AdmissionSignals s;
    s.queuedP99Ns = p.queuedHighNs;
    EXPECT_EQ(AdmissionController::pressure(s, p), 2);
    s = AdmissionSignals{};
    s.violationRatio = p.violationHigh;
    EXPECT_EQ(AdmissionController::pressure(s, p), 2);

    // Unfresh inputs are zero pressure no matter how bad they look.
    s = highSignals();
    s.fresh = false;
    EXPECT_EQ(AdmissionController::pressure(s, p), 0);
}

// ----- state machine ------------------------------------------------

TEST(AdmissionMachine, EscalatesOneStepAtATimeThroughTheDutyWalk)
{
    AdmissionParams p; // escalateAfter=2, dutySteps=8
    AdmissionController ac(p);

    // Two high ticks reach THROTTLE at the gentle end of the duty.
    ac.onTick(0, highSignals());
    EXPECT_EQ(ac.state(0), PolicyState::Admit);
    ac.onTick(0, highSignals());
    EXPECT_EQ(ac.state(0), PolicyState::Throttle);
    EXPECT_EQ(ac.tenantStats(0).duty, p.dutySteps - 1);

    // Sustained pressure tightens the duty one step per tick; only
    // with the duty exhausted may severity move past THROTTLE.
    for (std::uint32_t d = p.dutySteps - 1; d > 1; --d) {
        ASSERT_EQ(ac.state(0), PolicyState::Throttle) << "duty=" << d;
        ac.onTick(0, highSignals());
    }
    EXPECT_EQ(ac.state(0), PolicyState::ShedBe);

    ac.onTick(0, highSignals());
    ac.onTick(0, highSignals());
    EXPECT_EQ(ac.state(0), PolicyState::ShedLc);

    // Top of the ladder: more pressure changes nothing.
    std::uint64_t changes = ac.tenantStats(0).stateChanges;
    ac.onTick(0, highSignals());
    EXPECT_EQ(ac.state(0), PolicyState::ShedLc);
    EXPECT_EQ(ac.tenantStats(0).stateChanges, changes);
}

TEST(AdmissionMachine, RelaxesThroughTheDutyWalkBackToAdmit)
{
    AdmissionParams p;
    p.escalateAfter = 1;
    p.relaxAfter = 2;
    p.dutySteps = 4;
    AdmissionController ac(p);
    // Drive to the top: Admit -> Throttle(3) -> duty 2,1 -> ShedBe
    // -> ShedLc.
    for (int i = 0; i < 8 && ac.state(0) != PolicyState::ShedLc; ++i)
        ac.onTick(0, highSignals());
    ASSERT_EQ(ac.state(0), PolicyState::ShedLc);

    ac.onTick(0, lowSignals());
    EXPECT_EQ(ac.state(0), PolicyState::ShedLc) << "one low tick only";
    ac.onTick(0, lowSignals());
    EXPECT_EQ(ac.state(0), PolicyState::ShedBe);
    ac.onTick(0, lowSignals());
    ac.onTick(0, lowSignals());
    EXPECT_EQ(ac.state(0), PolicyState::Throttle);
    EXPECT_EQ(ac.tenantStats(0).duty, 1u) << "recovery starts gentle";

    // The duty must recover fully before ADMIT.
    while (ac.state(0) == PolicyState::Throttle)
        ac.onTick(0, lowSignals());
    EXPECT_EQ(ac.state(0), PolicyState::Admit);
    EXPECT_EQ(ac.tenantStats(0).duty, p.dutySteps);
}

TEST(AdmissionMachine, HysteresisBandHoldsStateAndRestartsStreaks)
{
    AdmissionParams p; // escalateAfter=2
    AdmissionController ac(p);
    // high, band, high, band, ... never accumulates two consecutive
    // highs, so the state must hold at ADMIT forever.
    for (int i = 0; i < 20; ++i) {
        ac.onTick(0, highSignals());
        ac.onTick(0, bandSignals(p));
    }
    EXPECT_EQ(ac.state(0), PolicyState::Admit);
    EXPECT_EQ(ac.tenantStats(0).stateChanges, 0u);
}

TEST(AdmissionMachine, UnfreshTicksRelaxAnOverloadedTenant)
{
    AdmissionParams p;
    p.escalateAfter = 1;
    p.relaxAfter = 1;
    p.dutySteps = 2;
    AdmissionController ac(p);
    for (int i = 0; i < 4 && ac.state(0) != PolicyState::ShedLc; ++i)
        ac.onTick(0, highSignals());
    ASSERT_EQ(ac.state(0), PolicyState::ShedLc);

    // Telemetry dies (fresh=false): the machine must walk all the way
    // home — an outage can never wedge the system shut.
    AdmissionSignals dead = highSignals();
    dead.fresh = false;
    for (int i = 0; i < 16; ++i)
        ac.onTick(0, dead);
    EXPECT_EQ(ac.state(0), PolicyState::Admit);
}

// ----- decide() gating ----------------------------------------------

TEST(AdmissionDecide, PerStateSemanticsAndExactConservation)
{
    AdmissionParams p;
    p.escalateAfter = 1;
    p.dutySteps = 4;
    p.lcTrickle = 8;
    AdmissionController ac(p);

    // ADMIT: everything passes.
    EXPECT_TRUE(ac.decide(0, 0));
    EXPECT_TRUE(ac.decide(0, 1));

    // THROTTLE at duty 3-in-4: LC all pass, BE passes 3 of 4.
    ac.onTick(0, highSignals());
    ASSERT_EQ(ac.state(0), PolicyState::Throttle);
    ASSERT_EQ(ac.tenantStats(0).duty, 3u);
    int beAdmitted = 0;
    for (int i = 0; i < 40; ++i) {
        EXPECT_TRUE(ac.decide(0, 0));
        beAdmitted += ac.decide(0, 1) ? 1 : 0;
    }
    EXPECT_EQ(beAdmitted, 30) << "3-in-4 duty over 40 BE submits";

    // SHED_BE: LC passes, BE never. (Two more high ticks walk the
    // duty 3 -> 2 -> 1 and escalate out of THROTTLE.)
    ac.onTick(0, highSignals());
    ac.onTick(0, highSignals());
    ASSERT_EQ(ac.state(0), PolicyState::ShedBe);
    for (int i = 0; i < 16; ++i) {
        EXPECT_TRUE(ac.decide(0, 0));
        EXPECT_FALSE(ac.decide(0, 1));
    }

    // SHED_LC: BE never, LC exactly 1-in-lcTrickle.
    ac.onTick(0, highSignals());
    ASSERT_EQ(ac.state(0), PolicyState::ShedLc);
    int lcAdmitted = 0;
    for (int i = 0; i < 64; ++i) {
        lcAdmitted += ac.decide(0, 0) ? 1 : 0;
        EXPECT_FALSE(ac.decide(0, 1));
    }
    EXPECT_EQ(lcAdmitted, 64 / 8);

    // Conservation is exact, per class.
    TenantAdmissionStats st = ac.tenantStats(0);
    EXPECT_EQ(st.submittedLc, st.admittedLc + st.rejectedLc);
    EXPECT_EQ(st.submittedBe, st.admittedBe + st.rejectedBe);
    EXPECT_EQ(st.submitted(), st.admitted() + st.rejected());
}

TEST(AdmissionDecide, TenantsAreIndependent)
{
    AdmissionParams p;
    p.escalateAfter = 1;
    AdmissionController ac(p);
    ac.onTick(7, highSignals());
    ac.onTick(7, highSignals());
    EXPECT_EQ(ac.state(7), PolicyState::Throttle);
    EXPECT_EQ(ac.state(3), PolicyState::Admit);
    EXPECT_TRUE(ac.decide(3, 1)) << "tenant 3 is unaffected";
    ASSERT_EQ(ac.tenants().size(), 2u);
}

// ----- exported metrics ---------------------------------------------

TEST(AdmissionExport, PerTenantSeriesAreDeltaFed)
{
    obs::MetricsRegistry reg;
    AdmissionController ac;
    ac.decide(1, 0);
    ac.decide(1, 0);
    ac.decide(1, 1);
    ac.exportMetrics(reg);
    EXPECT_EQ(reg.counter("control.admitted.lc/t1").value(), 2u);
    EXPECT_EQ(reg.counter("control.admitted.be/t1").value(), 1u);
    EXPECT_EQ(reg.gauge("control.state/t1").value(), 0);
    EXPECT_EQ(reg.gauge("control.duty/t1").value(),
              static_cast<std::int64_t>(ac.params().dutySteps));

    // Re-export without new decisions: totals must not double.
    ac.exportMetrics(reg);
    EXPECT_EQ(reg.counter("control.admitted.lc/t1").value(), 2u);
    ac.decide(1, 0);
    ac.exportMetrics(reg);
    EXPECT_EQ(reg.counter("control.admitted.lc/t1").value(), 3u);
}

#ifndef PREEMPT_OBS_DISABLED

// ----- snapshot edges -----------------------------------------------

obs::TelemetrySnapshot
overloadSnapshot(std::uint64_t seq, std::uint32_t tenant)
{
    obs::TelemetrySnapshot snap;
    snap.seq = seq;
    obs::TelemetrySnapshot::TenantSpans ts;
    ts.tenant = tenant;
    ts.window.completed = 100;
    ts.window.violations = 100; // ratio 1.0: far past violationHigh
    ts.window.queued.p99 = 50 * 1000 * 1000;
    snap.spans.push_back(ts);
    obs::TelemetrySnapshot::GaugeSample g;
    g.name = tenant == 0 ? "runtime.in_flight"
                         : "runtime/t" + std::to_string(tenant) +
                               ".in_flight";
    g.value = 1000;
    snap.gauges.push_back(g);
    return snap;
}

TEST(AdmissionSnapshot, SignalsComeFromWindowSpansAndDepthGauge)
{
    obs::TelemetrySnapshot snap = overloadSnapshot(3, 2);
    AdmissionSignals s =
        AdmissionController::signalsFromSnapshot(snap, 2);
    EXPECT_TRUE(s.fresh);
    EXPECT_EQ(s.queuedP99Ns, 50u * 1000 * 1000);
    EXPECT_DOUBLE_EQ(s.violationRatio, 1.0);
    EXPECT_EQ(s.depth, 1000);

    // A tenant absent from the snapshot reads as zero pressure.
    AdmissionSignals none =
        AdmissionController::signalsFromSnapshot(snap, 9);
    EXPECT_EQ(none.queuedP99Ns, 0u);
    EXPECT_EQ(none.depth, 0);
}

TEST(AdmissionSnapshot, NeverPublishedAndStaleSnapshotsFailOpen)
{
    AdmissionParams p;
    p.escalateAfter = 1;
    p.relaxAfter = 1;
    p.dutySteps = 2;
    AdmissionController ac(p);

    // seq 0 = publisher never ticked: overloaded-looking numbers are
    // untrusted, the tenant must stay at ADMIT.
    obs::TelemetrySnapshot never = overloadSnapshot(0, 0);
    for (int i = 0; i < 4; ++i)
        ac.onSnapshot(never);
    EXPECT_EQ(ac.state(0), PolicyState::Admit);

    // A fresh overloaded snapshot escalates...
    ac.onSnapshot(overloadSnapshot(1, 0));
    EXPECT_EQ(ac.state(0), PolicyState::Throttle);

    // ...but replays of the same seq (stale publisher) are zero
    // pressure and relax the machine back home.
    obs::TelemetrySnapshot stale = overloadSnapshot(2, 0);
    ac.onSnapshot(stale);
    for (int i = 0; i < 8; ++i)
        ac.onSnapshot(stale);
    EXPECT_EQ(ac.state(0), PolicyState::Admit);
}

TEST(AdmissionSnapshot, CounterResetsCannotSpikeTheShedRate)
{
    // The violation ratio is computed from windowed span finishes, so
    // a lifetime-counter re-base (StatTracker reset detection) must
    // not move any signal.
    obs::TelemetrySnapshot snap;
    snap.seq = 5;
    obs::TelemetrySnapshot::TenantSpans ts;
    ts.tenant = 0;
    ts.completed = 10;         // lifetime counters rolled back...
    ts.violations = 9;         // ...and look catastrophic
    ts.window.completed = 200; // the window is healthy
    ts.window.violations = 1;
    ts.window.queued.p99 = 1000;
    snap.spans.push_back(ts);
    obs::TelemetrySnapshot::CounterSample c;
    c.name = "runtime.completed";
    c.value = 10;
    c.resets = 3; // source restarted mid-window
    snap.counters.push_back(c);

    AdmissionSignals s =
        AdmissionController::signalsFromSnapshot(snap, 0);
    EXPECT_DOUBLE_EQ(s.violationRatio, 1.0 / 200.0);
    AdmissionController ac;
    ac.onSnapshot(snap);
    ac.onSnapshot(snap); // stale replay: still no escalation
    EXPECT_EQ(ac.state(0), PolicyState::Admit);
    EXPECT_EQ(ac.tenantStats(0).stateChanges, 0u);
}

TEST(AdmissionSnapshot, HandFedPublisherRoundTrip)
{
    // End-to-end against a real (never-started) publisher: tickNow()
    // publishes, snapshot() feeds the controller; a second read of the
    // same snapshot is stale.
    obs::MetricsRegistry reg;
    obs::TelemetryPublisher::Options opt;
    opt.interval = msToNs(10);
    obs::TelemetryPublisher pub(&reg, nullptr, opt);

    AdmissionController ac;
    obs::TelemetrySnapshot before = pub.snapshot();
    EXPECT_EQ(before.seq, 0u) << "no tick yet";
    ac.onSnapshot(before);
    EXPECT_EQ(ac.tenantStats(0).ticks, 0u)
        << "empty snapshot names no tenants";

    reg.gauge("runtime.in_flight").set(3);
    pub.tickNow();
    obs::TelemetrySnapshot snap = pub.snapshot();
    EXPECT_EQ(snap.seq, 1u);
    AdmissionSignals s =
        AdmissionController::signalsFromSnapshot(snap, 0);
    EXPECT_TRUE(s.fresh);
    EXPECT_EQ(s.depth, 3);
}

#endif // !PREEMPT_OBS_DISABLED

// ----- real runtime gate --------------------------------------------

TEST(AdmissionRuntime, PolicyRejectionIsCountedAndRecovers)
{
    AdmissionParams p;
    p.escalateAfter = 1;
    p.relaxAfter = 1;
    p.dutySteps = 2;
    auto ac = std::make_shared<AdmissionController>(p);

    runtime::PreemptibleRuntime::Options opt;
    opt.nWorkers = 1;
    opt.idleNap = usToNs(50);
    opt.admission = ac;
    runtime::PreemptibleRuntime rt(opt);

    // Force SHED_BE by stepping the policy directly (the closed loop
    // is exercised via the publisher path; here the gate is under
    // test): Admit -> Throttle(duty=1) -> ShedBe.
    ac->onTick(0, highSignals());
    ac->onTick(0, highSignals());
    ASSERT_EQ(ac->state(0), PolicyState::ShedBe);

    std::atomic<int> ran{0};
    EXPECT_FALSE(rt.submit([&] { ran.fetch_add(1); }, /*cls=*/1));
    EXPECT_TRUE(rt.submit([&] { ran.fetch_add(1); }, /*cls=*/0))
        << "LC must still be admitted while BE is shed";
    runtime::RuntimeStats st = rt.stats();
    EXPECT_EQ(st.rejectedPolicy, 1u);
    EXPECT_EQ(st.rejectedFull, 0u);

    // Recovery: relax home, BE flows again.
    for (int i = 0; i < 8 && ac->state(0) != PolicyState::Admit; ++i)
        ac->onTick(0, lowSignals());
    ASSERT_EQ(ac->state(0), PolicyState::Admit);
    EXPECT_TRUE(rt.submit([&] { ran.fetch_add(1); }, /*cls=*/1));
    rt.quiesce();
    rt.shutdown();
    EXPECT_EQ(ran.load(), 2);

    TenantAdmissionStats ts = ac->tenantStats(0);
    EXPECT_EQ(ts.submitted(), ts.admitted() + ts.rejected());
    EXPECT_EQ(ts.rejectedBe, 1u);
}

// ----- simulated runtime --------------------------------------------

TEST(AdmissionSim, DisabledPolicyLeavesTraceByteIdentical)
{
    // admission.enabled=false must schedule nothing and touch nothing,
    // whatever the rest of the admission config says — the off leg of
    // the fig_admission A/B.
    auto traced = [](bool configure) {
        obs::Tracer tracer;
        obs::setTracer(&tracer);
        sim::Simulator sim(123);
        hw::LatencyConfig cfg;
        runtime_sim::LibPreemptibleConfig rc;
        rc.nWorkers = 2;
        rc.quantum = usToNs(5);
        if (configure) {
            rc.admission.enabled = false; // explicit off
            rc.admission.tickPeriod = usToNs(100);
            rc.admission.sloNs = usToNs(50);
            rc.admission.params.depthHigh = 1;
            rc.admission.params.depthLow = 0;
        }
        runtime_sim::LibPreemptibleSim server(sim, cfg, rc);
        TimeNs duration = msToNs(5);
        workload::WorkloadSpec spec{
            workload::makeServiceLaw("A1", duration),
            workload::RateLaw::constant(150000), duration};
        workload::OpenLoopGenerator gen(
            sim, std::move(spec),
            [&](workload::Request &r) { server.onArrival(r); });
        gen.start();
        sim.runUntil(duration + secToNs(30));
        EXPECT_EQ(server.admissionController(), nullptr);
        obs::setTracer(nullptr);
        std::ostringstream os;
        obs::writeChromeTrace(tracer, os);
        return os.str();
    };
    std::string baseline = traced(false);
    std::string explicit_off = traced(true);
#ifndef PREEMPT_OBS_DISABLED
    EXPECT_GT(baseline.size(), 1000u);
#endif
    EXPECT_EQ(baseline, explicit_off);
}

TEST(AdmissionSim, OverloadShedsAndConservesEveryArrival)
{
    sim::Simulator sim(7);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 1;
    rc.quantum = usToNs(5);
    rc.policy = runtime_sim::SchedPolicy::RoundRobin;
    rc.admission.enabled = true;
    rc.admission.tickPeriod = msToNs(1);
    rc.admission.sloNs = msToNs(1);
    rc.admission.params.depthHigh = 32;
    rc.admission.params.depthLow = 8;
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);

    // ~3x a single worker's capacity for this service law.
    TimeNs duration = msToNs(100);
    workload::WorkloadSpec spec{
        workload::ServiceLaw(std::make_shared<LogNormalDist>(30e3, 0.4)),
        workload::RateLaw::constant(90000), duration};
    spec.beFraction = 0.5;
    spec.beService = std::make_shared<workload::ServiceLaw>(
        std::make_shared<LogNormalDist>(60e3, 0.3));
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runUntil(duration + secToNs(5));

    const workload::RunMetrics &m = server.metrics();
    EXPECT_GT(m.rejected(), 0u) << "3x overload must shed";
    EXPECT_EQ(m.arrived(),
              m.completed() + m.cancelled() + m.rejected())
        << "every arrival admitted-and-finished or rejected";
    EXPECT_EQ(server.inFlight(), 0u);

    ASSERT_NE(server.admissionController(), nullptr);
    TenantAdmissionStats ts =
        server.admissionController()->tenantStats(0);
    EXPECT_EQ(ts.submitted(), ts.admitted() + ts.rejected());
    EXPECT_EQ(ts.submitted(), m.arrived());
    EXPECT_EQ(ts.rejected(), m.rejected());
    EXPECT_GT(ts.stateChanges, 0u);
    // Load is gone: the machine must have walked home.
    EXPECT_EQ(server.admissionController()->state(0),
              PolicyState::Admit);
}

} // namespace
} // namespace preempt::control
