/** @file Tests for the kernel cost models, jitter, and the machine. */

#include <gtest/gtest.h>

#include <vector>

#include "hw/jitter.hh"
#include "hw/kernel.hh"
#include "hw/machine.hh"
#include "sim/simulator.hh"

namespace preempt::hw {
namespace {

TEST(Jitter, SamplesRespectFloor)
{
    Rng rng(1);
    JitterSpec spec{1000, 500, 300};
    for (int i = 0; i < 10000; ++i)
        ASSERT_GE(spec.sample(rng), 1000u);
}

TEST(Jitter, MomentsMatchSpec)
{
    Rng rng(2);
    JitterSpec spec{2000, 1500, 700};
    double sum = 0, sumsq = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        double v = static_cast<double>(spec.sample(rng));
        sum += v;
        sumsq += v * v;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, spec.expectedNs(), spec.expectedNs() * 0.02);
    EXPECT_NEAR(std::sqrt(var), 700.0, 70.0);
}

TEST(Jitter, ZeroMeanIsDeterministic)
{
    Rng rng(3);
    JitterSpec spec{123, 0, 0};
    EXPECT_EQ(spec.sample(rng), 123u);
}

TEST(SignalPath, DeliversThroughKernelPath)
{
    sim::Simulator sim(1);
    LatencyConfig cfg;
    SignalPath path(sim, cfg);
    TimeNs entry = 0;
    path.sendSignal([&](TimeNs t, TimeNs) { entry = t; });
    sim.runAll();
    EXPECT_GE(entry, cfg.signalDelivery.floorNs);
    EXPECT_EQ(path.delivered(), 1u);
}

TEST(SignalPath, BurstCausesQueueing)
{
    sim::Simulator sim(1);
    LatencyConfig cfg;
    SignalPath path(sim, cfg);
    std::vector<TimeNs> delays;
    for (int i = 0; i < 16; ++i)
        path.sendSignal([&](TimeNs, TimeNs d) { delays.push_back(d); });
    sim.runAll();
    ASSERT_EQ(delays.size(), 16u);
    // Later signals in the burst queue behind the kernel lock.
    EXPECT_GT(path.meanQueueingNs(), 0.0);
    TimeNs max_delay = *std::max_element(delays.begin(), delays.end());
    TimeNs min_delay = *std::min_element(delays.begin(), delays.end());
    EXPECT_GE(max_delay, min_delay + 10 * cfg.signalLockHold);
}

TEST(KernelTimer, ClampsToGranularityFloor)
{
    sim::Simulator sim(1);
    LatencyConfig cfg;
    SignalPath path(sim, cfg);
    KernelTimer timer(sim, cfg, path);
    timer.arm(usToNs(20), false, [](TimeNs, TimeNs) {});
    EXPECT_EQ(timer.effectiveInterval(), cfg.kernelTimerFloor);
}

TEST(KernelTimer, PeriodicFiresRepeatedly)
{
    sim::Simulator sim(1);
    LatencyConfig cfg;
    cfg.kernelTimerFloor = usToNs(100);
    SignalPath path(sim, cfg);
    KernelTimer timer(sim, cfg, path);
    int fires = 0;
    timer.arm(usToNs(100), true, [&](TimeNs, TimeNs) { ++fires; });
    sim.runUntil(msToNs(2));
    // ~20 expiries over 2 ms at a 100 us period (with jitter slack).
    EXPECT_GE(fires, 12);
    EXPECT_LE(fires, 22);
}

TEST(KernelTimer, DisarmStopsExpiries)
{
    sim::Simulator sim(1);
    LatencyConfig cfg;
    cfg.kernelTimerFloor = usToNs(100);
    SignalPath path(sim, cfg);
    KernelTimer timer(sim, cfg, path);
    int fires = 0;
    timer.arm(usToNs(100), true, [&](TimeNs, TimeNs) { ++fires; });
    sim.runUntil(usToNs(450));
    timer.disarm();
    int at_disarm = fires;
    sim.runUntil(msToNs(5));
    EXPECT_EQ(fires, at_disarm);
}

TEST(KernelTimer, OneShotFiresOnce)
{
    sim::Simulator sim(1);
    LatencyConfig cfg;
    cfg.kernelTimerFloor = usToNs(100);
    SignalPath path(sim, cfg);
    KernelTimer timer(sim, cfg, path);
    int fires = 0;
    timer.arm(usToNs(100), false, [&](TimeNs, TimeNs) { ++fires; });
    sim.runUntil(msToNs(5));
    EXPECT_EQ(fires, 1);
}

TEST(Machine, UtilizationAndRoles)
{
    sim::Simulator sim(1);
    LatencyConfig cfg;
    Machine m(sim, cfg, 3);
    m.setRole(0, CoreRole::Dispatcher);
    m.setRole(1, CoreRole::Worker);
    m.setRole(2, CoreRole::Timer);
    EXPECT_EQ(m.role(2), CoreRole::Timer);

    sim.after(1000, [](TimeNs) {});
    sim.runAll();
    m.addBusy(1, 500);
    EXPECT_DOUBLE_EQ(m.utilization(1), 0.5);
    EXPECT_EQ(m.totalBusy(), 500u);
}

TEST(Machine, PowerModelChargesTimerCoreFlat)
{
    sim::Simulator sim(1);
    LatencyConfig cfg;
    Machine m(sim, cfg, 3);
    m.setRole(0, CoreRole::Timer);
    m.setRole(1, CoreRole::Timer);
    m.setRole(2, CoreRole::Worker);
    sim.after(1000, [](TimeNs) {});
    sim.runAll();
    m.addBusy(2, 1000); // fully busy worker
    double watts = m.powerWatts();
    // First timer core at the UMWAIT wattage, second nearly free,
    // worker at full utilization.
    EXPECT_NEAR(watts,
                cfg.timerCoreWatts + cfg.extraTimerCoreWatts +
                    cfg.workerCoreWatts,
                1e-9);
}

TEST(MachineDeath, InvalidCorePanics)
{
    sim::Simulator sim(1);
    LatencyConfig cfg;
    Machine m(sim, cfg, 2);
    EXPECT_DEATH(m.addBusy(5, 1), "invalid core");
}

} // namespace
} // namespace preempt::hw
