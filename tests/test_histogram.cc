/** @file Unit and property tests for the log-bucket latency histogram. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/histogram.hh"
#include "common/rng.hh"

namespace preempt {
namespace {

TEST(Histogram, EmptyIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.p50(), 0u);
    EXPECT_EQ(h.p99(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAbove(5), 0.0);
}

TEST(Histogram, SmallValuesAreExact)
{
    LatencyHistogram h;
    for (std::uint64_t v = 0; v < 32; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 32u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 31u);
    // Values below the sub-bucket count are stored exactly; the
    // median rank (16th of 32) is the value 15.
    EXPECT_EQ(h.quantile(0.5), 15u);
}

TEST(Histogram, SingleValue)
{
    LatencyHistogram h;
    h.record(1000);
    EXPECT_EQ(h.p50(), h.p99());
    EXPECT_NEAR(static_cast<double>(h.p50()), 1000.0, 1000.0 * 0.07);
}

TEST(Histogram, MeanAndStddevExact)
{
    LatencyHistogram h;
    h.record(10);
    h.record(20);
    h.record(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_NEAR(h.stddev(), std::sqrt(200.0 / 3.0), 1e-9);
}

TEST(Histogram, StddevSurvivesTightClusterOfLargeValues)
{
    // Regression: 1e15-scale values with unit-scale spread. The old
    // sumSq_/n - mean*mean formulation cancels catastrophically here
    // (both terms ~1e30, difference ~2 — far below double's 1e15
    // resolution at that magnitude, so it reported 0); the centered
    // Welford/Chan accumulation keeps the spread.
    LatencyHistogram h;
    std::uint64_t base = 1'000'000'000'000'000ULL;
    for (std::uint64_t d : {0ULL, 1ULL, 2ULL, 3ULL, 4ULL})
        h.record(base + d);
    EXPECT_NEAR(h.mean(), 1e15 + 2.0, 1e-3);
    EXPECT_NEAR(h.stddev(), std::sqrt(2.0), 1e-6);
}

TEST(Histogram, StddevSurvivesMergeOfLargeValueClusters)
{
    // The same cluster split across two histograms and merged must
    // agree with recording everything into one (Chan's parallel
    // combination is exact up to rounding).
    std::uint64_t base = 3'000'000'000'000'000ULL;
    LatencyHistogram a, b, all;
    for (std::uint64_t d : {0ULL, 1ULL, 2ULL}) {
        a.record(base + d);
        all.record(base + d);
    }
    for (std::uint64_t d : {3ULL, 4ULL, 5ULL}) {
        b.record(base + d);
        all.record(base + d);
    }
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
    EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
    EXPECT_NEAR(all.stddev(), std::sqrt(35.0 / 12.0), 1e-6);
}

TEST(Histogram, RecordWithMultiplicity)
{
    LatencyHistogram h;
    h.record(5, 10);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_EQ(h.p50(), 5u);
    h.record(7, 0); // no-op
    EXPECT_EQ(h.count(), 10u);
}

TEST(Histogram, QuantilesMonotonic)
{
    LatencyHistogram h;
    Rng rng(1);
    for (int i = 0; i < 100000; ++i)
        h.record(rng.below(1000000));
    std::uint64_t prev = 0;
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
        std::uint64_t v = h.quantile(q);
        EXPECT_GE(v, prev) << "q=" << q;
        prev = v;
    }
}

TEST(Histogram, BoundedRelativeQuantileError)
{
    // Property: for uniform data the reported quantile is within the
    // sub-bucket resolution (32 sub-buckets per octave => ~3.1%) of
    // the exact order statistic.
    LatencyHistogram h;
    std::vector<std::uint64_t> exact;
    Rng rng(2);
    for (int i = 0; i < 200000; ++i) {
        std::uint64_t v = 100 + rng.below(10000000);
        h.record(v);
        exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        auto idx = static_cast<std::size_t>(q * (exact.size() - 1));
        double truth = static_cast<double>(exact[idx]);
        double est = static_cast<double>(h.quantile(q));
        EXPECT_NEAR(est, truth, truth * 0.035) << "q=" << q;
    }
}

TEST(Histogram, MeasuredRelativeErrorPinsSubBucketResolution)
{
    // kSubBucketBits = 5 gives 32 sub-buckets per octave, so the
    // bucket-midpoint representative sits within 1/(2*16) = 1/32
    // (~3.1%) of any recorded value. Measure the worst case over
    // every sub-bucket edge of many octaves instead of trusting the
    // header prose (which once claimed 16 sub-buckets / ~6%).
    double worst = 0;
    for (int o = 6; o <= 40; ++o) {
        for (std::uint64_t sub = 16; sub < 32; ++sub) {
            // The lower edge of a sub-bucket maximises |mid - value|.
            std::uint64_t v = sub << o;
            LatencyHistogram h;
            h.record(1);          // sentinels widen [min, max] so the
            h.record(1ULL << 50); // representative is not clamped
            h.record(v);
            double est = static_cast<double>(h.quantile(0.5));
            double err = std::abs(est - static_cast<double>(v)) /
                         static_cast<double>(v);
            worst = std::max(worst, err);
        }
    }
    EXPECT_LE(worst, 1.0 / 32.0 + 1e-12);
    // And the bound is tight: the worst case is the full ~3.1%, i.e.
    // the layout really is 32 sub-buckets, not a coarser one.
    EXPECT_NEAR(worst, 1.0 / 32.0, 1e-3);
}

TEST(Histogram, FractionAbove)
{
    LatencyHistogram h;
    for (int i = 0; i < 90; ++i)
        h.record(10);
    for (int i = 0; i < 10; ++i)
        h.record(100000);
    EXPECT_NEAR(h.fractionAbove(1000), 0.10, 1e-9);
    EXPECT_NEAR(h.fractionAbove(200000), 0.0, 1e-9);
    EXPECT_NEAR(h.fractionAbove(0), 1.0, 1e-9);
}

TEST(Histogram, FractionAboveHandlesHugeValues)
{
    LatencyHistogram h;
    h.record(1ULL << 55);
    h.record(10);
    EXPECT_NEAR(h.fractionAbove(100), 0.5, 1e-9);
}

TEST(Histogram, MergeCombines)
{
    LatencyHistogram a, b;
    a.record(10);
    a.record(1000);
    b.record(500000);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.min(), 10u);
    EXPECT_GE(a.max(), 500000u);
    // Merging an empty histogram changes nothing.
    LatencyHistogram empty;
    std::uint64_t before = a.count();
    a.merge(empty);
    EXPECT_EQ(a.count(), before);
}

TEST(Histogram, MergeIntoEmptyEqualsCopy)
{
    LatencyHistogram a, b;
    b.record(100);
    b.record(2000);
    b.record(30000);
    a.merge(b);
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
    EXPECT_EQ(a.p50(), b.p50());
    EXPECT_EQ(a.p99(), b.p99());
    EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

TEST(Histogram, MergeBothEmptyStaysEmpty)
{
    LatencyHistogram a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.min(), 0u);
    EXPECT_EQ(a.max(), 0u);
    EXPECT_EQ(a.p999(), 0u);
}

TEST(Histogram, MergeMismatchedRangesMatchesSingleHistogram)
{
    // Operands populate disjoint octaves (nanoseconds vs seconds);
    // merging must agree with recording everything into one histogram.
    LatencyHistogram low, high, all;
    for (std::uint64_t v = 1; v <= 64; ++v) {
        low.record(v);
        all.record(v);
    }
    for (std::uint64_t v = 1; v <= 16; ++v) {
        high.record(v * 1'000'000'000ULL);
        all.record(v * 1'000'000'000ULL);
    }
    low.merge(high);
    EXPECT_EQ(low.count(), all.count());
    EXPECT_EQ(low.min(), all.min());
    EXPECT_EQ(low.max(), all.max());
    for (double q : {0.1, 0.5, 0.9, 0.99, 0.999})
        EXPECT_EQ(low.quantile(q), all.quantile(q)) << "q=" << q;
    EXPECT_DOUBLE_EQ(low.mean(), all.mean());
    EXPECT_NEAR(low.fractionAbove(1000), all.fractionAbove(1000), 1e-12);
}

TEST(Histogram, MergeIsCommutativeOnQuantiles)
{
    LatencyHistogram ab, ba, a1, b1;
    a1.record(10, 100);
    b1.record(100000, 5);
    ab = a1;
    ab.merge(b1);
    ba = b1;
    ba.merge(a1);
    EXPECT_EQ(ab.count(), ba.count());
    EXPECT_EQ(ab.p50(), ba.p50());
    EXPECT_EQ(ab.p999(), ba.p999());
    EXPECT_EQ(ab.min(), ba.min());
    EXPECT_EQ(ab.max(), ba.max());
}

TEST(Histogram, ResetClears)
{
    LatencyHistogram h;
    h.record(123);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.p99(), 0u);
    h.record(7);
    EXPECT_EQ(h.p50(), 7u);
}

TEST(Histogram, SummaryMentionsCount)
{
    LatencyHistogram h;
    h.record(1000);
    EXPECT_NE(h.summaryUs().find("n=1"), std::string::npos);
}

TEST(Histogram, QuantileClampedToObservedRange)
{
    LatencyHistogram h;
    h.record(1000000007ULL);
    EXPECT_EQ(h.quantile(0.0), h.quantile(1.0));
    EXPECT_GE(h.quantile(1.0), h.min());
    EXPECT_LE(h.quantile(1.0), h.max());
}

// Property sweep over magnitudes: recorded values round-trip with
// bounded relative error at every scale.
class HistogramScale : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HistogramScale, RepresentativeWithinRelativeError)
{
    std::uint64_t base = GetParam();
    LatencyHistogram h;
    h.record(base);
    double est = static_cast<double>(h.quantile(0.5));
    double truth = static_cast<double>(base);
    EXPECT_NEAR(est, truth, truth * 0.07 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, HistogramScale,
                         testing::Values(1ULL, 10ULL, 100ULL, 1000ULL,
                                         123456ULL, 98765432ULL,
                                         1ULL << 40, 1ULL << 55));

} // namespace
} // namespace preempt
