/**
 * @file
 * Cross-module integration tests asserting the *shapes* the paper's
 * evaluation reports, at test-sized durations:
 *   - every runtime conserves requests at sub-saturation load;
 *   - LibPreemptible's tail beats Shinjuku's at high load (Fig. 8);
 *   - losing UINTR costs multiples of tail latency (Fig. 8 orange);
 *   - Libinger trails everything (Fig. 8);
 *   - small quanta win on heavy tails, large on light tails (Fig. 2);
 *   - the adaptive controller tracks the better static choice (Fig. 9);
 *   - colocation: preemption cuts the LC tail multiples (Fig. 13).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/libinger_sim.hh"
#include "baselines/shinjuku_sim.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

namespace preempt {
namespace {

struct Result
{
    TimeNs p50 = 0;
    TimeNs p99 = 0;
    std::uint64_t arrived = 0;
    std::uint64_t completed = 0;
};

Result
runSystem(const std::string &system, const std::string &wl, double rps,
          TimeNs quantum, TimeNs duration = msToNs(120),
          std::uint64_t seed = 42)
{
    sim::Simulator sim(seed);
    hw::LatencyConfig cfg;
    std::unique_ptr<runtime_sim::ServerModel> server;
    if (system == "shinjuku") {
        baselines::ShinjukuConfig sc;
        sc.nWorkers = 5;
        sc.quantum = quantum;
        server = std::make_unique<baselines::ShinjukuSim>(sim, cfg, sc);
    } else if (system == "libinger") {
        baselines::LibingerConfig lc;
        lc.nWorkers = 5;
        lc.quantum = quantum;
        server = std::make_unique<baselines::LibingerSim>(sim, cfg, lc);
    } else {
        runtime_sim::LibPreemptibleConfig rc;
        rc.nWorkers = 4;
        rc.quantum = quantum;
        if (system == "nouintr")
            rc.delivery = runtime_sim::TimerDelivery::KernelSignal;
        if (system == "adaptive") {
            rc.adaptive = true;
            rc.controllerParams.period = msToNs(10);
            rc.statsHorizon = msToNs(10);
        }
        server =
            std::make_unique<runtime_sim::LibPreemptibleSim>(sim, cfg, rc);
    }

    workload::WorkloadSpec spec{workload::makeServiceLaw(wl, duration),
                                workload::RateLaw::constant(rps), duration};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server->onArrival(r);
                                    });
    gen.start();
    sim.runUntil(duration + secToNs(2));

    Result r;
    r.p50 = server->metrics().lcLatency().p50();
    r.p99 = server->metrics().lcLatency().p99();
    r.arrived = server->metrics().arrived();
    r.completed = server->metrics().completed();
    return r;
}

// --- conservation property over (system, workload) --------------------

class Conservation
    : public testing::TestWithParam<std::pair<const char *, const char *>>
{
};

TEST_P(Conservation, NoRequestLostAtModerateLoad)
{
    auto [system, wl] = GetParam();
    double rps = std::string(wl) == "A2" ? 150e3 : 250e3;
    Result r = runSystem(system, wl, rps, usToNs(10), msToNs(60));
    EXPECT_GT(r.arrived, 1000u);
    EXPECT_EQ(r.arrived, r.completed) << system << " lost requests";
}

INSTANTIATE_TEST_SUITE_P(
    SystemsTimesWorkloads, Conservation,
    testing::Values(
        std::pair<const char *, const char *>{"libpreemptible", "A1"},
        std::pair<const char *, const char *>{"libpreemptible", "A2"},
        std::pair<const char *, const char *>{"libpreemptible", "B"},
        std::pair<const char *, const char *>{"libpreemptible", "C"},
        std::pair<const char *, const char *>{"shinjuku", "A1"},
        std::pair<const char *, const char *>{"shinjuku", "B"},
        std::pair<const char *, const char *>{"libinger", "A1"},
        std::pair<const char *, const char *>{"nouintr", "A1"},
        std::pair<const char *, const char *>{"adaptive", "C"}),
    [](const auto &info) {
        return std::string(info.param.first) + "_" + info.param.second;
    });

// --- Fig. 8 shape: ordering at high load -------------------------------

TEST(Fig8Shape, LibPreemptibleTailBeatsShinjukuAtHighLoad)
{
    Result lib = runSystem("libpreemptible", "A1", 1000e3, usToNs(5));
    Result shj = runSystem("shinjuku", "A1", 1000e3, usToNs(5));
    // Paper: ~10x at high load; assert a conservative 3x.
    EXPECT_GT(shj.p99, lib.p99 * 3);
}

TEST(Fig8Shape, NoUintrFallbackCostsMultiples)
{
    Result lib = runSystem("libpreemptible", "A1", 900e3, usToNs(5));
    Result fallback = runSystem("nouintr", "A1", 900e3, usToNs(5));
    // Paper: >5x worse tail; assert 3x.
    EXPECT_GT(fallback.p99, lib.p99 * 3);
}

TEST(Fig8Shape, LibingerTrailsShinjuku)
{
    Result shj = runSystem("shinjuku", "A1", 900e3, usToNs(5));
    Result lbg = runSystem("libinger", "A1", 900e3, usToNs(60));
    EXPECT_GT(lbg.p99, shj.p99);
}

TEST(Fig8Shape, MedianAdvantageAtLowLoad)
{
    Result lib = runSystem("libpreemptible", "A1", 200e3, usToNs(5));
    Result shj = runSystem("shinjuku", "A1", 200e3, usToNs(5));
    // Centralized per-request dispatch costs Shinjuku median latency.
    EXPECT_LT(lib.p50, shj.p50);
}

// --- Fig. 2 shape: quantum vs tail interaction --------------------------

TEST(Fig2Shape, SmallQuantumWinsOnHeavyTail)
{
    Result fine = runSystem("libpreemptible", "A1", 900e3, usToNs(5));
    Result none = runSystem("libpreemptible", "A1", 900e3, 0);
    EXPECT_GT(none.p99, fine.p99 * 4);
}

TEST(Fig2Shape, PreemptionBuysLittleOnLightTail)
{
    Result fine = runSystem("libpreemptible", "B", 500e3, usToNs(5));
    Result coarse = runSystem("libpreemptible", "B", 500e3, usToNs(100));
    // Exponential tails gain little from fine slicing; the two ends of
    // the quantum range stay within ~2x of each other.
    double ratio = static_cast<double>(fine.p99) /
                   static_cast<double>(coarse.p99);
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

// --- Fig. 9 shape: adaptation tracks the better static policy ----------

TEST(Fig9Shape, AdaptiveWithinReachOfBestStatic)
{
    Result adaptive = runSystem("adaptive", "C", 700e3, usToNs(100));
    Result coarse = runSystem("libpreemptible", "C", 700e3, usToNs(100));
    Result fine = runSystem("libpreemptible", "C", 700e3, usToNs(5));
    TimeNs best = std::min(fine.p99, coarse.p99);
    // The controller converges toward the better static choice and
    // clearly beats the worse one.
    EXPECT_LT(adaptive.p99, best * 3);
    EXPECT_LT(adaptive.p99, std::max(fine.p99, coarse.p99));
}

// --- Fig. 13 shape: colocation -------------------------------------------

TEST(Fig13Shape, PreemptionCutsLcTailUnderColocation)
{
    auto colocate = [&](TimeNs quantum) {
        sim::Simulator sim(42);
        hw::LatencyConfig cfg;
        runtime_sim::LibPreemptibleConfig rc;
        rc.nWorkers = 1;
        rc.quantum = quantum;
        rc.policy = runtime_sim::SchedPolicy::NewFirst; // policy #1
        runtime_sim::LibPreemptibleSim server(sim, cfg, rc);
        TimeNs duration = msToNs(500);
        workload::WorkloadSpec spec{
            workload::ServiceLaw(
                std::make_shared<LogNormalDist>(1200.0, 0.6)),
            workload::RateLaw::constant(55e3), duration};
        spec.beFraction = 0.02;
        spec.beService = std::make_shared<workload::ServiceLaw>(
            std::make_shared<LogNormalDist>(100e3, 0.25));
        workload::OpenLoopGenerator gen(sim, std::move(spec),
                                        [&](workload::Request &r) {
                                            server.onArrival(r);
                                        });
        gen.start();
        sim.runUntil(duration + secToNs(1));
        return server.metrics().lcLatency().p99();
    };
    TimeNs base = colocate(0);
    TimeNs lib30 = colocate(usToNs(30));
    TimeNs lib5 = colocate(usToNs(5));
    // Paper: 3.2-4.4x at 30 us, ~18.5x at 5 us; assert conservative
    // bounds on the ordering and magnitudes.
    EXPECT_GT(base, lib30 * 2);
    EXPECT_GT(lib30, lib5);
    EXPECT_GT(base, lib5 * 8);
}

// --- determinism ----------------------------------------------------------

TEST(Determinism, IdenticalSeedsIdenticalResults)
{
    Result a = runSystem("libpreemptible", "C", 600e3, usToNs(10),
                         msToNs(60), 123);
    Result b = runSystem("libpreemptible", "C", 600e3, usToNs(10),
                         msToNs(60), 123);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.completed, b.completed);
}

} // namespace
} // namespace preempt
