/**
 * @file
 * Tests for the deterministic parallel experiment harness (src/exp):
 * per-cell seed derivation, the indexed thread pool, and the
 * byte-identity guarantee — --jobs=1 and --jobs=8 must merge to
 * identical trace, metrics, and table output, including on a real
 * fig08-style grid driven through bench_util.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <iterator>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.hh"
#include "exp/harness.hh"
#include "exp/pool.hh"
#include "fault/fault.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"

namespace preempt {
namespace {

// ----- cellSeed -----------------------------------------------------

TEST(CellSeed, IsAPureFunctionOfBaseAndIndex)
{
    // Compile-time evaluable, so by construction independent of
    // draw order, thread, and --jobs.
    static_assert(exp::cellSeed(42, 0) == exp::cellSeed(42, 0));
    EXPECT_EQ(exp::cellSeed(42, 7), exp::cellSeed(42, 7));
    EXPECT_NE(exp::cellSeed(42, 7), exp::cellSeed(42, 8));
    EXPECT_NE(exp::cellSeed(42, 7), exp::cellSeed(43, 7));
    // No degenerate zero seeds for the simulator RNG.
    EXPECT_NE(exp::cellSeed(0, 0), 0u);
}

TEST(CellSeed, SubstreamsAreIndependent)
{
    // Cells seeded from adjacent indices must not produce correlated
    // draws (a raw base+index seed would).
    sim::Simulator a(exp::cellSeed(1, 0));
    sim::Simulator b(exp::cellSeed(1, 1));
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.rng().below(1000) == b.rng().below(1000);
    EXPECT_LT(same, 50); // ~1 collision per thousand expected
}

TEST(CellSeed, StableAcrossCompletionOrder)
{
    // The seed a cell observes inside the harness equals the hash,
    // whatever thread ran it and whenever it finished.
    exp::HarnessOptions ho;
    ho.jobs = 8;
    ho.baseSeed = 99;
    exp::Harness h(ho);
    std::vector<std::uint64_t> seen(64);
    h.run(64, [&](const exp::CellEnv &env) {
        seen[env.index] = env.seed;
    });
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], exp::cellSeed(99, i)) << i;
}

// ----- pool ---------------------------------------------------------

TEST(Pool, ResolveJobsDefaultsToHardware)
{
    EXPECT_GE(exp::resolveJobs(0), 1);
    EXPECT_GE(exp::resolveJobs(-3), 1);
    EXPECT_EQ(exp::resolveJobs(4), 4);
}

TEST(Pool, SequentialRunsInAscendingOrder)
{
    std::vector<std::size_t> order;
    exp::runIndexed(1, 10, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Pool, ParallelRunsEveryIndexExactlyOnce)
{
    std::mutex mu;
    std::set<std::size_t> seen;
    std::atomic<int> calls{0};
    exp::runIndexed(8, 100, [&](std::size_t i) {
        ++calls;
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(i);
    });
    EXPECT_EQ(calls.load(), 100);
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Pool, HandlesMoreJobsThanWork)
{
    std::atomic<int> calls{0};
    exp::runIndexed(16, 3, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 3);
    exp::runIndexed(4, 0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 3);
}

// ----- byte identity ------------------------------------------------

/** Trace JSON + metrics JSON captured by one full harness pass. */
std::pair<std::string, std::string>
captureAt(int jobs, std::size_t cells)
{
    obs::Tracer::Options topt;
    topt.cores = 4;
    topt.perCoreCapacity = 1024;
    obs::Tracer sink(topt);
    obs::MetricsRegistry metrics;

    exp::HarnessOptions ho;
    ho.jobs = jobs;
    ho.baseSeed = 7;
    ho.traceSink = &sink;
    ho.tracerOptions = topt;
    ho.metricsSink = &metrics;
    exp::Harness h(ho);
    h.run(cells, [&](const exp::CellEnv &env) {
        obs::beginEpoch("cell " + std::to_string(env.index));
        // Deterministic per-cell activity derived from the cell seed.
        sim::Simulator sim(env.seed);
        for (int i = 0; i < 50; ++i) {
            auto core = static_cast<std::uint32_t>(sim.rng().below(4));
            obs::emit(obs::EventKind::Dispatch, core,
                      sim.rng().below(100000), env.index);
            obs::addCount("cells.events");
        }
        obs::setGauge("cells.last", static_cast<std::int64_t>(env.index));
    });

    std::ostringstream trace;
    obs::writeChromeTrace(sink, trace);
    return {trace.str(), metrics.toJson()};
}

TEST(HarnessIdentity, Jobs8MatchesJobs1ByteForByte)
{
    auto seq = captureAt(1, 24);
    auto par = captureAt(8, 24);
    EXPECT_EQ(par.first, seq.first);   // trace JSON
    EXPECT_EQ(par.second, seq.second); // metrics JSON
}

/** Full fig08-style grid through bench_util: table + trace + metrics. */
std::string
fig08GridAt(int jobs)
{
    obs::Tracer::Options topt;
    topt.cores = 16;
    obs::Tracer sink(topt);
    obs::MetricsRegistry metrics;

    exp::HarnessOptions ho;
    ho.jobs = jobs;
    ho.traceSink = &sink;
    ho.tracerOptions = topt;
    ho.metricsSink = &metrics;
    exp::Harness h(ho);

    struct Point
    {
        const char *system;
        double rpsK;
    };
    const Point grid[] = {
        {"libpreemptible", 300}, {"shinjuku", 300},
        {"libpreemptible", 900}, {"shinjuku", 900},
        {"nouintr", 600},        {"libinger", 600},
    };
    auto outs = h.map<bench::RunOutcome>(
        std::size(grid), [&](const exp::CellEnv &env) {
            bench::RunSpec spec;
            spec.system = grid[env.index].system;
            spec.workload = "A1";
            spec.rps = grid[env.index].rpsK * 1e3;
            spec.duration = msToNs(3);
            return bench::runOne(spec);
        });

    std::ostringstream all;
    for (const bench::RunOutcome &o : outs) {
        all << o.name << " " << o.offeredRps << " " << o.completed
            << " " << bench::fmtUs(o.p50) << " " << bench::fmtUs(o.p99)
            << "\n";
    }
    obs::writeChromeTrace(sink, all);
    all << metrics.toJson();
    return all.str();
}

TEST(HarnessIdentity, Fig08GridIsJobsInvariant)
{
    std::string seq = fig08GridAt(1);
    std::string par = fig08GridAt(8);
    EXPECT_EQ(par, seq);
}

// ----- per-cell fault injectors -------------------------------------

TEST(Harness, PerCellInjectorStreamsAreJobsInvariant)
{
    // Each cell gets its own injector seeded cellSeed(faultSeed,
    // index): its fault decisions depend only on the cell, never on
    // which thread ran it or what its neighbours drew.
    auto decisionsAt = [](int jobs) {
        exp::HarnessOptions ho;
        ho.jobs = jobs;
        ho.faultPlan = fault::FaultPlan::parse("drop:utimer@0.5");
        ho.faultSeed = 11;
        exp::Harness h(ho);
        std::vector<std::string> out(8);
        h.run(8, [&](const exp::CellEnv &env) {
            EXPECT_NE(env.injector, nullptr);
            // The thread-local resolution the runtime hooks use must
            // see this cell's injector, not a neighbour's.
            EXPECT_EQ(fault::injector(), env.injector);
            std::string s;
            for (int i = 0; i < 64; ++i) {
                s += env.injector
                             ->transport(fault::Site::Utimer,
                                         static_cast<TimeNs>(i) * 1000,
                                         0)
                             .drop
                         ? '1'
                         : '0';
            }
            out[env.index] = s;
        });
        return out;
    };
    std::vector<std::string> par = decisionsAt(4);
    std::vector<std::string> seq = decisionsAt(1);
    EXPECT_EQ(par, seq);
    // Distinct substreams: adjacent cells draw differently.
    EXPECT_NE(seq[0], seq[1]);
}

TEST(Harness, NoPlanMeansNoInjector)
{
    exp::HarnessOptions ho;
    ho.jobs = 2;
    exp::Harness h(ho);
    h.run(4, [&](const exp::CellEnv &env) {
        EXPECT_EQ(env.injector, nullptr);
    });
}

} // namespace
} // namespace preempt
