/** @file Tests for the real-runtime Algorithm 1 driver. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/dist.hh"
#include "common/rng.hh"
#include "preemptible/adaptive_driver.hh"
#include "preemptible/hosttime.hh"

namespace preempt::runtime {
namespace {

PreemptibleRuntime::Options
fastOptions()
{
    PreemptibleRuntime::Options opt;
    opt.nWorkers = 1;
    opt.quantum = msToNs(8);
    opt.timer.idleSleep = usToNs(200);
    opt.idleNap = usToNs(50);
    return opt;
}

core::QuantumControllerParams
hostParams()
{
    core::QuantumControllerParams p;
    p.tMin = msToNs(1);
    p.tMax = msToNs(16);
    p.k1 = msToNs(2);
    p.k2 = msToNs(2);
    p.k3 = msToNs(2);
    p.queueThreshold = 4;
    return p;
}

TEST(AdaptiveDriver, TakesPeriodicDecisions)
{
    PreemptibleRuntime rt(fastOptions());
    AdaptiveQuantumDriver::Options opt;
    opt.params = hostParams();
    opt.period = msToNs(20);
    AdaptiveQuantumDriver driver(rt, opt);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    driver.stop();
    EXPECT_GE(driver.decisions(), 3u);
    rt.shutdown();
}

TEST(AdaptiveDriver, GrowsQuantumWhenIdle)
{
    PreemptibleRuntime rt(fastOptions());
    AdaptiveQuantumDriver::Options opt;
    opt.params = hostParams();
    opt.period = msToNs(15);
    opt.maxLoadRps = 10000; // idle load is far below 10% of this
    AdaptiveQuantumDriver driver(rt, opt);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    driver.stop();
    // Idle: Algorithm 1 grows the quantum toward T_max.
    EXPECT_GT(rt.quantum(), msToNs(8));
    rt.shutdown();
}

TEST(AdaptiveDriver, ShrinksOnHeavyTailSamples)
{
    PreemptibleRuntime rt(fastOptions());
    AdaptiveQuantumDriver::Options opt;
    opt.params = hostParams();
    opt.period = msToNs(15);
    opt.maxLoadRps = 1; // every observed load counts as "high"
    AdaptiveQuantumDriver driver(rt, opt);
    // Keep some completions flowing so load > L_high.
    std::atomic<bool> stop{false};
    std::thread feeder([&] {
        while (!stop.load()) {
            rt.submit([] {});
            std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    stop.store(true);
    feeder.join();
    driver.stop();
    EXPECT_LT(rt.quantum(), msToNs(8));
    rt.quiesce();
    rt.shutdown();
}

TEST(AdaptiveDriver, LatencySamplesFeedTailIndex)
{
    PreemptibleRuntime rt(fastOptions());
    AdaptiveQuantumDriver::Options opt;
    opt.params = hostParams();
    opt.period = msToNs(15);
    opt.maxLoadRps = 0; // capacity unknown: load rules disabled,
                        // only the tail-index rule can fire
    AdaptiveQuantumDriver driver(rt, opt);
    // A heavy-tailed (Pareto alpha ~1.2) latency sample stream.
    Rng rng(1);
    ParetoDist pareto(1000.0, 1.2);
    for (int i = 0; i < 5000; ++i)
        driver.addLatencySample(
            static_cast<TimeNs>(pareto.sample(rng)));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    driver.stop();
    // Heavy tail triggers the k2 shrink rule.
    EXPECT_LT(rt.quantum(), msToNs(8));
    rt.shutdown();
}

} // namespace
} // namespace preempt::runtime
