/**
 * @file
 * Work stealing and sharded per-task deadlines in PreemptibleRuntime:
 * rebalancing of skewed submissions, task conservation under steals
 * (none lost, none run twice), exactly-once deadline firing across
 * migrations, and the expired-drop policy.
 *
 * StealStress.* doubles as the multi-worker stress target the
 * sanitizer CI jobs run explicitly.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "preemptible/hosttime.hh"
#include "preemptible/runtime.hh"

namespace preempt::runtime {
namespace {

PreemptibleRuntime::Options
stealOptions(int workers = 4)
{
    PreemptibleRuntime::Options opt;
    opt.nWorkers = workers;
    opt.quantum = msToNs(2);
    opt.timer.idleSleep = usToNs(200);
    opt.idleNap = usToNs(50);
    opt.seed = 0xdeadbeef;
    return opt;
}

void
spinFor(TimeNs dur)
{
    TimeNs end = hostNowNs() + dur;
    while (hostNowNs() < end) {
    }
}

TEST(RuntimeSteal, SkewedSubmitIsRebalancedByStealing)
{
    // Everything lands on worker 0's inbox; the other workers have
    // nothing and must steal to contribute.
    PreemptibleRuntime rt(stealOptions(4));
    std::atomic<int> done{0};
    constexpr int kTasks = 256;
    for (int i = 0; i < kTasks; ++i) {
        ASSERT_TRUE(rt.submitTo(0, [&] {
            spinFor(usToNs(100));
            done.fetch_add(1);
        }));
    }
    rt.quiesce();
    EXPECT_EQ(done.load(), kTasks);
    auto s = rt.stats();
    EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kTasks));
    EXPECT_GT(s.stealAttempts, 0u);
    EXPECT_GT(s.stealHits, 0u) << "idle workers never stole from the "
                                  "overloaded one";
    // Every steal migrates; long-queue adoptions (an OS-descheduled
    // worker overrunning its quantum) can add a few more.
    EXPECT_GE(s.migrations, s.stealHits);
    rt.shutdown();
}

TEST(RuntimeSteal, NoTaskLostOrRunTwiceUnderSteals)
{
    PreemptibleRuntime rt(stealOptions(4));
    constexpr int kTasks = 2000;
    std::vector<std::atomic<std::uint32_t>> runs(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        while (!rt.submitTo(0, [&runs, i] {
            runs[static_cast<std::size_t>(i)].fetch_add(1);
        })) {
            std::this_thread::yield(); // inbox backpressure
        }
    }
    rt.quiesce();
    for (int i = 0; i < kTasks; ++i)
        ASSERT_EQ(runs[static_cast<std::size_t>(i)].load(), 1u)
            << "task " << i;
    auto s = rt.stats();
    EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kTasks));
    rt.shutdown();
}

TEST(RuntimeSteal, StealingOffRestoresRoundRobinBaseline)
{
    auto opt = stealOptions(4);
    opt.stealing = false;
    PreemptibleRuntime rt(opt);
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i)
        ASSERT_TRUE(rt.submitTo(0, [&] { done.fetch_add(1); }));
    rt.quiesce();
    EXPECT_EQ(done.load(), 64);
    auto s = rt.stats();
    EXPECT_EQ(s.stealAttempts, 0u);
    EXPECT_EQ(s.stealHits, 0u);
    rt.shutdown();
}

TEST(RuntimeSteal, DeterministicVictimStreams)
{
    // Same seed, same per-worker stream: two runtimes configured alike
    // are exercising identical victim-selection sequences. Observable
    // cheaply: the Rng is seeded per worker from Options::seed, so two
    // runs share it; here we only assert the configuration survives.
    auto opt = stealOptions(4);
    opt.seed = 1234;
    PreemptibleRuntime rt(opt);
    std::atomic<int> done{0};
    for (int i = 0; i < 128; ++i)
        ASSERT_TRUE(rt.submitTo(0, [&] {
            spinFor(usToNs(50));
            done.fetch_add(1);
        }));
    rt.quiesce();
    EXPECT_EQ(done.load(), 128);
    rt.shutdown();
}

TEST(RuntimeDeadline, FiresExactlyOnceEvenWhenTasksMigrate)
{
    // Tasks outlive their deadline by design, so every deadline fires;
    // steals migrate tasks (and their pending deadlines) between
    // shards. Exactly-once: fires counted == tasks, no double fire
    // from a migrated-but-not-cancelled wheel entry.
    PreemptibleRuntime rt(stealOptions(4));
    constexpr int kTasks = 16;
    std::atomic<int> done{0};
    for (int i = 0; i < kTasks; ++i) {
        ASSERT_TRUE(rt.submitTo(0, [&] {
            spinFor(msToNs(3));
            done.fetch_add(1);
        }, 0, usToNs(300)));
    }
    rt.quiesce();
    EXPECT_EQ(done.load(), kTasks);
    auto s = rt.stats();
    // At-most-once: a deadline that migrated with its task must never
    // fire from both shards. (Exactly kTasks is not guaranteed on a
    // starved 1-CPU host: a late timer scan can lose the race with
    // task completion, which cancels the deadline.)
    EXPECT_GT(s.deadlineFires, 0u);
    EXPECT_LE(s.deadlineFires, static_cast<std::uint64_t>(kTasks));
    // The timer thread folds shard fires into wheelFiresTotal only
    // after the advance pass returns, so give its counter a moment to
    // catch up with the runtime-side count.
    TimeNs patience = hostNowNs() + secToNs(2);
    while (rt.timer().wheelFiresTotal() < s.deadlineFires &&
           hostNowNs() < patience) {
        timespec ts{0, 1000000};
        ::nanosleep(&ts, nullptr);
    }
    EXPECT_EQ(rt.timer().wheelFiresTotal(), s.deadlineFires);
    EXPECT_EQ(s.expiredDrops, 0u); // dropExpired off: tasks still ran
    rt.shutdown();
    // All shards drained: nothing left pending after quiesce.
    for (int w = 0; w < rt.nWorkers(); ++w)
        EXPECT_EQ(rt.wheelShard(w).depth(), 0u);
}

TEST(RuntimeDeadline, CompletedBeforeDeadlineNeverFires)
{
    PreemptibleRuntime rt(stealOptions(2));
    constexpr int kTasks = 32;
    std::atomic<int> done{0};
    for (int i = 0; i < kTasks; ++i) {
        // Trivial body, generous deadline: completion cancels it.
        ASSERT_TRUE(rt.submitTo(i % 2, [&] { done.fetch_add(1); }, 0,
                                secToNs(30)));
    }
    rt.quiesce();
    EXPECT_EQ(done.load(), kTasks);
    auto s = rt.stats();
    EXPECT_EQ(s.deadlineFires, 0u);
    for (int w = 0; w < rt.nWorkers(); ++w)
        EXPECT_EQ(rt.wheelShard(w).depth(), 0u)
            << "cancelled deadlines must leave the shard";
    rt.shutdown();
}

TEST(RuntimeDeadline, DropExpiredDiscardsHopelessTasks)
{
    auto opt = stealOptions(2);
    opt.dropExpired = true;
    PreemptibleRuntime rt(opt);
    std::atomic<int> ran{0};

    // Plug both workers with long spinners, then queue short tasks
    // with deadlines that expire while they wait.
    std::atomic<bool> release{false};
    for (int w = 0; w < 2; ++w) {
        ASSERT_TRUE(rt.submitTo(w, [&] {
            while (!release.load())
                spinFor(usToNs(50));
        }, 1));
    }
    constexpr int kShort = 16;
    for (int i = 0; i < kShort; ++i) {
        ASSERT_TRUE(rt.submitTo(i % 2, [&] { ran.fetch_add(1); }, 0,
                                usToNs(200)));
    }
    // Let the deadlines expire before unblocking the workers.
    spinFor(msToNs(20));
    release.store(true);
    rt.quiesce();
    auto s = rt.stats();
    EXPECT_GT(s.expiredDrops, 0u) << "expired queued tasks must be "
                                     "dropped, not launched";
    EXPECT_EQ(s.expiredDrops + s.completed, s.submitted);
    EXPECT_EQ(ran.load() + static_cast<int>(s.expiredDrops),
              kShort);
    rt.shutdown();
}

/**
 * The multi-worker churn stress the sanitizer CI jobs run: concurrent
 * submitters, skewed placement, deadlines, preemption-length tasks.
 * Conservation is the assertion; TSan/ASan make the data-race and
 * lifetime checks.
 */
TEST(StealStress, MultiWorkerChurn)
{
    auto opt = stealOptions(4);
    opt.queueCapacity = 256;
    PreemptibleRuntime rt(opt);
    constexpr int kSubmitters = 3;
    constexpr int kPerThread = 400;
    std::atomic<int> done{0};
    std::atomic<std::uint64_t> accepted{0};

    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                // Everything targets worker 0 to force stealing; every
                // third task carries a deadline, every fifth is long
                // enough to be preempted onto the long queue.
                TimeNs dl = (i % 3 == 0) ? usToNs(500) : 0;
                TimeNs work =
                    (i % 5 == 0) ? msToNs(3) : usToNs(20 + 10 * t);
                if (rt.submitTo(0, [&, work] {
                        spinFor(work);
                        done.fetch_add(1);
                    }, i % 2, dl)) {
                    accepted.fetch_add(1);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (auto &th : submitters)
        th.join();
    rt.quiesce();
    auto s = rt.stats();
    EXPECT_EQ(static_cast<std::uint64_t>(done.load()), accepted.load());
    EXPECT_EQ(s.completed, accepted.load());
    EXPECT_EQ(s.submitted, accepted.load());
    rt.shutdown();
    for (int w = 0; w < rt.nWorkers(); ++w)
        EXPECT_EQ(rt.wheelShard(w).depth(), 0u);
}

} // namespace
} // namespace preempt::runtime
