/**
 * @file
 * Randomised cross-system invariant fuzzing: many (seed, system,
 * workload, quantum, load) combinations, each checked against the
 * invariants of DESIGN.md section 6 — request conservation, causality
 * (latency >= service), and monotone bookkeeping.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/libinger_sim.hh"
#include "baselines/oracle_sim.hh"
#include "baselines/shinjuku_sim.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

namespace preempt {
namespace {

struct FuzzCase
{
    std::uint64_t seed;
};

class FuzzInvariants : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzInvariants, RandomConfigurationHoldsInvariants)
{
    Rng pick(GetParam());
    const char *systems[] = {"libpreemptible", "shinjuku", "libinger",
                             "nouintr", "ps", "srpt"};
    const char *workloads[] = {"A1", "A2", "B", "C"};
    const char *system = systems[pick.below(6)];
    const char *wl = workloads[pick.below(4)];
    int workers = 1 + static_cast<int>(pick.below(6));
    TimeNs quantum = pick.below(4) == 0
                         ? 0
                         : usToNs(3 + pick.below(100));
    // Keep offered load at <= ~60% of the weakest capacity so every
    // system drains.
    double mean_us = std::string(wl) == "A2" ? 7.5 : 5.0;
    double rps = 0.6 * static_cast<double>(workers) / (mean_us * 1e-6) *
                 (0.3 + 0.5 * pick.uniform());
    TimeNs duration = msToNs(20 + pick.below(30));

    sim::Simulator sim(GetParam() * 7919 + 13);
    hw::LatencyConfig cfg;
    std::unique_ptr<runtime_sim::ServerModel> server;
    if (std::string(system) == "shinjuku") {
        baselines::ShinjukuConfig sc;
        sc.nWorkers = workers;
        sc.quantum = quantum;
        server = std::make_unique<baselines::ShinjukuSim>(sim, cfg, sc);
    } else if (std::string(system) == "libinger") {
        baselines::LibingerConfig lc;
        lc.nWorkers = workers;
        lc.quantum = quantum;
        server = std::make_unique<baselines::LibingerSim>(sim, cfg, lc);
    } else if (std::string(system) == "ps") {
        server =
            std::make_unique<baselines::ProcessorSharingSim>(sim, workers);
    } else if (std::string(system) == "srpt") {
        server = std::make_unique<baselines::SrptSim>(sim, workers);
    } else {
        runtime_sim::LibPreemptibleConfig rc;
        rc.nWorkers = workers;
        rc.quantum = quantum;
        rc.workStealing = pick.below(2) == 1;
        rc.policy = pick.below(2) == 1
                        ? runtime_sim::SchedPolicy::NewFirst
                        : runtime_sim::SchedPolicy::RoundRobin;
        if (std::string(system) == "nouintr")
            rc.delivery = runtime_sim::TimerDelivery::KernelSignal;
        server =
            std::make_unique<runtime_sim::LibPreemptibleSim>(sim, cfg, rc);
    }

    bool causal = true;
    std::uint64_t hooked = 0;
    workload::WorkloadSpec spec{workload::makeServiceLaw(wl, duration),
                                workload::RateLaw::constant(rps), duration};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server->onArrival(r);
                                    });
    gen.start();
    sim.runUntil(duration + secToNs(30));

    // Conservation.
    const auto &m = server->metrics();
    ASSERT_GT(m.arrived(), 100u)
        << system << "/" << wl << " rps=" << rps;
    EXPECT_EQ(m.arrived(), m.completed())
        << system << "/" << wl << " workers=" << workers
        << " quantum=" << quantum << " rps=" << rps;

    // Causality over the request pool.
    for (const auto &req : gen.pool()) {
        ASSERT_TRUE(req.done());
        ASSERT_EQ(req.remaining, 0u);
        if (req.latency() + 2 < req.service) // PS rounds within 1-2 ns
            causal = false;
        ++hooked;
    }
    EXPECT_TRUE(causal) << system << "/" << wl;
    EXPECT_EQ(hooked, m.arrived());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzInvariants,
                         testing::Range<std::uint64_t>(1, 25));

} // namespace
} // namespace preempt
