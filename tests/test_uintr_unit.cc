/** @file Tests for the UINTR architectural model. */

#include <gtest/gtest.h>

#include "hw/uintr.hh"
#include "sim/simulator.hh"

namespace preempt::hw {
namespace {

struct UintrFixture : testing::Test
{
    UintrFixture() : sim(1), unit(sim, cfg) {}

    sim::Simulator sim;
    LatencyConfig cfg;
    UintrUnit unit;
    int rx_ = -1;
};

TEST_F(UintrFixture, SetupFollowsNativeApi)
{
    int rx = unit.registerHandler([](TimeNs, std::uint64_t) {});
    int fd = unit.createFd(rx, 3);
    int uipi = unit.registerSender(fd);
    EXPECT_EQ(uipi, 0);
    EXPECT_EQ(unit.uittSize(), 1u);
}

TEST_F(UintrFixture, DeliveryToRunningReceiver)
{
    TimeNs delivered_at = 0;
    std::uint64_t vectors = 0;
    int rx = unit.registerHandler([&](TimeNs t, std::uint64_t v) {
        delivered_at = t;
        vectors = v;
    });
    int uipi = unit.registerSender(unit.createFd(rx, 5));

    TimeNs cost = unit.senduipi(uipi);
    EXPECT_EQ(cost, cfg.senduipiCost);
    sim.runAll();

    EXPECT_EQ(vectors, 1ULL << 5);
    EXPECT_GE(delivered_at, cfg.uintrRunning.floorNs);
    EXPECT_EQ(unit.stats().deliveredRunning, 1u);
    EXPECT_EQ(unit.pending(rx), 0u);
    // UIF cleared during the handler until uiret.
    EXPECT_FALSE(unit.uif(rx));
    unit.uiret(rx);
    EXPECT_TRUE(unit.uif(rx));
}

TEST_F(UintrFixture, MultipleVectorsCoalesceInPir)
{
    std::uint64_t vectors = 0;
    int deliveries = 0;
    int rx = unit.registerHandler([&](TimeNs, std::uint64_t v) {
        vectors |= v;
        ++deliveries;
    });
    // Suppress delivery while posting both vectors.
    unit.setUif(rx, false);
    int u1 = unit.registerSender(unit.createFd(rx, 1));
    int u2 = unit.registerSender(unit.createFd(rx, 9));
    unit.senduipi(u1);
    unit.senduipi(u2);
    sim.runAll();
    EXPECT_EQ(deliveries, 0);
    EXPECT_EQ(unit.pending(rx), (1ULL << 1) | (1ULL << 9));

    // Re-enabling UIF recognises both at once.
    unit.setUif(rx, true);
    sim.runAll();
    EXPECT_EQ(deliveries, 1);
    EXPECT_EQ(vectors, (1ULL << 1) | (1ULL << 9));
    EXPECT_GE(unit.stats().suppressed, 1u);
}

TEST_F(UintrFixture, BlockedReceiverWokenThroughKernel)
{
    bool woken = false;
    TimeNs delivered_at = 0;
    int rx = unit.registerHandler(
        [&](TimeNs t, std::uint64_t) { delivered_at = t; },
        [&](TimeNs) { woken = true; });
    int uipi = unit.registerSender(unit.createFd(rx, 0));

    unit.setBlocked(rx, true);
    EXPECT_TRUE(unit.blocked(rx));
    unit.senduipi(uipi);
    sim.runAll();

    EXPECT_TRUE(woken);
    EXPECT_TRUE(unit.running(rx));
    EXPECT_EQ(unit.stats().deliveredBlocked, 1u);
    // The blocked path costs more than the running path's floor.
    EXPECT_GE(delivered_at, cfg.uintrBlocked.floorNs);
}

TEST_F(UintrFixture, DescheduledReceiverKeepsPending)
{
    int deliveries = 0;
    int rx = unit.registerHandler(
        [&](TimeNs, std::uint64_t) { ++deliveries; });
    int uipi = unit.registerSender(unit.createFd(rx, 2));

    unit.setRunning(rx, false);
    unit.senduipi(uipi);
    sim.runAll();
    EXPECT_EQ(deliveries, 0);
    EXPECT_EQ(unit.pending(rx), 1ULL << 2);

    unit.setRunning(rx, true);
    sim.runAll();
    EXPECT_EQ(deliveries, 1);
}

TEST_F(UintrFixture, NotificationInFlightWhenEligibilityLost)
{
    int deliveries = 0;
    int rx = unit.registerHandler(
        [&](TimeNs, std::uint64_t) { ++deliveries; });
    int uipi = unit.registerSender(unit.createFd(rx, 2));

    unit.senduipi(uipi);
    // Deschedule while the notification is in flight.
    unit.setRunning(rx, false);
    sim.runAll();
    EXPECT_EQ(deliveries, 0);
    EXPECT_EQ(unit.stats().spurious, 1u);
    EXPECT_EQ(unit.pending(rx), 1ULL << 2);
}

TEST_F(UintrFixture, RepeatedSendsWhileOutstandingCoalesce)
{
    int deliveries = 0;
    std::uint64_t last = 0;
    int rx = unit.registerHandler([&](TimeNs, std::uint64_t v) {
        ++deliveries;
        last = v;
    });
    int uipi = unit.registerSender(unit.createFd(rx, 4));
    unit.senduipi(uipi);
    unit.senduipi(uipi);
    unit.senduipi(uipi);
    sim.runAll();
    // One delivery; the PIR bit coalesces duplicates.
    EXPECT_EQ(deliveries, 1);
    EXPECT_EQ(last, 1ULL << 4);
    EXPECT_EQ(unit.stats().sends, 3u);
}

TEST_F(UintrFixture, UnregisterDropsInFlight)
{
    int deliveries = 0;
    int rx = unit.registerHandler(
        [&](TimeNs, std::uint64_t) { ++deliveries; });
    int uipi = unit.registerSender(unit.createFd(rx, 0));
    unit.senduipi(uipi);
    unit.unregisterHandler(rx);
    sim.runAll();
    EXPECT_EQ(deliveries, 0);
    // Sends to a dead receiver are dropped quietly.
    unit.senduipi(uipi);
    sim.runAll();
    EXPECT_EQ(deliveries, 0);
}

TEST_F(UintrFixture, VectorRangeEnforced)
{
    int rx = unit.registerHandler([](TimeNs, std::uint64_t) {});
    EXPECT_EXIT(unit.createFd(rx, 64), testing::ExitedWithCode(1),
                "vector");
    EXPECT_EXIT(unit.createFd(rx, -1), testing::ExitedWithCode(1),
                "vector");
}

TEST_F(UintrFixture, InvalidFdIsFatal)
{
    EXPECT_EXIT(unit.registerSender(99), testing::ExitedWithCode(1),
                "invalid uintr fd");
}

TEST_F(UintrFixture, HandlerRunsWithUifClearUntilUiret)
{
    int rx = unit.registerHandler([&](TimeNs, std::uint64_t) {
        // During delivery UIF must be clear.
        EXPECT_FALSE(unit.uif(rx_));
    });
    rx_ = rx;
    int uipi = unit.registerSender(unit.createFd(rx, 0));
    unit.senduipi(uipi);
    sim.runAll();

    // A vector posted while the handler is "running" stays pending
    // until uiret.
    int deliveries_before = static_cast<int>(
        unit.stats().deliveredRunning);
    unit.senduipi(uipi);
    sim.runAll();
    EXPECT_EQ(static_cast<int>(unit.stats().deliveredRunning),
              deliveries_before);
    unit.uiret(rx);
    sim.runAll();
    EXPECT_EQ(static_cast<int>(unit.stats().deliveredRunning),
              deliveries_before + 1);
}

TEST_F(UintrFixture, BlockDuringInFlightNotificationStillWakes)
{
    // Regression: a send while running schedules a running-path
    // notification (ON set); if the receiver blocks before it lands,
    // the setBlocked-time notify sees ON and bails, and the spurious
    // in-flight event used to strand the PIR with nobody left to wake
    // the sleeper.
    int deliveries = 0;
    bool woken = false;
    int rx = unit.registerHandler(
        [&](TimeNs, std::uint64_t) { ++deliveries; },
        [&](TimeNs) { woken = true; });
    int uipi = unit.registerSender(unit.createFd(rx, 1));

    unit.senduipi(uipi);
    unit.setBlocked(rx, true); // ON still set: notify is suppressed
    sim.runAll();

    EXPECT_GE(unit.stats().spurious, 1u);
    EXPECT_TRUE(woken);
    EXPECT_EQ(deliveries, 1);
    EXPECT_EQ(unit.pending(rx), 0u);
    EXPECT_FALSE(unit.blocked(rx));
}

TEST_F(UintrFixture, BlockedWithUifClearWakesButDefersDelivery)
{
    // The double-ineligible corner: blocked inside a CLUI critical
    // section. The kernel wake must resume the thread without entering
    // the handler; STUI then recognises the parked vector.
    int deliveries = 0;
    bool woken = false;
    int rx = unit.registerHandler(
        [&](TimeNs, std::uint64_t) { ++deliveries; },
        [&](TimeNs) { woken = true; });
    int uipi = unit.registerSender(unit.createFd(rx, 3));

    unit.setUif(rx, false);
    unit.setBlocked(rx, true);
    unit.senduipi(uipi);
    sim.runAll();

    EXPECT_TRUE(woken);
    EXPECT_TRUE(unit.running(rx));
    EXPECT_EQ(deliveries, 0) << "handler entered with UIF clear";
    EXPECT_EQ(unit.pending(rx), 1ULL << 3);

    unit.setUif(rx, true);
    sim.runAll();
    EXPECT_EQ(deliveries, 1);
    EXPECT_EQ(unit.pending(rx), 0u);
}

/**
 * Exhaustive (running, uif, blocked) enumeration: from every reachable
 * combination, a send must end in exactly one delivery once the
 * receiver becomes eligible — no state may strand the PIR.
 */
class UintrStateMatrix : public testing::TestWithParam<int>
{
};

TEST_P(UintrStateMatrix, EveryTransitionComboDeliversExactlyOnce)
{
    int mask = GetParam();
    bool want_running = mask & 1;
    bool want_uif = mask & 2;
    bool want_blocked = mask & 4;

    sim::Simulator sim(1);
    LatencyConfig cfg;
    UintrUnit unit(sim, cfg);
    int deliveries = 0;
    int rx = unit.registerHandler(
        [&](TimeNs, std::uint64_t) { ++deliveries; });
    int uipi = unit.registerSender(unit.createFd(rx, 7));

    // Drive the receiver into the combo (the model normalises the
    // unreachable blocked && running pair: blocked forces !running).
    if (!want_uif)
        unit.setUif(rx, false);
    if (want_blocked)
        unit.setBlocked(rx, true);
    else if (!want_running)
        unit.setRunning(rx, false);
    if (want_blocked) {
        EXPECT_FALSE(unit.running(rx));
    }

    unit.senduipi(uipi);
    sim.runAll();

    bool immediate = want_blocked ? want_uif : (want_running && want_uif);
    EXPECT_EQ(deliveries, immediate ? 1 : 0)
        << "running=" << want_running << " uif=" << want_uif
        << " blocked=" << want_blocked;
    if (!immediate) {
        EXPECT_EQ(unit.pending(rx), 1ULL << 7);
    }

    // Re-enable eligibility one transition at a time; each transition
    // must re-check the PIR.
    if (unit.blocked(rx))
        unit.setBlocked(rx, false);
    if (!unit.running(rx))
        unit.setRunning(rx, true);
    sim.runAll();
    if (!unit.uif(rx) && deliveries == 0)
        unit.setUif(rx, true);
    sim.runAll();

    EXPECT_EQ(deliveries, 1)
        << "missed wakeup for running=" << want_running
        << " uif=" << want_uif << " blocked=" << want_blocked;
    EXPECT_EQ(unit.pending(rx), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllCombos, UintrStateMatrix, testing::Range(0, 8));

} // namespace
} // namespace preempt::hw
