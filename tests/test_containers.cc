/** @file Tests for the intrusive list and the SPSC ring. */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/intrusive_list.hh"
#include "common/spsc_ring.hh"

namespace preempt {
namespace {

struct Node
{
    int value = 0;
    ListHook hook;
    ListHook otherHook;
};

using NodeList = IntrusiveList<Node, &Node::hook>;

TEST(IntrusiveList, FifoOrder)
{
    NodeList list;
    Node a{1, {}, {}}, b{2, {}, {}}, c{3, {}, {}};
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    EXPECT_EQ(list.size(), 3u);
    EXPECT_EQ(list.popFront()->value, 1);
    EXPECT_EQ(list.popFront()->value, 2);
    EXPECT_EQ(list.popFront()->value, 3);
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.popFront(), nullptr);
}

TEST(IntrusiveList, PushFront)
{
    NodeList list;
    Node a{1, {}, {}}, b{2, {}, {}};
    list.pushBack(&a);
    list.pushFront(&b);
    EXPECT_EQ(list.front()->value, 2);
    EXPECT_EQ(list.popFront()->value, 2);
    EXPECT_EQ(list.popFront()->value, 1);
}

TEST(IntrusiveList, EraseMiddle)
{
    NodeList list;
    Node a{1, {}, {}}, b{2, {}, {}}, c{3, {}, {}};
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    list.erase(&b);
    EXPECT_EQ(list.size(), 2u);
    EXPECT_EQ(list.popFront()->value, 1);
    EXPECT_EQ(list.popFront()->value, 3);
    // b can be reinserted after removal.
    list.pushBack(&b);
    EXPECT_EQ(list.front()->value, 2);
}

TEST(IntrusiveList, MoveBetweenLists)
{
    NodeList l1, l2;
    Node a{1, {}, {}};
    l1.pushBack(&a);
    l1.erase(&a);
    l2.pushBack(&a);
    EXPECT_TRUE(l1.empty());
    EXPECT_EQ(l2.front(), &a);
}

TEST(IntrusiveList, TwoHooksTwoLists)
{
    IntrusiveList<Node, &Node::hook> l1;
    IntrusiveList<Node, &Node::otherHook> l2;
    Node a{7, {}, {}};
    l1.pushBack(&a);
    l2.pushBack(&a); // different hook: legal simultaneously
    EXPECT_EQ(l1.front(), &a);
    EXPECT_EQ(l2.front(), &a);
}

TEST(IntrusiveList, ForEachVisitsInOrder)
{
    NodeList list;
    Node a{1, {}, {}}, b{2, {}, {}};
    list.pushBack(&a);
    list.pushBack(&b);
    std::vector<int> seen;
    list.forEach([&](Node *n) { seen.push_back(n->value); });
    EXPECT_EQ(seen, (std::vector<int>{1, 2}));
}

TEST(IntrusiveListDeath, DoubleLinkPanics)
{
    NodeList list;
    Node a{1, {}, {}};
    list.pushBack(&a);
    EXPECT_DEATH(list.pushBack(&a), "already on a list");
}

TEST(IntrusiveListDeath, EraseUnlinkedPanics)
{
    NodeList list;
    Node a{1, {}, {}};
    EXPECT_DEATH(list.erase(&a), "not on a list");
}

TEST(SpscRing, CapacityRoundsToPowerOfTwo)
{
    SpscRing<int> ring(5);
    EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, FillDrain)
{
    SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.push(i));
    EXPECT_FALSE(ring.push(99)) << "full ring must reject";
    int out;
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(ring.pop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(ring.pop(out));
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapAround)
{
    SpscRing<int> ring(4);
    int out;
    for (int round = 0; round < 100; ++round) {
        EXPECT_TRUE(ring.push(round));
        EXPECT_TRUE(ring.pop(out));
        EXPECT_EQ(out, round);
    }
}

TEST(SpscRing, ConcurrentProducerConsumer)
{
    SpscRing<std::uint64_t> ring(1024);
    constexpr std::uint64_t kN = 200000;
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kN;) {
            if (ring.push(i))
                ++i;
        }
    });
    std::uint64_t expected = 0;
    std::uint64_t v;
    while (expected < kN) {
        if (ring.pop(v)) {
            ASSERT_EQ(v, expected);
            ++expected;
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

} // namespace
} // namespace preempt
