/** @file Tests for the KVS, the compressor, and the RPC server model. */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/compressor.hh"
#include "apps/kvstore.hh"
#include "apps/rpc_model.hh"
#include "common/rng.hh"
#include "workload/generator.hh"

namespace preempt::apps {
namespace {

TEST(KvStore, SetGetRoundtrip)
{
    KvStore store(4, 1024);
    EXPECT_EQ(store.set(42, "hello"), KvResult::Ok);
    std::string out;
    EXPECT_EQ(store.get(42, out), KvResult::Ok);
    EXPECT_EQ(out, "hello");
    EXPECT_EQ(store.size(), 1u);
}

TEST(KvStore, OverwriteReplacesValue)
{
    KvStore store(4, 1024);
    store.set(7, "first");
    store.set(7, "second value");
    std::string out;
    ASSERT_EQ(store.get(7, out), KvResult::Ok);
    EXPECT_EQ(out, "second value");
    EXPECT_EQ(store.size(), 1u);
}

TEST(KvStore, MissingKeyNotFound)
{
    KvStore store(4, 1024);
    std::string out;
    EXPECT_EQ(store.get(99, out), KvResult::NotFound);
}

TEST(KvStore, EraseRemoves)
{
    KvStore store(4, 1024);
    store.set(1, "x");
    EXPECT_EQ(store.erase(1), KvResult::Ok);
    std::string out;
    EXPECT_EQ(store.get(1, out), KvResult::NotFound);
    EXPECT_EQ(store.erase(1), KvResult::NotFound);
    EXPECT_EQ(store.size(), 0u);
}

TEST(KvStore, ValueTooLargeRejected)
{
    KvStore store(4, 1024);
    std::string big(KvStore::kMaxValue + 1, 'x');
    EXPECT_EQ(store.set(1, big), KvResult::ValueTooLarge);
    std::string max(KvStore::kMaxValue, 'y');
    EXPECT_EQ(store.set(2, max), KvResult::Ok);
    std::string out;
    ASSERT_EQ(store.get(2, out), KvResult::Ok);
    EXPECT_EQ(out, max);
}

TEST(KvStore, BucketOverflowReportsFull)
{
    // One partition, one bucket: capacity = kWays entries.
    KvStore store(1, 1);
    int stored = 0;
    for (std::uint64_t k = 0; k < 100; ++k) {
        if (store.set(k, "v") == KvResult::Ok)
            ++stored;
    }
    EXPECT_EQ(stored, 8); // kWays
    EXPECT_EQ(store.size(), 8u);
}

TEST(KvStore, ManyKeysSurvive)
{
    KvStore store(8, 8192);
    for (std::uint64_t k = 0; k < 20000; ++k)
        ASSERT_EQ(store.set(k, std::to_string(k)), KvResult::Ok);
    std::string out;
    for (std::uint64_t k = 0; k < 20000; ++k) {
        ASSERT_EQ(store.get(k, out), KvResult::Ok) << k;
        ASSERT_EQ(out, std::to_string(k));
    }
    EXPECT_EQ(store.size(), 20000u);
}

TEST(KvStore, CountersTrackOps)
{
    KvStore store(2, 64);
    store.set(1, "a");
    std::string out;
    store.get(1, out);
    store.get(2, out);
    EXPECT_EQ(store.sets(), 1u);
    EXPECT_EQ(store.gets(), 2u);
    EXPECT_EQ(store.hits(), 1u);
}

TEST(KvStore, ConcurrentReadersWithWriter)
{
    KvStore store(4, 4096);
    for (std::uint64_t k = 0; k < 1000; ++k)
        store.set(k, "initial-value-00");

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> bad{0};
    std::thread writer([&] {
        Rng rng(1);
        for (int i = 0; i < 20000; ++i) {
            std::uint64_t k = rng.below(1000);
            store.set(k, i % 2 ? "updated-value-01" : "initial-value-00");
        }
        stop.store(true);
    });
    std::thread reader([&] {
        Rng rng(2);
        std::string out;
        while (!stop.load()) {
            std::uint64_t k = rng.below(1000);
            if (store.get(k, out) == KvResult::Ok) {
                // Seqlock must never expose a torn value.
                if (out != "updated-value-01" && out != "initial-value-00")
                    bad.fetch_add(1);
            }
        }
    });
    writer.join();
    reader.join();
    EXPECT_EQ(bad.load(), 0u);
}

TEST(Compressor, RoundtripCompressible)
{
    auto block = makeCompressibleBlock(Compressor::kBlockSize, 1);
    Compressor comp;
    auto packed = comp.compress(block);
    EXPECT_LT(packed.size(), block.size()) << "text must compress";
    auto restored = Compressor::decompress(packed);
    EXPECT_EQ(restored, block);
}

TEST(Compressor, RoundtripIncompressibleRandom)
{
    Rng rng(2);
    std::vector<std::uint8_t> data(10000);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    Compressor comp;
    auto packed = comp.compress(data);
    auto restored = Compressor::decompress(packed);
    EXPECT_EQ(restored, data);
    // Random data may expand slightly but only by the framing.
    EXPECT_LT(packed.size(), data.size() + data.size() / 64 + 16);
}

TEST(Compressor, EmptyInput)
{
    Compressor comp;
    auto packed = comp.compress(nullptr, 0);
    EXPECT_TRUE(packed.empty());
    EXPECT_TRUE(Compressor::decompress(packed).empty());
}

TEST(Compressor, HighlyRepetitiveShrinksHard)
{
    std::vector<std::uint8_t> data(20000, 'a');
    Compressor comp;
    auto packed = comp.compress(data);
    EXPECT_LT(packed.size(), data.size() / 20);
    EXPECT_EQ(Compressor::decompress(packed), data);
}

TEST(Compressor, TracksByteCounters)
{
    Compressor comp;
    auto block = makeCompressibleBlock(1000, 3);
    comp.compress(block);
    EXPECT_EQ(comp.bytesIn(), 1000u);
    EXPECT_GT(comp.bytesOut(), 0u);
}

TEST(CompressorDeath, TruncatedStreamFatal)
{
    std::vector<std::uint8_t> bogus{0x80, 0x01}; // match token cut short
    EXPECT_EXIT(Compressor::decompress(bogus), testing::ExitedWithCode(1),
                "truncated");
}

TEST(CompressorDeath, CorruptDistanceFatal)
{
    // Match referencing data before the start of the output.
    std::vector<std::uint8_t> bogus{0x80, 0x00, 0x10, 0x00};
    EXPECT_EXIT(Compressor::decompress(bogus), testing::ExitedWithCode(1),
                "distance");
}

// Property: roundtrip holds across sizes and seeds.
class CompressorRoundtrip
    : public testing::TestWithParam<std::pair<std::size_t, std::uint64_t>>
{
};

TEST_P(CompressorRoundtrip, LosslessAtEverySize)
{
    auto [size, seed] = GetParam();
    auto block = makeCompressibleBlock(size, seed);
    Compressor comp;
    auto restored = Compressor::decompress(comp.compress(block));
    EXPECT_EQ(restored, block);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, CompressorRoundtrip,
    testing::Values(std::pair<std::size_t, std::uint64_t>{1, 1},
                    std::pair<std::size_t, std::uint64_t>{5, 2},
                    std::pair<std::size_t, std::uint64_t>{130, 3},
                    std::pair<std::size_t, std::uint64_t>{4097, 4},
                    std::pair<std::size_t, std::uint64_t>{25 * 1024, 5},
                    std::pair<std::size_t, std::uint64_t>{100 * 1024, 6}));

TEST(RpcServerSim, ConservesRequests)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    RpcServerConfig rc;
    rc.nKernelThreads = 4;
    rc.userThreadsPerKernel = 4;
    rc.quantum = usToNs(50);
    RpcServerSim server(sim, cfg, rc);
    workload::WorkloadSpec spec{
        workload::ServiceLaw(std::make_shared<ExponentialDist>(20000.0)),
        workload::RateLaw::constant(100e3), msToNs(50)};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runAll();
    const auto &m = server.metrics();
    EXPECT_GT(m.arrived(), 1000u);
    EXPECT_EQ(m.arrived(), m.completed());
    EXPECT_EQ(server.inFlight(), 0u);
}

TEST(RpcServerSim, BlockingBaselineNeverPreempts)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    RpcServerConfig rc;
    rc.quantum = 0;
    RpcServerSim server(sim, cfg, rc);
    workload::WorkloadSpec spec{
        workload::ServiceLaw(std::make_shared<ExponentialDist>(20000.0)),
        workload::RateLaw::constant(100e3), msToNs(20)};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runAll();
    EXPECT_EQ(server.metrics().totalPreemptions(), 0u);
    EXPECT_EQ(server.name(), "rpc-blocking-pool");
}

TEST(RpcServerSim, MultiplexingPreemptsUnderLoad)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    RpcServerConfig rc;
    rc.nKernelThreads = 2;
    rc.userThreadsPerKernel = 8;
    rc.quantum = usToNs(20);
    RpcServerSim server(sim, cfg, rc);
    workload::WorkloadSpec spec{
        workload::ServiceLaw(std::make_shared<ExponentialDist>(50000.0)),
        workload::RateLaw::constant(35e3), msToNs(50)};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runAll();
    EXPECT_GT(server.metrics().totalPreemptions(), 100u);
    EXPECT_EQ(server.metrics().arrived(), server.metrics().completed());
}

} // namespace
} // namespace preempt::apps
