/** @file Tests for the PreemptibleRuntime worker pool (real threads). */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "preemptible/hosttime.hh"
#include "preemptible/runtime.hh"

namespace preempt::runtime {
namespace {

PreemptibleRuntime::Options
fastOptions(int workers = 2)
{
    PreemptibleRuntime::Options opt;
    opt.nWorkers = workers;
    opt.quantum = msToNs(2);
    opt.timer.idleSleep = usToNs(200);
    opt.idleNap = usToNs(50);
    return opt;
}

void
spinFor(TimeNs dur)
{
    TimeNs end = hostNowNs() + dur;
    while (hostNowNs() < end) {
    }
}

TEST(Runtime, RunsSubmittedTasks)
{
    PreemptibleRuntime rt(fastOptions());
    std::atomic<int> sum{0};
    for (int i = 0; i < 500; ++i)
        ASSERT_TRUE(rt.submit([&] { sum.fetch_add(1); }));
    rt.quiesce();
    EXPECT_EQ(sum.load(), 500);
    auto s = rt.stats();
    EXPECT_EQ(s.submitted, 500u);
    EXPECT_EQ(s.completed, 500u);
    EXPECT_EQ(s.lcLatency.count(), 500u);
    rt.shutdown();
}

TEST(Runtime, PreemptsLongTasks)
{
    PreemptibleRuntime rt(fastOptions(2));
    std::atomic<int> done{0};
    // Long spinners several quanta in length.
    for (int i = 0; i < 3; ++i) {
        rt.submit([&] {
            spinFor(msToNs(12));
            done.fetch_add(1);
        }, 1);
    }
    // Short LC tasks keep flowing past them.
    for (int i = 0; i < 100; ++i)
        rt.submit([&] { done.fetch_add(1); }, 0);
    rt.quiesce();
    EXPECT_EQ(done.load(), 103);
    auto s = rt.stats();
    EXPECT_GT(s.preemptions, 0u);
    EXPECT_EQ(s.beLatency.count(), 3u);
    EXPECT_EQ(s.lcLatency.count(), 100u);
    rt.shutdown();
}

TEST(Runtime, PreemptionProtectsShortTaskLatency)
{
    // With preemption, short tasks submitted behind a long spinner
    // complete long before the spinner finishes.
    PreemptibleRuntime rt(fastOptions(1));
    std::atomic<bool> long_done{false};
    rt.submit([&] {
        spinFor(msToNs(40));
        long_done.store(true);
    }, 1);
    // Give the long task a moment to start.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::atomic<bool> short_done{false};
    rt.submit([&] { short_done.store(true); }, 0);

    TimeNs wait_end = hostNowNs() + secToNs(10);
    while (!short_done.load() && hostNowNs() < wait_end)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    EXPECT_TRUE(short_done.load());
    // The short task must not have waited for the full spinner.
    EXPECT_FALSE(long_done.load())
        << "short task was stuck behind the long one";
    rt.quiesce();
    rt.shutdown();
}

TEST(Runtime, QuantumCanChangeAtRuntime)
{
    PreemptibleRuntime rt(fastOptions());
    EXPECT_EQ(rt.quantum(), msToNs(2));
    rt.setQuantum(msToNs(8));
    EXPECT_EQ(rt.quantum(), msToNs(8));
    rt.submit([] {});
    rt.quiesce();
    rt.shutdown();
}

TEST(Runtime, ThroughputPositive)
{
    PreemptibleRuntime rt(fastOptions());
    for (int i = 0; i < 100; ++i)
        rt.submit([] {});
    rt.quiesce();
    EXPECT_GT(rt.throughputRps(), 0.0);
    rt.shutdown();
}

TEST(Runtime, ShutdownDrainsInFlight)
{
    auto rt = std::make_unique<PreemptibleRuntime>(fastOptions());
    std::atomic<int> done{0};
    for (int i = 0; i < 50; ++i)
        rt->submit([&] { done.fetch_add(1); });
    rt->shutdown(); // waits for workers to finish queued tasks
    EXPECT_EQ(done.load(), 50);
}

TEST(Runtime, BackpressureWhenQueueFull)
{
    PreemptibleRuntime::Options opt = fastOptions(1);
    opt.queueCapacity = 8;
    PreemptibleRuntime rt(opt);
    // A blocker occupies the worker while we overfill its queue.
    std::atomic<bool> release{false};
    rt.submit([&] {
        while (!release.load())
            spinFor(usToNs(100));
    });
    int accepted = 0;
    for (int i = 0; i < 64; ++i)
        accepted += rt.submit([] {}) ? 1 : 0;
    EXPECT_LT(accepted, 64) << "full ring must apply backpressure";
    // Every refusal the caller saw must be observable in the stats:
    // a full-inbox burst can be diagnosed after the fact.
    RuntimeStats st = rt.stats();
    EXPECT_GT(st.rejectedFull, 0u);
    EXPECT_EQ(st.rejectedFull, static_cast<std::uint64_t>(64 - accepted));
    EXPECT_EQ(st.rejectedPolicy, 0u) << "no admission policy installed";
    release.store(true);
    rt.quiesce();
    rt.shutdown();
}

TEST(Runtime, TimerDeliveredPreemptions)
{
    PreemptibleRuntime rt(fastOptions(1));
    rt.submit([] { spinFor(msToNs(10)); });
    rt.quiesce();
    EXPECT_GT(rt.timer().firesTotal(), 0u);
    rt.shutdown();
}

} // namespace
} // namespace preempt::runtime
