/**
 * @file
 * Accounting checks on the simulated runtimes (CPU-time conservation,
 * timer-core busy fractions, dispatcher serialisation) plus a
 * time-bounded randomized stress of the real host runtime.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "hw/uintr.hh"
#include "preemptible/hosttime.hh"
#include "preemptible/runtime.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

namespace preempt {
namespace {

TEST(SimAccounting, ExecutionTimeMatchesServiceDemand)
{
    sim::Simulator sim(3);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 2;
    rc.quantum = usToNs(10);
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);
    TimeNs duration = msToNs(40);
    workload::WorkloadSpec spec{
        workload::makeServiceLaw("A1", duration),
        workload::RateLaw::constant(150e3), duration};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runAll();

    // Sum of service demands == accounted execution time (preemption
    // slices must neither lose nor duplicate work).
    TimeNs demand = 0;
    for (const auto &r : gen.pool())
        demand += r.service;
    EXPECT_EQ(server.metrics().executionNs(), demand);
}

TEST(SimAccounting, TimerCoreBusyOnlyWhenFiring)
{
    sim::Simulator sim(4);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 2;
    rc.quantum = usToNs(5);
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);
    TimeNs duration = msToNs(20);
    workload::WorkloadSpec spec{
        workload::makeServiceLaw("A1", duration),
        workload::RateLaw::constant(150e3), duration};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runAll();
    // Timer busy time == fires * send cost.
    EXPECT_EQ(server.utimer().timerCoreBusy(),
              server.utimer().fires() * cfg.senduipiCost);
    EXPECT_GT(server.utimer().fires(), 0u);
}

TEST(SimAccounting, DispatcherSerializesBursts)
{
    // A simultaneous burst of arrivals serialises on the dispatcher;
    // the k-th request cannot start before k * dispatchCost.
    sim::Simulator sim(5);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 1;
    rc.quantum = 0;
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);

    std::deque<workload::Request> reqs;
    const int kBurst = 64;
    for (int i = 0; i < kBurst; ++i) {
        reqs.emplace_back();
        auto &r = reqs.back();
        r.id = static_cast<std::uint64_t>(i);
        r.arrival = 0;
        r.service = r.remaining = 100;
        server.onArrival(r);
    }
    sim.runAll();
    TimeNs max_latency = 0;
    for (auto &r : reqs)
        max_latency = std::max(max_latency, r.latency());
    EXPECT_GE(max_latency,
              static_cast<TimeNs>(kBurst) * cfg.dispatchCost);
}

TEST(UintrWait, BlocksUntilSenderWakes)
{
    sim::Simulator sim(6);
    hw::LatencyConfig cfg;
    hw::UintrUnit unit(sim, cfg);
    bool woken = false;
    int rx = unit.registerHandler([](TimeNs, std::uint64_t) {},
                                  [&](TimeNs) { woken = true; });
    int uipi = unit.registerSender(unit.createFd(rx, 0));
    unit.wait(rx); // uintr_wait()
    EXPECT_TRUE(unit.blocked(rx));
    sim.runUntil(msToNs(1));
    EXPECT_FALSE(woken) << "nothing should wake a waiting receiver";
    unit.senduipi(uipi);
    sim.runAll();
    EXPECT_TRUE(woken);
    EXPECT_TRUE(unit.running(rx));
}

TEST(HostStress, RandomTaskMixSurvives)
{
    // Randomized mix of short/long/yielding tasks across classes with
    // an aggressive quantum; asserts conservation and termination.
    runtime::PreemptibleRuntime::Options opt;
    opt.nWorkers = 2;
    opt.quantum = msToNs(1);
    opt.timer.idleSleep = usToNs(100);
    runtime::PreemptibleRuntime rt(opt);

    Rng rng(99);
    std::atomic<std::uint64_t> done{0};
    const int kTasks = 300;
    for (int i = 0; i < kTasks; ++i) {
        std::uint32_t kind = rng.below(10);
        if (kind < 7) {
            rt.submit([&done] { done.fetch_add(1); });
        } else if (kind < 9) {
            TimeNs spin = usToNs(200 + rng.below(3000));
            rt.submit([&done, spin] {
                TimeNs end = runtime::hostNowNs() + spin;
                while (runtime::hostNowNs() < end) {
                }
                done.fetch_add(1);
            }, 1);
        } else {
            rt.submit([&done] {
                for (int y = 0; y < 3; ++y)
                    runtime::fn_yield();
                done.fetch_add(1);
            });
        }
    }
    rt.quiesce();
    EXPECT_EQ(done.load(), static_cast<std::uint64_t>(kTasks));
    auto s = rt.stats();
    EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(s.lcLatency.count() + s.beLatency.count(),
              static_cast<std::uint64_t>(kTasks));
    rt.shutdown();
}

} // namespace
} // namespace preempt
