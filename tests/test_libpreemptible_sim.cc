/** @file Tests for the simulated LibPreemptible runtime. */

#include <gtest/gtest.h>

#include <memory>

#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

namespace preempt::runtime_sim {
namespace {

struct Harness
{
    explicit Harness(LibPreemptibleConfig cfg, double rps = 200e3,
                     const std::string &wl = "A1",
                     TimeNs duration = msToNs(50), std::uint64_t seed = 42)
        : sim(seed), server(sim, hwcfg, std::move(cfg))
    {
        workload::WorkloadSpec spec{
            workload::makeServiceLaw(wl, duration),
            workload::RateLaw::constant(rps), duration};
        gen = std::make_unique<workload::OpenLoopGenerator>(
            sim, std::move(spec),
            [this](workload::Request &r) { server.onArrival(r); });
        gen->start();
    }

    void
    runToQuiescence(TimeNs extra = secToNs(5))
    {
        sim.runUntil(secToNs(1000) + extra);
        // The queue drains fully at sub-saturation loads.
    }

    sim::Simulator sim;
    hw::LatencyConfig hwcfg;
    LibPreemptibleSim server;
    std::unique_ptr<workload::OpenLoopGenerator> gen;
};

TEST(LibPreemptibleSim, ConservesRequests)
{
    LibPreemptibleConfig cfg;
    cfg.nWorkers = 4;
    cfg.quantum = usToNs(5);
    Harness h(cfg);
    h.sim.runAll();
    const auto &m = h.server.metrics();
    EXPECT_GT(m.arrived(), 1000u);
    EXPECT_EQ(m.arrived(), m.completed());
    EXPECT_EQ(h.server.inFlight(), 0u);
    EXPECT_EQ(h.server.globalRunningLen(), 0u);
    EXPECT_EQ(h.server.maxLocalQueueLen(), 0u);
}

TEST(LibPreemptibleSim, LongRequestsGetPreempted)
{
    LibPreemptibleConfig cfg;
    cfg.nWorkers = 2;
    cfg.quantum = usToNs(5);
    Harness h(cfg, 100e3);
    h.sim.runAll();
    const auto &m = h.server.metrics();
    // 0.5% of A1 requests run 500 us -> ~100 slices each.
    EXPECT_GT(m.totalPreemptions(), 50u);
    // Contexts recycle through the global free list.
    EXPECT_GT(h.server.freeContexts(), 0u);
}

TEST(LibPreemptibleSim, NoPreemptionWhenQuantumZero)
{
    LibPreemptibleConfig cfg;
    cfg.nWorkers = 2;
    cfg.quantum = 0;
    Harness h(cfg, 100e3);
    h.sim.runAll();
    EXPECT_EQ(h.server.metrics().totalPreemptions(), 0u);
    EXPECT_EQ(h.server.utimer().fires(), 0u);
}

TEST(LibPreemptibleSim, PreemptionImprovesTailOnHeavyTail)
{
    LibPreemptibleConfig with;
    with.nWorkers = 2;
    with.quantum = usToNs(5);
    Harness h1(with, 400e3, "A1", msToNs(100));
    h1.sim.runAll();

    LibPreemptibleConfig without;
    without.nWorkers = 2;
    without.quantum = 0;
    Harness h2(without, 400e3, "A1", msToNs(100));
    h2.sim.runAll();

    EXPECT_LT(h1.server.metrics().lcLatency().p99() * 4,
              h2.server.metrics().lcLatency().p99());
}

TEST(LibPreemptibleSim, SignalDeliveryWorseThanUintr)
{
    LibPreemptibleConfig uintr;
    uintr.nWorkers = 2;
    uintr.quantum = usToNs(5);
    Harness h1(uintr, 400e3, "A1", msToNs(100));
    h1.sim.runAll();

    LibPreemptibleConfig sig = uintr;
    sig.delivery = TimerDelivery::KernelSignal;
    Harness h2(sig, 400e3, "A1", msToNs(100));
    h2.sim.runAll();

    EXPECT_LT(h1.server.metrics().lcLatency().p99() * 2,
              h2.server.metrics().lcLatency().p99());
    EXPECT_EQ(h2.server.name(), "LibPreemptible(no-UINTR)");
}

TEST(LibPreemptibleSim, LatencyNeverBelowService)
{
    LibPreemptibleConfig cfg;
    cfg.nWorkers = 2;
    cfg.quantum = usToNs(10);
    bool ok = true;
    cfg.completionHook = [&](TimeNs, const workload::Request &r) {
        if (r.latency() < r.service)
            ok = false;
    };
    Harness h(cfg, 200e3, "B");
    h.sim.runAll();
    EXPECT_TRUE(ok);
    EXPECT_GT(h.server.metrics().completed(), 0u);
}

TEST(LibPreemptibleSim, AdaptiveControllerAdjustsQuantum)
{
    LibPreemptibleConfig cfg;
    cfg.nWorkers = 2;
    cfg.quantum = usToNs(100);
    cfg.adaptive = true;
    cfg.controllerParams.period = msToNs(5);
    cfg.statsHorizon = msToNs(5);
    int decisions = 0;
    TimeNs last_quantum = 0;
    cfg.quantumHook = [&](TimeNs, TimeNs q) {
        ++decisions;
        last_quantum = q;
    };
    // Heavy tail at moderate load: the controller should shrink.
    // (runUntil, not runAll: the periodic controller re-arms forever.)
    Harness h(cfg, 400e3, "A1", msToNs(100));
    h.sim.runUntil(msToNs(200));
    EXPECT_GE(decisions, 10);
    EXPECT_LT(last_quantum, usToNs(100));
}

TEST(LibPreemptibleSim, SetQuantumOverrides)
{
    LibPreemptibleConfig cfg;
    cfg.nWorkers = 1;
    cfg.quantum = usToNs(50);
    sim::Simulator sim(1);
    hw::LatencyConfig hwcfg;
    LibPreemptibleSim server(sim, hwcfg, cfg);
    EXPECT_EQ(server.currentQuantum(), usToNs(50));
    server.setQuantum(usToNs(10));
    EXPECT_EQ(server.currentQuantum(), usToNs(10));
}

TEST(LibPreemptibleSim, CentralQueueTopologyConserves)
{
    LibPreemptibleConfig cfg;
    cfg.nWorkers = 4;
    cfg.quantum = usToNs(5);
    cfg.centralQueue = true;
    Harness h(cfg, 200e3);
    h.sim.runAll();
    const auto &m = h.server.metrics();
    EXPECT_EQ(m.arrived(), m.completed());
    EXPECT_EQ(h.server.inFlight(), 0u);
}

TEST(LibPreemptibleSim, DeterministicForSeed)
{
    auto run = [](std::uint64_t seed) {
        LibPreemptibleConfig cfg;
        cfg.nWorkers = 3;
        cfg.quantum = usToNs(5);
        Harness h(cfg, 300e3, "A1", msToNs(30), seed);
        h.sim.runAll();
        return std::make_pair(h.server.metrics().lcLatency().p99(),
                              h.server.metrics().completed());
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

TEST(LibPreemptibleSim, ZeroQuantumNameMentionsSystem)
{
    sim::Simulator sim(1);
    hw::LatencyConfig hwcfg;
    LibPreemptibleConfig cfg;
    cfg.nWorkers = 1;
    LibPreemptibleSim s(sim, hwcfg, cfg);
    EXPECT_EQ(s.name(), "LibPreemptible");
    LibPreemptibleConfig acfg;
    acfg.nWorkers = 1;
    acfg.adaptive = true;
    LibPreemptibleSim a(sim, hwcfg, acfg);
    EXPECT_EQ(a.name(), "LibPreemptible+adaptive");
}

TEST(LibPreemptibleSimDeath, NeedsWorkers)
{
    sim::Simulator sim(1);
    hw::LatencyConfig hwcfg;
    LibPreemptibleConfig cfg;
    cfg.nWorkers = 0;
    EXPECT_EXIT(LibPreemptibleSim(sim, hwcfg, cfg),
                testing::ExitedWithCode(1), "worker");
}

} // namespace
} // namespace preempt::runtime_sim
