/** @file Tests for the deterministic event queue and the simulator. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/simulator.hh"

namespace preempt::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&](TimeNs) { order.push_back(3); });
    q.schedule(10, [&](TimeNs) { order.push_back(1); });
    q.schedule(20, [&](TimeNs) { order.push_back(2); });
    while (!q.empty())
        q.runOne();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&, i](TimeNs) { order.push_back(i); });
    while (!q.empty())
        q.runOne();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule(10, [&](TimeNs) { fired = true; });
    q.cancel(id);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue q;
    EventId id = q.schedule(1, [](TimeNs) {});
    q.runOne();
    q.cancel(id); // must not corrupt accounting
    EXPECT_EQ(q.size(), 0u);
    bool fired = false;
    q.schedule(2, [&](TimeNs) { fired = true; });
    q.runOne();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, DoubleCancelIsNoop)
{
    EventQueue q;
    EventId id = q.schedule(10, [](TimeNs) {});
    q.schedule(20, [](TimeNs) {});
    q.cancel(id);
    q.cancel(id);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelInvalidIsNoop)
{
    EventQueue q;
    q.cancel(kInvalidEvent);
    q.cancel(12345);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeTracksEarliestLive)
{
    EventQueue q;
    EventId early = q.schedule(10, [](TimeNs) {});
    q.schedule(20, [](TimeNs) {});
    EXPECT_EQ(q.nextTime(), 10u);
    q.cancel(early);
    EXPECT_EQ(q.nextTime(), 20u);
}

TEST(EventQueue, RunOneReturnsFireTime)
{
    EventQueue q;
    q.schedule(42, [](TimeNs t) { EXPECT_EQ(t, 42u); });
    EXPECT_EQ(q.runOne(), 42u);
}

TEST(EventQueueDeath, RunOneOnEmptyPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.runOne(), "empty event queue");
}

TEST(Simulator, TimeAdvancesWithEvents)
{
    Simulator sim(1);
    std::vector<TimeNs> times;
    sim.after(100, [&](TimeNs t) { times.push_back(t); });
    sim.after(50, [&](TimeNs t) { times.push_back(t); });
    sim.runAll();
    EXPECT_EQ(times, (std::vector<TimeNs>{50, 100}));
    EXPECT_EQ(sim.now(), 100u);
    EXPECT_EQ(sim.eventsRun(), 2u);
}

TEST(Simulator, RunUntilStopsAtHorizon)
{
    Simulator sim(1);
    int fired = 0;
    sim.after(10, [&](TimeNs) { ++fired; });
    sim.after(1000, [&](TimeNs) { ++fired; });
    sim.runUntil(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.events().size(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenDrained)
{
    Simulator sim(1);
    sim.runUntil(500);
    EXPECT_EQ(sim.now(), 500u);
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator sim(1);
    int depth = 0;
    std::function<void(TimeNs)> chain = [&](TimeNs) {
        if (++depth < 5)
            sim.after(10, chain);
    };
    sim.after(10, chain);
    sim.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, EveryRepeatsUntilCancelled)
{
    Simulator sim(1);
    int ticks = 0;
    auto cancel = sim.every(10, [&](TimeNs) { ++ticks; });
    sim.runUntil(55);
    EXPECT_EQ(ticks, 5);
    cancel();
    sim.runUntil(200);
    EXPECT_EQ(ticks, 5);
}

TEST(Simulator, StopHaltsRun)
{
    Simulator sim(1);
    int fired = 0;
    sim.after(10, [&](TimeNs) {
        ++fired;
        sim.stop();
    });
    sim.after(20, [&](TimeNs) { ++fired; });
    sim.runAll();
    EXPECT_EQ(fired, 1);
    // A later run resumes the remaining events.
    sim.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(SimulatorDeath, SchedulingInThePastPanics)
{
    Simulator sim(1);
    sim.after(10, [](TimeNs) {});
    sim.runAll();
    EXPECT_DEATH(sim.at(5, [](TimeNs) {}), "past");
}

TEST(Simulator, DeterministicAcrossRuns)
{
    auto run = [](std::uint64_t seed) {
        Simulator sim(seed);
        std::uint64_t acc = 0;
        for (int i = 0; i < 100; ++i) {
            sim.after(sim.rng().below(1000) + 1,
                      [&acc, i](TimeNs t) { acc = acc * 31 + t + i; });
        }
        sim.runAll();
        return acc;
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

} // namespace
} // namespace preempt::sim
