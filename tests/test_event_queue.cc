/** @file Tests for the deterministic event queue and the simulator. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/simulator.hh"

namespace preempt::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&](TimeNs) { order.push_back(3); });
    q.schedule(10, [&](TimeNs) { order.push_back(1); });
    q.schedule(20, [&](TimeNs) { order.push_back(2); });
    while (!q.empty())
        q.runOne();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&, i](TimeNs) { order.push_back(i); });
    while (!q.empty())
        q.runOne();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule(10, [&](TimeNs) { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue q;
    EventId id = q.schedule(1, [](TimeNs) {});
    q.runOne();
    EXPECT_FALSE(q.cancel(id)); // must not corrupt accounting
    EXPECT_EQ(q.size(), 0u);
    bool fired = false;
    q.schedule(2, [&](TimeNs) { fired = true; });
    q.runOne();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, DoubleCancelIsNoop)
{
    EventQueue q;
    EventId id = q.schedule(10, [](TimeNs) {});
    q.schedule(20, [](TimeNs) {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelInvalidIsNoop)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(kInvalidEvent));
    EXPECT_FALSE(q.cancel(12345));
    EXPECT_TRUE(q.empty());
}

// A handle from a previous occupant of a reused arena slot must not
// cancel (or even see) the slot's current occupant.
TEST(EventQueue, StaleIdFromPreviousGenerationRejected)
{
    EventQueue q;
    EventId first = q.schedule(1, [](TimeNs) {});
    q.runOne(); // frees the slot; the next schedule reuses it
    bool fired = false;
    EventId second = q.schedule(2, [&](TimeNs) { fired = true; });
    EXPECT_NE(first, second);
    EXPECT_FALSE(q.cancel(first)) << "stale generation must be rejected";
    EXPECT_EQ(q.size(), 1u);
    q.runOne();
    EXPECT_TRUE(fired);

    // Same for a slot freed by cancellation rather than firing.
    EventId third = q.schedule(3, [](TimeNs) {});
    EXPECT_TRUE(q.cancel(third));
    EventId fourth = q.schedule(3, [](TimeNs) {});
    EXPECT_FALSE(q.cancel(third));
    EXPECT_EQ(q.size(), 1u);
    EXPECT_TRUE(q.cancel(fourth));
}

// Heavy schedule/cancel churn across slot reuse keeps accounting and
// firing order exact.
TEST(EventQueue, CancellationChurnKeepsOrderAndAccounting)
{
    EventQueue q;
    std::vector<TimeNs> fired;
    std::vector<EventId> ids;
    for (int round = 0; round < 50; ++round) {
        ids.clear();
        for (TimeNs t = 1; t <= 20; ++t) {
            TimeNs when = static_cast<TimeNs>(round) * 100 + t;
            ids.push_back(
                q.schedule(when, [&](TimeNs at) { fired.push_back(at); }));
        }
        // Cancel every other event, newest first.
        for (std::size_t i = ids.size(); i-- > 0;) {
            if (i % 2 == 1) {
                EXPECT_TRUE(q.cancel(ids[i]));
            }
        }
        EXPECT_EQ(q.size(), 10u);
        while (!q.empty())
            q.runOne();
    }
    ASSERT_EQ(fired.size(), 500u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LT(fired[i - 1], fired[i]);
    EXPECT_EQ(q.scheduledCount(), 1000u);
}

// Captures larger than the inline buffer take the heap fallback and
// must still move correctly through slot reuse.
TEST(EventQueue, LargeCaptureFallsBackToHeap)
{
    EventQueue q;
    struct Big
    {
        unsigned char pad[2 * EventCallback::kInlineSize];
        int *out;
    };
    int out = 0;
    Big big{};
    big.out = &out;
    q.schedule(5, [big](TimeNs) { *big.out = 7; });
    q.runOne();
    EXPECT_EQ(out, 7);
}

TEST(EventQueue, NextTimeTracksEarliestLive)
{
    EventQueue q;
    EventId early = q.schedule(10, [](TimeNs) {});
    q.schedule(20, [](TimeNs) {});
    EXPECT_EQ(q.nextTime(), 10u);
    q.cancel(early);
    EXPECT_EQ(q.nextTime(), 20u);
}

TEST(EventQueue, RunOneReturnsFireTime)
{
    EventQueue q;
    q.schedule(42, [](TimeNs t) { EXPECT_EQ(t, 42u); });
    EXPECT_EQ(q.runOne(), 42u);
}

TEST(EventQueueDeath, RunOneOnEmptyPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.runOne(), "empty event queue");
}

TEST(Simulator, TimeAdvancesWithEvents)
{
    Simulator sim(1);
    std::vector<TimeNs> times;
    sim.after(100, [&](TimeNs t) { times.push_back(t); });
    sim.after(50, [&](TimeNs t) { times.push_back(t); });
    sim.runAll();
    EXPECT_EQ(times, (std::vector<TimeNs>{50, 100}));
    EXPECT_EQ(sim.now(), 100u);
    EXPECT_EQ(sim.eventsRun(), 2u);
}

TEST(Simulator, RunUntilStopsAtHorizon)
{
    Simulator sim(1);
    int fired = 0;
    sim.after(10, [&](TimeNs) { ++fired; });
    sim.after(1000, [&](TimeNs) { ++fired; });
    sim.runUntil(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.events().size(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenDrained)
{
    Simulator sim(1);
    sim.runUntil(500);
    EXPECT_EQ(sim.now(), 500u);
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator sim(1);
    int depth = 0;
    std::function<void(TimeNs)> chain = [&](TimeNs) {
        if (++depth < 5)
            sim.after(10, chain);
    };
    sim.after(10, chain);
    sim.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, EveryRepeatsUntilCancelled)
{
    Simulator sim(1);
    int ticks = 0;
    auto cancel = sim.every(10, [&](TimeNs) { ++ticks; });
    sim.runUntil(55);
    EXPECT_EQ(ticks, 5);
    cancel();
    sim.runUntil(200);
    EXPECT_EQ(ticks, 5);
}

TEST(Simulator, StopHaltsRun)
{
    Simulator sim(1);
    int fired = 0;
    sim.after(10, [&](TimeNs) {
        ++fired;
        sim.stop();
    });
    sim.after(20, [&](TimeNs) { ++fired; });
    sim.runAll();
    EXPECT_EQ(fired, 1);
    // A later run resumes the remaining events.
    sim.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(SimulatorDeath, SchedulingInThePastPanics)
{
    Simulator sim(1);
    sim.after(10, [](TimeNs) {});
    sim.runAll();
    EXPECT_DEATH(sim.at(5, [](TimeNs) {}), "past");
}

TEST(Simulator, DeterministicAcrossRuns)
{
    auto run = [](std::uint64_t seed) {
        Simulator sim(seed);
        std::uint64_t acc = 0;
        for (int i = 0; i < 100; ++i) {
            sim.after(sim.rng().below(1000) + 1,
                      [&acc, i](TimeNs t) { acc = acc * 31 + t + i; });
        }
        sim.runAll();
        return acc;
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

} // namespace
} // namespace preempt::sim
