/** @file Unit tests for the PCG32 RNG. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

namespace preempt {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, DifferentStreamsDiffer)
{
    Rng a(1, 10), b(1, 11);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0;
    for (int i = 0; i < 100000; ++i) {
        double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform(5.0, 6.5);
        ASSERT_GE(v, 5.0);
        ASSERT_LT(v, 6.5);
    }
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(11);
    for (std::uint32_t bound : {1u, 2u, 3u, 7u, 100u, 1u << 20}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowZeroBoundIsZero)
{
    Rng r(13);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng r(17);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(21);
    Rng child = parent.fork(1);
    Rng parent2(21);
    Rng child2 = parent2.fork(1);
    // Fork is deterministic...
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(child.next(), child2.next());
    // ...and differs from the parent stream.
    Rng parent3(21);
    Rng child3 = parent3.fork(1);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += parent3.next() == child3.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, Next64UsesFullWidth)
{
    Rng r(23);
    bool high_bits_seen = false;
    for (int i = 0; i < 100; ++i) {
        if (r.next64() >> 32)
            high_bits_seen = true;
    }
    EXPECT_TRUE(high_bits_seen);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator)
{
    static_assert(Rng::min() == 0);
    static_assert(Rng::max() == 0xffffffffu);
    Rng r(1);
    EXPECT_GE(r(), Rng::min());
}

} // namespace
} // namespace preempt
