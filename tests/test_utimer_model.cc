/** @file Tests for the simulated LibUtimer model. */

#include <gtest/gtest.h>

#include <vector>

#include "runtime_sim/utimer_model.hh"

namespace preempt::runtime_sim {
namespace {

TEST(UTimerModel, PlanFireRespectsPollGrid)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    UTimerModel utimer(sim, cfg, TimerDelivery::Uintr);

    FirePlan plan = utimer.planFire(12345);
    EXPECT_GE(plan.noticed, plan.deadline);
    EXPECT_LT(plan.noticed, plan.deadline + cfg.utimerPollInterval);
    EXPECT_EQ(plan.noticed % cfg.utimerPollInterval, 0u);
    EXPECT_GT(plan.handlerEntry, plan.noticed);
    EXPECT_EQ(utimer.fires(), 1u);
}

TEST(UTimerModel, UintrDeliveryFasterThanSignal)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    UTimerModel fast(sim, cfg, TimerDelivery::Uintr);
    UTimerModel slow(sim, cfg, TimerDelivery::KernelSignal);
    double fast_sum = 0, slow_sum = 0;
    for (int i = 0; i < 1000; ++i) {
        TimeNs d = static_cast<TimeNs>(1000 + i * 100);
        fast_sum += static_cast<double>(fast.planFire(d).handlerEntry - d);
        slow_sum += static_cast<double>(slow.planFire(d).handlerEntry - d);
    }
    EXPECT_LT(fast_sum * 5, slow_sum);
}

TEST(UTimerModel, MinQuantumPerDelivery)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    UTimerModel uintr(sim, cfg, TimerDelivery::Uintr);
    UTimerModel sig(sim, cfg, TimerDelivery::KernelSignal);
    EXPECT_EQ(uintr.minQuantum(), cfg.utimerMinQuantum);
    EXPECT_EQ(sig.minQuantum(), cfg.kernelTimerFloor);
    EXPECT_EQ(uintr.effectiveQuantum(usToNs(1)), cfg.utimerMinQuantum);
    EXPECT_EQ(uintr.effectiveQuantum(usToNs(50)), usToNs(50));
}

TEST(UTimerModel, CancelRefundsTimerCost)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    UTimerModel utimer(sim, cfg, TimerDelivery::Uintr);
    FirePlan plan = utimer.planFire(1000);
    EXPECT_EQ(utimer.fires(), 1u);
    TimeNs busy = utimer.timerCoreBusy();
    EXPECT_GT(busy, 0u);
    utimer.cancel(plan);
    EXPECT_EQ(utimer.fires(), 0u);
    EXPECT_EQ(utimer.timerCoreBusy(), 0u);
}

TEST(UTimerModel, PeriodicFiresNearInterval)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    UTimerModel utimer(sim, cfg, TimerDelivery::Uintr);
    int slot = utimer.registerThread();
    std::vector<TimeNs> fires;
    utimer.startPeriodic(slot, usToNs(100),
                         [&](TimeNs t) { fires.push_back(t); });
    sim.runUntil(msToNs(1));
    // ~10 fires in 1 ms.
    ASSERT_GE(fires.size(), 8u);
    ASSERT_LE(fires.size(), 11u);
    // Inter-fire gaps near 100 us.
    for (std::size_t i = 1; i < fires.size(); ++i) {
        double gap = static_cast<double>(fires[i] - fires[i - 1]);
        EXPECT_NEAR(gap, static_cast<double>(usToNs(100)),
                    static_cast<double>(usToNs(10)));
    }
}

TEST(UTimerModel, StopPeriodicHalts)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    UTimerModel utimer(sim, cfg, TimerDelivery::Uintr);
    int slot = utimer.registerThread();
    int fires = 0;
    utimer.startPeriodic(slot, usToNs(50), [&](TimeNs) { ++fires; });
    sim.runUntil(usToNs(220));
    utimer.stopPeriodic(slot);
    int at_stop = fires;
    sim.runUntil(msToNs(2));
    EXPECT_EQ(fires, at_stop);
    EXPECT_GE(at_stop, 3);
}

TEST(UTimerModel, RestartPeriodicInvalidatesOldChain)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    UTimerModel utimer(sim, cfg, TimerDelivery::Uintr);
    int slot = utimer.registerThread();
    int first = 0, second = 0;
    utimer.startPeriodic(slot, usToNs(50), [&](TimeNs) { ++first; });
    sim.runUntil(usToNs(120));
    utimer.startPeriodic(slot, usToNs(50), [&](TimeNs) { ++second; });
    sim.runUntil(usToNs(500));
    EXPECT_GE(second, 3);
    EXPECT_LE(first, 3) << "old chain must stop after restart";
}

TEST(UTimerModelDeath, InvalidSlotFatal)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    UTimerModel utimer(sim, cfg, TimerDelivery::Uintr);
    EXPECT_EXIT(utimer.startPeriodic(3, 100, [](TimeNs) {}),
                testing::ExitedWithCode(1), "invalid utimer slot");
}

} // namespace
} // namespace preempt::runtime_sim
