/**
 * @file
 * Tests for the obs:: tracing + metrics subsystem: ring semantics,
 * the kind catalog and record layout (golden format), exporter output
 * (valid + byte-deterministic JSON), the metrics registry, and the
 * Session CLI wiring.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <locale>
#include <sstream>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "hw/latency_config.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/session.hh"
#include "obs/trace.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

namespace preempt {
namespace {

using obs::EventKind;
using obs::TraceRecord;
using obs::TraceRing;
using obs::Tracer;

TraceRecord
rec(std::uint64_t ts, EventKind kind = EventKind::Dispatch,
    std::uint64_t id = 0)
{
    TraceRecord r{};
    r.ts = ts;
    r.kind = static_cast<std::uint16_t>(kind);
    r.id = id;
    return r;
}

// ----- ring ---------------------------------------------------------

TEST(TraceRing, RetainsEverythingBelowCapacity)
{
    TraceRing ring(8);
    for (std::uint64_t i = 0; i < 5; ++i)
        ring.push(rec(i));
    EXPECT_EQ(ring.written(), 5u);
    EXPECT_EQ(ring.dropped(), 0u);
    auto snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(snap[i].ts, i);
}

TEST(TraceRing, DropOldestKeepsTailAndCountsDrops)
{
    TraceRing ring(8);
    for (std::uint64_t i = 0; i < 20; ++i)
        ring.push(rec(i));
    EXPECT_EQ(ring.written(), 20u);
    EXPECT_EQ(ring.dropped(), 12u);
    auto snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 8u);
    // The retained window is the most recent 8, oldest first.
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(snap[i].ts, 12 + i);
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo)
{
    TraceRing ring(5);
    EXPECT_EQ(ring.capacity(), 8u);
}

// ----- tracer -------------------------------------------------------

TEST(TracerTest, RoutesByCoreAndDropsOutOfRange)
{
    Tracer::Options opt;
    opt.cores = 2;
    opt.perCoreCapacity = 16;
    Tracer t(opt);
    t.record(EventKind::Dispatch, 0, 10, 1);
    t.record(EventKind::Launch, 1, 20, 2);
    t.record(EventKind::Launch, 7, 30, 3); // no ring 7
    EXPECT_EQ(t.ring(0).written(), 1u);
    EXPECT_EQ(t.ring(1).written(), 1u);
    EXPECT_EQ(t.totalWritten(), 2u);
    EXPECT_EQ(t.droppedOutOfRange(), 1u);
}

TEST(TracerTest, EpochsTagRecordsAndKeepNames)
{
    Tracer t;
    t.record(EventKind::Dispatch, 0, 1, 0);
    EXPECT_EQ(t.beginEpoch("second run"), 1u);
    t.record(EventKind::Dispatch, 0, 2, 0);
    auto snap = t.ring(0).snapshot();
    // dispatch@epoch0, epoch marker, dispatch@epoch1
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].epoch, 0u);
    EXPECT_EQ(snap[1].kind,
              static_cast<std::uint16_t>(EventKind::EpochBegin));
    EXPECT_EQ(snap[2].epoch, 1u);
    ASSERT_EQ(t.epochNames().size(), 2u);
    EXPECT_EQ(t.epochNames()[0], "main");
    EXPECT_EQ(t.epochNames()[1], "second run");
}

TEST(TracerTest, GlobalEmitIsNoOpWithoutInstalledTracer)
{
    ASSERT_EQ(obs::tracer(), nullptr);
    obs::emit(EventKind::Dispatch, 0, 1, 2); // must not crash
    EXPECT_FALSE(obs::tracing());

    Tracer t;
    obs::setTracer(&t);
#ifndef PREEMPT_OBS_DISABLED
    EXPECT_TRUE(obs::tracing());
#endif
    obs::emit(EventKind::Dispatch, 0, 1, 2);
    obs::setTracer(nullptr);
#ifndef PREEMPT_OBS_DISABLED
    EXPECT_EQ(t.totalWritten(), 1u);
#endif
}

// ----- golden format ------------------------------------------------

TEST(TraceGolden, RecordLayoutIsStable)
{
    EXPECT_EQ(sizeof(TraceRecord), 40u);
    EXPECT_EQ(offsetof(TraceRecord, ts), 0u);
    EXPECT_EQ(offsetof(TraceRecord, kind), 8u);
    EXPECT_EQ(offsetof(TraceRecord, core), 10u);
    EXPECT_EQ(offsetof(TraceRecord, epoch), 12u);
    EXPECT_EQ(offsetof(TraceRecord, id), 16u);
    EXPECT_EQ(offsetof(TraceRecord, a0), 24u);
    EXPECT_EQ(offsetof(TraceRecord, a1), 32u);
}

TEST(TraceGolden, KindCatalogValuesAndNamesAreStable)
{
    // Append-only catalog: these pairs are part of the trace format
    // (DESIGN.md section 8). Renumbering breaks saved traces.
    const std::pair<EventKind, const char *> kCatalog[] = {
        {EventKind::EpochBegin, "epoch_begin"},
        {EventKind::UintrSend, "uintr_send"},
        {EventKind::UintrDeliverRunning, "uintr_deliver_running"},
        {EventKind::UintrDeliverBlocked, "uintr_deliver_blocked"},
        {EventKind::UintrWake, "uintr_wake"},
        {EventKind::QuantumDecision, "quantum_decision"},
        {EventKind::TimerArm, "timer_arm"},
        {EventKind::TimerFire, "timer_fire"},
        {EventKind::TimerCancel, "timer_cancel"},
        {EventKind::TimerCascade, "timer_cascade"},
        {EventKind::EventQueueDepth, "event_queue_depth"},
        {EventKind::Dispatch, "dispatch"},
        {EventKind::Launch, "launch"},
        {EventKind::Resume, "resume"},
        {EventKind::Preempt, "preempt"},
        {EventKind::Complete, "complete"},
        {EventKind::CancelRequest, "cancel_request"},
        {EventKind::Steal, "steal"},
        {EventKind::HandlerEnter, "handler_enter"},
        {EventKind::FaultInject, "fault_inject"},
        {EventKind::FaultRecover, "fault_recover"},
        {EventKind::TaskMigrate, "task_migrate"},
        {EventKind::TaskSubmit, "task_submit"},
        {EventKind::TaskReject, "task_reject"},
    };
    std::uint16_t expected = 0;
    for (const auto &[kind, name] : kCatalog) {
        EXPECT_EQ(static_cast<std::uint16_t>(kind), expected)
            << "kind " << name << " was renumbered";
        EXPECT_STREQ(obs::kindName(kind), name);
        ++expected;
    }
    EXPECT_EQ(static_cast<std::uint16_t>(EventKind::kCount), expected)
        << "new kinds must be appended to this catalog test";
}

TEST(TraceGolden, ExporterOutputForTinyTrace)
{
    Tracer::Options opt;
    opt.cores = 2;
    opt.perCoreCapacity = 8;
    Tracer t(opt);
    t.record(EventKind::Dispatch, 0, 1500, 7, 1, 2);
    t.record(EventKind::Launch, 1, 2001, 7);
    std::ostringstream os;
    obs::writeChromeTrace(t, os);
    EXPECT_EQ(os.str(),
              "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n"
              "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0,"
              " \"args\": {\"name\": \"main\"}},\n"
              "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0,"
              " \"tid\": 0, \"args\": {\"name\": \"core 0\"}},\n"
              "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0,"
              " \"tid\": 1, \"args\": {\"name\": \"core 1\"}},\n"
              "  {\"name\": \"dispatch\", \"ph\": \"i\", \"s\": \"t\","
              " \"pid\": 0, \"tid\": 0, \"ts\": 1.500,"
              " \"args\": {\"id\": 7, \"a0\": 1, \"a1\": 2}},\n"
              "  {\"name\": \"launch\", \"ph\": \"i\", \"s\": \"t\","
              " \"pid\": 0, \"tid\": 1, \"ts\": 2.001,"
              " \"args\": {\"id\": 7, \"a0\": 0, \"a1\": 0}}\n"
              "], \"metadata\": {\"records\": 2,"
              " \"dropped_overwritten\": 0,"
              " \"dropped_out_of_range\": 0}}\n");
    std::string err;
    EXPECT_TRUE(obs::validateJson(os.str(), &err)) << err;
}

// ----- validator ----------------------------------------------------

TEST(ValidateJson, AcceptsValidDocuments)
{
    for (const char *ok :
         {"{}", "[]", "null", "true", "-0.5e+3", "\"s\"",
          "{\"a\": [1, 2.5, {\"b\": null}], \"c\": \"x\\n\\u00ff\"}",
          "  [ 1 , 2 ]  "}) {
        std::string err;
        EXPECT_TRUE(obs::validateJson(ok, &err)) << ok << ": " << err;
    }
}

TEST(ValidateJson, RejectsInvalidDocuments)
{
    for (const char *bad :
         {"", "{", "}", "[1,]", "{\"a\":}", "{a: 1}", "01", "1.",
          "\"unterminated", "\"bad\\x\"", "[1] trailing", "nul",
          "{\"a\": 1,}"}) {
        EXPECT_FALSE(obs::validateJson(bad)) << bad;
    }
}

// ----- metrics ------------------------------------------------------

TEST(Metrics, RegistryCountersGaugesTimers)
{
    obs::MetricsRegistry reg;
    reg.counter("c").add(3);
    reg.counter("c").add();
    reg.gauge("g").set(-7);
    reg.timer("t").record(1000);
    EXPECT_EQ(reg.counter("c").value(), 4u);
    EXPECT_EQ(reg.gauge("g").value(), -7);
    EXPECT_EQ(reg.timer("t").histogram().count(), 1u);
}

TEST(Metrics, JsonIsValidAndMergesPerCoreFamilies)
{
    obs::MetricsRegistry reg;
    reg.counter("requests").add(2);
    reg.timerPerCore("lat", 0).record(100);
    reg.timerPerCore("lat", 1).record(200000);
    std::string json = reg.toJson();
    std::string err;
    EXPECT_TRUE(obs::validateJson(json, &err)) << err;
    EXPECT_NE(json.find("\"requests\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"lat/core0\""), std::string::npos);
    EXPECT_NE(json.find("\"lat/core1\""), std::string::npos);
    // Machine-wide merge of the family appears under the bare name.
    EXPECT_NE(json.find("\"lat\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
}

TEST(Metrics, HelpersAreNoOpsWithoutRegistry)
{
    ASSERT_EQ(obs::metricsRegistry(), nullptr);
    obs::addCount("x");
    obs::setGauge("x", 1);
    obs::recordTimer("x", 1);
    obs::recordTimerPerCore("x", 0, 1);

    obs::MetricsRegistry reg;
    obs::setMetricsRegistry(&reg);
    obs::addCount("x", 5);
    obs::setMetricsRegistry(nullptr);
    EXPECT_EQ(reg.counter("x").value(), 5u);
}

// ----- determinism --------------------------------------------------

std::string
traceOfSeededRun(std::uint64_t seed)
{
    Tracer::Options opt;
    opt.cores = 8;
    opt.perCoreCapacity = 1 << 12;
    Tracer t(opt);
    obs::setTracer(&t);

    sim::Simulator sim(seed);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 2;
    rc.quantum = usToNs(5);
    rc.adaptive = true;
    rc.controllerParams.period = msToNs(5);
    rc.statsHorizon = msToNs(5);
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);
    workload::WorkloadSpec spec{workload::makeServiceLaw("A2", msToNs(20)),
                                workload::RateLaw::constant(100e3),
                                msToNs(20)};
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runUntil(msToNs(30));

    obs::setTracer(nullptr);
    std::ostringstream os;
    obs::writeChromeTrace(t, os);
    return os.str();
}

TEST(TraceDeterminism, SameSeedProducesByteIdenticalTraces)
{
#ifdef PREEMPT_OBS_DISABLED
    GTEST_SKIP() << "instrumentation compiled out";
#endif
    std::string a = traceOfSeededRun(42);
    std::string b = traceOfSeededRun(42);
    EXPECT_GT(a.size(), 1000u) << "run produced a near-empty trace";
    EXPECT_EQ(a, b);
    std::string err;
    EXPECT_TRUE(obs::validateJson(a, &err)) << err;
}

TEST(TraceDeterminism, DifferentSeedsDiverge)
{
#ifdef PREEMPT_OBS_DISABLED
    GTEST_SKIP() << "instrumentation compiled out";
#endif
    EXPECT_NE(traceOfSeededRun(1), traceOfSeededRun(2));
}

TEST(TraceDeterminism, SimTraceCoversInstrumentedSubsystems)
{
#ifdef PREEMPT_OBS_DISABLED
    GTEST_SKIP() << "instrumentation compiled out";
#endif
    std::string a = traceOfSeededRun(42);
    for (const char *name :
         {"uintr_deliver_running", "quantum_decision", "timer_arm",
          "timer_fire", "dispatch", "launch", "preempt", "complete",
          "event_queue_depth"}) {
        EXPECT_NE(a.find(std::string("\"") + name + "\""),
                  std::string::npos)
            << "no " << name << " event in the sim trace";
    }
}

// ----- session ------------------------------------------------------

TEST(Session, ParsesFlagsInstallsGlobalsAndWritesFiles)
{
    std::string traceFile = testing::TempDir() + "obs_trace.json";
    std::string metricsFile = testing::TempDir() + "obs_metrics.json";
    std::string traceArg = "--trace-out=" + traceFile;
    std::string metricsArg = "--metrics-out=" + metricsFile;
    const char *argv[] = {"test", traceArg.c_str(), metricsArg.c_str(),
                          "--log-level=warn"};
    CommandLine cli(4, const_cast<char **>(argv));
    {
        obs::Session session(cli);
        cli.rejectUnknown();
        EXPECT_TRUE(session.tracing());
        EXPECT_TRUE(session.metrics());
        ASSERT_NE(obs::tracer(), nullptr);
        ASSERT_NE(obs::metricsRegistry(), nullptr);
        EXPECT_EQ(minLogLevel(), LogLevel::Warn);
        session.beginRun("run-1");
        obs::emit(EventKind::Dispatch, 0, 100, 1);
        obs::addCount("session.test");
    }
    EXPECT_EQ(obs::tracer(), nullptr);
    EXPECT_EQ(obs::metricsRegistry(), nullptr);
    setMinLogLevel(LogLevel::Inform);

    for (const std::string &path : {traceFile, metricsFile}) {
        std::ifstream in(path);
        ASSERT_TRUE(in.good()) << path;
        std::stringstream ss;
        ss << in.rdbuf();
        std::string err;
        EXPECT_TRUE(obs::validateJson(ss.str(), &err)) << path << ": "
                                                       << err;
    }
}

TEST(Session, InstallsNothingWithoutFlags)
{
    const char *argv[] = {"test"};
    CommandLine cli(1, const_cast<char **>(argv));
    obs::Session session(cli);
    EXPECT_FALSE(session.tracing());
    EXPECT_FALSE(session.metrics());
    EXPECT_EQ(obs::tracer(), nullptr);
    EXPECT_EQ(obs::metricsRegistry(), nullptr);
}

// ----- thread-scoped instances (parallel harness) -------------------

TEST(ThreadScoped, TracerShadowsGlobalAndRestores)
{
    Tracer global, cell;
    obs::setTracer(&global);
    EXPECT_EQ(obs::tracer(), &global);
    {
        obs::ScopedThreadTracer scoped(&cell);
        EXPECT_EQ(obs::tracer(), &cell);
        {
            obs::ScopedThreadTracer inner(nullptr);
            // TLS null falls back to the global, like any other
            // thread outside a cell.
            EXPECT_EQ(obs::tracer(), &global);
        }
        EXPECT_EQ(obs::tracer(), &cell);
    }
    EXPECT_EQ(obs::tracer(), &global);
    obs::setTracer(nullptr);
    EXPECT_EQ(obs::tracer(), nullptr);
}

TEST(ThreadScoped, MetricsRegistryShadowsGlobalAndRestores)
{
    obs::MetricsRegistry global, cell;
    obs::setMetricsRegistry(&global);
    {
        obs::ScopedThreadMetricsRegistry scoped(&cell);
        EXPECT_EQ(obs::metricsRegistry(), &cell);
        obs::addCount("scoped.count");
    }
    EXPECT_EQ(obs::metricsRegistry(), &global);
    obs::setMetricsRegistry(nullptr);
#ifndef PREEMPT_OBS_DISABLED
    EXPECT_EQ(cell.counter("scoped.count").value(), 1u);
    EXPECT_EQ(global.counter("scoped.count").value(), 0u);
#endif
}

// ----- capture merging (parallel harness) ---------------------------

TEST(TracerTest, AbsorbRemapsEpochsInSubmissionOrder)
{
    Tracer parent;
    parent.beginEpoch("parent run"); // epoch 1
    parent.record(EventKind::Dispatch, 0, 10, 1);

    Tracer::Options opt;
    opt.lazyRings = true;
    Tracer cellA(opt);
    cellA.record(EventKind::Dispatch, 0, 15, 9); // donor epoch 0
    cellA.beginEpoch("cell A");                  // donor epoch 1
    cellA.record(EventKind::Dispatch, 0, 20, 2);
    Tracer cellB(opt);
    cellB.beginEpoch("cell B");
    cellB.record(EventKind::Launch, 1, 30, 3);

    parent.absorb(cellA);
    parent.absorb(cellB);

    ASSERT_EQ(parent.epochNames().size(), 4u);
    EXPECT_EQ(parent.epochNames()[0], "main");
    EXPECT_EQ(parent.epochNames()[1], "parent run");
    EXPECT_EQ(parent.epochNames()[2], "cell A");
    EXPECT_EQ(parent.epochNames()[3], "cell B");

    // Ring 0: parent's epoch marker + dispatch, then cellA's records
    // with donor epoch 0 -> 0 and donor epoch 1 -> 2.
    auto r0 = parent.ring(0).snapshot();
    ASSERT_EQ(r0.size(), 6u);
    EXPECT_EQ(r0[1].epoch, 1u); // parent dispatch
    EXPECT_EQ(r0[2].epoch, 0u); // cellA pre-epoch record joins "main"
    EXPECT_EQ(r0[3].kind,
              static_cast<std::uint16_t>(EventKind::EpochBegin));
    EXPECT_EQ(r0[3].id, 2u); // marker id remapped with the epoch
    EXPECT_EQ(r0[4].epoch, 2u);
    EXPECT_EQ(r0[4].ts, 20u);
    // cellB's epoch marker lands in ring 0 like any beginEpoch.
    EXPECT_EQ(r0[5].kind,
              static_cast<std::uint16_t>(EventKind::EpochBegin));
    EXPECT_EQ(r0[5].id, 3u);
    // Ring 1: cellB's launch under remapped epoch 3.
    auto r1 = parent.ring(1).snapshot();
    ASSERT_EQ(r1.size(), 1u);
    EXPECT_EQ(r1[0].epoch, 3u);
    EXPECT_EQ(r1[0].ts, 30u);
}

TEST(Metrics, AbsorbAddsCountersMergesTimersOverwritesGauges)
{
    obs::MetricsRegistry sink, cellA, cellB;
    sink.counter("c").add(1);
    cellA.counter("c").add(2);
    cellB.counter("c").add(3);
    cellA.gauge("g").set(7);
    cellB.gauge("g").set(9);
    cellA.timer("t").record(100);
    cellB.timer("t").record(300);

    sink.absorb(cellA);
    sink.absorb(cellB);

    EXPECT_EQ(sink.counter("c").value(), 6u);
    EXPECT_EQ(sink.gauge("g").value(), 9); // last write wins
    EXPECT_EQ(sink.timer("t").histogram().count(), 2u);
}

// ----- formatting under a hostile global locale ---------------------

namespace {

/** numpunct that would corrupt JSON if it leaked into an emitter. */
class CommaNumpunct : public std::numpunct<char>
{
  protected:
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
};

} // namespace

TEST(Export, FormattingImmuneToGlobalLocale)
{
    Tracer t;
    t.record(EventKind::Dispatch, 0, 1234567, 42);
    obs::MetricsRegistry reg;
    reg.counter("fmt.count").add(1234567);
    reg.gauge("fmt.gauge").set(-7654321);
    reg.timer("fmt.timer").record(1000);
    reg.timer("fmt.timer").record(1001);

    auto render = [&] {
        std::ostringstream trace;
        obs::writeChromeTrace(t, trace);
        return trace.str() + "\n---\n" + reg.toJson() + "\n---\n" +
               ConsoleTable::num(1234567.891, 2);
    };

    std::string baseline = render();
    // Golden fragments: C-locale fixed-point, no digit grouping.
    EXPECT_NE(baseline.find("\"fmt.count\": 1234567"),
              std::string::npos) << baseline;
    EXPECT_NE(baseline.find("\"fmt.gauge\": -7654321"),
              std::string::npos) << baseline;
    EXPECT_NE(baseline.find("\"mean\": 1000.500000"),
              std::string::npos) << baseline;
    EXPECT_NE(baseline.find("1234567.89"), std::string::npos)
        << baseline;

    std::locale weird(std::locale::classic(), new CommaNumpunct);
    std::locale prev = std::locale::global(weird);
    std::string undermined = render();
    std::locale::global(prev);

    EXPECT_EQ(undermined, baseline);
    std::string err;
    std::ostringstream trace;
    obs::writeChromeTrace(t, trace);
    EXPECT_TRUE(obs::validateJson(trace.str(), &err)) << err;
    EXPECT_TRUE(obs::validateJson(reg.toJson(), &err)) << err;
}

} // namespace
} // namespace preempt
