/** @file Tests for the hierarchical timing wheel. */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"
#include "core/timing_wheel.hh"

namespace preempt::core {
namespace {

TEST(TimingWheel, FiresAtDeadlineWithinOneTick)
{
    TimingWheel wheel(100);
    std::vector<TimeNs> fired;
    wheel.schedule(1000, 7);
    wheel.advance(900, [&](std::uint64_t, TimeNs) { FAIL(); });
    wheel.advance(1100, [&](std::uint64_t cookie, TimeNs when) {
        EXPECT_EQ(cookie, 7u);
        EXPECT_EQ(when, 1000u);
        fired.push_back(when);
    });
    EXPECT_EQ(fired.size(), 1u);
    EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimingWheel, FiresInDeadlineOrder)
{
    TimingWheel wheel(10);
    std::vector<std::uint64_t> order;
    wheel.schedule(500, 3);
    wheel.schedule(100, 1);
    wheel.schedule(300, 2);
    wheel.advance(1000,
                  [&](std::uint64_t c, TimeNs) { order.push_back(c); });
    EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(TimingWheel, CancelPreventsFire)
{
    TimingWheel wheel(10);
    auto id = wheel.schedule(100, 1);
    EXPECT_EQ(wheel.size(), 1u);
    EXPECT_TRUE(wheel.cancel(id));
    EXPECT_EQ(wheel.size(), 0u);
    EXPECT_FALSE(wheel.cancel(id)) << "double cancel";
    wheel.advance(1000, [](std::uint64_t, TimeNs) { FAIL(); });
}

TEST(TimingWheel, CancelUnknownIdIsFalse)
{
    TimingWheel wheel(10);
    EXPECT_FALSE(wheel.cancel(0));
    EXPECT_FALSE(wheel.cancel(999));
}

TEST(TimingWheel, LongDeadlinesCascadeAcrossLevels)
{
    TimingWheel wheel(100, 16, 3); // level spans: 1.6k, 25.6k, 409.6k
    TimeNs far = 200000;
    bool fired = false;
    wheel.schedule(far, 1);
    wheel.advance(far - 1000, [](std::uint64_t, TimeNs) { FAIL(); });
    wheel.advance(far + 200, [&](std::uint64_t, TimeNs when) {
        EXPECT_EQ(when, far);
        fired = true;
    });
    EXPECT_TRUE(fired);
}

TEST(TimingWheel, PastDeadlineFiresOnNextAdvance)
{
    TimingWheel wheel(100);
    wheel.advance(5000, [](std::uint64_t, TimeNs) {});
    wheel.schedule(10, 1); // already in the past
    bool fired = false;
    wheel.advance(5300, [&](std::uint64_t, TimeNs) { fired = true; });
    EXPECT_TRUE(fired);
}

TEST(TimingWheelDeath, BackwardsAdvancePanics)
{
    TimingWheel wheel(100);
    wheel.advance(1000, [](std::uint64_t, TimeNs) {});
    EXPECT_DEATH(wheel.advance(500, [](std::uint64_t, TimeNs) {}),
                 "backwards");
}

TEST(TimingWheelDeath, BadConfigFatal)
{
    EXPECT_EXIT(TimingWheel(0), testing::ExitedWithCode(1), "tick");
    EXPECT_EXIT(TimingWheel(10, 100, 2), testing::ExitedWithCode(1),
                "power of two");
}

// Property sweep: N random timers all fire exactly once with bounded
// lateness, across wheel geometries.
struct WheelGeometry
{
    TimeNs tick;
    std::size_t slots;
    int levels;
};

class TimingWheelProperty : public testing::TestWithParam<WheelGeometry>
{
};

TEST_P(TimingWheelProperty, NoTimerLostNoneEarlyBoundedLate)
{
    const auto &g = GetParam();
    TimingWheel wheel(g.tick, g.slots, g.levels);
    Rng rng(42);
    std::map<std::uint64_t, TimeNs> expect; // cookie -> deadline
    TimeNs horizon = g.tick * 200000;
    for (std::uint64_t i = 0; i < 2000; ++i) {
        TimeNs when = 1 + rng.next64() % horizon;
        wheel.schedule(when, i);
        expect[i] = when;
    }
    // A few cancellations.
    for (std::uint64_t id = 1; id <= 2000; id += 97) {
        if (wheel.cancel(id))
            expect.erase(id - 1); // ids are 1-based in schedule order
    }

    std::map<std::uint64_t, TimeNs> fired;
    TimeNs step = horizon / 333 + 1;
    TimeNs now = 0;
    while (now < horizon + g.tick * 4) {
        now += step;
        wheel.advance(now, [&](std::uint64_t cookie, TimeNs when) {
            EXPECT_EQ(fired.count(cookie), 0u) << "double fire";
            fired[cookie] = when;
            // Never early relative to the advance point.
            EXPECT_LE(when, now);
        });
    }
    EXPECT_EQ(fired.size(), expect.size());
    for (const auto &[cookie, when] : expect) {
        ASSERT_TRUE(fired.count(cookie)) << "lost timer " << cookie;
        EXPECT_EQ(fired[cookie], when);
    }
    EXPECT_EQ(wheel.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TimingWheelProperty,
    testing::Values(WheelGeometry{100, 256, 4}, WheelGeometry{50, 16, 3},
                    WheelGeometry{1000, 64, 2}, WheelGeometry{10, 8, 5}));

} // namespace
} // namespace preempt::core
