/** @file Tests for the hierarchical timing wheel. */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"
#include "core/timing_wheel.hh"

namespace preempt::core {
namespace {

TEST(TimingWheel, FiresAtDeadlineWithinOneTick)
{
    TimingWheel wheel(100);
    std::vector<TimeNs> fired;
    wheel.schedule(1000, 7);
    wheel.advance(900, [&](std::uint64_t, TimeNs) { FAIL(); });
    wheel.advance(1100, [&](std::uint64_t cookie, TimeNs when) {
        EXPECT_EQ(cookie, 7u);
        EXPECT_EQ(when, 1000u);
        fired.push_back(when);
    });
    EXPECT_EQ(fired.size(), 1u);
    EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimingWheel, FiresInDeadlineOrder)
{
    TimingWheel wheel(10);
    std::vector<std::uint64_t> order;
    wheel.schedule(500, 3);
    wheel.schedule(100, 1);
    wheel.schedule(300, 2);
    wheel.advance(1000,
                  [&](std::uint64_t c, TimeNs) { order.push_back(c); });
    EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(TimingWheel, CancelPreventsFire)
{
    TimingWheel wheel(10);
    auto id = wheel.schedule(100, 1);
    EXPECT_EQ(wheel.size(), 1u);
    EXPECT_TRUE(wheel.cancel(id));
    EXPECT_EQ(wheel.size(), 0u);
    EXPECT_FALSE(wheel.cancel(id)) << "double cancel";
    wheel.advance(1000, [](std::uint64_t, TimeNs) { FAIL(); });
}

TEST(TimingWheel, CancelUnknownIdIsFalse)
{
    TimingWheel wheel(10);
    EXPECT_FALSE(wheel.cancel(0));
    EXPECT_FALSE(wheel.cancel(999));
}

// Regression: cancelling an id that already expired used to insert a
// tombstone and decrement live_, corrupting the accounting of a
// *different* live timer (and later tripping the underflow panic in
// advance). It must be a side-effect-free false.
TEST(TimingWheel, CancelAfterExpiryIsRejectedWithoutSideEffects)
{
    TimingWheel wheel(10);
    auto expired = wheel.schedule(50, 1);
    auto live = wheel.schedule(100000, 2);
    int fired = 0;
    wheel.advance(100, [&](std::uint64_t c, TimeNs) {
        EXPECT_EQ(c, 1u);
        ++fired;
    });
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(wheel.size(), 1u);

    EXPECT_FALSE(wheel.cancel(expired)) << "cancel-after-expiry";
    EXPECT_EQ(wheel.size(), 1u) << "must not touch the live timer";

    // The live timer still fires exactly once, with no panic.
    wheel.advance(200000, [&](std::uint64_t c, TimeNs) {
        EXPECT_EQ(c, 2u);
        ++fired;
    });
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(wheel.size(), 0u);
    EXPECT_TRUE(wheel.cancel(live) == false);
}

// Regression: a slot index reused after cancel must not be reachable
// through the old id.
TEST(TimingWheel, StaleIdFromPreviousGenerationRejected)
{
    TimingWheel wheel(10);
    auto first = wheel.schedule(100, 1);
    EXPECT_TRUE(wheel.cancel(first));
    auto second = wheel.schedule(100, 2); // reuses the arena slot
    EXPECT_NE(first, second);
    EXPECT_FALSE(wheel.cancel(first));
    EXPECT_EQ(wheel.size(), 1u);
    bool fired = false;
    wheel.advance(200, [&](std::uint64_t c, TimeNs) {
        EXPECT_EQ(c, 2u);
        fired = true;
    });
    EXPECT_TRUE(fired);
}

// Regression: tick * slots^levels overflowed TimeNs for coarse ticks
// and deep hierarchies; horizon() must saturate, not wrap.
TEST(TimingWheel, HorizonSaturatesInsteadOfOverflowing)
{
    TimingWheel coarse(secToNs(10), 256, 8);
    EXPECT_EQ(coarse.horizon(), kTimeNever);

    TimingWheel fine(100, 16, 2);
    EXPECT_EQ(fine.horizon(), 100u * 16 * 16);
    fine.advance(1000, [](std::uint64_t, TimeNs) {});
    EXPECT_EQ(fine.horizon(), 1000u + 100u * 16 * 16);
}

TEST(TimingWheel, LongDeadlinesCascadeAcrossLevels)
{
    TimingWheel wheel(100, 16, 3); // level spans: 1.6k, 25.6k, 409.6k
    TimeNs far = 200000;
    bool fired = false;
    wheel.schedule(far, 1);
    wheel.advance(far - 1000, [](std::uint64_t, TimeNs) { FAIL(); });
    wheel.advance(far + 200, [&](std::uint64_t, TimeNs when) {
        EXPECT_EQ(when, far);
        fired = true;
    });
    EXPECT_TRUE(fired);
}

TEST(TimingWheel, PastDeadlineFiresOnNextAdvance)
{
    TimingWheel wheel(100);
    wheel.advance(5000, [](std::uint64_t, TimeNs) {});
    wheel.schedule(10, 1); // already in the past
    bool fired = false;
    wheel.advance(5300, [&](std::uint64_t, TimeNs) { fired = true; });
    EXPECT_TRUE(fired);
}

TEST(TimingWheelDeath, BackwardsAdvancePanics)
{
    TimingWheel wheel(100);
    wheel.advance(1000, [](std::uint64_t, TimeNs) {});
    EXPECT_DEATH(wheel.advance(500, [](std::uint64_t, TimeNs) {}),
                 "backwards");
}

TEST(TimingWheelDeath, BadConfigFatal)
{
    EXPECT_EXIT(TimingWheel(0), testing::ExitedWithCode(1), "tick");
    EXPECT_EXIT(TimingWheel(10, 100, 2), testing::ExitedWithCode(1),
                "power of two");
}

// Property sweep: N random timers all fire exactly once with bounded
// lateness, across wheel geometries.
struct WheelGeometry
{
    TimeNs tick;
    std::size_t slots;
    int levels;
};

class TimingWheelProperty : public testing::TestWithParam<WheelGeometry>
{
};

TEST_P(TimingWheelProperty, NoTimerLostNoneEarlyBoundedLate)
{
    const auto &g = GetParam();
    TimingWheel wheel(g.tick, g.slots, g.levels);
    Rng rng(42);
    std::map<std::uint64_t, TimeNs> expect; // cookie -> deadline
    std::vector<std::uint64_t> ids;         // schedule order
    TimeNs horizon = g.tick * 200000;
    for (std::uint64_t i = 0; i < 2000; ++i) {
        TimeNs when = 1 + rng.next64() % horizon;
        ids.push_back(wheel.schedule(when, i));
        expect[i] = when;
    }
    // A few cancellations.
    for (std::size_t i = 0; i < ids.size(); i += 97) {
        ASSERT_TRUE(wheel.cancel(ids[i]));
        expect.erase(i);
    }

    std::map<std::uint64_t, TimeNs> fired;
    TimeNs step = horizon / 333 + 1;
    TimeNs now = 0;
    while (now < horizon + g.tick * 4) {
        now += step;
        wheel.advance(now, [&](std::uint64_t cookie, TimeNs when) {
            EXPECT_EQ(fired.count(cookie), 0u) << "double fire";
            fired[cookie] = when;
            // Never early relative to the advance point.
            EXPECT_LE(when, now);
        });
    }
    EXPECT_EQ(fired.size(), expect.size());
    for (const auto &[cookie, when] : expect) {
        ASSERT_TRUE(fired.count(cookie)) << "lost timer " << cookie;
        EXPECT_EQ(fired[cookie], when);
    }
    EXPECT_EQ(wheel.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TimingWheelProperty,
    testing::Values(WheelGeometry{100, 256, 4}, WheelGeometry{50, 16, 3},
                    WheelGeometry{1000, 64, 2}, WheelGeometry{10, 8, 5}));

} // namespace
} // namespace preempt::core
