/** @file Tests for streaming stats, Hill estimator, request window. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/dist.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace preempt {
namespace {

TEST(RunningStats, MatchesClosedForm)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of the classic dataset is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, EmptyAndSingle)
{
    RunningStats s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.add(42);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, ResetForgets)
{
    RunningStats s;
    s.add(1);
    s.add(2);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    s.add(10);
    EXPECT_DOUBLE_EQ(s.mean(), 10.0);
}

TEST(HillEstimator, RecoversParetoAlpha)
{
    Rng rng(1);
    for (double alpha : {1.2, 1.8, 2.5}) {
        ParetoDist d(1.0, alpha);
        std::vector<double> samples;
        for (int i = 0; i < 100000; ++i)
            samples.push_back(d.sample(rng));
        double est = hillTailIndex(samples);
        EXPECT_NEAR(est, alpha, alpha * 0.15) << "alpha=" << alpha;
    }
}

TEST(HillEstimator, LightTailGivesLargeAlpha)
{
    Rng rng(2);
    ExponentialDist d(1000.0);
    std::vector<double> samples;
    for (int i = 0; i < 100000; ++i)
        samples.push_back(d.sample(rng));
    // Exponential has all moments: the index is far above the
    // heavy-tail boundary of 2.
    EXPECT_GT(hillTailIndex(samples), 2.0);
}

TEST(HillEstimator, TooFewSamplesIsInfinite)
{
    std::vector<double> tiny{1.0, 2.0, 3.0};
    EXPECT_TRUE(std::isinf(hillTailIndex(tiny)));
}

TEST(HillEstimator, DoesNotMutateInput)
{
    // Regression: the estimator used to std::sort the caller's vector
    // in place.
    Rng rng(3);
    ParetoDist d(1.0, 1.5);
    std::vector<double> samples;
    for (int i = 0; i < 1000; ++i)
        samples.push_back(d.sample(rng));
    std::vector<double> before = samples;
    (void)hillTailIndex(samples);
    EXPECT_EQ(samples, before);
}

TEST(HillEstimator, UnsortedMatchesSorted)
{
    Rng rng(4);
    ParetoDist d(1.0, 2.0);
    std::vector<double> samples;
    for (int i = 0; i < 10000; ++i)
        samples.push_back(d.sample(rng));
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_DOUBLE_EQ(hillTailIndex(samples), hillTailIndex(sorted));
}

TEST(HillEstimator, SkippedTailSamplesLeaveTheDivisor)
{
    // Regression: samples the tail sum skips (non-finite; zeros when
    // they reach the threshold) used to stay in the divisor as the
    // nominal k, biasing the index. Constructed input, zero-laden
    // body: n=1000, k=50, threshold x_(n-k)=1, tail = 47x e + 3x inf.
    // Summing 47 logs of e and dividing by 47 gives exactly 1; the
    // old nominal-k divisor gave 50/47.
    std::vector<double> samples(400, 0.0);
    samples.insert(samples.end(), 550, 1.0);
    samples.insert(samples.end(), 47, std::exp(1.0));
    samples.insert(samples.end(), 3,
                   std::numeric_limits<double>::infinity());
    EXPECT_NEAR(hillTailIndex(samples, 0.05), 1.0, 1e-12);
}

TEST(Percentile, NearestRankIsExactOnSmallSets)
{
    // 100 samples 1..100: the nearest-rank p99 is the 99th smallest,
    // not the maximum (the old truncated q*n index reported sample
    // 100 here... below the true rank on other sizes).
    std::vector<TimeNs> v;
    for (TimeNs i = 1; i <= 100; ++i)
        v.push_back(i);
    EXPECT_EQ(percentileNearestRank(v, 0.99), 99u);
    EXPECT_EQ(percentileNearestRank(v, 1.0), 100u);
    EXPECT_EQ(percentileNearestRank(v, 0.5), 50u);
    EXPECT_EQ(percentileNearestRank(v, 0.001), 1u);

    // n=101: ceil(0.99 * 101) = 100 -> the 100th smallest.
    v.push_back(101);
    EXPECT_EQ(percentileNearestRank(v, 0.99), 100u);

    std::vector<TimeNs> single{7};
    EXPECT_EQ(percentileNearestRank(single, 0.99), 7u);
    std::vector<TimeNs> empty;
    EXPECT_EQ(percentileNearestRank(empty, 0.99), 0u);
}

TEST(Percentile, OutOfRangeQuantileIsFatal)
{
    std::vector<TimeNs> v{1, 2, 3};
    EXPECT_EXIT(percentileNearestRank(v, 0.0),
                testing::ExitedWithCode(1), "quantile");
    EXPECT_EXIT(percentileNearestRank(v, 1.5),
                testing::ExitedWithCode(1), "quantile");
}

TEST(Percentile, AgreesWithHistogramQuantileOnExactBuckets)
{
    // LatencyHistogram buckets are exact for small values, so both
    // nearest-rank implementations must agree bit-for-bit there.
    std::vector<TimeNs> samples;
    LatencyHistogram hist;
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        TimeNs v = 1 + rng.below(30);
        samples.push_back(v);
        hist.record(v);
    }
    for (double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
        std::vector<TimeNs> copy = samples;
        EXPECT_EQ(percentileNearestRank(copy, q),
                  static_cast<TimeNs>(hist.quantile(q)))
            << "q=" << q;
    }
}

TEST(RequestWindow, ExpiresOldRecords)
{
    RequestStatsWindow w(usToNs(100));
    w.onCompletion(usToNs(10), usToNs(5), usToNs(5));
    w.onCompletion(usToNs(50), usToNs(5), usToNs(5));
    EXPECT_EQ(w.size(), 2u);
    w.onCompletion(usToNs(140), usToNs(5), usToNs(5));
    // The record at 10 us is now older than the horizon.
    EXPECT_EQ(w.size(), 2u);
    w.expire(usToNs(1000));
    EXPECT_EQ(w.size(), 0u);
}

TEST(RequestWindow, ThroughputOverWindow)
{
    RequestStatsWindow w(secToNs(1));
    for (int i = 0; i < 1000; ++i)
        w.onCompletion(msToNs(i), usToNs(10), usToNs(10));
    // 1000 completions over the retained 1 s window.
    EXPECT_NEAR(w.throughputRps(msToNs(999)), 1000.0, 15.0);
}

TEST(RequestWindow, MedianAndTailLatency)
{
    RequestStatsWindow w(secToNs(10));
    for (int i = 1; i <= 100; ++i)
        w.onCompletion(usToNs(i), usToNs(i), usToNs(1));
    EXPECT_NEAR(static_cast<double>(w.medianLatency()),
                static_cast<double>(usToNs(50)),
                static_cast<double>(usToNs(2)));
    // Nearest rank: ceil(0.99 * 100) = 99 -> the 99th smallest.
    EXPECT_EQ(w.tailLatency(), usToNs(99));
}

TEST(RequestWindow, MeanService)
{
    RequestStatsWindow w(secToNs(10));
    w.onCompletion(1, 1, usToNs(10));
    w.onCompletion(2, 1, usToNs(30));
    EXPECT_NEAR(w.meanServiceNs(), static_cast<double>(usToNs(20)), 1.0);
}

TEST(RequestWindow, EmptyWindowDefaults)
{
    RequestStatsWindow w;
    EXPECT_EQ(w.medianLatency(), 0u);
    EXPECT_EQ(w.tailLatency(), 0u);
    EXPECT_DOUBLE_EQ(w.throughputRps(secToNs(1)), 0.0);
    EXPECT_TRUE(std::isinf(w.tailIndex()));
}

} // namespace
} // namespace preempt
