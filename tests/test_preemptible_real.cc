/**
 * @file
 * Tests for the real host runtime: fcontext switching, the stack pool,
 * preemptible functions with actual signal-delivered preemption, and
 * LibUtimer.
 *
 * Timing assertions are deliberately loose: this host may have a
 * single CPU shared with the timer thread, so quanta are milliseconds
 * and deadlines are checked within generous bounds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include <cerrno>

#include "preemptible/fcontext.hh"
#include "preemptible/hosttime.hh"
#include "preemptible/preemptible_fn.hh"
#include "preemptible/stack_pool.hh"
#include "preemptible/utimer.hh"

namespace preempt::runtime {
namespace {

using fcontext::preempt_jump_fcontext;
using fcontext::preempt_make_fcontext;

// ----- fcontext ------------------------------------------------------

int g_entry_hits = 0;

void
simpleEntry(fcontext::Transfer t)
{
    ++g_entry_hits;
    // Pass a recognizable value back.
    fcontext::Transfer r = preempt_jump_fcontext(
        t.fctx, reinterpret_cast<void *>(0x1234));
    ++g_entry_hits;
    preempt_jump_fcontext(r.fctx, reinterpret_cast<void *>(0x5678));
    FAIL() << "context resumed after final jump";
}

TEST(Fcontext, FastImplementationAvailable)
{
    EXPECT_TRUE(fcontext::haveFastContext());
}

TEST(Fcontext, SymmetricSwitchRoundtrip)
{
    StackPool pool(64 * 1024);
    Stack stack = pool.acquire();
    g_entry_hits = 0;
    fcontext::Context ctx =
        preempt_make_fcontext(stack.top(), stack.usable(), &simpleEntry);

    fcontext::Transfer t = preempt_jump_fcontext(ctx, nullptr);
    EXPECT_EQ(g_entry_hits, 1);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data), 0x1234u);

    t = preempt_jump_fcontext(t.fctx, nullptr);
    EXPECT_EQ(g_entry_hits, 2);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data), 0x5678u);
    pool.release(stack);
}

void
counterEntry(fcontext::Transfer t)
{
    // Stress callee-saved registers across many switches.
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    fcontext::Context back = t.fctx;
    for (;;) {
        a += b;
        b += c;
        c += d;
        d += a;
        fcontext::Transfer r = preempt_jump_fcontext(
            back, reinterpret_cast<void *>(a ^ b ^ c ^ d));
        back = r.fctx;
    }
}

TEST(Fcontext, RegistersSurviveManySwitches)
{
    StackPool pool(64 * 1024);
    Stack stack = pool.acquire();
    fcontext::Context ctx =
        preempt_make_fcontext(stack.top(), stack.usable(), &counterEntry);

    // Reference run of the same recurrence.
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    fcontext::Context cur = ctx;
    for (int i = 0; i < 1000; ++i) {
        a += b;
        b += c;
        c += d;
        d += a;
        fcontext::Transfer t = preempt_jump_fcontext(cur, nullptr);
        ASSERT_EQ(reinterpret_cast<std::uint64_t>(t.data), a ^ b ^ c ^ d);
        cur = t.fctx;
    }
    pool.release(stack);
}

// ----- stack pool ------------------------------------------------------

TEST(StackPool, AcquireProvidesUsableMemory)
{
    StackPool pool(32 * 1024);
    Stack s = pool.acquire();
    ASSERT_TRUE(s.valid());
    EXPECT_GE(s.usable(), 32u * 1024);
    // Touch the whole usable range (the guard page is below it).
    char *base = static_cast<char *>(s.top()) - s.usable();
    for (std::size_t i = 0; i < s.usable(); i += 512)
        base[i] = static_cast<char>(i);
    pool.release(s);
}

TEST(StackPool, RecyclesStacks)
{
    StackPool pool(16 * 1024);
    Stack a = pool.acquire();
    void *top = a.top();
    pool.release(a);
    EXPECT_EQ(pool.freeCount(), 1u);
    Stack b = pool.acquire();
    EXPECT_EQ(b.top(), top) << "freed stack should be reused";
    EXPECT_EQ(pool.freeCount(), 0u);
    EXPECT_EQ(pool.totalAllocated(), 1u);
    pool.release(b);
}

TEST(StackPool, DistinctStacksDoNotOverlap)
{
    StackPool pool(16 * 1024);
    Stack a = pool.acquire();
    Stack b = pool.acquire();
    EXPECT_NE(a.top(), b.top());
    pool.release(a);
    pool.release(b);
}

// ----- real preemptible functions -------------------------------------

/** Shared timer for every test in this binary. */
UTimer &
testTimer()
{
    static UTimer timer;
    static bool inited = false;
    if (!inited) {
        UTimer::Options opt;
        opt.idleSleep = usToNs(200);
        timer.init(opt);
        inited = true;
    }
    return timer;
}

struct WorkerGuard
{
    WorkerGuard()
    {
        if (!currentWorker())
            workerInit(testTimer());
    }
};

TEST(PreemptibleFn, CompletesShortFunction)
{
    WorkerGuard guard;
    int x = 0;
    PreemptibleFn fn([&] { x = 7; });
    EXPECT_EQ(fn.state(), FnState::Fresh);
    FnStatus s = fn_launch(fn, msToNs(100));
    EXPECT_EQ(s, FnStatus::Completed);
    EXPECT_EQ(x, 7);
    EXPECT_TRUE(fn_completed(fn));
    EXPECT_EQ(fn.preemptions(), 0);
}

TEST(PreemptibleFn, PreemptsSpinLoop)
{
    WorkerGuard guard;
    std::atomic<bool> stop{false};
    PreemptibleFn fn([&] {
        while (!stop.load(std::memory_order_relaxed)) {
        }
    });
    TimeNs t0 = hostNowNs();
    FnStatus s = fn_launch(fn, msToNs(5));
    TimeNs elapsed = hostNowNs() - t0;
    EXPECT_EQ(s, FnStatus::Preempted);
    EXPECT_EQ(fn.state(), FnState::Preempted);
    EXPECT_EQ(fn.preemptions(), 1);
    // Preemption happened: the spin loop did not run forever, and the
    // slice is within a loose multiple of the deadline.
    EXPECT_LT(elapsed, msToNs(2000));

    // Resume and let it finish.
    stop.store(true);
    EXPECT_EQ(fn_resume(fn, msToNs(100)), FnStatus::Completed);
    EXPECT_TRUE(fn_completed(fn));
}

TEST(PreemptibleFn, SurvivesManyPreemptions)
{
    WorkerGuard guard;
    std::atomic<bool> stop{false};
    // Local state must survive repeated preempt/resume cycles.
    std::uint64_t iterations = 0;
    PreemptibleFn fn([&] {
        std::uint64_t local = 0;
        while (!stop.load(std::memory_order_relaxed))
            iterations = ++local;
    });
    FnStatus s = fn_launch(fn, msToNs(2));
    int rounds = 1;
    while (s == FnStatus::Preempted && rounds < 6) {
        s = fn_resume(fn, msToNs(2));
        ++rounds;
        if (rounds == 5)
            stop.store(true);
    }
    if (s != FnStatus::Completed)
        s = fn_resume(fn, msToNs(500));
    EXPECT_EQ(s, FnStatus::Completed);
    EXPECT_GT(iterations, 0u);
    EXPECT_GE(fn.preemptions(), 2);
}

TEST(PreemptibleFn, YieldReturnsControl)
{
    WorkerGuard guard;
    int stage = 0;
    PreemptibleFn fn([&] {
        stage = 1;
        fn_yield();
        stage = 2;
        fn_yield();
        stage = 3;
    });
    EXPECT_EQ(fn_launch(fn, 0), FnStatus::Yielded);
    EXPECT_EQ(stage, 1);
    EXPECT_EQ(fn_resume(fn, 0), FnStatus::Yielded);
    EXPECT_EQ(stage, 2);
    EXPECT_EQ(fn_resume(fn, 0), FnStatus::Completed);
    EXPECT_EQ(stage, 3);
}

TEST(PreemptibleFn, ResetReusesObject)
{
    WorkerGuard guard;
    int first = 0, second = 0;
    PreemptibleFn fn([&] { first = 1; });
    fn_launch(fn, 0);
    EXPECT_TRUE(fn_completed(fn));
    fn.reset([&] { second = 2; });
    EXPECT_EQ(fn.state(), FnState::Fresh);
    EXPECT_EQ(fn_launch(fn, 0), FnStatus::Completed);
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 2);
}

TEST(PreemptibleFn, StackRecycledAfterCompletion)
{
    WorkerGuard guard;
    std::size_t free_before = fnStackPool().freeCount();
    {
        PreemptibleFn fn([] {});
        fn_launch(fn, 0);
    }
    // The completed function returned its stack to the pool.
    EXPECT_GE(fnStackPool().freeCount(), free_before);
}

TEST(PreemptibleFn, MigratesAcrossWorkerThreads)
{
    WorkerGuard guard;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> progress{0};
    PreemptibleFn fn([&] {
        while (!stop.load(std::memory_order_relaxed))
            progress.fetch_add(1, std::memory_order_relaxed);
    });
    // Preempt on this thread...
    ASSERT_EQ(fn_launch(fn, msToNs(3)), FnStatus::Preempted);
    std::uint64_t p1 = progress.load();

    // ...resume on a different worker thread.
    FnStatus final_status = FnStatus::Preempted;
    std::thread other([&] {
        workerInit(testTimer());
        FnStatus s = fn_resume(fn, msToNs(3));
        while (s == FnStatus::Preempted) {
            stop.store(true);
            s = fn_resume(fn, msToNs(200));
        }
        stop.store(true);
        final_status = s;
        workerShutdown();
    });
    other.join();
    EXPECT_EQ(final_status, FnStatus::Completed);
    EXPECT_GT(progress.load(), p1);
}

TEST(PreemptibleFn, WorkerStatsAccumulate)
{
    WorkerGuard guard;
    WorkerContext *w = currentWorker();
    ASSERT_NE(w, nullptr);
    std::uint64_t completions_before = w->completions;
    PreemptibleFn fn([] {});
    fn_launch(fn, 0);
    EXPECT_EQ(w->completions, completions_before + 1);
}

// ----- LibUtimer (real) -------------------------------------------------

TEST(UTimerReal, FiresArmedDeadline)
{
    UTimer &timer = testTimer();
    // SIGURG's default action is ignore, so a bare slot (no worker
    // context) can absorb the notification safely.
    DeadlineSlot *slot = timer.registerThread();
    std::uint64_t fires_before = slot->fires.load();
    UTimer::armDeadline(slot, hostNowNs() + msToNs(2));
    TimeNs deadline_wait = hostNowNs() + secToNs(5);
    while (slot->fires.load() == fires_before && hostNowNs() < deadline_wait)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(slot->fires.load(), fires_before + 1);
    // The claimed deadline resets to never (fires exactly once).
    EXPECT_EQ(slot->deadline.load(), kTimeNever);
    timer.unregisterThread(slot);
}

TEST(UTimerReal, DisarmPreventsFire)
{
    UTimer &timer = testTimer();
    DeadlineSlot *slot = timer.registerThread();
    std::uint64_t fires_before = slot->fires.load();
    UTimer::armDeadline(slot, hostNowNs() + msToNs(50));
    UTimer::disarm(slot);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_EQ(slot->fires.load(), fires_before);
    timer.unregisterThread(slot);
}

TEST(UTimerReal, SlotsAreCacheLineAligned)
{
    UTimer &timer = testTimer();
    DeadlineSlot *slot = timer.registerThread();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(slot) % 64, 0u);
    timer.unregisterThread(slot);
}

TEST(UTimerReal, SlotsRecycleAfterUnregister)
{
    UTimer &timer = testTimer();
    DeadlineSlot *a = timer.registerThread();
    timer.unregisterThread(a);
    DeadlineSlot *b = timer.registerThread();
    EXPECT_EQ(a, b);
    timer.unregisterThread(b);
}

TEST(PreemptibleFn, CancelDiscardsPreemptedFunction)
{
    WorkerGuard guard;
    std::atomic<bool> stop{false};
    std::size_t free_before = fnStackPool().freeCount();
    PreemptibleFn fn([&] {
        while (!stop.load(std::memory_order_relaxed)) {
        }
    });
    ASSERT_EQ(fn_launch(fn, msToNs(3)), FnStatus::Preempted);
    fn_cancel(fn);
    EXPECT_EQ(fn.state(), FnState::Cancelled);
    // The stack returned to the pool despite the abandoned frames.
    EXPECT_GT(fnStackPool().freeCount() + 1, free_before);
    // A cancelled function can be rebound and reused.
    int ran = 0;
    fn.reset([&] { ran = 1; });
    EXPECT_EQ(fn_launch(fn, 0), FnStatus::Completed);
    EXPECT_EQ(ran, 1);
}

TEST(PreemptibleFn, CancelRequiresPreempted)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "fork-based death test deadlocks under TSan while "
                    "the timer thread is live";
#endif
    WorkerGuard guard;
    PreemptibleFn fn([] {});
    fn_launch(fn, 0);
    ASSERT_TRUE(fn_completed(fn));
    EXPECT_EXIT(fn_cancel(fn), testing::ExitedWithCode(1),
                "requires a Preempted");
}

TEST(PreemptibleFn, ErrnoSurvivesPreemption)
{
    WorkerGuard guard;
    std::atomic<bool> stop{false};
    bool errno_ok = true;
    PreemptibleFn fn([&] {
        errno = 1234;
        // Spin long enough to guarantee at least one preemption.
        while (!stop.load(std::memory_order_relaxed)) {
            if (errno != 1234)
                errno_ok = false;
        }
    });
    FnStatus s = fn_launch(fn, msToNs(3));
    EXPECT_EQ(s, FnStatus::Preempted);
    stop.store(true);
    while (s == FnStatus::Preempted)
        s = fn_resume(fn, msToNs(100));
    EXPECT_EQ(s, FnStatus::Completed);
    EXPECT_TRUE(errno_ok) << "errno was clobbered across a preemption";
}

TEST(UTimerReal, ScansProgress)
{
    UTimer &timer = testTimer();
    std::uint64_t s0 = timer.scans();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_GT(timer.scans(), s0);
}

} // namespace
} // namespace preempt::runtime
