/**
 * @file
 * Tests for the live telemetry publisher (obs/telemetry.hh): torn-read
 * safety of snapshot() under concurrent publishing (checksum hammer),
 * registry snapshot consistency under concurrent mutation, TimerMetric
 * quantiles after cross-thread absorb, rate/watermark derivation,
 * sampler registration, the Prometheus/JSON renderings, the loopback
 * HTTP listener, and the SIGUSR2/file-dump fallback.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/spans.hh"
#include "obs/telemetry.hh"

#ifndef PREEMPT_OBS_DISABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace preempt {
namespace {

using obs::MetricsRegistry;
using obs::SpanCollector;
using obs::TelemetryPublisher;
using obs::TelemetrySnapshot;

TelemetryPublisher::Options
fastOptions()
{
    TelemetryPublisher::Options opt;
    opt.interval = msToNs(5);
    return opt;
}

// ----- snapshot integrity -------------------------------------------

TEST(Telemetry, SnapshotBeforeFirstTickIsEmptyButValid)
{
    MetricsRegistry reg;
    TelemetryPublisher pub(&reg, nullptr, fastOptions());
    TelemetrySnapshot snap = pub.snapshot();
    EXPECT_EQ(snap.seq, 0u);
    EXPECT_TRUE(snap.counters.empty());
}

TEST(Telemetry, TickPublishesAndChecksumMatches)
{
    MetricsRegistry reg;
    reg.counter("a.count").add(3);
    reg.gauge("a.depth").set(7);
    reg.timer("a.lat").record(100);
    TelemetryPublisher pub(&reg, nullptr, fastOptions());
    pub.tickNow();
    TelemetrySnapshot snap = pub.snapshot();
    EXPECT_EQ(snap.seq, 1u);
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].name, "a.count");
    EXPECT_EQ(snap.counters[0].value, 3u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].value, 7);
    ASSERT_EQ(snap.timers.size(), 1u);
    EXPECT_EQ(snap.timers[0].count, 1u);
    EXPECT_EQ(snap.checksum, snap.computeChecksum());
}

/** The ISSUE's torn-read criterion: readers hammering snapshot()
 *  while the writer publishes must never observe a mix of two
 *  snapshots. The checksum covers every field, so any tear shows. */
TEST(Telemetry, ConcurrentSnapshotsNeverTear)
{
    MetricsRegistry reg;
    obs::Counter &c = reg.counter("hammer.ops");
    obs::Gauge &g = reg.gauge("hammer.depth");
    obs::TimerMetric &t = reg.timer("hammer.lat");
    TelemetryPublisher pub(&reg, nullptr, fastOptions());

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> torn{0}, reads{0}, regressions{0};
    std::thread writer([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            c.add(3);
            g.set(static_cast<std::int64_t>(reads.load()));
            t.record(42);
            pub.tickNow();
        }
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 4; ++r) {
        readers.emplace_back([&] {
            std::uint64_t lastSeq = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                TelemetrySnapshot snap = pub.snapshot();
                reads.fetch_add(1, std::memory_order_relaxed);
                if (snap.checksum != snap.computeChecksum())
                    torn.fetch_add(1);
                if (snap.seq < lastSeq)
                    regressions.fetch_add(1);
                lastSeq = snap.seq;
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
    writer.join();
    for (auto &th : readers)
        th.join();
    EXPECT_EQ(torn.load(), 0u);
    EXPECT_EQ(regressions.load(), 0u);
    EXPECT_GT(reads.load(), 100u);
    EXPECT_GT(pub.published(), 10u);
}

/** Registry snapshots taken mid-mutation must be internally sane and
 *  the final snapshot exact — no lost or torn counter updates. */
TEST(Telemetry, RegistrySnapshotUnderConcurrentMutation)
{
    MetricsRegistry reg;
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 200000;
    obs::Counter &c = reg.counter("mut.count");
    std::atomic<bool> go{false};
    std::vector<std::thread> writers;
    for (int i = 0; i < kThreads; ++i) {
        writers.emplace_back([&] {
            while (!go.load()) {
            }
            for (std::uint64_t n = 0; n < kPerThread; ++n)
                c.add();
        });
    }
    go.store(true);
    std::uint64_t last = 0;
    for (int i = 0; i < 50; ++i) {
        obs::MetricsSnapshot snap = reg.snapshotValues();
        ASSERT_EQ(snap.counters.size(), 1u);
        // Monotonic: concurrent snapshots never go backwards.
        EXPECT_GE(snap.counters[0].second, last);
        last = snap.counters[0].second;
    }
    for (auto &t : writers)
        t.join();
    EXPECT_EQ(reg.snapshotValues().counters[0].second,
              kThreads * kPerThread);
}

/** Cross-thread absorb (the parallel harness path) must preserve
 *  timer quantiles: merged per-cell histograms == one big recording. */
TEST(Telemetry, TimerQuantilesSurviveCrossThreadAbsorb)
{
    MetricsRegistry combined, reference;
    constexpr int kCells = 4;
    std::vector<MetricsRegistry> cells(kCells);
    std::vector<std::thread> threads;
    for (int i = 0; i < kCells; ++i) {
        threads.emplace_back([&, i] {
            obs::TimerMetric &t = cells[i].timer("abs.lat");
            for (std::uint64_t v = 1; v <= 1000; ++v)
                t.record(v * 1000 + static_cast<std::uint64_t>(i));
        });
    }
    for (auto &t : threads)
        t.join();
    for (int i = 0; i < kCells; ++i)
        combined.absorb(cells[i]);
    for (int i = 0; i < kCells; ++i)
        for (std::uint64_t v = 1; v <= 1000; ++v)
            reference.timer("abs.lat").record(
                v * 1000 + static_cast<std::uint64_t>(i));

    LatencyHistogram got = combined.timer("abs.lat").histogram();
    LatencyHistogram want = reference.timer("abs.lat").histogram();
    EXPECT_EQ(got.count(), want.count());
    EXPECT_EQ(got.p50(), want.p50());
    EXPECT_EQ(got.p90(), want.p90());
    EXPECT_EQ(got.p99(), want.p99());
    EXPECT_EQ(got.p999(), want.p999());
    EXPECT_EQ(got.min(), want.min());
    EXPECT_EQ(got.max(), want.max());
}

// ----- rates, watermarks, samplers ----------------------------------

TEST(Telemetry, RatesAndWatermarksDeriveAcrossTicks)
{
    MetricsRegistry reg;
    obs::Counter &c = reg.counter("rw.ops");
    obs::Gauge &g = reg.gauge("rw.depth");
    TelemetryPublisher pub(&reg, nullptr, fastOptions());
    c.add(10);
    g.set(50);
    pub.tickNow();
    c.add(90);
    g.set(20);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pub.tickNow();
    TelemetrySnapshot snap = pub.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].value, 100u);
    EXPECT_GT(snap.counters[0].ratePerSec, 0.0);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].value, 20);
    EXPECT_EQ(snap.gauges[0].watermark, 50); // high-water retained
}

TEST(Telemetry, SamplersRunPerTickAndUnregisterStops)
{
    MetricsRegistry reg;
    TelemetryPublisher pub(&reg, nullptr, fastOptions());
    std::atomic<int> calls{0};
    std::uint64_t id = obs::registerTelemetrySampler(
        [&](MetricsRegistry &r) {
            calls.fetch_add(1);
            r.gauge("sampled.value").set(calls.load());
        });
    pub.tickNow();
    EXPECT_EQ(calls.load(), 1);
    TelemetrySnapshot snap = pub.snapshot();
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].name, "sampled.value");
    obs::unregisterTelemetrySampler(id);
    pub.tickNow();
    EXPECT_EQ(calls.load(), 1);
}

// ----- stat tracker -------------------------------------------------

TEST(StatTracker, FirstSightingHasNoRate)
{
    obs::StatTracker tr(4);
    tr.beginTick(1'000'000'000);
    obs::StatTracker::CounterStats s = tr.counter("c", 100);
    EXPECT_DOUBLE_EQ(s.ratePerSec, 0.0);
    EXPECT_DOUBLE_EQ(s.windowRatePerSec, 0.0);
    EXPECT_EQ(s.resets, 0u);
    tr.endTick();
    EXPECT_EQ(tr.trackedCounters(), 1u);
}

TEST(StatTracker, IntervalAndWindowRatesDiffer)
{
    obs::StatTracker tr(4);
    tr.beginTick(1'000'000'000);
    tr.counter("c", 100);
    tr.endTick();
    tr.beginTick(2'000'000'000);
    obs::StatTracker::CounterStats s = tr.counter("c", 300);
    EXPECT_DOUBLE_EQ(s.ratePerSec, 200.0);
    EXPECT_DOUBLE_EQ(s.windowRatePerSec, 200.0);
    tr.endTick();
    tr.beginTick(3'000'000'000);
    s = tr.counter("c", 400);
    // Last interval: 100/s. Window (2 s, +300): 150/s.
    EXPECT_DOUBLE_EQ(s.ratePerSec, 100.0);
    EXPECT_DOUBLE_EQ(s.windowRatePerSec, 150.0);
    tr.endTick();
}

TEST(StatTracker, CounterResetIsCountedAndRebasesRates)
{
    obs::StatTracker tr(4);
    tr.beginTick(1'000'000'000);
    tr.counter("c", 100000);
    tr.endTick();
    // Source restarted: the value collapses below the previous sample.
    tr.beginTick(2'000'000'000);
    obs::StatTracker::CounterStats s = tr.counter("c", 50);
    EXPECT_EQ(s.resets, 1u);
    // The old honest-zero behaviour reported rate 0 here; re-basing on
    // the post-reset value reports the actual post-restart traffic.
    EXPECT_DOUBLE_EQ(s.ratePerSec, 50.0);
    EXPECT_DOUBLE_EQ(s.windowRatePerSec, 50.0);
    tr.endTick();
    // Post-reset deltas accumulate normally again.
    tr.beginTick(3'000'000'000);
    s = tr.counter("c", 150);
    EXPECT_EQ(s.resets, 1u);
    EXPECT_DOUBLE_EQ(s.ratePerSec, 100.0);
    EXPECT_DOUBLE_EQ(s.windowRatePerSec, 75.0);
    tr.endTick();
}

TEST(StatTracker, DisappearedMetricsAreDroppedAndRestartFresh)
{
    obs::StatTracker tr(4);
    tr.beginTick(1'000'000'000);
    tr.counter("a", 10);
    tr.counter("b", 99);
    tr.gauge("g", 7);
    tr.endTick();
    EXPECT_EQ(tr.trackedCounters(), 2u);
    EXPECT_EQ(tr.trackedGauges(), 1u);
    tr.beginTick(2'000'000'000);
    tr.counter("a", 20);
    tr.endTick();
    // "b" and "g" were not observed: their state must be dropped.
    EXPECT_EQ(tr.trackedCounters(), 1u);
    EXPECT_EQ(tr.trackedGauges(), 0u);
    // A reappearing name starts fresh — no phantom reset or rate from
    // the old incarnation.
    tr.beginTick(3'000'000'000);
    obs::StatTracker::CounterStats s = tr.counter("b", 5);
    EXPECT_EQ(s.resets, 0u);
    EXPECT_DOUBLE_EQ(s.ratePerSec, 0.0);
    tr.endTick();
}

TEST(StatTracker, ManyMetricsSurviveChurn)
{
    // The former publisher rescanned a cleared vector per counter —
    // O(n^2) and rate-blind to churn order. The keyed tracker must
    // keep exact rates for the stable names while half the metric set
    // appears and disappears each tick.
    constexpr int kStable = 200, kChurn = 200;
    obs::StatTracker tr(4);
    for (std::uint64_t tick = 1; tick <= 10; ++tick) {
        tr.beginTick(tick * 1'000'000'000ULL);
        for (int i = 0; i < kStable; ++i) {
            obs::StatTracker::CounterStats s = tr.counter(
                "stable." + std::to_string(i), tick * 100);
            if (tick > 1)
                EXPECT_DOUBLE_EQ(s.ratePerSec, 100.0)
                    << "stable." << i << " at tick " << tick;
        }
        for (int i = 0; i < kChurn; ++i) {
            // Only half the churn set exists on any given tick.
            if ((static_cast<std::uint64_t>(i) + tick) % 2 == 0)
                tr.counter("churn." + std::to_string(i), tick);
        }
        tr.endTick();
        EXPECT_EQ(tr.trackedCounters(),
                  static_cast<std::size_t>(kStable + kChurn / 2));
    }
}

TEST(StatTracker, WindowWatermarkDecaysAfterBurstLeavesWindow)
{
    obs::StatTracker tr(2);
    tr.beginTick(1'000'000'000);
    obs::StatTracker::GaugeStats s = tr.gauge("g", 100);
    EXPECT_EQ(s.watermark, 100);
    EXPECT_EQ(s.windowWatermark, 100);
    tr.endTick();
    tr.beginTick(2'000'000'000);
    s = tr.gauge("g", 5);
    // Burst still inside the 2-tick window.
    EXPECT_EQ(s.watermark, 100);
    EXPECT_EQ(s.windowWatermark, 100);
    tr.endTick();
    tr.beginTick(3'000'000'000);
    s = tr.gauge("g", 7);
    // Burst left the window: the window watermark decays, the
    // lifetime one never does.
    EXPECT_EQ(s.watermark, 100);
    EXPECT_EQ(s.windowWatermark, 7);
    tr.endTick();
}

// ----- sliding windows through the publisher ------------------------

TEST(TelemetryWindow, EpochCountDerivesFromInterval)
{
    MetricsRegistry reg;
    TelemetryPublisher::Options opt = fastOptions(); // 5 ms interval
    opt.window = msToNs(15);
    TelemetryPublisher pub(&reg, nullptr, opt);
    EXPECT_EQ(pub.windowEpochs(), 3u);
    TelemetryPublisher::Options def = fastOptions(); // default window
    TelemetryPublisher pub2(&reg, nullptr, def);
    EXPECT_EQ(pub2.windowEpochs(), 10u);
}

TEST(TelemetryWindow, QuantilesTrackLoadShiftWhileLifetimeBlends)
{
    MetricsRegistry reg;
    obs::TimerMetric &t = reg.timer("shift.lat");
    TelemetryPublisher::Options opt = fastOptions();
    opt.window = msToNs(15); // K = 3 epochs
    TelemetryPublisher pub(&reg, nullptr, opt);

    for (int e = 0; e < 10; ++e) { // long low-latency phase
        for (int i = 0; i < 1000; ++i)
            t.record(1000);
        pub.tickNow();
    }
    for (int e = 0; e < 3; ++e) { // one full window of high latency
        for (int i = 0; i < 1000; ++i)
            t.record(1000000);
        pub.tickNow();
    }
    TelemetrySnapshot snap = pub.snapshot();
    ASSERT_EQ(snap.timers.size(), 1u);
    ASSERT_TRUE(snap.timers[0].windowed);
    EXPECT_EQ(snap.windowEpochs, 3u);
    // The window converged to the new phase within K ticks...
    EXPECT_GT(snap.timers[0].window.p50, 500000u);
    EXPECT_LE(snap.timers[0].window.count, snap.timers[0].count);
    // ...while the lifetime median still sits in the old phase
    // (10k low samples vs 3k high ones).
    EXPECT_LT(snap.timers[0].p50, 2000u);
    EXPECT_EQ(snap.checksum, snap.computeChecksum());
}

TEST(TelemetryWindow, SpanWindowsFollowRecentTenantTraffic)
{
    SpanCollector spans;
    TelemetryPublisher::Options opt = fastOptions();
    opt.window = msToNs(10); // K = 2 epochs
    TelemetryPublisher pub(nullptr, &spans, opt);

    auto lifecycle = [&](std::uint64_t id, std::uint64_t start,
                         std::uint64_t dur) {
        spans.onEvent(obs::EventKind::TaskSubmit, 0, start, id, 0, 3);
        spans.onEvent(obs::EventKind::Launch, 0, start + 1, id, 0, 0);
        spans.onEvent(obs::EventKind::Complete, 0, start + dur, id, 0,
                      0);
    };
    lifecycle(1, 0, 100);
    pub.tickNow();
    pub.tickNow();
    pub.tickNow(); // first span has rotated out of the 2-epoch window
    lifecycle(2, 1000, 5000);
    pub.tickNow();
    TelemetrySnapshot snap = pub.snapshot();
    ASSERT_EQ(snap.spans.size(), 1u);
    EXPECT_EQ(snap.spans[0].completed, 2u);
    // Lifetime covers both spans; the window only the recent one.
    EXPECT_EQ(snap.spans[0].total.count, 2u);
    EXPECT_EQ(snap.spans[0].window.completed, 1u);
    EXPECT_EQ(snap.spans[0].window.total.count, 1u);
    EXPECT_GT(snap.spans[0].window.total.p50, 1000u);
}

TEST(TelemetryWindow, RenderingsExposeWindowSeries)
{
    MetricsRegistry reg;
    reg.counter("w.ops").add(50);
    reg.gauge("w.depth").set(9);
    reg.timer("w.lat").record(777);
    SpanCollector spans;
    spans.onEvent(obs::EventKind::TaskSubmit, 0, 0, 1, 0, 2);
    spans.onEvent(obs::EventKind::Launch, 0, 5, 1, 0, 0);
    spans.onEvent(obs::EventKind::Complete, 0, 9, 1, 0, 0);
    TelemetryPublisher pub(&reg, &spans, fastOptions());
    pub.tickNow();
    pub.tickNow();
    TelemetrySnapshot snap = pub.snapshot();
    EXPECT_GT(snap.windowSec, 0.0);

    std::string prom = obs::renderPrometheus(snap);
    for (const char *series :
         {"preempt_telemetry_window_seconds",
          "preempt_w_ops_rate_window", "preempt_w_ops_resets_total",
          "preempt_w_depth_watermark_window", "preempt_w_lat_window",
          "preempt_spans_total_ns_window",
          "preempt_spans_completed_window"})
        EXPECT_NE(prom.find(series), std::string::npos)
            << "missing " << series << "\n"
            << prom;

    std::string json = obs::renderTelemetryJson(snap);
    std::string err;
    EXPECT_TRUE(obs::validateJson(json, &err)) << err << "\n" << json;
    for (const char *field :
         {"\"window_sec\"", "\"window_epochs\"",
          "\"window_rate_per_sec\"", "\"resets\"",
          "\"window_watermark\"", "\"window\""})
        EXPECT_NE(json.find(field), std::string::npos)
            << "missing " << field << "\n"
            << json;
}

// ----- renderings ---------------------------------------------------

TEST(Telemetry, PrometheusRenderingExposesEverySeries)
{
    MetricsRegistry reg;
    reg.counter("runtime.submitted").add(5);
    reg.gauge("runtime.worker.deque_depth/w2").set(3);
    reg.gauge("runtime.worker.deque_depth/t4.w0").set(1);
    reg.timer("utimer.delivery_ns/core1").record(900);
    SpanCollector spans;
    spans.onEvent(obs::EventKind::TaskSubmit, 0, 0, 1, 0, 6);
    spans.onEvent(obs::EventKind::Launch, 0, 10, 1, 0, 0);
    spans.onEvent(obs::EventKind::Complete, 0, 30, 1, 0, 0);
    TelemetryPublisher pub(&reg, &spans, fastOptions());
    pub.tickNow();
    std::string text = obs::renderPrometheus(pub.snapshot());

    // Counter with _total suffix + derived rate gauge.
    EXPECT_NE(text.find("preempt_runtime_submitted_total 5"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("preempt_runtime_submitted_rate"),
              std::string::npos);
    // Per-worker gauge: "/w2" parsed into a worker label.
    EXPECT_NE(
        text.find(
            "preempt_runtime_worker_deque_depth{worker=\"2\"} 3"),
        std::string::npos)
        << text;
    // Tenant-qualified worker gauge keeps both labels.
    EXPECT_NE(text.find("tenant=\"4\""), std::string::npos);
    // Timer rendered as a summary with quantile labels.
    EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
    // Per-tenant span series.
    EXPECT_NE(
        text.find("preempt_spans_completed_total{tenant=\"6\"} 1"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("preempt_spans_queued_ns"), std::string::npos);
    // Every exposition line is # or name{...} value — no raw dots.
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        auto name = line.substr(0, line.find_first_of("{ "));
        EXPECT_EQ(name.find('.'), std::string::npos)
            << "unsanitized metric name: " << line;
        EXPECT_EQ(name.rfind("preempt_", 0), 0u)
            << "unprefixed metric name: " << line;
    }
}

TEST(Telemetry, JsonRenderingIsValidAndRoundTrips)
{
    MetricsRegistry reg;
    reg.counter("j.count").add(2);
    reg.gauge("j.depth").set(-4); // negative gauges must survive
    reg.timer("j.lat").record(123);
    SpanCollector spans;
    spans.onEvent(obs::EventKind::TaskSubmit, 0, 0, 1, 0, 2);
    spans.onEvent(obs::EventKind::Launch, 0, 5, 1, 0, 0);
    spans.onEvent(obs::EventKind::Complete, 0, 9, 1, 0, 0);
    TelemetryPublisher pub(&reg, &spans, fastOptions());
    pub.tickNow();
    std::string json = obs::renderTelemetryJson(pub.snapshot());
    std::string err;
    EXPECT_TRUE(obs::validateJson(json, &err)) << err << "\n" << json;
    EXPECT_NE(json.find("\"schema\": \"preempt.telemetry.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"j.depth\""), std::string::npos);
    EXPECT_NE(json.find("-4"), std::string::npos);
    EXPECT_NE(json.find("\"tenants\""), std::string::npos);
}

// ----- HTTP listener ------------------------------------------------

/** Minimal loopback HTTP GET; returns the full response. */
std::string
httpGet(int port, const std::string &path)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
    (void)!::send(fd, req.data(), req.size(), 0);
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        out.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return out;
}

TEST(TelemetryHttp, ScrapeMetricsAndJsonAndHealth)
{
    MetricsRegistry reg;
    reg.counter("http.reqs").add(9);
    TelemetryPublisher::Options opt = fastOptions();
    opt.port = 0; // ephemeral
    TelemetryPublisher pub(&reg, nullptr, opt);
    pub.start();
    ASSERT_GT(pub.port(), 0);
    pub.tickNow();

    std::string prom = httpGet(pub.port(), "/metrics");
    EXPECT_NE(prom.find("200 OK"), std::string::npos) << prom;
    EXPECT_NE(prom.find("preempt_http_reqs_total 9"),
              std::string::npos)
        << prom;
    EXPECT_NE(prom.find("preempt_up 1"), std::string::npos);

    std::string json = httpGet(pub.port(), "/metrics.json");
    EXPECT_NE(json.find("200 OK"), std::string::npos);
    auto body = json.find("\r\n\r\n");
    ASSERT_NE(body, std::string::npos);
    std::string err;
    EXPECT_TRUE(obs::validateJson(json.substr(body + 4), &err)) << err;

    std::string health = httpGet(pub.port(), "/healthz");
    EXPECT_NE(health.find("200 OK"), std::string::npos);
    EXPECT_NE(health.find("ok"), std::string::npos);

    std::string missing = httpGet(pub.port(), "/nope");
    EXPECT_NE(missing.find("404"), std::string::npos);
    pub.stop();
}

TEST(TelemetryHttp, BackgroundThreadPublishesWithoutTickNow)
{
    MetricsRegistry reg;
    TelemetryPublisher::Options opt;
    opt.interval = msToNs(5);
    opt.port = 0;
    TelemetryPublisher pub(&reg, nullptr, opt);
    pub.start();
    // The publisher thread must tick on its own.
    for (int i = 0; i < 200 && pub.published() < 3; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GE(pub.published(), 3u);
    pub.stop();
}

// ----- dump fallback ------------------------------------------------

TEST(TelemetryDump, DumpNowWritesValidSnapshotJson)
{
    std::string path = ::testing::TempDir() + "telemetry_dump.json";
    std::remove(path.c_str());
    MetricsRegistry reg;
    reg.counter("d.count").add(1);
    TelemetryPublisher::Options opt = fastOptions();
    opt.dumpPath = path;
    TelemetryPublisher pub(&reg, nullptr, opt);
    pub.start();
    pub.dumpNow();
    pub.stop(); // final tick honours the pending dump
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "no dump at " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    EXPECT_TRUE(obs::validateJson(ss.str(), &err)) << err;
    EXPECT_NE(ss.str().find("\"d.count\""), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace preempt

#else // PREEMPT_OBS_DISABLED

// Telemetry is compiled out; keep one test so the binary still
// registers with ctest, and pin the stub API callers rely on.
TEST(Telemetry, CompiledOutStubsAreCallable)
{
    std::uint64_t id = preempt::obs::registerTelemetrySampler({});
    EXPECT_EQ(id, 0u);
    preempt::obs::unregisterTelemetrySampler(id);
}

#endif // PREEMPT_OBS_DISABLED
