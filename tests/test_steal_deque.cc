/**
 * @file
 * StealDeque: deterministic single-thread semantics plus an
 * owner-vs-thieves conservation stress (no element lost, none taken
 * twice).
 */

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "preemptible/steal_deque.hh"

using preempt::runtime::StealDeque;
using preempt::runtime::StealResult;

namespace {

TEST(StealDeque, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(StealDeque<std::uint64_t>(1).capacity(), 1u);
    EXPECT_EQ(StealDeque<std::uint64_t>(2).capacity(), 2u);
    EXPECT_EQ(StealDeque<std::uint64_t>(3).capacity(), 4u);
    EXPECT_EQ(StealDeque<std::uint64_t>(100).capacity(), 128u);
}

TEST(StealDeque, OwnerPopsLifo)
{
    StealDeque<std::uint64_t> dq(8);
    for (std::uint64_t i = 0; i < 5; ++i)
        ASSERT_TRUE(dq.push(i));
    EXPECT_EQ(dq.size(), 5u);
    std::uint64_t v = 0;
    for (std::uint64_t i = 5; i-- > 0;) {
        ASSERT_TRUE(dq.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(dq.pop(v));
    EXPECT_TRUE(dq.empty());
}

TEST(StealDeque, ThiefStealsFifo)
{
    StealDeque<std::uint64_t> dq(8);
    for (std::uint64_t i = 0; i < 5; ++i)
        ASSERT_TRUE(dq.push(i));
    std::uint64_t v = 0;
    for (std::uint64_t i = 0; i < 5; ++i) {
        ASSERT_EQ(dq.steal(v), StealResult::Ok);
        EXPECT_EQ(v, i);
    }
    EXPECT_EQ(dq.steal(v), StealResult::Empty);
}

TEST(StealDeque, OwnerAndThiefMeetInTheMiddle)
{
    StealDeque<std::uint64_t> dq(8);
    for (std::uint64_t i = 0; i < 4; ++i)
        ASSERT_TRUE(dq.push(i));
    std::uint64_t v = 0;
    ASSERT_EQ(dq.steal(v), StealResult::Ok); // oldest
    EXPECT_EQ(v, 0u);
    ASSERT_TRUE(dq.pop(v)); // newest
    EXPECT_EQ(v, 3u);
    ASSERT_EQ(dq.steal(v), StealResult::Ok);
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(dq.pop(v)); // last element, owner wins unraced
    EXPECT_EQ(v, 2u);
    EXPECT_FALSE(dq.pop(v));
    EXPECT_EQ(dq.steal(v), StealResult::Empty);
}

TEST(StealDeque, PushFailsWhenFullAndRecoversAfterConsuming)
{
    StealDeque<std::uint64_t> dq(4);
    for (std::uint64_t i = 0; i < 4; ++i)
        ASSERT_TRUE(dq.push(i));
    EXPECT_FALSE(dq.push(99));
    std::uint64_t v = 0;
    ASSERT_EQ(dq.steal(v), StealResult::Ok);
    EXPECT_TRUE(dq.push(99)); // slot freed at the top, bottom wraps
    EXPECT_EQ(dq.size(), 4u);
}

TEST(StealDeque, WrapAroundPreservesOrder)
{
    StealDeque<std::uint64_t> dq(4);
    std::uint64_t v = 0;
    // Cycle far past the buffer size so indices wrap many times.
    for (std::uint64_t i = 0; i < 64; ++i) {
        ASSERT_TRUE(dq.push(i));
        if (i % 2 == 0) {
            ASSERT_TRUE(dq.pop(v));
            EXPECT_EQ(v, i);
        } else {
            ASSERT_EQ(dq.steal(v), StealResult::Ok);
        }
    }
    EXPECT_TRUE(dq.empty());
}

TEST(StealDeque, BatchTakesOldestFirstAndStopsAtEmpty)
{
    StealDeque<std::uint64_t> dq(16);
    for (std::uint64_t i = 0; i < 6; ++i)
        ASSERT_TRUE(dq.push(i));
    std::uint64_t out[8] = {};
    StealResult last = StealResult::Ok;
    EXPECT_EQ(dq.stealBatch(out, 4, &last), 4u);
    EXPECT_EQ(last, StealResult::Ok);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(out[i], i);
    EXPECT_EQ(dq.stealBatch(out, 8, &last), 2u);
    EXPECT_EQ(last, StealResult::Empty);
    EXPECT_EQ(out[0], 4u);
    EXPECT_EQ(out[1], 5u);
    EXPECT_EQ(dq.stealBatch(out, 8, &last), 0u);
    EXPECT_EQ(last, StealResult::Empty);
}

/**
 * Conservation under contention: one owner pushing and popping, many
 * thieves stealing. Every pushed value must be consumed exactly once
 * across all parties.
 */
TEST(StealDequeStress, OwnerAndThievesConserveElements)
{
    constexpr std::uint64_t kN = 200000;
    constexpr int kThieves = 3;
    StealDeque<std::uint64_t> dq(1024);

    std::vector<std::atomic<std::uint32_t>> seen(kN);
    std::atomic<bool> ownerDone{false};

    auto consume = [&](std::uint64_t v) {
        ASSERT_LT(v, kN);
        seen[v].fetch_add(1, std::memory_order_relaxed);
    };

    std::vector<std::thread> thieves;
    for (int t = 0; t < kThieves; ++t) {
        thieves.emplace_back([&] {
            std::uint64_t v = 0;
            for (;;) {
                StealResult r = dq.steal(v);
                if (r == StealResult::Ok) {
                    consume(v);
                } else if (ownerDone.load(std::memory_order_acquire) &&
                           r == StealResult::Empty) {
                    // One owner, no more pushes: Empty is final.
                    break;
                }
            }
        });
    }

    std::uint64_t v = 0;
    for (std::uint64_t i = 0; i < kN; ++i) {
        while (!dq.push(i)) {
            if (dq.pop(v))
                consume(v); // full: drain our own bottom
        }
        if ((i & 7) == 0 && dq.pop(v))
            consume(v); // interleave owner pops with pushes
    }
    while (dq.pop(v))
        consume(v);
    ownerDone.store(true, std::memory_order_release);
    for (auto &th : thieves)
        th.join();

    for (std::uint64_t i = 0; i < kN; ++i)
        ASSERT_EQ(seen[i].load(), 1u) << "element " << i;
    EXPECT_TRUE(dq.empty());
}

} // namespace
