/**
 * @file
 * Schedule fuzzing under random fault plans (the tentpole harness):
 * many seeded configurations, each running either a UINTR state-machine
 * op fuzz or a full LibPreemptible workload with a randomly composed
 * `--faults=` plan, checked against the global invariants of DESIGN.md
 * section 9 — no lost tasks, no double dispatch, monotone virtual
 * time, every send delivered-or-accounted, bounded tail degradation.
 * Every assertion message carries the seed and the plan string, so any
 * failure reproduces from its log line alone.
 */

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "fault/fault.hh"
#include "hw/uintr.hh"
#include "obs/export.hh"
#include "obs/trace.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

namespace preempt::fault {
namespace {

struct InjectorGuard
{
    InjectorGuard(const FaultPlan &plan, std::uint64_t seed)
        : inj(plan, seed)
    {
        setInjector(&inj);
    }

    ~InjectorGuard() { setInjector(nullptr); }

    Injector inj;
};

/** Compose a random plan from a candidate rule set: each candidate is
 *  included with probability ~1/2 at a random moderate probability. */
FaultPlan
randomPlan(Rng &pick, const std::vector<std::pair<Action, Site>> &pool,
           double max_prob)
{
    FaultPlan plan;
    for (const auto &[action, site] : pool) {
        if (pick.below(2) == 0)
            continue;
        FaultRule rule;
        rule.action = action;
        rule.site = site;
        rule.probability = 0.02 + (max_prob - 0.02) * pick.uniform();
        rule.param = 0;
        if (action == Action::Delay)
            rule.param = 100 + pick.below(4000);
        else if (action == Action::Slow)
            rule.param = 500 + pick.below(3000);
        plan.rules.push_back(rule);
    }
    return plan;
}

// ----- UINTR state-machine op fuzz ----------------------------------

/**
 * Random op sequences (send / block / unblock / deschedule / resume /
 * CLUI / STUI / uiret) against UintrUnit under random transport fault
 * plans. After the fault window closes, a final set of enabling
 * transitions must drain every parked PIR: no state combination plus
 * fault may strand a request.
 */
class UintrOpFuzz : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(UintrOpFuzz, NoOpSequenceUnderFaultsStrandsThePir)
{
    std::uint64_t seed = GetParam();
    Rng pick(seed);

    const std::vector<std::pair<Action, Site>> pool = {
        {Action::Drop, Site::Uintr},     {Action::Delay, Site::Uintr},
        {Action::Duplicate, Site::Uintr}, {Action::Reorder, Site::Uintr},
        {Action::Drop, Site::Wake},      {Action::Delay, Site::Wake},
        {Action::Duplicate, Site::Wake},
    };
    FaultPlan plan = randomPlan(pick, pool, 0.6);
    std::string ctx = "seed=" + std::to_string(seed) +
                      " plan=" + plan.str();

    sim::Simulator sim(seed * 7919 + 13);
    hw::LatencyConfig cfg;
    hw::UintrUnit unit(sim, cfg);

    int n_rx = 1 + static_cast<int>(pick.below(3));
    std::vector<std::uint64_t> deliveries(
        static_cast<std::size_t>(n_rx), 0);
    std::vector<TimeNs> last_ts(static_cast<std::size_t>(n_rx), 0);
    std::vector<int> senders;
    bool monotone = true;
    bool nonempty_vectors = true;
    for (int i = 0; i < n_rx; ++i) {
        unit.registerHandler(
            [&, i](TimeNs t, std::uint64_t vectors) {
                std::size_t idx = static_cast<std::size_t>(i);
                ++deliveries[idx];
                if (t < last_ts[idx])
                    monotone = false;
                last_ts[idx] = t;
                if (vectors == 0)
                    nonempty_vectors = false;
            },
            [](TimeNs) {});
        senders.push_back(
            unit.registerSender(unit.createFd(i, i % 64)));
    }

    std::uint64_t sends = 0;
    {
        InjectorGuard guard(plan, seed * 31 + 7);
        for (int op = 0; op < 200; ++op) {
            int rx = static_cast<int>(pick.below(
                static_cast<std::uint32_t>(n_rx)));
            switch (pick.below(8)) {
              case 0:
              case 1:
              case 2:
                unit.senduipi(senders[static_cast<std::size_t>(rx)]);
                ++sends;
                break;
              case 3:
                if (!unit.blocked(rx))
                    unit.setBlocked(rx, true);
                break;
              case 4:
                if (unit.blocked(rx))
                    unit.setBlocked(rx, false);
                else
                    unit.setRunning(rx, !unit.running(rx));
                break;
              case 5:
                unit.setUif(rx, pick.below(2) == 0);
                break;
              case 6:
                unit.uiret(rx);
                break;
              case 7:
                sim.runUntil(sim.now() + 1 + pick.below(20000));
                break;
            }
        }
        sim.runUntil(sim.now() + usToNs(200));
    }

    // Fault window over: enabling transitions must recognise every
    // parked request (recovery paths are never fault-injected).
    for (int i = 0; i < n_rx; ++i) {
        if (unit.blocked(i))
            unit.setBlocked(i, false);
        unit.setUif(i, true);
        unit.setRunning(i, true);
    }
    sim.runAll();
    // A delivery can clear UIF again with vectors still posted behind
    // it; a second STUI round drains those.
    for (int i = 0; i < n_rx; ++i) {
        unit.setUif(i, true);
        unit.setRunning(i, true);
    }
    sim.runAll();

    for (int i = 0; i < n_rx; ++i) {
        EXPECT_EQ(unit.pending(i), 0u)
            << ctx << " rx=" << i << " stranded PIR";
    }
    EXPECT_TRUE(monotone) << ctx << " handler timestamps went backwards";
    EXPECT_TRUE(nonempty_vectors) << ctx << " empty-vector delivery";

    // Every send delivered-or-accounted: sends either entered a
    // handler batch, were absorbed into an already-pending PIR, or
    // were explicitly counted as faulted/raced.
    const hw::UintrStats &st = unit.stats();
    std::uint64_t handler_entries = 0;
    for (int i = 0; i < n_rx; ++i)
        handler_entries += deliveries[static_cast<std::size_t>(i)];
    EXPECT_EQ(handler_entries, st.deliveredRunning + st.deliveredBlocked)
        << ctx;
    EXPECT_EQ(st.sends, sends) << ctx;
    EXPECT_LE(st.deliveredRunning + st.deliveredBlocked, st.sends)
        << ctx << " more deliveries than sends (double dispatch)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, UintrOpFuzz,
                         testing::Range<std::uint64_t>(1, 601));

// ----- Full-runtime schedule fuzz -----------------------------------

/**
 * Random LibPreemptible configurations under random utimer/handler (or
 * signal, for the no-UINTR ablation) fault plans: conservation,
 * causality and a bounded tail must survive every plan.
 */
class RuntimeFaultFuzz : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RuntimeFaultFuzz, RandomPlanHoldsGlobalInvariants)
{
    std::uint64_t seed = GetParam();
    Rng pick(seed ^ 0xfa17);

    bool nouintr = pick.below(5) == 0;
    std::vector<std::pair<Action, Site>> pool = {
        {Action::Drop, Site::Utimer},
        {Action::Coalesce, Site::Utimer},
        {Action::Jitter, Site::Utimer},
        {Action::Duplicate, Site::Utimer},
        {Action::Slow, Site::Handler},
    };
    if (nouintr) {
        pool.push_back({Action::Drop, Site::Signal});
        pool.push_back({Action::Delay, Site::Signal});
        pool.push_back({Action::Reorder, Site::Signal});
    }
    FaultPlan plan = randomPlan(pick, pool, 0.3);

    int workers = 1 + static_cast<int>(pick.below(4));
    TimeNs quantum = usToNs(3 + pick.below(20));
    double rps = (0.15 + 0.25 * pick.uniform()) *
                 static_cast<double>(workers) / 5e-6;
    TimeNs duration = msToNs(3 + pick.below(5));

    std::string ctx = "seed=" + std::to_string(seed) +
                      " plan=" + plan.str() +
                      " workers=" + std::to_string(workers) +
                      " quantum=" + std::to_string(quantum) +
                      (nouintr ? " delivery=signal" : " delivery=uintr");

    std::optional<InjectorGuard> guard;
    if (!plan.empty())
        guard.emplace(plan, seed * 131 + 5);

    sim::Simulator sim(seed * 7919 + 13);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = workers;
    rc.quantum = quantum;
    rc.workStealing = pick.below(2) == 1;
    rc.policy = pick.below(2) == 1
                    ? runtime_sim::SchedPolicy::NewFirst
                    : runtime_sim::SchedPolicy::RoundRobin;
    if (nouintr)
        rc.delivery = runtime_sim::TimerDelivery::KernelSignal;
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);

    workload::WorkloadSpec spec{
        workload::makeServiceLaw("A1", duration),
        workload::RateLaw::constant(rps), duration};
    workload::OpenLoopGenerator gen(
        sim, std::move(spec),
        [&](workload::Request &r) { server.onArrival(r); });
    gen.start();
    sim.runUntil(duration + secToNs(30));

    // Monotone virtual time across the whole run.
    EXPECT_GE(sim.now(), duration) << ctx;

    // Conservation: nothing lost, nothing double-finished.
    const auto &m = server.metrics();
    ASSERT_GT(m.arrived(), 50u) << ctx << " rps=" << rps;
    EXPECT_EQ(m.arrived(), m.completed()) << ctx;

    // Causality and no-double-dispatch over the request pool.
    std::vector<TimeNs> lat;
    for (const auto &req : gen.pool()) {
        ASSERT_TRUE(req.done()) << ctx << " request " << req.id;
        ASSERT_EQ(req.remaining, 0u) << ctx << " request " << req.id;
        ASSERT_GE(req.latency() + 2, req.service)
            << ctx << " request " << req.id;
        lat.push_back(req.latency());
    }
    EXPECT_EQ(lat.size(), m.arrived()) << ctx;

    // Bounded tail degradation: faults slow things down, they must not
    // let latency run away (the watchdog bounds every lost fire).
    EXPECT_LT(percentileNearestRank(lat, 0.99), msToNs(500)) << ctx;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeFaultFuzz,
                         testing::Range<std::uint64_t>(1, 451));

// ----- Zero-fault A/B -----------------------------------------------

/** A `--faults=none` run must be byte-identical to one that never
 *  heard of fault injection. */
TEST(ZeroFaultAb, NonePlanLeavesTraceByteIdentical)
{
    auto traced = [](bool parse_none) {
        obs::Tracer tracer;
        obs::setTracer(&tracer);
        // parse("none") gives an empty plan: nothing may be installed,
        // no RNG stream may shift, no event may move.
        FaultPlan plan;
        if (parse_none)
            plan = FaultPlan::parse("none");
        EXPECT_TRUE(plan.empty()) << "none must parse to an empty plan";

        sim::Simulator sim(77);
        hw::LatencyConfig cfg;
        runtime_sim::LibPreemptibleConfig rc;
        rc.nWorkers = 2;
        rc.quantum = usToNs(5);
        runtime_sim::LibPreemptibleSim server(sim, cfg, rc);
        TimeNs duration = msToNs(5);
        workload::WorkloadSpec spec{
            workload::makeServiceLaw("A1", duration),
            workload::RateLaw::constant(100000), duration};
        workload::OpenLoopGenerator gen(
            sim, std::move(spec),
            [&](workload::Request &r) { server.onArrival(r); });
        gen.start();
        sim.runUntil(duration + secToNs(30));
        EXPECT_EQ(server.metrics().arrived(),
                  server.metrics().completed());
        obs::setTracer(nullptr);
        std::ostringstream os;
        obs::writeChromeTrace(tracer, os);
        return os.str();
    };
    std::string baseline = traced(false);
    std::string with_none = traced(true);
#ifndef PREEMPT_OBS_DISABLED
    // With instrumentation compiled out the trace is near-empty but
    // must still be byte-identical.
    EXPECT_GT(baseline.size(), 1000u);
#endif
    EXPECT_EQ(baseline, with_none);
}

} // namespace
} // namespace preempt::fault
