/** @file Tests for the CLI flag parser and the console table. */

#include <gtest/gtest.h>

#include <vector>

#include "common/cli.hh"
#include "common/table.hh"

namespace preempt {
namespace {

CommandLine
makeCli(std::vector<std::string> args)
{
    static std::vector<std::string> storage;
    storage = std::move(args);
    storage.insert(storage.begin(), "prog");
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    return CommandLine(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm)
{
    auto cli = makeCli({"--name=value", "--n=42", "--x=1.5"});
    EXPECT_EQ(cli.getString("name", ""), "value");
    EXPECT_EQ(cli.getInt("n", 0), 42);
    EXPECT_DOUBLE_EQ(cli.getDouble("x", 0), 1.5);
    cli.rejectUnknown();
}

TEST(Cli, SpaceForm)
{
    auto cli = makeCli({"--rate", "100"});
    EXPECT_EQ(cli.getInt("rate", 0), 100);
}

TEST(Cli, DefaultsWhenAbsent)
{
    auto cli = makeCli({});
    EXPECT_EQ(cli.getString("missing", "dflt"), "dflt");
    EXPECT_EQ(cli.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(cli.getDouble("missing", 2.5), 2.5);
    EXPECT_TRUE(cli.getBool("missing", true));
}

TEST(Cli, BareFlagIsTrue)
{
    auto cli = makeCli({"--verbose"});
    EXPECT_TRUE(cli.getBool("verbose", false));
}

TEST(Cli, BoolParses)
{
    auto cli = makeCli({"--a=true", "--b=0", "--c=yes"});
    EXPECT_TRUE(cli.getBool("a", false));
    EXPECT_FALSE(cli.getBool("b", true));
    EXPECT_TRUE(cli.getBool("c", false));
}

TEST(CliDeath, BadIntIsFatal)
{
    auto cli = makeCli({"--n=abc"});
    EXPECT_EXIT(cli.getInt("n", 0), testing::ExitedWithCode(1),
                "expects an integer");
}

TEST(CliDeath, UnknownFlagRejected)
{
    auto cli = makeCli({"--typo=1"});
    EXPECT_EXIT(cli.rejectUnknown(), testing::ExitedWithCode(1),
                "unknown flag --typo");
}

TEST(CliDeath, PositionalArgumentRejected)
{
    EXPECT_EXIT(makeCli({"positional"}), testing::ExitedWithCode(1),
                "unexpected positional");
}

TEST(Table, RendersAlignedColumns)
{
    ConsoleTable t("demo");
    t.header({"a", "long-header"});
    t.row({"1", "2"});
    t.row({"333", "4"});
    std::string out = t.render();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(ConsoleTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(ConsoleTable::num(5, 0), "5");
}

TEST(Table, RowsWithoutHeader)
{
    ConsoleTable t("bare");
    t.row({"x", "y"});
    std::string out = t.render();
    EXPECT_NE(out.find("x"), std::string::npos);
    EXPECT_EQ(out.find("----"), std::string::npos);
}

} // namespace
} // namespace preempt
