/** @file Tests for the IPC mechanism catalogue and ping-pong model. */

#include <gtest/gtest.h>

#include "hw/ipc.hh"

namespace preempt::hw {
namespace {

TEST(IpcCatalogue, ContainsAllTableIvMechanisms)
{
    LatencyConfig cfg;
    auto all = allIpcMechanisms(cfg);
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0].name, "signal");
    EXPECT_EQ(all[4].name, "uintrFd");
    EXPECT_EQ(all[5].name, "uintrFd (blocked)");
    // Kernel mechanisms transit the kernel; UINTR does not.
    EXPECT_TRUE(all[0].viaKernel);
    EXPECT_FALSE(all[4].viaKernel);
}

TEST(IpcPingPong, StatsMatchCalibration)
{
    LatencyConfig cfg;
    auto uintr = ipcMechanism(IpcKind::UintrFd, cfg);
    IpcBenchResult r = runIpcPingPong(uintr, 200000, 1);
    // avg = floor + jitter mean (Table IV: 0.734 us), min >= floor.
    EXPECT_NEAR(r.avgUs, cfg.uintrRunning.expectedNs() / 1e3, 0.03);
    EXPECT_GE(r.minUs, cfg.uintrRunning.floorNs / 1e3 - 1e-9);
    EXPECT_GT(r.rateMsgPerSec, 0.0);
}

TEST(IpcPingPong, UintrBeatsEveryKernelMechanism)
{
    LatencyConfig cfg;
    auto mechs = allIpcMechanisms(cfg);
    double uintr_avg = 0;
    for (const auto &m : mechs) {
        if (m.kind == IpcKind::UintrFd)
            uintr_avg = runIpcPingPong(m, 50000, 2).avgUs;
    }
    for (const auto &m : mechs) {
        if (!m.viaKernel)
            continue;
        double avg = runIpcPingPong(m, 50000, 2).avgUs;
        EXPECT_GT(avg, uintr_avg * 5) << m.name;
    }
}

TEST(IpcPingPong, DeterministicForSeed)
{
    LatencyConfig cfg;
    auto mech = ipcMechanism(IpcKind::Signal, cfg);
    auto a = runIpcPingPong(mech, 10000, 7);
    auto b = runIpcPingPong(mech, 10000, 7);
    EXPECT_DOUBLE_EQ(a.avgUs, b.avgUs);
    EXPECT_DOUBLE_EQ(a.stdUs, b.stdUs);
}

TEST(IpcPingPongDeath, ZeroMessagesFatal)
{
    LatencyConfig cfg;
    auto mech = ipcMechanism(IpcKind::Pipe, cfg);
    EXPECT_EXIT(runIpcPingPong(mech, 0, 1), testing::ExitedWithCode(1),
                "at least one");
}

} // namespace
} // namespace preempt::hw
