/** @file Tests for the Algorithm 1 adaptive time-quantum controller. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/quantum_controller.hh"

namespace preempt::core {
namespace {

QuantumControllerParams
params()
{
    QuantumControllerParams p;
    p.k1 = usToNs(5);
    p.k2 = usToNs(3);
    p.k3 = usToNs(5);
    p.tMin = usToNs(3);
    p.tMax = usToNs(100);
    p.queueThreshold = 32;
    return p;
}

ControlInputs
calmInputs()
{
    ControlInputs in;
    in.loadRps = 0.5e6;
    in.maxLoadRps = 1e6;
    in.maxQueueLen = 0;
    in.tailIndex = std::numeric_limits<double>::infinity();
    return in;
}

TEST(Controller, HighLoadShrinksByK1)
{
    QuantumController c(params(), usToNs(50));
    ControlInputs in = calmInputs();
    in.loadRps = 0.95e6; // above L_high = 0.9
    EXPECT_EQ(c.step(in), usToNs(45));
    EXPECT_EQ(c.shrinks(), 1u);
}

TEST(Controller, HeavyTailShrinksByK2)
{
    QuantumController c(params(), usToNs(50));
    ControlInputs in = calmInputs();
    in.tailIndex = 1.3; // alpha < 2: heavy tail
    EXPECT_EQ(c.step(in), usToNs(47));
}

TEST(Controller, LongQueuesShrinkByK2)
{
    QuantumController c(params(), usToNs(50));
    ControlInputs in = calmInputs();
    in.maxQueueLen = 100; // above Q_threshold
    EXPECT_EQ(c.step(in), usToNs(47));
}

TEST(Controller, LowLoadGrowsByK3)
{
    QuantumController c(params(), usToNs(50));
    ControlInputs in = calmInputs();
    in.loadRps = 0.05e6; // below L_low = 0.1
    EXPECT_EQ(c.step(in), usToNs(55));
    EXPECT_EQ(c.grows(), 1u);
}

// Regression: tailIndex used to default to 0, which read as maximally
// heavy-tailed and forced a shrink on every control period fed
// default-constructed inputs. "Unknown" must mean inf, a no-op.
TEST(Controller, DefaultInputsAreNoOp)
{
    QuantumController c(params(), usToNs(50));
    ControlInputs in; // all defaults: nothing known yet
    EXPECT_TRUE(std::isinf(in.tailIndex));
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(c.step(in), usToNs(50));
    EXPECT_EQ(c.shrinks(), 0u);
    EXPECT_EQ(c.grows(), 0u);
}

TEST(Controller, MidLoadLightTailHoldsSteady)
{
    QuantumController c(params(), usToNs(50));
    EXPECT_EQ(c.step(calmInputs()), usToNs(50));
    EXPECT_EQ(c.shrinks(), 0u);
    EXPECT_EQ(c.grows(), 0u);
}

TEST(Controller, ClampsAtTMin)
{
    QuantumController c(params(), usToNs(5));
    ControlInputs in = calmInputs();
    in.loadRps = 0.99e6;
    in.tailIndex = 0.5;
    // Repeated pressure can never go below T_min.
    for (int i = 0; i < 10; ++i)
        c.step(in);
    EXPECT_EQ(c.quantum(), params().tMin);
}

TEST(Controller, ClampsAtTMax)
{
    QuantumController c(params(), usToNs(98));
    ControlInputs in = calmInputs();
    in.loadRps = 0.01e6;
    for (int i = 0; i < 10; ++i)
        c.step(in);
    EXPECT_EQ(c.quantum(), params().tMax);
}

TEST(Controller, BothTriggersStack)
{
    QuantumController c(params(), usToNs(50));
    ControlInputs in = calmInputs();
    in.loadRps = 0.95e6; // -k1
    in.tailIndex = 1.0;  // -k2
    EXPECT_EQ(c.step(in), usToNs(42));
}

TEST(Controller, InitialQuantumClamped)
{
    QuantumController c(params(), usToNs(1000));
    EXPECT_EQ(c.quantum(), params().tMax);
    QuantumController c2(params(), usToNs(1));
    EXPECT_EQ(c2.quantum(), params().tMin);
}

TEST(Controller, UnknownCapacitySkipsLoadRules)
{
    QuantumController c(params(), usToNs(50));
    ControlInputs in = calmInputs();
    in.maxLoadRps = 0; // capacity unknown
    in.loadRps = 1e9;
    EXPECT_EQ(c.step(in), usToNs(50));
}

TEST(ControllerDeath, InvalidBoundsFatal)
{
    QuantumControllerParams p = params();
    p.tMin = usToNs(200); // tMin > tMax
    EXPECT_EXIT(QuantumController(p, usToNs(50)),
                testing::ExitedWithCode(1), "tMin");
}

// Property: from any start, under sustained heavy-tail pressure the
// controller converges to T_min within a bounded number of periods.
class ControllerConvergence : public testing::TestWithParam<TimeNs>
{
};

TEST_P(ControllerConvergence, ConvergesToTMinUnderPressure)
{
    QuantumController c(params(), GetParam());
    ControlInputs in = calmInputs();
    in.loadRps = 0.95e6;
    in.tailIndex = 0.8;
    int steps = 0;
    while (c.quantum() > params().tMin && steps < 100) {
        c.step(in);
        ++steps;
    }
    EXPECT_EQ(c.quantum(), params().tMin);
    EXPECT_LE(steps, 15);
}

INSTANTIATE_TEST_SUITE_P(StartingQuanta, ControllerConvergence,
                         testing::Values(usToNs(3), usToNs(10), usToNs(50),
                                         usToNs(100)));

} // namespace
} // namespace preempt::core
