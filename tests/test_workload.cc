/** @file Tests for workload specs, generator, and load sweep. */

#include <gtest/gtest.h>

#include <vector>

#include "workload/generator.hh"
#include "workload/loadsweep.hh"
#include "workload/metrics.hh"
#include "workload/spec.hh"

namespace preempt::workload {
namespace {

TEST(ServiceLaw, StationarySampling)
{
    Rng rng(1);
    ServiceLaw law(std::make_shared<ConstantDist>(5000.0));
    EXPECT_EQ(law.sample(0, rng), 5000u);
    EXPECT_EQ(law.sample(secToNs(100), rng), 5000u);
    EXPECT_FALSE(law.dynamic());
}

TEST(ServiceLaw, PhaseSwitchAtTime)
{
    Rng rng(2);
    ServiceLaw law(std::make_shared<ConstantDist>(100.0),
                   std::make_shared<ConstantDist>(900.0), usToNs(10),
                   "switch");
    EXPECT_EQ(law.sample(usToNs(9), rng), 100u);
    EXPECT_EQ(law.sample(usToNs(10), rng), 900u);
    EXPECT_TRUE(law.dynamic());
    EXPECT_DOUBLE_EQ(law.meanAt(usToNs(9)), 100.0);
    EXPECT_DOUBLE_EQ(law.meanAt(usToNs(11)), 900.0);
}

TEST(ServiceLaw, WorkloadCSwitchesHalfway)
{
    Rng rng(3);
    ServiceLaw c = makeServiceLaw("C", secToNs(2));
    EXPECT_TRUE(c.dynamic());
    EXPECT_EQ(c.switchTime(), secToNs(1));
    // First phase is bimodal A1 (values 500 or 500000), second is
    // exponential.
    for (int i = 0; i < 100; ++i) {
        TimeNs v = c.sample(0, rng);
        EXPECT_TRUE(v == 500 || v == 500000);
    }
}

TEST(ServiceLaw, NeverReturnsZeroDemand)
{
    Rng rng(4);
    ServiceLaw law(std::make_shared<ConstantDist>(0.0));
    EXPECT_EQ(law.sample(0, rng), 1u);
}

TEST(RateLaw, ConstantRate)
{
    RateLaw r = RateLaw::constant(5000);
    EXPECT_DOUBLE_EQ(r.at(0), 5000.0);
    EXPECT_DOUBLE_EQ(r.at(secToNs(100)), 5000.0);
    EXPECT_DOUBLE_EQ(r.peak(), 5000.0);
}

TEST(RateLaw, BurstySpikesMidPeriod)
{
    TimeNs period = msToNs(100);
    RateLaw r = RateLaw::bursty(40e3, 110e3, period, 0.3);
    // Spike occupies the middle 30% of each period.
    EXPECT_DOUBLE_EQ(r.at(0), 40e3);
    EXPECT_DOUBLE_EQ(r.at(period / 2), 110e3);
    EXPECT_DOUBLE_EQ(r.at(period - 1), 40e3);
    // Periodicity.
    EXPECT_DOUBLE_EQ(r.at(period + period / 2), 110e3);
    EXPECT_DOUBLE_EQ(r.peak(), 110e3);
}

TEST(Generator, ArrivalCountTracksRate)
{
    sim::Simulator sim(5);
    std::uint64_t arrivals = 0;
    WorkloadSpec spec{ServiceLaw(std::make_shared<ConstantDist>(1000.0)),
                      RateLaw::constant(100e3), msToNs(100)};
    OpenLoopGenerator gen(sim, std::move(spec),
                          [&](Request &) { ++arrivals; });
    gen.start();
    sim.runAll();
    // Poisson(10000) over the window: within 5 sigma.
    EXPECT_NEAR(static_cast<double>(arrivals), 10000.0, 500.0);
}

TEST(Generator, RequestsInitializedAndStable)
{
    sim::Simulator sim(6);
    std::vector<Request *> seen;
    WorkloadSpec spec{ServiceLaw(std::make_shared<ConstantDist>(2000.0)),
                      RateLaw::constant(1e6), usToNs(200)};
    OpenLoopGenerator gen(sim, std::move(spec),
                          [&](Request &r) { seen.push_back(&r); });
    gen.start();
    sim.runAll();
    ASSERT_GT(seen.size(), 10u);
    for (std::size_t i = 0; i < seen.size(); ++i) {
        Request &r = *seen[i];
        EXPECT_EQ(r.id, i);
        EXPECT_EQ(r.service, 2000u);
        EXPECT_EQ(r.remaining, 2000u);
        EXPECT_FALSE(r.done());
        EXPECT_LT(r.arrival, usToNs(200));
    }
    // Pool addresses remain valid/stable.
    EXPECT_EQ(gen.pool().size(), seen.size());
}

TEST(Generator, BestEffortFraction)
{
    sim::Simulator sim(7);
    std::uint64_t be = 0, total = 0;
    WorkloadSpec spec{ServiceLaw(std::make_shared<ConstantDist>(1000.0)),
                      RateLaw::constant(500e3), msToNs(100)};
    spec.beFraction = 0.02;
    spec.beService = std::make_shared<ServiceLaw>(
        std::make_shared<ConstantDist>(100000.0));
    OpenLoopGenerator gen(sim, std::move(spec), [&](Request &r) {
        ++total;
        if (r.cls == RequestClass::BestEffort) {
            ++be;
            EXPECT_EQ(r.service, 100000u);
        } else {
            EXPECT_EQ(r.service, 1000u);
        }
    });
    gen.start();
    sim.runAll();
    EXPECT_NEAR(static_cast<double>(be) / static_cast<double>(total), 0.02,
                0.005);
}

TEST(Generator, ArrivalsStopAtHorizon)
{
    sim::Simulator sim(8);
    TimeNs last = 0;
    WorkloadSpec spec{ServiceLaw(std::make_shared<ConstantDist>(1000.0)),
                      RateLaw::constant(1e6), msToNs(10)};
    OpenLoopGenerator gen(sim, std::move(spec),
                          [&](Request &r) { last = r.arrival; });
    gen.start();
    sim.runAll();
    EXPECT_LT(last, msToNs(10));
}

TEST(Metrics, ConservationAndClasses)
{
    RunMetrics m;
    Request lc;
    lc.cls = RequestClass::LatencyCritical;
    lc.arrival = 0;
    lc.service = 100;
    lc.completion = 1000;
    Request be;
    be.cls = RequestClass::BestEffort;
    be.arrival = 0;
    be.service = 200;
    be.completion = 5000;
    be.preemptions = 3;
    m.onArrival(lc);
    m.onArrival(be);
    m.onCompletion(lc);
    m.onCompletion(be);
    EXPECT_EQ(m.arrived(), 2u);
    EXPECT_EQ(m.completed(), 2u);
    EXPECT_EQ(m.lcLatency().count(), 1u);
    EXPECT_EQ(m.beLatency().count(), 1u);
    EXPECT_EQ(m.totalPreemptions(), 3u);
    m.addExecution(1000);
    m.addPreemptionOverhead(100);
    EXPECT_DOUBLE_EQ(m.overheadRatio(), 0.1);
    EXPECT_DOUBLE_EQ(m.throughputRps(secToNs(1)), 2.0);
}

TEST(Request, SlowdownAndLatency)
{
    Request r;
    r.arrival = 100;
    r.service = 50;
    EXPECT_EQ(r.latency(), kTimeNever);
    r.completion = 600;
    EXPECT_EQ(r.latency(), 500u);
    EXPECT_DOUBLE_EQ(r.slowdown(), 10.0);
}

TEST(LoadSweep, PicksLargestGoodLoad)
{
    // Synthetic response: p99 explodes past 800 rps.
    auto run = [](double rps) {
        SweepPoint p;
        p.achievedRps = rps;
        p.p99 = rps <= 800 ? usToNs(50) : msToNs(10);
        p.p50 = usToNs(5);
        p.completed = 10000;
        return p;
    };
    SweepResult r = sweepLoad(run, 100, 1000, 10, usToNs(100));
    EXPECT_NEAR(r.maxGoodRps, 800, 1.0);
    EXPECT_EQ(r.points.size(), 10u);
}

TEST(LoadSweep, RejectsLowAchievedThroughput)
{
    // Saturated server: achieved stalls at 500 even as offered grows.
    auto run = [](double rps) {
        SweepPoint p;
        p.achievedRps = std::min(rps, 500.0);
        p.p99 = usToNs(10);
        p.completed = 10000;
        return p;
    };
    SweepResult r = sweepLoad(run, 100, 1000, 10, usToNs(100));
    EXPECT_LE(r.maxGoodRps, 600.0);
}

TEST(LoadSweep, EmptyPointIsNeverGood)
{
    // Regression: a point where nothing completed reports p99 == 0,
    // which the old `p99 != 0 ? ... : skip` scoring conflated with "no
    // measurement" only by accident of the bound check; an empty point
    // with a passing ratio must not count as good throughput.
    auto run = [](double rps) {
        SweepPoint p;
        p.achievedRps = rps; // ratio would pass
        p.p99 = 0;           // nothing completed
        p.completed = 0;
        return p;
    };
    SweepResult r = sweepLoad(run, 100, 1000, 10, usToNs(100));
    EXPECT_EQ(r.maxGoodRps, 0.0);
}

TEST(LoadSweep, LowLoadQuantizationDoesNotZeroResult)
{
    // Regression: at low offered loads a short run completes a
    // handful of requests, so achieved/offered quantizes below 0.95
    // even though the system is healthy. The ratio test must not
    // apply below kMinCompletionsForRatio.
    auto run = [](double rps) {
        SweepPoint p;
        p.completed = 5; // few requests => coarse achieved estimate
        p.achievedRps = 0.6 * rps;
        p.p99 = usToNs(10);
        return p;
    };
    SweepResult r = sweepLoad(run, 100, 1000, 10, usToNs(100));
    EXPECT_NEAR(r.maxGoodRps, 1000, 1.0);
}

TEST(LoadSweep, GridIsEvenAndInclusive)
{
    std::vector<double> g = sweepGrid(100, 1000, 10);
    ASSERT_EQ(g.size(), 10u);
    EXPECT_DOUBLE_EQ(g.front(), 100);
    EXPECT_DOUBLE_EQ(g.back(), 1000);
    EXPECT_DOUBLE_EQ(g[1] - g[0], 100);
}

TEST(LoadSweep, ScoreSweepMatchesSweepLoad)
{
    // The cell-based API must score identically to the sequential
    // driver on the same measurements.
    auto run = [](double rps) {
        SweepPoint p;
        p.achievedRps = rps;
        p.p99 = rps <= 640 ? usToNs(50) : msToNs(10);
        p.completed = 10000;
        return p;
    };
    SweepResult seq = sweepLoad(run, 100, 1000, 10, usToNs(100));

    std::vector<SweepPoint> cells;
    for (double rps : sweepGrid(100, 1000, 10)) {
        SweepPoint p = run(rps);
        p.offeredRps = rps;
        cells.push_back(p);
    }
    SweepResult scored = scoreSweep(cells, usToNs(100));
    EXPECT_DOUBLE_EQ(scored.maxGoodRps, seq.maxGoodRps);
    ASSERT_EQ(scored.points.size(), seq.points.size());
}

} // namespace
} // namespace preempt::workload
