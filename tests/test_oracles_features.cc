/**
 * @file
 * Tests for the oracle reference schedulers, the work-stealing and
 * SLO-cancellation extensions, the posted-IPI model, and
 * queueing-theory sanity checks of the whole simulation substrate.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/oracle_sim.hh"
#include "hw/posted_ipi.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"

namespace preempt {
namespace {

using baselines::ProcessorSharingSim;
using baselines::SrptSim;

template <typename Server>
const workload::RunMetrics &
drive(Server &server, sim::Simulator &sim, const std::string &wl,
      double rps, TimeNs duration)
{
    static std::unique_ptr<workload::OpenLoopGenerator> gen;
    gen = std::make_unique<workload::OpenLoopGenerator>(
        sim,
        workload::WorkloadSpec{workload::makeServiceLaw(wl, duration),
                               workload::RateLaw::constant(rps), duration},
        [&server](workload::Request &r) { server.onArrival(r); });
    gen->start();
    sim.runUntil(duration + secToNs(5));
    return server.metrics();
}

TEST(OraclePs, ConservesAndIsOverheadFree)
{
    sim::Simulator sim(1);
    ProcessorSharingSim ps(sim, 4);
    const auto &m = drive(ps, sim, "A1", 400e3, msToNs(50));
    EXPECT_GT(m.arrived(), 1000u);
    EXPECT_EQ(m.arrived(), m.completed());
    EXPECT_EQ(ps.inFlight(), 0u);
}

TEST(OraclePs, SingleJobRunsAtFullRate)
{
    sim::Simulator sim(1);
    ProcessorSharingSim ps(sim, 2);
    workload::Request req;
    req.id = 1;
    req.arrival = 0;
    req.service = usToNs(100);
    req.remaining = req.service;
    ps.onArrival(req);
    sim.runAll();
    ASSERT_TRUE(req.done());
    EXPECT_NEAR(static_cast<double>(req.latency()),
                static_cast<double>(usToNs(100)),
                static_cast<double>(usToNs(1)));
}

TEST(OraclePs, TwoJobsOnOneCoreShareCapacity)
{
    sim::Simulator sim(1);
    ProcessorSharingSim ps(sim, 1);
    workload::Request a, b;
    a.id = 1;
    a.service = a.remaining = usToNs(100);
    b.id = 2;
    b.service = b.remaining = usToNs(100);
    ps.onArrival(a);
    ps.onArrival(b);
    sim.runAll();
    // Equal jobs sharing one core both finish at ~200 us.
    EXPECT_NEAR(static_cast<double>(a.latency()),
                static_cast<double>(usToNs(200)),
                static_cast<double>(usToNs(4)));
    EXPECT_NEAR(static_cast<double>(b.latency()),
                static_cast<double>(usToNs(200)),
                static_cast<double>(usToNs(4)));
}

TEST(OracleSrpt, ShortJobPreemptsLong)
{
    sim::Simulator sim(1);
    SrptSim srpt(sim, 1);
    workload::Request long_job, short_job;
    long_job.id = 1;
    long_job.service = long_job.remaining = usToNs(500);
    srpt.onArrival(long_job);
    // The short job arrives mid-run and must jump ahead.
    sim.after(usToNs(50), [&](TimeNs) {
        short_job.id = 2;
        short_job.arrival = sim.now();
        short_job.service = short_job.remaining = usToNs(10);
        srpt.onArrival(short_job);
    });
    sim.runAll();
    ASSERT_TRUE(long_job.done());
    ASSERT_TRUE(short_job.done());
    EXPECT_LT(short_job.completion, long_job.completion);
    EXPECT_NEAR(static_cast<double>(short_job.latency()),
                static_cast<double>(usToNs(10)),
                static_cast<double>(usToNs(2)));
}

TEST(OracleSrpt, LowerBoundsLibPreemptibleMeanLatency)
{
    TimeNs duration = msToNs(60);
    double rps = 600e3;

    sim::Simulator s1(7);
    SrptSim srpt(s1, 4);
    const auto &oracle = drive(srpt, s1, "A1", rps, duration);
    double oracle_mean = oracle.lcLatency().mean();

    sim::Simulator s2(7);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 4;
    rc.quantum = usToNs(5);
    runtime_sim::LibPreemptibleSim lib(s2, cfg, rc);
    const auto &real = drive(lib, s2, "A1", rps, duration);

    EXPECT_EQ(oracle.arrived(), oracle.completed());
    // No implementable system beats the zero-overhead SRPT oracle.
    EXPECT_GE(real.lcLatency().mean(), oracle_mean * 0.95);
}

TEST(QueueingTheory, LightLoadLatencyApproachesServiceTime)
{
    // M/M/4 at 5% load: sojourn ~= service demand.
    sim::Simulator sim(3);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 4;
    rc.quantum = usToNs(100);
    runtime_sim::LibPreemptibleSim lib(sim, cfg, rc);
    const auto &m = drive(lib, sim, "B", 40e3, msToNs(100));
    // Mean sojourn within ~25% of the 5 us mean demand (plus fixed
    // dispatch costs).
    EXPECT_NEAR(m.lcLatency().mean(), 5000.0 + 300.0, 1500.0);
}

TEST(QueueingTheory, PsSojournMatchesMm1Formula)
{
    // For M/M/1-PS, E[T] = E[S] / (1 - rho). Run PS on one core at
    // rho = 0.5 with exponential(5us) service.
    sim::Simulator sim(5);
    ProcessorSharingSim ps(sim, 1);
    const auto &m = drive(ps, sim, "B", 100e3, msToNs(400));
    double expect = 5000.0 / (1.0 - 0.5);
    EXPECT_NEAR(m.lcLatency().mean(), expect, expect * 0.1);
}

TEST(WorkStealing, ConservesAndEngagesIdleWorkers)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 4;
    rc.quantum = usToNs(10);
    rc.workStealing = true;
    runtime_sim::LibPreemptibleSim lib(sim, cfg, rc);
    const auto &m = drive(lib, sim, "A1", 400e3, msToNs(60));
    EXPECT_GT(m.arrived(), 1000u);
    EXPECT_EQ(m.arrived(), m.completed());
    EXPECT_EQ(lib.inFlight(), 0u);
}

TEST(SloCancellation, DropsHopelessRequestsUnderOverload)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 1;
    rc.quantum = usToNs(5);
    rc.requestDeadline = usToNs(200);
    runtime_sim::LibPreemptibleSim lib(sim, cfg, rc);
    // 2x overload on one worker.
    const auto &m = drive(lib, sim, "B", 400e3, msToNs(50));
    EXPECT_GT(m.cancelled(), 0u);
    EXPECT_EQ(m.arrived(), m.completed() + m.cancelled());
    EXPECT_EQ(lib.inFlight(), 0u);
    // Served requests see bounded sojourn: deadline + one service +
    // slack for in-progress segments.
    EXPECT_LT(m.lcLatency().p99(), usToNs(400));
}

TEST(SloCancellation, NoDropsAtLowLoad)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 4;
    rc.quantum = usToNs(10);
    rc.requestDeadline = msToNs(10);
    runtime_sim::LibPreemptibleSim lib(sim, cfg, rc);
    const auto &m = drive(lib, sim, "B", 100e3, msToNs(50));
    EXPECT_EQ(m.cancelled(), 0u);
    EXPECT_EQ(m.arrived(), m.completed());
}

TEST(PostedIpi, DeliversWithTrapDelay)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    hw::PostedIpiUnit apic(sim, cfg);
    TimeNs delivered_at = 0;
    int target = apic.attachTarget([&](TimeNs t) { delivered_at = t; });
    TimeNs cost = apic.sendIpi(target);
    EXPECT_EQ(cost, cfg.postedIpiSend);
    sim.runAll();
    EXPECT_GE(delivered_at,
              cfg.postedIpiDelivery.floorNs + cfg.shinjukuTrapCost);
    EXPECT_EQ(apic.stats().delivered, 1u);
}

TEST(PostedIpi, PendingSendsCoalesce)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    hw::PostedIpiUnit apic(sim, cfg);
    int hits = 0;
    int target = apic.attachTarget([&](TimeNs) { ++hits; });
    apic.sendIpi(target);
    apic.sendIpi(target);
    apic.sendIpi(target);
    sim.runAll();
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(apic.stats().coalesced, 2u);
    // After delivery the pending bit clears and sends land again.
    apic.sendIpi(target);
    sim.runAll();
    EXPECT_EQ(hits, 2);
}

TEST(PostedIpi, UnrestrictedFloodIsPossible)
{
    // The DoS exposure the paper describes: nothing stops a sender
    // from hammering every attached core.
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    hw::PostedIpiUnit apic(sim, cfg);
    int hits = 0;
    int t0 = apic.attachTarget([&](TimeNs) { ++hits; });
    int t1 = apic.attachTarget([&](TimeNs) { ++hits; });
    for (int i = 0; i < 100; ++i) {
        apic.sendIpi(t0);
        apic.sendIpi(t1);
        sim.runAll();
    }
    EXPECT_EQ(hits, 200);
    EXPECT_EQ(apic.stats().sends, 200u);
}

TEST(PostedIpiDeath, TargetLimitEnforced)
{
    sim::Simulator sim(1);
    hw::LatencyConfig cfg;
    cfg.apicMaxTargets = 2;
    hw::PostedIpiUnit apic(sim, cfg);
    apic.attachTarget([](TimeNs) {});
    apic.attachTarget([](TimeNs) {});
    EXPECT_EXIT(apic.attachTarget([](TimeNs) {}),
                testing::ExitedWithCode(1), "at most 2");
}

} // namespace
} // namespace preempt
