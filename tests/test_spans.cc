/**
 * @file
 * Tests for the task-lifecycle span builder (obs/spans.hh): exact
 * delay-decomposition folding on hand-crafted lifecycles, anomaly
 * accounting, per-tenant aggregation and SLO counting, and the golden
 * invariant — on a deterministic simulator run, 100% of completed
 * tasks satisfy queued + running + preempted + timer_lag == latency
 * to the nanosecond, with zero folding anomalies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "obs/spans.hh"
#include "obs/trace.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

#ifndef PREEMPT_OBS_DISABLED

namespace preempt {
namespace {

using obs::EventKind;
using obs::SpanCollector;
using obs::TaskSpan;
using obs::TraceRecord;

TraceRecord
rec(EventKind kind, std::uint64_t ts, std::uint64_t id,
    std::uint64_t a0 = 0, std::uint64_t a1 = 0)
{
    TraceRecord r{};
    r.ts = ts;
    r.kind = static_cast<std::uint16_t>(kind);
    r.id = id;
    r.a0 = a0;
    r.a1 = a1;
    return r;
}

// ----- folding ------------------------------------------------------

TEST(SpanFold, SimpleLifecycleDecomposesExactly)
{
    // submit@100, launch@130 (quantum 1000), complete@180:
    // queued = 30, running = 50, no lag (segment under quantum).
    std::vector<TraceRecord> records{
        rec(EventKind::TaskSubmit, 100, 7, /*cls=*/0, /*tenant=*/3),
        rec(EventKind::Launch, 130, 7, 0, /*quantum=*/1000),
        rec(EventKind::Complete, 180, 7),
    };
    SpanCollector::Anomalies anomalies;
    auto spans = obs::buildSpans(records, &anomalies);
    ASSERT_EQ(spans.size(), 1u);
    const TaskSpan &s = spans[0];
    EXPECT_EQ(s.id, 7u);
    EXPECT_EQ(s.tenant, 3u);
    EXPECT_TRUE(s.completed);
    EXPECT_EQ(s.segments, 1u);
    EXPECT_EQ(s.breakdown.queuedNs, 30u);
    EXPECT_EQ(s.breakdown.runningNs, 50u);
    EXPECT_EQ(s.breakdown.preemptedNs, 0u);
    EXPECT_EQ(s.breakdown.timerLagNs, 0u);
    EXPECT_EQ(s.latencyNs(), 80u);
    EXPECT_TRUE(s.invariantHolds());
    EXPECT_EQ(anomalies.total(), 0u);
}

TEST(SpanFold, PreemptResumeSplitsParkedTime)
{
    // launch@100 with quantum 50, preempted@160 (10 ns past the
    // quantum -> timer lag), resumes@200, completes@230.
    std::vector<TraceRecord> records{
        rec(EventKind::TaskSubmit, 100, 1),
        rec(EventKind::Launch, 100, 1, 0, 50),
        rec(EventKind::Preempt, 160, 1),
        rec(EventKind::Resume, 200, 1, 0, 50),
        rec(EventKind::Complete, 230, 1),
    };
    auto spans = obs::buildSpans(records);
    ASSERT_EQ(spans.size(), 1u);
    const TaskSpan &s = spans[0];
    EXPECT_EQ(s.segments, 2u);
    EXPECT_EQ(s.breakdown.queuedNs, 0u);
    // Segment 1: 60 ns with a 50 ns quantum -> 50 running + 10 lag.
    // Segment 2: 30 ns within quantum -> 30 running.
    EXPECT_EQ(s.breakdown.runningNs, 80u);
    EXPECT_EQ(s.breakdown.timerLagNs, 10u);
    EXPECT_EQ(s.breakdown.preemptedNs, 40u);
    EXPECT_EQ(s.latencyNs(), 130u);
    EXPECT_TRUE(s.invariantHolds());
}

TEST(SpanFold, ZeroQuantumMeansNoLagAttribution)
{
    // Quantum 0 (preemption off): the whole segment counts as running.
    std::vector<TraceRecord> records{
        rec(EventKind::TaskSubmit, 0, 2),
        rec(EventKind::Launch, 10, 2, 0, 0),
        rec(EventKind::Complete, 500, 2),
    };
    auto spans = obs::buildSpans(records);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].breakdown.runningNs, 490u);
    EXPECT_EQ(spans[0].breakdown.timerLagNs, 0u);
    EXPECT_TRUE(spans[0].invariantHolds());
}

TEST(SpanFold, CancelledSpanStillDecomposes)
{
    // Cancelled while parked: the trailing park time is attributed to
    // preempted and the span closes as not-completed.
    std::vector<TraceRecord> records{
        rec(EventKind::TaskSubmit, 0, 3),
        rec(EventKind::Launch, 20, 3, 0, 100),
        rec(EventKind::Preempt, 70, 3),
        rec(EventKind::CancelRequest, 150, 3),
    };
    auto spans = obs::buildSpans(records);
    ASSERT_EQ(spans.size(), 1u);
    const TaskSpan &s = spans[0];
    EXPECT_FALSE(s.completed);
    EXPECT_EQ(s.breakdown.queuedNs, 20u);
    EXPECT_EQ(s.breakdown.runningNs, 50u);
    EXPECT_EQ(s.breakdown.preemptedNs, 80u);
    EXPECT_TRUE(s.invariantHolds());
}

TEST(SpanFold, CancelledWhileQueuedAttributesQueueTime)
{
    // Backpressure drop before the first launch: all queued.
    std::vector<TraceRecord> records{
        rec(EventKind::TaskSubmit, 10, 4),
        rec(EventKind::CancelRequest, 60, 4),
    };
    auto spans = obs::buildSpans(records);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_FALSE(spans[0].completed);
    EXPECT_EQ(spans[0].breakdown.queuedNs, 50u);
    EXPECT_EQ(spans[0].segments, 0u);
    EXPECT_TRUE(spans[0].invariantHolds());
}

TEST(SpanFold, MigrationsCountedWithoutBreakingInvariant)
{
    std::vector<TraceRecord> records{
        rec(EventKind::TaskSubmit, 0, 5),
        rec(EventKind::Launch, 10, 5, 0, 100),
        rec(EventKind::Preempt, 50, 5),
        rec(EventKind::TaskMigrate, 60, 5),
        rec(EventKind::Resume, 80, 5, 0, 100),
        rec(EventKind::Complete, 90, 5),
    };
    auto spans = obs::buildSpans(records);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].migrations, 1u);
    EXPECT_TRUE(spans[0].invariantHolds());
}

// ----- anomalies ----------------------------------------------------

TEST(SpanFold, OrphanEventsAreCountedNotFolded)
{
    SpanCollector c;
    c.onEvent(EventKind::Complete, 0, 100, /*id=*/99, 0, 0);
    EXPECT_EQ(c.finished(), 0u);
    EXPECT_EQ(c.anomalies().orphanEvents, 1u);
}

TEST(SpanFold, ResubmitOfOpenTaskCountsReopened)
{
    SpanCollector c;
    c.onEvent(EventKind::TaskSubmit, 0, 10, 1, 0, 0);
    c.onEvent(EventKind::TaskSubmit, 0, 20, 1, 0, 0);
    EXPECT_EQ(c.anomalies().reopenedTasks, 1u);
}

TEST(SpanFold, DrainOpenCountsDanglingSpans)
{
    SpanCollector c;
    c.onEvent(EventKind::TaskSubmit, 0, 10, 1, 0, 0);
    c.onEvent(EventKind::TaskSubmit, 0, 10, 2, 0, 0);
    c.drainOpen();
    EXPECT_EQ(c.anomalies().danglingSpans, 2u);
}

TEST(SpanFold, BackwardsClockClampsAndCounts)
{
    // Feed a completion whose timestamp precedes the launch (host
    // clock skew across threads): the interval clamps to zero and the
    // clamp is counted; the invariant cannot hold but must not wrap.
    SpanCollector::Options opt;
    opt.keepSpans = 4;
    SpanCollector c(opt);
    c.onEvent(EventKind::TaskSubmit, 0, 100, 1, 0, 0);
    c.onEvent(EventKind::Launch, 0, 150, 1, 0, 1000);
    c.onEvent(EventKind::Complete, 0, 140, 1, 0, 0);
    EXPECT_EQ(c.finished(), 1u);
    EXPECT_GE(c.anomalies().clampedTimes, 1u);
    auto spans = c.retainedSpans();
    ASSERT_EQ(spans.size(), 1u);
    // Saturating arithmetic: every component stays sane (no wrap to
    // huge values) even though the event order was impossible.
    EXPECT_LE(spans[0].breakdown.total(), 50u);
}

// ----- aggregation --------------------------------------------------

TEST(SpanCollectorAgg, PerTenantStatsAndSloViolations)
{
    SpanCollector::Options opt;
    opt.sloNs = 100;
    SpanCollector c(opt);
    // Tenant 1: latency 80 (ok) and 200 (violation). Tenant 2: 50.
    auto lifecycle = [&](std::uint64_t id, std::uint32_t tenant,
                         std::uint64_t latency) {
        c.onEvent(EventKind::TaskSubmit, 0, 1000, id, 0, tenant);
        c.onEvent(EventKind::Launch, 0, 1000, id, 0, 0);
        c.onEvent(EventKind::Complete, 0, 1000 + latency, id, 0, 0);
    };
    lifecycle(1, 1, 80);
    lifecycle(2, 1, 200);
    lifecycle(3, 2, 50);
    EXPECT_EQ(c.finished(), 3u);
    EXPECT_EQ(c.invariantViolations(), 0u);
    auto tenants = c.tenantStats();
    ASSERT_EQ(tenants.size(), 2u);
    EXPECT_EQ(tenants[1].completed, 2u);
    EXPECT_EQ(tenants[1].violations, 1u);
    EXPECT_EQ(tenants[2].completed, 1u);
    EXPECT_EQ(tenants[2].violations, 0u);
    EXPECT_EQ(tenants[1].total.count(), 2u);
}

TEST(SpanCollectorAgg, RetainedSpanCapKeepsNewest)
{
    SpanCollector::Options opt;
    opt.keepSpans = 2;
    SpanCollector c(opt);
    for (std::uint64_t id = 0; id < 5; ++id) {
        c.onEvent(EventKind::TaskSubmit, 0, id * 10, id, 0, 0);
        c.onEvent(EventKind::Launch, 0, id * 10 + 1, id, 0, 0);
        c.onEvent(EventKind::Complete, 0, id * 10 + 2, id, 0, 0);
    }
    auto spans = c.retainedSpans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].id, 3u);
    EXPECT_EQ(spans[1].id, 4u);
}

// ----- the golden invariant on a deterministic sim run --------------

struct SimRun
{
    explicit SimRun(runtime_sim::LibPreemptibleConfig cfg,
                    SpanCollector::Options copt = {},
                    double rps = 400e3, TimeNs duration = msToNs(30))
        : collector(copt), sim(42),
          server(sim, hwcfg, std::move(cfg))
    {
        obs::setSpanCollector(&collector);
        workload::WorkloadSpec spec{
            workload::makeServiceLaw("A1", duration),
            workload::RateLaw::constant(rps), duration};
        gen = std::make_unique<workload::OpenLoopGenerator>(
            sim, std::move(spec),
            [this](workload::Request &r) { server.onArrival(r); });
        gen->start();
        sim.runUntil(duration + msToNs(500));
        obs::setSpanCollector(nullptr);
        collector.drainOpen();
    }

    ~SimRun() { obs::setSpanCollector(nullptr); }

    SpanCollector collector;
    sim::Simulator sim;
    hw::LatencyConfig hwcfg;
    runtime_sim::LibPreemptibleSim server;
    std::unique_ptr<workload::OpenLoopGenerator> gen;
};

TEST(SpanGolden, SimRunDecomposesEveryTaskExactly)
{
    runtime_sim::LibPreemptibleConfig cfg;
    cfg.nWorkers = 4;
    cfg.quantum = usToNs(5);
    SpanCollector::Options copt;
    copt.keepSpans = 1 << 16;
    SimRun run(cfg, copt);

    EXPECT_GT(run.collector.finished(), 100u);
    // The acceptance bar: the decomposition is exact for 100% of
    // tasks on the simulated clock, with zero folding anomalies.
    EXPECT_EQ(run.collector.invariantViolations(), 0u);
    EXPECT_EQ(run.collector.anomalies().total(), 0u);
    for (const TaskSpan &s : run.collector.retainedSpans()) {
        ASSERT_TRUE(s.invariantHolds())
            << "task " << s.id << ": queued=" << s.breakdown.queuedNs
            << " running=" << s.breakdown.runningNs
            << " preempted=" << s.breakdown.preemptedNs
            << " lag=" << s.breakdown.timerLagNs
            << " latency=" << s.latencyNs();
    }
    // Spans must cover every finished request.
    EXPECT_EQ(run.collector.finished(),
              run.server.metrics().completed() +
                  run.server.metrics().cancelled());
}

TEST(SpanGolden, PreemptionHeavyRunStillExact)
{
    // 1 us quantum on A1 forces many preempt/resume cycles per long
    // request; the invariant must survive multi-segment folding.
    runtime_sim::LibPreemptibleConfig cfg;
    cfg.nWorkers = 2;
    cfg.quantum = usToNs(1);
    SimRun run(cfg);
    EXPECT_GT(run.collector.finished(), 100u);
    EXPECT_EQ(run.collector.invariantViolations(), 0u);
    EXPECT_EQ(run.collector.anomalies().total(), 0u);
    auto tenants = run.collector.tenantStats();
    ASSERT_EQ(tenants.size(), 1u);
    // Preemptions happened, so parked time must show up somewhere.
    EXPECT_GT(tenants[0].preempted.max(), 0u);
}

TEST(SpanGolden, OfflineBuildMatchesLiveCollector)
{
    // Record the same run through the tracer and rebuild offline: the
    // per-task spans must agree with the live streaming fold.
    obs::Tracer::Options topt;
    topt.cores = 8;
    topt.perCoreCapacity = std::size_t{1} << 18;
    obs::Tracer tracer(topt);
    obs::setTracer(&tracer);

    runtime_sim::LibPreemptibleConfig cfg;
    cfg.nWorkers = 4;
    cfg.quantum = usToNs(5);
    SpanCollector::Options copt;
    copt.keepSpans = 1 << 16;
    SimRun run(cfg, copt, /*rps=*/200e3, /*duration=*/msToNs(10));
    obs::setTracer(nullptr);
    ASSERT_EQ(tracer.totalDropped(), 0u) << "ring too small for run";

    SpanCollector::Anomalies anomalies;
    auto offline = obs::buildSpans(tracer, &anomalies);
    EXPECT_EQ(anomalies.total(), 0u);
    auto live = run.collector.retainedSpans();
    ASSERT_EQ(offline.size(), live.size());
    // Both sides fold per task; compare as sorted-by-id sequences.
    auto byId = [](const TaskSpan &a, const TaskSpan &b) {
        return a.id < b.id;
    };
    std::sort(offline.begin(), offline.end(), byId);
    std::sort(live.begin(), live.end(), byId);
    for (std::size_t i = 0; i < offline.size(); ++i) {
        EXPECT_EQ(offline[i].id, live[i].id);
        EXPECT_EQ(offline[i].breakdown.queuedNs,
                  live[i].breakdown.queuedNs);
        EXPECT_EQ(offline[i].breakdown.runningNs,
                  live[i].breakdown.runningNs);
        EXPECT_EQ(offline[i].breakdown.preemptedNs,
                  live[i].breakdown.preemptedNs);
        EXPECT_EQ(offline[i].breakdown.timerLagNs,
                  live[i].breakdown.timerLagNs);
        EXPECT_EQ(offline[i].completed, live[i].completed);
    }
}

TEST(SpanGolden, TenantIdFlowsThroughToAggregates)
{
    runtime_sim::LibPreemptibleConfig cfg;
    cfg.nWorkers = 2;
    cfg.quantum = usToNs(5);
    cfg.tenant = 9;
    SimRun run(cfg, {}, /*rps=*/200e3, /*duration=*/msToNs(10));
    auto tenants = run.collector.tenantStats();
    ASSERT_EQ(tenants.size(), 1u);
    EXPECT_EQ(tenants.begin()->first, 9u);
    EXPECT_GT(tenants.begin()->second.completed, 0u);
}

} // namespace
} // namespace preempt

#else // PREEMPT_OBS_DISABLED

// The span subsystem is compiled out; keep one test so the binary
// still registers with ctest.
TEST(SpanFold, CompiledOut) { SUCCEED(); }

#endif // PREEMPT_OBS_DISABLED
