/**
 * @file
 * Invariant fuzzing of the admission state machine (the satellite
 * harness next to tests/test_fault_fuzz.cc): hundreds of seeded
 * random overload/recovery schedules against random parameter sets,
 * checked for
 *
 *   - exact conservation: submitted == admitted + rejected, per class,
 *     with the test's own tally of decide() return values;
 *   - monotone severity: no tick window may both reject an LC request
 *     and admit a BE request;
 *   - hysteresis no-flap: stateChanges is bounded by
 *     ticks / min(escalateAfter, relaxAfter) + 1;
 *   - fail-open: a long stale/unfresh tail always ends at ADMIT.
 *
 * Every assertion message carries the seed and the parameter set, so
 * any failure reproduces from its log line alone. A second suite runs
 * the full simulated runtime with admission enabled under random
 * overload and checks end-to-end conservation of every arrival.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "common/rng.hh"
#include "control/admission.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

namespace preempt::control {
namespace {

/** Random but always-valid parameter set (low <= high everywhere). */
AdmissionParams
randomParams(Rng &pick)
{
    AdmissionParams p;
    p.queuedLowNs = pick.below(500000);
    p.queuedHighNs = p.queuedLowNs + 1 + pick.below(2000000);
    p.violationLow = 0.3 * pick.uniform();
    p.violationHigh = p.violationLow + 0.01 + 0.6 * pick.uniform();
    p.depthLow = pick.below(32);
    p.depthHigh = p.depthLow + 1 + pick.below(96);
    p.escalateAfter = 1 + static_cast<int>(pick.below(4));
    p.relaxAfter = 1 + static_cast<int>(pick.below(5));
    p.dutySteps = 4 + pick.below(13);
    p.lcTrickle = 8 + pick.below(121);
    return p;
}

std::string
paramStr(const AdmissionParams &p)
{
    std::ostringstream os;
    os << "qLow=" << p.queuedLowNs << " qHigh=" << p.queuedHighNs
       << " vLow=" << p.violationLow << " vHigh=" << p.violationHigh
       << " dLow=" << p.depthLow << " dHigh=" << p.depthHigh
       << " esc=" << p.escalateAfter << " relax=" << p.relaxAfter
       << " duty=" << p.dutySteps << " trickle=" << p.lcTrickle;
    return os.str();
}

/** One random tick's signals for the current regime. */
AdmissionSignals
regimeSignals(Rng &pick, const AdmissionParams &p, int regime)
{
    AdmissionSignals s;
    switch (regime) {
    case 0: // overload: at least one signal at/over its high mark
        switch (pick.below(3)) {
        case 0:
            s.queuedP99Ns = p.queuedHighNs + pick.below(1000000);
            break;
        case 1:
            s.violationRatio =
                std::min(1.0, p.violationHigh + pick.uniform());
            break;
        default:
            s.depth = p.depthHigh + static_cast<std::int64_t>(
                                        pick.below(64));
            break;
        }
        break;
    case 1: // recovery: everything at/below the low marks
        s.queuedP99Ns = pick.below(static_cast<std::uint32_t>(
            std::min<std::uint64_t>(p.queuedLowNs + 1, 1u << 30)));
        s.violationRatio = p.violationLow * pick.uniform();
        s.depth = static_cast<std::int64_t>(pick.below(
            static_cast<std::uint32_t>(p.depthLow + 1)));
        break;
    case 2: // stale telemetry: numbers lie, fresh says so
        s = regimeSignals(pick, p, static_cast<int>(pick.below(2)));
        s.fresh = false;
        break;
    default: // band attempt: between the marks where one exists
        s.queuedP99Ns = p.queuedLowNs +
                        (p.queuedHighNs - p.queuedLowNs) / 2;
        s.depth = p.depthLow + (p.depthHigh - p.depthLow) / 2;
        s.violationRatio = (p.violationLow + p.violationHigh) / 2;
        break;
    }
    return s;
}

class PolicyFuzz : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PolicyFuzz, RandomSchedulesKeepEveryInvariant)
{
    std::uint64_t seed = GetParam();
    Rng pick(seed);
    AdmissionParams p = randomParams(pick);
    std::string ctx =
        "seed=" + std::to_string(seed) + " " + paramStr(p);
    AdmissionController ac(p);

    // Self-tallies of every decide() outcome, per class.
    std::uint64_t subLc = 0, subBe = 0, admLc = 0, admBe = 0;

    int regime = 0;
    int ticks = 200 + static_cast<int>(pick.below(201));
    for (int tick = 0; tick < ticks; ++tick) {
        if (pick.below(8) == 0)
            regime = static_cast<int>(pick.below(4));
        ac.onTick(0, regimeSignals(pick, p, regime));

        // A tick window: the state only moves on onTick, so whatever
        // mix of submissions lands now must respect monotone severity.
        bool lcRejected = false;
        bool beAdmitted = false;
        int n = static_cast<int>(pick.below(41));
        for (int i = 0; i < n; ++i) {
            bool lc = pick.below(2) == 0;
            bool ok = ac.decide(0, lc ? 0 : 1);
            (lc ? subLc : subBe) += 1;
            if (ok)
                (lc ? admLc : admBe) += 1;
            lcRejected = lcRejected || (lc && !ok);
            beAdmitted = beAdmitted || (!lc && ok);
        }
        ASSERT_FALSE(lcRejected && beAdmitted)
            << ctx << " tick=" << tick
            << " shed LC while admitting BE (severity not monotone)";
    }

    // Exact conservation against the controller's own books.
    TenantAdmissionStats st = ac.tenantStats(0);
    EXPECT_EQ(st.submittedLc, subLc) << ctx;
    EXPECT_EQ(st.submittedBe, subBe) << ctx;
    EXPECT_EQ(st.admittedLc, admLc) << ctx;
    EXPECT_EQ(st.admittedBe, admBe) << ctx;
    EXPECT_EQ(st.rejectedLc, subLc - admLc) << ctx;
    EXPECT_EQ(st.rejectedBe, subBe - admBe) << ctx;
    EXPECT_EQ(st.submitted(), st.admitted() + st.rejected()) << ctx;
    EXPECT_EQ(st.ticks, static_cast<std::uint64_t>(ticks)) << ctx;

    // No-flap: hysteresis bounds how often the state may move.
    std::uint64_t bound =
        static_cast<std::uint64_t>(ticks) /
            static_cast<std::uint64_t>(
                std::min(p.escalateAfter, p.relaxAfter)) +
        1;
    EXPECT_LE(st.stateChanges, bound) << ctx << " state flapped";

    // Fail-open tail: telemetry goes dark, the machine must walk all
    // the way home regardless of where the schedule left it.
    AdmissionSignals dark;
    dark.fresh = false;
    int home = (static_cast<int>(PolicyState::ShedLc) +
                static_cast<int>(p.dutySteps)) *
               (p.relaxAfter + 1);
    for (int i = 0; i < home; ++i)
        ac.onTick(0, dark);
    EXPECT_EQ(ac.state(0), PolicyState::Admit)
        << ctx << " stale telemetry wedged the gate shut";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyFuzz,
                         testing::Range<std::uint64_t>(1, 451));

// ----- full simulated runtime under random overload -----------------

class SimAdmissionFuzz : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SimAdmissionFuzz, EveryArrivalIsAdmittedAndFinishedOrRejected)
{
    std::uint64_t seed = GetParam();
    Rng pick(seed * 2654435761ULL + 17);

    sim::Simulator sim(seed);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 1 + static_cast<int>(pick.below(2));
    rc.quantum = usToNs(2 + pick.below(19));
    rc.policy = pick.below(2) == 0
                    ? runtime_sim::SchedPolicy::RoundRobin
                    : runtime_sim::SchedPolicy::NewFirst;
    rc.admission.enabled = true;
    rc.admission.tickPeriod = usToNs(500 + pick.below(4500));
    rc.admission.sloNs = pick.below(2) == 0 ? 0 : msToNs(1);
    rc.admission.params.depthLow = 4 + pick.below(12);
    rc.admission.params.depthHigh =
        rc.admission.params.depthLow + 8 + pick.below(56);
    rc.admission.params.escalateAfter = 1 + static_cast<int>(
                                                pick.below(3));
    rc.admission.params.relaxAfter = 1 + static_cast<int>(
                                             pick.below(4));
    std::string ctx = "seed=" + std::to_string(seed) + " " +
                      paramStr(rc.admission.params);
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);

    // Offered load 0.5x-3x of this service law's single-core capacity.
    double meanUs = 20 + pick.uniform() * 30;
    double capacity = 1e6 / meanUs * rc.nWorkers;
    double rps = capacity * (0.5 + 2.5 * pick.uniform());
    TimeNs duration = msToNs(30);
    workload::WorkloadSpec spec{
        workload::ServiceLaw(
            std::make_shared<LogNormalDist>(meanUs * 1000.0, 0.5)),
        workload::RateLaw::constant(rps), duration};
    spec.beFraction = pick.uniform();
    spec.beService = std::make_shared<workload::ServiceLaw>(
        std::make_shared<LogNormalDist>(meanUs * 2000.0, 0.4));
    workload::OpenLoopGenerator gen(sim, std::move(spec),
                                    [&](workload::Request &r) {
                                        server.onArrival(r);
                                    });
    gen.start();
    sim.runUntil(duration + secToNs(10));

    const workload::RunMetrics &m = server.metrics();
    EXPECT_EQ(m.arrived(),
              m.completed() + m.cancelled() + m.rejected())
        << ctx;
    EXPECT_EQ(server.inFlight(), 0u) << ctx;

    ASSERT_NE(server.admissionController(), nullptr) << ctx;
    TenantAdmissionStats ts =
        server.admissionController()->tenantStats(0);
    EXPECT_EQ(ts.submitted(), ts.admitted() + ts.rejected()) << ctx;
    EXPECT_EQ(ts.submitted(), m.arrived()) << ctx;
    EXPECT_EQ(ts.rejected(), m.rejected()) << ctx;
    EXPECT_EQ(ts.rejectedLc, m.rejectedLc()) << ctx;
    EXPECT_EQ(ts.rejectedBe, m.rejectedBe()) << ctx;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimAdmissionFuzz,
                         testing::Range<std::uint64_t>(1, 121));

} // namespace
} // namespace preempt::control
