/** @file Unit tests for the sliding-window histogram/counter rings. */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "common/windowed_histogram.hh"

namespace preempt {
namespace {

TEST(Windowed, EmptyAggregateIsZero)
{
    WindowedLatencyHistogram w(4);
    EXPECT_EQ(w.epochs(), 4u);
    EXPECT_EQ(w.rotations(), 0u);
    LatencyHistogram agg = w.aggregate();
    EXPECT_EQ(agg.count(), 0u);
    EXPECT_EQ(agg.p99(), 0u);
}

TEST(Windowed, EpochCountClampedToOne)
{
    WindowedLatencyHistogram w(0);
    EXPECT_EQ(w.epochs(), 1u);
    w.record(5);
    EXPECT_EQ(w.aggregate().count(), 1u);
}

TEST(Windowed, RecordsLandInLiveEpoch)
{
    WindowedLatencyHistogram w(4);
    w.record(100);
    w.record(200, 3);
    LatencyHistogram agg = w.aggregate();
    EXPECT_EQ(agg.count(), 4u);
    EXPECT_EQ(agg.min(), 100u);
    EXPECT_GE(agg.max(), 200u);
}

TEST(Windowed, RotationExpiresEpochsAfterK)
{
    WindowedLatencyHistogram w(4);
    w.record(1000, 10);
    for (int r = 0; r < 3; ++r) {
        w.rotate();
        EXPECT_EQ(w.aggregate().count(), 10u)
            << "retained epoch lost too early at rotation " << r;
    }
    w.rotate(); // 4th rotation: the epoch holding the samples recycles
    EXPECT_EQ(w.aggregate().count(), 0u);
    EXPECT_EQ(w.rotations(), 4u);
}

TEST(Windowed, AggregateCoversExactlyLastKEpochs)
{
    WindowedLatencyHistogram w(3);
    // Epoch i records (i+1) samples of value 10^i-ish spread.
    for (std::uint64_t e = 0; e < 6; ++e) {
        w.record(100 * (e + 1), e + 1);
        if (e != 5)
            w.rotate();
    }
    // Live epoch holds 6 samples, retained ones 5 and 4: total 15.
    EXPECT_EQ(w.aggregate().count(), 6u + 5u + 4u);
    EXPECT_EQ(w.aggregate().min(), 400u);
}

TEST(Windowed, MergeFoldsIntoLiveEpoch)
{
    LatencyHistogram h;
    h.record(50);
    h.record(70);
    WindowedLatencyHistogram w(2);
    w.merge(h);
    EXPECT_EQ(w.aggregate().count(), 2u);
    w.rotate();
    w.rotate();
    EXPECT_EQ(w.aggregate().count(), 0u);
}

TEST(Windowed, LoadShiftConvergesWithinWindow)
{
    // Golden behaviour the telemetry plane is built on: after a load
    // shift, the window quantiles track the new phase once the old
    // epochs rotate out, while a lifetime histogram stays blended.
    constexpr std::size_t kEpochs = 8;
    WindowedLatencyHistogram window(kEpochs);
    LatencyHistogram lifetime;
    Rng rng(42);

    auto runPhase = [&](std::uint64_t base, int epochs) {
        for (int e = 0; e < epochs; ++e) {
            for (int i = 0; i < 1000; ++i) {
                std::uint64_t v = base + rng.below(base / 10);
                window.record(v);
                lifetime.record(v);
            }
            window.rotate();
        }
    };

    runPhase(1000, 32);    // long low-latency phase
    runPhase(100000, 8);   // shift: one full window of high latency

    std::uint64_t wp50 = window.aggregate().p50();
    std::uint64_t lp50 = lifetime.p50();
    // The window has fully converged to the recent phase...
    EXPECT_GE(wp50, 100000u * 95 / 100);
    EXPECT_LE(wp50, 110000u * 105 / 100);
    // ...while the lifetime median still reflects the old phase
    // (32k old samples vs 8k new ones keep it at the low mode).
    EXPECT_LT(lp50, 2000u);
}

TEST(Windowed, MemoryStaysBoundedByK)
{
    // O(K) guarantee: the ring never grows with traffic. Drive far
    // more samples and rotations than epochs and check the structure
    // is still exactly K fixed-size histograms (the only dynamic
    // allocation), with counts that only ever cover K epochs.
    constexpr std::size_t kEpochs = 4;
    WindowedLatencyHistogram w(kEpochs);
    for (int e = 0; e < 10000; ++e) {
        w.record(static_cast<std::uint64_t>(e + 1),
                 1'000'000'000ULL); // huge multiplicity, no allocation
        w.rotate();
        EXPECT_EQ(w.epochs(), kEpochs);
        EXPECT_LE(w.aggregate().count(), kEpochs * 1'000'000'000ULL);
    }
    EXPECT_EQ(w.rotations(), 10000u);
}

TEST(Windowed, ResizeDiscardsAndResetKeepsK)
{
    WindowedLatencyHistogram w(2);
    w.record(10);
    w.resize(6);
    EXPECT_EQ(w.epochs(), 6u);
    EXPECT_EQ(w.aggregate().count(), 0u);
    w.record(20);
    w.reset();
    EXPECT_EQ(w.epochs(), 6u);
    EXPECT_EQ(w.aggregate().count(), 0u);
}

TEST(Windowed, DeterministicAcrossInstances)
{
    // Same drive sequence => byte-identical aggregate statistics.
    // Nothing in the ring reads a clock, so this holds regardless of
    // when or how fast the sequence is replayed.
    auto drive = [](WindowedLatencyHistogram &w) {
        Rng rng(7);
        for (int e = 0; e < 20; ++e) {
            for (int i = 0; i < 500; ++i)
                w.record(1 + rng.below(1000000));
            w.rotate();
        }
    };
    WindowedLatencyHistogram a(5), b(5);
    drive(a);
    drive(b);
    LatencyHistogram ha = a.aggregate(), hb = b.aggregate();
    EXPECT_EQ(ha.count(), hb.count());
    EXPECT_EQ(ha.min(), hb.min());
    EXPECT_EQ(ha.max(), hb.max());
    for (double q : {0.1, 0.5, 0.9, 0.99, 0.999})
        EXPECT_EQ(ha.quantile(q), hb.quantile(q)) << "q=" << q;
    double ma = ha.mean(), mb = hb.mean();
    EXPECT_EQ(0, std::memcmp(&ma, &mb, sizeof(ma)))
        << "means are not bitwise identical";
}

TEST(WindowedCounter, TotalCoversLastKEpochs)
{
    WindowedCounter c(3);
    c.add(5);
    EXPECT_EQ(c.total(), 5u);
    c.rotate();
    c.add(7);
    EXPECT_EQ(c.total(), 12u);
    c.rotate();
    c.add(1);
    EXPECT_EQ(c.total(), 13u);
    c.rotate(); // the epoch holding 5 recycles
    EXPECT_EQ(c.total(), 8u);
    c.rotate();
    c.rotate();
    EXPECT_EQ(c.total(), 0u);
}

TEST(WindowedCounter, ResizeAndReset)
{
    WindowedCounter c(2);
    c.add(3);
    c.resize(4);
    EXPECT_EQ(c.epochs(), 4u);
    EXPECT_EQ(c.total(), 0u);
    c.add(9);
    c.reset();
    EXPECT_EQ(c.total(), 0u);
    EXPECT_EQ(c.epochs(), 4u);
}

} // namespace
} // namespace preempt
