/** @file Unit and property tests for the distribution library. */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/dist.hh"

namespace preempt {
namespace {

TEST(ConstantDist, AlwaysSameValue)
{
    Rng rng(1);
    ConstantDist d(42.5);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(d.sample(rng), 42.5);
    EXPECT_DOUBLE_EQ(d.mean(), 42.5);
}

TEST(ExponentialDist, MeanMatches)
{
    Rng rng(2);
    ExponentialDist d(5000.0);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += d.sample(rng);
    EXPECT_NEAR(sum / n, 5000.0, 50.0);
}

TEST(ExponentialDist, RejectsNonPositiveMean)
{
    EXPECT_EXIT(ExponentialDist(-1.0), testing::ExitedWithCode(1), "");
}

TEST(UniformDist, BoundsAndMean)
{
    Rng rng(3);
    UniformDist d(10.0, 20.0);
    double sum = 0;
    for (int i = 0; i < 50000; ++i) {
        double v = d.sample(rng);
        ASSERT_GE(v, 10.0);
        ASSERT_LT(v, 20.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 50000, 15.0, 0.1);
}

TEST(BimodalDist, ProportionsMatch)
{
    Rng rng(4);
    BimodalDist d(500.0, 500000.0, 0.005);
    int longs = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        double v = d.sample(rng);
        ASSERT_TRUE(v == 500.0 || v == 500000.0);
        longs += v == 500000.0;
    }
    EXPECT_NEAR(static_cast<double>(longs) / n, 0.005, 0.001);
    EXPECT_NEAR(d.mean(), 0.995 * 500 + 0.005 * 500000, 1e-9);
}

TEST(LogNormalDist, MeanMatches)
{
    Rng rng(5);
    LogNormalDist d(1000.0, 0.5);
    double sum = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i)
        sum += d.sample(rng);
    EXPECT_NEAR(sum / n, 1000.0, 20.0);
}

TEST(ParetoDist, TailHeavinessAndMean)
{
    Rng rng(6);
    ParetoDist d(100.0, 2.5);
    double sum = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        double v = d.sample(rng);
        ASSERT_GE(v, 100.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, d.mean(), d.mean() * 0.05);
}

TEST(ParetoDist, InfiniteMeanBelowOne)
{
    ParetoDist d(1.0, 0.9);
    EXPECT_TRUE(std::isinf(d.mean()));
}

TEST(MixtureDist, WeightsRespected)
{
    Rng rng(7);
    auto a = std::make_shared<ConstantDist>(1.0);
    auto b = std::make_shared<ConstantDist>(2.0);
    MixtureDist mix({a, b}, {0.75, 0.25});
    int ones = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ones += mix.sample(rng) == 1.0;
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
    EXPECT_NEAR(mix.mean(), 1.25, 1e-9);
}

TEST(MixtureDist, RejectsMismatchedSizes)
{
    auto a = std::make_shared<ConstantDist>(1.0);
    EXPECT_EXIT(MixtureDist({a}, {0.5, 0.5}), testing::ExitedWithCode(1),
                "");
}

TEST(Zipfian, SkewConcentratesOnHotKeys)
{
    Rng rng(8);
    ZipfianGenerator zipf(10000, 0.99);
    std::map<std::uint64_t, int> counts;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.next(rng)];
    // Key 0 is the hottest; with theta=0.99 it draws a large share.
    EXPECT_GT(counts[0], n / 20);
    // All keys in range.
    for (const auto &[k, c] : counts)
        ASSERT_LT(k, 10000u);
}

TEST(Zipfian, ZeroThetaIsUniformish)
{
    Rng rng(9);
    ZipfianGenerator zipf(100, 0.0);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 100000; ++i)
        ++counts[zipf.next(rng)];
    // No key should dominate.
    for (const auto &[k, c] : counts)
        ASSERT_LT(c, 3000);
}

TEST(PaperWorkloads, ParametersMatchSectionVA)
{
    Rng rng(10);
    auto a1 = makePaperWorkload("A1");
    auto a2 = makePaperWorkload("A2");
    auto b = makePaperWorkload("B");
    EXPECT_NEAR(a1->mean(), 0.995 * 500 + 0.005 * 500000, 1e-6);
    EXPECT_NEAR(a2->mean(), 0.995 * 5000 + 0.005 * 500000, 1e-6);
    EXPECT_NEAR(b->mean(), 5000.0, 1e-6);
}

TEST(PaperWorkloads, UnknownNameIsFatal)
{
    EXPECT_EXIT(makePaperWorkload("Z9"), testing::ExitedWithCode(1),
                "unknown paper workload");
}

TEST(Scv, RanksWorkloadsByDispersion)
{
    Rng rng(11);
    double scv_a1 = estimateScv(*makePaperWorkload("A1"), rng);
    double scv_a2 = estimateScv(*makePaperWorkload("A2"), rng);
    double scv_b = estimateScv(*makePaperWorkload("B"), rng);
    // A1 is the most dispersive, B (exponential) has SCV ~1.
    EXPECT_GT(scv_a1, scv_a2);
    EXPECT_GT(scv_a2, scv_b);
    EXPECT_NEAR(scv_b, 1.0, 0.1);
}

// Property sweep: every distribution yields non-negative samples and a
// sampled mean near the analytic mean.
class DistributionProperty
    : public testing::TestWithParam<std::pair<const char *, DistributionPtr>>
{
};

TEST_P(DistributionProperty, NonNegativeAndMeanConsistent)
{
    Rng rng(99);
    const auto &dist = *GetParam().second;
    double sum = 0;
    const int n = 300000;
    for (int i = 0; i < n; ++i) {
        double v = dist.sample(rng);
        ASSERT_GE(v, 0.0) << dist.name();
        sum += v;
    }
    double mean = sum / n;
    EXPECT_NEAR(mean, dist.mean(), dist.mean() * 0.05 + 1e-9)
        << dist.name();
}

TEST_P(DistributionProperty, SampleNsRoundsSanely)
{
    Rng rng(100);
    const auto &dist = *GetParam().second;
    for (int i = 0; i < 1000; ++i) {
        TimeNs v = dist.sampleNs(rng);
        ASSERT_LT(v, static_cast<TimeNs>(1) << 62);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionProperty,
    testing::Values(
        std::pair<const char *, DistributionPtr>{
            "const", std::make_shared<ConstantDist>(7.0)},
        std::pair<const char *, DistributionPtr>{
            "exp", std::make_shared<ExponentialDist>(5000.0)},
        std::pair<const char *, DistributionPtr>{
            "uniform", std::make_shared<UniformDist>(1.0, 2.0)},
        std::pair<const char *, DistributionPtr>{
            "bimodalA1", makePaperWorkload("A1")},
        std::pair<const char *, DistributionPtr>{
            "bimodalA2", makePaperWorkload("A2")},
        std::pair<const char *, DistributionPtr>{
            "lognormal", std::make_shared<LogNormalDist>(1000.0, 0.6)},
        std::pair<const char *, DistributionPtr>{
            "pareto", std::make_shared<ParetoDist>(10.0, 2.2)}),
    [](const testing::TestParamInfo<
        std::pair<const char *, DistributionPtr>> &info) {
        return info.param.first;
    });

} // namespace
} // namespace preempt
