/**
 * @file
 * Tests for the fault:: injection subsystem: spec grammar, per-rule
 * determinism, the exact semantics of every (action, site) combination,
 * and the runtime mitigations (resend watchdog, fire watchdog,
 * duplicate hardening) each fault exercises.
 */

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/stats.hh"
#include "core/timing_wheel.hh"
#include "fault/fault.hh"
#include "hw/kernel.hh"
#include "hw/posted_ipi.hh"
#include "hw/uintr.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime_sim/libpreemptible_sim.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

namespace preempt::fault {
namespace {

/** RAII install/uninstall so a failing assertion cannot leak an
 *  injector into the next test. */
struct InjectorGuard
{
    InjectorGuard(const std::string &spec, std::uint64_t seed)
        : inj(FaultPlan::parse(spec), seed)
    {
        setInjector(&inj);
    }

    ~InjectorGuard() { setInjector(nullptr); }

    Injector inj;
};

// ----- Grammar ------------------------------------------------------

TEST(FaultPlanTest, ParsesRulesAndRoundTrips)
{
    std::string spec =
        "drop:uintr@0.01,delay:wake@0.1:2500,jitter:utimer@0.05:1500";
    FaultPlan plan = FaultPlan::parse(spec);
    ASSERT_EQ(plan.rules.size(), 3u);

    EXPECT_EQ(plan.rules[0].action, Action::Drop);
    EXPECT_EQ(plan.rules[0].site, Site::Uintr);
    EXPECT_DOUBLE_EQ(plan.rules[0].probability, 0.01);
    EXPECT_EQ(plan.rules[0].param, 0u);

    EXPECT_EQ(plan.rules[1].action, Action::Delay);
    EXPECT_EQ(plan.rules[1].site, Site::Wake);
    EXPECT_DOUBLE_EQ(plan.rules[1].probability, 0.1);
    EXPECT_EQ(plan.rules[1].param, 2500u);

    EXPECT_EQ(plan.rules[2].action, Action::Jitter);
    EXPECT_EQ(plan.rules[2].site, Site::Utimer);
    EXPECT_DOUBLE_EQ(plan.rules[2].probability, 0.05);
    EXPECT_EQ(plan.rules[2].param, 1500u);

    // Canonical reprint parses back to the same plan.
    EXPECT_EQ(plan.str(), spec);
    FaultPlan again = FaultPlan::parse(plan.str());
    EXPECT_EQ(again.str(), plan.str());
}

TEST(FaultPlanTest, EmptySpecsGiveEmptyPlan)
{
    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan::parse("none").empty());
    EXPECT_EQ(FaultPlan::parse("none").str(), "none");
}

TEST(FaultPlanTest, MalformedSpecsAreFatal)
{
    EXPECT_EXIT(FaultPlan::parse("boom:uintr@0.5"),
                testing::ExitedWithCode(1), "unknown fault action");
    EXPECT_EXIT(FaultPlan::parse("drop:nowhere@0.5"),
                testing::ExitedWithCode(1), "unknown fault site");
    EXPECT_EXIT(FaultPlan::parse("drop:uintr"),
                testing::ExitedWithCode(1), "malformed fault rule");
    EXPECT_EXIT(FaultPlan::parse("drop@0.5"),
                testing::ExitedWithCode(1), "malformed fault rule");
    EXPECT_EXIT(FaultPlan::parse("drop:uintr@1.5"),
                testing::ExitedWithCode(1), "probability");
    EXPECT_EXIT(FaultPlan::parse("drop:uintr@-0.5"),
                testing::ExitedWithCode(1), "probability");
    EXPECT_EXIT(FaultPlan::parse("drop:uintr@zzz"),
                testing::ExitedWithCode(1), "probability");
    EXPECT_EXIT(FaultPlan::parse("drop:uintr@0.5:-5"),
                testing::ExitedWithCode(1), "param");
}

TEST(FaultPlanTest, InvalidActionSiteCombosAreFatal)
{
    // One representative rejection per site.
    EXPECT_EXIT(FaultPlan::parse("slow:uintr@1"),
                testing::ExitedWithCode(1), "not supported");
    EXPECT_EXIT(FaultPlan::parse("coalesce:ipi@1"),
                testing::ExitedWithCode(1), "not supported");
    EXPECT_EXIT(FaultPlan::parse("dup:signal@1"),
                testing::ExitedWithCode(1), "not supported");
    EXPECT_EXIT(FaultPlan::parse("reorder:utimer@1"),
                testing::ExitedWithCode(1), "not supported");
    EXPECT_EXIT(FaultPlan::parse("drop:wheel@1"),
                testing::ExitedWithCode(1), "not supported");
    EXPECT_EXIT(FaultPlan::parse("drop:handler@1"),
                testing::ExitedWithCode(1), "not supported");
    EXPECT_EXIT(FaultPlan::parse("slow:wake@1"),
                testing::ExitedWithCode(1), "not supported");
}

// ----- Injector core ------------------------------------------------

TEST(FaultInjectorTest, NullSafeHelpersAreIdentityWhenUninstalled)
{
    ASSERT_FALSE(active());
    TransportFault t = onTransport(Site::Uintr, 100, 0);
    EXPECT_FALSE(t.drop);
    EXPECT_EQ(t.delay, 0u);
    EXPECT_FALSE(t.duplicate);
    TimerFault tm = onTimer(Site::Utimer, 100, 0);
    EXPECT_FALSE(tm.drop);
    EXPECT_FALSE(tm.coalesce);
    EXPECT_FALSE(tm.duplicate);
    EXPECT_EQ(tm.jitter, 0u);
    EXPECT_EQ(onHandler(100, 0), 0u);
}

TEST(FaultInjectorTest, EveryValidComboTriggersCountsAndEmits)
{
    struct Combo
    {
        Action action;
        Site site;
        bool transportSite;
    };
    const Combo combos[] = {
        {Action::Drop, Site::Uintr, true},
        {Action::Delay, Site::Uintr, true},
        {Action::Duplicate, Site::Uintr, true},
        {Action::Reorder, Site::Uintr, true},
        {Action::Drop, Site::Wake, true},
        {Action::Delay, Site::Wake, true},
        {Action::Duplicate, Site::Wake, true},
        {Action::Drop, Site::Ipi, true},
        {Action::Delay, Site::Ipi, true},
        {Action::Duplicate, Site::Ipi, true},
        {Action::Reorder, Site::Ipi, true},
        {Action::Drop, Site::Signal, true},
        {Action::Delay, Site::Signal, true},
        {Action::Reorder, Site::Signal, true},
        {Action::Drop, Site::Utimer, false},
        {Action::Coalesce, Site::Utimer, false},
        {Action::Jitter, Site::Utimer, false},
        {Action::Duplicate, Site::Utimer, false},
        {Action::Coalesce, Site::Wheel, false},
        {Action::Jitter, Site::Wheel, false},
    };

    obs::MetricsRegistry registry;
    obs::setMetricsRegistry(&registry);

    for (const Combo &c : combos) {
        std::string spec = std::string(actionName(c.action)) + ":" +
                           siteName(c.site) + "@1";
        if (c.action == Action::Delay)
            spec += ":1234";
        InjectorGuard guard(spec, 42);
        SCOPED_TRACE(spec);

        if (c.transportSite) {
            TransportFault f = guard.inj.transport(c.site, 10, 0);
            switch (c.action) {
              case Action::Drop:
                EXPECT_TRUE(f.drop);
                break;
              case Action::Delay:
                EXPECT_EQ(f.delay, 1234u); // exactly the param
                break;
              case Action::Reorder:
                // Uniform in the [1, default window] range.
                EXPECT_GE(f.delay, 1u);
                EXPECT_LE(f.delay, 2000u);
                break;
              case Action::Duplicate:
                EXPECT_TRUE(f.duplicate);
                EXPECT_EQ(f.duplicateDelay, 700u); // default
                break;
              default:
                FAIL();
            }
        } else {
            TimerFault f = guard.inj.timer(c.site, 10, 0);
            switch (c.action) {
              case Action::Drop:
                EXPECT_TRUE(f.drop);
                break;
              case Action::Coalesce:
                EXPECT_TRUE(f.coalesce);
                break;
              case Action::Jitter:
                EXPECT_GE(f.jitter, 1u);
                EXPECT_LE(f.jitter, 1500u); // default window
                break;
              case Action::Duplicate:
                EXPECT_TRUE(f.duplicate);
                EXPECT_EQ(f.duplicateDelay, 700u);
                break;
              default:
                FAIL();
            }
        }
        EXPECT_EQ(guard.inj.injected(c.action, c.site), 1u);
        EXPECT_EQ(guard.inj.totalInjected(), 1u);
        // Each injection bumps its per-combo obs counter.
        std::string counter = std::string("fault.injected.") +
                              actionName(c.action) + ":" +
                              siteName(c.site);
        EXPECT_EQ(registry.counter(counter).value(), 1u);
    }

    // The remaining valid combo: slow:handler.
    {
        InjectorGuard guard("slow:handler@1", 42);
        EXPECT_EQ(guard.inj.handlerSlowdown(10, 0), 2000u); // default
        EXPECT_EQ(guard.inj.injected(Action::Slow, Site::Handler), 1u);
        EXPECT_EQ(registry.counter("fault.injected.slow:handler").value(),
                  1u);
    }
    {
        InjectorGuard guard("slow:handler@1:555", 42);
        EXPECT_EQ(guard.inj.handlerSlowdown(10, 0), 555u);
    }

    obs::setMetricsRegistry(nullptr);
}

TEST(FaultInjectorTest, SameSeedSamePlanIsDeterministic)
{
    const char *spec = "drop:uintr@0.3,delay:wake@0.5:100,reorder:ipi@0.4";
    Injector a(FaultPlan::parse(spec), 99);
    Injector b(FaultPlan::parse(spec), 99);
    Injector c(FaultPlan::parse(spec), 100);

    bool differs_from_c = false;
    for (int i = 0; i < 200; ++i) {
        Site site = i % 3 == 0 ? Site::Uintr
                               : (i % 3 == 1 ? Site::Wake : Site::Ipi);
        TransportFault fa = a.transport(site, i, 0);
        TransportFault fb = b.transport(site, i, 0);
        TransportFault fc = c.transport(site, i, 0);
        EXPECT_EQ(fa.drop, fb.drop) << "i=" << i;
        EXPECT_EQ(fa.delay, fb.delay) << "i=" << i;
        EXPECT_EQ(fa.duplicate, fb.duplicate) << "i=" << i;
        if (fa.drop != fc.drop || fa.delay != fc.delay)
            differs_from_c = true;
    }
    EXPECT_EQ(a.totalInjected(), b.totalInjected());
    EXPECT_TRUE(differs_from_c) << "different seeds gave the same "
                                   "200-event fault schedule";
}

// ----- Transport faults against hw:: models -------------------------

TEST(FaultTransportTest, UintrDelayIsExactlyTheParam)
{
    TimeNs base = 0;
    {
        sim::Simulator sim(7);
        hw::LatencyConfig cfg;
        hw::UintrUnit unit(sim, cfg);
        int rx = unit.registerHandler(
            [&](TimeNs t, std::uint64_t) { base = t; });
        int uipi = unit.registerSender(unit.createFd(rx, 0));
        unit.senduipi(uipi);
        sim.runAll();
        ASSERT_GT(base, 0u);
    }
    TimeNs faulted = 0;
    {
        InjectorGuard guard("delay:uintr@1:3000", 1);
        sim::Simulator sim(7); // same seed: same base latency sample
        hw::LatencyConfig cfg;
        hw::UintrUnit unit(sim, cfg);
        int rx = unit.registerHandler(
            [&](TimeNs t, std::uint64_t) { faulted = t; });
        int uipi = unit.registerSender(unit.createFd(rx, 0));
        unit.senduipi(uipi);
        sim.runAll();
    }
    EXPECT_EQ(faulted, base + 3000);
}

TEST(FaultTransportTest, BlockedWakeDelayIsExactlyTheParam)
{
    TimeNs base = 0;
    {
        sim::Simulator sim(11);
        hw::LatencyConfig cfg;
        hw::UintrUnit unit(sim, cfg);
        int rx = unit.registerHandler(
            [&](TimeNs t, std::uint64_t) { base = t; });
        int uipi = unit.registerSender(unit.createFd(rx, 0));
        unit.setBlocked(rx, true);
        unit.senduipi(uipi);
        sim.runAll();
        ASSERT_GT(base, 0u);
    }
    TimeNs faulted = 0;
    {
        InjectorGuard guard("delay:wake@1:4500", 1);
        sim::Simulator sim(11);
        hw::LatencyConfig cfg;
        hw::UintrUnit unit(sim, cfg);
        int rx = unit.registerHandler(
            [&](TimeNs t, std::uint64_t) { faulted = t; });
        int uipi = unit.registerSender(unit.createFd(rx, 0));
        unit.setBlocked(rx, true);
        unit.senduipi(uipi);
        sim.runAll();
    }
    EXPECT_EQ(faulted, base + 4500);
}

TEST(FaultTransportTest, PostedIpiDelayIsExactAndDropRetries)
{
    TimeNs base = 0;
    {
        sim::Simulator sim(13);
        hw::LatencyConfig cfg;
        hw::PostedIpiUnit ipi(sim, cfg);
        int t = ipi.attachTarget([&](TimeNs now) { base = now; });
        ipi.sendIpi(t);
        sim.runAll();
        ASSERT_GT(base, 0u);
    }
    TimeNs faulted = 0;
    {
        InjectorGuard guard("delay:ipi@1:2222", 1);
        sim::Simulator sim(13);
        hw::LatencyConfig cfg;
        hw::PostedIpiUnit ipi(sim, cfg);
        int t = ipi.attachTarget([&](TimeNs now) { faulted = now; });
        ipi.sendIpi(t);
        sim.runAll();
    }
    EXPECT_EQ(faulted, base + 2222);

    // A dropped IPI never sets the pending bit, so a later send is not
    // coalesced away: the retry delivers.
    int delivered = 0;
    sim::Simulator sim(13);
    hw::LatencyConfig cfg;
    hw::PostedIpiUnit ipi(sim, cfg);
    int t = ipi.attachTarget([&](TimeNs) { ++delivered; });
    {
        InjectorGuard guard("drop:ipi@1", 1);
        ipi.sendIpi(t);
        sim.runAll();
        EXPECT_EQ(delivered, 0);
        EXPECT_EQ(ipi.stats().dropped, 1u);
    }
    ipi.sendIpi(t);
    sim.runAll();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(ipi.stats().delivered, 1u);
}

TEST(FaultTransportTest, PostedIpiDuplicateIsCountedNoOp)
{
    InjectorGuard guard("dup:ipi@1:900", 1);
    sim::Simulator sim(17);
    hw::LatencyConfig cfg;
    hw::PostedIpiUnit ipi(sim, cfg);
    int delivered = 0;
    int t = ipi.attachTarget([&](TimeNs) { ++delivered; });
    ipi.sendIpi(t);
    sim.runAll();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(ipi.stats().delivered, 1u);
    EXPECT_EQ(ipi.stats().redundant, 1u);
}

TEST(FaultTransportTest, SignalDelayIsExactAndDropIsCounted)
{
    TimeNs base = 0;
    {
        sim::Simulator sim(19);
        hw::LatencyConfig cfg;
        hw::SignalPath signals(sim, cfg);
        signals.sendSignal([&](TimeNs now, TimeNs) { base = now; });
        sim.runAll();
        ASSERT_GT(base, 0u);
    }
    TimeNs faulted = 0;
    {
        InjectorGuard guard("delay:signal@1:1777", 1);
        sim::Simulator sim(19);
        hw::LatencyConfig cfg;
        hw::SignalPath signals(sim, cfg);
        signals.sendSignal([&](TimeNs now, TimeNs) { faulted = now; });
        sim.runAll();
    }
    EXPECT_EQ(faulted, base + 1777);

    InjectorGuard guard("drop:signal@1", 1);
    sim::Simulator sim(19);
    hw::LatencyConfig cfg;
    hw::SignalPath signals(sim, cfg);
    int entries = 0;
    signals.sendSignal([&](TimeNs, TimeNs) { ++entries; });
    sim.runAll();
    EXPECT_EQ(entries, 0);
    EXPECT_EQ(signals.dropped(), 1u);
    EXPECT_EQ(signals.delivered(), 0u);
}

// ----- UINTR duplicate hardening and resend watchdog ----------------

TEST(FaultUintrTest, DuplicateNotificationForClearedPirIsCountedNoOp)
{
    InjectorGuard guard("dup:uintr@1:700", 1);
    sim::Simulator sim(23);
    hw::LatencyConfig cfg;
    hw::UintrUnit unit(sim, cfg);
    int deliveries = 0;
    int rx = unit.registerHandler(
        [&](TimeNs, std::uint64_t) { ++deliveries; });
    int uipi = unit.registerSender(unit.createFd(rx, 0));
    unit.senduipi(uipi);
    sim.runAll();
    EXPECT_EQ(deliveries, 1);
    EXPECT_EQ(unit.stats().redundant, 1u);
    EXPECT_EQ(unit.pending(rx), 0u);
}

TEST(FaultUintrTest, DuplicateWakeAfterResumeIsCountedNoOp)
{
    InjectorGuard guard("dup:wake@1", 1);
    sim::Simulator sim(29);
    hw::LatencyConfig cfg;
    hw::UintrUnit unit(sim, cfg);
    int deliveries = 0;
    int wakes = 0;
    int rx = unit.registerHandler(
        [&](TimeNs, std::uint64_t) { ++deliveries; },
        [&](TimeNs) { ++wakes; });
    int uipi = unit.registerSender(unit.createFd(rx, 0));
    unit.setBlocked(rx, true);
    unit.senduipi(uipi);
    sim.runAll();
    EXPECT_EQ(deliveries, 1);
    EXPECT_EQ(wakes, 1);
    EXPECT_EQ(unit.stats().deliveredBlocked, 1u);
    EXPECT_EQ(unit.stats().redundant, 1u);
}

TEST(FaultUintrTest, DroppedNotificationRecoveredByResendWatchdog)
{
    sim::Simulator sim(31);
    hw::LatencyConfig cfg;
    hw::UintrUnit unit(sim, cfg);
    int deliveries = 0;
    int rx = unit.registerHandler(
        [&](TimeNs, std::uint64_t) { ++deliveries; });
    int uipi = unit.registerSender(unit.createFd(rx, 0));
    {
        InjectorGuard guard("drop:uintr@1", 1);
        unit.senduipi(uipi); // notify() drops synchronously
        EXPECT_EQ(unit.stats().droppedNotifications, 1u);
        EXPECT_EQ(unit.pending(rx), 1u);
    }
    // The fault clears; the armed resend watchdog re-notifies and the
    // request finally lands.
    sim.runAll();
    EXPECT_EQ(deliveries, 1);
    EXPECT_EQ(unit.stats().resends, 1u);
    EXPECT_EQ(unit.pending(rx), 0u);
}

TEST(FaultUintrTest, PersistentDropAbandonsResendAfterBudget)
{
    InjectorGuard guard("drop:uintr@1", 1);
    sim::Simulator sim(37);
    hw::LatencyConfig cfg;
    hw::UintrUnit unit(sim, cfg);
    int deliveries = 0;
    int rx = unit.registerHandler(
        [&](TimeNs, std::uint64_t) { ++deliveries; });
    int uipi = unit.registerSender(unit.createFd(rx, 0));
    unit.senduipi(uipi);
    sim.runAll();
    EXPECT_EQ(deliveries, 0);
    EXPECT_EQ(unit.stats().resends, 5u); // kResendMaxAttempts
    EXPECT_EQ(unit.stats().resendsAbandoned, 1u);
    EXPECT_EQ(unit.stats().droppedNotifications, 6u);
    EXPECT_EQ(unit.pending(rx), 1u); // still accounted, not lost
}

// ----- Timing wheel: defer, never drop ------------------------------

TEST(FaultWheelTest, CoalesceDefersFiresWithoutLosingThem)
{
    sim::Simulator sim(41);
    core::TimingWheel wheel(1000);
    int fired = 0;
    wheel.schedule(5000, 1);
    {
        InjectorGuard guard("coalesce:wheel@1", 1);
        wheel.advance(5000,
                      [&](std::uint64_t, TimeNs) { ++fired; });
        EXPECT_EQ(fired, 0);
        EXPECT_GE(wheel.deferredFires(), 1u);
        EXPECT_EQ(wheel.size(), 1u); // still armed
    }
    wheel.advance(20000, [&](std::uint64_t, TimeNs) { ++fired; });
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(wheel.size(), 0u);
}

TEST(FaultWheelTest, JitterDelaysFiresWithinTheWindow)
{
    core::TimingWheel wheel(1000);
    int fired = 0;
    TimeNs fired_at = 0;
    wheel.schedule(5000, 1);
    {
        InjectorGuard guard("jitter:wheel@1:3000", 1);
        wheel.advance(5000, [&](std::uint64_t, TimeNs) { ++fired; });
        EXPECT_EQ(fired, 0);
        EXPECT_GE(wheel.deferredFires(), 1u);
    }
    wheel.advance(20000, [&](std::uint64_t, TimeNs when) {
        ++fired;
        fired_at = when;
    });
    EXPECT_EQ(fired, 1);
    EXPECT_GT(fired_at, 5000u);
    EXPECT_LE(fired_at, 5000u + 3000u);
}

// ----- Runtime-level mitigations ------------------------------------

struct LpRunSummary
{
    std::uint64_t arrived = 0;
    std::uint64_t completed = 0;
    std::uint64_t watchdogRecoveries = 0;
    std::uint64_t redundantFires = 0;
    std::uint64_t droppedFires = 0;
    bool allDone = true;
    TimeNs p99 = 0;
};

/** Run a small LibPreemptible workload, optionally under faults. */
LpRunSummary
runLibPreemptible(std::uint64_t sim_seed, const std::string &spec,
                  std::uint64_t fault_seed)
{
    std::optional<InjectorGuard> guard;
    if (!spec.empty())
        guard.emplace(spec, fault_seed);

    sim::Simulator sim(sim_seed);
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 2;
    rc.quantum = usToNs(5);
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);

    TimeNs duration = msToNs(5);
    // ~30% of two-worker capacity at a 5 us mean: low enough that the
    // system drains even with every fire dropped.
    double rps = 0.3 * 2.0 / 5e-6;
    workload::WorkloadSpec wspec{
        workload::makeServiceLaw("A1", duration),
        workload::RateLaw::constant(rps), duration};
    workload::OpenLoopGenerator gen(
        sim, std::move(wspec),
        [&](workload::Request &r) { server.onArrival(r); });
    gen.start();
    sim.runUntil(duration + secToNs(30));

    LpRunSummary out;
    out.arrived = server.metrics().arrived();
    out.completed = server.metrics().completed();
    out.watchdogRecoveries = server.watchdogRecoveries();
    out.redundantFires = server.utimer().redundantFires();
    out.droppedFires = server.utimer().droppedFires();
    std::vector<TimeNs> lat;
    for (const auto &req : gen.pool()) {
        if (!req.done()) {
            out.allDone = false;
            continue;
        }
        lat.push_back(req.latency());
    }
    if (!lat.empty())
        out.p99 = percentileNearestRank(lat, 0.99);
    return out;
}

TEST(FaultRuntimeTest, DroppedUtimerFiresRecoveredByFireWatchdog)
{
    LpRunSummary s = runLibPreemptible(43, "drop:utimer@1", 2);
    EXPECT_GT(s.arrived, 100u);
    EXPECT_EQ(s.arrived, s.completed);
    EXPECT_TRUE(s.allDone);
    // Every preemption fire was lost; only the watchdog can have ended
    // those segments.
    EXPECT_GT(s.watchdogRecoveries, 0u);
}

TEST(FaultRuntimeTest, DuplicatedUtimerFiresAreCountedNoOps)
{
    LpRunSummary s = runLibPreemptible(47, "dup:utimer@1:500", 2);
    EXPECT_GT(s.arrived, 100u);
    EXPECT_EQ(s.arrived, s.completed);
    EXPECT_TRUE(s.allDone);
    EXPECT_GT(s.redundantFires, 0u);
}

TEST(FaultRuntimeTest, SlowHandlersDegradeButConserveRequests)
{
    LpRunSummary s = runLibPreemptible(53, "slow:handler@0.5:3000", 2);
    EXPECT_GT(s.arrived, 100u);
    EXPECT_EQ(s.arrived, s.completed);
    EXPECT_TRUE(s.allDone);
}

TEST(FaultRuntimeTest, SameSeedSamePlanGivesByteIdenticalTraces)
{
    auto traced = [](std::uint64_t sim_seed) {
        obs::Tracer tracer;
        obs::setTracer(&tracer);
        InjectorGuard guard(
            "drop:utimer@0.2,dup:utimer@0.2,slow:handler@0.3", 9);
        runLibPreemptible(sim_seed, "", 0); // guard already installed
        obs::setTracer(nullptr);
        std::ostringstream os;
        obs::writeChromeTrace(tracer, os);
        return os.str();
    };
    std::string a = traced(61);
    std::string b = traced(61);
#ifndef PREEMPT_OBS_DISABLED
    // With instrumentation compiled out the trace is near-empty but
    // must still be byte-identical.
    EXPECT_GT(a.size(), 1000u);
#endif
    EXPECT_EQ(a, b);
}

// ----- CLI session --------------------------------------------------

TEST(FaultSessionTest, InstallsOnlyForNonEmptyPlans)
{
    {
        char p0[] = "prog";
        char *argv[] = {p0};
        CommandLine cli(1, argv);
        Session session(cli);
        cli.rejectUnknown();
        EXPECT_FALSE(session.active());
        EXPECT_FALSE(active());
    }
    {
        char p0[] = "prog";
        char p1[] = "--faults=none";
        char *argv[] = {p0, p1};
        CommandLine cli(2, argv);
        Session session(cli);
        cli.rejectUnknown();
        EXPECT_FALSE(session.active());
        EXPECT_FALSE(active());
    }
    {
        char p0[] = "prog";
        char p1[] = "--faults=drop:uintr@0.5";
        char p2[] = "--fault-seed=7";
        char *argv[] = {p0, p1, p2};
        CommandLine cli(3, argv);
        Session session(cli);
        cli.rejectUnknown();
        EXPECT_TRUE(session.active());
        EXPECT_TRUE(active());
        EXPECT_EQ(session.injector()->seed(), 7u);
        EXPECT_EQ(session.injector()->plan().str(), "drop:uintr@0.5");
    }
    EXPECT_FALSE(active()); // the session uninstalls on destruction
}

} // namespace
} // namespace preempt::fault
