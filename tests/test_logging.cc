/** @file Unit tests for the logging/error primitives. */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace preempt {
namespace {

TEST(Logging, FormatStringSubstitutesArguments)
{
    EXPECT_EQ(detail::formatString("plain"), "plain");
    EXPECT_EQ(detail::formatString("a=%d b=%s", 7, "x"), "a=7 b=x");
    EXPECT_EQ(detail::formatString("%zu items", std::size_t{3}),
              "3 items");
    EXPECT_EQ(detail::formatString("100%%"), "100%");
}

TEST(Logging, FormatStringHandlesExtraTextAfterConversions)
{
    EXPECT_EQ(detail::formatString("x=%d!", 1), "x=1!");
    EXPECT_EQ(detail::formatString("%f us", 2.5), "2.5 us");
}

TEST(Logging, InformToggle)
{
    setInformEnabled(false);
    EXPECT_FALSE(informEnabled());
    setInformEnabled(true);
    EXPECT_TRUE(informEnabled());
}

TEST(Logging, ParseLogLevelAcceptsAliases)
{
    EXPECT_EQ(parseLogLevel("inform"), LogLevel::Inform);
    EXPECT_EQ(parseLogLevel("info"), LogLevel::Inform);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("warning"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("error"), LogLevel::Fatal);
    EXPECT_EQ(parseLogLevel("quiet"), LogLevel::Fatal);
}

TEST(LoggingDeath, ParseLogLevelRejectsGarbage)
{
    EXPECT_EXIT(parseLogLevel("loud"), testing::ExitedWithCode(1),
                "log-level");
}

TEST(Logging, MinLevelGatesInformAndWarn)
{
    setMinLogLevel(LogLevel::Inform);
    testing::internal::CaptureStderr();
    inform("visible inform");
    warn("visible warn");
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("visible inform"), std::string::npos);
    EXPECT_NE(out.find("visible warn"), std::string::npos);

    setMinLogLevel(LogLevel::Warn);
    testing::internal::CaptureStderr();
    inform("hidden inform");
    warn("still visible warn");
    out = testing::internal::GetCapturedStderr();
    EXPECT_EQ(out.find("hidden inform"), std::string::npos);
    EXPECT_NE(out.find("still visible warn"), std::string::npos);

    setMinLogLevel(LogLevel::Fatal);
    testing::internal::CaptureStderr();
    inform("hidden inform");
    warn("hidden warn");
    out = testing::internal::GetCapturedStderr();
    EXPECT_TRUE(out.empty()) << out;

    setMinLogLevel(LogLevel::Inform);
}

TEST(Logging, WarnOnceFiresExactlyOnce)
{
    setMinLogLevel(LogLevel::Inform);
    testing::internal::CaptureStderr();
    for (int i = 0; i < 5; ++i)
        warn_once("once only %d", i);
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("once only 0"), std::string::npos);
    EXPECT_EQ(out.find("once only 1"), std::string::npos);
    // Exactly one warn line.
    std::size_t first = out.find("warn:");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(out.find("warn:", first + 1), std::string::npos);
}

TEST(Logging, WarnEveryNFiresOnFirstAndEveryNth)
{
    setMinLogLevel(LogLevel::Inform);
    testing::internal::CaptureStderr();
    for (int i = 0; i < 7; ++i)
        warn_every_n(3, "tick %d", i);
    std::string out = testing::internal::GetCapturedStderr();
    // Occurrences 0, 3, 6 report; the rest are suppressed.
    EXPECT_NE(out.find("tick 0"), std::string::npos);
    EXPECT_EQ(out.find("tick 1"), std::string::npos);
    EXPECT_EQ(out.find("tick 2"), std::string::npos);
    EXPECT_NE(out.find("tick 3"), std::string::npos);
    EXPECT_EQ(out.find("tick 4"), std::string::npos);
    EXPECT_NE(out.find("tick 6"), std::string::npos);
}

TEST(Logging, WarnOnceSitesAreIndependent)
{
    setMinLogLevel(LogLevel::Inform);
    testing::internal::CaptureStderr();
    warn_once("site A");
    warn_once("site B"); // distinct call site: its own static flag
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("site A"), std::string::npos);
    EXPECT_NE(out.find("site B"), std::string::npos);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 1), "boom 1");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "bad config");
}

TEST(LoggingDeath, PanicIfOnlyFiresOnTrue)
{
    panic_if(false, "never");
    EXPECT_DEATH(panic_if(true, "yes"), "yes");
}

} // namespace
} // namespace preempt
