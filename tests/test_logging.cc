/** @file Unit tests for the logging/error primitives. */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace preempt {
namespace {

TEST(Logging, FormatStringSubstitutesArguments)
{
    EXPECT_EQ(detail::formatString("plain"), "plain");
    EXPECT_EQ(detail::formatString("a=%d b=%s", 7, "x"), "a=7 b=x");
    EXPECT_EQ(detail::formatString("%zu items", std::size_t{3}),
              "3 items");
    EXPECT_EQ(detail::formatString("100%%"), "100%");
}

TEST(Logging, FormatStringHandlesExtraTextAfterConversions)
{
    EXPECT_EQ(detail::formatString("x=%d!", 1), "x=1!");
    EXPECT_EQ(detail::formatString("%f us", 2.5), "2.5 us");
}

TEST(Logging, InformToggle)
{
    setInformEnabled(false);
    EXPECT_FALSE(informEnabled());
    setInformEnabled(true);
    EXPECT_TRUE(informEnabled());
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 1), "boom 1");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "bad config");
}

TEST(LoggingDeath, PanicIfOnlyFiresOnTrue)
{
    panic_if(false, "never");
    EXPECT_DEATH(panic_if(true, "yes"), "yes");
}

} // namespace
} // namespace preempt
