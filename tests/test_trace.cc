/** @file Tests for trace recording/replay. */

#include <gtest/gtest.h>

#include <sstream>

#include "runtime_sim/libpreemptible_sim.hh"
#include "workload/generator.hh"
#include "workload/trace.hh"

namespace preempt::workload {
namespace {

TEST(Trace, SaveLoadRoundtrip)
{
    Trace t;
    t.add({usToNs(10), usToNs(5), RequestClass::LatencyCritical});
    t.add({usToNs(3), usToNs(100), RequestClass::BestEffort});
    t.sort();

    std::stringstream ss;
    t.save(ss);
    Trace back = Trace::load(ss);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back.entries()[0].arrival, usToNs(3));
    EXPECT_EQ(back.entries()[0].cls, RequestClass::BestEffort);
    EXPECT_EQ(back.entries()[1].service, usToNs(5));
    EXPECT_EQ(back.duration(), usToNs(10));
}

TEST(Trace, LoadSkipsCommentsAndBlankLines)
{
    std::stringstream ss("# header\n\n100,200\n  # indented comment\n"
                         "300,400,1\n");
    Trace t = Trace::load(ss);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t.entries()[1].cls, RequestClass::BestEffort);
}

TEST(Trace, LoadSortsOutOfOrderArrivals)
{
    std::stringstream ss("500,10\n100,20\n300,30\n");
    Trace t = Trace::load(ss);
    EXPECT_EQ(t.entries()[0].arrival, 100u);
    EXPECT_EQ(t.entries()[2].arrival, 500u);
}

TEST(TraceDeath, RejectsZeroService)
{
    std::stringstream ss("100,0\n");
    EXPECT_EXIT(Trace::load(ss), testing::ExitedWithCode(1),
                "zero service");
}

TEST(TraceDeath, RejectsBadClass)
{
    std::stringstream ss("100,10,7\n");
    EXPECT_EXIT(Trace::load(ss), testing::ExitedWithCode(1),
                "class");
}

TEST(Trace, MeanService)
{
    Trace t;
    t.add({0, 100, RequestClass::LatencyCritical});
    t.add({1, 300, RequestClass::LatencyCritical});
    EXPECT_DOUBLE_EQ(t.meanServiceNs(), 200.0);
}

TEST(TraceReplay, DrivesServerIdenticallyToRecording)
{
    // Record a synthetic run, then replay the trace and verify the
    // server sees identical arrivals and produces identical results.
    TimeNs duration = msToNs(20);
    Trace trace;
    {
        sim::Simulator sim(11);
        TraceRecorder recorder;
        WorkloadSpec spec{makeServiceLaw("A1", duration),
                          RateLaw::constant(200e3), duration};
        hw::LatencyConfig cfg;
        runtime_sim::LibPreemptibleConfig rc;
        rc.nWorkers = 2;
        rc.quantum = usToNs(10);
        runtime_sim::LibPreemptibleSim server(sim, cfg, rc);
        OpenLoopGenerator gen(sim, std::move(spec), [&](Request &r) {
            recorder.onArrival(r);
            server.onArrival(r);
        });
        gen.start();
        sim.runAll();
        trace = recorder.take();
        EXPECT_EQ(trace.size(), server.metrics().arrived());
    }

    sim::Simulator sim(12); // different seed: replay must not care
    hw::LatencyConfig cfg;
    runtime_sim::LibPreemptibleConfig rc;
    rc.nWorkers = 2;
    rc.quantum = usToNs(10);
    runtime_sim::LibPreemptibleSim server(sim, cfg, rc);
    TraceReplayGenerator replay(sim, trace, [&](Request &r) {
        server.onArrival(r);
    });
    replay.start();
    sim.runAll();
    EXPECT_EQ(server.metrics().arrived(), trace.size());
    EXPECT_EQ(server.metrics().completed(), trace.size());
    EXPECT_GT(server.metrics().totalPreemptions(), 0u);
}

TEST(TraceReplay, RespectsClasses)
{
    Trace t;
    t.add({0, usToNs(1), RequestClass::LatencyCritical});
    t.add({usToNs(1), usToNs(100), RequestClass::BestEffort});
    sim::Simulator sim(1);
    int lc = 0, be = 0;
    TraceReplayGenerator replay(sim, t, [&](Request &r) {
        (r.cls == RequestClass::BestEffort ? be : lc) += 1;
    });
    replay.start();
    sim.runAll();
    EXPECT_EQ(lc, 1);
    EXPECT_EQ(be, 1);
}

} // namespace
} // namespace preempt::workload
