/** @file Tests for the Shinjuku and Libinger baseline models. */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/libinger_sim.hh"
#include "baselines/shinjuku_sim.hh"
#include "workload/generator.hh"

namespace preempt::baselines {
namespace {

template <typename Server, typename Config>
struct Harness
{
    Harness(Config cfg, double rps, const std::string &wl, TimeNs duration,
            std::uint64_t seed = 42)
        : sim(seed), server(sim, hwcfg, std::move(cfg))
    {
        workload::WorkloadSpec spec{
            workload::makeServiceLaw(wl, duration),
            workload::RateLaw::constant(rps), duration};
        gen = std::make_unique<workload::OpenLoopGenerator>(
            sim, std::move(spec),
            [this](workload::Request &r) { server.onArrival(r); });
        gen->start();
    }

    sim::Simulator sim;
    hw::LatencyConfig hwcfg;
    Server server;
    std::unique_ptr<workload::OpenLoopGenerator> gen;
};

TEST(ShinjukuSim, ConservesRequests)
{
    ShinjukuConfig cfg;
    cfg.nWorkers = 5;
    cfg.quantum = usToNs(5);
    Harness<ShinjukuSim, ShinjukuConfig> h(cfg, 300e3, "A1", msToNs(50));
    h.sim.runAll();
    const auto &m = h.server.metrics();
    EXPECT_GT(m.arrived(), 1000u);
    EXPECT_EQ(m.arrived(), m.completed());
    EXPECT_EQ(h.server.inFlight(), 0u);
    EXPECT_EQ(h.server.queueLen(), 0u);
}

TEST(ShinjukuSim, QuantumClampedToPracticalMinimum)
{
    sim::Simulator sim(1);
    hw::LatencyConfig hwcfg;
    ShinjukuConfig cfg;
    cfg.nWorkers = 2;
    cfg.quantum = usToNs(1);
    ShinjukuSim s(sim, hwcfg, cfg);
    EXPECT_EQ(s.effectiveQuantum(), hwcfg.shinjukuMinQuantum);
}

TEST(ShinjukuSim, PreemptsLongRequests)
{
    ShinjukuConfig cfg;
    cfg.nWorkers = 3;
    cfg.quantum = usToNs(5);
    Harness<ShinjukuSim, ShinjukuConfig> h(cfg, 100e3, "A1", msToNs(50));
    h.sim.runAll();
    EXPECT_GT(h.server.metrics().totalPreemptions(), 20u);
}

TEST(ShinjukuSim, NoPreemptWhenQuantumZero)
{
    ShinjukuConfig cfg;
    cfg.nWorkers = 3;
    cfg.quantum = 0;
    Harness<ShinjukuSim, ShinjukuConfig> h(cfg, 100e3, "A1", msToNs(20));
    h.sim.runAll();
    EXPECT_EQ(h.server.metrics().totalPreemptions(), 0u);
}

TEST(ShinjukuSimDeath, ApicTargetLimitEnforced)
{
    sim::Simulator sim(1);
    hw::LatencyConfig hwcfg;
    ShinjukuConfig cfg;
    cfg.nWorkers = hwcfg.apicMaxTargets + 1;
    EXPECT_EXIT(ShinjukuSim(sim, hwcfg, cfg), testing::ExitedWithCode(1),
                "APIC");
}

TEST(LibingerSim, ConservesRequests)
{
    LibingerConfig cfg;
    cfg.nWorkers = 5;
    cfg.quantum = usToNs(60);
    Harness<LibingerSim, LibingerConfig> h(cfg, 200e3, "A1", msToNs(50));
    h.sim.runAll();
    const auto &m = h.server.metrics();
    EXPECT_GT(m.arrived(), 1000u);
    EXPECT_EQ(m.arrived(), m.completed());
    EXPECT_EQ(h.server.inFlight(), 0u);
}

TEST(LibingerSim, QuantumClampedToKernelFloor)
{
    sim::Simulator sim(1);
    hw::LatencyConfig hwcfg;
    LibingerConfig cfg;
    cfg.nWorkers = 2;
    cfg.quantum = usToNs(5);
    LibingerSim s(sim, hwcfg, cfg);
    EXPECT_EQ(s.effectiveQuantum(), hwcfg.kernelTimerFloor);
}

TEST(LibingerSim, PreemptionOverheadDominatedBySignals)
{
    LibingerConfig cfg;
    cfg.nWorkers = 2;
    cfg.quantum = usToNs(60);
    Harness<LibingerSim, LibingerConfig> h(cfg, 100e3, "A1", msToNs(50));
    h.sim.runAll();
    // Per-segment timer syscalls make Libinger's overhead ratio large
    // for microsecond-scale requests (the paper's core critique).
    EXPECT_GT(h.server.metrics().overheadRatio(), 0.3);
}

} // namespace
} // namespace preempt::baselines
