/**
 * @file
 * Deterministic parallel experiment harness.
 *
 * Every experiment in this reproduction decomposes into independent
 * cells — one (load point x seed x policy x fault config) each with
 * its own Simulator. The harness runs those cells on a fixed-size
 * thread pool (--jobs=N; --jobs=1 is the sequential driver) while
 * guaranteeing the observable output is byte-identical to a
 * sequential run:
 *
 *  - Per-cell state. A cell gets its own RNG substream seed
 *    (cellSeed(base, index) — a pure hash, never draw-order
 *    dependent), its own obs::Tracer + obs::MetricsRegistry capture,
 *    and its own fault::Injector, all installed thread-locally
 *    (setThreadTracer / setThreadMetricsRegistry /
 *    setThreadInjector) so concurrent cells never share a ring, a
 *    counter, or an RNG.
 *
 *  - In-order merge. After all cells of a run() finish, their
 *    captures are absorbed into the session sinks in submission
 *    (index) order, and map() returns results indexed by cell. stdout
 *    rows, --trace-out, --metrics-out, and sweep reports therefore do
 *    not depend on --jobs or on completion order.
 *
 * See DESIGN.md section 10 for the determinism rules.
 */

#ifndef PREEMPT_EXP_HARNESS_HH
#define PREEMPT_EXP_HARNESS_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "exp/pool.hh"
#include "fault/fault.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace preempt::obs {
class Session;
} // namespace preempt::obs

namespace preempt::exp {

/**
 * Deterministic per-cell seed: a splitmix64-style hash of
 * (base_seed, cell_index). Depends on nothing but its arguments — not
 * on --jobs, not on which cells ran before — so the same base seed
 * reproduces the same substream at any parallelism.
 */
constexpr std::uint64_t
cellSeed(std::uint64_t base_seed, std::uint64_t cell_index)
{
    std::uint64_t z =
        base_seed + (cell_index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** What a cell body sees. */
struct CellEnv
{
    /** This cell's index in [0, count). */
    std::size_t index = 0;

    /** cellSeed(options.baseSeed, index). */
    std::uint64_t seed = 0;

    /** The cell's scoped fault injector, or nullptr (no plan). */
    fault::Injector *injector = nullptr;
};

/** How a Harness captures and merges. */
struct HarnessOptions
{
    /** Worker threads; <= 0 means hardware concurrency, 1 = inline. */
    int jobs = 1;

    /** Base seed for cellSeed() derivation. */
    std::uint64_t baseSeed = 0;

    /** Where per-cell traces merge to (nullptr = tracing off). */
    obs::Tracer *traceSink = nullptr;

    /** Shape of per-cell tracers (cloned from the session tracer so
     *  capacity-driven drops match a sequential run). */
    obs::Tracer::Options tracerOptions{};

    /** Where per-cell metrics merge to (nullptr = metrics off). */
    obs::MetricsRegistry *metricsSink = nullptr;

    /** Fault plan instantiated per cell (empty = no injection). Each
     *  cell draws from Injector(plan, cellSeed(faultSeed, index)). */
    fault::FaultPlan faultPlan{};

    /** Base seed for per-cell fault injector streams. */
    std::uint64_t faultSeed = 0;
};

/**
 * The harness. One instance per bench binary; run()/map() may be
 * called repeatedly — captures merge in submission order across
 * calls, so a multi-phase bench (grid, then sweep) keeps one
 * deterministic output stream.
 */
class Harness
{
  public:
    explicit Harness(HarnessOptions options);

    /**
     * Convenience wiring from the standard bench sessions: sinks and
     * tracer shape come from `obs`, the fault plan and seed from
     * `fault` (may be nullptr when the bench takes no --faults).
     */
    Harness(int jobs, obs::Session &obs, fault::Session *fault,
            std::uint64_t base_seed = 0);

    /** Resolved worker-thread count (>= 1). */
    int jobs() const { return options_.jobs; }

    /**
     * Run `count` cells. body(env) executes with the cell's tracer,
     * metrics registry, and injector installed thread-locally; all
     * cells complete (and their captures merge, in index order)
     * before run() returns. The body must confine itself to cell
     * state — anything emitted through obs::emit / obs::addCount /
     * fault::onTransport lands in the cell capture automatically.
     */
    void run(std::size_t count,
             const std::function<void(const CellEnv &)> &body);

    /**
     * run() returning one result per cell, in cell order. R must be
     * default-constructible and movable.
     */
    template <typename R, typename Fn>
    std::vector<R>
    map(std::size_t count, Fn &&fn)
    {
        std::vector<R> out(count);
        run(count, [&](const CellEnv &env) { out[env.index] = fn(env); });
        return out;
    }

  private:
    HarnessOptions options_;
};

} // namespace preempt::exp

#endif // PREEMPT_EXP_HARNESS_HH
