/**
 * @file
 * Fixed-size fan-out for independent experiment cells.
 *
 * runIndexed() is the only scheduling primitive the experiment
 * harness uses: it executes `count` index-addressed tasks on up to
 * `jobs` threads, claiming indices dynamically from an atomic
 * counter. Which thread runs which cell is NOT deterministic — that
 * is the point; determinism is recovered one layer up by giving every
 * cell its own state and merging results in index order.
 */

#ifndef PREEMPT_EXP_POOL_HH
#define PREEMPT_EXP_POOL_HH

#include <cstddef>
#include <functional>

namespace preempt::exp {

/**
 * Resolve a --jobs value: positive counts pass through, zero (or
 * negative) means hardware concurrency (at least 1).
 */
int resolveJobs(int jobs);

/**
 * Run fn(0) .. fn(count-1), each exactly once, on up to `jobs`
 * threads. jobs <= 1 runs every index inline on the calling thread in
 * ascending order (exactly the sequential behaviour); otherwise
 * min(jobs, count) worker threads claim indices dynamically and the
 * call returns after all of them joined. fn must be safe to call
 * concurrently for distinct indices and must not throw.
 */
void runIndexed(int jobs, std::size_t count,
                const std::function<void(std::size_t)> &fn);

} // namespace preempt::exp

#endif // PREEMPT_EXP_POOL_HH
