#include "exp/harness.hh"

#include <memory>
#include <optional>

#include "obs/session.hh"

namespace preempt::exp {

Harness::Harness(HarnessOptions options) : options_(std::move(options))
{
    options_.jobs = resolveJobs(options_.jobs);
}

Harness::Harness(int jobs, obs::Session &obs, fault::Session *fault,
                 std::uint64_t base_seed)
    : Harness([&] {
          HarnessOptions o;
          o.jobs = jobs;
          o.baseSeed = base_seed;
          o.traceSink = obs.tracerPtr();
          o.tracerOptions = obs.tracerOptions();
          o.metricsSink = obs.metricsPtr();
          if (fault) {
              o.faultPlan = fault->plan();
              o.faultSeed = fault->seed();
          }
          return o;
      }())
{
}

void
Harness::run(std::size_t count,
             const std::function<void(const CellEnv &)> &body)
{
    /** One cell's captured observability, merged after the fan-out. */
    struct Capture
    {
        std::unique_ptr<obs::Tracer> tracer;
        std::unique_ptr<obs::MetricsRegistry> metrics;
    };
    std::vector<Capture> captures(count);

    runIndexed(options_.jobs, count, [&](std::size_t i) {
        CellEnv env;
        env.index = i;
        env.seed = cellSeed(options_.baseSeed, i);

        Capture &cap = captures[i];
        if (options_.traceSink) {
            obs::Tracer::Options topt = options_.tracerOptions;
            topt.lazyRings = true; // cells are thread-confined
            cap.tracer = std::make_unique<obs::Tracer>(topt);
        }
        if (options_.metricsSink)
            cap.metrics = std::make_unique<obs::MetricsRegistry>();

        std::optional<fault::Injector> injector;
        if (!options_.faultPlan.empty()) {
            injector.emplace(options_.faultPlan,
                             cellSeed(options_.faultSeed, i));
            env.injector = &*injector;
        }

        obs::ScopedThreadTracer scopedTracer(cap.tracer.get());
        obs::ScopedThreadMetricsRegistry scopedMetrics(cap.metrics.get());
        fault::ScopedThreadInjector scopedInjector(env.injector);
        body(env);
    });

    // Submission-order merge: output depends on cell indices only,
    // never on which thread finished first.
    for (Capture &cap : captures) {
        if (cap.tracer)
            options_.traceSink->absorb(*cap.tracer);
        if (cap.metrics)
            options_.metricsSink->absorb(*cap.metrics);
    }
}

} // namespace preempt::exp
