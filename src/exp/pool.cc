#include "exp/pool.hh"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace preempt::exp {

int
resolveJobs(int jobs)
{
    if (jobs > 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

void
runIndexed(int jobs, std::size_t count,
           const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (jobs <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::size_t nThreads = std::min<std::size_t>(
        static_cast<std::size_t>(jobs), count);
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            fn(i);
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(nThreads);
    for (std::size_t t = 0; t < nThreads; ++t)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();
}

} // namespace preempt::exp
