/**
 * @file
 * Sliding-window companions for lifetime statistics.
 *
 * A WindowedLatencyHistogram is a ring of K epoch sub-histograms: all
 * recording lands in the live epoch, rotate() retires the live epoch
 * and recycles the oldest, and aggregate() merges the K retained
 * epochs into one LatencyHistogram covering only the last K epochs of
 * traffic. With rotation driven by telemetry publisher ticks every
 * --stats-interval, the aggregate is a quantile view of roughly the
 * last K * interval seconds — recent traffic, not process lifetime.
 *
 * Determinism rule: nothing in this file reads a clock. Rotation
 * happens only when the owner calls rotate() (the publisher tick), so
 * recording threads observe no wall-clock-dependent state and
 * same-seed simulator runs stay byte-identical with windows enabled.
 *
 * Memory is O(K) per windowed metric — K fixed-size bucket arrays —
 * regardless of run length or sample count (tests/test_windowed.cc
 * pins this).
 */

#ifndef PREEMPT_COMMON_WINDOWED_HISTOGRAM_HH
#define PREEMPT_COMMON_WINDOWED_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/histogram.hh"

namespace preempt {

/** Ring of K epoch histograms; aggregate() = the last K epochs. */
class WindowedLatencyHistogram
{
  public:
    static constexpr std::size_t kDefaultEpochs = 8;

    /** @param epochs ring size K (clamped to >= 1). */
    explicit WindowedLatencyHistogram(
        std::size_t epochs = kDefaultEpochs);

    /** Record into the live epoch. */
    void record(std::uint64_t value, std::uint64_t times = 1);

    /** Fold a whole histogram into the live epoch (absorb paths). */
    void merge(const LatencyHistogram &other);

    /**
     * Retire the live epoch: the oldest retained epoch is cleared and
     * becomes the new live one. Called once per publisher tick, never
     * from recording threads or accessors.
     */
    void rotate();

    /** O(K) merge of every retained epoch (including the live one). */
    LatencyHistogram aggregate() const;

    /** Ring size K. Fixed after construction / resize(). */
    std::size_t epochs() const { return ring_.size(); }

    /** rotate() calls so far (epoch id of the live slot). */
    std::uint64_t rotations() const { return rotations_; }

    /** Change K; discards all retained samples. */
    void resize(std::size_t epochs);

    /** Clear every epoch, keep K. */
    void reset();

  private:
    std::vector<LatencyHistogram> ring_;
    std::size_t head_ = 0; ///< index of the live epoch
    std::uint64_t rotations_ = 0;
};

/** Ring of K epoch counts; total() = events in the last K epochs. */
class WindowedCounter
{
  public:
    explicit WindowedCounter(
        std::size_t epochs = WindowedLatencyHistogram::kDefaultEpochs);

    void add(std::uint64_t n = 1) { ring_[head_] += n; }
    void rotate();
    std::uint64_t total() const;
    std::size_t epochs() const { return ring_.size(); }
    void resize(std::size_t epochs);
    void reset();

  private:
    std::vector<std::uint64_t> ring_;
    std::size_t head_ = 0;
};

} // namespace preempt

#endif // PREEMPT_COMMON_WINDOWED_HISTOGRAM_HH
