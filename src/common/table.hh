/**
 * @file
 * Column-aligned console tables so every bench binary prints the same
 * rows/series the paper reports in a readable form.
 */

#ifndef PREEMPT_COMMON_TABLE_HH
#define PREEMPT_COMMON_TABLE_HH

#include <sstream>
#include <string>
#include <vector>

namespace preempt {

/** Accumulates rows of string cells and prints them aligned. */
class ConsoleTable
{
  public:
    /** @param title printed above the table. */
    explicit ConsoleTable(std::string title);

    /** Set header cells. */
    void header(std::vector<std::string> cells);

    /** Append a row of preformatted cells. */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with fixed precision. */
    static std::string num(double v, int precision = 2);

    /** Render to the stream. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace preempt

#endif // PREEMPT_COMMON_TABLE_HH
