#include "common/dist.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace preempt {

ConstantDist::ConstantDist(double value) : value_(value)
{
    fatal_if(value < 0, "constant distribution value must be >= 0");
}

double
ConstantDist::sample(Rng &rng) const
{
    (void)rng;
    return value_;
}

std::string
ConstantDist::name() const
{
    std::ostringstream os;
    os << "const(" << value_ << ")";
    return os.str();
}

ExponentialDist::ExponentialDist(double mean) : mean_(mean)
{
    fatal_if(mean <= 0, "exponential mean must be > 0");
}

double
ExponentialDist::sample(Rng &rng) const
{
    // Inverse-CDF; 1 - u avoids log(0).
    return -mean_ * std::log(1.0 - rng.uniform());
}

std::string
ExponentialDist::name() const
{
    std::ostringstream os;
    os << "exp(mean=" << mean_ << ")";
    return os.str();
}

UniformDist::UniformDist(double lo, double hi) : lo_(lo), hi_(hi)
{
    fatal_if(hi < lo, "uniform distribution requires hi >= lo");
}

double
UniformDist::sample(Rng &rng) const
{
    return rng.uniform(lo_, hi_);
}

std::string
UniformDist::name() const
{
    std::ostringstream os;
    os << "uniform[" << lo_ << "," << hi_ << ")";
    return os.str();
}

BimodalDist::BimodalDist(double short_value, double long_value, double p_long)
    : shortValue_(short_value), longValue_(long_value), pLong_(p_long)
{
    fatal_if(p_long < 0 || p_long > 1, "bimodal p_long must be in [0,1]");
}

double
BimodalDist::sample(Rng &rng) const
{
    return rng.uniform() < pLong_ ? longValue_ : shortValue_;
}

double
BimodalDist::mean() const
{
    return (1.0 - pLong_) * shortValue_ + pLong_ * longValue_;
}

std::string
BimodalDist::name() const
{
    std::ostringstream os;
    os << "bimodal(" << (1.0 - pLong_) * 100 << "%x" << shortValue_ << ","
       << pLong_ * 100 << "%x" << longValue_ << ")";
    return os.str();
}

LogNormalDist::LogNormalDist(double mean, double sigma)
    : mean_(mean), sigma_(sigma)
{
    fatal_if(mean <= 0, "lognormal mean must be > 0");
    // E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
    mu_ = std::log(mean) - 0.5 * sigma * sigma;
}

double
LogNormalDist::sample(Rng &rng) const
{
    // Box-Muller.
    double u1 = 1.0 - rng.uniform();
    double u2 = rng.uniform();
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    return std::exp(mu_ + sigma_ * z);
}

std::string
LogNormalDist::name() const
{
    std::ostringstream os;
    os << "lognormal(mean=" << mean_ << ",sigma=" << sigma_ << ")";
    return os.str();
}

ParetoDist::ParetoDist(double scale, double alpha)
    : scale_(scale), alpha_(alpha)
{
    fatal_if(scale <= 0 || alpha <= 0, "pareto needs scale, alpha > 0");
}

double
ParetoDist::sample(Rng &rng) const
{
    return scale_ * std::pow(1.0 - rng.uniform(), -1.0 / alpha_);
}

double
ParetoDist::mean() const
{
    if (alpha_ <= 1.0)
        return std::numeric_limits<double>::infinity();
    return alpha_ * scale_ / (alpha_ - 1.0);
}

std::string
ParetoDist::name() const
{
    std::ostringstream os;
    os << "pareto(xm=" << scale_ << ",alpha=" << alpha_ << ")";
    return os.str();
}

MixtureDist::MixtureDist(std::vector<DistributionPtr> components,
                         std::vector<double> weights, std::string label)
    : components_(std::move(components)), label_(std::move(label))
{
    fatal_if(components_.empty(), "mixture needs at least one component");
    fatal_if(components_.size() != weights.size(),
             "mixture components/weights size mismatch");
    totalWeight_ = 0;
    for (double w : weights) {
        fatal_if(w < 0, "mixture weights must be >= 0");
        totalWeight_ += w;
        cumulative_.push_back(totalWeight_);
    }
    fatal_if(totalWeight_ <= 0, "mixture total weight must be > 0");
}

double
MixtureDist::sample(Rng &rng) const
{
    double u = rng.uniform(0, totalWeight_);
    auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    std::size_t idx = std::min<std::size_t>(
        static_cast<std::size_t>(it - cumulative_.begin()),
        components_.size() - 1);
    return components_[idx]->sample(rng);
}

double
MixtureDist::mean() const
{
    double m = 0;
    double prev = 0;
    for (std::size_t i = 0; i < components_.size(); ++i) {
        double w = cumulative_[i] - prev;
        prev = cumulative_[i];
        m += w / totalWeight_ * components_[i]->mean();
    }
    return m;
}

std::string
MixtureDist::name() const
{
    return label_;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    fatal_if(n == 0, "zipfian needs a non-empty key space");
    fatal_if(theta < 0 || theta >= 1.0, "zipfian theta must be in [0,1)");
    zetan_ = zeta(n, theta);
    double zeta2 = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
}

double
ZipfianGenerator::zeta(std::uint64_t n, double theta)
{
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

std::uint64_t
ZipfianGenerator::next(Rng &rng) const
{
    double u = rng.uniform();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    double v = static_cast<double>(n_) *
               std::pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t k = static_cast<std::uint64_t>(v);
    return k >= n_ ? n_ - 1 : k;
}

DistributionPtr
makePaperWorkload(const std::string &which)
{
    // Times in nanoseconds.
    if (which == "A1")
        return std::make_shared<BimodalDist>(500.0, 500000.0, 0.005);
    if (which == "A2")
        return std::make_shared<BimodalDist>(5000.0, 500000.0, 0.005);
    if (which == "B")
        return std::make_shared<ExponentialDist>(5000.0);
    fatal("unknown paper workload '%s' (expected A1, A2, or B)",
          which.c_str());
}

double
estimateScv(const Distribution &dist, Rng &rng, int samples)
{
    double sum = 0;
    double sumsq = 0;
    for (int i = 0; i < samples; ++i) {
        double v = dist.sample(rng);
        sum += v;
        sumsq += v * v;
    }
    double mean = sum / samples;
    double var = sumsq / samples - mean * mean;
    return var / (mean * mean);
}

} // namespace preempt
