#include "common/histogram.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace preempt {

LatencyHistogram::LatencyHistogram()
    : buckets_(kBuckets, 0), count_(0), min_(~0ULL), max_(0), sum_(0),
      m2_(0)
{
}

int
LatencyHistogram::bucketFor(std::uint64_t value)
{
    if (value < static_cast<std::uint64_t>(kSubBuckets))
        return static_cast<int>(value);
    // For value in [2^msb, 2^(msb+1)) with msb >= kSubBucketBits, the
    // top kSubBucketBits bits select a sub-bucket in
    // [kSubBuckets/2, kSubBuckets).
    int msb = 63 - std::countl_zero(value);
    int octave = msb - kSubBucketBits + 1;
    int sub = static_cast<int>(value >> octave);
    return (octave + 1) * (kSubBuckets / 2) + sub;
}

std::uint64_t
LatencyHistogram::bucketMid(int bucket)
{
    if (bucket < kSubBuckets)
        return static_cast<std::uint64_t>(bucket);
    // Invert bucketFor: index = (octave+1)*16 + sub with sub in [16,32),
    // so octave = index/16 - 2.
    int octave = bucket / (kSubBuckets / 2) - 2;
    std::uint64_t sub = static_cast<std::uint64_t>(
        bucket - (octave + 1) * (kSubBuckets / 2));
    std::uint64_t lo = sub << octave;
    std::uint64_t width = 1ULL << octave;
    return lo + width / 2;
}

void
LatencyHistogram::record(std::uint64_t value)
{
    record(value, 1);
}

void
LatencyHistogram::record(std::uint64_t value, std::uint64_t times)
{
    if (times == 0)
        return;
    int b = bucketFor(value);
    panic_if(b < 0 || b >= kBuckets, "histogram bucket out of range");
    buckets_[static_cast<std::size_t>(b)] += times;
    double v = static_cast<double>(value);
    double n = static_cast<double>(count_);
    double k = static_cast<double>(times);
    // Chan's update for a batch of `times` equal values: centered,
    // so tight clusters of large values keep their variance instead
    // of cancelling (sumSq/n - mean^2 loses every significant digit
    // for 1e15-scale ns values with unit-scale spread).
    if (count_ != 0) {
        double delta = v - sum_ / n;
        m2_ += delta * delta * n * k / (n + k);
    }
    count_ += times;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    sum_ += v * k;
}

double
LatencyHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
LatencyHistogram::stddev() const
{
    if (count_ == 0)
        return 0.0;
    double var = m2_ / static_cast<double>(count_);
    return var > 0 ? std::sqrt(var) : 0.0;
}

std::uint64_t
LatencyHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        seen += buckets_[static_cast<std::size_t>(b)];
        if (seen >= rank) {
            std::uint64_t mid = bucketMid(b);
            return std::clamp(mid, min_, max_);
        }
    }
    return max_;
}

double
LatencyHistogram::fractionAbove(std::uint64_t threshold) const
{
    if (count_ == 0)
        return 0.0;
    std::uint64_t above = 0;
    for (int b = kBuckets - 1; b >= 0; --b) {
        // Skip empty buckets: midpoints of never-used top octaves
        // would overflow 64 bits.
        if (buckets_[static_cast<std::size_t>(b)] == 0)
            continue;
        if (bucketMid(b) <= threshold)
            break;
        above += buckets_[static_cast<std::size_t>(b)];
    }
    return static_cast<double>(above) / static_cast<double>(count_);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (int b = 0; b < kBuckets; ++b)
        buckets_[static_cast<std::size_t>(b)] +=
            other.buckets_[static_cast<std::size_t>(b)];
    if (other.count_) {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    // Chan's parallel combination of the centered moments: exact for
    // the merged population (merging equals one big recording up to
    // rounding), no cancellation.
    if (count_ == 0) {
        m2_ = other.m2_;
    } else if (other.count_ != 0) {
        double na = static_cast<double>(count_);
        double nb = static_cast<double>(other.count_);
        double delta = other.sum_ / nb - sum_ / na;
        m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

void
LatencyHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    min_ = ~0ULL;
    max_ = 0;
    sum_ = 0;
    m2_ = 0;
}

std::string
LatencyHistogram::summaryUs() const
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    os << "n=" << count_ << " mean=" << nsToUs(static_cast<TimeNs>(mean()))
       << "us p50=" << nsToUs(p50()) << "us p99=" << nsToUs(p99())
       << "us max=" << nsToUs(max()) << "us";
    return os.str();
}

} // namespace preempt
