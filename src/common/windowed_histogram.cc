#include "common/windowed_histogram.hh"

#include <algorithm>

namespace preempt {

WindowedLatencyHistogram::WindowedLatencyHistogram(std::size_t epochs)
    : ring_(std::max<std::size_t>(epochs, 1))
{
}

void
WindowedLatencyHistogram::record(std::uint64_t value,
                                 std::uint64_t times)
{
    ring_[head_].record(value, times);
}

void
WindowedLatencyHistogram::merge(const LatencyHistogram &other)
{
    ring_[head_].merge(other);
}

void
WindowedLatencyHistogram::rotate()
{
    head_ = (head_ + 1) % ring_.size();
    ring_[head_].reset();
    ++rotations_;
}

LatencyHistogram
WindowedLatencyHistogram::aggregate() const
{
    LatencyHistogram out;
    for (const LatencyHistogram &h : ring_)
        out.merge(h);
    return out;
}

void
WindowedLatencyHistogram::resize(std::size_t epochs)
{
    ring_.assign(std::max<std::size_t>(epochs, 1), LatencyHistogram());
    head_ = 0;
    rotations_ = 0;
}

void
WindowedLatencyHistogram::reset()
{
    for (LatencyHistogram &h : ring_)
        h.reset();
    head_ = 0;
    rotations_ = 0;
}

WindowedCounter::WindowedCounter(std::size_t epochs)
    : ring_(std::max<std::size_t>(epochs, 1), 0)
{
}

void
WindowedCounter::rotate()
{
    head_ = (head_ + 1) % ring_.size();
    ring_[head_] = 0;
}

std::uint64_t
WindowedCounter::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t v : ring_)
        sum += v;
    return sum;
}

void
WindowedCounter::resize(std::size_t epochs)
{
    ring_.assign(std::max<std::size_t>(epochs, 1), 0);
    head_ = 0;
}

void
WindowedCounter::reset()
{
    std::fill(ring_.begin(), ring_.end(), 0);
    head_ = 0;
}

} // namespace preempt
