/**
 * @file
 * HDR-style logarithmic-bucket histogram for latency recording.
 *
 * Values are bucketed with bounded relative error (32 effective
 * sub-buckets per octave keep the relative quantile error under ~3%;
 * tests/test_histogram.cc measures the real bound), which is the
 * standard approach for tail-latency measurement when millions of
 * samples must be recorded cheaply.
 */

#ifndef PREEMPT_COMMON_HISTOGRAM_HH
#define PREEMPT_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hh"

namespace preempt {

/** Log-bucket latency histogram over unsigned 64-bit values. */
class LatencyHistogram
{
  public:
    LatencyHistogram();

    /** Record one value (e.g. a latency in nanoseconds). */
    void record(std::uint64_t value);

    /** Record a value n times. */
    void record(std::uint64_t value, std::uint64_t times);

    /** Number of recorded samples. */
    std::uint64_t count() const { return count_; }

    /** Smallest and largest recorded values (0 if empty). */
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }

    /** Arithmetic mean of the exact recorded values (not the bucket
     *  midpoints: record() keeps an exact running sum). */
    double mean() const;

    /** Standard deviation of the exact recorded values, maintained
     *  with Welford's centered-moment recurrence — the naive
     *  sumSq/n - mean^2 form cancels catastrophically for ns-scale
     *  values with small variance. */
    double stddev() const;

    /**
     * Quantile in [0, 1]; returns the representative value of the
     * bucket containing that rank. q=0.5 is the median, q=0.99 the
     * 99th percentile. Returns 0 for an empty histogram.
     */
    std::uint64_t quantile(double q) const;

    /** Shorthand for common percentiles. */
    std::uint64_t p50() const { return quantile(0.50); }
    std::uint64_t p90() const { return quantile(0.90); }
    std::uint64_t p99() const { return quantile(0.99); }
    std::uint64_t p999() const { return quantile(0.999); }

    /** Fraction of samples strictly above the threshold. */
    double fractionAbove(std::uint64_t threshold) const;

    /** Merge another histogram into this one. */
    void merge(const LatencyHistogram &other);

    /** Forget all samples. */
    void reset();

    /** One-line summary (count/mean/p50/p99/max in microseconds). */
    std::string summaryUs() const;

  private:
    static constexpr int kSubBucketBits = 5; ///< 32 sub-buckets/octave
    static constexpr int kSubBuckets = 1 << kSubBucketBits;
    static constexpr int kOctaves = 64;
    static constexpr int kBuckets = kOctaves * kSubBuckets;

    static int bucketFor(std::uint64_t value);
    static std::uint64_t bucketMid(int bucket);

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_;
    std::uint64_t min_;
    std::uint64_t max_;
    double sum_;
    double m2_; ///< centered second moment (Welford / Chan merge)
};

} // namespace preempt

#endif // PREEMPT_COMMON_HISTOGRAM_HH
