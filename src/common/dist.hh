/**
 * @file
 * Statistical distributions used by workload generation and by the
 * hardware latency models.
 *
 * The paper's synthetic workloads (section V-A):
 *   A1  bimodal: 99.5% 0.5 us, 0.5% 500 us   (heavy tailed)
 *   A2  bimodal: 99.5% 5 us,   0.5% 500 us   (heavy tailed)
 *   B   exponential, mean 5 us               (lighter tailed)
 *   C   dynamic: first half A1, second half B
 */

#ifndef PREEMPT_COMMON_DIST_HH
#define PREEMPT_COMMON_DIST_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/time.hh"

namespace preempt {

/** A distribution over durations, sampled with an external RNG. */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draw one sample. */
    virtual double sample(Rng &rng) const = 0;

    /** Analytical (or configured) mean of the distribution. */
    virtual double mean() const = 0;

    /** Human-readable identifier used in bench output. */
    virtual std::string name() const = 0;

    /** Draw one sample and round to a whole-nanosecond duration. */
    TimeNs
    sampleNs(Rng &rng) const
    {
        double v = sample(rng);
        return v <= 0 ? 0 : static_cast<TimeNs>(v + 0.5);
    }
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/** Fixed value. */
class ConstantDist : public Distribution
{
  public:
    explicit ConstantDist(double value);
    double sample(Rng &rng) const override;
    double mean() const override { return value_; }
    std::string name() const override;

  private:
    double value_;
};

/** Exponential with the given mean. */
class ExponentialDist : public Distribution
{
  public:
    explicit ExponentialDist(double mean);
    double sample(Rng &rng) const override;
    double mean() const override { return mean_; }
    std::string name() const override;

  private:
    double mean_;
};

/** Uniform over [lo, hi). */
class UniformDist : public Distribution
{
  public:
    UniformDist(double lo, double hi);
    double sample(Rng &rng) const override;
    double mean() const override { return 0.5 * (lo_ + hi_); }
    std::string name() const override;

  private:
    double lo_;
    double hi_;
};

/** Two-point mixture: value short w.p. (1 - pLong), else value long. */
class BimodalDist : public Distribution
{
  public:
    BimodalDist(double short_value, double long_value, double p_long);
    double sample(Rng &rng) const override;
    double mean() const override;
    std::string name() const override;

    double shortValue() const { return shortValue_; }
    double longValue() const { return longValue_; }
    double pLong() const { return pLong_; }

  private:
    double shortValue_;
    double longValue_;
    double pLong_;
};

/** Log-normal parameterised by its mean and sigma of the underlying
 *  normal; used for realistic RPC service-time shapes. */
class LogNormalDist : public Distribution
{
  public:
    LogNormalDist(double mean, double sigma);
    double sample(Rng &rng) const override;
    double mean() const override { return mean_; }
    std::string name() const override;

  private:
    double mean_;
    double sigma_;
    double mu_; ///< location of the underlying normal
};

/**
 * Pareto (Lomax form: xm * U^(-1/alpha)). For alpha < 2 the distribution
 * is heavy tailed in the sense used by the paper's Algorithm 1.
 */
class ParetoDist : public Distribution
{
  public:
    ParetoDist(double scale, double alpha);
    double sample(Rng &rng) const override;
    double mean() const override;
    std::string name() const override;

    double alpha() const { return alpha_; }

  private:
    double scale_;
    double alpha_;
};

/** Weighted mixture of component distributions. */
class MixtureDist : public Distribution
{
  public:
    MixtureDist(std::vector<DistributionPtr> components,
                std::vector<double> weights, std::string label = "mixture");
    double sample(Rng &rng) const override;
    double mean() const override;
    std::string name() const override;

  private:
    std::vector<DistributionPtr> components_;
    std::vector<double> cumulative_;
    double totalWeight_;
    std::string label_;
};

/**
 * Zipfian generator over [0, n) with skew theta, using the
 * Gray et al. quick method (same family as MICA's default generator).
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta);

    /** Draw the next key. */
    std::uint64_t next(Rng &rng) const;

    std::uint64_t n() const { return n_; }
    double theta() const { return theta_; }

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t n_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
};

/** Paper workloads by name ("A1", "A2", "B"); C is handled by the
 *  workload generator as a phase switch between A1 and B. */
DistributionPtr makePaperWorkload(const std::string &which);

/** Squared coefficient of variation of a distribution, estimated by
 *  sampling; used to rank workloads by dispersion (Fig. 1 right). */
double estimateScv(const Distribution &dist, Rng &rng, int samples = 200000);

} // namespace preempt

#endif // PREEMPT_COMMON_DIST_HH
