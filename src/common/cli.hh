/**
 * @file
 * Minimal command-line flag parsing for bench and example binaries.
 *
 * Flags take the form --name=value or --name value; unrecognised flags
 * are fatal so experiment scripts fail loudly.
 */

#ifndef PREEMPT_COMMON_CLI_HH
#define PREEMPT_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>

namespace preempt {

/** Parsed command line with typed accessors and defaults. */
class CommandLine
{
  public:
    /**
     * Parse argv. Every flag must be declared by a get*() call with a
     * default; call rejectUnknown() after all get*() calls to fail on
     * typos.
     */
    CommandLine(int argc, char **argv);

    /** String flag with default. */
    std::string getString(const std::string &name, std::string def);

    /** Integer flag with default. */
    std::int64_t getInt(const std::string &name, std::int64_t def);

    /** Floating-point flag with default. */
    double getDouble(const std::string &name, double def);

    /** Boolean flag (--name, --name=true/false) with default. */
    bool getBool(const std::string &name, bool def);

    /** True when the user passed --name (consumed or not). Does not
     *  mark the flag consumed; pair with a get*() call. */
    bool provided(const std::string &name) const
    {
        return values_.find(name) != values_.end();
    }

    /** Fail if any provided flag was never consumed. */
    void rejectUnknown() const;

    /** Program name (argv[0]). */
    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> values_;
    std::map<std::string, bool> consumed_;
};

} // namespace preempt

#endif // PREEMPT_COMMON_CLI_HH
