/**
 * @file
 * Fixed-capacity single-producer/single-consumer ring buffer.
 *
 * Used by the real host runtime to pass requests from the dispatch
 * thread to worker threads without locks, mirroring the paper's
 * dispatch_queue.
 */

#ifndef PREEMPT_COMMON_SPSC_RING_HH
#define PREEMPT_COMMON_SPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <new>
#include <vector>

#include "common/logging.hh"

namespace preempt {

/** Destructive-interference granularity; fixed at 64 bytes (x86-64)
 *  to keep the layout ABI-stable across compiler versions. */
inline constexpr std::size_t kCacheLine = 64;

/** Lock-free SPSC queue with power-of-two capacity. */
template <typename T>
class SpscRing
{
  public:
    /** @param capacity_pow2 capacity; rounded up to a power of two. */
    explicit SpscRing(std::size_t capacity_pow2)
    {
        std::size_t cap = 1;
        while (cap < capacity_pow2)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
        head_.store(0, std::memory_order_relaxed);
        tail_.store(0, std::memory_order_relaxed);
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Producer side: returns false when full. */
    bool
    push(T value)
    {
        std::size_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t head = head_.load(std::memory_order_acquire);
        if (tail - head > mask_)
            return false;
        slots_[tail & mask_] = std::move(value);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side: returns false when empty. */
    bool
    pop(T &out)
    {
        std::size_t head = head_.load(std::memory_order_relaxed);
        std::size_t tail = tail_.load(std::memory_order_acquire);
        if (head == tail)
            return false;
        out = std::move(slots_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Approximate occupancy (exact from either endpoint's thread). */
    std::size_t
    size() const
    {
        std::size_t tail = tail_.load(std::memory_order_acquire);
        std::size_t head = head_.load(std::memory_order_acquire);
        return tail - head;
    }

    bool empty() const { return size() == 0; }

    std::size_t capacity() const { return mask_ + 1; }

  private:
    std::vector<T> slots_;
    std::size_t mask_;
    alignas(kCacheLine) std::atomic<std::size_t> head_;
    alignas(kCacheLine) std::atomic<std::size_t> tail_;
};

} // namespace preempt

#endif // PREEMPT_COMMON_SPSC_RING_HH
