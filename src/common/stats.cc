#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace preempt {

double
RunningStats::stddev() const
{
    double v = variance();
    return v > 0 ? std::sqrt(v) : 0.0;
}

double
hillTailIndex(const std::vector<double> &samples, double tail_fraction)
{
    fatal_if(tail_fraction <= 0 || tail_fraction >= 1,
             "tail_fraction must be in (0,1)");
    std::size_t n = samples.size();
    std::size_t k = static_cast<std::size_t>(
        static_cast<double>(n) * tail_fraction);
    if (k < 8)
        return std::numeric_limits<double>::infinity();

    // Select on a copy: callers keep their sample order (the adaptive
    // driver estimates from a live window it keeps appending to).
    std::vector<double> sel(samples);
    auto thresholdIt = sel.begin() + static_cast<long>(n - k - 1);
    std::nth_element(sel.begin(), thresholdIt, sel.end());
    // x_(n-k) is the threshold order statistic.
    double xk = *thresholdIt;
    if (xk <= 0)
        return std::numeric_limits<double>::infinity();
    double sum = 0;
    std::size_t summed = 0;
    for (auto it = thresholdIt + 1; it != sel.end(); ++it) {
        if (!(*it > 0) || !std::isfinite(*it))
            continue;
        sum += std::log(*it / xk);
        ++summed;
    }
    if (summed == 0 || sum <= 0)
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(summed) / sum;
}

TimeNs
percentileNearestRank(std::vector<TimeNs> &samples, double q)
{
    fatal_if(q <= 0 || q > 1, "quantile must be in (0,1]");
    if (samples.empty())
        return 0;
    std::size_t n = samples.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    rank = std::min(std::max<std::size_t>(rank, 1), n);
    std::size_t idx = rank - 1;
    std::nth_element(samples.begin(),
                     samples.begin() + static_cast<long>(idx),
                     samples.end());
    return samples[idx];
}

RequestStatsWindow::RequestStatsWindow(TimeNs horizon) : horizon_(horizon)
{
    fatal_if(horizon == 0, "stats window horizon must be > 0");
}

void
RequestStatsWindow::onCompletion(TimeNs now, TimeNs latency,
                                 TimeNs service_time)
{
    records_.push_back({now, latency, service_time});
    expire(now);
}

void
RequestStatsWindow::expire(TimeNs now)
{
    TimeNs cutoff = now > horizon_ ? now - horizon_ : 0;
    while (!records_.empty() && records_.front().time < cutoff)
        records_.pop_front();
}

double
RequestStatsWindow::throughputRps(TimeNs now) const
{
    if (records_.empty())
        return 0.0;
    TimeNs span = std::min<TimeNs>(horizon_, now);
    if (span == 0)
        return 0.0;
    return static_cast<double>(records_.size()) / nsToSec(span);
}

TimeNs
RequestStatsWindow::medianLatency() const
{
    if (records_.empty())
        return 0;
    std::vector<TimeNs> lat;
    lat.reserve(records_.size());
    for (const auto &r : records_)
        lat.push_back(r.latency);
    std::size_t mid = lat.size() / 2;
    std::nth_element(lat.begin(), lat.begin() + static_cast<long>(mid),
                     lat.end());
    return lat[mid];
}

TimeNs
RequestStatsWindow::tailLatency() const
{
    if (records_.empty())
        return 0;
    std::vector<TimeNs> lat;
    lat.reserve(records_.size());
    for (const auto &r : records_)
        lat.push_back(r.latency);
    // Nearest rank, not a truncated q*n index: truncation reports the
    // order statistic below the true p99 on small windows (e.g. the
    // maximum of 100 samples vs. the 100th of 101).
    return percentileNearestRank(lat, 0.99);
}

double
RequestStatsWindow::meanServiceNs() const
{
    if (records_.empty())
        return 0.0;
    double sum = 0;
    for (const auto &r : records_)
        sum += static_cast<double>(r.service);
    return sum / static_cast<double>(records_.size());
}

double
RequestStatsWindow::tailIndex() const
{
    std::vector<double> service;
    service.reserve(records_.size());
    for (const auto &r : records_)
        service.push_back(static_cast<double>(r.service));
    return hillTailIndex(service);
}

} // namespace preempt
