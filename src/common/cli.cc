#include "common/cli.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace preempt {

CommandLine::CommandLine(int argc, char **argv)
{
    program_ = argc > 0 ? argv[0] : "unknown";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        fatal_if(arg.rfind("--", 0) != 0,
                 "unexpected positional argument '%s'", arg.c_str());
        arg = arg.substr(2);
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
            consumed_[arg.substr(0, eq)] = false;
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            values_[arg] = argv[++i];
            consumed_[arg] = false;
        } else {
            values_[arg] = "true";
            consumed_[arg] = false;
        }
    }
}

std::string
CommandLine::getString(const std::string &name, std::string def)
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    consumed_[name] = true;
    return it->second;
}

std::int64_t
CommandLine::getInt(const std::string &name, std::int64_t def)
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    consumed_[name] = true;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "flag --%s expects an integer, got '%s'", name.c_str(),
             it->second.c_str());
    return v;
}

double
CommandLine::getDouble(const std::string &name, double def)
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    consumed_[name] = true;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "flag --%s expects a number, got '%s'", name.c_str(),
             it->second.c_str());
    return v;
}

bool
CommandLine::getBool(const std::string &name, bool def)
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    consumed_[name] = true;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    fatal("flag --%s expects a boolean, got '%s'", name.c_str(), v.c_str());
}

void
CommandLine::rejectUnknown() const
{
    for (const auto &[name, used] : consumed_) {
        fatal_if(!used, "unknown flag --%s (see %s --help conventions)",
                 name.c_str(), program_.c_str());
    }
}

} // namespace preempt
