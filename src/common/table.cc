#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <locale>

namespace preempt {

ConsoleTable::ConsoleTable(std::string title) : title_(std::move(title))
{
}

void
ConsoleTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
ConsoleTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
ConsoleTable::num(double v, int precision)
{
    std::ostringstream os;
    // C locale: table output participates in the byte-identical A/B
    // checks, so the global locale must not leak into it.
    os.imbue(std::locale::classic());
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
ConsoleTable::render() const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cells[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

void
ConsoleTable::print() const
{
    std::cout << render() << std::flush;
}

} // namespace preempt
