/**
 * @file
 * Time types shared by the simulator and the host runtime.
 *
 * Simulated time is kept in nanoseconds as a 64-bit unsigned count.
 * The evaluation platform of the paper runs at a fixed 1.7 GHz, so TSC
 * cycles and nanoseconds convert with a fixed ratio.
 */

#ifndef PREEMPT_COMMON_TIME_HH
#define PREEMPT_COMMON_TIME_HH

#include <cstdint>

namespace preempt {

/** Simulated time in nanoseconds. */
using TimeNs = std::uint64_t;

/** TSC cycle count. */
using Cycles = std::uint64_t;

/** Fixed evaluation frequency from the paper (turbo off, 1.7 GHz). */
inline constexpr double kCpuGhz = 1.7;

/** An unreachable point in the future. */
inline constexpr TimeNs kTimeNever = ~static_cast<TimeNs>(0);

/** Convert nanoseconds to TSC cycles at the fixed frequency. */
constexpr Cycles
nsToCycles(TimeNs ns)
{
    return static_cast<Cycles>(static_cast<double>(ns) * kCpuGhz);
}

/** Convert TSC cycles to nanoseconds at the fixed frequency. */
constexpr TimeNs
cyclesToNs(Cycles cycles)
{
    return static_cast<TimeNs>(static_cast<double>(cycles) / kCpuGhz);
}

/** Convenience literals for simulated durations. */
constexpr TimeNs usToNs(double us) { return static_cast<TimeNs>(us * 1e3); }
constexpr TimeNs msToNs(double ms) { return static_cast<TimeNs>(ms * 1e6); }
constexpr TimeNs secToNs(double s) { return static_cast<TimeNs>(s * 1e9); }
constexpr double nsToUs(TimeNs ns) { return static_cast<double>(ns) / 1e3; }
constexpr double nsToMs(TimeNs ns) { return static_cast<double>(ns) / 1e6; }
constexpr double nsToSec(TimeNs ns) { return static_cast<double>(ns) / 1e9; }

} // namespace preempt

#endif // PREEMPT_COMMON_TIME_HH
