/**
 * @file
 * Streaming statistics: Welford mean/variance, a sliding request-stats
 * window (the "Stats" block of Fig. 5), and a Hill estimator for the
 * tail index used by the adaptive time-quantum controller
 * (Algorithm 1).
 */

#ifndef PREEMPT_COMMON_STATS_HH
#define PREEMPT_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/histogram.hh"
#include "common/time.hh"

namespace preempt {

/** Numerically-stable streaming mean/variance. */
class RunningStats
{
  public:
    RunningStats() : n_(0), mean_(0), m2_(0) {}

    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const;

    void reset() { n_ = 0; mean_ = 0; m2_ = 0; }

  private:
    std::uint64_t n_;
    double mean_;
    double m2_;
};

/**
 * Hill estimator of the tail index alpha from the top-k order
 * statistics of a sample. The paper's Algorithm 1 treats
 * 0 <= alpha < 2 as a heavy-tailed regime.
 *
 * The estimate averages log(x_i / x_k) over the tail samples that are
 * actually summable (finite, above the positive threshold x_k) and
 * divides by that count — never by the nominal k — so degenerate
 * samples (zeros, ties at the threshold) cannot bias alpha low.
 *
 * @param samples observation values, any order; left untouched (the
 *        selection works on an internal copy).
 * @param tail_fraction fraction of the largest samples to use.
 * @return estimated alpha, or +inf when there is too little usable
 *         data (fewer than 8 tail samples, or a non-positive
 *         threshold).
 */
double hillTailIndex(const std::vector<double> &samples,
                     double tail_fraction = 0.05);

/**
 * Nearest-rank percentile: the smallest sample such that at least
 * q * n samples are <= it, i.e. the order statistic at index
 * ceil(q * n) - 1. Matches LatencyHistogram::quantile's rank rule
 * (truncating q * n instead biases small-sample p99/p999 low).
 *
 * @param samples observation values (any order); reordered in place.
 * @param q       quantile in (0, 1].
 * @return the selected sample, or 0 when the sample is empty.
 */
TimeNs percentileNearestRank(std::vector<TimeNs> &samples, double q);

/**
 * Sliding window of completed-request records over a time horizon,
 * feeding the scheduler's control loop with load, median and tail
 * latency, and a tail-index estimate; this is the generic "record past
 * request information" abstraction from section III-B.
 */
class RequestStatsWindow
{
  public:
    /** @param horizon how much history to retain (paper: 10 s). */
    explicit RequestStatsWindow(TimeNs horizon = secToNs(10));

    /** Record a request completion. */
    void onCompletion(TimeNs now, TimeNs latency, TimeNs service_time);

    /** Drop records older than the horizon. */
    void expire(TimeNs now);

    /** Requests completed per second over the retained window. */
    double throughputRps(TimeNs now) const;

    /** Median / p99 latency over the window (ns). */
    TimeNs medianLatency() const;
    TimeNs tailLatency() const;

    /** Tail index of the service-time sample (Hill estimator). */
    double tailIndex() const;

    /** Mean service demand over the window (ns). */
    double meanServiceNs() const;

    std::size_t size() const { return records_.size(); }

    TimeNs horizon() const { return horizon_; }

  private:
    struct Record
    {
        TimeNs time;
        TimeNs latency;
        TimeNs service;
    };

    TimeNs horizon_;
    std::deque<Record> records_;
};

} // namespace preempt

#endif // PREEMPT_COMMON_STATS_HH
