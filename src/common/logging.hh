/**
 * @file
 * Logging and error-reporting primitives.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in this library), fatal() is for user/configuration
 * errors, warn()/inform() report conditions without stopping.
 */

#ifndef PREEMPT_COMMON_LOGGING_HH
#define PREEMPT_COMMON_LOGGING_HH

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace preempt {

/** Severity of a log record (ascending). */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Terminate-on-error sink shared by panic()/fatal(). */
[[noreturn]] void logAndAbort(LogLevel level, const char *file, int line,
                              const std::string &msg);

/** Non-fatal sink shared by warn()/inform(). */
void logMessage(LogLevel level, const std::string &msg);

/** Recursive printf-like formatter into a string. */
inline void
formatInto(std::ostringstream &os, const char *fmt)
{
    while (*fmt) {
        if (fmt[0] == '%' && fmt[1] == '%') {
            os << '%';
            fmt += 2;
        } else {
            os << *fmt++;
        }
    }
}

/** True for printf length modifiers (skipped; values print via <<). */
inline bool
isLengthModifier(char c)
{
    return c == 'h' || c == 'l' || c == 'j' || c == 'z' || c == 't' ||
           c == 'L' || c == 'q';
}

template <typename T, typename... Args>
void
formatInto(std::ostringstream &os, const char *fmt, T &&value,
           Args &&...args)
{
    while (*fmt) {
        if (fmt[0] == '%' && fmt[1] == '%') {
            os << '%';
            fmt += 2;
        } else if (fmt[0] == '%') {
            // Skip over a printf-style conversion spec (flags, width,
            // precision, length modifiers, conversion); the value is
            // rendered via operator<<.
            ++fmt;
            while (*fmt &&
                   (!std::isalpha(static_cast<unsigned char>(*fmt)) ||
                    isLengthModifier(*fmt)))
                ++fmt;
            if (*fmt)
                ++fmt;
            os << value;
            formatInto(os, fmt, std::forward<Args>(args)...);
            return;
        } else {
            os << *fmt++;
        }
    }
}

template <typename... Args>
std::string
formatString(const char *fmt, Args &&...args)
{
    std::ostringstream os;
    formatInto(os, fmt, std::forward<Args>(args)...);
    return os.str();
}

} // namespace detail

/**
 * Minimum severity that reaches stderr. Inform prints everything,
 * Warn silences inform(), Fatal additionally silences warn().
 * panic()/fatal() always print (they terminate the process).
 */
void setMinLogLevel(LogLevel level);
LogLevel minLogLevel();

/**
 * Parse a --log-level flag value: "inform"/"info", "warn"/"warning",
 * or "error"/"quiet" (warnings off). Fatal on anything else.
 */
LogLevel parseLogLevel(const std::string &name);

/** Control whether inform() messages are printed (benches silence
 *  them). Legacy shim over setMinLogLevel(Inform/Warn). */
void setInformEnabled(bool enabled);
bool informEnabled();

} // namespace preempt

/**
 * panic() should be called when something happens that should never
 * happen regardless of what the user does: an actual bug in this
 * library. Aborts the process.
 */
#define panic(...)                                                          \
    ::preempt::detail::logAndAbort(::preempt::LogLevel::Panic, __FILE__,    \
                                   __LINE__,                                \
                                   ::preempt::detail::formatString(         \
                                       __VA_ARGS__))

/**
 * fatal() should be called when execution cannot continue due to a
 * condition that is the user's fault (bad configuration, invalid
 * arguments). Exits with status 1.
 */
#define fatal(...)                                                          \
    ::preempt::detail::logAndAbort(::preempt::LogLevel::Fatal, __FILE__,    \
                                   __LINE__,                                \
                                   ::preempt::detail::formatString(         \
                                       __VA_ARGS__))

/** warn() reports functionality that may not behave as expected. */
#define warn(...)                                                           \
    ::preempt::detail::logMessage(::preempt::LogLevel::Warn,                \
                                  ::preempt::detail::formatString(          \
                                      __VA_ARGS__))

/** inform() reports normal operating status. */
#define inform(...)                                                         \
    ::preempt::detail::logMessage(::preempt::LogLevel::Inform,              \
                                  ::preempt::detail::formatString(          \
                                      __VA_ARGS__))

/**
 * warn_once() reports at most once per call site for the lifetime of
 * the process — for conditions detected on per-event hot paths where
 * a repeated warn() would flood the run.
 */
#define warn_once(...)                                                      \
    do {                                                                    \
        static std::atomic<bool> _preempt_warned_{false};                   \
        if (!_preempt_warned_.exchange(true, std::memory_order_relaxed))    \
            warn(__VA_ARGS__);                                              \
    } while (0)

/**
 * warn_every_n(n, ...) reports on the 1st, (n+1)th, (2n+1)th, ...
 * occurrence at this call site (rate-limited hot-path warning).
 */
#define warn_every_n(n, ...)                                                \
    do {                                                                    \
        static std::atomic<std::uint64_t> _preempt_warn_count_{0};          \
        if (_preempt_warn_count_.fetch_add(                                 \
                1, std::memory_order_relaxed) %                             \
                static_cast<std::uint64_t>(n) ==                            \
            0)                                                              \
            warn(__VA_ARGS__);                                              \
    } while (0)

/** panic_if()/fatal_if() evaluate a condition and report on truth. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            panic(__VA_ARGS__);                                             \
    } while (0)

#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            fatal(__VA_ARGS__);                                             \
    } while (0)

#endif // PREEMPT_COMMON_LOGGING_HH
