/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A small PCG32 generator gives each simulation component its own
 * reproducible stream; streams derived from the same seed with
 * different stream ids are independent.
 */

#ifndef PREEMPT_COMMON_RNG_HH
#define PREEMPT_COMMON_RNG_HH

#include <cstdint>
#include <limits>

namespace preempt {

/**
 * PCG32 (XSH-RR variant). Satisfies UniformRandomBitGenerator so it
 * can also drive <random> distributions when convenient.
 */
class Rng
{
  public:
    using result_type = std::uint32_t;

    /** Construct a stream from a seed and a stream selector. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1u) | 1u;
        next();
        state_ += seed;
        next();
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() { return next(); }

    /** Next 32 uniformly random bits. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** 64 uniformly random bits. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next64() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, bound) without modulo bias. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        if (bound == 0)
            return 0;
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Derive a child stream; deterministic in (parent state, tag). */
    Rng
    fork(std::uint64_t tag)
    {
        return Rng(next64() ^ (tag * 0x9e3779b97f4a7c15ULL), tag + 1);
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace preempt

#endif // PREEMPT_COMMON_RNG_HH
