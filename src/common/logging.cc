#include "common/logging.hh"

#include <atomic>
#include <iostream>

namespace preempt {

namespace {

std::atomic<bool> informOn{true};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
setInformEnabled(bool enabled)
{
    informOn.store(enabled, std::memory_order_relaxed);
}

bool
informEnabled()
{
    return informOn.load(std::memory_order_relaxed);
}

namespace detail {

void
logAndAbort(LogLevel level, const char *file, int line,
            const std::string &msg)
{
    std::cerr << levelName(level) << ": " << msg << "\n  @ " << file << ":"
              << line << std::endl;
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Inform && !informEnabled())
        return;
    std::cerr << levelName(level) << ": " << msg << std::endl;
}

} // namespace detail

} // namespace preempt
