#include "common/logging.hh"

#include <atomic>
#include <iostream>

namespace preempt {

namespace {

std::atomic<LogLevel> minLevel{LogLevel::Inform};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
setMinLogLevel(LogLevel level)
{
    minLevel.store(level, std::memory_order_relaxed);
}

LogLevel
minLogLevel()
{
    return minLevel.load(std::memory_order_relaxed);
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "inform" || name == "info")
        return LogLevel::Inform;
    if (name == "warn" || name == "warning")
        return LogLevel::Warn;
    if (name == "error" || name == "quiet")
        return LogLevel::Fatal;
    fatal("--log-level expects inform|warn|error, got '%s'", name.c_str());
}

void
setInformEnabled(bool enabled)
{
    setMinLogLevel(enabled ? LogLevel::Inform : LogLevel::Warn);
}

bool
informEnabled()
{
    return minLogLevel() <= LogLevel::Inform;
}

namespace detail {

void
logAndAbort(LogLevel level, const char *file, int line,
            const std::string &msg)
{
    std::cerr << levelName(level) << ": " << msg << "\n  @ " << file << ":"
              << line << std::endl;
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < minLogLevel())
        return;
    std::cerr << levelName(level) << ": " << msg << std::endl;
}

} // namespace detail

} // namespace preempt
