/**
 * @file
 * Intrusive doubly-linked list.
 *
 * The simulated runtimes keep contexts on several lists (local FIFO
 * queue, global running list, global free list) and move them between
 * lists in O(1) without allocation, exactly like the context lists in
 * Fig. 6 of the paper.
 */

#ifndef PREEMPT_COMMON_INTRUSIVE_LIST_HH
#define PREEMPT_COMMON_INTRUSIVE_LIST_HH

#include <cstddef>

#include "common/logging.hh"

namespace preempt {

/** Embed one of these per list a type can be a member of. */
struct ListHook
{
    ListHook *prev = nullptr;
    ListHook *next = nullptr;
    void *owner = nullptr; ///< containing object, set when linked

    bool linked() const { return prev != nullptr; }
};

/**
 * Intrusive list over T with a designated hook member.
 *
 * @tparam T element type
 * @tparam Hook pointer-to-member selecting which hook to use
 */
template <typename T, ListHook T::*Hook>
class IntrusiveList
{
  public:
    IntrusiveList()
    {
        sentinel_.prev = &sentinel_;
        sentinel_.next = &sentinel_;
        size_ = 0;
    }

    IntrusiveList(const IntrusiveList &) = delete;
    IntrusiveList &operator=(const IntrusiveList &) = delete;

    bool empty() const { return sentinel_.next == &sentinel_; }
    std::size_t size() const { return size_; }

    /** Append to the tail. */
    void
    pushBack(T *elem)
    {
        ListHook *h = &(elem->*Hook);
        panic_if(h->linked(), "element already on a list");
        h->owner = elem;
        h->prev = sentinel_.prev;
        h->next = &sentinel_;
        sentinel_.prev->next = h;
        sentinel_.prev = h;
        ++size_;
    }

    /** Prepend to the head. */
    void
    pushFront(T *elem)
    {
        ListHook *h = &(elem->*Hook);
        panic_if(h->linked(), "element already on a list");
        h->owner = elem;
        h->next = sentinel_.next;
        h->prev = &sentinel_;
        sentinel_.next->prev = h;
        sentinel_.next = h;
        ++size_;
    }

    /** Remove and return the head, or nullptr when empty. */
    T *
    popFront()
    {
        if (empty())
            return nullptr;
        ListHook *h = sentinel_.next;
        unlink(h);
        return fromHook(h);
    }

    /** Peek at the head without removing it. */
    T *
    front()
    {
        return empty() ? nullptr : fromHook(sentinel_.next);
    }

    /** Remove a specific element (must be on this list). */
    void
    erase(T *elem)
    {
        ListHook *h = &(elem->*Hook);
        panic_if(!h->linked(), "element not on a list");
        unlink(h);
    }

    /** Visit every element in order; f may not modify the list. */
    template <typename F>
    void
    forEach(F &&f)
    {
        for (ListHook *h = sentinel_.next; h != &sentinel_; h = h->next)
            f(fromHook(h));
    }

  private:
    void
    unlink(ListHook *h)
    {
        h->prev->next = h->next;
        h->next->prev = h->prev;
        h->prev = nullptr;
        h->next = nullptr;
        --size_;
    }

    static T *
    fromHook(ListHook *h)
    {
        return static_cast<T *>(h->owner);
    }

    ListHook sentinel_;
    std::size_t size_;
};

} // namespace preempt

#endif // PREEMPT_COMMON_INTRUSIVE_LIST_HH
