/**
 * @file
 * Simulated Libinger / libturquoise (Boucher et al., ATC'20): a
 * preemptive user-level threading library driven by per-thread kernel
 * timers and POSIX signals — the second baseline of Fig. 8.
 *
 * Workers pull from a shared run queue guarded by a lock, self-arm a
 * kernel timer for the quantum, and are preempted through the kernel
 * signal path. The quantum is bounded from below by the kernel-timer
 * granularity floor, and every preemption pays the full signal
 * delivery cost, both of which dominate at microsecond scale.
 */

#ifndef PREEMPT_BASELINES_LIBINGER_SIM_HH
#define PREEMPT_BASELINES_LIBINGER_SIM_HH

#include <functional>
#include <string>
#include <vector>

#include "hw/kernel.hh"
#include "hw/latency_config.hh"
#include "hw/machine.hh"
#include "runtime_sim/server.hh"
#include "sim/simulator.hh"

namespace preempt::baselines {

/** Configuration of a simulated Libinger instance. */
struct LibingerConfig
{
    /** Worker threads (Fig. 8 uses 5, plus the network core). */
    int nWorkers = 5;

    /** Requested quantum; clamped to the kernel-timer floor. */
    TimeNs quantum = usToNs(60);

    /** Optional per-completion hook. */
    std::function<void(TimeNs, const workload::Request &)> completionHook;
};

/** The simulated Libinger server. */
class LibingerSim : public runtime_sim::ServerModel
{
  public:
    LibingerSim(sim::Simulator &sim, const hw::LatencyConfig &cfg,
                LibingerConfig config);

    void onArrival(workload::Request &req) override;
    std::string name() const override { return "Libinger"; }

    std::uint64_t inFlight() const { return admitted_ - finished_; }
    std::size_t queueLen() const { return queue_.size(); }
    TimeNs effectiveQuantum() const { return quantum_; }
    int coresUsed() const { return config_.nWorkers + 1; }

  private:
    struct Worker
    {
        int id = 0;
        workload::Request *current = nullptr;
        TimeNs segStart = 0;
        bool idle = true;
        bool wakePending = false;
    };

    /** Acquire the shared run-queue lock (serialized resource).
     *  @return time the lock section completes. */
    TimeNs lockedOp(TimeNs from);

    void wakeWorker(TimeNs now);
    void pickNext(Worker &w, TimeNs now);
    void startSegment(Worker &w, workload::Request &req, TimeNs now);
    void onCompletion(Worker &w, TimeNs now);
    void onPreemption(Worker &w, TimeNs now);

    sim::Simulator &sim_;
    hw::LatencyConfig cfg_;
    LibingerConfig config_;
    hw::Machine machine_;
    hw::SignalPath signals_;
    Rng rng_;

    std::vector<Worker> workers_;
    workload::RequestQueue queue_;
    TimeNs quantum_;
    TimeNs lockFreeAt_;
    TimeNs netFreeAt_;
    std::uint64_t admitted_;
    std::uint64_t finished_;
};

} // namespace preempt::baselines

#endif // PREEMPT_BASELINES_LIBINGER_SIM_HH
