/**
 * @file
 * Simulated Shinjuku (Kaffes et al., NSDI'19): the prior
 * state-of-the-art preemptive scheduling system the paper compares
 * against.
 *
 * Shinjuku runs a *centralized* dispatcher on a dedicated core that
 * makes every scheduling decision: it admits arrivals into a single
 * queue, assigns requests to idle workers, tracks per-worker elapsed
 * time, and preempts overrunning workers by writing to the
 * ring-3-mapped APIC (posted IPIs). Preempted requests return to the
 * tail of the central queue (preemptive centralized FCFS).
 *
 * Modelled costs: every dispatcher operation serializes on the
 * dispatcher core; preemption pays the posted-IPI send + delivery +
 * receiver trap; the practical minimum quantum is ~5 us; the APIC
 * approach only scales to a bounded number of logical cores.
 */

#ifndef PREEMPT_BASELINES_SHINJUKU_SIM_HH
#define PREEMPT_BASELINES_SHINJUKU_SIM_HH

#include <functional>
#include <string>
#include <vector>

#include "hw/latency_config.hh"
#include "hw/machine.hh"
#include "runtime_sim/server.hh"
#include "sim/simulator.hh"

namespace preempt::baselines {

/** Configuration of a simulated Shinjuku instance. */
struct ShinjukuConfig
{
    /** Worker threads (Fig. 8 uses 5, plus the dispatcher core). */
    int nWorkers = 5;

    /** Time quantum; 0 disables preemption. Clamped from below to the
     *  practical Shinjuku minimum. */
    TimeNs quantum = usToNs(5);

    /** Optional per-completion hook (time-series benches). */
    std::function<void(TimeNs, const workload::Request &)> completionHook;
};

/** The simulated Shinjuku server. */
class ShinjukuSim : public runtime_sim::ServerModel
{
  public:
    ShinjukuSim(sim::Simulator &sim, const hw::LatencyConfig &cfg,
                ShinjukuConfig config);

    void onArrival(workload::Request &req) override;
    std::string name() const override { return "Shinjuku"; }

    /** Requests admitted but not yet completed. */
    std::uint64_t inFlight() const { return admitted_ - finished_; }

    /** Central queue length right now. */
    std::size_t queueLen() const { return queue_.size(); }

    /** Effective quantum after the practicality clamp. */
    TimeNs effectiveQuantum() const { return quantum_; }

    int coresUsed() const { return config_.nWorkers + 1; }

    /** Core accounting (the dispatcher is core 0). */
    const hw::Machine &machine() const { return machine_; }

  private:
    struct Worker
    {
        int id = 0;
        workload::Request *current = nullptr;
        TimeNs segStart = 0;
        bool idle = true;
    };

    /** Serialize an operation on the dispatcher core.
     *  @return the completion time of the operation. */
    TimeNs dispatcherOp();

    /** Assign queued requests to idle workers. */
    void tryAssign(TimeNs now);

    /** Begin one execution segment on a worker. */
    void startSegment(Worker &w, workload::Request &req, TimeNs now);

    void onCompletion(Worker &w, TimeNs now);
    void onPreemption(Worker &w, TimeNs now);

    sim::Simulator &sim_;
    hw::LatencyConfig cfg_;
    ShinjukuConfig config_;
    hw::Machine machine_;
    Rng rng_;

    std::vector<Worker> workers_;
    workload::RequestQueue queue_;
    TimeNs quantum_;
    TimeNs dispatcherFreeAt_;
    bool assignPending_;
    std::uint64_t admitted_;
    std::uint64_t finished_;
};

} // namespace preempt::baselines

#endif // PREEMPT_BASELINES_SHINJUKU_SIM_HH
