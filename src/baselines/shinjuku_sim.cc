#include "baselines/shinjuku_sim.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace preempt::baselines {

using workload::Request;

ShinjukuSim::ShinjukuSim(sim::Simulator &sim, const hw::LatencyConfig &cfg,
                         ShinjukuConfig config)
    : sim_(sim), cfg_(cfg), config_(std::move(config)),
      machine_(sim, cfg, config_.nWorkers + 1),
      rng_(sim.rng().fork(0x73686a6b)), dispatcherFreeAt_(0),
      assignPending_(false), admitted_(0), finished_(0)
{
    fatal_if(config_.nWorkers <= 0, "need at least one worker");
    fatal_if(config_.nWorkers > cfg_.apicMaxTargets,
             "Shinjuku's APIC mapping supports at most %d targets",
             cfg_.apicMaxTargets);
    machine_.setRole(0, hw::CoreRole::Dispatcher);
    quantum_ = config_.quantum == 0
                   ? 0
                   : std::max(config_.quantum, cfg_.shinjukuMinQuantum);
    workers_.resize(static_cast<std::size_t>(config_.nWorkers));
    for (int i = 0; i < config_.nWorkers; ++i) {
        workers_[static_cast<std::size_t>(i)].id = i;
        machine_.setRole(i + 1, hw::CoreRole::Worker);
    }
}

TimeNs
ShinjukuSim::dispatcherOp()
{
    TimeNs start = std::max(sim_.now(), dispatcherFreeAt_);
    dispatcherFreeAt_ = start + cfg_.shinjukuDispatchCost;
    machine_.addBusy(0, cfg_.shinjukuDispatchCost);
    // Centralized scheduling is pure overhead relative to lean
    // execution (Fig. 1 right counts it against Shinjuku).
    metrics_.addPreemptionOverhead(cfg_.shinjukuDispatchCost);
    return dispatcherFreeAt_;
}

void
ShinjukuSim::onArrival(Request &req)
{
    metrics_.onArrival(req);
    ++admitted_;
    // Admission is a dispatcher operation (network poll + enqueue).
    TimeNs ready = dispatcherOp();
    sim_.at(ready, [this, &req](TimeNs t) {
        queue_.pushBack(&req);
        tryAssign(t);
    });
}

void
ShinjukuSim::tryAssign(TimeNs now)
{
    (void)now; // decisions are timestamped by the dispatcher-op event
    if (assignPending_)
        return;
    bool any_idle = false;
    for (auto &w : workers_) {
        if (w.idle) {
            any_idle = true;
            break;
        }
    }
    if (!any_idle || queue_.empty())
        return;

    // One assignment per dispatcher operation; chained until either
    // the queue or the idle set drains.
    assignPending_ = true;
    TimeNs ready = dispatcherOp();
    sim_.at(ready, [this](TimeNs t) {
        assignPending_ = false;
        Worker *victim = nullptr;
        for (auto &w : workers_) {
            if (w.idle) {
                victim = &w;
                break;
            }
        }
        Request *req = victim ? queue_.popFront() : nullptr;
        if (victim && req) {
            victim->idle = false;
            obs::emit(obs::EventKind::Dispatch, 0, t, req->id,
                      static_cast<std::uint64_t>(victim->id),
                      queue_.size());
            startSegment(*victim, *req, t);
        }
        tryAssign(t);
    });
}

void
ShinjukuSim::startSegment(Worker &w, Request &req, TimeNs now)
{
    w.current = &req;
    if (req.firstStart == kTimeNever)
        req.firstStart = now;
    obs::emit(req.preemptions == 0 ? obs::EventKind::Launch
                                   : obs::EventKind::Resume,
              static_cast<std::uint32_t>(w.id + 1), now, req.id,
              req.remaining, quantum_);

    // Worker-side context switch into the request.
    TimeNs overhead = cfg_.userCtxSwitch;
    metrics_.addPreemptionOverhead(overhead);
    machine_.addBusy(w.id + 1, overhead);
    TimeNs seg_start = now + overhead;
    w.segStart = seg_start;

    if (quantum_ == 0) {
        TimeNs done_at = seg_start + req.remaining;
        int id = w.id;
        sim_.at(done_at, [this, id](TimeNs t) {
            onCompletion(workers_[static_cast<std::size_t>(id)], t);
        });
        return;
    }

    // The dispatcher notices the expired quantum on its poll grid,
    // then initiates a posted IPI; the request keeps executing until
    // the interrupt lands (the trap itself is pure overhead, charged
    // in onPreemption).
    TimeNs expiry = seg_start + quantum_;
    TimeNs grid = cfg_.shinjukuPollNs;
    TimeNs noticed = grid ? ((expiry + grid - 1) / grid) * grid : expiry;
    TimeNs handler_entry = noticed + cfg_.postedIpiSend +
                           cfg_.postedIpiDelivery.sample(rng_);

    int id = w.id;
    if (seg_start + req.remaining <= handler_entry) {
        TimeNs done_at = seg_start + req.remaining;
        sim_.at(done_at, [this, id](TimeNs t) {
            onCompletion(workers_[static_cast<std::size_t>(id)], t);
        });
    } else {
        sim_.at(handler_entry, [this, id](TimeNs t) {
            onPreemption(workers_[static_cast<std::size_t>(id)], t);
        });
    }
}

void
ShinjukuSim::onCompletion(Worker &w, TimeNs now)
{
    Request *req = w.current;
    panic_if(!req, "completion with no running request");
    w.current = nullptr;

    TimeNs executed = now - w.segStart;
    metrics_.addExecution(executed);
    machine_.addBusy(w.id + 1, executed);
    req->remaining = 0;
    req->completion = now;
    ++finished_;
    obs::emit(obs::EventKind::Complete,
              static_cast<std::uint32_t>(w.id + 1), now, req->id,
              req->latency(), req->preemptions);
    metrics_.onCompletion(*req);
    if (config_.completionHook)
        config_.completionHook(now, *req);

    // The dispatcher notices the idle worker on its poll grid.
    TimeNs grid = cfg_.shinjukuPollNs;
    sim_.after(grid, [this, &w](TimeNs t) {
        w.idle = true;
        tryAssign(t);
    });
}

void
ShinjukuSim::onPreemption(Worker &w, TimeNs now)
{
    Request *req = w.current;
    panic_if(!req, "preemption with no running request");
    w.current = nullptr;

    TimeNs executed = now - w.segStart;
    panic_if(executed >= req->remaining,
             "preempted a request that should have completed");
    req->remaining -= executed;
    ++req->preemptions;
    obs::emit(obs::EventKind::Preempt,
              static_cast<std::uint32_t>(w.id + 1), now, req->id,
              executed, req->remaining);
    metrics_.addExecution(executed);

    // Worker-side preemption cost: the ring transition + interrupt
    // frame + runtime trampoline, then the context save/switch. The
    // worker makes no request progress during any of it.
    TimeNs overhead = cfg_.shinjukuTrapCost + cfg_.userCtxSwitch;
    metrics_.addPreemptionOverhead(overhead);
    machine_.addBusy(w.id + 1, executed + overhead);

    // Requeue at the tail via a dispatcher operation (centralized
    // preemptive FCFS).
    TimeNs ready = dispatcherOp();
    sim_.at(std::max(ready, now + overhead), [this, req, &w](TimeNs t) {
        queue_.pushBack(req);
        w.idle = true;
        tryAssign(t);
    });
}

} // namespace preempt::baselines
