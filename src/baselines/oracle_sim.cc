#include "baselines/oracle_sim.hh"

#include <algorithm>

#include "common/logging.hh"

namespace preempt::baselines {

using workload::Request;

ProcessorSharingSim::ProcessorSharingSim(sim::Simulator &sim, int n_workers)
    : sim_(sim), nWorkers_(n_workers), lastAdvance_(0),
      nextEvent_(sim::kInvalidEvent)
{
    fatal_if(n_workers <= 0, "PS needs at least one worker");
}

void
ProcessorSharingSim::advance(TimeNs now)
{
    if (active_.empty() || now <= lastAdvance_) {
        lastAdvance_ = now;
        return;
    }
    double rate =
        std::min(1.0, static_cast<double>(nWorkers_) /
                          static_cast<double>(active_.size()));
    auto progress = static_cast<TimeNs>(
        static_cast<double>(now - lastAdvance_) * rate);
    // Uniform progress preserves the remaining-time order, so the set
    // invariants hold through the in-place mutation.
    for (const Request *req : active_) {
        auto *r = const_cast<Request *>(req);
        r->remaining = r->remaining > progress ? r->remaining - progress
                                               : 0;
    }
    lastAdvance_ = now;
}

void
ProcessorSharingSim::replan(TimeNs now)
{
    // nextEvent_ may have fired already; generation-tagged EventIds
    // make cancelling a stale handle a guaranteed no-op even after the
    // queue reuses the underlying slot.
    sim_.events().cancel(nextEvent_);
    nextEvent_ = sim::kInvalidEvent;
    if (active_.empty())
        return;
    double rate =
        std::min(1.0, static_cast<double>(nWorkers_) /
                          static_cast<double>(active_.size()));
    const Request *first = *active_.begin();
    // Overshoot by one tick: fluid progress truncates to whole
    // nanoseconds, so an exact schedule could strand 1 ns of work.
    auto dt = static_cast<TimeNs>(
        static_cast<double>(first->remaining) / rate) + 1;
    nextEvent_ = sim_.at(now + dt, [this](TimeNs t) {
        advance(t);
        // Complete everything within a tick of zero (ties possible).
        while (!active_.empty() && (*active_.begin())->remaining <= 1) {
            auto *r = const_cast<Request *>(*active_.begin());
            active_.erase(active_.begin());
            r->remaining = 0;
            r->completion = t;
            metrics_.onCompletion(*r);
        }
        replan(t);
    });
}

void
ProcessorSharingSim::onArrival(Request &req)
{
    metrics_.onArrival(req);
    TimeNs now = sim_.now();
    advance(now);
    if (req.firstStart == kTimeNever)
        req.firstStart = now;
    active_.insert(&req);
    replan(now);
}

SrptSim::SrptSim(sim::Simulator &sim, int n_workers)
    : sim_(sim), nWorkers_(n_workers), lastAdvance_(0),
      nextEvent_(sim::kInvalidEvent)
{
    fatal_if(n_workers <= 0, "SRPT needs at least one worker");
}

void
SrptSim::advanceRunning(TimeNs now)
{
    if (now <= lastAdvance_ || jobs_.empty()) {
        lastAdvance_ = now;
        return;
    }
    TimeNs elapsed = now - lastAdvance_;
    // The first nWorkers_ jobs run at rate 1. Uniform progress on the
    // shortest jobs keeps them the shortest, so set order survives.
    int i = 0;
    for (auto it = jobs_.begin(); it != jobs_.end() && i < nWorkers_;
         ++it, ++i) {
        Request *r = *it;
        r->remaining = r->remaining > elapsed ? r->remaining - elapsed : 0;
    }
    lastAdvance_ = now;
}

void
SrptSim::reschedule(TimeNs now)
{
    sim_.events().cancel(nextEvent_);
    nextEvent_ = sim::kInvalidEvent;
    if (jobs_.empty())
        return;
    Request *first = *jobs_.begin();
    nextEvent_ = sim_.at(now + std::max<TimeNs>(first->remaining, 1),
                         [this](TimeNs t) {
        advanceRunning(t);
        while (!jobs_.empty() && (*jobs_.begin())->remaining == 0) {
            Request *r = *jobs_.begin();
            jobs_.erase(jobs_.begin());
            r->completion = t;
            metrics_.onCompletion(*r);
        }
        reschedule(t);
    });
}

void
SrptSim::onArrival(Request &req)
{
    metrics_.onArrival(req);
    TimeNs now = sim_.now();
    advanceRunning(now);
    if (req.firstStart == kTimeNever)
        req.firstStart = now;
    jobs_.insert(&req);
    reschedule(now);
}

} // namespace preempt::baselines
