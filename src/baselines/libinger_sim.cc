#include "baselines/libinger_sim.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace preempt::baselines {

using workload::Request;

LibingerSim::LibingerSim(sim::Simulator &sim, const hw::LatencyConfig &cfg,
                         LibingerConfig config)
    : sim_(sim), cfg_(cfg), config_(std::move(config)),
      machine_(sim, cfg, config_.nWorkers + 1), signals_(sim, cfg),
      rng_(sim.rng().fork(0x6c696267)), lockFreeAt_(0), netFreeAt_(0),
      admitted_(0), finished_(0)
{
    fatal_if(config_.nWorkers <= 0, "need at least one worker");
    machine_.setRole(0, hw::CoreRole::Dispatcher);
    quantum_ = config_.quantum == 0
                   ? 0
                   : std::max(config_.quantum, cfg_.kernelTimerFloor);
    workers_.resize(static_cast<std::size_t>(config_.nWorkers));
    for (int i = 0; i < config_.nWorkers; ++i) {
        workers_[static_cast<std::size_t>(i)].id = i;
        machine_.setRole(i + 1, hw::CoreRole::Worker);
    }
}

TimeNs
LibingerSim::lockedOp(TimeNs from)
{
    TimeNs start = std::max(from, lockFreeAt_);
    lockFreeAt_ = start + cfg_.libingerLockHold;
    return lockFreeAt_;
}

void
LibingerSim::onArrival(Request &req)
{
    metrics_.onArrival(req);
    ++admitted_;
    // Network thread enqueues into the shared run queue.
    TimeNs start = std::max(sim_.now(), netFreeAt_);
    netFreeAt_ = start + cfg_.dispatchCost;
    machine_.addBusy(0, cfg_.dispatchCost);
    TimeNs ready = lockedOp(netFreeAt_);
    sim_.at(ready, [this, &req](TimeNs t) {
        obs::emit(obs::EventKind::Dispatch, 0, t, req.id, queue_.size());
        queue_.pushBack(&req);
        wakeWorker(t);
    });
}

void
LibingerSim::wakeWorker(TimeNs now)
{
    (void)now;
    for (auto &w : workers_) {
        if (w.idle && !w.wakePending) {
            w.wakePending = true;
            int id = w.id;
            sim_.after(cfg_.workerQueuePoll, [this, id](TimeNs t) {
                Worker &ww = workers_[static_cast<std::size_t>(id)];
                ww.wakePending = false;
                if (ww.idle)
                    pickNext(ww, t);
            });
            return;
        }
    }
}

void
LibingerSim::pickNext(Worker &w, TimeNs now)
{
    panic_if(w.current != nullptr, "worker picking while running");
    if (queue_.empty()) {
        w.idle = true;
        return;
    }
    // Popping the shared queue serializes on its lock.
    TimeNs ready = lockedOp(now);
    machine_.addBusy(w.id + 1, ready - now);
    Request *req = queue_.popFront();
    w.idle = false;
    sim_.at(ready, [this, &w, req](TimeNs t) { startSegment(w, *req, t); });
}

void
LibingerSim::startSegment(Worker &w, Request &req, TimeNs now)
{
    w.current = &req;
    if (req.firstStart == kTimeNever)
        req.firstStart = now;
    obs::emit(req.preemptions == 0 ? obs::EventKind::Launch
                                   : obs::EventKind::Resume,
              static_cast<std::uint32_t>(w.id + 1), now, req.id,
              req.remaining, quantum_);

    // Arm the per-thread kernel timer (timer_settime) and switch into
    // the green thread.
    TimeNs overhead = cfg_.userCtxSwitch;
    if (quantum_ != 0)
        overhead += cfg_.timerProgramCost + cfg_.syscallCost;
    metrics_.addPreemptionOverhead(overhead);
    machine_.addBusy(w.id + 1, overhead);
    TimeNs seg_start = now + overhead;
    w.segStart = seg_start;

    int id = w.id;
    if (quantum_ == 0) {
        sim_.at(seg_start + req.remaining, [this, id](TimeNs t) {
            onCompletion(workers_[static_cast<std::size_t>(id)], t);
        });
        return;
    }

    // Kernel timer expiry: granularity-clamped interval, expiry
    // jitter, then the kernel signal path to the worker.
    TimeNs jitter = cfg_.kernelTimerJitter.sample(rng_);
    TimeNs signal_path = cfg_.signalDelivery.sample(rng_) +
                         cfg_.signalHandlerCost;
    TimeNs handler_entry = seg_start + quantum_ + jitter + signal_path;

    if (seg_start + req.remaining <= handler_entry) {
        sim_.at(seg_start + req.remaining, [this, id](TimeNs t) {
            onCompletion(workers_[static_cast<std::size_t>(id)], t);
        });
    } else {
        sim_.at(handler_entry, [this, id](TimeNs t) {
            onPreemption(workers_[static_cast<std::size_t>(id)], t);
        });
    }
}

void
LibingerSim::onCompletion(Worker &w, TimeNs now)
{
    Request *req = w.current;
    panic_if(!req, "completion with no running request");
    w.current = nullptr;

    TimeNs executed = now - w.segStart;
    metrics_.addExecution(executed);
    machine_.addBusy(w.id + 1, executed);
    req->remaining = 0;
    req->completion = now;
    ++finished_;
    obs::emit(obs::EventKind::Complete,
              static_cast<std::uint32_t>(w.id + 1), now, req->id,
              req->latency(), req->preemptions);
    metrics_.onCompletion(*req);
    if (config_.completionHook)
        config_.completionHook(now, *req);

    // Disarm the timer and return to the scheduler loop.
    TimeNs overhead = cfg_.userCtxSwitch;
    if (quantum_ != 0)
        overhead += cfg_.timerProgramCost + cfg_.syscallCost;
    metrics_.addPreemptionOverhead(overhead);
    machine_.addBusy(w.id + 1, overhead);
    int id = w.id;
    sim_.after(overhead, [this, id](TimeNs t) {
        pickNext(workers_[static_cast<std::size_t>(id)], t);
    });
}

void
LibingerSim::onPreemption(Worker &w, TimeNs now)
{
    Request *req = w.current;
    panic_if(!req, "preemption with no running request");
    w.current = nullptr;

    TimeNs executed = now - w.segStart;
    panic_if(executed >= req->remaining,
             "preempted a request that should have completed");
    req->remaining -= executed;
    ++req->preemptions;
    obs::emit(obs::EventKind::Preempt,
              static_cast<std::uint32_t>(w.id + 1), now, req->id,
              executed, req->remaining);
    metrics_.addExecution(executed);

    // Signal-handler cost was paid inside handler_entry; the context
    // save + requeue happen under the shared lock.
    TimeNs overhead = cfg_.userCtxSwitch;
    metrics_.addPreemptionOverhead(overhead + cfg_.signalHandlerCost);
    machine_.addBusy(w.id + 1, executed + overhead);
    TimeNs ready = lockedOp(now + overhead);
    sim_.at(ready, [this, req, &w](TimeNs t) {
        queue_.pushBack(req);
        int id = w.id;
        pickNext(workers_[static_cast<std::size_t>(id)], t);
    });
}

} // namespace preempt::baselines
