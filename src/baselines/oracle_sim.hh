/**
 * @file
 * Idealised reference schedulers used to sanity-check the simulation
 * against scheduling theory (section II-B / [66]):
 *
 *   ProcessorSharing — fluid PS: all in-service requests progress at
 *     rate nWorkers / inFlight, no overheads. The tail-optimal
 *     discipline for light-tailed work at low loads.
 *   Srpt — preemptive Shortest-Remaining-Processing-Time with zero
 *     overheads and oracle knowledge of remaining time: a mean-optimal
 *     lower bound no implementable µs-scale system reaches (the paper
 *     explains why SRPT-like rules are impractical without request
 *     knowledge).
 *
 * Both are overhead-free idealisations; they bound what the real
 * systems can achieve and appear in tests and ablation benches, not in
 * the paper's figures.
 */

#ifndef PREEMPT_BASELINES_ORACLE_SIM_HH
#define PREEMPT_BASELINES_ORACLE_SIM_HH

#include <set>
#include <string>

#include "runtime_sim/server.hh"
#include "sim/simulator.hh"

namespace preempt::baselines {

/** Fluid processor-sharing server over n cores. */
class ProcessorSharingSim : public runtime_sim::ServerModel
{
  public:
    ProcessorSharingSim(sim::Simulator &sim, int n_workers);

    void onArrival(workload::Request &req) override;
    std::string name() const override { return "PS(oracle)"; }

    std::uint64_t inFlight() const { return active_.size(); }

  private:
    /** Re-plan the next completion after any membership change. */
    void replan(TimeNs now);

    /** Advance virtual progress to now. */
    void advance(TimeNs now);

    struct ByRemaining
    {
        bool
        operator()(const workload::Request *a,
                   const workload::Request *b) const
        {
            if (a->remaining != b->remaining)
                return a->remaining < b->remaining;
            return a->id < b->id;
        }
    };

    sim::Simulator &sim_;
    int nWorkers_;
    std::set<const workload::Request *, ByRemaining> active_;
    TimeNs lastAdvance_;
    sim::EventId nextEvent_;
};

/** Oracle SRPT over n cores with zero overheads. */
class SrptSim : public runtime_sim::ServerModel
{
  public:
    SrptSim(sim::Simulator &sim, int n_workers);

    void onArrival(workload::Request &req) override;
    std::string name() const override { return "SRPT(oracle)"; }

    std::uint64_t inFlight() const { return jobs_.size(); }

  private:
    void reschedule(TimeNs now);
    void advanceRunning(TimeNs now);

    struct ByRemaining
    {
        bool
        operator()(const workload::Request *a,
                   const workload::Request *b) const
        {
            if (a->remaining != b->remaining)
                return a->remaining < b->remaining;
            return a->id < b->id;
        }
    };

    sim::Simulator &sim_;
    int nWorkers_;
    /** All live jobs ordered by remaining time; the first nWorkers_
     *  are "running". */
    std::set<workload::Request *, ByRemaining> jobs_;
    TimeNs lastAdvance_;
    sim::EventId nextEvent_;
};

} // namespace preempt::baselines

#endif // PREEMPT_BASELINES_ORACLE_SIM_HH
