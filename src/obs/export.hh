/**
 * @file
 * Trace and metrics exporters.
 *
 * writeChromeTrace() serialises a Tracer's rings as Chrome
 * trace-event JSON ("JSON Object Format"), loadable in Perfetto
 * (ui.perfetto.dev) or chrome://tracing: one thread track per core,
 * one process per epoch (run), instant events carrying the record
 * payload in args, plus a top-level "metadata" object with the record
 * count and the tracer's drop counters (overwritten / out-of-range).
 * Output is deterministic: records are gathered in ring order and
 * stably sorted by (epoch, ts, core), timestamps are fixed-point
 * microseconds, so same-seed simulations export byte-identical files.
 *
 * validateJson() is a dependency-free structural JSON checker used by
 * tests and the CI smoke run.
 */

#ifndef PREEMPT_OBS_EXPORT_HH
#define PREEMPT_OBS_EXPORT_HH

#include <iosfwd>
#include <string>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace preempt::obs {

/** Serialise the tracer's retained records as Chrome trace JSON. */
void writeChromeTrace(const Tracer &tracer, std::ostream &os);

/** Same, to a file path (fatal on open failure). */
void writeChromeTrace(const Tracer &tracer, const std::string &path);

/** Write MetricsRegistry::toJson() to a file path. */
void writeMetricsJson(const MetricsRegistry &registry,
                      const std::string &path);

/**
 * Structural JSON validation (RFC 8259 value grammar; no unicode
 * escape decoding beyond hex-digit checks).
 * @param err when non-null, receives a short message on failure.
 * @return true when the whole string is one valid JSON value.
 */
bool validateJson(const std::string &text, std::string *err = nullptr);

} // namespace preempt::obs

#endif // PREEMPT_OBS_EXPORT_HH
