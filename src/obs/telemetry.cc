#include "obs/telemetry.hh"

#ifndef PREEMPT_OBS_DISABLED

#include <algorithm>
#include <arpa/inet.h>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstring>
#include <ctime>
#include <fstream>
#include <locale>
#include <netinet/in.h>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace preempt::obs {

namespace {

// ----- live sampler registry ----------------------------------------

struct SamplerEntry
{
    std::uint64_t id;
    std::function<void(MetricsRegistry &)> fn;
};

std::mutex g_samplerMutex;
std::vector<SamplerEntry> g_samplers;
std::uint64_t g_nextSamplerId = 1;

/** Invoke every registered sampler (publisher thread, under the
 *  registry mutex so unregister() can synchronise with running). */
void
runSamplers(MetricsRegistry &registry)
{
    std::lock_guard<std::mutex> lock(g_samplerMutex);
    for (const SamplerEntry &s : g_samplers)
        s.fn(registry);
}

// ----- SIGUSR2 dump request -----------------------------------------

/** Async-signal-safe flag the publisher thread polls each tick. */
std::atomic<bool> g_sigDumpRequested{false};

void
sigusr2Handler(int)
{
    g_sigDumpRequested.store(true, std::memory_order_relaxed);
}

// ----- time helpers -------------------------------------------------

std::uint64_t
clockNs(clockid_t clock)
{
    timespec ts;
    ::clock_gettime(clock, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

// ----- checksum -----------------------------------------------------

/** Incremental FNV-1a64. */
class Fnv
{
  public:
    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001b3ULL;
        }
    }

    void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
    void i64(std::int64_t v) { bytes(&v, sizeof(v)); }
    void f64(double v) { bytes(&v, sizeof(v)); }
    void str(const std::string &s) { u64(s.size()); bytes(s.data(), s.size()); }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

void
hashStats(Fnv &h, const TelemetrySnapshot::TimerStats &t)
{
    h.u64(t.count);
    h.u64(t.min);
    h.u64(t.max);
    h.f64(t.mean);
    h.u64(t.p50);
    h.u64(t.p90);
    h.u64(t.p99);
    h.u64(t.p999);
}

void
hashTimer(Fnv &h, const TelemetrySnapshot::TimerSample &t)
{
    h.str(t.name);
    hashStats(h, t);
    hashStats(h, t.window);
    h.u64(t.windowed ? 1 : 0);
}

// ----- rendering helpers --------------------------------------------

/** Locale-pinned fixed-precision double (byte-stable output). */
std::string
num(double v)
{
    if (!(v == v) || v > 1e300 || v < -1e300) // NaN / inf
        return "0";
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.precision(6);
    os << std::fixed << v;
    return os.str();
}

/**
 * Split a metric name into a Prometheus-safe base name and labels.
 * The part before the first '/' becomes the base ('.' -> '_'); the
 * suffix is '.'-separated segments, each "word<digits>" becoming a
 * label (t -> tenant, w -> worker; core/shard keep their names), any
 * other segment landing in a generic sub="..." label.
 */
struct PromName
{
    std::string base;
    std::string labels; ///< rendered "{a=\"1\",b=\"2\"}" or ""
};

std::string
sanitize(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (!out.empty() && out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

/** Label VALUES allow any UTF-8; only escape per the exposition
 *  format (backslash, double quote, newline). */
std::string
labelEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\' || c == '"')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

PromName
promName(const std::string &name)
{
    PromName out;
    auto slash = name.find('/');
    out.base = "preempt_" + sanitize(name.substr(0, slash));
    if (slash == std::string::npos)
        return out;

    std::string labels;
    std::string suffix = name.substr(slash + 1);
    std::size_t pos = 0;
    while (pos <= suffix.size()) {
        auto dot = suffix.find('.', pos);
        std::string seg = suffix.substr(
            pos, dot == std::string::npos ? std::string::npos
                                          : dot - pos);
        pos = dot == std::string::npos ? suffix.size() + 1 : dot + 1;
        if (seg.empty())
            continue;
        std::size_t d = seg.size();
        while (d > 0 &&
               std::isdigit(static_cast<unsigned char>(seg[d - 1])))
            --d;
        std::string key = seg.substr(0, d);
        std::string val = seg.substr(d);
        if (key.empty() || val.empty()) {
            key = "sub";
            val = seg;
        } else if (key == "t") {
            key = "tenant";
        } else if (key == "w") {
            key = "worker";
        }
        if (!labels.empty())
            labels += ",";
        labels += sanitize(key) + "=\"" + labelEscape(val) + "\"";
    }
    if (!labels.empty())
        out.labels = "{" + labels + "}";
    return out;
}

void
promSummary(std::ostringstream &os, const std::string &base,
            const std::string &extraLabel,
            const TelemetrySnapshot::TimerStats &t)
{
    auto line = [&](const char *q, std::uint64_t v) {
        os << base << '{';
        if (!extraLabel.empty())
            os << extraLabel << ',';
        os << "quantile=\"" << q << "\"} " << v << '\n';
    };
    os << "# TYPE " << base << " summary\n";
    line("0.5", t.p50);
    line("0.9", t.p90);
    line("0.99", t.p99);
    line("0.999", t.p999);
    std::string curly =
        extraLabel.empty() ? "" : "{" + extraLabel + "}";
    os << base << "_sum" << curly << ' '
       << num(t.mean * static_cast<double>(t.count)) << '\n';
    os << base << "_count" << curly << ' ' << t.count << '\n';
}

void
jsonStatsBody(std::ostringstream &os,
              const TelemetrySnapshot::TimerStats &t)
{
    os << "\"count\": " << t.count << ", \"min\": " << t.min
       << ", \"max\": " << t.max << ", \"mean\": " << num(t.mean)
       << ", \"p50\": " << t.p50 << ", \"p90\": " << t.p90
       << ", \"p99\": " << t.p99 << ", \"p999\": " << t.p999;
}

void
jsonStats(std::ostringstream &os,
          const TelemetrySnapshot::TimerStats &t)
{
    os << "{";
    jsonStatsBody(os, t);
    os << "}";
}

/** Lifetime stats plus, when windowing is on, a nested "window"
 *  object with the last-W aggregate. */
void
jsonTimer(std::ostringstream &os,
          const TelemetrySnapshot::TimerSample &t)
{
    os << "{";
    jsonStatsBody(os, t);
    if (t.windowed) {
        os << ", \"window\": ";
        jsonStats(os, t.window);
    }
    os << "}";
}

/** JSON string escaping for metric names (quotes/backslashes). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

TelemetrySnapshot::TimerStats
sampleStats(const LatencyHistogram &h)
{
    TelemetrySnapshot::TimerStats t;
    t.count = h.count();
    t.min = h.min();
    t.max = h.max();
    t.mean = h.mean();
    t.p50 = h.p50();
    t.p90 = h.p90();
    t.p99 = h.p99();
    t.p999 = h.p999();
    return t;
}

TelemetrySnapshot::TimerSample
sampleTimer(const std::string &name, const LatencyHistogram &h)
{
    TelemetrySnapshot::TimerSample t;
    static_cast<TelemetrySnapshot::TimerStats &>(t) = sampleStats(h);
    t.name = name;
    return t;
}

} // namespace

// ----- snapshot checksum --------------------------------------------

std::uint64_t
TelemetrySnapshot::computeChecksum() const
{
    Fnv h;
    h.u64(seq);
    h.u64(wallNs);
    h.u64(monoNs);
    h.f64(uptimeSec);
    h.f64(intervalSec);
    h.f64(windowSec);
    h.u64(windowEpochs);
    h.u64(counters.size());
    for (const CounterSample &c : counters) {
        h.str(c.name);
        h.u64(c.value);
        h.f64(c.ratePerSec);
        h.f64(c.windowRatePerSec);
        h.u64(c.resets);
    }
    h.u64(gauges.size());
    for (const GaugeSample &g : gauges) {
        h.str(g.name);
        h.i64(g.value);
        h.i64(g.watermark);
        h.i64(g.windowWatermark);
    }
    h.u64(timers.size());
    for (const TimerSample &t : timers)
        hashTimer(h, t);
    h.u64(spans.size());
    for (const TenantSpans &t : spans) {
        h.u64(t.tenant);
        h.u64(t.completed);
        h.u64(t.cancelled);
        h.u64(t.violations);
        hashTimer(h, t.queued);
        hashTimer(h, t.running);
        hashTimer(h, t.preempted);
        hashTimer(h, t.timerLag);
        hashTimer(h, t.total);
        h.u64(t.window.completed);
        h.u64(t.window.cancelled);
        h.u64(t.window.violations);
        hashStats(h, t.window.queued);
        hashStats(h, t.window.running);
        hashStats(h, t.window.preempted);
        hashStats(h, t.window.timerLag);
        hashStats(h, t.window.total);
    }
    h.u64(spanInvariantViolations);
    h.u64(spanAnomalies);
    return h.value();
}

// ----- renderers ----------------------------------------------------

std::string
renderPrometheus(const TelemetrySnapshot &snap)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());

    os << "# TYPE preempt_up gauge\n"
       << "preempt_up 1\n"
       << "# TYPE preempt_telemetry_snapshots_total counter\n"
       << "preempt_telemetry_snapshots_total " << snap.seq << '\n'
       << "# TYPE preempt_telemetry_uptime_seconds gauge\n"
       << "preempt_telemetry_uptime_seconds " << num(snap.uptimeSec)
       << '\n'
       << "# TYPE preempt_telemetry_window_seconds gauge\n"
       << "preempt_telemetry_window_seconds " << num(snap.windowSec)
       << '\n'
       << "# TYPE preempt_telemetry_window_epochs gauge\n"
       << "preempt_telemetry_window_epochs " << snap.windowEpochs
       << '\n';

    for (const auto &c : snap.counters) {
        PromName p = promName(c.name);
        std::string base = p.base;
        if (base.size() < 6 ||
            base.compare(base.size() - 6, 6, "_total") != 0)
            base += "_total";
        os << "# TYPE " << base << " counter\n"
           << base << p.labels << ' ' << c.value << '\n';
        os << "# TYPE " << p.base << "_rate gauge\n"
           << p.base << "_rate" << p.labels << ' ' << num(c.ratePerSec)
           << '\n';
        os << "# TYPE " << p.base << "_rate_window gauge\n"
           << p.base << "_rate_window" << p.labels << ' '
           << num(c.windowRatePerSec) << '\n';
        os << "# TYPE " << p.base << "_resets_total counter\n"
           << p.base << "_resets_total" << p.labels << ' ' << c.resets
           << '\n';
    }
    for (const auto &g : snap.gauges) {
        PromName p = promName(g.name);
        os << "# TYPE " << p.base << " gauge\n"
           << p.base << p.labels << ' ' << g.value << '\n';
        os << "# TYPE " << p.base << "_watermark gauge\n"
           << p.base << "_watermark" << p.labels << ' ' << g.watermark
           << '\n';
        os << "# TYPE " << p.base << "_watermark_window gauge\n"
           << p.base << "_watermark_window" << p.labels << ' '
           << g.windowWatermark << '\n';
    }
    for (const auto &t : snap.timers) {
        PromName p = promName(t.name);
        std::string label = p.labels.empty()
                                ? ""
                                : p.labels.substr(1, p.labels.size() - 2);
        promSummary(os, p.base, label, t);
        if (t.windowed)
            promSummary(os, p.base + "_window", label, t.window);
    }

    if (!snap.spans.empty()) {
        os << "# TYPE preempt_spans_completed_total counter\n";
        for (const auto &t : snap.spans)
            os << "preempt_spans_completed_total{tenant=\"" << t.tenant
               << "\"} " << t.completed << '\n';
        os << "# TYPE preempt_spans_cancelled_total counter\n";
        for (const auto &t : snap.spans)
            os << "preempt_spans_cancelled_total{tenant=\"" << t.tenant
               << "\"} " << t.cancelled << '\n';
        os << "# TYPE preempt_spans_slo_violations_total counter\n";
        for (const auto &t : snap.spans)
            os << "preempt_spans_slo_violations_total{tenant=\""
               << t.tenant << "\"} " << t.violations << '\n';
        for (const auto &t : snap.spans) {
            std::string tenant =
                "tenant=\"" + std::to_string(t.tenant) + "\"";
            promSummary(os, "preempt_spans_queued_ns", tenant, t.queued);
            promSummary(os, "preempt_spans_running_ns", tenant,
                        t.running);
            promSummary(os, "preempt_spans_preempted_ns", tenant,
                        t.preempted);
            promSummary(os, "preempt_spans_timer_lag_ns", tenant,
                        t.timerLag);
            promSummary(os, "preempt_spans_total_ns", tenant, t.total);
        }
        os << "# TYPE preempt_spans_completed_window gauge\n";
        for (const auto &t : snap.spans)
            os << "preempt_spans_completed_window{tenant=\"" << t.tenant
               << "\"} " << t.window.completed << '\n';
        os << "# TYPE preempt_spans_cancelled_window gauge\n";
        for (const auto &t : snap.spans)
            os << "preempt_spans_cancelled_window{tenant=\"" << t.tenant
               << "\"} " << t.window.cancelled << '\n';
        os << "# TYPE preempt_spans_slo_violations_window gauge\n";
        for (const auto &t : snap.spans)
            os << "preempt_spans_slo_violations_window{tenant=\""
               << t.tenant << "\"} " << t.window.violations << '\n';
        for (const auto &t : snap.spans) {
            std::string tenant =
                "tenant=\"" + std::to_string(t.tenant) + "\"";
            promSummary(os, "preempt_spans_queued_ns_window", tenant,
                        t.window.queued);
            promSummary(os, "preempt_spans_running_ns_window", tenant,
                        t.window.running);
            promSummary(os, "preempt_spans_preempted_ns_window", tenant,
                        t.window.preempted);
            promSummary(os, "preempt_spans_timer_lag_ns_window", tenant,
                        t.window.timerLag);
            promSummary(os, "preempt_spans_total_ns_window", tenant,
                        t.window.total);
        }
        os << "# TYPE preempt_spans_invariant_violations_total counter\n"
           << "preempt_spans_invariant_violations_total "
           << snap.spanInvariantViolations << '\n'
           << "# TYPE preempt_spans_anomalies_total counter\n"
           << "preempt_spans_anomalies_total " << snap.spanAnomalies
           << '\n';
    }
    return os.str();
}

std::string
renderTelemetryJson(const TelemetrySnapshot &snap)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << "{\n";
    os << "  \"schema\": \"preempt.telemetry.v1\",\n";
    os << "  \"seq\": " << snap.seq << ",\n";
    os << "  \"wall_ns\": " << snap.wallNs << ",\n";
    os << "  \"mono_ns\": " << snap.monoNs << ",\n";
    os << "  \"uptime_sec\": " << num(snap.uptimeSec) << ",\n";
    os << "  \"interval_sec\": " << num(snap.intervalSec) << ",\n";
    os << "  \"window_sec\": " << num(snap.windowSec) << ",\n";
    os << "  \"window_epochs\": " << snap.windowEpochs << ",\n";
    os << "  \"checksum\": \"" << std::hex << snap.checksum << std::dec
       << "\",\n";

    os << "  \"counters\": {";
    bool first = true;
    for (const auto &c : snap.counters) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(c.name)
           << "\": {\"value\": " << c.value << ", \"rate_per_sec\": "
           << num(c.ratePerSec) << ", \"window_rate_per_sec\": "
           << num(c.windowRatePerSec) << ", \"resets\": " << c.resets
           << "}";
        first = false;
    }
    os << (first ? "},\n" : "\n  },\n");

    os << "  \"gauges\": {";
    first = true;
    for (const auto &g : snap.gauges) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(g.name)
           << "\": {\"value\": " << g.value << ", \"watermark\": "
           << g.watermark << ", \"window_watermark\": "
           << g.windowWatermark << "}";
        first = false;
    }
    os << (first ? "},\n" : "\n  },\n");

    os << "  \"timers\": {";
    first = true;
    for (const auto &t : snap.timers) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(t.name)
           << "\": ";
        jsonTimer(os, t);
        first = false;
    }
    os << (first ? "},\n" : "\n  },\n");

    os << "  \"spans\": {\n";
    os << "    \"invariant_violations\": " << snap.spanInvariantViolations
       << ",\n";
    os << "    \"anomalies\": " << snap.spanAnomalies << ",\n";
    os << "    \"tenants\": {";
    first = true;
    for (const auto &t : snap.spans) {
        os << (first ? "\n" : ",\n") << "      \"" << t.tenant
           << "\": {\"completed\": " << t.completed
           << ", \"cancelled\": " << t.cancelled
           << ", \"violations\": " << t.violations;
        auto field = [&](const char *name,
                         const TelemetrySnapshot::TimerSample &s) {
            os << ", \"" << name << "\": ";
            jsonTimer(os, s);
        };
        field("queued", t.queued);
        field("running", t.running);
        field("preempted", t.preempted);
        field("timer_lag", t.timerLag);
        field("total", t.total);
        os << ", \"window\": {\"completed\": " << t.window.completed
           << ", \"cancelled\": " << t.window.cancelled
           << ", \"violations\": " << t.window.violations;
        auto wfield = [&](const char *name,
                          const TelemetrySnapshot::TimerStats &s) {
            os << ", \"" << name << "\": ";
            jsonStats(os, s);
        };
        wfield("queued", t.window.queued);
        wfield("running", t.window.running);
        wfield("preempted", t.window.preempted);
        wfield("timer_lag", t.window.timerLag);
        wfield("total", t.window.total);
        os << "}}";
        first = false;
    }
    os << (first ? "}\n" : "\n    }\n");
    os << "  }\n";
    os << "}\n";
    return os.str();
}

// ----- sampler registry (public) ------------------------------------

std::uint64_t
registerTelemetrySampler(std::function<void(MetricsRegistry &)> fn)
{
    std::lock_guard<std::mutex> lock(g_samplerMutex);
    std::uint64_t id = g_nextSamplerId++;
    g_samplers.push_back({id, std::move(fn)});
    return id;
}

void
unregisterTelemetrySampler(std::uint64_t id)
{
    if (id == 0)
        return;
    // Taking the mutex also waits out a concurrently running pass, so
    // after return the sampler can never run again.
    std::lock_guard<std::mutex> lock(g_samplerMutex);
    for (auto it = g_samplers.begin(); it != g_samplers.end(); ++it) {
        if (it->id == id) {
            g_samplers.erase(it);
            return;
        }
    }
}

// ----- stat tracker -------------------------------------------------

StatTracker::StatTracker(std::size_t windowEpochs)
    : epochs_(windowEpochs == 0 ? 1 : windowEpochs)
{
}

void
StatTracker::beginTick(std::uint64_t monoNs)
{
    ++tick_;
    monoNs_ = monoNs;
}

StatTracker::CounterStats
StatTracker::counter(const std::string &name, std::uint64_t value)
{
    CounterStats out;
    CounterState &st = counters_[name];
    st.lastTick = tick_;
    if (!st.ring.empty()) {
        std::uint64_t prevVal = st.ring.back().second;
        if (value < prevVal) {
            // The counter went backwards: its source restarted. Wind
            // every retained sample down to zero so both rates cover
            // the post-reset traffic instead of reporting 0 until the
            // window drains.
            ++st.resets;
            for (auto &s : st.ring)
                s.second = 0;
            prevVal = 0;
        }
        std::uint64_t prevNs = st.ring.back().first;
        if (monoNs_ > prevNs)
            out.ratePerSec =
                static_cast<double>(value - prevVal) /
                (static_cast<double>(monoNs_ - prevNs) / 1e9);
        const auto &oldest = st.ring.front();
        if (monoNs_ > oldest.first)
            out.windowRatePerSec =
                static_cast<double>(value - oldest.second) /
                (static_cast<double>(monoNs_ - oldest.first) / 1e9);
    }
    st.ring.emplace_back(monoNs_, value);
    if (st.ring.size() > epochs_ + 1)
        st.ring.erase(st.ring.begin());
    out.resets = st.resets;
    return out;
}

StatTracker::GaugeStats
StatTracker::gauge(const std::string &name, std::int64_t value)
{
    GaugeStats out;
    GaugeState &st = gauges_[name];
    if (st.ring.empty())
        st.watermark = value;
    st.lastTick = tick_;
    if (value > st.watermark)
        st.watermark = value;
    if (st.ring.size() < epochs_) {
        st.ring.push_back(value);
    } else {
        st.ring[st.head] = value;
        st.head = (st.head + 1) % epochs_;
    }
    std::int64_t wm = st.ring.front();
    for (std::int64_t v : st.ring)
        wm = std::max(wm, v);
    out.watermark = st.watermark;
    out.windowWatermark = wm;
    return out;
}

void
StatTracker::endTick()
{
    for (auto it = counters_.begin(); it != counters_.end();) {
        if (it->second.lastTick != tick_)
            it = counters_.erase(it);
        else
            ++it;
    }
    for (auto it = gauges_.begin(); it != gauges_.end();) {
        if (it->second.lastTick != tick_)
            it = gauges_.erase(it);
        else
            ++it;
    }
}

// ----- publisher ----------------------------------------------------

namespace {

/** Ring size K = round(window / interval); 0 = 10 intervals. */
std::size_t
epochsFor(const TelemetryPublisher::Options &o)
{
    if (o.interval <= 0)
        return 1;
    TimeNs window = o.window != 0 ? o.window : 10 * o.interval;
    double k = static_cast<double>(window) /
               static_cast<double>(o.interval);
    auto epochs = static_cast<std::size_t>(k + 0.5);
    if (epochs < 1)
        epochs = 1;
    if (epochs > 512)
        epochs = 512;
    return epochs;
}

} // namespace

TelemetryPublisher::TelemetryPublisher(MetricsRegistry *registry,
                                       SpanCollector *spans,
                                       Options options)
    : registry_(registry), spans_(spans), options_(std::move(options)),
      tracker_(epochsFor(options_)), windowEpochs_(epochsFor(options_))
{
    fatal_if(options_.interval <= 0,
             "telemetry interval must be positive");
    if (registry_)
        registry_->enableWindows(windowEpochs_);
    if (spans_)
        spans_->setWindowEpochs(windowEpochs_);
    // Baseline for uptime even when only tickNow() is used (tests,
    // final flush) and start() never runs.
    startedAt_ = clockNs(CLOCK_MONOTONIC);
}

TelemetryPublisher::~TelemetryPublisher()
{
    stop();
}

void
TelemetryPublisher::start()
{
    if (publisher_.joinable())
        return;
    stop_.store(false, std::memory_order_release);
    if (options_.installSigusr2) {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = sigusr2Handler;
        sa.sa_flags = SA_RESTART;
        ::sigaction(SIGUSR2, &sa, nullptr);
    }
    if (options_.port >= 0 && openListener())
        listener_ = std::thread([this] { listenerLoop(); });
    publisher_ = std::thread([this] { publisherLoop(); });
}

void
TelemetryPublisher::stop()
{
    if (!publisher_.joinable() && !listener_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        stop_.store(true, std::memory_order_release);
    }
    wakeCv_.notify_all();
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (publisher_.joinable())
        publisher_.join();
    if (listener_.joinable())
        listener_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        boundPort_ = -1;
    }
}

void
TelemetryPublisher::dumpNow()
{
    dumpRequested_.store(true, std::memory_order_release);
    wakeCv_.notify_all();
}

void
TelemetryPublisher::publisherLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(wakeMutex_);
            wakeCv_.wait_for(
                lock, std::chrono::nanoseconds(options_.interval),
                [this] {
                    return stop_.load(std::memory_order_acquire) ||
                           dumpRequested_.load(
                               std::memory_order_acquire) ||
                           g_sigDumpRequested.load(
                               std::memory_order_relaxed);
                });
        }
        if (stop_.load(std::memory_order_acquire))
            break;
        tickNow();
        bool wantDump =
            dumpRequested_.exchange(false, std::memory_order_acq_rel);
        wantDump |= g_sigDumpRequested.exchange(
            false, std::memory_order_relaxed);
        if (wantDump && !options_.dumpPath.empty())
            writeDump(snapshot());
    }
    // Final tick so short-lived runs publish at least one snapshot.
    tickNow();
    if (!options_.dumpPath.empty() &&
        (dumpRequested_.load(std::memory_order_acquire) ||
         g_sigDumpRequested.exchange(false, std::memory_order_relaxed)))
        writeDump(snapshot());
}

void
TelemetryPublisher::tickNow()
{
    std::lock_guard<std::mutex> lock(tickMutex_);
    buildAndPublish();
}

void
TelemetryPublisher::buildAndPublish()
{
    // Serialised by tickMutex_ (the only writer path).
    std::uint64_t cur = seq_.load(std::memory_order_relaxed);
    std::uint64_t nextIdx = (cur + 1) & 1;

    std::uint64_t mono = clockNs(CLOCK_MONOTONIC);

    TelemetrySnapshot snap;
    snap.seq = cur + 1;
    snap.wallNs = clockNs(CLOCK_REALTIME);
    snap.monoNs = mono;
    snap.uptimeSec =
        static_cast<double>(mono - startedAt_) / 1e9;
    snap.intervalSec = static_cast<double>(options_.interval) / 1e9;
    snap.windowEpochs = windowEpochs_;
    snap.windowSec =
        snap.intervalSec * static_cast<double>(windowEpochs_);

    if (registry_) {
        runSamplers(*registry_);
        MetricsSnapshot values = registry_->snapshotValues();
        tracker_.beginTick(mono);
        snap.counters.reserve(values.counters.size());
        for (auto &[name, value] : values.counters) {
            TelemetrySnapshot::CounterSample c;
            c.name = name;
            c.value = value;
            StatTracker::CounterStats s = tracker_.counter(name, value);
            c.ratePerSec = s.ratePerSec;
            c.windowRatePerSec = s.windowRatePerSec;
            c.resets = s.resets;
            snap.counters.push_back(std::move(c));
        }

        snap.gauges.reserve(values.gauges.size());
        for (auto &[name, value] : values.gauges) {
            TelemetrySnapshot::GaugeSample g;
            g.name = name;
            g.value = value;
            StatTracker::GaugeStats s = tracker_.gauge(name, value);
            g.watermark = s.watermark;
            g.windowWatermark = s.windowWatermark;
            snap.gauges.push_back(std::move(g));
        }
        tracker_.endTick();

        snap.timers.reserve(values.timers.size());
        for (auto &tv : values.timers) {
            TelemetrySnapshot::TimerSample t =
                sampleTimer(tv.name, tv.hist);
            t.windowed = tv.windowed;
            if (tv.windowed)
                t.window = sampleStats(tv.window);
            snap.timers.push_back(std::move(t));
        }
    }

    if (spans_) {
        auto tenants = spans_->tenantStats();
        auto windows = spans_->tenantWindowStats();
        snap.spans.reserve(tenants.size());
        for (const auto &[tenant, stats] : tenants) {
            TelemetrySnapshot::TenantSpans t;
            t.tenant = tenant;
            t.completed = stats.completed;
            t.cancelled = stats.cancelled;
            t.violations = stats.violations;
            t.queued = sampleTimer("queued", stats.queued);
            t.running = sampleTimer("running", stats.running);
            t.preempted = sampleTimer("preempted", stats.preempted);
            t.timerLag = sampleTimer("timer_lag", stats.timerLag);
            t.total = sampleTimer("total", stats.total);
            auto wit = windows.find(tenant);
            if (wit != windows.end()) {
                const SpanCollector::TenantStats &w = wit->second;
                t.window.completed = w.completed;
                t.window.cancelled = w.cancelled;
                t.window.violations = w.violations;
                t.window.queued = sampleStats(w.queued);
                t.window.running = sampleStats(w.running);
                t.window.preempted = sampleStats(w.preempted);
                t.window.timerLag = sampleStats(w.timerLag);
                t.window.total = sampleStats(w.total);
            }
            snap.spans.push_back(std::move(t));
        }
        snap.spanInvariantViolations = spans_->invariantViolations();
        snap.spanAnomalies = spans_->anomalies().total();
    }

    snap.checksum = snap.computeChecksum();

    // Retire the live window epochs only after the snapshot captured
    // them: each published window covers the K intervals ending now.
    if (registry_)
        registry_->rotateWindows();
    if (spans_)
        spans_->rotateWindows();

    // Double buffer: fill the back buffer under its mutex, then flip.
    // A reader that loaded the old index may still be copying the
    // *other* buffer; the next publish (one full interval later) would
    // briefly wait on it — readers never tear and never block this
    // publish.
    {
        std::lock_guard<std::mutex> lock(bufMutex_[nextIdx]);
        buffers_[nextIdx] = std::move(snap);
    }
    seq_.store(cur + 1, std::memory_order_release);
}

TelemetrySnapshot
TelemetryPublisher::snapshot() const
{
    std::uint64_t s = seq_.load(std::memory_order_acquire);
    if (s == 0)
        return TelemetrySnapshot{};
    std::uint64_t idx = s & 1;
    std::lock_guard<std::mutex> lock(bufMutex_[idx]);
    return buffers_[idx];
}

void
TelemetryPublisher::writeDump(const TelemetrySnapshot &snap)
{
    std::ofstream out(options_.dumpPath);
    if (!out) {
        warn_once("telemetry: cannot open dump path '%s'",
                  options_.dumpPath.c_str());
        return;
    }
    out << renderTelemetryJson(snap);
}

// ----- HTTP listener ------------------------------------------------

bool
TelemetryPublisher::openListener()
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warn_once("telemetry: socket() failed: %s",
                  std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(options_.port));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        warn_once("telemetry: cannot listen on 127.0.0.1:%d: %s",
                  options_.port, std::strerror(errno));
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    boundPort_ = ntohs(addr.sin_port);
    listenFd_ = fd;
    return true;
}

void
TelemetryPublisher::listenerLoop()
{
    while (!stop_.load(std::memory_order_acquire)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int r = ::poll(&pfd, 1, 200);
        if (stop_.load(std::memory_order_acquire))
            break;
        if (r <= 0)
            continue;
        int client = ::accept(listenFd_, nullptr, nullptr);
        if (client < 0)
            continue;
        serveClient(client);
        ::close(client);
    }
}

void
TelemetryPublisher::serveClient(int fd)
{
    // One short request per connection; a scrape request line always
    // fits one read on loopback.
    char buf[2048];
    ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    if (n <= 0)
        return;
    buf[n] = '\0';
    std::string req(buf);
    std::string path = "/";
    if (req.compare(0, 4, "GET ") == 0) {
        auto end = req.find(' ', 4);
        if (end != std::string::npos)
            path = req.substr(4, end - 4);
    }

    std::string body;
    std::string type = "text/plain; charset=utf-8";
    int code = 200;
    if (path == "/metrics" || path == "/") {
        body = renderPrometheus(snapshot());
        type = "text/plain; version=0.0.4; charset=utf-8";
    } else if (path == "/metrics.json" || path == "/json") {
        body = renderTelemetryJson(snapshot());
        type = "application/json";
    } else if (path == "/healthz") {
        body = "ok\n";
    } else {
        body = "not found\n";
        code = 404;
    }

    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << "HTTP/1.1 " << code << (code == 200 ? " OK" : " Not Found")
       << "\r\nContent-Type: " << type
       << "\r\nContent-Length: " << body.size()
       << "\r\nConnection: close\r\n\r\n"
       << body;
    std::string response = os.str();
    std::size_t sent = 0;
    while (sent < response.size()) {
        ssize_t w = ::send(fd, response.data() + sent,
                           response.size() - sent, MSG_NOSIGNAL);
        if (w <= 0)
            break;
        sent += static_cast<std::size_t>(w);
    }
}

} // namespace preempt::obs

#endif // PREEMPT_OBS_DISABLED
