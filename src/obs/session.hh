/**
 * @file
 * One-line observability wiring for bench/example binaries:
 *
 *   CommandLine cli(argc, argv);
 *   obs::Session session(cli);   // consumes --trace-out, --metrics-out,
 *                                // --log-level
 *   ...
 *   cli.rejectUnknown();
 *
 * When --trace-out and/or --metrics-out are given, the session
 * installs a process-wide Tracer/MetricsRegistry before the workload
 * runs and writes the Chrome trace / metrics JSON files when it is
 * destroyed (normally at the end of main). Without those flags the
 * session installs nothing and instrumentation stays on its
 * disabled fast path.
 *
 * Live telemetry (obs/telemetry.hh) rides the same wiring:
 *   --stats-interval=MS   publish a snapshot every MS milliseconds
 *   --stats-port=P        serve /metrics over HTTP on 127.0.0.1:P
 *                         (0 = ephemeral port)
 *   --stats-dump=PATH     SIGUSR2 / exit writes the JSON snapshot here
 *   --stats-slo-us=N      count span totals above N us as violations
 *   --stats-window=SEC    sliding-window span for the `*_window`
 *                         series (default 10 publish intervals)
 * Any of those switches except --stats-slo-us turns the telemetry
 * plane on: the session
 * then also installs a live SpanCollector (per-tenant scheduler-delay
 * attribution) and starts a TelemetryPublisher over the registry (one
 * is created even without --metrics-out). Under -DPREEMPT_OBS=OFF the
 * flags are accepted and ignored.
 */

#ifndef PREEMPT_OBS_SESSION_HH
#define PREEMPT_OBS_SESSION_HH

#include <memory>
#include <string>

#include "obs/metrics.hh"
#include "obs/spans.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"

namespace preempt {
class CommandLine;
} // namespace preempt

namespace preempt::obs {

/** RAII flag parsing + exporter flush. */
class Session
{
  public:
    struct Options
    {
        /** Tracer shape when --trace-out is given. */
        Tracer::Options tracer;
    };

    explicit Session(CommandLine &cli, Options options = {});

    /** Flushes output files and uninstalls the globals. */
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** True when --trace-out was given. */
    bool tracing() const { return tracer_ != nullptr; }

    /** True when --metrics-out was given. */
    bool metrics() const { return !metricsOut_.empty(); }

    /** True when the live telemetry plane is running. */
    bool telemetry() const
    {
#ifndef PREEMPT_OBS_DISABLED
        return publisher_ != nullptr;
#else
        return false;
#endif
    }

    /**
     * Label the runs of a multi-configuration bench: each call starts
     * a new trace epoch, which the exporter maps to its own Perfetto
     * process. No-op when tracing is off.
     */
    void beginRun(const std::string &name);

    /** Flush output files now (also done by the destructor). */
    void flush();

    /** The installed tracer (nullptr when --trace-out was absent). */
    Tracer *tracerPtr() { return tracer_.get(); }

    /** The installed registry. Non-null when --metrics-out or any
     *  --stats-* flag was given. */
    MetricsRegistry *metricsPtr() { return metrics_.get(); }

#ifndef PREEMPT_OBS_DISABLED
    /** The live publisher (nullptr without --stats-* flags). */
    TelemetryPublisher *telemetryPtr() { return publisher_.get(); }

    /** The live span collector (nullptr without --stats-* flags). */
    SpanCollector *spansPtr() { return spans_.get(); }
#endif

    /** Tracer shape; per-cell tracers in the parallel harness clone
     *  this so capacity-driven drop behaviour matches a solo run. */
    const Tracer::Options &tracerOptions() const { return options_.tracer; }

  private:
    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<MetricsRegistry> metrics_;
#ifndef PREEMPT_OBS_DISABLED
    std::unique_ptr<SpanCollector> spans_;
    std::unique_ptr<TelemetryPublisher> publisher_;
#endif
    Options options_;
    std::string traceOut_;
    std::string metricsOut_;
    std::string statsDump_;
    bool flushed_ = false;
};

} // namespace preempt::obs

#endif // PREEMPT_OBS_SESSION_HH
