#include "obs/trace.hh"

#include <bit>

#include "common/logging.hh"

namespace preempt::obs {

namespace {

/** Installed tracer; relaxed is enough — installation happens before
 *  the traced run starts and uninstallation after it quiesces. */
std::atomic<Tracer *> g_tracer{nullptr};

/** Per-thread shadow (parallel harness cells); plain — thread-owned. */
thread_local Tracer *t_threadTracer = nullptr;

} // namespace

const char *
kindName(EventKind kind)
{
    switch (kind) {
      case EventKind::EpochBegin:          return "epoch_begin";
      case EventKind::UintrSend:           return "uintr_send";
      case EventKind::UintrDeliverRunning: return "uintr_deliver_running";
      case EventKind::UintrDeliverBlocked: return "uintr_deliver_blocked";
      case EventKind::UintrWake:           return "uintr_wake";
      case EventKind::QuantumDecision:     return "quantum_decision";
      case EventKind::TimerArm:            return "timer_arm";
      case EventKind::TimerFire:           return "timer_fire";
      case EventKind::TimerCancel:         return "timer_cancel";
      case EventKind::TimerCascade:        return "timer_cascade";
      case EventKind::EventQueueDepth:     return "event_queue_depth";
      case EventKind::Dispatch:            return "dispatch";
      case EventKind::Launch:              return "launch";
      case EventKind::Resume:              return "resume";
      case EventKind::Preempt:             return "preempt";
      case EventKind::Complete:            return "complete";
      case EventKind::CancelRequest:       return "cancel_request";
      case EventKind::Steal:               return "steal";
      case EventKind::HandlerEnter:        return "handler_enter";
      case EventKind::FaultInject:         return "fault_inject";
      case EventKind::FaultRecover:        return "fault_recover";
      case EventKind::TaskMigrate:         return "task_migrate";
      case EventKind::TaskSubmit:          return "task_submit";
      case EventKind::TaskReject:          return "task_reject";
      case EventKind::kCount:              break;
    }
    return "unknown";
}

TraceRing::TraceRing(std::size_t capacity)
{
    fatal_if(capacity == 0, "trace ring needs a non-zero capacity");
    std::size_t cap = std::bit_ceil(capacity);
    buf_.resize(cap);
    mask_ = cap - 1;
}

std::vector<TraceRecord>
TraceRing::snapshot() const
{
    std::uint64_t w = written();
    std::uint64_t first = w > capacity() ? w - capacity() : 0;
    std::vector<TraceRecord> out;
    out.reserve(static_cast<std::size_t>(w - first));
    for (std::uint64_t i = first; i < w; ++i)
        out.push_back(buf_[i & mask_]);
    return out;
}

Tracer::Tracer() : Tracer(Options{}) {}

Tracer::Tracer(Options options)
    : perCoreCapacity_(options.perCoreCapacity)
{
    fatal_if(options.cores == 0, "tracer needs at least one core ring");
    rings_.resize(options.cores);
    if (!options.lazyRings) {
        for (std::uint32_t c = 0; c < options.cores; ++c)
            rings_[c] = std::make_unique<TraceRing>(perCoreCapacity_);
    }
    epochNames_.push_back("main");
}

TraceRing &
Tracer::allocateRing(std::uint32_t core) noexcept
{
    rings_[core] = std::make_unique<TraceRing>(perCoreCapacity_);
    return *rings_[core];
}

void
Tracer::absorb(const Tracer &donor)
{
    // Donor epoch 0 is "main" on both sides; its named epochs land
    // after ours, so the merged numbering only depends on absorb
    // order, never on which thread ran the cell.
    auto offset = static_cast<std::uint32_t>(epochNames_.size());
    const auto &names = donor.epochNames();
    for (std::size_t e = 1; e < names.size(); ++e)
        epochNames_.push_back(names[e]);
    auto remap = [offset](std::uint32_t epoch) {
        return epoch == 0 ? 0 : offset + epoch - 1;
    };

    for (std::uint32_t c = 0; c < donor.cores(); ++c) {
        if (!donor.hasRing(c))
            continue;
        if (c >= rings_.size()) {
            droppedOutOfRange_.fetch_add(donor.ring(c).written(),
                                         std::memory_order_relaxed);
            continue;
        }
        TraceRing *ring = rings_[c].get();
        if (!ring)
            ring = &allocateRing(c);
        for (TraceRecord rec : donor.ring(c).snapshot()) {
            rec.epoch = remap(rec.epoch);
            if (rec.kind ==
                static_cast<std::uint16_t>(EventKind::EpochBegin))
                rec.id = remap(static_cast<std::uint32_t>(rec.id));
            ring->push(rec);
        }
    }
    absorbedDropped_ += donor.totalDropped();
    droppedOutOfRange_.fetch_add(donor.droppedOutOfRange(),
                                 std::memory_order_relaxed);
}

std::uint32_t
Tracer::beginEpoch(const std::string &name)
{
    epochNames_.push_back(name);
    auto index = static_cast<std::uint32_t>(epochNames_.size() - 1);
    epoch_.store(index, std::memory_order_relaxed);
    // The marker makes the epoch visible even on otherwise idle cores.
    record(EventKind::EpochBegin, 0, 0, index);
    return index;
}

std::uint64_t
Tracer::totalWritten() const
{
    std::uint64_t sum = 0;
    for (const auto &r : rings_)
        sum += r ? r->written() : 0;
    return sum;
}

std::uint64_t
Tracer::totalDropped() const
{
    std::uint64_t sum = absorbedDropped_;
    for (const auto &r : rings_)
        sum += r ? r->dropped() : 0;
    return sum;
}

Tracer *
tracer() noexcept
{
    if (t_threadTracer)
        return t_threadTracer;
    return g_tracer.load(std::memory_order_relaxed);
}

void
setTracer(Tracer *tracer) noexcept
{
    g_tracer.store(tracer, std::memory_order_release);
}

void
setThreadTracer(Tracer *tracer) noexcept
{
    t_threadTracer = tracer;
}

Tracer *
threadTracer() noexcept
{
    return t_threadTracer;
}

void
beginEpoch(const std::string &name)
{
    if (Tracer *t = tracer())
        t->beginEpoch(name);
}

} // namespace preempt::obs
