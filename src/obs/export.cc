#include "obs/export.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <locale>
#include <ostream>
#include <vector>

#include "common/logging.hh"

namespace preempt::obs {

namespace {

/** Fixed-point microseconds (3 decimals) from nanoseconds: Chrome
 *  trace "ts" is in us; integer math keeps the output deterministic. */
void
writeTsUs(std::ostream &os, std::uint64_t ns)
{
    os << ns / 1000 << '.';
    std::uint64_t frac = ns % 1000;
    os << static_cast<char>('0' + frac / 100)
       << static_cast<char>('0' + frac / 10 % 10)
       << static_cast<char>('0' + frac % 10);
}

void
writeEvent(std::ostream &os, const TraceRecord &r, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "  {\"name\": \""
       << kindName(static_cast<EventKind>(r.kind))
       << "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": " << r.epoch
       << ", \"tid\": " << r.core << ", \"ts\": ";
    writeTsUs(os, r.ts);
    os << ", \"args\": {\"id\": " << r.id << ", \"a0\": " << r.a0
       << ", \"a1\": " << r.a1 << "}}";
}

void
writeMeta(std::ostream &os, const char *what, std::uint32_t pid,
          std::int64_t tid, const std::string &name, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "  {\"name\": \"" << what << "\", \"ph\": \"M\", \"pid\": "
       << pid;
    if (tid >= 0)
        os << ", \"tid\": " << tid;
    os << ", \"args\": {\"name\": \"" << name << "\"}}";
}

} // namespace

void
writeChromeTrace(const Tracer &tracer, std::ostream &os)
{
    // Byte-stable on any host: integer rendering must not pick up
    // grouping separators from an ambient std::locale::global().
    os.imbue(std::locale::classic());

    // Gather rings in core order, then stable-sort by (epoch, ts,
    // core): same-seed runs emit identical record sets in identical
    // ring order, so the output is byte-stable.
    std::vector<TraceRecord> records;
    std::vector<bool> coreUsed(tracer.cores(), false);
    for (std::uint32_t c = 0; c < tracer.cores(); ++c) {
        if (!tracer.hasRing(c))
            continue;
        for (const TraceRecord &r : tracer.ring(c).snapshot()) {
            records.push_back(r);
            coreUsed[c] = true;
        }
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         if (a.epoch != b.epoch)
                             return a.epoch < b.epoch;
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         return a.core < b.core;
                     });

    os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
    bool first = true;
    const auto &epochs = tracer.epochNames();
    for (std::uint32_t e = 0; e < epochs.size(); ++e) {
        writeMeta(os, "process_name", e, -1, epochs[e], first);
        for (std::uint32_t c = 0; c < tracer.cores(); ++c) {
            if (coreUsed[c])
                writeMeta(os, "thread_name", e, c,
                          "core " + std::to_string(c), first);
        }
    }
    for (const TraceRecord &r : records)
        writeEvent(os, r, first);
    // Top-level metadata (Chrome trace JSON allows extra keys): ring
    // losses, so a consumer can tell a complete trace from one whose
    // head was overwritten (drop-oldest) or that lost records to
    // out-of-range core ids.
    os << "\n], \"metadata\": {\"records\": " << records.size()
       << ", \"dropped_overwritten\": " << tracer.totalDropped()
       << ", \"dropped_out_of_range\": " << tracer.droppedOutOfRange()
       << "}}\n";
}

void
writeChromeTrace(const Tracer &tracer, const std::string &path)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot open trace output '%s'", path.c_str());
    writeChromeTrace(tracer, out);
}

void
writeMetricsJson(const MetricsRegistry &registry, const std::string &path)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot open metrics output '%s'", path.c_str());
    out << registry.toJson();
}

// ----- minimal JSON validator ---------------------------------------

namespace {

/** Recursive-descent checker over a string view. */
class JsonChecker
{
  public:
    JsonChecker(const std::string &text, std::string *err)
        : s_(text), err_(err)
    {
    }

    bool
    run()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        if (pos_ != s_.size())
            return fail("trailing characters");
        return true;
    }

  private:
    bool
    fail(const char *why)
    {
        if (err_ && err_->empty())
            *err_ = std::string(why) + " at offset " +
                    std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool eof() const { return pos_ >= s_.size(); }
    char peek() const { return s_[pos_]; }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return fail("bad literal");
        pos_ += n;
        return true;
    }

    bool
    value()
    {
        if (++depth_ > 256)
            return fail("nesting too deep");
        bool ok = valueInner();
        --depth_;
        return ok;
    }

    bool
    valueInner()
    {
        if (eof())
            return fail("unexpected end");
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (!eof() && peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (eof() || peek() != '"')
                return fail("expected object key");
            if (!string())
                return false;
            skipWs();
            if (eof() || peek() != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (eof())
                return fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (!eof() && peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (eof())
                return fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    string()
    {
        ++pos_; // '"'
        while (!eof()) {
            char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (eof())
                    return fail("bad escape");
                char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (eof() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[pos_])))
                            return fail("bad \\u escape");
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape");
                }
                ++pos_;
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("control character in string");
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        if (peek() == '-')
            ++pos_;
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
            return fail("bad number");
        if (peek() == '0') {
            ++pos_;
        } else {
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!eof() && peek() == '.') {
            ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad fraction");
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad exponent");
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return true;
    }

    const std::string &s_;
    std::string *err_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool
validateJson(const std::string &text, std::string *err)
{
    if (err)
        err->clear();
    return JsonChecker(text, err).run();
}

} // namespace preempt::obs
