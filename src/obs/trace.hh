/**
 * @file
 * Per-core trace rings: the repository's flight recorder.
 *
 * Every layer where the paper's numbers are made (UINTR delivery,
 * quantum-controller decisions, timer fires, dispatch/preempt in the
 * simulated and real runtimes) emits fixed-size POD records into a
 * fixed-capacity per-core ring. Recording is allocation-free and
 * lock-free: one relaxed fetch_add reserves a slot, plain stores fill
 * it, so the same path is usable from the real runtime's
 * signal/UINTR preemption handlers (async-signal-safe: lock-free
 * atomics and stores only).
 *
 * The fast path when tracing is off is a single relaxed load of the
 * global tracer pointer plus a predictable branch; compiling with
 * -DPREEMPT_OBS_DISABLED removes even that.
 *
 * Timestamps are supplied by the caller: simulated subsystems pass
 * virtual time (so same-seed runs produce byte-identical traces), the
 * real runtime passes host nanoseconds.
 *
 * Overflow is drop-oldest: the ring overwrites its oldest records and
 * keeps an exact dropped() count, so a bounded ring can run under any
 * load and the tail of the run is always retained.
 */

#ifndef PREEMPT_OBS_TRACE_HH
#define PREEMPT_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/time.hh"

namespace preempt::obs {

/**
 * Catalog of trace event kinds. Values are part of the on-disk/golden
 * format: append new kinds at the end, never renumber (see DESIGN.md
 * section 8).
 */
enum class EventKind : std::uint16_t
{
    EpochBegin = 0,         ///< run marker; id = epoch index

    // hw::UintrUnit
    UintrSend = 1,          ///< SENDUIPI issued; id = receiver, a0 = vector
    UintrDeliverRunning = 2,///< handler entry, receiver was running;
                            ///< a0 = send-to-delivery latency ns
    UintrDeliverBlocked = 3,///< delivery after kernel unblock;
                            ///< a0 = send-to-delivery latency ns
    UintrWake = 4,          ///< blocked receiver woken; a0 = latency ns

    // core::QuantumController / AdaptiveQuantumDriver
    QuantumDecision = 5,    ///< a0 = new quantum ns, a1 = Decision enum,
                            ///< id = measured load (RPS)

    // LibUtimer (simulated and real) and core::TimingWheel
    TimerArm = 6,           ///< deadline armed; a0 = deadline ns
    TimerFire = 7,          ///< preemption/timer fired; a0 = lateness ns
    TimerCancel = 8,        ///< armed deadline revoked before firing
    TimerCascade = 9,       ///< timing-wheel level cascade; a0 = entries

    // sim::EventQueue
    EventQueueDepth = 10,   ///< sampled; a0 = live events, a1 = heap size

    // runtimes (simulated LibPreemptible, baselines, real runtime)
    Dispatch = 11,          ///< request routed to a worker; a0 = worker
    Launch = 12,            ///< fresh request starts; a0 = service ns,
                            ///< a1 = armed quantum ns (0 = none)
    Resume = 13,            ///< preempted request resumes; a0 =
                            ///< remaining, a1 = armed quantum ns
    Preempt = 14,           ///< quantum expired; a0 = executed ns,
                            ///< a1 = remaining ns
    Complete = 15,          ///< request finished; a0 = latency ns
    CancelRequest = 16,     ///< SLO-hopeless request dropped
    Steal = 17,             ///< work stolen from a peer; a0 = victim
    HandlerEnter = 18,      ///< real preemption handler entry
                            ///< (signal/UINTR context)

    // fault:: injection (PR 3)
    FaultInject = 19,       ///< fault triggered; id = fault::Site,
                            ///< a0 = fault::Action, a1 = param ns
    FaultRecover = 20,      ///< mitigation recovered from a fault;
                            ///< id = fault::Site, a0 = attempt/kind

    // real runtime work stealing (PR 7)
    TaskMigrate = 21,       ///< task changed workers (steal or long-
                            ///< queue adoption); id = task,
                            ///< a0 = from worker, a1 = to worker

    // task lifecycle spans (PR 8)
    TaskSubmit = 22,        ///< task handed to the scheduler (sim:
                            ///< arrival, real: submit call); id = task,
                            ///< a0 = class, a1 = tenant. Span builders
                            ///< measure end-to-end latency from here.

    // admission control (PR 10)
    TaskReject = 23,        ///< submission rejected (admission policy
                            ///< or full-inbox backpressure); id = task,
                            ///< a0 = class, a1 = tenant. Not a
                            ///< lifecycle kind: no span is opened.

    kCount
};

/** Stable lowercase name of a kind ("uintr_send", ...). */
const char *kindName(EventKind kind);

/** One trace record: 40 bytes, POD, no pointers. */
struct TraceRecord
{
    std::uint64_t ts;       ///< ns: virtual (sim) or host (real runtime)
    std::uint16_t kind;     ///< EventKind
    std::uint16_t core;     ///< originating core / track
    std::uint32_t epoch;    ///< run marker (Tracer::beginEpoch)
    std::uint64_t id;       ///< thread / request / receiver id
    std::uint64_t a0;       ///< payload word 0 (kind-specific)
    std::uint64_t a1;       ///< payload word 1 (kind-specific)
};

static_assert(sizeof(TraceRecord) == 40, "trace record layout is part "
                                         "of the golden format");
static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "records must be memcpy-able from signal context");

/**
 * Fixed-capacity single-writer ring of trace records. push() is
 * wait-free and async-signal-safe; overflow overwrites the oldest
 * record (drop-oldest) and is counted.
 */
class TraceRing
{
  public:
    /** @param capacity record capacity; rounded up to a power of two. */
    explicit TraceRing(std::size_t capacity);

    TraceRing(const TraceRing &) = delete;
    TraceRing &operator=(const TraceRing &) = delete;

    /** Append one record (single writer per ring). */
    void
    push(const TraceRecord &rec) noexcept
    {
        // Reserve-then-fill: a signal handler interrupting between the
        // fetch_add and the stores writes its own slot, so the
        // interrupted record is torn at worst, never the handler's.
        std::uint64_t slot = head_.fetch_add(1, std::memory_order_relaxed);
        buf_[slot & mask_] = rec;
    }

    /** Records ever pushed (including overwritten ones). */
    std::uint64_t written() const
    {
        return head_.load(std::memory_order_relaxed);
    }

    /** Records lost to drop-oldest overflow. */
    std::uint64_t
    dropped() const
    {
        std::uint64_t w = written();
        return w > capacity() ? w - capacity() : 0;
    }

    std::size_t capacity() const { return mask_ + 1; }

    /** Retained records, oldest first. Not for use while writers run. */
    std::vector<TraceRecord> snapshot() const;

  private:
    std::vector<TraceRecord> buf_;
    std::uint64_t mask_;
    std::atomic<std::uint64_t> head_{0};
};

/**
 * The tracer: one ring per core plus run (epoch) labels. Emission is
 * routed by core id; out-of-range cores are counted and dropped rather
 * than clamped onto another core's track.
 */
class Tracer
{
  public:
    struct Options
    {
        /** Ring count; sim core ids (dispatcher 0, workers 1..N,
         *  timer N+1) and real worker indices must fit. */
        std::uint32_t cores = 64;

        /** Records retained per core. */
        std::size_t perCoreCapacity = std::size_t{1} << 16;

        /**
         * Allocate each core's ring on its first record instead of up
         * front. Per-cell tracers in the parallel experiment harness
         * use this so an idle 64-core tracer costs nothing; the
         * allocation on first use is NOT async-signal-safe, so lazy
         * tracers are for thread-confined simulator cells only.
         */
        bool lazyRings = false;
    };

    Tracer(); ///< default Options (out of line: NSDMIs of a nested
              ///< class are not usable in in-class default arguments)
    explicit Tracer(Options options);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Record one event. Wait-free, async-signal-safe (except the
     *  first record per core of a lazyRings tracer, which allocates). */
    void
    record(EventKind kind, std::uint32_t core, std::uint64_t ts,
           std::uint64_t id, std::uint64_t a0 = 0,
           std::uint64_t a1 = 0) noexcept
    {
        if (core >= rings_.size()) {
            droppedOutOfRange_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        TraceRing *ring = rings_[core].get();
        if (!ring) [[unlikely]]
            ring = &allocateRing(core);
        TraceRecord rec;
        rec.ts = ts;
        rec.kind = static_cast<std::uint16_t>(kind);
        rec.core = static_cast<std::uint16_t>(core);
        rec.epoch = epoch_.load(std::memory_order_relaxed);
        rec.id = id;
        rec.a0 = a0;
        rec.a1 = a1;
        ring->push(rec);
    }

    /**
     * Start a new epoch (one per run/configuration in a multi-run
     * bench); subsequent records carry its index and the exporter maps
     * each epoch to its own Perfetto process. Not signal-safe.
     * @return the new epoch index.
     */
    std::uint32_t beginEpoch(const std::string &name);

    std::uint32_t cores() const
    {
        return static_cast<std::uint32_t>(rings_.size());
    }

    /** False while a lazyRings core has not recorded anything yet. */
    bool hasRing(std::uint32_t core) const
    {
        return rings_[core] != nullptr;
    }

    const TraceRing &ring(std::uint32_t core) const
    {
        return *rings_[core];
    }

    /**
     * Append another tracer's retained records and epochs to this one
     * (the parallel harness merges per-cell tracers in submission
     * order). The donor's epoch 0 ("main") maps onto this tracer's
     * epoch 0; its named epochs are appended after the existing ones,
     * and EpochBegin marker ids are remapped to match. The donor must
     * be quiescent; not thread-safe against concurrent record() calls
     * on either side. Drop counts carry over.
     */
    void absorb(const Tracer &donor);

    /** Epoch labels; index = epoch id. Epoch 0 is "main". */
    const std::vector<std::string> &epochNames() const
    {
        return epochNames_;
    }

    /** Sum of records pushed across all rings. */
    std::uint64_t totalWritten() const;

    /** Sum of drop-oldest losses across all rings. */
    std::uint64_t totalDropped() const;

    /** Records rejected for an out-of-range core id. */
    std::uint64_t
    droppedOutOfRange() const
    {
        return droppedOutOfRange_.load(std::memory_order_relaxed);
    }

  private:
    /** Create the ring for a lazyRings core (out of line, cold). */
    TraceRing &allocateRing(std::uint32_t core) noexcept;

    std::vector<std::unique_ptr<TraceRing>> rings_;
    std::size_t perCoreCapacity_;
    std::atomic<std::uint32_t> epoch_{0};
    std::vector<std::string> epochNames_;
    std::atomic<std::uint64_t> droppedOutOfRange_{0};
    /** Drop-oldest losses inherited from absorbed tracers. */
    std::uint64_t absorbedDropped_ = 0;
};

/**
 * The tracer emissions on this thread resolve to, or nullptr (tracing
 * off): the thread-confined tracer when one is installed, otherwise
 * the process-wide one.
 */
Tracer *tracer() noexcept;

/**
 * Install/uninstall the process-wide tracer. The caller keeps
 * ownership and must uninstall (setTracer(nullptr)) before destroying
 * it. Instrumented objects must not emit after that.
 */
void setTracer(Tracer *tracer) noexcept;

/**
 * Install/uninstall a tracer for the calling thread only. While set it
 * shadows the process-wide tracer on this thread; the parallel
 * experiment harness gives each cell its own capture this way so
 * concurrent cells never share rings. Pass nullptr to fall back to the
 * process-wide tracer.
 */
void setThreadTracer(Tracer *tracer) noexcept;

/** The calling thread's shadowing tracer, or nullptr. */
Tracer *threadTracer() noexcept;

/** RAII thread-confined tracer install (nullptr = no shadowing). */
class ScopedThreadTracer
{
  public:
    explicit ScopedThreadTracer(Tracer *tracer)
        : prev_(threadTracer())
    {
        setThreadTracer(tracer);
    }

    ~ScopedThreadTracer() { setThreadTracer(prev_); }

    ScopedThreadTracer(const ScopedThreadTracer &) = delete;
    ScopedThreadTracer &operator=(const ScopedThreadTracer &) = delete;

  private:
    Tracer *prev_;
};

/** Begin an epoch on the installed tracer; no-op when tracing is off. */
void beginEpoch(const std::string &name);

/**
 * The emission fast path used by instrumentation sites. Disabled
 * builds (-DPREEMPT_OBS_DISABLED) compile to nothing; enabled builds
 * pay one relaxed load and a predictable branch when no tracer is
 * installed.
 */
inline void
emit(EventKind kind, std::uint32_t core, std::uint64_t ts,
     std::uint64_t id, std::uint64_t a0 = 0, std::uint64_t a1 = 0) noexcept
{
#ifdef PREEMPT_OBS_DISABLED
    (void)kind; (void)core; (void)ts; (void)id; (void)a0; (void)a1;
#else
    Tracer *t = tracer();
    if (t) [[unlikely]]
        t->record(kind, core, ts, id, a0, a1);
#endif
}

/** True when a tracer is installed (for gating costlier payload prep). */
inline bool
tracing() noexcept
{
#ifdef PREEMPT_OBS_DISABLED
    return false;
#else
    return tracer() != nullptr;
#endif
}

} // namespace preempt::obs

#endif // PREEMPT_OBS_TRACE_HH
