/**
 * @file
 * Task-lifecycle spans: fold the flat TaskSubmit / Dispatch / Launch /
 * Resume / Preempt / Complete / CancelRequest / TaskMigrate trace
 * records into one span per task with an exact scheduler-delay
 * decomposition:
 *
 *     queued + running + preempted + timer_lag  ==  end-to-end latency
 *
 * where
 *   queued    = submit -> first launch (dispatcher + ready-queue wait),
 *   preempted = time parked between a Preempt and the next Resume,
 *   timer_lag = per running segment, the part of the segment past the
 *               armed quantum (late timer fire / delivery latency /
 *               handler overhead),
 *   running   = the rest of every running segment.
 *
 * The decomposition is exact by construction (saturating arithmetic is
 * only used to survive host-clock skew across threads, and every
 * clamp is counted in Anomalies), so on a deterministic simulator run
 * the invariant holds to the nanosecond for 100% of completed tasks —
 * tests/test_spans.cc enforces it as a golden invariant.
 *
 * Two consumers:
 *   - offline: buildSpans(records) / buildSpans(Tracer) over a
 *     finished run (tools/span_tool reconstructs records from a
 *     --trace-out file and prints/exports the breakdown);
 *   - live: a SpanCollector installed via setSpanCollector() receives
 *     lifecycle records as they are emitted (obs::emitSpan) and feeds
 *     per-tenant delay-breakdown histograms that the telemetry
 *     publisher (obs/telemetry.hh) snapshots while the runtime serves
 *     traffic.
 *
 * With -DPREEMPT_OBS_DISABLED the whole subsystem compiles away:
 * emitSpan() degrades to nothing and the collector types become empty
 * stubs.
 */

#ifndef PREEMPT_OBS_SPANS_HH
#define PREEMPT_OBS_SPANS_HH

#include <cstdint>
#include <vector>

#include "obs/trace.hh"

#ifndef PREEMPT_OBS_DISABLED

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "common/histogram.hh"
#include "common/windowed_histogram.hh"

namespace preempt::obs {

/** The four-way scheduler-delay decomposition of one task (ns). */
struct SpanBreakdown
{
    std::uint64_t queuedNs = 0;    ///< submit -> first launch
    std::uint64_t runningNs = 0;   ///< on-CPU segment time within quantum
    std::uint64_t preemptedNs = 0; ///< parked between preempt and resume
    std::uint64_t timerLagNs = 0;  ///< segment time past the armed quantum

    std::uint64_t
    total() const
    {
        return queuedNs + runningNs + preemptedNs + timerLagNs;
    }
};

/** One folded task lifecycle. */
struct TaskSpan
{
    std::uint64_t id = 0;          ///< task / request id
    std::uint32_t epoch = 0;       ///< trace epoch the span belongs to
    std::uint32_t tenant = 0;      ///< TaskSubmit a1
    std::uint32_t cls = 0;         ///< TaskSubmit a0 (0 = LC, 1 = BE)
    std::uint64_t submitTs = 0;    ///< TaskSubmit timestamp
    std::uint64_t endTs = 0;       ///< Complete / CancelRequest ts
    std::uint32_t segments = 0;    ///< running segments (1 + resumes)
    std::uint32_t migrations = 0;  ///< TaskMigrate count
    bool completed = false;        ///< Complete (true) vs cancelled
    SpanBreakdown breakdown;

    /** Measured end-to-end latency (submit -> end). */
    std::uint64_t latencyNs() const { return endTs - submitTs; }

    /** Exact-decomposition invariant (see file comment). */
    bool invariantHolds() const
    {
        return breakdown.total() == latencyNs();
    }
};

/**
 * Streaming span folder. Feed it lifecycle records (any order across
 * tasks, per-task order as emitted); finished spans aggregate into
 * per-tenant delay-breakdown histograms and optionally a bounded list
 * of retained spans for offline inspection.
 *
 * Thread-safe: state is sharded by task id (16 ways), so concurrent
 * workers folding different tasks rarely contend. Not async-signal-
 * safe — lifecycle records are emitted from thread context only
 * (HandlerEnter and friends stay on the wait-free ring path).
 */
class SpanCollector
{
  public:
    struct Options
    {
        /** Retain finished spans (offline tooling); 0 = aggregate
         *  only. Retention is capped, oldest kept. */
        std::size_t keepSpans = 0;

        /** Count spans whose total exceeds this as SLO violations in
         *  the per-tenant aggregate (0 = disabled). */
        std::uint64_t sloNs = 0;

        /** Keep K-epoch sliding-window companions of every per-tenant
         *  histogram (0 = off). Epochs rotate only via
         *  rotateWindows() — the telemetry publisher's tick. */
        std::size_t windowEpochs = 0;
    };

    /** Per-tenant aggregate of finished spans. */
    struct TenantStats
    {
        std::uint64_t completed = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t violations = 0; ///< totals above Options::sloNs
        LatencyHistogram queued;
        LatencyHistogram running;
        LatencyHistogram preempted;
        LatencyHistogram timerLag;
        LatencyHistogram total;
    };

    /** Events that could not be folded cleanly. On a deterministic
     *  sim run every field stays zero; on a real host clock skew
     *  between worker threads may force saturating clamps. */
    struct Anomalies
    {
        std::uint64_t orphanEvents = 0;   ///< lifecycle event, no span
        std::uint64_t clampedTimes = 0;   ///< negative interval clamped
        std::uint64_t reopenedTasks = 0;  ///< submit while still open
        std::uint64_t danglingSpans = 0;  ///< open spans at drain time

        std::uint64_t
        total() const
        {
            return orphanEvents + clampedTimes + reopenedTasks +
                   danglingSpans;
        }
    };

    SpanCollector() : SpanCollector(Options{}) {}
    explicit SpanCollector(Options options);
    ~SpanCollector(); // out of line: Shard is incomplete here

    SpanCollector(const SpanCollector &) = delete;
    SpanCollector &operator=(const SpanCollector &) = delete;

    /** Fold one record. Non-lifecycle kinds are ignored, so a whole
     *  trace can be replayed through unfiltered. */
    void onRecord(const TraceRecord &rec);

    /** Convenience for emitSpan(): fold an event by fields. */
    void
    onEvent(EventKind kind, std::uint32_t core, std::uint64_t ts,
            std::uint64_t id, std::uint64_t a0, std::uint64_t a1,
            std::uint32_t epoch = 0)
    {
        TraceRecord rec;
        rec.ts = ts;
        rec.kind = static_cast<std::uint16_t>(kind);
        rec.core = static_cast<std::uint16_t>(core);
        rec.epoch = epoch;
        rec.id = id;
        rec.a0 = a0;
        rec.a1 = a1;
        onRecord(rec);
    }

    /** Spans finished so far (completed + cancelled). */
    std::uint64_t finished() const
    {
        return finished_.load(std::memory_order_relaxed);
    }

    /** Finished spans whose decomposition failed to sum exactly. */
    std::uint64_t invariantViolations() const
    {
        return invariantViolations_.load(std::memory_order_relaxed);
    }

    /** Copy of the per-tenant aggregates, keyed by tenant id. */
    std::map<std::uint32_t, TenantStats> tenantStats() const;

    /**
     * Per-tenant aggregates over the sliding window only (the last
     * K epochs of finished spans). Empty map when windowing is off.
     * `completed` counts finishes inside the window, and the
     * histograms cover exactly those spans.
     */
    std::map<std::uint32_t, TenantStats> tenantWindowStats() const;

    /** Enable (or resize, discarding window state) K-epoch windows. */
    void setWindowEpochs(std::size_t epochs);

    /** Publisher tick: retire the live epoch of every tenant. */
    void rotateWindows();

    /** Copy of the retained finished spans (Options::keepSpans > 0),
     *  in finish order. */
    std::vector<TaskSpan> retainedSpans() const;

    /** Folding anomaly counters (all zero on a clean sim run). */
    Anomalies anomalies() const;

    /** Count still-open spans as dangling anomalies (end of run). */
    void drainOpen();

  private:
    struct OpenSpan;
    struct Shard;

    /** Sliding-window companion of one tenant's aggregates. */
    struct TenantWindow
    {
        explicit TenantWindow(std::size_t epochs)
            : queued(epochs), running(epochs), preempted(epochs),
              timerLag(epochs), total(epochs), cancelled(epochs),
              violations(epochs)
        {
        }

        WindowedLatencyHistogram queued;
        WindowedLatencyHistogram running;
        WindowedLatencyHistogram preempted;
        WindowedLatencyHistogram timerLag;
        WindowedLatencyHistogram total;
        WindowedCounter cancelled;
        WindowedCounter violations;
    };

    Shard &shardFor(std::uint64_t id, std::uint32_t epoch);
    void finishSpan(Shard &shard, OpenSpan &open, std::uint64_t ts,
                    bool completed);

    static constexpr std::size_t kShards = 16;

    Options options_;
    std::unique_ptr<Shard[]> shards_;
    std::atomic<std::uint64_t> finished_{0};
    std::atomic<std::uint64_t> invariantViolations_{0};

    mutable std::mutex aggMutex_;
    std::map<std::uint32_t, TenantStats> tenants_;
    std::map<std::uint32_t, TenantWindow> windows_;
    std::vector<TaskSpan> retained_;
    Anomalies anomalies_;
};

/** Fold an already-collected record set (offline path). Records may
 *  be in ring order; they are sorted by (epoch, ts) per task as a
 *  by-product of per-task folding, but cross-task order is free. */
std::vector<TaskSpan> buildSpans(const std::vector<TraceRecord> &records,
                                 SpanCollector::Anomalies *anomalies =
                                     nullptr);

/** Fold every retained record of a quiescent tracer. */
std::vector<TaskSpan> buildSpans(const Tracer &tracer,
                                 SpanCollector::Anomalies *anomalies =
                                     nullptr);

/**
 * Install/uninstall the process-wide live collector (caller owns it;
 * uninstall before destroying). Lifecycle emission sites feed it via
 * emitSpan(); when none is installed emitSpan() is exactly emit().
 */
void setSpanCollector(SpanCollector *collector) noexcept;

/** The installed live collector, or nullptr. */
SpanCollector *spanCollector() noexcept;

/**
 * Lifecycle-site emission: the trace record plus, when a live
 * collector is installed, a streaming fold into it. Costs one extra
 * relaxed load over emit() when no collector is installed.
 */
inline void
emitSpan(EventKind kind, std::uint32_t core, std::uint64_t ts,
         std::uint64_t id, std::uint64_t a0 = 0,
         std::uint64_t a1 = 0) noexcept
{
    emit(kind, core, ts, id, a0, a1);
    if (SpanCollector *c = spanCollector()) [[unlikely]]
        c->onEvent(kind, core, ts, id, a0, a1);
}

} // namespace preempt::obs

#else // PREEMPT_OBS_DISABLED

namespace preempt::obs {

/** Disabled stub: lifecycle sites compile to nothing. */
inline void
emitSpan(EventKind, std::uint32_t, std::uint64_t, std::uint64_t,
         std::uint64_t = 0, std::uint64_t = 0) noexcept
{
}

} // namespace preempt::obs

#endif // PREEMPT_OBS_DISABLED

#endif // PREEMPT_OBS_SPANS_HH
