#include "obs/spans.hh"

#ifndef PREEMPT_OBS_DISABLED

#include <algorithm>
#include <utility>

namespace preempt::obs {

namespace {

std::atomic<SpanCollector *> g_spanCollector{nullptr};

/** Lifecycle phase of an open span. */
enum class Phase : std::uint8_t
{
    Queued,  ///< submitted, not yet launched
    Running, ///< a segment is on CPU
    Parked,  ///< preempted out, waiting for a resume
};

/** Equal-timestamp tie-break: the order lifecycle events can occur
 *  within one task at one instant. */
int
lifecycleRank(EventKind kind)
{
    switch (kind) {
      case EventKind::TaskSubmit:    return 0;
      case EventKind::Dispatch:      return 1;
      case EventKind::TaskMigrate:   return 2;
      case EventKind::Launch:
      case EventKind::Resume:        return 3;
      case EventKind::Preempt:       return 4;
      case EventKind::Complete:
      case EventKind::CancelRequest: return 5;
      default:                       return 6;
    }
}

} // namespace

/** In-flight span state. */
struct SpanCollector::OpenSpan
{
    TaskSpan span;
    Phase phase = Phase::Queued;
    std::uint64_t segStart = 0;   ///< current segment start ts
    std::uint64_t segQuantum = 0; ///< armed quantum (0 = unbounded)
    std::uint64_t lastEnd = 0;    ///< ts of the last Preempt
};

/** One lock + open-span map per shard; tasks hash across shards. */
struct SpanCollector::Shard
{
    std::mutex mutex;
    std::map<std::pair<std::uint32_t, std::uint64_t>, OpenSpan> open;
};

SpanCollector::SpanCollector(Options options)
    : options_(options), shards_(new Shard[kShards])
{
}

SpanCollector::~SpanCollector() = default;

SpanCollector::Shard &
SpanCollector::shardFor(std::uint64_t id, std::uint32_t epoch)
{
    std::uint64_t h = id ^ (static_cast<std::uint64_t>(epoch) *
                            0x9e3779b97f4a7c15ULL);
    return shards_[(h ^ (h >> 7)) % kShards];
}

void
SpanCollector::onRecord(const TraceRecord &rec)
{
    auto kind = static_cast<EventKind>(rec.kind);
    switch (kind) {
      case EventKind::TaskSubmit:
      case EventKind::Dispatch:
      case EventKind::Launch:
      case EventKind::Resume:
      case EventKind::Preempt:
      case EventKind::Complete:
      case EventKind::CancelRequest:
      case EventKind::TaskMigrate:
        break;
      default:
        return; // not a lifecycle record
    }

    Shard &shard = shardFor(rec.id, rec.epoch);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto key = std::make_pair(rec.epoch, rec.id);
    auto it = shard.open.find(key);

    // Saturating interval with an exact anomaly count: on the sim
    // clock `a >= b` always holds; on a real host cross-thread skew
    // may not, and every clamp is visible in anomalies().
    auto since = [this](std::uint64_t now, std::uint64_t then) {
        if (now < then) {
            std::lock_guard<std::mutex> alock(aggMutex_);
            ++anomalies_.clampedTimes;
            return std::uint64_t{0};
        }
        return now - then;
    };

    if (kind == EventKind::TaskSubmit || kind == EventKind::Dispatch) {
        if (it != shard.open.end()) {
            if (kind == EventKind::Dispatch)
                return; // routing record of an already-open span
            // A second submit with the same (epoch, id): ids collided
            // (e.g. two runtimes sharing a collector without unique
            // ids). Drop the stale span and restart.
            std::lock_guard<std::mutex> alock(aggMutex_);
            ++anomalies_.reopenedTasks;
            shard.open.erase(it);
        }
        OpenSpan open;
        open.span.id = rec.id;
        open.span.epoch = rec.epoch;
        open.span.submitTs = rec.ts;
        if (kind == EventKind::TaskSubmit) {
            open.span.cls = static_cast<std::uint32_t>(rec.a0);
            open.span.tenant = static_cast<std::uint32_t>(rec.a1);
        }
        shard.open.emplace(key, open);
        return;
    }

    if (it == shard.open.end()) {
        std::lock_guard<std::mutex> alock(aggMutex_);
        ++anomalies_.orphanEvents;
        return;
    }
    OpenSpan &open = it->second;
    SpanBreakdown &b = open.span.breakdown;

    switch (kind) {
      case EventKind::Launch:
      case EventKind::Resume:
        if (open.phase == Phase::Running) {
            // Missing segment end (dropped record): re-anchor and
            // count it; the lost segment time is unattributable.
            std::lock_guard<std::mutex> alock(aggMutex_);
            ++anomalies_.orphanEvents;
        } else if (open.phase == Phase::Queued) {
            b.queuedNs += since(rec.ts, open.span.submitTs);
        } else {
            b.preemptedNs += since(rec.ts, open.lastEnd);
        }
        open.phase = Phase::Running;
        open.segStart = rec.ts;
        open.segQuantum = rec.a1;
        break;

      case EventKind::Preempt: {
        if (open.phase != Phase::Running) {
            std::lock_guard<std::mutex> alock(aggMutex_);
            ++anomalies_.orphanEvents;
            break;
        }
        std::uint64_t dur = since(rec.ts, open.segStart);
        // The part of the segment past the armed quantum is timer-fire
        // lag: scan latency + delivery latency + handler overhead.
        std::uint64_t lag =
            open.segQuantum != 0 && dur > open.segQuantum
                ? dur - open.segQuantum
                : 0;
        b.runningNs += dur - lag;
        b.timerLagNs += lag;
        ++open.span.segments;
        open.phase = Phase::Parked;
        open.lastEnd = rec.ts;
        break;
      }

      case EventKind::TaskMigrate:
        ++open.span.migrations;
        break;

      case EventKind::Complete:
      case EventKind::CancelRequest:
        // Attribute the trailing gap so the decomposition always sums
        // to the measured latency, whatever phase the end lands in.
        if (open.phase == Phase::Running) {
            b.runningNs += since(rec.ts, open.segStart);
            ++open.span.segments;
        } else if (open.phase == Phase::Parked) {
            b.preemptedNs += since(rec.ts, open.lastEnd);
        } else {
            b.queuedNs += since(rec.ts, open.span.submitTs);
        }
        finishSpan(shard, open, rec.ts,
                   kind == EventKind::Complete);
        shard.open.erase(it);
        break;

      default:
        break;
    }
}

void
SpanCollector::finishSpan(Shard &shard, OpenSpan &open, std::uint64_t ts,
                          bool completed)
{
    (void)shard; // called with shard.mutex held
    TaskSpan span = open.span;
    span.endTs = ts;
    span.completed = completed;
    finished_.fetch_add(1, std::memory_order_relaxed);
    if (!span.invariantHolds())
        invariantViolations_.fetch_add(1, std::memory_order_relaxed);

    std::lock_guard<std::mutex> lock(aggMutex_);
    TenantStats &t = tenants_[span.tenant];
    TenantWindow *w = nullptr;
    if (options_.windowEpochs != 0)
        w = &windows_
                 .try_emplace(span.tenant, options_.windowEpochs)
                 .first->second;
    bool violated =
        options_.sloNs != 0 && span.latencyNs() > options_.sloNs;
    if (completed) {
        ++t.completed;
        t.queued.record(span.breakdown.queuedNs);
        t.running.record(span.breakdown.runningNs);
        t.preempted.record(span.breakdown.preemptedNs);
        t.timerLag.record(span.breakdown.timerLagNs);
        t.total.record(span.latencyNs());
        if (violated)
            ++t.violations;
        if (w) {
            w->queued.record(span.breakdown.queuedNs);
            w->running.record(span.breakdown.runningNs);
            w->preempted.record(span.breakdown.preemptedNs);
            w->timerLag.record(span.breakdown.timerLagNs);
            w->total.record(span.latencyNs());
            if (violated)
                w->violations.add();
        }
    } else {
        ++t.cancelled;
        if (w)
            w->cancelled.add();
    }
    if (options_.keepSpans != 0) {
        if (retained_.size() < options_.keepSpans)
            retained_.push_back(span);
        // At capacity the newest spans win (the tail of the run is the
        // interesting part, matching the rings' drop-oldest policy).
        else
            retained_[finished_.load(std::memory_order_relaxed) %
                      options_.keepSpans] = span;
    }
}

std::map<std::uint32_t, SpanCollector::TenantStats>
SpanCollector::tenantStats() const
{
    std::lock_guard<std::mutex> lock(aggMutex_);
    return tenants_;
}

std::map<std::uint32_t, SpanCollector::TenantStats>
SpanCollector::tenantWindowStats() const
{
    std::lock_guard<std::mutex> lock(aggMutex_);
    std::map<std::uint32_t, TenantStats> out;
    for (const auto &[tenant, w] : windows_) {
        TenantStats t;
        t.queued = w.queued.aggregate();
        t.running = w.running.aggregate();
        t.preempted = w.preempted.aggregate();
        t.timerLag = w.timerLag.aggregate();
        t.total = w.total.aggregate();
        t.completed = t.total.count();
        t.cancelled = w.cancelled.total();
        t.violations = w.violations.total();
        out.emplace(tenant, std::move(t));
    }
    return out;
}

void
SpanCollector::setWindowEpochs(std::size_t epochs)
{
    std::lock_guard<std::mutex> lock(aggMutex_);
    options_.windowEpochs = epochs;
    windows_.clear();
}

void
SpanCollector::rotateWindows()
{
    std::lock_guard<std::mutex> lock(aggMutex_);
    for (auto &[tenant, w] : windows_) {
        w.queued.rotate();
        w.running.rotate();
        w.preempted.rotate();
        w.timerLag.rotate();
        w.total.rotate();
        w.cancelled.rotate();
        w.violations.rotate();
    }
}

std::vector<TaskSpan>
SpanCollector::retainedSpans() const
{
    std::lock_guard<std::mutex> lock(aggMutex_);
    return retained_;
}

SpanCollector::Anomalies
SpanCollector::anomalies() const
{
    std::lock_guard<std::mutex> lock(aggMutex_);
    return anomalies_;
}

void
SpanCollector::drainOpen()
{
    std::size_t dangling = 0;
    for (std::size_t s = 0; s < kShards; ++s) {
        std::lock_guard<std::mutex> lock(shards_[s].mutex);
        dangling += shards_[s].open.size();
        shards_[s].open.clear();
    }
    std::lock_guard<std::mutex> lock(aggMutex_);
    anomalies_.danglingSpans += dangling;
}

std::vector<TaskSpan>
buildSpans(const std::vector<TraceRecord> &records,
           SpanCollector::Anomalies *anomalies)
{
    // Per-task event order must match emission order; rings are
    // per-core and one task's lifecycle crosses cores, so order by
    // (epoch, ts) with the lifecycle rank breaking exact ties.
    std::vector<TraceRecord> sorted = records;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         if (a.epoch != b.epoch)
                             return a.epoch < b.epoch;
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         return lifecycleRank(
                                    static_cast<EventKind>(a.kind)) <
                                lifecycleRank(
                                    static_cast<EventKind>(b.kind));
                     });

    SpanCollector::Options opt;
    opt.keepSpans = sorted.size() + 1; // retain everything
    SpanCollector collector(opt);
    for (const TraceRecord &rec : sorted)
        collector.onRecord(rec);
    collector.drainOpen();
    if (anomalies)
        *anomalies = collector.anomalies();
    return collector.retainedSpans();
}

std::vector<TaskSpan>
buildSpans(const Tracer &tracer, SpanCollector::Anomalies *anomalies)
{
    std::vector<TraceRecord> records;
    for (std::uint32_t c = 0; c < tracer.cores(); ++c) {
        if (!tracer.hasRing(c))
            continue;
        for (const TraceRecord &r : tracer.ring(c).snapshot())
            records.push_back(r);
    }
    return buildSpans(records, anomalies);
}

void
setSpanCollector(SpanCollector *collector) noexcept
{
    g_spanCollector.store(collector, std::memory_order_release);
}

SpanCollector *
spanCollector() noexcept
{
    return g_spanCollector.load(std::memory_order_relaxed);
}

} // namespace preempt::obs

#endif // PREEMPT_OBS_DISABLED
