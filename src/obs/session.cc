#include "obs/session.hh"

#include "common/cli.hh"
#include "common/logging.hh"
#include "obs/export.hh"

namespace preempt::obs {

Session::Session(CommandLine &cli, Options options)
    : options_(options)
{
    std::string level = cli.getString("log-level", "");
    if (!level.empty())
        setMinLogLevel(parseLogLevel(level));

    traceOut_ = cli.getString("trace-out", "");
    metricsOut_ = cli.getString("metrics-out", "");

    if (!traceOut_.empty()) {
        tracer_ = std::make_unique<Tracer>(options.tracer);
        setTracer(tracer_.get());
    }
    if (!metricsOut_.empty()) {
        metrics_ = std::make_unique<MetricsRegistry>();
        setMetricsRegistry(metrics_.get());
    }
}

Session::~Session()
{
    flush();
    if (tracer_)
        setTracer(nullptr);
    if (metrics_)
        setMetricsRegistry(nullptr);
}

void
Session::beginRun(const std::string &name)
{
    if (tracer_)
        tracer_->beginEpoch(name);
}

void
Session::flush()
{
    if (flushed_)
        return;
    flushed_ = true;
    if (tracer_) {
        writeChromeTrace(*tracer_, traceOut_);
        if (tracer_->totalDropped() || tracer_->droppedOutOfRange()) {
            inform("trace: %llu records overwritten (drop-oldest), "
                   "%llu dropped for out-of-range core ids",
                   static_cast<unsigned long long>(
                       tracer_->totalDropped()),
                   static_cast<unsigned long long>(
                       tracer_->droppedOutOfRange()));
        }
    }
    if (metrics_)
        writeMetricsJson(*metrics_, metricsOut_);
}

} // namespace preempt::obs
