#include "obs/session.hh"

#include "common/cli.hh"
#include "common/logging.hh"
#include "obs/export.hh"

namespace preempt::obs {

Session::Session(CommandLine &cli, Options options)
    : options_(options)
{
    std::string level = cli.getString("log-level", "");
    if (!level.empty())
        setMinLogLevel(parseLogLevel(level));

    traceOut_ = cli.getString("trace-out", "");
    metricsOut_ = cli.getString("metrics-out", "");

    // Telemetry flags are parsed unconditionally so OBS-off builds
    // accept (and ignore) them instead of dying in rejectUnknown().
    std::int64_t statsIntervalMs = cli.getInt("stats-interval", 0);
    std::int64_t statsPort = cli.getInt("stats-port", -1);
    statsDump_ = cli.getString("stats-dump", "");
    std::int64_t statsSloUs = cli.getInt("stats-slo-us", 0);
    std::int64_t statsWindowSec = cli.getInt("stats-window", 0);
    bool wantTelemetry = statsIntervalMs > 0 || statsPort >= 0 ||
                         !statsDump_.empty() || statsWindowSec > 0;

    if (!traceOut_.empty()) {
        tracer_ = std::make_unique<Tracer>(options.tracer);
        setTracer(tracer_.get());
    }
    if (!metricsOut_.empty() || wantTelemetry) {
        metrics_ = std::make_unique<MetricsRegistry>();
        setMetricsRegistry(metrics_.get());
    }

#ifndef PREEMPT_OBS_DISABLED
    if (wantTelemetry) {
        SpanCollector::Options sopt;
        sopt.sloNs = statsSloUs > 0
                         ? usToNs(static_cast<double>(statsSloUs))
                         : 0;
        spans_ = std::make_unique<SpanCollector>(sopt);
        setSpanCollector(spans_.get());

        TelemetryPublisher::Options topt;
        topt.interval =
            msToNs(static_cast<double>(statsIntervalMs > 0
                                           ? statsIntervalMs
                                           : 1000));
        topt.port = static_cast<int>(statsPort);
        if (statsWindowSec > 0)
            topt.window = secToNs(static_cast<double>(statsWindowSec));
        topt.dumpPath = statsDump_;
        topt.installSigusr2 = !statsDump_.empty();
        publisher_ = std::make_unique<TelemetryPublisher>(
            metrics_.get(), spans_.get(), topt);
        publisher_->start();
        if (publisher_->port() >= 0)
            inform("telemetry: serving /metrics on 127.0.0.1:%d",
                   publisher_->port());
    }
#else
    if (wantTelemetry)
        warn_once("--stats-* flags ignored: built with "
                  "-DPREEMPT_OBS=OFF");
    (void)statsSloUs;
    (void)statsWindowSec;
#endif
}

Session::~Session()
{
    flush();
    if (tracer_)
        setTracer(nullptr);
    if (metrics_)
        setMetricsRegistry(nullptr);
}

void
Session::beginRun(const std::string &name)
{
    if (tracer_)
        tracer_->beginEpoch(name);
}

void
Session::flush()
{
    if (flushed_)
        return;
    flushed_ = true;

#ifndef PREEMPT_OBS_DISABLED
    // Wind the telemetry plane down first: the publisher's final tick
    // (and exit dump, when --stats-dump was given) then sees the
    // workload's last sampler values and finished spans.
    if (spans_) {
        setSpanCollector(nullptr);
        spans_->drainOpen();
    }
    if (publisher_) {
        if (!statsDump_.empty())
            publisher_->dumpNow();
        publisher_->stop();
    }
#endif

    if (tracer_) {
        writeChromeTrace(*tracer_, traceOut_);
        if (tracer_->totalDropped() || tracer_->droppedOutOfRange()) {
            inform("trace: %llu records overwritten (drop-oldest), "
                   "%llu dropped for out-of-range core ids",
                   static_cast<unsigned long long>(
                       tracer_->totalDropped()),
                   static_cast<unsigned long long>(
                       tracer_->droppedOutOfRange()));
        }
    }
    if (metrics_ && !metricsOut_.empty()) {
        // Ring losses land in the metrics dump too, so a metrics-only
        // consumer can see trace truncation without the trace file.
        if (tracer_) {
            metrics_->counter("obs.trace.dropped.overwritten")
                .add(tracer_->totalDropped());
            metrics_->counter("obs.trace.dropped.out_of_range")
                .add(tracer_->droppedOutOfRange());
        }
        writeMetricsJson(*metrics_, metricsOut_);
    }
}

} // namespace preempt::obs
