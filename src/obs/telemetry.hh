/**
 * @file
 * Live telemetry plane: an always-on stats exporter over the metrics
 * registry and span collector.
 *
 * A TelemetryPublisher owns a background thread that, every
 * --stats-interval, polls the registered live samplers (the real
 * runtime publishes per-worker state through them), snapshots every
 * counter/gauge/timer of a MetricsRegistry plus the per-tenant span
 * delay breakdowns of a SpanCollector, derives per-counter rates and
 * per-gauge watermarks, and publishes the result through a double
 * buffer: readers never block the writer, and a torn read is
 * impossible (tests/test_telemetry.cc hammers exactly that).
 *
 * Scrape paths:
 *   - HTTP (dependency-free, loopback by default): GET /metrics is
 *     Prometheus text exposition, GET /metrics.json (or /json) the
 *     flat JSON snapshot, GET /healthz a liveness probe;
 *   - SIGUSR2 / file dump for no-network environments: the signal (or
 *     dumpNow()) makes the publisher thread write the JSON snapshot
 *     to the configured path on its next tick.
 *
 * Everything here compiles out under -DPREEMPT_OBS=OFF: the header
 * degrades to inert stubs and telemetry.cc contributes no symbols —
 * CI greps the archive to prove it.
 */

#ifndef PREEMPT_OBS_TELEMETRY_HH
#define PREEMPT_OBS_TELEMETRY_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/time.hh"

#ifndef PREEMPT_OBS_DISABLED

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/spans.hh"

namespace preempt::obs {

/** One published snapshot: plain data, cheap to copy. */
struct TelemetrySnapshot
{
    struct CounterSample
    {
        std::string name;
        std::uint64_t value = 0;
        double ratePerSec = 0; ///< delta vs the previous snapshot
    };

    struct GaugeSample
    {
        std::string name;
        std::int64_t value = 0;
        std::int64_t watermark = 0; ///< max value ever snapshotted
    };

    struct TimerSample
    {
        std::string name;
        std::uint64_t count = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        double mean = 0;
        std::uint64_t p50 = 0;
        std::uint64_t p90 = 0;
        std::uint64_t p99 = 0;
        std::uint64_t p999 = 0;
    };

    /** Per-tenant span delay breakdown (obs/spans.hh). */
    struct TenantSpans
    {
        std::uint32_t tenant = 0;
        std::uint64_t completed = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t violations = 0;
        TimerSample queued;
        TimerSample running;
        TimerSample preempted;
        TimerSample timerLag;
        TimerSample total;
    };

    std::uint64_t seq = 0;       ///< snapshot number, monotonic
    std::uint64_t wallNs = 0;    ///< CLOCK_REALTIME at build time
    std::uint64_t monoNs = 0;    ///< CLOCK_MONOTONIC at build time
    double uptimeSec = 0;        ///< since the publisher started
    double intervalSec = 0;      ///< configured publish interval
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<TimerSample> timers;
    std::vector<TenantSpans> spans;
    std::uint64_t spanInvariantViolations = 0;
    std::uint64_t spanAnomalies = 0;

    /** FNV-1a over every field; lets readers prove integrity. */
    std::uint64_t checksum = 0;

    /** Recompute the checksum field's expected value. */
    std::uint64_t computeChecksum() const;
};

/** Prometheus text exposition (version 0.0.4) of a snapshot. */
std::string renderPrometheus(const TelemetrySnapshot &snap);

/** Flat JSON rendering (schema "preempt.telemetry.v1"). */
std::string renderTelemetryJson(const TelemetrySnapshot &snap);

/**
 * Register a live sampler: a callback the publisher invokes right
 * before building each snapshot, on the publisher thread, with the
 * publisher's registry. Samplers write gauges/counters into it (the
 * real runtime publishes per-worker scheduler state this way).
 * Registration works with no publisher alive — samplers simply never
 * run.
 * @return id for unregisterTelemetrySampler.
 */
std::uint64_t
registerTelemetrySampler(std::function<void(MetricsRegistry &)> fn);

/** Remove a sampler; after return it will not be invoked again. */
void unregisterTelemetrySampler(std::uint64_t id);

/** The publisher. */
class TelemetryPublisher
{
  public:
    struct Options
    {
        /** Publish interval. */
        TimeNs interval = msToNs(1000);

        /**
         * HTTP listener port on 127.0.0.1: -1 = no listener,
         * 0 = ephemeral (read the bound port with port()).
         */
        int port = -1;

        /** JSON dump path for the SIGUSR2 / dumpNow() fallback
         *  ("" = disabled). */
        std::string dumpPath;

        /** Install a SIGUSR2 handler that requests a dump. */
        bool installSigusr2 = false;
    };

    /**
     * @param registry metrics source (may be null: snapshots then
     *        carry only publisher heartbeat + span data)
     * @param spans live span collector (may be null)
     */
    TelemetryPublisher(MetricsRegistry *registry, SpanCollector *spans,
                       Options options);
    ~TelemetryPublisher();

    TelemetryPublisher(const TelemetryPublisher &) = delete;
    TelemetryPublisher &operator=(const TelemetryPublisher &) = delete;

    /** Start the publisher (and listener) threads. */
    void start();

    /** Stop threads; idempotent, also done by the destructor. */
    void stop();

    /** Bound HTTP port, or -1 when no listener is running. */
    int port() const { return boundPort_; }

    /** Build + publish a snapshot immediately (tests, final flush). */
    void tickNow();

    /** Request a JSON dump to Options::dumpPath on the next tick. */
    void dumpNow();

    /**
     * Lock-free torn-proof read of the latest published snapshot
     * (copies out; empty snapshot with seq 0 before the first tick).
     */
    TelemetrySnapshot snapshot() const;

    /** Snapshots published so far. */
    std::uint64_t published() const
    {
        return seq_.load(std::memory_order_acquire);
    }

  private:
    void publisherLoop();
    void listenerLoop();
    void buildAndPublish();
    void writeDump(const TelemetrySnapshot &snap);
    bool openListener();
    void serveClient(int fd);

    MetricsRegistry *registry_;
    SpanCollector *spans_;
    Options options_;

    // Double buffer: the writer fills buffers_[(seq+1) & 1] under
    // that buffer's mutex, then publishes by storing seq+1; readers
    // copy buffers_[seq & 1] under its mutex. A raw seqlock would
    // tear the std::strings inside a snapshot (UB, not just a
    // mismatched checksum), so each buffer carries a mutex — but the
    // writer and readers only meet on the same buffer if a reader
    // lags a full publish interval, so reads are wait-free in
    // practice and never delay a publish. One writer (the publisher
    // thread, or tickNow() callers serialised by tickMutex_).
    TelemetrySnapshot buffers_[2];
    mutable std::mutex bufMutex_[2];
    std::atomic<std::uint64_t> seq_{0};
    std::mutex tickMutex_;

    // Rate/watermark memory between snapshots.
    std::vector<std::pair<std::string, std::uint64_t>> prevCounters_;
    std::uint64_t prevMonoNs_ = 0;
    std::vector<std::pair<std::string, std::int64_t>> watermarks_;

    TimeNs startedAt_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<bool> dumpRequested_{false};
    std::thread publisher_;
    std::thread listener_;
    std::mutex wakeMutex_;
    std::condition_variable wakeCv_;
    int listenFd_ = -1;
    int boundPort_ = -1;
};

} // namespace preempt::obs

#else // PREEMPT_OBS_DISABLED

namespace preempt::obs {

class MetricsRegistry; // never defined in disabled builds' callers

/** Disabled stubs: callers compile, nothing runs, no symbols. */
inline std::uint64_t
registerTelemetrySampler(std::function<void(MetricsRegistry &)>)
{
    return 0;
}

inline void
unregisterTelemetrySampler(std::uint64_t)
{
}

} // namespace preempt::obs

#endif // PREEMPT_OBS_DISABLED

#endif // PREEMPT_OBS_TELEMETRY_HH
