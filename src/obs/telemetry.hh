/**
 * @file
 * Live telemetry plane: an always-on stats exporter over the metrics
 * registry and span collector.
 *
 * A TelemetryPublisher owns a background thread that, every
 * --stats-interval, polls the registered live samplers (the real
 * runtime publishes per-worker state through them), snapshots every
 * counter/gauge/timer of a MetricsRegistry plus the per-tenant span
 * delay breakdowns of a SpanCollector, derives per-counter rates and
 * per-gauge watermarks, and publishes the result through a double
 * buffer: readers never block the writer, and a torn read is
 * impossible (tests/test_telemetry.cc hammers exactly that).
 *
 * Every lifetime statistic has a sliding-window companion so a scrape
 * sees *recent* behaviour, not the whole-run blend: timers and span
 * breakdowns keep K-epoch windowed histograms (rotated on publisher
 * ticks — never from wall-clock reads on the record path, preserving
 * simulator byte-determinism), counters get window rates with
 * explicit reset detection, gauges get window watermarks that decay
 * once the burst that set them leaves the window. Exporters surface
 * them as `*_window` series next to the lifetime ones.
 *
 * Scrape paths:
 *   - HTTP (dependency-free, loopback by default): GET /metrics is
 *     Prometheus text exposition, GET /metrics.json (or /json) the
 *     flat JSON snapshot, GET /healthz a liveness probe;
 *   - SIGUSR2 / file dump for no-network environments: the signal (or
 *     dumpNow()) makes the publisher thread write the JSON snapshot
 *     to the configured path on its next tick.
 *
 * Everything here compiles out under -DPREEMPT_OBS=OFF: the header
 * degrades to inert stubs and telemetry.cc contributes no symbols —
 * CI greps the archive to prove it.
 */

#ifndef PREEMPT_OBS_TELEMETRY_HH
#define PREEMPT_OBS_TELEMETRY_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/time.hh"

#ifndef PREEMPT_OBS_DISABLED

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hh"
#include "obs/spans.hh"

namespace preempt::obs {

/** One published snapshot: plain data, cheap to copy. */
struct TelemetrySnapshot
{
    /** Quantile summary of one histogram (lifetime or windowed). */
    struct TimerStats
    {
        std::uint64_t count = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        double mean = 0;
        std::uint64_t p50 = 0;
        std::uint64_t p90 = 0;
        std::uint64_t p99 = 0;
        std::uint64_t p999 = 0;
    };

    struct CounterSample
    {
        std::string name;
        std::uint64_t value = 0;
        double ratePerSec = 0; ///< delta vs the previous snapshot

        /** Rate over the whole sliding window (last K ticks), the
         *  honest "recent traffic" figure a single-interval delta
         *  only approximates. */
        double windowRatePerSec = 0;

        /** Times the counter went backwards (source restarted). A
         *  reset re-bases rates on the post-reset value instead of
         *  silently reporting 0. */
        std::uint64_t resets = 0;
    };

    struct GaugeSample
    {
        std::string name;
        std::int64_t value = 0;
        std::int64_t watermark = 0; ///< max value ever snapshotted

        /** Max over the last K ticks only: decays once the burst that
         *  set the lifetime watermark leaves the window. */
        std::int64_t windowWatermark = 0;
    };

    /** Lifetime quantiles + sliding-window companion. */
    struct TimerSample : TimerStats
    {
        std::string name;
        TimerStats window;    ///< last-W aggregate (zero if off)
        bool windowed = false;
    };

    /** Per-tenant span delay breakdown (obs/spans.hh). */
    struct TenantSpans
    {
        std::uint32_t tenant = 0;
        std::uint64_t completed = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t violations = 0;
        TimerSample queued;
        TimerSample running;
        TimerSample preempted;
        TimerSample timerLag;
        TimerSample total;

        /** The same breakdown over finishes inside the window only. */
        struct Window
        {
            std::uint64_t completed = 0;
            std::uint64_t cancelled = 0;
            std::uint64_t violations = 0;
            TimerStats queued;
            TimerStats running;
            TimerStats preempted;
            TimerStats timerLag;
            TimerStats total;
        } window;
    };

    std::uint64_t seq = 0;       ///< snapshot number, monotonic
    std::uint64_t wallNs = 0;    ///< CLOCK_REALTIME at build time
    std::uint64_t monoNs = 0;    ///< CLOCK_MONOTONIC at build time
    double uptimeSec = 0;        ///< since the publisher started
    double intervalSec = 0;      ///< configured publish interval
    double windowSec = 0;        ///< sliding window span (K * interval)
    std::uint64_t windowEpochs = 0; ///< ring size K
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<TimerSample> timers;
    std::vector<TenantSpans> spans;
    std::uint64_t spanInvariantViolations = 0;
    std::uint64_t spanAnomalies = 0;

    /** FNV-1a over every field; lets readers prove integrity. */
    std::uint64_t checksum = 0;

    /** Recompute the checksum field's expected value. */
    std::uint64_t computeChecksum() const;
};

/**
 * Keyed per-metric rate and watermark memory between publisher ticks.
 *
 * Replaces the publisher's former per-snapshot linear rescans (the
 * previous-counter vector was cleared and re-searched per counter,
 * the watermark vector scanned twice per gauge — O(n^2) per tick)
 * with one sorted map lookup per metric, and adds the windowed
 * accounting: per-counter value rings for window rates with explicit
 * reset detection, per-gauge value rings for decaying watermarks.
 * States whose metric disappears from a tick are garbage-collected by
 * endTick(), so memory tracks the live metric set, and a name that
 * reappears later starts fresh.
 *
 * Single-writer (the publisher tick path); not thread-safe.
 */
class StatTracker
{
  public:
    /** @param windowEpochs ring size K (clamped to >= 1). */
    explicit StatTracker(std::size_t windowEpochs);

    struct CounterStats
    {
        double ratePerSec = 0;
        double windowRatePerSec = 0;
        std::uint64_t resets = 0;
    };

    struct GaugeStats
    {
        std::int64_t watermark = 0;
        std::int64_t windowWatermark = 0;
    };

    /** Start a tick at the given monotonic time. */
    void beginTick(std::uint64_t monoNs);

    /** Observe one counter value (once per tick per name). */
    CounterStats counter(const std::string &name, std::uint64_t value);

    /** Observe one gauge value (once per tick per name). */
    GaugeStats gauge(const std::string &name, std::int64_t value);

    /** Finish the tick: drop state of metrics not observed in it. */
    void endTick();

    std::size_t trackedCounters() const { return counters_.size(); }
    std::size_t trackedGauges() const { return gauges_.size(); }
    std::size_t windowEpochs() const { return epochs_; }

  private:
    /** (monoNs, value) samples at the end of the last <= K+1 ticks. */
    struct CounterState
    {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> ring;
        std::uint64_t resets = 0;
        std::uint64_t lastTick = 0;
    };

    struct GaugeState
    {
        std::int64_t watermark = 0;
        std::vector<std::int64_t> ring; ///< last <= K tick values
        std::size_t head = 0;
        std::uint64_t lastTick = 0;
    };

    std::size_t epochs_;
    std::uint64_t tick_ = 0;
    std::uint64_t monoNs_ = 0;
    std::map<std::string, CounterState> counters_;
    std::map<std::string, GaugeState> gauges_;
};

/** Prometheus text exposition (version 0.0.4) of a snapshot. */
std::string renderPrometheus(const TelemetrySnapshot &snap);

/** Flat JSON rendering (schema "preempt.telemetry.v1"). */
std::string renderTelemetryJson(const TelemetrySnapshot &snap);

/**
 * Register a live sampler: a callback the publisher invokes right
 * before building each snapshot, on the publisher thread, with the
 * publisher's registry. Samplers write gauges/counters into it (the
 * real runtime publishes per-worker scheduler state this way).
 * Registration works with no publisher alive — samplers simply never
 * run.
 * @return id for unregisterTelemetrySampler.
 */
std::uint64_t
registerTelemetrySampler(std::function<void(MetricsRegistry &)> fn);

/** Remove a sampler; after return it will not be invoked again. */
void unregisterTelemetrySampler(std::uint64_t id);

/** The publisher. */
class TelemetryPublisher
{
  public:
    struct Options
    {
        /** Publish interval. */
        TimeNs interval = msToNs(1000);

        /**
         * Sliding-window span for `*_window` series. The window is
         * kept as K = round(window / interval) histogram epochs
         * (clamped to [1, 512]); 0 = default of 10 intervals.
         * Rotation happens on publisher ticks only, so simulator
         * determinism is untouched.
         */
        TimeNs window = 0;

        /**
         * HTTP listener port on 127.0.0.1: -1 = no listener,
         * 0 = ephemeral (read the bound port with port()).
         */
        int port = -1;

        /** JSON dump path for the SIGUSR2 / dumpNow() fallback
         *  ("" = disabled). */
        std::string dumpPath;

        /** Install a SIGUSR2 handler that requests a dump. */
        bool installSigusr2 = false;
    };

    /**
     * @param registry metrics source (may be null: snapshots then
     *        carry only publisher heartbeat + span data)
     * @param spans live span collector (may be null)
     */
    TelemetryPublisher(MetricsRegistry *registry, SpanCollector *spans,
                       Options options);
    ~TelemetryPublisher();

    TelemetryPublisher(const TelemetryPublisher &) = delete;
    TelemetryPublisher &operator=(const TelemetryPublisher &) = delete;

    /** Start the publisher (and listener) threads. */
    void start();

    /** Stop threads; idempotent, also done by the destructor. */
    void stop();

    /** Bound HTTP port, or -1 when no listener is running. */
    int port() const { return boundPort_; }

    /** Build + publish a snapshot immediately (tests, final flush). */
    void tickNow();

    /** Request a JSON dump to Options::dumpPath on the next tick. */
    void dumpNow();

    /**
     * Lock-free torn-proof read of the latest published snapshot
     * (copies out; empty snapshot with seq 0 before the first tick).
     */
    TelemetrySnapshot snapshot() const;

    /** Snapshots published so far. */
    std::uint64_t published() const
    {
        return seq_.load(std::memory_order_acquire);
    }

    /** Window ring size K derived from Options::window. */
    std::size_t windowEpochs() const { return windowEpochs_; }

  private:
    void publisherLoop();
    void listenerLoop();
    void buildAndPublish();
    void writeDump(const TelemetrySnapshot &snap);
    bool openListener();
    void serveClient(int fd);

    MetricsRegistry *registry_;
    SpanCollector *spans_;
    Options options_;

    // Double buffer: the writer fills buffers_[(seq+1) & 1] under
    // that buffer's mutex, then publishes by storing seq+1; readers
    // copy buffers_[seq & 1] under its mutex. A raw seqlock would
    // tear the std::strings inside a snapshot (UB, not just a
    // mismatched checksum), so each buffer carries a mutex — but the
    // writer and readers only meet on the same buffer if a reader
    // lags a full publish interval, so reads are wait-free in
    // practice and never delay a publish. One writer (the publisher
    // thread, or tickNow() callers serialised by tickMutex_).
    TelemetrySnapshot buffers_[2];
    mutable std::mutex bufMutex_[2];
    std::atomic<std::uint64_t> seq_{0};
    std::mutex tickMutex_;

    // Rate/watermark memory between snapshots (keyed; O(log n) per
    // metric per tick instead of the old O(n) rescan per metric).
    StatTracker tracker_;
    std::size_t windowEpochs_ = 1;

    TimeNs startedAt_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<bool> dumpRequested_{false};
    std::thread publisher_;
    std::thread listener_;
    std::mutex wakeMutex_;
    std::condition_variable wakeCv_;
    int listenFd_ = -1;
    int boundPort_ = -1;
};

} // namespace preempt::obs

#else // PREEMPT_OBS_DISABLED

namespace preempt::obs {

class MetricsRegistry; // never defined in disabled builds' callers

/** Disabled stubs: callers compile, nothing runs, no symbols. */
inline std::uint64_t
registerTelemetrySampler(std::function<void(MetricsRegistry &)>)
{
    return 0;
}

inline void
unregisterTelemetrySampler(std::uint64_t)
{
}

} // namespace preempt::obs

#endif // PREEMPT_OBS_DISABLED

#endif // PREEMPT_OBS_TELEMETRY_HH
