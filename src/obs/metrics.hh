/**
 * @file
 * Named metrics registry: counters, gauges, and histogram-backed
 * timers, with a one-call JSON dump.
 *
 * Registration is by name; returned references stay valid for the
 * registry's lifetime (values live behind unique_ptrs in a map).
 * Per-core timers registered through timerPerCore() form a family
 * ("name/coreN"): the JSON dump also emits the machine-wide merge of
 * each family via LatencyHistogram::merge, which is how per-core
 * delivery-latency quantiles become whole-run quantiles.
 *
 * Like tracing (obs/trace.hh), a registry is installed process-wide;
 * the free helpers (addCount etc.) are no-ops when none is installed.
 */

#ifndef PREEMPT_OBS_METRICS_HH
#define PREEMPT_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hh"
#include "common/windowed_histogram.hh"

namespace preempt::obs {

/** Monotonic event count. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1) noexcept
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written instantaneous value. */
class Gauge
{
  public:
    void
    set(std::int64_t v) noexcept
    {
        value_.store(v, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Latency-histogram-backed timer (values in nanoseconds).
 *
 * The lifetime histogram only accumulates. When windowing is enabled
 * (the telemetry publisher does so for its registry), every record()
 * also lands in a sliding-window companion whose epochs the publisher
 * rotates each tick, so windowHistogram() quantiles reflect only the
 * last W seconds of traffic.
 */
class TimerMetric
{
  public:
    void
    record(std::uint64_t ns)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        hist_.record(ns);
        if (window_)
            window_->record(ns);
    }

    /** Fold another histogram in (cell-capture merging). */
    void
    merge(const LatencyHistogram &other)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        hist_.merge(other);
        if (window_)
            window_->merge(other);
    }

    /** Copy of the underlying histogram. */
    LatencyHistogram
    histogram() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return hist_;
    }

    /** Allocate (or resize, discarding samples) the K-epoch window. */
    void
    enableWindow(std::size_t epochs)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!window_)
            window_ =
                std::make_unique<WindowedLatencyHistogram>(epochs);
        else if (window_->epochs() != epochs)
            window_->resize(epochs);
    }

    bool
    windowed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return window_ != nullptr;
    }

    /** Publisher tick: retire the live epoch. No-op when disabled. */
    void
    rotateWindow()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (window_)
            window_->rotate();
    }

    /** Aggregate over the retained epochs (empty when disabled). */
    LatencyHistogram
    windowHistogram() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return window_ ? window_->aggregate() : LatencyHistogram();
    }

  private:
    mutable std::mutex mutex_;
    LatencyHistogram hist_;
    std::unique_ptr<WindowedLatencyHistogram> window_;
};

/** Value dump of a whole registry (telemetry snapshotting). */
struct MetricsSnapshot
{
    struct TimerValues
    {
        std::string name;
        LatencyHistogram hist;   ///< lifetime
        LatencyHistogram window; ///< last-W aggregate (empty if off)
        bool windowed = false;
    };

    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<TimerValues> timers;
};

/** The registry. Creation-by-name is thread-safe. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    TimerMetric &timer(const std::string &name);

    /** Timer of a per-core family; named "<name>/core<core>". */
    TimerMetric &timerPerCore(const std::string &name, unsigned core);

    /**
     * Dump every metric as one JSON object. Counters/gauges map to
     * numbers; timers to {count, min, max, mean, p50, p90, p99, p999};
     * per-core timer families additionally get a merged entry under
     * the bare family name. Keys are sorted (deterministic output).
     */
    std::string toJson() const;

    /**
     * Name-sorted value dump of every metric (the telemetry
     * publisher's per-interval read). Counter/gauge values are
     * relaxed loads — consistent per metric, not across metrics;
     * timer histograms are copied under their own locks.
     */
    MetricsSnapshot snapshotValues() const;

    /**
     * Fold another registry into this one (the parallel harness merges
     * per-cell registries in submission order): counters add, gauges
     * take the donor's value (last write wins, like a sequential run),
     * timer histograms merge.
     */
    void absorb(const MetricsRegistry &donor);

    /**
     * Switch every timer (existing and future) to keep a K-epoch
     * sliding-window companion. Called once by the telemetry
     * publisher; 0 disables for future timers (existing windows are
     * kept). Rotation stays with rotateWindows() — enabling windows
     * alone never changes recorded values or the JSON dump.
     */
    void enableWindows(std::size_t epochs);

    /** Publisher tick: rotate every windowed timer's epochs. */
    void rotateWindows();

    /** Configured window ring size (0 = windowing off). */
    std::size_t windowEpochs() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<TimerMetric>> timers_;
    std::size_t windowEpochs_ = 0;
};

/**
 * The registry recordings on this thread resolve to, or nullptr: the
 * thread-confined registry when one is installed, otherwise the
 * process-wide one.
 */
MetricsRegistry *metricsRegistry() noexcept;

/** Install/uninstall the process-wide registry (caller owns it). */
void setMetricsRegistry(MetricsRegistry *registry) noexcept;

/**
 * Install/uninstall a registry for the calling thread only (shadows
 * the process-wide one; used by the parallel experiment harness for
 * per-cell capture). Pass nullptr to fall back to the global.
 */
void setThreadMetricsRegistry(MetricsRegistry *registry) noexcept;

/** The calling thread's shadowing registry, or nullptr. */
MetricsRegistry *threadMetricsRegistry() noexcept;

/** RAII thread-confined registry install (nullptr = no shadowing). */
class ScopedThreadMetricsRegistry
{
  public:
    explicit ScopedThreadMetricsRegistry(MetricsRegistry *registry)
        : prev_(threadMetricsRegistry())
    {
        setThreadMetricsRegistry(registry);
    }

    ~ScopedThreadMetricsRegistry() { setThreadMetricsRegistry(prev_); }

    ScopedThreadMetricsRegistry(const ScopedThreadMetricsRegistry &) =
        delete;
    ScopedThreadMetricsRegistry &
    operator=(const ScopedThreadMetricsRegistry &) = delete;

  private:
    MetricsRegistry *prev_;
};

// ----- No-op-when-disabled helpers for instrumentation sites --------

void addCount(const char *name, std::uint64_t n = 1);
void setGauge(const char *name, std::int64_t v);
void recordTimer(const char *name, std::uint64_t ns);
void recordTimerPerCore(const char *name, unsigned core, std::uint64_t ns);

} // namespace preempt::obs

#endif // PREEMPT_OBS_METRICS_HH
