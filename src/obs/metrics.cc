#include "obs/metrics.hh"

#include <cmath>
#include <locale>
#include <sstream>
#include <vector>

namespace preempt::obs {

namespace {

std::atomic<MetricsRegistry *> g_metrics{nullptr};

/** Per-thread shadow (parallel harness cells); plain — thread-owned. */
thread_local MetricsRegistry *t_threadMetrics = nullptr;

/** JSON-escape a metric name (names are ASCII identifiers, but be
 *  safe about quotes/backslashes). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Render a double without locale surprises; integers stay integral.
 *  Explicitly pinned to the classic "C" locale and a fixed precision:
 *  default-constructed streams inherit std::locale::global(), which a
 *  host application may have set to one with ',' decimal points or
 *  digit grouping, and the metrics dump is part of the byte-identical
 *  A/B guarantee. */
std::string
num(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.precision(6);
    os << std::fixed << v;
    return os.str();
}

void
histJson(std::ostringstream &os, const LatencyHistogram &h)
{
    os << "{\"count\": " << h.count() << ", \"min\": " << h.min()
       << ", \"max\": " << h.max() << ", \"mean\": " << num(h.mean())
       << ", \"p50\": " << h.p50() << ", \"p90\": " << h.p90()
       << ", \"p99\": " << h.p99() << ", \"p999\": " << h.p999() << "}";
}

} // namespace

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

TimerMetric &
MetricsRegistry::timer(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = timers_[name];
    if (!slot) {
        slot = std::make_unique<TimerMetric>();
        if (windowEpochs_ != 0)
            slot->enableWindow(windowEpochs_);
    }
    return *slot;
}

TimerMetric &
MetricsRegistry::timerPerCore(const std::string &name, unsigned core)
{
    return timer(name + "/core" + std::to_string(core));
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os.imbue(std::locale::classic()); // no digit grouping, ever
    os << "{\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    for (const auto &[name, c] : counters_) {
        sep();
        os << "  \"" << escape(name) << "\": " << c->value();
    }
    for (const auto &[name, g] : gauges_) {
        sep();
        os << "  \"" << escape(name) << "\": " << g->value();
    }

    // Per-core families ("x/coreN") merge into a machine-wide "x".
    std::map<std::string, LatencyHistogram> families;
    for (const auto &[name, t] : timers_) {
        sep();
        LatencyHistogram h = t->histogram();
        os << "  \"" << escape(name) << "\": ";
        histJson(os, h);
        auto slash = name.rfind("/core");
        if (slash != std::string::npos)
            families[name.substr(0, slash)].merge(h);
    }
    for (const auto &[name, merged] : families) {
        sep();
        os << "  \"" << escape(name) << "\": ";
        histJson(os, merged);
    }

    os << "\n}\n";
    return os.str();
}

MetricsSnapshot
MetricsRegistry::snapshotValues() const
{
    MetricsSnapshot out;
    std::lock_guard<std::mutex> lock(mutex_);
    out.counters.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        out.counters.emplace_back(name, c->value());
    out.gauges.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        out.gauges.emplace_back(name, g->value());
    out.timers.reserve(timers_.size());
    for (const auto &[name, t] : timers_) {
        MetricsSnapshot::TimerValues v;
        v.name = name;
        v.hist = t->histogram();
        v.windowed = t->windowed();
        if (v.windowed)
            v.window = t->windowHistogram();
        out.timers.push_back(std::move(v));
    }
    return out;
}

void
MetricsRegistry::absorb(const MetricsRegistry &donor)
{
    std::scoped_lock lock(mutex_, donor.mutex_);
    for (const auto &[name, c] : donor.counters_) {
        auto &slot = counters_[name];
        if (!slot)
            slot = std::make_unique<Counter>();
        slot->add(c->value());
    }
    for (const auto &[name, g] : donor.gauges_) {
        auto &slot = gauges_[name];
        if (!slot)
            slot = std::make_unique<Gauge>();
        slot->set(g->value());
    }
    for (const auto &[name, t] : donor.timers_) {
        auto &slot = timers_[name];
        if (!slot) {
            slot = std::make_unique<TimerMetric>();
            // Absorbed samples are freshly completed work: they fold
            // into the live window epoch like direct records would.
            if (windowEpochs_ != 0)
                slot->enableWindow(windowEpochs_);
        }
        slot->merge(t->histogram());
    }
}

void
MetricsRegistry::enableWindows(std::size_t epochs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    windowEpochs_ = epochs;
    if (epochs != 0)
        for (const auto &[name, t] : timers_)
            t->enableWindow(epochs);
}

void
MetricsRegistry::rotateWindows()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, t] : timers_)
        t->rotateWindow();
}

std::size_t
MetricsRegistry::windowEpochs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return windowEpochs_;
}

MetricsRegistry *
metricsRegistry() noexcept
{
    if (t_threadMetrics)
        return t_threadMetrics;
    return g_metrics.load(std::memory_order_relaxed);
}

void
setMetricsRegistry(MetricsRegistry *registry) noexcept
{
    g_metrics.store(registry, std::memory_order_release);
}

void
setThreadMetricsRegistry(MetricsRegistry *registry) noexcept
{
    t_threadMetrics = registry;
}

MetricsRegistry *
threadMetricsRegistry() noexcept
{
    return t_threadMetrics;
}

void
addCount(const char *name, std::uint64_t n)
{
    if (MetricsRegistry *m = metricsRegistry())
        m->counter(name).add(n);
}

void
setGauge(const char *name, std::int64_t v)
{
    if (MetricsRegistry *m = metricsRegistry())
        m->gauge(name).set(v);
}

void
recordTimer(const char *name, std::uint64_t ns)
{
    if (MetricsRegistry *m = metricsRegistry())
        m->timer(name).record(ns);
}

void
recordTimerPerCore(const char *name, unsigned core, std::uint64_t ns)
{
    if (MetricsRegistry *m = metricsRegistry())
        m->timerPerCore(name, core).record(ns);
}

} // namespace preempt::obs
