#include "sim/simulator.hh"

#include <memory>

#include "common/logging.hh"

namespace preempt::sim {

Simulator::Simulator(std::uint64_t seed)
    : now_(0), rng_(seed), stopped_(false), eventsRun_(0)
{
}

std::function<void()>
Simulator::every(TimeNs interval, std::function<void(TimeNs)> fn)
{
    fatal_if(interval == 0, "periodic task interval must be > 0");
    // Shared state so the cancel closure can stop future reschedules.
    auto state = std::make_shared<std::pair<bool, EventId>>(false,
                                                            kInvalidEvent);
    auto tick = std::make_shared<std::function<void(TimeNs)>>();
    *tick = [this, interval, fn = std::move(fn), state, tick](TimeNs t) {
        if (state->first)
            return;
        fn(t);
        if (!state->first)
            state->second = events_.schedule(t + interval, *tick);
    };
    state->second = after(interval, *tick);
    return [this, state]() {
        state->first = true;
        events_.cancel(state->second);
    };
}

void
Simulator::runUntil(TimeNs limit)
{
    stopped_ = false;
    while (!stopped_ && !events_.empty() && events_.nextTime() <= limit) {
        now_ = events_.nextTime();
        events_.runOne();
        ++eventsRun_;
    }
    if (now_ < limit && events_.empty())
        now_ = limit;
}

void
Simulator::runAll()
{
    stopped_ = false;
    while (!stopped_ && !events_.empty()) {
        now_ = events_.nextTime();
        events_.runOne();
        ++eventsRun_;
    }
}

} // namespace preempt::sim
