#include "sim/simulator.hh"

#include <memory>

#include "common/logging.hh"

namespace preempt::sim {

Simulator::Simulator(std::uint64_t seed)
    : now_(0), rng_(seed), stopped_(false), eventsRun_(0)
{
}

std::function<void()>
Simulator::every(TimeNs interval, std::function<void(TimeNs)> fn)
{
    fatal_if(interval == 0, "periodic task interval must be > 0");
    // Shared state so the cancel closure can stop future reschedules.
    // Each scheduled tick is a fresh lambda holding the state; the
    // state itself holds no self-reference, so nothing leaks when the
    // last pending tick is destroyed (a self-capturing std::function
    // would be an unreclaimable shared_ptr cycle).
    auto p = std::make_shared<Periodic>();
    p->interval = interval;
    p->fn = std::move(fn);
    p->id = after(interval, [this, p](TimeNs t) { periodicStep(p, t); });
    return [this, p]() {
        p->cancelled = true;
        events_.cancel(p->id);
    };
}

void
Simulator::periodicStep(const std::shared_ptr<Periodic> &p, TimeNs t)
{
    if (p->cancelled)
        return;
    p->fn(t);
    if (!p->cancelled) {
        p->id = events_.schedule(
            t + p->interval,
            [this, p](TimeNs next) { periodicStep(p, next); });
    }
}

void
Simulator::runUntil(TimeNs limit)
{
    stopped_ = false;
    while (!stopped_ && !events_.empty() && events_.nextTime() <= limit) {
        now_ = events_.nextTime();
        events_.runOne();
        ++eventsRun_;
    }
    if (now_ < limit && events_.empty())
        now_ = limit;
}

void
Simulator::runAll()
{
    stopped_ = false;
    while (!stopped_ && !events_.empty()) {
        now_ = events_.nextTime();
        events_.runOne();
        ++eventsRun_;
    }
}

} // namespace preempt::sim
