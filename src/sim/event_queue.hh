/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled for the same time fire in scheduling order (a
 * monotonically increasing sequence number breaks ties), so a fixed
 * seed always reproduces the same simulation.
 *
 * Internals (see DESIGN.md "Simulator internals"): event state lives
 * in a generation-tagged slot arena and the ready order in an implicit
 * 4-ary min-heap of plain {when, seq, id} records. An EventId encodes
 * (slot index | generation), so cancel() and the fired-check are O(1)
 * array operations — no hashing, and no tombstone set that can grow
 * without bound. Callbacks are stored in-slot with small-buffer
 * optimisation, so the common captures (a core id, a request pointer)
 * never touch the allocator.
 */

#ifndef PREEMPT_SIM_EVENT_QUEUE_HH
#define PREEMPT_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/time.hh"

namespace preempt::sim {

/**
 * Opaque handle used to cancel a scheduled event.
 *
 * Encodes (slot index + 1) in the upper 32 bits and the slot's
 * generation in the lower 32. The generation is bumped every time a
 * slot is freed (event fired or cancelled), so a handle to a dead
 * event never aliases the slot's next occupant.
 */
using EventId = std::uint64_t;

/** Invalid handle constant. */
inline constexpr EventId kInvalidEvent = 0;

/**
 * Type-erased move-only callable with small-buffer inline storage.
 * Callables up to kInlineSize bytes (and max_align_t alignment) live
 * inside the owning slot; larger ones fall back to the heap.
 */
class EventCallback
{
  public:
    /** Covers a std::function plus the typical small lambda capture. */
    static constexpr std::size_t kInlineSize = 48;

    EventCallback() noexcept : ops_(nullptr) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>>>
    EventCallback(F &&f) : ops_(nullptr) // NOLINT: implicit by design
    {
        using D = std::decay_t<F>;
        // Null std::function / function pointer stays empty so the
        // queue can reject it (matches the old std::function check).
        if constexpr (std::is_constructible_v<bool, const D &>) {
            if (!static_cast<bool>(f))
                return;
        }
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
            ops_ = &InlineOps<D>::ops;
        } else {
            D *p = new D(std::forward<F>(f));
            std::memcpy(buf_, &p, sizeof(p));
            ops_ = &HeapOps<D>::ops;
        }
    }

    EventCallback(EventCallback &&other) noexcept : ops_(other.ops_)
    {
        if (ops_) {
            ops_->relocate(other.buf_, buf_);
            other.ops_ = nullptr;
        }
    }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(other.buf_, buf_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    /** Destroy the held callable (if any). */
    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    void operator()(TimeNs t) { ops_->invoke(buf_, t); }

  private:
    struct Ops
    {
        void (*invoke)(void *, TimeNs);
        /** Move-construct into dst, destroy src. */
        void (*relocate)(void *, void *) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= kInlineSize &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D> struct InlineOps
    {
        static D *
        get(void *buf)
        {
            return std::launder(reinterpret_cast<D *>(buf));
        }
        static void invoke(void *buf, TimeNs t) { (*get(buf))(t); }
        static void
        relocate(void *src, void *dst) noexcept
        {
            D *s = get(src);
            ::new (dst) D(std::move(*s));
            s->~D();
        }
        static void destroy(void *buf) noexcept { get(buf)->~D(); }
        static constexpr Ops ops = {&invoke, &relocate, &destroy};
    };

    template <typename D> struct HeapOps
    {
        static D *
        get(void *buf)
        {
            D *p;
            std::memcpy(&p, buf, sizeof(p));
            return p;
        }
        static void invoke(void *buf, TimeNs t) { (*get(buf))(t); }
        static void
        relocate(void *src, void *dst) noexcept
        {
            std::memcpy(dst, src, sizeof(D *));
        }
        static void destroy(void *buf) noexcept { delete get(buf); }
        static constexpr Ops ops = {&invoke, &relocate, &destroy};
    };

    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
    const Ops *ops_;
};

/** Min-heap of timed callbacks with O(1) cancellation. */
class EventQueue
{
  public:
    EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule a callback at an absolute time.
     *
     * @param when absolute simulated time; must be >= the time of the
     *             event currently firing.
     * @param fn   callback, invoked with the firing time.
     * @return a handle usable with cancel().
     */
    template <typename F>
    EventId
    schedule(TimeNs when, F &&fn)
    {
        EventCallback cb(std::forward<F>(fn));
        panic_if(!cb, "scheduling an empty callback");
        return scheduleErased(when, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event. Cancelling an event that
     * already fired (or was already cancelled) is a harmless no-op,
     * which lets runtimes invalidate stale preemption/completion
     * events without bookkeeping races.
     *
     * @return true when a live event was actually cancelled.
     */
    bool cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Time of the earliest live event (kTimeNever when empty). */
    TimeNs nextTime() const;

    /**
     * Pop and run the earliest event.
     * @return the time at which the event fired.
     */
    TimeNs runOne();

    /** Number of live (non-cancelled) events. */
    std::size_t size() const { return live_; }

    /** Total events ever scheduled (for stats / debugging). */
    std::uint64_t scheduledCount() const { return scheduled_; }

  private:
    /** Arena slot: holds one event's liveness tag and its callback. */
    struct Slot
    {
        std::uint32_t gen = 0;
        bool armed = false;
        EventCallback fn;
    };

    /**
     * 4-ary-heap record. `seq` is the global schedule order and breaks
     * same-time ties, preserving the seed-deterministic FIFO firing
     * order of the original implementation.
     */
    struct HeapEntry
    {
        TimeNs when;
        std::uint64_t seq;
        EventId id;
    };

    static constexpr EventId
    makeId(std::uint32_t index, std::uint32_t gen)
    {
        return ((static_cast<EventId>(index) + 1) << 32) | gen;
    }

    /** Slot index, or an out-of-range value for garbage handles. */
    static constexpr std::uint64_t idIndex(EventId id)
    {
        return (id >> 32) - 1;
    }

    static constexpr std::uint32_t idGen(EventId id)
    {
        return static_cast<std::uint32_t>(id);
    }

    EventId scheduleErased(TimeNs when, EventCallback cb);

    /** Mark a slot dead: bump its generation and recycle the index. */
    void freeSlot(std::uint64_t index);

    /** True when the entry still refers to a live (armed) slot. */
    bool liveEntry(const HeapEntry &e) const;

    /** Discard heap records whose event was cancelled. */
    void skipDead() const;

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    mutable std::vector<HeapEntry> heap_;
    std::uint64_t scheduled_;
    std::size_t live_;
};

} // namespace preempt::sim

#endif // PREEMPT_SIM_EVENT_QUEUE_HH
