/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled for the same time fire in scheduling order (a
 * monotonically increasing sequence number breaks ties), so a fixed
 * seed always reproduces the same simulation.
 */

#ifndef PREEMPT_SIM_EVENT_QUEUE_HH
#define PREEMPT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.hh"

namespace preempt::sim {

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Invalid handle constant. */
inline constexpr EventId kInvalidEvent = 0;

/** Min-heap of timed callbacks with O(1) cancellation. */
class EventQueue
{
  public:
    EventQueue();

    /**
     * Schedule a callback at an absolute time.
     *
     * @param when absolute simulated time; must be >= the time of the
     *             event currently firing.
     * @param fn   callback, invoked with the firing time.
     * @return a handle usable with cancel().
     */
    EventId schedule(TimeNs when, std::function<void(TimeNs)> fn);

    /**
     * Cancel a previously scheduled event. Cancelling an event that
     * already fired (or was already cancelled) is a harmless no-op,
     * which lets runtimes invalidate stale preemption/completion
     * events without bookkeeping races.
     */
    void cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const;

    /** Time of the earliest live event (kTimeNever when empty). */
    TimeNs nextTime() const;

    /**
     * Pop and run the earliest event.
     * @return the time at which the event fired.
     */
    TimeNs runOne();

    /** Number of live (non-cancelled) events. */
    std::size_t size() const { return pending_.size(); }

    /** Total events ever scheduled (for stats / debugging). */
    std::uint64_t scheduledCount() const { return nextSeq_ - 1; }

  private:
    struct Entry
    {
        TimeNs when;
        EventId id;
        std::function<void(TimeNs)> fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    /** Discard cancelled entries at the heap top. */
    void skipDead() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<EventId> pending_;   ///< scheduled, not yet fired
    mutable std::unordered_set<EventId> cancelled_;
    EventId nextSeq_;
};

} // namespace preempt::sim

#endif // PREEMPT_SIM_EVENT_QUEUE_HH
