/**
 * @file
 * Top-level simulation driver: owns the clock, the event queue, and
 * the root random stream.
 */

#ifndef PREEMPT_SIM_SIMULATOR_HH
#define PREEMPT_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.hh"
#include "common/time.hh"
#include "sim/event_queue.hh"

namespace preempt::sim {

/** Owns simulated time and drives events to completion. */
class Simulator
{
  public:
    /** @param seed root seed; all component streams derive from it. */
    explicit Simulator(std::uint64_t seed = 42);

    /** Current simulated time. */
    TimeNs now() const { return now_; }

    /** The event queue components schedule into. */
    EventQueue &events() { return events_; }

    /** Root RNG; components should fork() their own streams. */
    Rng &rng() { return rng_; }

    /** Schedule relative to now. */
    template <typename F>
    EventId
    after(TimeNs delay, F &&fn)
    {
        return events_.schedule(now_ + delay, std::forward<F>(fn));
    }

    /** Schedule at an absolute time (must be >= now). */
    template <typename F>
    EventId
    at(TimeNs when, F &&fn)
    {
        panic_if(when < now_, "scheduling an event in the past");
        return events_.schedule(when, std::forward<F>(fn));
    }

    /**
     * Register a periodic task with a fixed interval; the task keeps
     * rescheduling itself until stop() or the horizon is reached.
     * Returns a cancel function.
     */
    std::function<void()> every(TimeNs interval,
                                std::function<void(TimeNs)> fn);

    /** Run until the queue drains or until the given time. */
    void runUntil(TimeNs limit);

    /** Run until the queue drains completely. */
    void runAll();

    /** Ask a running simulation to stop after the current event. */
    void stop() { stopped_ = true; }

    /** Events executed so far. */
    std::uint64_t eventsRun() const { return eventsRun_; }

  private:
    /** Shared state of one every() registration. */
    struct Periodic
    {
        bool cancelled = false;
        EventId id = kInvalidEvent;
        TimeNs interval = 0;
        std::function<void(TimeNs)> fn;
    };

    void periodicStep(const std::shared_ptr<Periodic> &p, TimeNs t);

    TimeNs now_;
    EventQueue events_;
    Rng rng_;
    bool stopped_;
    std::uint64_t eventsRun_;
};

} // namespace preempt::sim

#endif // PREEMPT_SIM_SIMULATOR_HH
