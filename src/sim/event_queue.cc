#include "sim/event_queue.hh"

#include <algorithm>

#include "obs/trace.hh"

namespace preempt::sim {

namespace {

// Queue-depth sampling period (power of two): every 1024th schedule
// emits one obs::EventQueueDepth record. Folded into the existing
// scheduled_ increment so the disabled path pays one test-and-branch.
constexpr std::uint64_t kDepthSampleMask = 1023;

// Implicit 4-ary min-heap over (when, seq). A wider node halves the
// tree depth versus a binary heap and keeps the four children of a
// node in adjacent cache lines, which is where a discrete-event
// simulator spends its comparisons.
constexpr std::size_t kArity = 4;

template <typename E>
bool
before(const E &a, const E &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    return a.seq < b.seq;
}

template <typename E>
void
siftUp(std::vector<E> &heap, std::size_t i)
{
    E item = std::move(heap[i]);
    while (i > 0) {
        std::size_t parent = (i - 1) / kArity;
        if (!before(item, heap[parent]))
            break;
        heap[i] = std::move(heap[parent]);
        i = parent;
    }
    heap[i] = std::move(item);
}

template <typename E>
void
siftDown(std::vector<E> &heap, std::size_t i)
{
    const std::size_t n = heap.size();
    E item = std::move(heap[i]);
    for (;;) {
        std::size_t first = i * kArity + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        std::size_t last = std::min(first + kArity, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(heap[c], heap[best]))
                best = c;
        }
        if (!before(heap[best], item))
            break;
        heap[i] = std::move(heap[best]);
        i = best;
    }
    heap[i] = std::move(item);
}

template <typename E>
void
popTop(std::vector<E> &heap)
{
    heap.front() = std::move(heap.back());
    heap.pop_back();
    if (!heap.empty())
        siftDown(heap, 0);
}

} // namespace

EventQueue::EventQueue() : scheduled_(0), live_(0)
{
}

EventId
EventQueue::scheduleErased(TimeNs when, EventCallback cb)
{
    std::uint32_t index;
    if (!freeSlots_.empty()) {
        index = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        panic_if(slots_.size() >= 0xffffffffull,
                 "event slot arena exhausted");
        index = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    Slot &slot = slots_[index];
    slot.armed = true;
    slot.fn = std::move(cb);
    ++scheduled_;
    ++live_;
    EventId id = makeId(index, slot.gen);
    heap_.push_back(HeapEntry{when, scheduled_, id});
    siftUp(heap_, heap_.size() - 1);
    if ((scheduled_ & kDepthSampleMask) == 0) [[unlikely]]
        obs::emit(obs::EventKind::EventQueueDepth, 0, when, scheduled_,
                  live_, heap_.size());
    return id;
}

void
EventQueue::freeSlot(std::uint64_t index)
{
    Slot &slot = slots_[index];
    slot.armed = false;
    slot.fn.reset();
    // The bump invalidates every outstanding handle to this slot; a
    // stale cancel() or heap record sees a generation mismatch. (A
    // single slot would need 2^32 reuses while one stale record waits
    // to produce a false match.)
    ++slot.gen;
    freeSlots_.push_back(static_cast<std::uint32_t>(index));
    --live_;
}

bool
EventQueue::liveEntry(const HeapEntry &e) const
{
    std::uint64_t index = idIndex(e.id);
    if (index >= slots_.size())
        return false;
    const Slot &slot = slots_[index];
    return slot.armed && slot.gen == idGen(e.id);
}

bool
EventQueue::cancel(EventId id)
{
    if (id == kInvalidEvent)
        return false;
    std::uint64_t index = idIndex(id);
    if (index >= slots_.size())
        return false;
    Slot &slot = slots_[index];
    // Fired and cancelled slots were freed under a new generation, so
    // a stale handle can neither double-cancel nor hit a reused slot.
    if (!slot.armed || slot.gen != idGen(id))
        return false;
    freeSlot(index);
    // The heap record stays behind as a cheap tombstone; skipDead()
    // drops it when it reaches the top.
    return true;
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty() && !liveEntry(heap_.front()))
        popTop(heap_);
}

TimeNs
EventQueue::nextTime() const
{
    skipDead();
    return heap_.empty() ? kTimeNever : heap_.front().when;
}

TimeNs
EventQueue::runOne()
{
    skipDead();
    panic_if(heap_.empty(), "runOne() on an empty event queue");
    HeapEntry top = heap_.front();
    popTop(heap_);

    std::uint64_t index = idIndex(top.id);
    // Free the slot before invoking so the callback can schedule new
    // events (possibly reusing this slot) and so cancelling the firing
    // event from inside its own callback is the documented no-op.
    EventCallback fn = std::move(slots_[index].fn);
    freeSlot(index);
    fn(top.when);
    return top.when;
}

} // namespace preempt::sim
