#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace preempt::sim {

EventQueue::EventQueue() : nextSeq_(1)
{
}

EventId
EventQueue::schedule(TimeNs when, std::function<void(TimeNs)> fn)
{
    panic_if(!fn, "scheduling an empty callback");
    EventId id = nextSeq_++;
    heap_.push(Entry{when, id, std::move(fn)});
    pending_.insert(id);
    return id;
}

void
EventQueue::cancel(EventId id)
{
    if (id == kInvalidEvent)
        return;
    // Cancelling an event that already fired (or was cancelled) is a
    // no-op; only still-pending ids get marked.
    auto it = pending_.find(id);
    if (it == pending_.end())
        return;
    pending_.erase(it);
    cancelled_.insert(id);
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty()) {
        auto it = cancelled_.find(heap_.top().id);
        if (it == cancelled_.end())
            return;
        cancelled_.erase(it);
        heap_.pop();
    }
}

bool
EventQueue::empty() const
{
    skipDead();
    return heap_.empty();
}

TimeNs
EventQueue::nextTime() const
{
    skipDead();
    return heap_.empty() ? kTimeNever : heap_.top().when;
}

TimeNs
EventQueue::runOne()
{
    skipDead();
    panic_if(heap_.empty(), "runOne() on an empty event queue");
    // std::priority_queue::top() is const; the entry is moved out via
    // const_cast which is safe because it is popped immediately.
    Entry entry = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    pending_.erase(entry.id);
    entry.fn(entry.when);
    return entry.when;
}

} // namespace preempt::sim
