#include "workload/spec.hh"

#include <cmath>

#include "common/logging.hh"

namespace preempt::workload {

ServiceLaw::ServiceLaw(DistributionPtr dist)
    : a_(std::move(dist)), b_(nullptr), switchAt_(kTimeNever)
{
    fatal_if(!a_, "service law requires a distribution");
    name_ = a_->name();
}

ServiceLaw::ServiceLaw(DistributionPtr dist_a, DistributionPtr dist_b,
                       TimeNs switch_at, std::string label)
    : a_(std::move(dist_a)), b_(std::move(dist_b)), switchAt_(switch_at),
      name_(std::move(label))
{
    fatal_if(!a_ || !b_, "dynamic service law requires two distributions");
}

TimeNs
ServiceLaw::sample(TimeNs t, Rng &rng) const
{
    const Distribution &d = (b_ && t >= switchAt_) ? *b_ : *a_;
    TimeNs v = d.sampleNs(rng);
    return v == 0 ? 1 : v; // no zero-demand requests
}

double
ServiceLaw::meanAt(TimeNs t) const
{
    return (b_ && t >= switchAt_) ? b_->mean() : a_->mean();
}

RateLaw::RateLaw(std::function<double(TimeNs)> fn, double peak,
                 std::string name)
    : fn_(std::move(fn)), peak_(peak), name_(std::move(name))
{
}

RateLaw
RateLaw::constant(double rps)
{
    fatal_if(rps <= 0, "arrival rate must be > 0");
    return RateLaw([rps](TimeNs) { return rps; }, rps, "constant");
}

RateLaw
RateLaw::bursty(double base_rps, double peak_rps, TimeNs period,
                double duty)
{
    fatal_if(base_rps <= 0 || peak_rps < base_rps,
             "bursty rate needs peak >= base > 0");
    fatal_if(period == 0 || duty <= 0 || duty >= 1,
             "bursty rate needs period > 0 and duty in (0,1)");
    auto fn = [=](TimeNs t) {
        TimeNs phase = t % period;
        // The spike sits in the middle of each period.
        TimeNs spike_len = static_cast<TimeNs>(
            duty * static_cast<double>(period));
        TimeNs spike_start = (period - spike_len) / 2;
        bool in_spike = phase >= spike_start &&
                        phase < spike_start + spike_len;
        return in_spike ? peak_rps : base_rps;
    };
    return RateLaw(fn, peak_rps, "bursty");
}

ServiceLaw
makeServiceLaw(const std::string &which, TimeNs duration)
{
    if (which == "C") {
        return ServiceLaw(makePaperWorkload("A1"), makePaperWorkload("B"),
                          duration / 2, "C(A1->B)");
    }
    return ServiceLaw(makePaperWorkload(which));
}

} // namespace preempt::workload
