/**
 * @file
 * Workload specifications: service-time laws (possibly phase-dependent
 * as in the paper's dynamic workload C) and arrival-rate laws
 * (constant Poisson or the bursty/spiky pattern of Fig. 14).
 */

#ifndef PREEMPT_WORKLOAD_SPEC_HH
#define PREEMPT_WORKLOAD_SPEC_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/dist.hh"
#include "common/time.hh"
#include "workload/request.hh"

namespace preempt::workload {

/**
 * A service-time law that may change over simulated time. Workload C
 * is heavy-tailed (A1) for the first half of the run and light-tailed
 * (B) for the second half.
 */
class ServiceLaw
{
  public:
    /** Stationary law. */
    explicit ServiceLaw(DistributionPtr dist);

    /** Phase-switching law: dist_a before switch_at, dist_b after. */
    ServiceLaw(DistributionPtr dist_a, DistributionPtr dist_b,
               TimeNs switch_at, std::string label);

    /** Sample a service demand for an arrival at time t. */
    TimeNs sample(TimeNs t, Rng &rng) const;

    /** Mean at time t. */
    double meanAt(TimeNs t) const;

    /** Overall (phase-weighted is ill-defined; use first phase). */
    double initialMean() const { return a_->mean(); }

    const std::string &name() const { return name_; }

    /** True when the law switches distributions mid-run. */
    bool dynamic() const { return b_ != nullptr; }

    TimeNs switchTime() const { return switchAt_; }

  private:
    DistributionPtr a_;
    DistributionPtr b_;
    TimeNs switchAt_;
    std::string name_;
};

/** Arrival-rate law (requests/second) over simulated time. */
class RateLaw
{
  public:
    /** Constant rate. */
    static RateLaw constant(double rps);

    /**
     * Square-wave bursty pattern (Fig. 14): baseline rps with periodic
     * spikes to peak rps.
     *
     * @param base_rps   rate outside spikes
     * @param peak_rps   rate during spikes
     * @param period     full cycle length
     * @param duty       fraction of the period spent at peak
     */
    static RateLaw bursty(double base_rps, double peak_rps, TimeNs period,
                          double duty);

    /** Rate at time t. */
    double at(TimeNs t) const { return fn_(t); }

    /** Largest rate the law ever produces (for sizing). */
    double peak() const { return peak_; }

    const std::string &name() const { return name_; }

  private:
    RateLaw(std::function<double(TimeNs)> fn, double peak,
            std::string name);

    std::function<double(TimeNs)> fn_;
    double peak_;
    std::string name_;
};

/**
 * Full workload description for one experiment: what arrives, how
 * often, and for how long.
 */
struct WorkloadSpec
{
    ServiceLaw service;
    RateLaw rate;
    TimeNs duration;
    /** Fraction of arrivals that are best-effort (Fig. 13/14: 2%). */
    double beFraction = 0.0;
    /** Service law for best-effort requests when beFraction > 0. */
    std::shared_ptr<ServiceLaw> beService = nullptr;
};

/**
 * The paper's synthetic workloads ("A1", "A2", "B", "C"); C switches
 * from A1 to B at duration/2.
 */
ServiceLaw makeServiceLaw(const std::string &which, TimeNs duration);

} // namespace preempt::workload

#endif // PREEMPT_WORKLOAD_SPEC_HH
