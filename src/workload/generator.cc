#include "workload/generator.hh"

#include <cmath>

#include "common/logging.hh"

namespace preempt::workload {

OpenLoopGenerator::OpenLoopGenerator(sim::Simulator &sim, WorkloadSpec spec,
                                     ArrivalFn sink)
    : sim_(sim), spec_(std::move(spec)), sink_(std::move(sink)),
      rng_(sim.rng().fork(0x67656e72)), nextId_(0)
{
    fatal_if(!sink_, "generator needs an arrival sink");
    fatal_if(spec_.duration == 0, "workload duration must be > 0");
    fatal_if(spec_.beFraction > 0 && !spec_.beService,
             "beFraction > 0 requires a best-effort service law");
}

void
OpenLoopGenerator::start()
{
    scheduleNext(sim_.now());
}

void
OpenLoopGenerator::scheduleNext(TimeNs from)
{
    // Piecewise-constant rate: sample with the instantaneous rate.
    // Rates change on timescales far longer than interarrival gaps, so
    // plain inversion per-phase is accurate.
    double rps = spec_.rate.at(from);
    panic_if(rps <= 0, "arrival rate must stay positive");
    double gap_s = -std::log(1.0 - rng_.uniform()) / rps;
    TimeNs at = from + secToNs(gap_s);
    if (at >= spec_.duration)
        return; // open loop closes at the horizon
    sim_.at(at, [this](TimeNs now) {
        emit(now);
        scheduleNext(now);
    });
}

void
OpenLoopGenerator::emit(TimeNs now)
{
    pool_.emplace_back();
    Request &req = pool_.back();
    req.id = nextId_++;
    req.arrival = now;
    bool be = spec_.beFraction > 0 && rng_.uniform() < spec_.beFraction;
    if (be) {
        req.cls = RequestClass::BestEffort;
        req.service = spec_.beService->sample(now, rng_);
    } else {
        req.cls = RequestClass::LatencyCritical;
        req.service = spec_.service.sample(now, rng_);
    }
    req.remaining = req.service;
    req.key = rng_.next64();
    sink_(req);
}

} // namespace preempt::workload
