#include "workload/trace.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace preempt::workload {

void
Trace::sort()
{
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const TraceEntry &a, const TraceEntry &b) {
                         return a.arrival < b.arrival;
                     });
}

TimeNs
Trace::duration() const
{
    return entries_.empty() ? 0 : entries_.back().arrival;
}

double
Trace::meanServiceNs() const
{
    if (entries_.empty())
        return 0.0;
    double sum = 0;
    for (const auto &e : entries_)
        sum += static_cast<double>(e.service);
    return sum / static_cast<double>(entries_.size());
}

Trace
Trace::load(std::istream &in)
{
    Trace trace;
    std::string line;
    long lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;
        std::istringstream ls(line);
        std::string field;
        TraceEntry e;
        fatal_if(!std::getline(ls, field, ','),
                 "trace line %ld: missing arrival", lineno);
        e.arrival = static_cast<TimeNs>(std::stoull(field));
        fatal_if(!std::getline(ls, field, ','),
                 "trace line %ld: missing service", lineno);
        e.service = static_cast<TimeNs>(std::stoull(field));
        fatal_if(e.service == 0, "trace line %ld: zero service time",
                 lineno);
        if (std::getline(ls, field, ',')) {
            int cls = std::stoi(field);
            fatal_if(cls != 0 && cls != 1,
                     "trace line %ld: class must be 0 or 1", lineno);
            e.cls = cls == 1 ? RequestClass::BestEffort
                             : RequestClass::LatencyCritical;
        }
        trace.add(e);
    }
    trace.sort();
    return trace;
}

Trace
Trace::loadFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in.good(), "cannot open trace file %s", path.c_str());
    return load(in);
}

void
Trace::save(std::ostream &out) const
{
    out << "# arrival_ns,service_ns,class\n";
    for (const auto &e : entries_) {
        out << e.arrival << ',' << e.service << ','
            << (e.cls == RequestClass::BestEffort ? 1 : 0) << '\n';
    }
}

void
Trace::saveFile(const std::string &path) const
{
    std::ofstream out(path);
    fatal_if(!out.good(), "cannot write trace file %s", path.c_str());
    save(out);
}

TraceReplayGenerator::TraceReplayGenerator(sim::Simulator &sim,
                                           Trace trace, ArrivalFn sink)
    : sim_(sim), trace_(std::move(trace)), sink_(std::move(sink)),
      nextId_(0)
{
    fatal_if(!sink_, "trace replay needs an arrival sink");
}

void
TraceReplayGenerator::start()
{
    for (const TraceEntry &e : trace_.entries()) {
        sim_.at(std::max(e.arrival, sim_.now()), [this, e](TimeNs now) {
            pool_.emplace_back();
            Request &req = pool_.back();
            req.id = nextId_++;
            req.arrival = now;
            req.cls = e.cls;
            req.service = e.service;
            req.remaining = e.service;
            sink_(req);
        });
    }
}

} // namespace preempt::workload
