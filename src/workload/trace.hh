/**
 * @file
 * Request-trace recording and replay.
 *
 * The paper's motivation rests on production traces (the Google
 * workloads of Table I); this module lets any experiment be driven by
 * a recorded trace instead of a synthetic law, and lets synthetic runs
 * be captured for replay elsewhere.
 *
 * Format: one request per line, `arrival_ns,service_ns,class`, with
 * `#` comments. Classes: 0 = latency-critical, 1 = best-effort.
 */

#ifndef PREEMPT_WORKLOAD_TRACE_HH
#define PREEMPT_WORKLOAD_TRACE_HH

#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "workload/request.hh"

namespace preempt::workload {

/** One trace record. */
struct TraceEntry
{
    TimeNs arrival = 0;
    TimeNs service = 0;
    RequestClass cls = RequestClass::LatencyCritical;
};

/** An in-memory request trace. */
class Trace
{
  public:
    Trace() = default;

    /** Append a record (kept sorted on load/save, not on append). */
    void add(TraceEntry entry) { entries_.push_back(entry); }

    /** Sort by arrival time (replay requires monotone arrivals). */
    void sort();

    const std::vector<TraceEntry> &entries() const { return entries_; }
    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Last arrival time (0 when empty). */
    TimeNs duration() const;

    /** Mean service demand (ns). */
    double meanServiceNs() const;

    /** Parse from a stream; fatal on malformed lines. */
    static Trace load(std::istream &in);

    /** Parse from a file path. */
    static Trace loadFile(const std::string &path);

    /** Serialise to a stream in the canonical format. */
    void save(std::ostream &out) const;

    /** Serialise to a file path. */
    void saveFile(const std::string &path) const;

  private:
    std::vector<TraceEntry> entries_;
};

/**
 * Drives a server with a recorded trace (the replay counterpart of
 * OpenLoopGenerator). Owns the Request pool.
 */
class TraceReplayGenerator
{
  public:
    using ArrivalFn = std::function<void(Request &)>;

    TraceReplayGenerator(sim::Simulator &sim, Trace trace, ArrivalFn sink);

    /** Schedule every arrival. */
    void start();

    std::uint64_t generated() const { return nextId_; }
    const std::deque<Request> &pool() const { return pool_; }

  private:
    sim::Simulator &sim_;
    Trace trace_;
    ArrivalFn sink_;
    std::uint64_t nextId_;
    std::deque<Request> pool_;
};

/**
 * Capture hook: attach to a generator/server completion path to build
 * a trace from a live (or simulated) run.
 */
class TraceRecorder
{
  public:
    /** Record one arrival. */
    void
    onArrival(const Request &req)
    {
        trace_.add(TraceEntry{req.arrival, req.service, req.cls});
    }

    /** The recorded trace (sorted). */
    Trace
    take()
    {
        trace_.sort();
        return std::move(trace_);
    }

  private:
    Trace trace_;
};

} // namespace preempt::workload

#endif // PREEMPT_WORKLOAD_TRACE_HH
