#include "workload/loadsweep.hh"

#include <algorithm>

#include "common/logging.hh"

namespace preempt::workload {

SweepResult
sweepLoad(const RunAtLoadFn &run, double start_rps, double end_rps,
          int steps, TimeNs p99_bound)
{
    fatal_if(steps < 2, "load sweep needs at least two steps");
    fatal_if(end_rps <= start_rps, "load sweep needs end > start");
    SweepResult result;
    double step = (end_rps - start_rps) / static_cast<double>(steps - 1);
    for (int i = 0; i < steps; ++i) {
        double offered = start_rps + step * static_cast<double>(i);
        SweepPoint p = run(offered);
        p.offeredRps = offered;
        if (p.p99 != 0 && p.p99 <= p99_bound &&
            p.achievedRps >= 0.95 * offered) {
            result.maxGoodRps = std::max(result.maxGoodRps, offered);
        }
        result.points.push_back(p);
    }
    return result;
}

} // namespace preempt::workload
