#include "workload/loadsweep.hh"

#include <algorithm>

#include "common/logging.hh"

namespace preempt::workload {

std::vector<double>
sweepGrid(double start_rps, double end_rps, int steps)
{
    fatal_if(steps < 2, "load sweep needs at least two steps");
    fatal_if(end_rps <= start_rps, "load sweep needs end > start");
    std::vector<double> grid;
    grid.reserve(static_cast<std::size_t>(steps));
    double step = (end_rps - start_rps) / static_cast<double>(steps - 1);
    for (int i = 0; i < steps; ++i)
        grid.push_back(start_rps + step * static_cast<double>(i));
    return grid;
}

SweepResult
scoreSweep(std::vector<SweepPoint> points, TimeNs p99_bound)
{
    SweepResult result;
    for (const SweepPoint &p : points) {
        if (p.completed == 0)
            continue; // empty point: nothing was measured
        if (p.p99 > p99_bound)
            continue;
        // The 0.95x keep-up test only means something once enough
        // requests completed; few-request quantization at low loads
        // must not zero an otherwise healthy sweep.
        if (p.completed >= kMinCompletionsForRatio &&
            p.achievedRps < 0.95 * p.offeredRps)
            continue;
        result.maxGoodRps = std::max(result.maxGoodRps, p.offeredRps);
    }
    result.points = std::move(points);
    return result;
}

SweepResult
sweepLoad(const RunAtLoadFn &run, double start_rps, double end_rps,
          int steps, TimeNs p99_bound)
{
    std::vector<SweepPoint> points;
    for (double offered : sweepGrid(start_rps, end_rps, steps)) {
        SweepPoint p = run(offered);
        p.offeredRps = offered;
        points.push_back(p);
    }
    return scoreSweep(std::move(points), p99_bound);
}

} // namespace preempt::workload
