/**
 * @file
 * The unit of work every simulated runtime schedules: a request with a
 * sampled service demand, bookkeeping timestamps, and intrusive hooks
 * for the queues of Fig. 6 (local FIFO queue, global running list,
 * global free list).
 */

#ifndef PREEMPT_WORKLOAD_REQUEST_HH
#define PREEMPT_WORKLOAD_REQUEST_HH

#include <cstdint>

#include "common/intrusive_list.hh"
#include "common/time.hh"

namespace preempt::workload {

/** Traffic class of a request. */
enum class RequestClass : std::uint8_t
{
    LatencyCritical = 0,
    BestEffort = 1,
};

/** One request flowing through a simulated runtime. */
struct Request
{
    std::uint64_t id = 0;
    RequestClass cls = RequestClass::LatencyCritical;

    TimeNs arrival = 0;       ///< when the request hit the server
    TimeNs readyAt = 0;       ///< last time it became runnable
                              ///< (arrival, or preemption requeue)
    TimeNs service = 0;       ///< total CPU demand
    TimeNs remaining = 0;     ///< demand not yet executed
    TimeNs firstStart = kTimeNever; ///< first time on a worker
    TimeNs completion = kTimeNever; ///< finish time

    int preemptions = 0;      ///< times this request was preempted
    std::uint64_t key = 0;    ///< application key (e.g. KVS key)

    /** Hook for whichever scheduler queue the request currently sits
     *  on; a request is on at most one queue at a time. */
    ListHook queueHook;

    bool done() const { return completion != kTimeNever; }

    /** Sojourn time (latency) once completed. */
    TimeNs
    latency() const
    {
        return done() ? completion - arrival : kTimeNever;
    }

    /** Latency normalised by service demand. */
    double
    slowdown() const
    {
        if (!done() || service == 0)
            return 0.0;
        return static_cast<double>(latency()) /
               static_cast<double>(service);
    }
};

/** FIFO of requests (intrusive). */
using RequestQueue = IntrusiveList<Request, &Request::queueHook>;

} // namespace preempt::workload

#endif // PREEMPT_WORKLOAD_REQUEST_HH
