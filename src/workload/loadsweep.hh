/**
 * @file
 * Load-sweep driver: runs a server model at increasing offered loads
 * and extracts the paper's throughput metric — the maximum load whose
 * 99th-percentile latency stays within a bound (section V-A bounds it
 * to 200x the average latency of a stable system).
 *
 * Two APIs share one scoring rule:
 *  - sweepLoad() runs the operating points itself, in order (the
 *    original sequential driver);
 *  - sweepGrid() + scoreSweep() split the sweep into independent
 *    cells so the parallel experiment harness (src/exp) can run the
 *    points concurrently and score the collected results afterwards.
 */

#ifndef PREEMPT_WORKLOAD_LOADSWEEP_HH
#define PREEMPT_WORKLOAD_LOADSWEEP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hh"

namespace preempt::workload {

/** One measured operating point. */
struct SweepPoint
{
    double offeredRps = 0;
    double achievedRps = 0;
    TimeNs p50 = 0;
    TimeNs p99 = 0;
    double overheadRatio = 0; ///< preemption overhead / execution time
    /** Requests actually measured at this point. Zero marks an empty
     *  point (nothing completed), which is never "good" — previously
     *  this was conflated with a zero p99. */
    std::uint64_t completed = 0;
};

/** Result of a full sweep. */
struct SweepResult
{
    std::vector<SweepPoint> points;
    /** Largest offered load whose p99 met the bound (0 when none). */
    double maxGoodRps = 0;
};

/** Runs one experiment at a given offered load. */
using RunAtLoadFn = std::function<SweepPoint(double offered_rps)>;

/**
 * Minimum completions before the achieved/offered ratio test applies.
 * Short runs at low loads complete only a handful of requests, so
 * quantization puts achieved below 0.95x offered even though the
 * system is healthy; below this count a point is judged on its p99
 * alone.
 */
inline constexpr std::uint64_t kMinCompletionsForRatio = 100;

/**
 * The offered loads a sweep visits: [start, end] in `steps` evenly
 * spaced points. These are the independent cells of a sweep.
 */
std::vector<double> sweepGrid(double start_rps, double end_rps,
                              int steps);

/**
 * Score already-measured operating points: a point is good when it
 * measured at least one completion, its p99 met the bound, and — once
 * enough requests completed for the ratio to be meaningful — achieved
 * throughput kept up with offered load. Points must carry their
 * offeredRps; order does not affect the result.
 */
SweepResult scoreSweep(std::vector<SweepPoint> points, TimeNs p99_bound);

/**
 * Sweep offered load across [start, end] in a fixed number of steps,
 * running the points sequentially in grid order.
 *
 * @param run        experiment body
 * @param start_rps  first offered load
 * @param end_rps    last offered load
 * @param steps      number of operating points (>= 2)
 * @param p99_bound  latency bound defining "good" throughput
 */
SweepResult sweepLoad(const RunAtLoadFn &run, double start_rps,
                      double end_rps, int steps, TimeNs p99_bound);

} // namespace preempt::workload

#endif // PREEMPT_WORKLOAD_LOADSWEEP_HH
