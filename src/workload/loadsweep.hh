/**
 * @file
 * Load-sweep driver: runs a server model at increasing offered loads
 * and extracts the paper's throughput metric — the maximum load whose
 * 99th-percentile latency stays within a bound (section V-A bounds it
 * to 200x the average latency of a stable system).
 */

#ifndef PREEMPT_WORKLOAD_LOADSWEEP_HH
#define PREEMPT_WORKLOAD_LOADSWEEP_HH

#include <functional>
#include <vector>

#include "common/time.hh"

namespace preempt::workload {

/** One measured operating point. */
struct SweepPoint
{
    double offeredRps = 0;
    double achievedRps = 0;
    TimeNs p50 = 0;
    TimeNs p99 = 0;
    double overheadRatio = 0; ///< preemption overhead / execution time
};

/** Result of a full sweep. */
struct SweepResult
{
    std::vector<SweepPoint> points;
    /** Largest offered load whose p99 met the bound (0 when none). */
    double maxGoodRps = 0;
};

/** Runs one experiment at a given offered load. */
using RunAtLoadFn = std::function<SweepPoint(double offered_rps)>;

/**
 * Sweep offered load across [start, end] in a fixed number of steps.
 *
 * @param run        experiment body
 * @param start_rps  first offered load
 * @param end_rps    last offered load
 * @param steps      number of operating points (>= 2)
 * @param p99_bound  latency bound defining "good" throughput
 */
SweepResult sweepLoad(const RunAtLoadFn &run, double start_rps,
                      double end_rps, int steps, TimeNs p99_bound);

} // namespace preempt::workload

#endif // PREEMPT_WORKLOAD_LOADSWEEP_HH
