/**
 * @file
 * Open-loop request generator (the paper's modified-wrk2 analogue):
 * Poisson arrivals with a possibly time-varying rate, service demands
 * drawn from a ServiceLaw, and an optional best-effort traffic share.
 */

#ifndef PREEMPT_WORKLOAD_GENERATOR_HH
#define PREEMPT_WORKLOAD_GENERATOR_HH

#include <deque>
#include <functional>

#include "common/rng.hh"
#include "sim/simulator.hh"
#include "workload/request.hh"
#include "workload/spec.hh"

namespace preempt::workload {

/**
 * Generates the arrival stream of a WorkloadSpec into a server
 * callback. Owns the Request storage (stable addresses) for the whole
 * run, acting as the request memory pool.
 */
class OpenLoopGenerator
{
  public:
    using ArrivalFn = std::function<void(Request &)>;

    /**
     * @param sim   simulation driver
     * @param spec  what/when to generate
     * @param sink  invoked at each arrival time with the new request
     */
    OpenLoopGenerator(sim::Simulator &sim, WorkloadSpec spec,
                      ArrivalFn sink);

    /** Begin generating; arrivals stop at spec.duration. */
    void start();

    /** Requests generated so far. */
    std::uint64_t generated() const { return nextId_; }

    /** Access to the request pool (for end-of-run audits). */
    const std::deque<Request> &pool() const { return pool_; }

  private:
    void scheduleNext(TimeNs from);
    void emit(TimeNs now);

    sim::Simulator &sim_;
    WorkloadSpec spec_;
    ArrivalFn sink_;
    Rng rng_;
    std::uint64_t nextId_;
    std::deque<Request> pool_;
};

} // namespace preempt::workload

#endif // PREEMPT_WORKLOAD_GENERATOR_HH
