/**
 * @file
 * Run-level metrics every simulated runtime reports: latency
 * histograms per traffic class, throughput, preemption accounting, and
 * SLO violation tracking.
 */

#ifndef PREEMPT_WORKLOAD_METRICS_HH
#define PREEMPT_WORKLOAD_METRICS_HH

#include <cstdint>

#include "common/histogram.hh"
#include "common/time.hh"
#include "workload/request.hh"

namespace preempt::workload {

/** Mutable metrics accumulator shared by the runtime models. */
class RunMetrics
{
  public:
    RunMetrics() = default;

    /** Record a completed request. */
    void
    onCompletion(const Request &req)
    {
        LatencyHistogram &h =
            req.cls == RequestClass::BestEffort ? beLatency_ : lcLatency_;
        h.record(req.latency());
        serviceDemand_.record(req.service);
        totalPreemptions_ += static_cast<std::uint64_t>(req.preemptions);
        ++completed_;
    }

    /** Record an arrival (for offered-load accounting). */
    void onArrival(const Request &) { ++arrived_; }

    /** Record a cancelled (SLO-hopeless, dropped) request. */
    void onCancellation(const Request &) { ++cancelled_; }

    /** Record a request rejected at admission (never dispatched). */
    void
    onRejection(const Request &req)
    {
        ++(req.cls == RequestClass::BestEffort ? rejectedBe_
                                               : rejectedLc_);
    }

    /** Account pure preemption overhead CPU time. */
    void addPreemptionOverhead(TimeNs t) { preemptionOverheadNs_ += t; }

    /** Account useful request execution CPU time. */
    void addExecution(TimeNs t) { executionNs_ += t; }

    const LatencyHistogram &lcLatency() const { return lcLatency_; }
    const LatencyHistogram &beLatency() const { return beLatency_; }
    const LatencyHistogram &serviceDemand() const { return serviceDemand_; }

    std::uint64_t completed() const { return completed_; }
    std::uint64_t arrived() const { return arrived_; }
    std::uint64_t cancelled() const { return cancelled_; }
    std::uint64_t rejected() const { return rejectedLc_ + rejectedBe_; }
    std::uint64_t rejectedLc() const { return rejectedLc_; }
    std::uint64_t rejectedBe() const { return rejectedBe_; }
    std::uint64_t totalPreemptions() const { return totalPreemptions_; }
    TimeNs preemptionOverheadNs() const { return preemptionOverheadNs_; }
    TimeNs executionNs() const { return executionNs_; }

    /** Achieved throughput over a run of the given length. */
    double
    throughputRps(TimeNs duration) const
    {
        return duration == 0
                   ? 0.0
                   : static_cast<double>(completed_) / nsToSec(duration);
    }

    /** Preemption overhead normalised to execution time (Fig. 1 R). */
    double
    overheadRatio() const
    {
        return executionNs_ == 0
                   ? 0.0
                   : static_cast<double>(preemptionOverheadNs_) /
                         static_cast<double>(executionNs_);
    }

    void
    reset()
    {
        lcLatency_.reset();
        beLatency_.reset();
        serviceDemand_.reset();
        completed_ = 0;
        arrived_ = 0;
        cancelled_ = 0;
        rejectedLc_ = 0;
        rejectedBe_ = 0;
        totalPreemptions_ = 0;
        preemptionOverheadNs_ = 0;
        executionNs_ = 0;
    }

  private:
    LatencyHistogram lcLatency_;
    LatencyHistogram beLatency_;
    LatencyHistogram serviceDemand_;
    std::uint64_t completed_ = 0;
    std::uint64_t arrived_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t rejectedLc_ = 0;
    std::uint64_t rejectedBe_ = 0;
    std::uint64_t totalPreemptions_ = 0;
    TimeNs preemptionOverheadNs_ = 0;
    TimeNs executionNs_ = 0;
};

} // namespace preempt::workload

#endif // PREEMPT_WORKLOAD_METRICS_HH
