#include "apps/compressor.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"

namespace preempt::apps {

namespace {

// Token layout:
//   0x00..0x7f : literal run, (byte+1) literals follow
//   0x80       : match, followed by lenByte (len-kMinMatch) and a
//                2-byte little-endian distance
constexpr std::uint8_t kMatchToken = 0x80;

} // namespace

Compressor::Compressor() : head_(kHashSize, 0xffffffffu)
{
}

std::uint32_t
Compressor::hash4(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
}

std::vector<std::uint8_t>
Compressor::compress(const std::uint8_t *data, std::size_t len)
{
    std::vector<std::uint8_t> out;
    out.reserve(len / 2 + 16);
    std::fill(head_.begin(), head_.end(), 0xffffffffu);

    std::size_t i = 0;
    std::size_t lit_start = 0;

    auto flush_literals = [&](std::size_t end) {
        std::size_t n = end - lit_start;
        while (n > 0) {
            std::size_t chunk = std::min<std::size_t>(n, 128);
            out.push_back(static_cast<std::uint8_t>(chunk - 1));
            out.insert(out.end(), data + lit_start, data + lit_start + chunk);
            lit_start += chunk;
            n -= chunk;
        }
    };

    while (i + kMinMatch <= len) {
        std::uint32_t h = hash4(data + i);
        std::uint32_t cand = head_[h];
        head_[h] = static_cast<std::uint32_t>(i);

        std::size_t best = 0;
        if (cand != 0xffffffffu && i - cand <= kMaxDistance) {
            const std::uint8_t *a = data + i;
            const std::uint8_t *b = data + cand;
            std::size_t limit = std::min(len - i, kMaxMatch);
            std::size_t m = 0;
            while (m < limit && a[m] == b[m])
                ++m;
            best = m;
        }

        if (best >= kMinMatch + 1) {
            flush_literals(i);
            std::size_t dist = i - cand;
            out.push_back(kMatchToken);
            out.push_back(static_cast<std::uint8_t>(best - kMinMatch));
            out.push_back(static_cast<std::uint8_t>(dist & 0xff));
            out.push_back(static_cast<std::uint8_t>(dist >> 8));
            // Insert hash entries inside the match for better chains.
            std::size_t stop = std::min(i + best, len - kMinMatch);
            for (std::size_t j = i + 1; j < stop; ++j)
                head_[hash4(data + j)] = static_cast<std::uint32_t>(j);
            i += best;
            lit_start = i;
        } else {
            ++i;
        }
    }
    flush_literals(len);

    bytesIn_ += len;
    bytesOut_ += out.size();
    return out;
}

std::vector<std::uint8_t>
Compressor::decompress(const std::uint8_t *data, std::size_t len)
{
    std::vector<std::uint8_t> out;
    std::size_t i = 0;
    while (i < len) {
        std::uint8_t tok = data[i++];
        if (tok == kMatchToken) {
            fatal_if(i + 3 > len, "truncated match token");
            std::size_t mlen = static_cast<std::size_t>(data[i]) + kMinMatch;
            std::size_t dist = static_cast<std::size_t>(data[i + 1]) |
                               (static_cast<std::size_t>(data[i + 2]) << 8);
            i += 3;
            fatal_if(dist == 0 || dist > out.size(),
                     "corrupt match distance");
            std::size_t src = out.size() - dist;
            for (std::size_t k = 0; k < mlen; ++k)
                out.push_back(out[src + k]); // overlapping copies OK
        } else {
            std::size_t n = static_cast<std::size_t>(tok) + 1;
            fatal_if(i + n > len, "truncated literal run");
            out.insert(out.end(), data + i, data + i + n);
            i += n;
        }
    }
    return out;
}

std::vector<std::uint8_t>
makeCompressibleBlock(std::size_t size, std::uint64_t seed)
{
    // Markov-ish pseudo-text: repeated dictionary words with noise,
    // compressing to roughly half like typical log/text payloads.
    static const char *words[] = {
        "request", "latency", "preempt", "kernel", "thread", "server",
        "uintr",   "quantum", "worker",  "deadline", "sched", "cloud",
    };
    Rng rng(seed);
    std::vector<std::uint8_t> out;
    out.reserve(size);
    while (out.size() < size) {
        const char *w = words[rng.below(12)];
        std::size_t wl = std::strlen(w);
        for (std::size_t k = 0; k < wl && out.size() < size; ++k)
            out.push_back(static_cast<std::uint8_t>(w[k]));
        if (out.size() < size)
            out.push_back(rng.below(16) == 0
                              ? static_cast<std::uint8_t>(rng.below(256))
                              : ' ');
    }
    return out;
}

} // namespace preempt::apps
