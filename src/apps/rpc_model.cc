#include "apps/rpc_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace preempt::apps {

using workload::Request;

RpcServerSim::RpcServerSim(sim::Simulator &sim,
                           const hw::LatencyConfig &cfg,
                           RpcServerConfig config)
    : sim_(sim), cfg_(cfg), config_(config),
      utimer_(sim, cfg, runtime_sim::TimerDelivery::Uintr), netFreeAt_(0),
      admitted_(0), finished_(0), rr_(0)
{
    fatal_if(config_.nKernelThreads <= 0, "need at least one thread");
    fatal_if(config_.userThreadsPerKernel <= 0, "T_n must be >= 1");
    kthreads_.resize(static_cast<std::size_t>(config_.nKernelThreads));
    for (int i = 0; i < config_.nKernelThreads; ++i)
        kthreads_[static_cast<std::size_t>(i)].id = i;
}

std::string
RpcServerSim::name() const
{
    return config_.quantum == 0
               ? "rpc-blocking-pool"
               : "rpc-libpreemptible(Tn=" +
                     std::to_string(config_.userThreadsPerKernel) + ")";
}

void
RpcServerSim::onArrival(Request &req)
{
    metrics_.onArrival(req);
    ++admitted_;
    // Accept path: network poll serialised on the acceptor.
    TimeNs start = std::max(sim_.now(), netFreeAt_);
    netFreeAt_ = start + cfg_.dispatchCost;
    sim_.at(netFreeAt_, [this, &req](TimeNs t) {
        // Join the shortest (active + backlog) kernel thread.
        KThread *best = nullptr;
        std::size_t best_len = ~std::size_t{0};
        for (std::size_t k = 0; k < kthreads_.size(); ++k) {
            KThread &kt = kthreads_[(static_cast<std::size_t>(rr_) + k) %
                                    kthreads_.size()];
            std::size_t len = kt.active.size() + kt.backlog.size() +
                              (kt.current ? 1 : 0);
            if (len < best_len) {
                best_len = len;
                best = &kt;
            }
        }
        rr_ = (rr_ + 1) % static_cast<int>(kthreads_.size());
        best->backlog.push_back(&req);
        refill(*best, t);
    });
}

void
RpcServerSim::refill(KThread &k, TimeNs now)
{
    std::size_t tn = static_cast<std::size_t>(config_.userThreadsPerKernel);
    while (!k.backlog.empty() &&
           k.active.size() + (k.current ? 1 : 0) < tn) {
        k.active.push_back(k.backlog.front());
        k.backlog.pop_front();
    }
    if (!k.running && (k.current || !k.active.empty()))
        runNext(k, now);
}

void
RpcServerSim::runNext(KThread &k, TimeNs now)
{
    if (!k.current) {
        if (k.active.empty())
            return;
        k.current = k.active.front();
        k.active.pop_front();
    }
    k.running = true;
    Request &req = *k.current;
    if (req.firstStart == kTimeNever)
        req.firstStart = now;

    bool preemptive = config_.quantum != 0 &&
                      (k.active.size() + k.backlog.size()) > 0;
    TimeNs overhead = cfg_.userCtxSwitch;
    if (config_.quantum != 0)
        overhead += utimer_.armCost();
    metrics_.addPreemptionOverhead(overhead);
    TimeNs seg_start = now + overhead;
    k.segStart = seg_start;

    int id = k.id;
    if (!preemptive) {
        k.event = sim_.at(seg_start + req.remaining, [this, id](TimeNs t) {
            segmentEnd(kthreads_[static_cast<std::size_t>(id)], t, true);
        });
        return;
    }

    TimeNs tq = utimer_.effectiveQuantum(config_.quantum);
    runtime_sim::FirePlan plan = utimer_.planFire(seg_start + tq);
    if (seg_start + req.remaining <= plan.handlerEntry) {
        utimer_.cancel(plan);
        k.event = sim_.at(seg_start + req.remaining, [this, id](TimeNs t) {
            segmentEnd(kthreads_[static_cast<std::size_t>(id)], t, true);
        });
    } else {
        TimeNs ovh = plan.workerOverhead;
        k.event = sim_.at(plan.handlerEntry, [this, id, ovh](TimeNs t) {
            metrics_.addPreemptionOverhead(ovh);
            segmentEnd(kthreads_[static_cast<std::size_t>(id)], t, false);
        });
    }
}

void
RpcServerSim::segmentEnd(KThread &k, TimeNs now, bool completed)
{
    Request *req = k.current;
    panic_if(!req, "segment end without a request");
    k.running = false;
    k.current = nullptr;
    k.event = sim::kInvalidEvent;
    TimeNs executed = now - k.segStart;
    metrics_.addExecution(std::min<TimeNs>(executed, req->remaining));

    if (completed) {
        req->remaining = 0;
        req->completion = now;
        ++finished_;
        metrics_.onCompletion(*req);
    } else {
        panic_if(executed >= req->remaining,
                 "preempted a finished request");
        req->remaining -= executed;
        ++req->preemptions;
        k.active.push_back(req); // round-robin to the ring's tail
    }
    refill(k, now);
}

} // namespace preempt::apps
