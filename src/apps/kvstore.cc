#include "apps/kvstore.hh"

#include <memory>

#include "common/logging.hh"

namespace preempt::apps {

namespace {

std::size_t
roundPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

KvStore::KvStore(std::size_t n_partitions,
                 std::size_t buckets_per_partition)
{
    fatal_if(n_partitions == 0 || buckets_per_partition == 0,
             "KvStore needs at least one partition and bucket");
    std::size_t np = roundPow2(n_partitions);
    std::size_t nb = roundPow2(buckets_per_partition);
    partMask_ = np - 1;
    bucketMask_ = nb - 1;
    parts_.reserve(np);
    for (std::size_t i = 0; i < np; ++i) {
        auto p = std::make_unique<Partition>();
        p->buckets = std::vector<Bucket>(nb);
        parts_.push_back(std::move(p));
    }
}

std::uint64_t
KvStore::mix(std::uint64_t key)
{
    // splitmix64 finaliser: good avalanche for partition + bucket
    // selection.
    key += 0x9e3779b97f4a7c15ULL;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
    return key ^ (key >> 31);
}

KvStore::Partition &
KvStore::partitionFor(std::uint64_t key)
{
    return *parts_[mix(key) & partMask_];
}

const KvStore::Partition &
KvStore::partitionFor(std::uint64_t key) const
{
    return *parts_[mix(key) & partMask_];
}

KvResult
KvStore::set(std::uint64_t key, const void *value, std::size_t len)
{
    sets_.fetch_add(1, std::memory_order_relaxed);
    if (len > kMaxValue)
        return KvResult::ValueTooLarge;

    Partition &part = partitionFor(key);
    Bucket &bucket = part.buckets[(mix(key) >> 32) & bucketMask_];

    std::lock_guard<std::mutex> lock(part.writeLock);
    // Find the key or a free slot.
    Entry *slot = nullptr;
    for (auto &e : bucket.ways) {
        if (e.used && e.key == key) {
            slot = &e;
            break;
        }
        if (!e.used && !slot)
            slot = &e;
    }
    if (!slot)
        return KvResult::Full;

    bool fresh = !slot->used;
    // Seqlock write: odd sequence marks the bucket unstable.
    bucket.seq.fetch_add(1, std::memory_order_acq_rel);
    slot->key = key;
    slot->len = static_cast<std::uint8_t>(len);
    std::memcpy(slot->value, value, len);
    slot->used = true;
    bucket.seq.fetch_add(1, std::memory_order_acq_rel);
    if (fresh)
        part.live.fetch_add(1, std::memory_order_relaxed);
    return KvResult::Ok;
}

KvResult
KvStore::get(std::uint64_t key, std::string &out) const
{
    gets_.fetch_add(1, std::memory_order_relaxed);
    const Partition &part = partitionFor(key);
    const Bucket &bucket =
        part.buckets[(mix(key) >> 32) & bucketMask_];

    for (;;) {
        std::uint32_t s0 = bucket.seq.load(std::memory_order_acquire);
        if (s0 & 1)
            continue; // writer in progress
        const Entry *found = nullptr;
        char tmp[kMaxValue];
        std::uint8_t len = 0;
        for (const auto &e : bucket.ways) {
            if (e.used && e.key == key) {
                len = e.len;
                std::memcpy(tmp, e.value, len);
                found = &e;
                break;
            }
        }
        std::uint32_t s1 = bucket.seq.load(std::memory_order_acquire);
        if (s0 != s1)
            continue; // raced with a writer; retry
        if (!found)
            return KvResult::NotFound;
        out.assign(tmp, len);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return KvResult::Ok;
    }
}

KvResult
KvStore::erase(std::uint64_t key)
{
    Partition &part = partitionFor(key);
    Bucket &bucket = part.buckets[(mix(key) >> 32) & bucketMask_];
    std::lock_guard<std::mutex> lock(part.writeLock);
    for (auto &e : bucket.ways) {
        if (e.used && e.key == key) {
            bucket.seq.fetch_add(1, std::memory_order_acq_rel);
            e.used = false;
            bucket.seq.fetch_add(1, std::memory_order_acq_rel);
            part.live.fetch_sub(1, std::memory_order_relaxed);
            return KvResult::Ok;
        }
    }
    return KvResult::NotFound;
}

std::uint64_t
KvStore::size() const
{
    std::uint64_t total = 0;
    for (const auto &p : parts_)
        total += p->live.load(std::memory_order_relaxed);
    return total;
}

} // namespace preempt::apps
