/**
 * @file
 * MICA-style partitioned in-memory key-value store (Lim et al.,
 * NSDI'14) — the latency-critical application of the colocation
 * experiments (section V-C).
 *
 * Design follows MICA's CREW mode: the key space is hash-partitioned;
 * each partition is a fixed bucket array with per-bucket sequence
 * locks so readers never block (optimistic concurrency), and writers
 * serialise per partition. Values are stored inline, matching MICA's
 * small-object fast path and the sub-microsecond GET times Table V
 * reports.
 */

#ifndef PREEMPT_APPS_KVSTORE_HH
#define PREEMPT_APPS_KVSTORE_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace preempt::apps {

/** Result of a KVS operation. */
enum class KvResult
{
    Ok,
    NotFound,
    ValueTooLarge,
    Full,
};

/** Partitioned hash KVS with lock-free reads. */
class KvStore
{
  public:
    /** Largest value stored inline (MICA small-object regime). */
    static constexpr std::size_t kMaxValue = 64;

    /**
     * @param n_partitions power-of-two partition count
     * @param buckets_per_partition bucket count per partition
     *        (rounded up to a power of two); each bucket holds
     *        kWays entries.
     */
    KvStore(std::size_t n_partitions, std::size_t buckets_per_partition);

    /** Insert or overwrite. */
    KvResult set(std::uint64_t key, const void *value, std::size_t len);

    /** Convenience overload. */
    KvResult
    set(std::uint64_t key, const std::string &value)
    {
        return set(key, value.data(), value.size());
    }

    /**
     * Lookup; on success copies the value into out.
     * Lock-free: retries on concurrent writer (seqlock).
     */
    KvResult get(std::uint64_t key, std::string &out) const;

    /** Remove a key. */
    KvResult erase(std::uint64_t key);

    std::size_t partitions() const { return parts_.size(); }

    /** Live entries (approximate under concurrency). */
    std::uint64_t size() const;

    /** Operation counters. */
    std::uint64_t gets() const { return gets_.load(); }
    std::uint64_t sets() const { return sets_.load(); }
    std::uint64_t hits() const { return hits_.load(); }

  private:
    static constexpr int kWays = 8; ///< entries per bucket

    struct Entry
    {
        std::uint64_t key;
        std::uint8_t len;
        bool used;
        char value[kMaxValue];
    };

    struct Bucket
    {
        std::atomic<std::uint32_t> seq{0}; ///< odd while being written
        Entry ways[kWays];
    };

    struct Partition
    {
        std::vector<Bucket> buckets;
        std::mutex writeLock; ///< CREW: concurrent read, exclusive write
        std::atomic<std::uint64_t> live{0};
    };

    static std::uint64_t mix(std::uint64_t key);
    Partition &partitionFor(std::uint64_t key);
    const Partition &partitionFor(std::uint64_t key) const;

    std::vector<std::unique_ptr<Partition>> parts_;
    std::size_t partMask_;
    std::size_t bucketMask_;
    mutable std::atomic<std::uint64_t> gets_{0};
    std::atomic<std::uint64_t> sets_{0};
    mutable std::atomic<std::uint64_t> hits_{0};
};

} // namespace preempt::apps

#endif // PREEMPT_APPS_KVSTORE_HH
