/**
 * @file
 * Self-contained LZ77 block compressor — the zlib-analogue best-effort
 * workload of the colocation experiments (section V-C: zlib engines
 * run against 25 kB of raw data, ~100 us median latency).
 *
 * Format: a stream of tokens. Control byte 0x00-0x7f introduces a run
 * of 1..128 literal bytes; 0x80|n introduces a match: 2 bytes of
 * little-endian distance followed by a length byte (length = n*?); see
 * the token layout below. Greedy hash-chain matching like
 * DEFLATE-at-level-1.
 */

#ifndef PREEMPT_APPS_COMPRESSOR_HH
#define PREEMPT_APPS_COMPRESSOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace preempt::apps {

/** LZ77 block compressor with greedy hash matching. */
class Compressor
{
  public:
    /** Default block size used by the colocation experiments. */
    static constexpr std::size_t kBlockSize = 25 * 1024;

    Compressor();

    /** Compress a buffer; output is self-describing. */
    std::vector<std::uint8_t> compress(const std::uint8_t *data,
                                       std::size_t len);

    std::vector<std::uint8_t>
    compress(const std::vector<std::uint8_t> &in)
    {
        return compress(in.data(), in.size());
    }

    /** Decompress a buffer produced by compress(). */
    static std::vector<std::uint8_t>
    decompress(const std::uint8_t *data, std::size_t len);

    static std::vector<std::uint8_t>
    decompress(const std::vector<std::uint8_t> &in)
    {
        return decompress(in.data(), in.size());
    }

    /** Bytes consumed / produced so far (for throughput accounting). */
    std::uint64_t bytesIn() const { return bytesIn_; }
    std::uint64_t bytesOut() const { return bytesOut_; }

  private:
    static constexpr int kHashBits = 13;
    static constexpr std::size_t kHashSize = 1u << kHashBits;
    static constexpr std::size_t kMinMatch = 4;
    static constexpr std::size_t kMaxMatch = 255 + kMinMatch;
    static constexpr std::size_t kMaxDistance = 0xffff;

    static std::uint32_t hash4(const std::uint8_t *p);

    std::vector<std::uint32_t> head_;
    std::uint64_t bytesIn_ = 0;
    std::uint64_t bytesOut_ = 0;
};

/** Deterministic pseudo-text generator for compressible test data. */
std::vector<std::uint8_t> makeCompressibleBlock(std::size_t size,
                                                std::uint64_t seed);

} // namespace preempt::apps

#endif // PREEMPT_APPS_COMPRESSOR_HH
