/**
 * @file
 * Thread-pool RPC server model for the deployment-overhead experiment
 * (section V-B): a gRPC-style server whose kernel threads each
 * multiplex T_n user-level threads under LibPreemptible, compared
 * against the blocking no-preemption thread pool it ships with.
 *
 * Each kernel thread owns a FIFO backlog and up to T_n resident
 * user-level request contexts, scheduled round-robin with the
 * configured quantum; T_n = 1 with quantum 0 reproduces the plain
 * blocking pool baseline.
 */

#ifndef PREEMPT_APPS_RPC_MODEL_HH
#define PREEMPT_APPS_RPC_MODEL_HH

#include <deque>
#include <string>
#include <vector>

#include "hw/latency_config.hh"
#include "runtime_sim/server.hh"
#include "runtime_sim/utimer_model.hh"
#include "sim/simulator.hh"

namespace preempt::apps {

/** Configuration of the modelled RPC server. */
struct RpcServerConfig
{
    /** Kernel threads in the pool. */
    int nKernelThreads = 4;

    /** User-level threads multiplexed per kernel thread (T_n). */
    int userThreadsPerKernel = 1;

    /** Round-robin quantum among resident contexts; 0 = blocking
     *  thread pool without preemption (the gRPC baseline). */
    TimeNs quantum = 0;
};

/** The simulated RPC server. */
class RpcServerSim : public runtime_sim::ServerModel
{
  public:
    RpcServerSim(sim::Simulator &sim, const hw::LatencyConfig &cfg,
                 RpcServerConfig config);

    void onArrival(workload::Request &req) override;
    std::string name() const override;

    std::uint64_t inFlight() const { return admitted_ - finished_; }

  private:
    struct KThread
    {
        int id = 0;
        /** Resident user-level contexts (round-robin ring). */
        std::deque<workload::Request *> active;
        /** Waiting requests beyond T_n. */
        std::deque<workload::Request *> backlog;
        workload::Request *current = nullptr;
        TimeNs segStart = 0;
        bool running = false; ///< a segment event is outstanding
        /** The outstanding segment-end/preemption event. */
        sim::EventId event = sim::kInvalidEvent;
    };

    /** Pull from backlog into the active set, start if idle. */
    void refill(KThread &k, TimeNs now);

    /** Run the next segment of the round-robin ring. */
    void runNext(KThread &k, TimeNs now);

    void segmentEnd(KThread &k, TimeNs now, bool completed);

    sim::Simulator &sim_;
    hw::LatencyConfig cfg_;
    RpcServerConfig config_;
    runtime_sim::UTimerModel utimer_;
    std::vector<KThread> kthreads_;
    TimeNs netFreeAt_;
    std::uint64_t admitted_;
    std::uint64_t finished_;
    int rr_;
};

} // namespace preempt::apps

#endif // PREEMPT_APPS_RPC_MODEL_HH
