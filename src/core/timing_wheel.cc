#include "core/timing_wheel.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace preempt::core {

TimingWheel::TimingWheel(TimeNs tick, std::size_t slots, int levels)
    : tick_(tick), slotCount_(slots), levels_(levels), now_(0), live_(0)
{
    fatal_if(tick == 0, "timing wheel tick must be > 0");
    fatal_if(slots < 2 || (slots & (slots - 1)) != 0,
             "slot count must be a power of two >= 2");
    fatal_if(levels < 1 || levels > 8, "levels must be in [1,8]");
    slots_.resize(static_cast<std::size_t>(levels) * slotCount_);
}

std::vector<TimingWheel::Entry> &
TimingWheel::slot(int level, std::size_t index)
{
    return slots_[static_cast<std::size_t>(level) * slotCount_ + index];
}

TimeNs
TimingWheel::horizon() const
{
    // tick * slots^levels can overflow TimeNs for coarse ticks or deep
    // hierarchies (e.g. 10 s tick, 256^8 slots); saturate instead of
    // wrapping to a tiny bogus horizon.
    TimeNs span = tick_;
    for (int l = 0; l < levels_; ++l) {
        if (span > kTimeNever / slotCount_)
            return kTimeNever;
        span *= slotCount_;
    }
    if (span > kTimeNever - now_)
        return kTimeNever;
    return now_ + span;
}

TimeNs
TimingWheel::earliest() const
{
    if (live_ == 0)
        return kTimeNever;
    TimeNs best = kTimeNever;
    TimeNs width = tick_;
    for (int level = 0; level < levels_; ++level) {
        std::uint64_t base = static_cast<std::uint64_t>(now_) / width;
        // off == slotCount_ covers the current slot: entries there are
        // at least a full revolution of this level away.
        for (std::size_t off = 1; off <= slotCount_; ++off) {
            std::size_t index = (base + off) & (slotCount_ - 1);
            const std::vector<Entry> &bucket =
                slots_[static_cast<std::size_t>(level) * slotCount_ +
                       index];
            if (bucket.empty())
                continue;
            // Entries in a slot expire no earlier than its start time.
            if (base + off > kTimeNever / width)
                break; // saturates past any candidate
            best = std::min(best,
                            static_cast<TimeNs>((base + off) * width));
            break; // nearer slots on this level are empty
        }
        if (width > kTimeNever / slotCount_)
            break;
        width *= slotCount_;
    }
    return best;
}

void
TimingWheel::place(Entry entry)
{
    // Entries land no earlier than the next processed tick; already-
    // expired deadlines fire on the next advance.
    TimeNs when = std::max(entry.when, now_ + tick_);
    TimeNs width = tick_;
    for (int level = 0; level < levels_; ++level) {
        TimeNs span = width * slotCount_;
        // Does this deadline land within this level's span from now?
        if (when < now_ + span || level == levels_ - 1) {
            std::size_t index = static_cast<std::size_t>(
                (when / width) & (slotCount_ - 1));
            slot(level, index).push_back(entry);
            return;
        }
        width = span;
    }
}

std::uint64_t
TimingWheel::schedule(TimeNs when, std::uint64_t cookie)
{
    std::uint32_t index;
    if (!freeIds_.empty()) {
        index = freeIds_.back();
        freeIds_.pop_back();
    } else {
        fatal_if(arena_.size() >= 0xffffffffull,
                 "timing wheel id arena exhausted");
        index = static_cast<std::uint32_t>(arena_.size());
        arena_.emplace_back();
    }
    arena_[index].armed = true;
    std::uint64_t id = makeId(index, arena_[index].gen);
    place(Entry{id, when, cookie, ++nextSeq_});
    ++live_;
    return id;
}

void
TimingWheel::freeArenaSlot(std::uint64_t index)
{
    TimerSlot &s = arena_[index];
    s.armed = false;
    ++s.gen;
    freeIds_.push_back(static_cast<std::uint32_t>(index));
    panic_if(live_ == 0, "timing wheel accounting underflow");
    --live_;
}

bool
TimingWheel::cancel(std::uint64_t id)
{
    if (id == 0)
        return false;
    std::uint64_t index = idIndex(id);
    if (index >= arena_.size())
        return false;
    TimerSlot &s = arena_[index];
    // Expired timers freed their slot under a new generation, so a
    // cancel-after-expiry (or double cancel) is rejected here without
    // touching another timer's accounting.
    if (!s.armed || s.gen != idGen(id))
        return false;
    freeArenaSlot(index);
    obs::emit(obs::EventKind::TimerCancel, 0, now_, id);
    obs::addCount("timing_wheel.cancels");
    // The wheel bucket keeps a stale entry until its deadline comes
    // around; advance() drops it on the generation mismatch.
    return true;
}

void
TimingWheel::advance(TimeNs now, const ExpireFn &fn)
{
    panic_if(now < now_, "timing wheel cannot run backwards");
    std::vector<Entry> expired;

    while (now_ < now) {
        // Fast-forward across empty space.
        if (live_ == 0) {
            now_ = now;
            break;
        }
        now_ += tick_;
        if (now_ > now)
            now_ = now;

        std::size_t idx0 = static_cast<std::size_t>(
            (now_ / tick_) & (slotCount_ - 1));
        // Cascade outer levels when an inner level wraps.
        if (idx0 == 0) {
            TimeNs width = tick_;
            for (int level = 1; level < levels_; ++level) {
                width *= slotCount_;
                std::size_t idx = static_cast<std::size_t>(
                    (now_ / width) & (slotCount_ - 1));
                std::vector<Entry> moving;
                moving.swap(slot(level, idx));
                if (!moving.empty()) {
                    obs::emit(obs::EventKind::TimerCascade, 0, now_,
                              static_cast<std::uint64_t>(level),
                              moving.size());
                    obs::addCount("timing_wheel.cascades");
                    obs::addCount("timing_wheel.cascaded_entries",
                                  moving.size());
                }
                for (Entry &e : moving)
                    place(e);
                if (idx != 0)
                    break;
            }
        }

        // Swap the bucket out before re-placing: a wrap-around entry
        // may land right back in this slot for a later revolution.
        std::vector<Entry> bucket;
        bucket.swap(slot(0, idx0));
        for (Entry &e : bucket) {
            if (e.when <= now_)
                expired.push_back(e);
            else
                place(e);
        }
    }

    std::sort(expired.begin(), expired.end(),
              [](const Entry &a, const Entry &b) {
                  return a.when != b.when ? a.when < b.when
                                           : a.seq < b.seq;
              });
    for (const Entry &e : expired) {
        std::uint64_t index = idIndex(e.id);
        TimerSlot &s = arena_[index];
        // Cancelled entries linger in the buckets as tombstones; the
        // generation mismatch identifies them here.
        if (!s.armed || s.gen != idGen(e.id))
            continue;
        if (fault::active()) {
            fault::TimerFault f =
                fault::onTimer(fault::Site::Wheel, now_, 0);
            if (f.coalesce || f.jitter) {
                // Defer, never drop: the entry stays armed (same id and
                // generation) and expires on a later advance, so wheel
                // faults delay fires but cannot lose them.
                TimeNs delay = f.jitter ? f.jitter : tick_;
                ++deferredFires_;
                place(Entry{e.id, now_ + delay, e.cookie, e.seq});
                continue;
            }
        }
        freeArenaSlot(index);
        // a0 = lateness: how far past the deadline the wheel fired
        // (bounded by the tick for an innermost-level timer).
        obs::emit(obs::EventKind::TimerFire, 0, now_, e.id,
                  now_ - std::min(e.when, now_), e.cookie);
        obs::addCount("timing_wheel.fires");
        fn(e.cookie, e.when);
    }
}

} // namespace preempt::core
