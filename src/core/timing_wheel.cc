#include "core/timing_wheel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace preempt::core {

TimingWheel::TimingWheel(TimeNs tick, std::size_t slots, int levels)
    : tick_(tick), slotCount_(slots), levels_(levels), now_(0), nextId_(1),
      live_(0)
{
    fatal_if(tick == 0, "timing wheel tick must be > 0");
    fatal_if(slots < 2 || (slots & (slots - 1)) != 0,
             "slot count must be a power of two >= 2");
    fatal_if(levels < 1 || levels > 8, "levels must be in [1,8]");
    slots_.resize(static_cast<std::size_t>(levels) * slotCount_);
}

std::vector<TimingWheel::Entry> &
TimingWheel::slot(int level, std::size_t index)
{
    return slots_[static_cast<std::size_t>(level) * slotCount_ + index];
}

TimeNs
TimingWheel::horizon() const
{
    TimeNs span = tick_;
    for (int l = 0; l < levels_; ++l)
        span *= slotCount_;
    return now_ + span;
}

void
TimingWheel::place(Entry entry)
{
    // Entries land no earlier than the next processed tick; already-
    // expired deadlines fire on the next advance.
    TimeNs when = std::max(entry.when, now_ + tick_);
    TimeNs width = tick_;
    for (int level = 0; level < levels_; ++level) {
        TimeNs span = width * slotCount_;
        // Does this deadline land within this level's span from now?
        if (when < now_ + span || level == levels_ - 1) {
            std::size_t index = static_cast<std::size_t>(
                (when / width) & (slotCount_ - 1));
            slot(level, index).push_back(entry);
            return;
        }
        width = span;
    }
}

std::uint64_t
TimingWheel::schedule(TimeNs when, std::uint64_t cookie)
{
    Entry e{nextId_++, when, cookie};
    place(e);
    ++live_;
    return e.id;
}

bool
TimingWheel::cancel(std::uint64_t id)
{
    if (id == 0 || id >= nextId_)
        return false;
    auto [it, inserted] = cancelled_.emplace(id, true);
    if (!inserted)
        return false;
    if (live_ > 0)
        --live_;
    return true;
}

void
TimingWheel::advance(TimeNs now, const ExpireFn &fn)
{
    panic_if(now < now_, "timing wheel cannot run backwards");
    std::vector<Entry> expired;

    while (now_ < now) {
        // Fast-forward across empty space.
        if (live_ == 0) {
            now_ = now;
            break;
        }
        now_ += tick_;
        if (now_ > now)
            now_ = now;

        std::size_t idx0 = static_cast<std::size_t>(
            (now_ / tick_) & (slotCount_ - 1));
        // Cascade outer levels when an inner level wraps.
        if (idx0 == 0) {
            TimeNs width = tick_;
            for (int level = 1; level < levels_; ++level) {
                width *= slotCount_;
                std::size_t idx = static_cast<std::size_t>(
                    (now_ / width) & (slotCount_ - 1));
                std::vector<Entry> moving;
                moving.swap(slot(level, idx));
                for (Entry &e : moving)
                    place(e);
                if (idx != 0)
                    break;
            }
        }

        // Swap the bucket out before re-placing: a wrap-around entry
        // may land right back in this slot for a later revolution.
        std::vector<Entry> bucket;
        bucket.swap(slot(0, idx0));
        for (Entry &e : bucket) {
            if (e.when <= now_)
                expired.push_back(e);
            else
                place(e);
        }
    }

    std::sort(expired.begin(), expired.end(),
              [](const Entry &a, const Entry &b) {
                  return a.when != b.when ? a.when < b.when : a.id < b.id;
              });
    for (const Entry &e : expired) {
        auto it = cancelled_.find(e.id);
        if (it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        panic_if(live_ == 0, "timing wheel accounting underflow");
        --live_;
        fn(e.cookie, e.when);
    }
}

} // namespace preempt::core
