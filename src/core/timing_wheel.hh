/**
 * @file
 * Hierarchical timing wheel (Varghese & Lauck), the technique the
 * paper opts into for applications with large thread counts and many
 * concurrent timers (section IV-A): O(1) insert/cancel and amortised
 * O(1) expiry, versus the O(threads) linear deadline scan the timer
 * core uses by default.
 */

#ifndef PREEMPT_CORE_TIMING_WHEEL_HH
#define PREEMPT_CORE_TIMING_WHEEL_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/time.hh"

namespace preempt::core {

/** Hierarchical timing wheel over absolute nanosecond deadlines. */
class TimingWheel
{
  public:
    /** Invoked for each expired timer with (cookie, deadline). */
    using ExpireFn = std::function<void(std::uint64_t, TimeNs)>;

    /**
     * @param tick   resolution of the innermost wheel
     * @param slots  slots per level (power of two)
     * @param levels hierarchy depth; spans tick * slots^levels total
     */
    explicit TimingWheel(TimeNs tick, std::size_t slots = 256,
                         int levels = 4);

    /**
     * Schedule a timer.
     * @param when   absolute deadline (clamped to now for past times)
     * @param cookie caller data returned on expiry
     * @return timer id for cancel().
     */
    std::uint64_t schedule(TimeNs when, std::uint64_t cookie);

    /** Cancel; returns false when already expired/cancelled. */
    bool cancel(std::uint64_t id);

    /**
     * Advance the wheel to `now`, firing every timer with deadline
     * <= now in deadline order within a tick.
     */
    void advance(TimeNs now, const ExpireFn &fn);

    /** Live timers. */
    std::size_t size() const { return live_; }

    /** Current wheel time (last advance). */
    TimeNs now() const { return now_; }

    TimeNs tick() const { return tick_; }

    /** Furthest representable deadline from now. */
    TimeNs horizon() const;

  private:
    struct Entry
    {
        std::uint64_t id;
        TimeNs when;
        std::uint64_t cookie;
    };

    /** level-major slot array: slots_[level * slotCount_ + index]. */
    std::vector<Entry> &slot(int level, std::size_t index);

    /** Place an entry into the correct level/slot. */
    void place(Entry entry);

    TimeNs tick_;
    std::size_t slotCount_;
    int levels_;
    TimeNs now_;
    std::uint64_t nextId_;
    std::size_t live_;
    std::vector<std::vector<Entry>> slots_;
    std::unordered_map<std::uint64_t, bool> cancelled_;
};

} // namespace preempt::core

#endif // PREEMPT_CORE_TIMING_WHEEL_HH
