/**
 * @file
 * Hierarchical timing wheel (Varghese & Lauck), the technique the
 * paper opts into for applications with large thread counts and many
 * concurrent timers (section IV-A): O(1) insert/cancel and amortised
 * O(1) expiry, versus the O(threads) linear deadline scan the timer
 * core uses by default.
 */

#ifndef PREEMPT_CORE_TIMING_WHEEL_HH
#define PREEMPT_CORE_TIMING_WHEEL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hh"

namespace preempt::core {

/** Hierarchical timing wheel over absolute nanosecond deadlines. */
class TimingWheel
{
  public:
    /** Invoked for each expired timer with (cookie, deadline). */
    using ExpireFn = std::function<void(std::uint64_t, TimeNs)>;

    /**
     * @param tick   resolution of the innermost wheel
     * @param slots  slots per level (power of two)
     * @param levels hierarchy depth; spans tick * slots^levels total
     */
    explicit TimingWheel(TimeNs tick, std::size_t slots = 256,
                         int levels = 4);

    /**
     * Schedule a timer.
     * @param when   absolute deadline (clamped to now for past times)
     * @param cookie caller data returned on expiry
     * @return timer id for cancel(). Ids are generation-tagged arena
     *         handles (slot index | generation), never 0.
     */
    std::uint64_t schedule(TimeNs when, std::uint64_t cookie);

    /** Cancel; returns false when already expired/cancelled. */
    bool cancel(std::uint64_t id);

    /**
     * Advance the wheel to `now`, firing every timer with deadline
     * <= now in deadline order within a tick.
     */
    void advance(TimeNs now, const ExpireFn &fn);

    /** Live timers. */
    std::size_t size() const { return live_; }

    /** Fires deferred by injected coalesce/jitter faults; a deferred
     *  entry stays armed and expires on a later advance, so no timer
     *  is ever lost to a wheel fault. */
    std::uint64_t deferredFires() const { return deferredFires_; }

    /** Current wheel time (last advance). */
    TimeNs now() const { return now_; }

    TimeNs tick() const { return tick_; }

    /** Furthest representable deadline from now (saturating). */
    TimeNs horizon() const;

    /**
     * Conservative lower bound on the next pending deadline, or
     * kTimeNever when the wheel is empty. The bound is the start time
     * of the nearest non-empty slot on any level, so it never reports
     * later than the true next fire (cancelled tombstone entries can
     * make it report earlier). The timer thread uses it to size naps
     * between advance() passes over per-worker wheel shards.
     */
    TimeNs earliest() const;

  private:
    struct Entry
    {
        std::uint64_t id;
        TimeNs when;
        std::uint64_t cookie;
        /** Global schedule order; breaks same-deadline expiry ties. */
        std::uint64_t seq;
    };

    /**
     * Arena record behind each timer id. Ids encode
     * ((slot index + 1) << 32) | generation; freeing a slot (cancel or
     * expiry) bumps the generation, so stale ids — including ids of
     * timers that already fired — are rejected in O(1) with no
     * tombstone map and no accounting side effects.
     */
    struct TimerSlot
    {
        std::uint32_t gen = 0;
        bool armed = false;
    };

    static constexpr std::uint64_t
    makeId(std::uint32_t index, std::uint32_t gen)
    {
        return ((static_cast<std::uint64_t>(index) + 1) << 32) | gen;
    }

    static constexpr std::uint64_t idIndex(std::uint64_t id)
    {
        return (id >> 32) - 1;
    }

    static constexpr std::uint32_t idGen(std::uint64_t id)
    {
        return static_cast<std::uint32_t>(id);
    }

    /** level-major slot array: slots_[level * slotCount_ + index]. */
    std::vector<Entry> &slot(int level, std::size_t index);

    /** Place an entry into the correct level/slot. */
    void place(Entry entry);

    /** Retire an arena slot: bump generation, recycle the index. */
    void freeArenaSlot(std::uint64_t index);

    TimeNs tick_;
    std::size_t slotCount_;
    int levels_;
    TimeNs now_;
    std::size_t live_;
    std::uint64_t deferredFires_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::vector<std::vector<Entry>> slots_;
    std::vector<TimerSlot> arena_;
    std::vector<std::uint32_t> freeIds_;
};

} // namespace preempt::core

#endif // PREEMPT_CORE_TIMING_WHEEL_HH
