/**
 * @file
 * Algorithm 1 from the paper: the adaptive time-quantum controller.
 *
 * Every control period the controller inspects the recent request
 * statistics (load, queue lengths, fitted tail index of service times)
 * and nudges the global time quantum:
 *   - load above L_high            -> shrink by k1 (clamp at T_min)
 *   - queues long or heavy tail    -> shrink by k2 (clamp at T_min)
 *   - load below L_low             -> grow by k3 (clamp at T_max)
 */

#ifndef PREEMPT_CORE_QUANTUM_CONTROLLER_HH
#define PREEMPT_CORE_QUANTUM_CONTROLLER_HH

#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/stats.hh"
#include "common/time.hh"

namespace preempt::core {

/** Hyperparameters of Algorithm 1. */
struct QuantumControllerParams
{
    /** Load thresholds as fractions of estimated max load
     *  (paper: 90% and 10%). */
    double highLoadFraction = 0.9;
    double lowLoadFraction = 0.1;

    /** Additive steps (paper: k1, k2, k3). */
    TimeNs k1 = usToNs(5);
    TimeNs k2 = usToNs(3);
    TimeNs k3 = usToNs(5);

    /** Queue-length trigger (paper: Q_threshold). */
    std::size_t queueThreshold = 32;

    /** Tail-index boundary: alpha in [0, 2) is heavy tailed. */
    double heavyTailAlpha = 2.0;

    /** Quantum bounds (paper: T_min = 3 us via UINTR). */
    TimeNs tMin = usToNs(3);
    TimeNs tMax = usToNs(100);

    /** Control period (paper: 10 s; benches scale it down). */
    TimeNs period = secToNs(10);
};

/** Inputs sampled at each control step. */
struct ControlInputs
{
    double loadRps = 0;       ///< measured arrival/completion rate
    double maxLoadRps = 0;    ///< capacity estimate
    std::size_t maxQueueLen = 0;
    /** Fitted alpha; inf when unknown, matching hillTailIndex(). A
     *  zero default would read as maximally heavy-tailed and force a
     *  shrink on every step fed default-constructed inputs. */
    double tailIndex = std::numeric_limits<double>::infinity();
};

/** Which Algorithm 1 branches fired on the last step (bitmask). */
enum class QuantumDecision : std::uint8_t
{
    Hold = 0,
    ShrinkHighLoad = 1,    ///< lines 6-8: load above L_high
    ShrinkQueueOrTail = 2, ///< lines 9-11: long queues / heavy tail
    Grow = 4,              ///< lines 12-14: load below L_low
};

/** The controller state machine (pure logic; no simulator coupling). */
class QuantumController
{
  public:
    QuantumController(QuantumControllerParams params, TimeNs initial);

    /**
     * One control step (lines 4-14 of Algorithm 1).
     * @return the updated time quantum.
     */
    TimeNs step(const ControlInputs &in);

    TimeNs quantum() const { return quantum_; }

    const QuantumControllerParams &params() const { return params_; }

    /** Number of decisions that shrank / grew the quantum. */
    std::uint64_t shrinks() const { return shrinks_; }
    std::uint64_t grows() const { return grows_; }

    /** Control steps taken. */
    std::uint64_t steps() const { return steps_; }

    /**
     * Triggers of the most recent step(), as an or-combination of
     * QuantumDecision bits (Hold when none fired) — callers trace
     * every decision with its inputs.
     */
    std::uint8_t lastDecision() const { return lastDecision_; }

  private:
    QuantumControllerParams params_;
    TimeNs quantum_;
    std::uint64_t shrinks_;
    std::uint64_t grows_;
    std::uint64_t steps_ = 0;
    std::uint8_t lastDecision_ = 0;
};

} // namespace preempt::core

#endif // PREEMPT_CORE_QUANTUM_CONTROLLER_HH
