#include "core/quantum_controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace preempt::core {

QuantumController::QuantumController(QuantumControllerParams params,
                                     TimeNs initial)
    : params_(params), quantum_(initial), shrinks_(0), grows_(0)
{
    fatal_if(params_.tMin == 0 || params_.tMax < params_.tMin,
             "controller requires 0 < tMin <= tMax");
    quantum_ = std::clamp(quantum_, params_.tMin, params_.tMax);
}

TimeNs
QuantumController::step(const ControlInputs &in)
{
    TimeNs before = quantum_;
    double high = params_.highLoadFraction * in.maxLoadRps;
    double low = params_.lowLoadFraction * in.maxLoadRps;
    lastDecision_ = 0;
    ++steps_;

    // Line 6-8: high load -> finer preemption for timely interrupts.
    if (in.maxLoadRps > 0 && in.loadRps > high) {
        quantum_ = quantum_ > params_.k1 + params_.tMin
                       ? quantum_ - params_.k1
                       : params_.tMin;
        lastDecision_ |=
            static_cast<std::uint8_t>(QuantumDecision::ShrinkHighLoad);
    }

    // Line 9-11: long queues or a heavy-tailed service law -> finer
    // preemption to break head-of-line blocking.
    bool heavy_tail = in.tailIndex >= 0 &&
                      in.tailIndex < params_.heavyTailAlpha;
    if (in.maxQueueLen > params_.queueThreshold || heavy_tail) {
        quantum_ = quantum_ > params_.k2 + params_.tMin
                       ? quantum_ - params_.k2
                       : params_.tMin;
        lastDecision_ |=
            static_cast<std::uint8_t>(QuantumDecision::ShrinkQueueOrTail);
    }

    // Line 12-14: low load -> coarser preemption to save CPU cycles.
    if (in.maxLoadRps > 0 && in.loadRps < low) {
        quantum_ = std::min(quantum_ + params_.k3, params_.tMax);
        lastDecision_ |= static_cast<std::uint8_t>(QuantumDecision::Grow);
    }

    if (quantum_ < before)
        ++shrinks_;
    else if (quantum_ > before)
        ++grows_;
    return quantum_;
}

} // namespace preempt::core
