/**
 * @file
 * Simulated LibPreemptible runtime (the paper's primary contribution).
 *
 * Topology mirrors the evaluation setup: one network/dispatch thread,
 * N worker threads with local FIFO queues, one dedicated LibUtimer
 * timer core, a global running list for preempted function contexts
 * and a global free list for finished ones (Figs. 5 and 6).
 *
 * Scheduling follows the paper's two-level scheme: the dispatcher
 * load-balances new requests across local queues
 * (join-shortest-queue); each worker runs its local queue in FIFO
 * order with preemption after the current time quantum; preempted
 * requests park on the global running list, which workers drain when
 * their local queues are empty. The time quantum is either static or
 * driven by the Algorithm 1 adaptive controller.
 */

#ifndef PREEMPT_RUNTIME_SIM_LIBPREEMPTIBLE_SIM_HH
#define PREEMPT_RUNTIME_SIM_LIBPREEMPTIBLE_SIM_HH

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "common/stats.hh"
#include "control/admission.hh"
#include "hw/latency_config.hh"
#include "hw/machine.hh"
#include "core/quantum_controller.hh"
#include "runtime_sim/server.hh"
#include "runtime_sim/utimer_model.hh"
#include "sim/simulator.hh"

namespace preempt::runtime_sim {

// Algorithm 1 lives in core/ and is shared with the real host runtime.
using core::ControlInputs;
using core::QuantumController;
using core::QuantumControllerParams;

/** How workers order fresh vs. preempted work. */
enum class SchedPolicy
{
    /**
     * Centralized-FCFS semantics: pick whichever of (local queue head,
     * global running-list head) became runnable first; preempted
     * requests requeue at the tail (round-robin). Starvation-free —
     * the configuration behind the Fig. 2/8 comparisons.
     */
    RoundRobin,
    /**
     * Section V-C policy #1: new requests always run first; preempted
     * long requests resume only when the local queue is empty
     * (preemptive priority to short jobs; longs can starve under
     * overload).
     */
    NewFirst,
};

/** Configuration of a LibPreemptible server instance. */
struct LibPreemptibleConfig
{
    /** Worker threads (the paper's Fig. 8 uses 4 + 1 timer core). */
    int nWorkers = 4;

    /** Time quantum; 0 disables preemption ("0 us" in Fig. 2). */
    TimeNs quantum = usToNs(10);

    /** Enable the Algorithm 1 adaptive controller. */
    bool adaptive = false;
    QuantumControllerParams controllerParams;

    /** Preemption delivery (Uintr, or KernelSignal for the no-UINTR
     *  ablation of Fig. 8). */
    TimerDelivery delivery = TimerDelivery::Uintr;

    /** Horizon of the request-statistics window feeding the
     *  controller. */
    TimeNs statsHorizon = secToNs(1);

    /** Capacity estimate for the controller's L_high/L_low
     *  thresholds; 0 derives it from measured mean service time. */
    double maxLoadRps = 0;

    /** Fresh-vs-preempted ordering. */
    SchedPolicy policy = SchedPolicy::RoundRobin;

    /** Idle workers steal from the longest peer local queue (ZygOS-
     *  style; off by default to match the paper's two-level design). */
    bool workStealing = false;

    /**
     * Per-request total deadline (section III-B: the abstraction lets
     * the scheduler cancel long requests that would otherwise violate
     * the SLO). A request older than this at a scheduling point is
     * dropped and counted in metrics().cancelled(). 0 disables.
     */
    TimeNs requestDeadline = 0;

    /** Ablation: use one central queue instead of per-worker local
     *  queues + JSQ (DESIGN.md section 5, queue-topology ablation).
     *  The central queue serialises on a lock. */
    bool centralQueue = false;

    /** Tenant id stamped on TaskSubmit trace records, so span
     *  builders attribute per-tenant scheduler delay when several
     *  sim instances share one trace (bench/scalability_tenants). */
    std::uint32_t tenant = 0;

    /**
     * Span-driven admission control (src/control/). When enabled the
     * sim owns an AdmissionController and steps it on simulated
     * publisher ticks: the tick signals (per-tick queued-time p99,
     * violation ratio, in-flight depth) come from simulator state
     * only — zero clock reads, zero RNG draws — so same-seed runs
     * stay byte-identical, and disabling it schedules no events at
     * all (the off leg is byte-identical to a build without it).
     */
    struct Admission
    {
        bool enabled = false;
        control::AdmissionParams params;

        /** Simulated publisher tick period (policy step cadence). */
        TimeNs tickPeriod = msToNs(5);

        /** Completion latency above this counts toward the
         *  violation-ratio signal (0 = signal disabled). */
        TimeNs sloNs = 0;
    };
    Admission admission;

    /** Optional per-completion hook (time-series benches). */
    std::function<void(TimeNs, const workload::Request &)> completionHook;

    /** Optional hook observing every quantum-controller decision. */
    std::function<void(TimeNs, TimeNs)> quantumHook;
};

/** The simulated LibPreemptible server. */
class LibPreemptibleSim : public ServerModel
{
  public:
    LibPreemptibleSim(sim::Simulator &sim, const hw::LatencyConfig &cfg,
                      LibPreemptibleConfig config);
    ~LibPreemptibleSim() override;

    void onArrival(workload::Request &req) override;
    std::string name() const override;

    /** Current (possibly adapted) time quantum. */
    TimeNs currentQuantum() const { return quantum_; }

    /** Override the time quantum (user-expressed policies, e.g. the
     *  QPS-driven controller of section V-C policy #2). */
    void setQuantum(TimeNs q) { quantum_ = q; }

    /** The timer-core model (for fire/overhead accounting). */
    const UTimerModel &utimer() const { return utimer_; }

    /** Requests admitted but not yet completed. */
    std::uint64_t inFlight() const { return admitted_ - finished_; }

    /** Length of the global preempted-context list. */
    std::size_t globalRunningLen() const { return globalRunning_.size(); }

    /** Reusable contexts on the global free list. */
    std::size_t freeContexts() const { return freeContexts_; }

    /** Largest local queue length right now. */
    std::size_t maxLocalQueueLen() const;

    /** Total cores used (workers + dispatcher + timer). */
    int coresUsed() const { return config_.nWorkers + 2; }

    /** Segments rescued by the fire watchdog after a dropped fire. */
    std::uint64_t watchdogRecoveries() const
    {
        return watchdogRecoveries_;
    }

    /** The admission controller, or nullptr when disabled. */
    const control::AdmissionController *admissionController() const
    {
        return admission_.get();
    }

  private:
    struct Worker
    {
        int id = 0;
        int utimerSlot = -1;
        workload::RequestQueue local;
        workload::Request *current = nullptr;
        TimeNs segStart = 0;
        /** Outstanding completion/preemption event for the running
         *  segment. Generation-tagged, so holding it past the fire is
         *  safe: a stale cancel would be a no-op. */
        sim::EventId event = sim::kInvalidEvent;
        /** When the timer core noticed the running segment's expired
         *  deadline (FirePlan::noticed); traces the SENDUIPI time. */
        TimeNs fireNoticed = 0;
        bool idle = true;
        bool wakePending = false;
        std::uint64_t launches = 0;
        std::uint64_t resumes = 0;
        /** Bumped on every startSegment; guards the fire watchdog and
         *  duplicated-fire events against acting on a later segment. */
        std::uint64_t segGen = 0;
    };

    /** Dispatcher admission (runs on the network core). */
    void dispatch(workload::Request &req, TimeNs now);

    /** Enqueue to the shortest local queue; wake the worker if idle. */
    void enqueue(workload::Request &req, TimeNs now);

    /** Worker scheduler loop entry: pick the next function. */
    void pickNext(Worker &w, TimeNs now);

    /** Run one segment of a request (fn_launch / fn_resume). */
    void startSegment(Worker &w, workload::Request &req, TimeNs now,
                      bool fresh);

    /** Segment ended by completion. */
    void onCompletion(Worker &w, TimeNs now);

    /** Segment ended by a LibUtimer preemption. */
    void onPreemption(Worker &w, TimeNs now, TimeNs worker_overhead);

    /**
     * Mitigation: when a planned fire is lost (fault injection), no
     * event would ever end the running segment. The watchdog checks in
     * shortly after the expected handler entry and finishes the
     * segment itself — as a (late) completion if the function ran to
     * its end in the meantime, as a preemption otherwise. Armed only
     * for dropped plans, so the zero-fault schedule is untouched.
     */
    void armFireWatchdog(Worker &w, const FirePlan &plan,
                         std::uint64_t gen);

    /** One Algorithm 1 control step. */
    void controllerStep(TimeNs now);

    /** One simulated-publisher admission tick: derive this tick's
     *  signals from sim state, step the policy, reset accumulators. */
    void admissionTick(TimeNs now);

    sim::Simulator &sim_;
    hw::LatencyConfig cfg_;
    LibPreemptibleConfig config_;
    hw::Machine machine_;
    UTimerModel utimer_;
    QuantumController controller_;
    RequestStatsWindow statsWindow_;
    std::function<void()> cancelController_;

    std::deque<Worker> workers_;
    workload::RequestQueue globalRunning_;
    workload::RequestQueue central_;
    TimeNs centralLockFreeAt_ = 0;
    std::size_t freeContexts_;
    TimeNs quantum_;
    TimeNs dispatcherFreeAt_;
    std::uint64_t admitted_;
    std::uint64_t finished_;
    std::uint64_t watchdogRecoveries_ = 0;
    int rrCursor_;

    // Admission control (config_.admission.enabled): controller plus
    // per-tick signal accumulators, reset on every admission tick.
    std::unique_ptr<control::AdmissionController> admission_;
    std::function<void()> cancelAdmissionTick_;
    LatencyHistogram tickQueued_;       ///< queued time of first starts
    std::uint64_t tickFinished_ = 0;    ///< completions + cancellations
    std::uint64_t tickViolations_ = 0;  ///< finishes past admission.sloNs
};

} // namespace preempt::runtime_sim

#endif // PREEMPT_RUNTIME_SIM_LIBPREEMPTIBLE_SIM_HH
