#include "runtime_sim/utimer_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace preempt::runtime_sim {

UTimerModel::UTimerModel(sim::Simulator &sim, const hw::LatencyConfig &cfg,
                         TimerDelivery delivery)
    : sim_(sim), cfg_(cfg), delivery_(delivery),
      rng_(sim.rng().fork(0x7574696d)), fires_(0), timerBusy_(0)
{
}

int
UTimerModel::registerThread()
{
    slots_.emplace_back();
    return static_cast<int>(slots_.size()) - 1;
}

TimeNs
UTimerModel::gridCeil(TimeNs t) const
{
    TimeNs step = cfg_.utimerPollInterval;
    if (step == 0)
        return t;
    TimeNs rem = t % step;
    return rem == 0 ? t : t + (step - rem);
}

TimeNs
UTimerModel::sampleDelivery()
{
    switch (delivery_) {
      case TimerDelivery::Uintr:
        return cfg_.uintrRunning.sample(rng_);
      case TimerDelivery::KernelSignal:
        return cfg_.signalDelivery.sample(rng_) + cfg_.signalHandlerCost;
    }
    panic("unknown timer delivery mode");
}

TimeNs
UTimerModel::minQuantum() const
{
    switch (delivery_) {
      case TimerDelivery::Uintr:
        return cfg_.utimerMinQuantum;
      case TimerDelivery::KernelSignal:
        return cfg_.kernelTimerFloor;
    }
    panic("unknown timer delivery mode");
}

TimeNs
UTimerModel::effectiveQuantum(TimeNs requested) const
{
    return std::max(requested, minQuantum());
}

FirePlan
UTimerModel::planFire(TimeNs deadline)
{
    FirePlan plan;
    plan.deadline = deadline;
    plan.noticed = gridCeil(deadline);
    TimeNs send_cost = delivery_ == TimerDelivery::Uintr
                           ? cfg_.senduipiCost
                           : cfg_.syscallCost; // tgkill from timer thread
    TimeNs delivery = sampleDelivery();
    fault::TimerFault f = fault::onTimer(fault::Site::Utimer, sim_.now(),
                                         traceCore_);
    if (f.coalesce) {
        // Folded into the next poll tick: the timer core misses the
        // deadline on this scan and notices it a full interval later.
        TimeNs step = cfg_.utimerPollInterval > 0 ? cfg_.utimerPollInterval
                                                  : TimeNs{1000};
        plan.noticed += step;
    }
    plan.handlerEntry = plan.noticed + send_cost + delivery + f.jitter;
    plan.dropped = f.drop;
    plan.duplicated = f.duplicate;
    plan.duplicateDelay = f.duplicateDelay;
    TimeNs handler_cost = delivery_ == TimerDelivery::Uintr
                              ? cfg_.uintrHandlerCost
                              : cfg_.signalHandlerCost;
    plan.workerOverhead = handler_cost + cfg_.userCtxSwitch;
    plan.timerCoreCost = send_cost;
    ++fires_;
    timerBusy_ += plan.timerCoreCost;
    // a0 = notice lag off the poll grid, a1 = send+delivery pipeline.
    obs::emit(obs::EventKind::TimerArm, traceCore_, sim_.now(), fires_,
              plan.noticed - plan.deadline,
              plan.handlerEntry - plan.noticed);
    obs::addCount("utimer.arms");
    obs::recordTimer("utimer.notice_to_handler_ns",
                     plan.handlerEntry - plan.noticed);
    return plan;
}

void
UTimerModel::cancel(const FirePlan &plan)
{
    if (fires_ > 0)
        --fires_;
    timerBusy_ -= std::min(timerBusy_, plan.timerCoreCost);
    obs::emit(obs::EventKind::TimerCancel, traceCore_, sim_.now(), 0,
              plan.deadline);
    obs::addCount("utimer.cancels");
}

void
UTimerModel::startPeriodic(int slot, TimeNs interval,
                           std::function<void(TimeNs)> handler)
{
    fatal_if(slot < 0 || static_cast<std::size_t>(slot) >= slots_.size(),
             "invalid utimer slot %d", slot);
    fatal_if(interval == 0, "periodic utimer interval must be > 0");
    fatal_if(!handler, "periodic utimer needs a handler");
    Slot &s = slots_[static_cast<std::size_t>(slot)];
    s.periodic = true;
    s.handler = std::move(handler);
    std::uint64_t gen = ++s.generation;

    // Chain of fires: each expiry plans the next from its own target
    // time (not the jittered entry time), like a real periodic timer.
    struct Chain
    {
        UTimerModel *self;
        int slot;
        std::uint64_t gen;
        TimeNs interval;

        void
        arm(TimeNs target) const
        {
            UTimerModel *m = self;
            FirePlan plan = m->planFire(target);
            Chain next = *this;
            bool dropped = plan.dropped;
            sim::EventId id =
                m->sim_.at(std::max(plan.handlerEntry, m->sim_.now()),
                           [next, target, dropped](TimeNs now) {
                Slot &s =
                    next.self->slots_[static_cast<std::size_t>(next.slot)];
                // The generation guards the one fire that may already
                // be in flight when stopPeriodic() cancels the chain.
                if (!s.periodic || s.generation != next.gen) {
                    ++next.self->staleFires_;
                    obs::addCount("utimer.stale_fires");
                    return;
                }
                if (dropped) {
                    // Notification lost in transit: this handler entry
                    // never happens, but the chain re-arms from its
                    // nominal target so the stream survives the fault.
                    ++next.self->droppedFires_;
                    obs::addCount("utimer.dropped_fires");
                } else {
                    // a0 = jitter: handler entry past the nominal
                    // target.
                    obs::emit(obs::EventKind::TimerFire,
                              next.self->traceCore_, now,
                              static_cast<std::uint64_t>(next.slot),
                              now - std::min(target, now));
                    obs::addCount("utimer.periodic_fires");
                    s.handler(now);
                }
                next.arm(target + next.interval);
            });
            m->slots_[static_cast<std::size_t>(next.slot)].pending = id;
        }
    };

    Chain chain{this, slot, gen, interval};
    chain.arm(sim_.now() + interval);
}

void
UTimerModel::noteRedundantFire(TimeNs now)
{
    ++redundantFires_;
    obs::emit(obs::EventKind::TimerCancel, traceCore_, now, 0, 0, 1);
    obs::addCount("utimer.redundant_fires");
}

void
UTimerModel::stopPeriodic(int slot)
{
    fatal_if(slot < 0 || static_cast<std::size_t>(slot) >= slots_.size(),
             "invalid utimer slot %d", slot);
    Slot &s = slots_[static_cast<std::size_t>(slot)];
    s.periodic = false;
    ++s.generation;
    // Drop the queued fire; a stale id (chain currently firing) is a
    // harmless no-op thanks to the queue's generation tags.
    sim_.events().cancel(s.pending);
    s.pending = sim::kInvalidEvent;
}

} // namespace preempt::runtime_sim
