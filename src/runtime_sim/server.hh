/**
 * @file
 * Common interface of all simulated request-serving runtimes
 * (LibPreemptible, Shinjuku, Libinger, non-preemptive baselines).
 *
 * A ServerModel consumes the arrival stream of an OpenLoopGenerator,
 * schedules requests across its simulated cores, and accumulates
 * RunMetrics. Core layout conventions follow the paper's evaluation:
 * core 0 is the network/dispatch thread, the last core may be a
 * dedicated timer core, and the cores in between are workers.
 */

#ifndef PREEMPT_RUNTIME_SIM_SERVER_HH
#define PREEMPT_RUNTIME_SIM_SERVER_HH

#include <string>

#include "workload/metrics.hh"
#include "workload/request.hh"

namespace preempt::runtime_sim {

/** Abstract simulated runtime. */
class ServerModel
{
  public:
    virtual ~ServerModel() = default;

    /** Deliver a new request to the runtime (network thread). */
    virtual void onArrival(workload::Request &req) = 0;

    /** Identifier used in bench output. */
    virtual std::string name() const = 0;

    /** Run metrics accumulated so far. */
    workload::RunMetrics &metrics() { return metrics_; }
    const workload::RunMetrics &metrics() const { return metrics_; }

  protected:
    workload::RunMetrics metrics_;
};

} // namespace preempt::runtime_sim

#endif // PREEMPT_RUNTIME_SIM_SERVER_HH
