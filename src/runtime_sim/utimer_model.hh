/**
 * @file
 * Simulated LibUtimer: the dedicated timer core that polls the TSC,
 * compares it against per-thread deadline slots (64-byte aligned
 * memory locations in the real library), and fires a user interrupt at
 * the thread whose deadline passed (section IV-A).
 *
 * Two delivery modes mirror the paper's ablation: UINTR (the
 * contribution) and kernel signals (the "LibPreemptible w/o UINTR"
 * orange line of Fig. 8, which falls back to ordinary timed
 * interrupts).
 */

#ifndef PREEMPT_RUNTIME_SIM_UTIMER_MODEL_HH
#define PREEMPT_RUNTIME_SIM_UTIMER_MODEL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hh"
#include "hw/kernel.hh"
#include "hw/latency_config.hh"
#include "sim/simulator.hh"

namespace preempt::runtime_sim {

/** How preemption notifications reach worker threads. */
enum class TimerDelivery
{
    Uintr,        ///< SENDUIPI from the timer core (LibPreemptible)
    KernelSignal, ///< ordinary timed interrupts + signals (fallback)
};

/**
 * Deterministic plan for one armed deadline: when the worker's handler
 * actually gains control and what everything costs.
 */
struct FirePlan
{
    /** Deadline as armed by the worker. */
    TimeNs deadline = 0;
    /** Time the timer core notices the expired deadline (poll grid). */
    TimeNs noticed = 0;
    /** Time the preemption handler starts executing on the worker. */
    TimeNs handlerEntry = 0;
    /** CPU cost on the worker: handler prologue/epilogue and the
     *  user-level context switch back to the scheduler. */
    TimeNs workerOverhead = 0;
    /** CPU cost on the timer core for this fire. */
    TimeNs timerCoreCost = 0;
    /** Fault injection: the notification is lost in transit — the
     *  handler never runs and the owner must recover (watchdog). */
    bool dropped = false;
    /** Fault injection: a duplicated copy of the fire arrives
     *  duplicateDelay ns after handlerEntry; it must be a counted
     *  no-op when the segment already ended. */
    bool duplicated = false;
    TimeNs duplicateDelay = 0;
};

/** Model of the LibUtimer timer core. */
class UTimerModel
{
  public:
    /**
     * @param sim      simulation driver
     * @param cfg      latency calibration
     * @param delivery notification mechanism
     */
    UTimerModel(sim::Simulator &sim, const hw::LatencyConfig &cfg,
                TimerDelivery delivery);

    /**
     * utimer_register: allocate a deadline slot for a thread.
     * @return slot index.
     */
    int registerThread();

    /**
     * Plan the preemption that an utimer_arm_deadline(deadline) would
     * produce. Deterministic for a fixed simulator seed; the caller
     * decides whether the request completes before handlerEntry.
     *
     * The worker-side cost of arming (one store) is reported through
     * armCost().
     */
    FirePlan planFire(TimeNs deadline);

    /** Cost of utimer_arm_deadline on the worker (a memory write). */
    TimeNs armCost() const { return cfg_.utimerArmCost; }

    /**
     * Revoke a planned fire because the function completed first (the
     * worker re-armed the deadline to the far future): the timer core
     * never sends, so its send cost is refunded.
     */
    void cancel(const FirePlan &plan);

    /** Minimum supported time quantum (3 us with UINTR). */
    TimeNs minQuantum() const;

    /**
     * Clamp a requested quantum to what the delivery mechanism can
     * express (kernel timers cannot go below their granularity floor).
     */
    TimeNs effectiveQuantum(TimeNs requested) const;

    /**
     * Event-driven periodic mode used by the precision/scalability
     * experiments (Figs. 11 and 12): fire the handler for a slot every
     * interval, reporting actual handler-entry times.
     */
    void startPeriodic(int slot, TimeNs interval,
                       std::function<void(TimeNs)> handler);

    /** Stop a periodic stream. */
    void stopPeriodic(int slot);

    /** Count of fires planned/delivered so far. */
    std::uint64_t fires() const { return fires_; }

    /** Periodic-chain fires that lost the generation race against
     *  stopPeriodic(); counted no-ops, never handler entries. */
    std::uint64_t staleFires() const { return staleFires_; }

    /** Periodic fires lost to injected drop faults (chain continues). */
    std::uint64_t droppedFires() const { return droppedFires_; }

    /** Duplicated fires that found their segment already over; the
     *  owning runtime reports them via noteRedundantFire(). */
    std::uint64_t redundantFires() const { return redundantFires_; }

    /** Record a duplicated fire that arrived after the armed deadline
     *  was cancelled/served: a counted no-op. */
    void noteRedundantFire(TimeNs now);

    /** Trace track (machine core id) of the timer core; the owning
     *  runtime knows the topology, the model does not. */
    void setTraceCore(unsigned core) { traceCore_ = core; }
    unsigned traceCore() const { return traceCore_; }

    /** Cumulative timer-core CPU cost. */
    TimeNs timerCoreBusy() const { return timerBusy_; }

    TimerDelivery delivery() const { return delivery_; }

  private:
    /** Poll-grid alignment: first poll tick at or after t. */
    TimeNs gridCeil(TimeNs t) const;

    /** Sample delivery latency for the configured mechanism. */
    TimeNs sampleDelivery();

    struct Slot
    {
        bool periodic = false;
        std::uint64_t generation = 0;
        /** Next scheduled fire of the periodic chain; cancelled
         *  eagerly on stopPeriodic() so dead events leave the queue
         *  instead of firing into a generation check. */
        sim::EventId pending = sim::kInvalidEvent;
        std::function<void(TimeNs)> handler;
    };

    sim::Simulator &sim_;
    hw::LatencyConfig cfg_;
    TimerDelivery delivery_;
    Rng rng_;
    std::vector<Slot> slots_;
    std::uint64_t fires_;
    std::uint64_t staleFires_ = 0;
    std::uint64_t droppedFires_ = 0;
    std::uint64_t redundantFires_ = 0;
    TimeNs timerBusy_;
    unsigned traceCore_ = 0;
};

} // namespace preempt::runtime_sim

#endif // PREEMPT_RUNTIME_SIM_UTIMER_MODEL_HH
