#include "runtime_sim/libpreemptible_sim.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "obs/metrics.hh"
#include "obs/spans.hh"
#include "obs/trace.hh"

namespace preempt::runtime_sim {

using workload::Request;
using workload::RequestClass;

namespace {

/** Fire-watchdog grace past the expected handler entry: long enough
 *  that a healthy (even jittered) fire always lands first, short
 *  enough to bound how far a segment can overrun after a drop. */
constexpr TimeNs kFireWatchdogGraceNs = 25000;

} // namespace

LibPreemptibleSim::LibPreemptibleSim(sim::Simulator &sim,
                                     const hw::LatencyConfig &cfg,
                                     LibPreemptibleConfig config)
    : sim_(sim), cfg_(cfg), config_(std::move(config)),
      machine_(sim, cfg, config_.nWorkers + 2),
      utimer_(sim, cfg, config_.delivery),
      controller_(config_.controllerParams,
                  config_.quantum ? config_.quantum
                                  : config_.controllerParams.tMax),
      statsWindow_(config_.statsHorizon), freeContexts_(0),
      dispatcherFreeAt_(0), admitted_(0), finished_(0), rrCursor_(0)
{
    fatal_if(config_.nWorkers <= 0, "need at least one worker");
    machine_.setRole(0, hw::CoreRole::Dispatcher);
    machine_.setRole(config_.nWorkers + 1, hw::CoreRole::Timer);
    utimer_.setTraceCore(static_cast<unsigned>(config_.nWorkers + 1));

    quantum_ = config_.adaptive ? controller_.quantum() : config_.quantum;

    for (int i = 0; i < config_.nWorkers; ++i) {
        workers_.emplace_back();
        Worker &w = workers_.back();
        w.id = i;
        w.utimerSlot = utimer_.registerThread();
        machine_.setRole(i + 1, hw::CoreRole::Worker);
    }

    if (config_.adaptive) {
        cancelController_ = sim_.every(
            config_.controllerParams.period,
            [this](TimeNs now) { controllerStep(now); });
    }

    if (config_.admission.enabled) {
        fatal_if(config_.admission.tickPeriod <= 0,
                 "admission tick period must be positive");
        admission_ = std::make_unique<control::AdmissionController>(
            config_.admission.params);
        // The simulated publisher tick: the only event source the
        // policy adds. With admission off nothing is scheduled, so
        // the off leg's event schedule is untouched.
        cancelAdmissionTick_ = sim_.every(
            config_.admission.tickPeriod,
            [this](TimeNs now) { admissionTick(now); });
    }
}

LibPreemptibleSim::~LibPreemptibleSim()
{
    if (cancelController_)
        cancelController_();
    if (cancelAdmissionTick_)
        cancelAdmissionTick_();
}

std::string
LibPreemptibleSim::name() const
{
    std::string base = config_.delivery == TimerDelivery::Uintr
                           ? "LibPreemptible"
                           : "LibPreemptible(no-UINTR)";
    if (config_.adaptive)
        base += "+adaptive";
    return base;
}

void
LibPreemptibleSim::onArrival(Request &req)
{
    metrics_.onArrival(req);
    TimeNs now = sim_.now();
    if (admission_ &&
        !admission_->decide(config_.tenant,
                            req.cls == RequestClass::BestEffort ? 1
                                                                : 0)) {
        // Rejected before dispatch: no span opens, no event is
        // scheduled — the request simply never enters the system.
        metrics_.onRejection(req);
        obs::emit(obs::EventKind::TaskReject, 0, now, req.id,
                  static_cast<std::uint64_t>(req.cls), config_.tenant);
        return;
    }
    ++admitted_;
    // Span anchor at the arrival instant: span total == req.latency()
    // exactly (both measure completion - arrival on the sim clock).
    obs::emitSpan(obs::EventKind::TaskSubmit, 0, now, req.id,
                  static_cast<std::uint64_t>(req.cls), config_.tenant);
    // The dispatcher is a single network thread: arrivals serialize
    // behind its per-request handling cost.
    TimeNs start = std::max(now, dispatcherFreeAt_);
    dispatcherFreeAt_ = start + cfg_.dispatchCost;
    machine_.addBusy(0, cfg_.dispatchCost);
    sim_.at(dispatcherFreeAt_,
            [this, &req](TimeNs t) { enqueue(req, t); });
}

void
LibPreemptibleSim::enqueue(Request &req, TimeNs now)
{
    req.readyAt = now;
    // a0 = instantaneous dispatcher backlog (requests not yet running).
    obs::emitSpan(obs::EventKind::Dispatch, 0, now, req.id,
                  admitted_ - finished_);
    if (config_.centralQueue) {
        central_.pushBack(&req);
        for (auto &w : workers_) {
            if (w.idle && !w.wakePending) {
                w.wakePending = true;
                int id = w.id;
                sim_.after(cfg_.workerQueuePoll, [this, id](TimeNs t) {
                    Worker &ww = workers_[static_cast<std::size_t>(id)];
                    ww.wakePending = false;
                    if (ww.idle)
                        pickNext(ww, t);
                });
                break;
            }
        }
        return;
    }
    (void)now;
    // Join-shortest-queue across local worker queues.
    Worker *best = nullptr;
    std::size_t best_len = std::numeric_limits<std::size_t>::max();
    for (std::size_t k = 0; k < workers_.size(); ++k) {
        Worker &w = workers_[(static_cast<std::size_t>(rrCursor_) + k) %
                             workers_.size()];
        std::size_t len = w.local.size() + (w.current ? 1 : 0);
        if (len < best_len) {
            best_len = len;
            best = &w;
        }
    }
    rrCursor_ = (rrCursor_ + 1) % static_cast<int>(workers_.size());
    panic_if(!best, "no workers configured");
    best->local.pushBack(&req);

    if (best->idle && !best->wakePending) {
        best->wakePending = true;
        int id = best->id;
        sim_.after(cfg_.workerQueuePoll, [this, id](TimeNs t) {
            Worker &w = workers_[static_cast<std::size_t>(id)];
            w.wakePending = false;
            if (w.idle)
                pickNext(w, t);
        });
    }
}

void
LibPreemptibleSim::pickNext(Worker &w, TimeNs now)
{
    panic_if(w.current != nullptr, "worker picking while running");
    // Two-level policy: fresh local work first, then preempted
    // functions from the global running list.
    Request *req = nullptr;
    bool fresh = true;
    if (config_.centralQueue) {
        // Central single queue: popping serialises on its lock.
        req = central_.popFront();
        if (req) {
            TimeNs start = std::max(now, centralLockFreeAt_);
            centralLockFreeAt_ = start + cfg_.centralQueueLockHold;
            TimeNs wait = centralLockFreeAt_ - now;
            metrics_.addPreemptionOverhead(wait);
            machine_.addBusy(w.id + 1, wait);
            now = centralLockFreeAt_;
        }
    } else if (config_.policy == SchedPolicy::RoundRobin) {
        // Centralized-FCFS order: oldest runnable first across the
        // local queue and the global preempted list.
        Request *local_head = w.local.front();
        Request *global_head = globalRunning_.front();
        if (local_head &&
            (!global_head || local_head->readyAt <= global_head->readyAt)) {
            req = w.local.popFront();
        } else if (global_head) {
            req = globalRunning_.popFront();
            fresh = false;
        }
    } else {
        req = w.local.popFront();
    }
    if (!req) {
        req = globalRunning_.popFront();
        fresh = false;
    }
    if (!req && config_.workStealing) {
        // Steal the head of the longest peer queue (pays the peer-
        // queue synchronisation cost).
        Worker *victim = nullptr;
        for (auto &peer : workers_) {
            if (peer.id != w.id && !peer.local.empty() &&
                (!victim || peer.local.size() > victim->local.size())) {
                victim = &peer;
            }
        }
        if (victim) {
            req = victim->local.popFront();
            fresh = true;
            obs::emit(obs::EventKind::Steal,
                      static_cast<std::uint32_t>(w.id + 1), now, req->id,
                      static_cast<std::uint64_t>(victim->id));
            obs::addCount("libpreemptible.steals");
            TimeNs cost = cfg_.libingerLockHold;
            metrics_.addPreemptionOverhead(cost);
            machine_.addBusy(w.id + 1, cost);
            now += cost;
        }
    }
    if (!req) {
        w.idle = true;
        return;
    }
    // Section III-B: cancel requests whose SLO is already hopeless
    // instead of burning cycles on them (iterative, not recursive:
    // overload can queue thousands of expired requests).
    if (config_.requestDeadline != 0 &&
        now - req->arrival > config_.requestDeadline) {
        while (req != nullptr &&
               now - req->arrival > config_.requestDeadline) {
            ++finished_;
            obs::emitSpan(obs::EventKind::CancelRequest,
                          static_cast<std::uint32_t>(w.id + 1), now,
                          req->id, now - req->arrival);
            obs::addCount("libpreemptible.cancellations");
            metrics_.onCancellation(*req);
            if (admission_) {
                // A cancelled request is a finished SLO violation for
                // the pressure signal.
                ++tickFinished_;
                ++tickViolations_;
            }
            req = nullptr;
            fresh = true;
            if (config_.centralQueue) {
                req = central_.popFront();
            } else if ((req = w.local.popFront()) == nullptr) {
                req = globalRunning_.popFront();
                fresh = false;
            }
        }
        if (!req) {
            w.idle = true;
            return;
        }
    }
    w.idle = false;
    startSegment(w, *req, now, fresh);
}

void
LibPreemptibleSim::startSegment(Worker &w, Request &req, TimeNs now,
                                bool fresh)
{
    w.current = &req;
    ++w.segGen;
    if (req.firstStart == kTimeNever) {
        req.firstStart = now;
        if (admission_)
            tickQueued_.record(now >= req.arrival ? now - req.arrival
                                                  : 0);
    }
    if (fresh)
        ++w.launches;
    else
        ++w.resumes;
    obs::emitSpan(fresh ? obs::EventKind::Launch : obs::EventKind::Resume,
                  static_cast<std::uint32_t>(w.id + 1), now, req.id,
                  req.remaining, quantum_);

    // fn_launch allocates a context from the free list; fn_resume just
    // switches to the saved one. Both pay the user context switch and
    // the deadline store.
    TimeNs overhead = cfg_.userCtxSwitch + utimer_.armCost();
    if (fresh) {
        overhead += cfg_.fnLaunchCost;
        if (freeContexts_ > 0)
            --freeContexts_; // reuse a pooled context
    }
    metrics_.addPreemptionOverhead(overhead);
    machine_.addBusy(w.id + 1, overhead);

    TimeNs seg_start = now + overhead;
    w.segStart = seg_start;

    TimeNs tq = quantum_;
    bool preemptible = tq != 0;
    if (preemptible)
        tq = utimer_.effectiveQuantum(tq);

    if (!preemptible) {
        // Run to completion (the "0 us quantum" configuration).
        TimeNs done_at = seg_start + req.remaining;
        int id = w.id;
        w.event = sim_.at(done_at, [this, id](TimeNs t) {
            onCompletion(workers_[static_cast<std::size_t>(id)], t);
        });
        return;
    }

    FirePlan plan = utimer_.planFire(seg_start + tq);
    if (seg_start + req.remaining <= plan.handlerEntry) {
        // The function finishes before the interrupt would land; the
        // completion path re-arms the deadline so the timer never
        // sends.
        utimer_.cancel(plan);
        TimeNs done_at = seg_start + req.remaining;
        int id = w.id;
        w.event = sim_.at(done_at, [this, id](TimeNs t) {
            onCompletion(workers_[static_cast<std::size_t>(id)], t);
        });
    } else if (plan.dropped) {
        // The fire was lost in transit: no preemption event will ever
        // end this segment. The watchdog recovers it.
        w.fireNoticed = plan.noticed;
        armFireWatchdog(w, plan, w.segGen);
    } else {
        int id = w.id;
        TimeNs worker_ovh = plan.workerOverhead;
        w.fireNoticed = plan.noticed;
        w.event = sim_.at(plan.handlerEntry,
                          [this, id, worker_ovh](TimeNs t) {
            onPreemption(workers_[static_cast<std::size_t>(id)], t,
                         worker_ovh);
        });
        if (plan.duplicated) {
            // A duplicated fire lands after the segment ended (the
            // primary fire preempts it): always a counted no-op.
            std::uint64_t gen = w.segGen;
            sim_.at(plan.handlerEntry + plan.duplicateDelay,
                    [this, id, gen](TimeNs t) {
                Worker &ww = workers_[static_cast<std::size_t>(id)];
                (void)gen;
                panic_if(ww.segGen == gen && ww.current != nullptr,
                         "duplicated fire outlived its own preemption");
                utimer_.noteRedundantFire(t);
            });
        }
    }
}

void
LibPreemptibleSim::armFireWatchdog(Worker &w, const FirePlan &plan,
                                   std::uint64_t gen)
{
    int id = w.id;
    TimeNs worker_ovh = plan.workerOverhead;
    w.event = sim_.at(plan.handlerEntry + kFireWatchdogGraceNs,
                      [this, id, gen, worker_ovh](TimeNs t) {
        Worker &ww = workers_[static_cast<std::size_t>(id)];
        if (ww.segGen != gen || ww.current == nullptr)
            return; // the segment ended some other way
        ++watchdogRecoveries_;
        obs::addCount("fault.recovered.utimer_watchdog");
        obs::emit(obs::EventKind::FaultRecover,
                  static_cast<std::uint32_t>(ww.id + 1), t,
                  static_cast<std::uint64_t>(fault::Site::Utimer), 0);
        // If the function's service ran out while we waited, this is a
        // (late) completion; otherwise preempt it as the lost fire
        // would have.
        TimeNs executed = t - ww.segStart;
        if (ww.current->remaining <= executed)
            onCompletion(ww, t);
        else
            onPreemption(ww, t, worker_ovh);
    });
}

void
LibPreemptibleSim::onCompletion(Worker &w, TimeNs now)
{
    Request *req = w.current;
    panic_if(!req, "completion with no running request");
    w.current = nullptr;
    w.event = sim::kInvalidEvent;

    TimeNs executed = now - w.segStart;
    metrics_.addExecution(executed);
    machine_.addBusy(w.id + 1, executed);
    req->remaining = 0;
    req->completion = now;
    ++finished_;
    ++freeContexts_; // context returns to the global free list

    obs::emitSpan(obs::EventKind::Complete,
                  static_cast<std::uint32_t>(w.id + 1), now, req->id,
                  req->latency(),
                  static_cast<std::uint64_t>(req->preemptions));
    obs::recordTimerPerCore("libpreemptible.latency_ns",
                            static_cast<unsigned>(w.id + 1),
                            req->latency());
    metrics_.onCompletion(*req);
    statsWindow_.onCompletion(now, req->latency(), req->service);
    if (admission_) {
        ++tickFinished_;
        if (config_.admission.sloNs != 0 &&
            req->latency() > config_.admission.sloNs)
            ++tickViolations_;
    }
    if (config_.completionHook)
        config_.completionHook(now, *req);

    // Return to the scheduler loop and pick the next function.
    TimeNs overhead = cfg_.userCtxSwitch;
    metrics_.addPreemptionOverhead(overhead);
    machine_.addBusy(w.id + 1, overhead);
    int id = w.id;
    sim_.after(overhead, [this, id](TimeNs t) {
        pickNext(workers_[static_cast<std::size_t>(id)], t);
    });
}

void
LibPreemptibleSim::onPreemption(Worker &w, TimeNs now,
                                TimeNs worker_overhead)
{
    Request *req = w.current;
    panic_if(!req, "preemption with no running request");
    w.current = nullptr;
    w.event = sim::kInvalidEvent;

    // Fault injection: a slow handler burns extra worker time before
    // control returns to the scheduler.
    worker_overhead += fault::onHandler(
        now, static_cast<std::uint32_t>(w.id + 1));

    // The quantum expired: the timer core's deadline scan fired and
    // the worker's handler just gained control.
    obs::emit(obs::EventKind::TimerFire, utimer_.traceCore(), now,
              req->id, worker_overhead);
    obs::addCount("utimer.fires");
    if (config_.delivery == TimerDelivery::Uintr) {
        // The fire plan models SENDUIPI at the notice time and handler
        // entry after the sampled delivery latency; surface that
        // pipeline on the uintr tracks (a0 = send-to-entry latency).
        obs::emit(obs::EventKind::UintrSend, utimer_.traceCore(),
                  w.fireNoticed, static_cast<std::uint64_t>(w.id));
        obs::emit(obs::EventKind::UintrDeliverRunning,
                  static_cast<std::uint32_t>(w.id + 1), now,
                  static_cast<std::uint64_t>(w.id),
                  now - std::min(w.fireNoticed, now));
        obs::recordTimer("uintr.delivery_running_ns",
                         now - std::min(w.fireNoticed, now));
    }

    TimeNs executed = now - w.segStart;
    panic_if(executed >= req->remaining,
             "preempted a request that should have completed");
    req->remaining -= executed;
    ++req->preemptions;
    obs::emitSpan(obs::EventKind::Preempt,
                  static_cast<std::uint32_t>(w.id + 1), now, req->id,
                  executed, req->remaining);
    obs::addCount("libpreemptible.preemptions");
    metrics_.addExecution(executed);
    metrics_.addPreemptionOverhead(worker_overhead);
    machine_.addBusy(w.id + 1, executed + worker_overhead);

    // The preempted context parks on the global running list; idle
    // peers poll the list, so wake one if any.
    req->readyAt = now;
    globalRunning_.pushBack(req);
    for (auto &peer : workers_) {
        if (peer.idle && !peer.wakePending && peer.id != w.id) {
            peer.wakePending = true;
            int pid = peer.id;
            sim_.after(cfg_.workerQueuePoll, [this, pid](TimeNs t) {
                Worker &pw = workers_[static_cast<std::size_t>(pid)];
                pw.wakePending = false;
                if (pw.idle)
                    pickNext(pw, t);
            });
            break;
        }
    }

    int id = w.id;
    sim_.after(worker_overhead, [this, id](TimeNs t) {
        pickNext(workers_[static_cast<std::size_t>(id)], t);
    });
}

std::size_t
LibPreemptibleSim::maxLocalQueueLen() const
{
    std::size_t m = 0;
    for (const auto &w : workers_)
        m = std::max(m, w.local.size());
    return m;
}

void
LibPreemptibleSim::controllerStep(TimeNs now)
{
    statsWindow_.expire(now);
    ControlInputs in;
    in.loadRps = statsWindow_.throughputRps(now);
    if (config_.maxLoadRps > 0) {
        in.maxLoadRps = config_.maxLoadRps;
    } else {
        double mean_service = statsWindow_.meanServiceNs();
        in.maxLoadRps =
            mean_service > 0
                ? static_cast<double>(config_.nWorkers) * 1e9 / mean_service
                : 0;
    }
    in.maxQueueLen = std::max(maxLocalQueueLen(), globalRunning_.size());
    in.tailIndex = statsWindow_.tailIndex();
    quantum_ = controller_.step(in);
    // One record per control decision, with its inputs: id = measured
    // load (rps), a0 = the new quantum, a1 = (decision bits << 32) |
    // max queue length.
    obs::emit(obs::EventKind::QuantumDecision, 0, now,
              static_cast<std::uint64_t>(in.loadRps), quantum_,
              (static_cast<std::uint64_t>(controller_.lastDecision())
               << 32) |
                  static_cast<std::uint64_t>(
                      std::min<std::size_t>(in.maxQueueLen, 0xffffffff)));
    obs::addCount("controller.steps");
    obs::setGauge("controller.quantum_ns",
                  static_cast<std::int64_t>(quantum_));
    if (config_.quantumHook)
        config_.quantumHook(now, quantum_);
}

void
LibPreemptibleSim::admissionTick(TimeNs now)
{
    (void)now;
    // Signals from simulator state only (no clocks, no RNG): the
    // deterministic analogue of the real runtime's snapshot poll.
    control::AdmissionSignals s;
    s.fresh = true;
    s.queuedP99Ns = tickQueued_.count() != 0 ? tickQueued_.p99() : 0;
    s.violationRatio =
        tickFinished_ == 0
            ? 0.0
            : static_cast<double>(tickViolations_) /
                  static_cast<double>(tickFinished_);
    s.depth = static_cast<std::int64_t>(inFlight());
    admission_->onTick(config_.tenant, s);
    if (obs::MetricsRegistry *m = obs::metricsRegistry())
        admission_->exportMetrics(*m);
    tickQueued_.reset();
    tickFinished_ = 0;
    tickViolations_ = 0;
}

} // namespace preempt::runtime_sim
