/**
 * @file
 * Deterministic, seed-reproducible fault injection for the simulated
 * UINTR/timer stack.
 *
 * A FaultPlan is a set of rules parsed from a `--faults=` spec; an
 * Injector draws from its own PCG stream to decide, per injection
 * site event, whether a fault fires. Installed process-wide (like the
 * obs:: tracer), the instrumented subsystems query it through
 * null-safe helpers: with no injector installed every helper returns
 * the identity decision without touching any RNG, so the zero-fault
 * path is byte-identical to a build that never heard of faults.
 *
 * Spec grammar (comma-separated rules):
 *
 *   rule    := action ":" site "@" probability [":" param-ns]
 *   action  := drop | delay | dup | reorder | coalesce | jitter | slow
 *   site    := uintr | wake | ipi | signal | utimer | wheel | handler
 *
 *   --faults=none            empty plan (same as omitting the flag)
 *   --faults=drop:uintr@0.01,delay:wake@0.1:2500,jitter:utimer@0.05:1500
 *
 * Semantics per action:
 *   drop     the notification/fire is lost in transit
 *   delay    delivery is late by exactly param ns (deterministic)
 *   dup      a second copy of the notification arrives param ns after
 *            the first (default 700 ns)
 *   reorder  delivery is late by a uniform draw in [1, param] ns
 *            (default 2000), letting later sends overtake it
 *   coalesce a timer fire is folded into the next poll tick / interval
 *   jitter   a timer fire lands late by a uniform draw in [1, param]
 *   slow     the preemption handler burns an extra param ns
 *
 * Valid (action, site) combinations are checked at parse time; see
 * DESIGN.md section 9 for the full matrix and the recovery paths
 * (bounded-retry resend, utimer fire watchdog) each fault exercises.
 *
 * Single-threaded by design: the injector serves the discrete-event
 * simulator's thread. Do not install one around the real runtime.
 */

#ifndef PREEMPT_FAULT_FAULT_HH
#define PREEMPT_FAULT_FAULT_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/time.hh"

namespace preempt {
class CommandLine;
} // namespace preempt

namespace preempt::fault {

/** Where a fault can be injected. */
enum class Site : std::uint8_t
{
    Uintr,   ///< UINTR notification transport (running-receiver path)
    Wake,    ///< kernel-assisted blocked-receiver wakeups
    Ipi,     ///< posted IPIs (hw::PostedIpiUnit)
    Signal,  ///< kernel signal delivery (hw::SignalPath)
    Utimer,  ///< LibUtimer deadline fires (runtime_sim::UTimerModel)
    Wheel,   ///< core::TimingWheel expiry
    Handler, ///< preemption handler on the worker
    kCount
};

/** What the fault does. */
enum class Action : std::uint8_t
{
    Drop,
    Delay,
    Duplicate,
    Reorder,
    Coalesce,
    Jitter,
    Slow,
    kCount
};

/** Stable lowercase names (the spec grammar tokens). */
const char *siteName(Site site);
const char *actionName(Action action);

/** One parsed rule. */
struct FaultRule
{
    Action action;
    Site site;
    double probability; ///< per-event trigger probability in [0, 1]
    TimeNs param;       ///< ns parameter (0 = action default)
};

/** A parsed `--faults=` spec. */
struct FaultPlan
{
    std::vector<FaultRule> rules;

    bool empty() const { return rules.empty(); }

    /**
     * Parse a spec string ("" and "none" give an empty plan). Invalid
     * grammar or an unsupported (action, site) combination is fatal.
     */
    static FaultPlan parse(const std::string &spec);

    /** Canonical re-print of the plan ("none" when empty). */
    std::string str() const;
};

/** Decision for one transported notification (uintr/wake/ipi/signal). */
struct TransportFault
{
    bool drop = false;
    TimeNs delay = 0; ///< extra latency (delay and/or reorder rules)
    bool duplicate = false;
    TimeNs duplicateDelay = 0; ///< extra lag of the duplicated copy
};

/** Decision for one timer fire (utimer/wheel). */
struct TimerFault
{
    bool drop = false;
    bool coalesce = false;
    bool duplicate = false;
    TimeNs duplicateDelay = 0;
    TimeNs jitter = 0; ///< extra lateness
};

/**
 * Draws per-event fault decisions from a plan. Deterministic in
 * (plan, seed, query sequence); the simulated subsystems issue queries
 * in virtual-time order, so same seed + same plan reproduces the same
 * fault schedule exactly.
 */
class Injector
{
  public:
    Injector(FaultPlan plan, std::uint64_t seed);

    /** Decide faults for one notification send at `now` on `core`. */
    TransportFault transport(Site site, TimeNs now, std::uint32_t core);

    /** Decide faults for one timer fire at `now` on `core`. */
    TimerFault timer(Site site, TimeNs now, std::uint32_t core);

    /** Extra handler ns for one preemption (0 when no slow rule). */
    TimeNs handlerSlowdown(TimeNs now, std::uint32_t core);

    const FaultPlan &plan() const { return plan_; }
    std::uint64_t seed() const { return seed_; }

    /** Times a (action, site) rule has triggered. */
    std::uint64_t injected(Action action, Site site) const;

    /** Total faults injected across all rules. */
    std::uint64_t totalInjected() const;

  private:
    static constexpr std::size_t kActions =
        static_cast<std::size_t>(Action::kCount);
    static constexpr std::size_t kSites =
        static_cast<std::size_t>(Site::kCount);

    /** True (and counted/traced) when the rule triggers this event. */
    bool roll(const FaultRule &rule, TimeNs now, std::uint32_t core);

    FaultPlan plan_;
    std::uint64_t seed_;
    Rng rng_;
    std::array<std::uint64_t, kActions * kSites> counts_{};
    /** Precomputed obs counter names, "fault.injected.drop:uintr". */
    std::array<std::string, kActions * kSites> counterNames_;
};

/**
 * The injector fault queries on this thread resolve to, or nullptr
 * (injection off): the thread-confined injector when one is installed,
 * otherwise the process-wide one.
 */
Injector *injector() noexcept;

/** Install/uninstall the process-wide injector (caller owns it). */
void setInjector(Injector *injector) noexcept;

/**
 * Install/uninstall an injector for the calling thread only. Shadows
 * the process-wide injector on this thread; the parallel experiment
 * harness scopes one injector per cell this way, so concurrent cells
 * draw from independent streams and the fault schedule never depends
 * on cross-cell draw order. Pass nullptr to fall back to the global.
 */
void setThreadInjector(Injector *injector) noexcept;

/** The calling thread's shadowing injector, or nullptr. */
Injector *threadInjector() noexcept;

/** RAII thread-confined injector install (nullptr = no shadowing). */
class ScopedThreadInjector
{
  public:
    explicit ScopedThreadInjector(Injector *inj)
        : prev_(threadInjector())
    {
        setThreadInjector(inj);
    }

    ~ScopedThreadInjector() { setThreadInjector(prev_); }

    ScopedThreadInjector(const ScopedThreadInjector &) = delete;
    ScopedThreadInjector &operator=(const ScopedThreadInjector &) = delete;

  private:
    Injector *prev_;
};

/** True when fault injection is active. */
inline bool
active() noexcept
{
    return injector() != nullptr;
}

// ----- Null-safe helpers for instrumentation sites ------------------
// Identity decisions (and no RNG draws) when no injector is installed.

TransportFault onTransport(Site site, TimeNs now, std::uint32_t core);
TimerFault onTimer(Site site, TimeNs now, std::uint32_t core);
TimeNs onHandler(TimeNs now, std::uint32_t core);

/**
 * RAII CLI wiring: consumes `--faults=` and `--fault-seed=` and
 * installs an injector for the process when the plan is non-empty.
 *
 *   CommandLine cli(argc, argv);
 *   obs::Session obsSession(cli);
 *   fault::Session faultSession(cli);
 *   ...
 *   cli.rejectUnknown();
 */
class Session
{
  public:
    explicit Session(CommandLine &cli);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** True when a non-empty plan was installed. */
    bool active() const { return injector_ != nullptr; }

    Injector *injector() { return injector_.get(); }

    /** The parsed --faults plan (empty when the flag was absent). */
    const FaultPlan &plan() const { return plan_; }

    /** The --fault-seed value; per-cell injector streams derive from
     *  it in the parallel harness. */
    std::uint64_t seed() const { return seed_; }

  private:
    std::unique_ptr<Injector> injector_;
    FaultPlan plan_;
    std::uint64_t seed_ = 0;
};

} // namespace preempt::fault

#endif // PREEMPT_FAULT_FAULT_HH
