#include "fault/fault.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/cli.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace preempt::fault {

namespace {

std::atomic<Injector *> g_injector{nullptr};

/** Per-thread shadow (parallel harness cells); plain — thread-owned. */
thread_local Injector *t_threadInjector = nullptr;

constexpr TimeNs kDefaultDuplicateDelay = 700;
constexpr TimeNs kDefaultReorderWindow = 2000;
constexpr TimeNs kDefaultJitterWindow = 1500;
constexpr TimeNs kDefaultSlowNs = 2000;

/** The supported (action, site) matrix (DESIGN.md section 9). */
bool
validCombo(Action action, Site site)
{
    switch (site) {
      case Site::Uintr:
      case Site::Ipi:
        return action == Action::Drop || action == Action::Delay ||
               action == Action::Duplicate || action == Action::Reorder;
      case Site::Wake:
        return action == Action::Drop || action == Action::Delay ||
               action == Action::Duplicate;
      case Site::Signal:
        return action == Action::Drop || action == Action::Delay ||
               action == Action::Reorder;
      case Site::Utimer:
        return action == Action::Drop || action == Action::Coalesce ||
               action == Action::Jitter || action == Action::Duplicate;
      case Site::Wheel:
        return action == Action::Coalesce || action == Action::Jitter;
      case Site::Handler:
        return action == Action::Slow;
      case Site::kCount:
        break;
    }
    return false;
}

template <typename Enum, std::size_t N>
Enum
parseToken(const std::array<const char *, N> &names, const std::string &tok,
           const char *what)
{
    for (std::size_t i = 0; i < N; ++i) {
        if (tok == names[i])
            return static_cast<Enum>(i);
    }
    fatal("unknown fault %s '%s' in --faults spec", what, tok.c_str());
}

const std::array<const char *, static_cast<std::size_t>(Site::kCount)>
    kSiteNames = {"uintr", "wake", "ipi", "signal", "utimer", "wheel",
                  "handler"};

const std::array<const char *, static_cast<std::size_t>(Action::kCount)>
    kActionNames = {"drop", "delay", "dup", "reorder", "coalesce",
                    "jitter", "slow"};

} // namespace

const char *
siteName(Site site)
{
    return kSiteNames[static_cast<std::size_t>(site)];
}

const char *
actionName(Action action)
{
    return kActionNames[static_cast<std::size_t>(action)];
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    if (spec.empty() || spec == "none")
        return plan;

    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string rule_str = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (rule_str.empty())
            continue;

        // action ":" site "@" probability [":" param]
        std::size_t colon = rule_str.find(':');
        std::size_t at = rule_str.find('@');
        fatal_if(colon == std::string::npos || at == std::string::npos ||
                     colon > at,
                 "malformed fault rule '%s' (want action:site@prob[:ns])",
                 rule_str.c_str());

        FaultRule rule;
        rule.action = parseToken<Action>(
            kActionNames, rule_str.substr(0, colon), "action");
        rule.site = parseToken<Site>(
            kSiteNames, rule_str.substr(colon + 1, at - colon - 1), "site");
        fatal_if(!validCombo(rule.action, rule.site),
                 "fault action '%s' is not supported at site '%s'",
                 actionName(rule.action), siteName(rule.site));

        std::string tail = rule_str.substr(at + 1);
        std::size_t param_colon = tail.find(':');
        std::string prob_str = tail.substr(0, param_colon);
        char *end = nullptr;
        rule.probability = std::strtod(prob_str.c_str(), &end);
        fatal_if(end == prob_str.c_str() || *end != '\0' ||
                     rule.probability < 0 || rule.probability > 1,
                 "fault rule '%s': probability must be in [0,1]",
                 rule_str.c_str());

        rule.param = 0;
        if (param_colon != std::string::npos) {
            std::string param_str = tail.substr(param_colon + 1);
            char *pend = nullptr;
            long long v = std::strtoll(param_str.c_str(), &pend, 10);
            fatal_if(pend == param_str.c_str() || *pend != '\0' || v < 0,
                     "fault rule '%s': param must be a non-negative "
                     "nanosecond count",
                     rule_str.c_str());
            rule.param = static_cast<TimeNs>(v);
        }
        plan.rules.push_back(rule);
    }
    return plan;
}

std::string
FaultPlan::str() const
{
    if (rules.empty())
        return "none";
    std::string out;
    for (const FaultRule &rule : rules) {
        if (!out.empty())
            out += ',';
        out += actionName(rule.action);
        out += ':';
        out += siteName(rule.site);
        out += '@';
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", rule.probability);
        out += buf;
        if (rule.param != 0) {
            std::snprintf(buf, sizeof(buf), ":%llu",
                          static_cast<unsigned long long>(rule.param));
            out += buf;
        }
    }
    return out;
}

Injector::Injector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed), rng_(seed, 0x666c74)
{
    for (std::size_t a = 0; a < kActions; ++a) {
        for (std::size_t s = 0; s < kSites; ++s) {
            counterNames_[a * kSites + s] =
                std::string("fault.injected.") +
                actionName(static_cast<Action>(a)) + ":" +
                siteName(static_cast<Site>(s));
        }
    }
}

bool
Injector::roll(const FaultRule &rule, TimeNs now, std::uint32_t core)
{
    if (rng_.uniform() >= rule.probability)
        return false;
    std::size_t idx = static_cast<std::size_t>(rule.action) * kSites +
                      static_cast<std::size_t>(rule.site);
    ++counts_[idx];
    obs::addCount(counterNames_[idx].c_str());
    obs::emit(obs::EventKind::FaultInject, core, now,
              static_cast<std::uint64_t>(rule.site),
              static_cast<std::uint64_t>(rule.action), rule.param);
    return true;
}

TransportFault
Injector::transport(Site site, TimeNs now, std::uint32_t core)
{
    TransportFault out;
    for (const FaultRule &rule : plan_.rules) {
        if (rule.site != site)
            continue;
        switch (rule.action) {
          case Action::Drop:
            if (roll(rule, now, core))
                out.drop = true;
            break;
          case Action::Delay:
            if (roll(rule, now, core))
                out.delay += rule.param;
            break;
          case Action::Reorder:
            if (roll(rule, now, core)) {
                TimeNs window = rule.param ? rule.param
                                           : kDefaultReorderWindow;
                out.delay += 1 + rng_.next64() % window;
            }
            break;
          case Action::Duplicate:
            if (roll(rule, now, core)) {
                out.duplicate = true;
                out.duplicateDelay =
                    rule.param ? rule.param : kDefaultDuplicateDelay;
            }
            break;
          default:
            panic("fault action '%s' reached transport site '%s'",
                  actionName(rule.action), siteName(rule.site));
        }
    }
    return out;
}

TimerFault
Injector::timer(Site site, TimeNs now, std::uint32_t core)
{
    TimerFault out;
    for (const FaultRule &rule : plan_.rules) {
        if (rule.site != site)
            continue;
        switch (rule.action) {
          case Action::Drop:
            if (roll(rule, now, core))
                out.drop = true;
            break;
          case Action::Coalesce:
            if (roll(rule, now, core))
                out.coalesce = true;
            break;
          case Action::Jitter:
            if (roll(rule, now, core)) {
                TimeNs window = rule.param ? rule.param
                                           : kDefaultJitterWindow;
                out.jitter += 1 + rng_.next64() % window;
            }
            break;
          case Action::Duplicate:
            if (roll(rule, now, core)) {
                out.duplicate = true;
                out.duplicateDelay =
                    rule.param ? rule.param : kDefaultDuplicateDelay;
            }
            break;
          default:
            panic("fault action '%s' reached timer site '%s'",
                  actionName(rule.action), siteName(rule.site));
        }
    }
    return out;
}

TimeNs
Injector::handlerSlowdown(TimeNs now, std::uint32_t core)
{
    TimeNs extra = 0;
    for (const FaultRule &rule : plan_.rules) {
        if (rule.site != Site::Handler || rule.action != Action::Slow)
            continue;
        if (roll(rule, now, core))
            extra += rule.param ? rule.param : kDefaultSlowNs;
    }
    return extra;
}

std::uint64_t
Injector::injected(Action action, Site site) const
{
    return counts_[static_cast<std::size_t>(action) * kSites +
                   static_cast<std::size_t>(site)];
}

std::uint64_t
Injector::totalInjected() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : counts_)
        total += c;
    return total;
}

Injector *
injector() noexcept
{
    if (t_threadInjector)
        return t_threadInjector;
    return g_injector.load(std::memory_order_relaxed);
}

void
setInjector(Injector *inj) noexcept
{
    g_injector.store(inj, std::memory_order_relaxed);
}

void
setThreadInjector(Injector *inj) noexcept
{
    t_threadInjector = inj;
}

Injector *
threadInjector() noexcept
{
    return t_threadInjector;
}

TransportFault
onTransport(Site site, TimeNs now, std::uint32_t core)
{
    Injector *inj = injector();
    return inj ? inj->transport(site, now, core) : TransportFault{};
}

TimerFault
onTimer(Site site, TimeNs now, std::uint32_t core)
{
    Injector *inj = injector();
    return inj ? inj->timer(site, now, core) : TimerFault{};
}

TimeNs
onHandler(TimeNs now, std::uint32_t core)
{
    Injector *inj = injector();
    return inj ? inj->handlerSlowdown(now, core) : 0;
}

Session::Session(CommandLine &cli)
{
    std::string spec = cli.getString("faults", "");
    seed_ = static_cast<std::uint64_t>(
        cli.getInt("fault-seed", 0x666c7402));
    plan_ = FaultPlan::parse(spec);
    if (plan_.empty())
        return;
    injector_ = std::make_unique<Injector>(plan_, seed_);
    setInjector(injector_.get());
    inform("fault injection active: plan=%s seed=%llu",
           injector_->plan().str().c_str(),
           static_cast<unsigned long long>(seed_));
}

Session::~Session()
{
    if (injector_)
        setInjector(nullptr);
}

} // namespace preempt::fault
