/**
 * @file
 * Span-driven admission control: the feedback layer that closes the
 * loop from the telemetry plane back into the submit path.
 *
 * An AdmissionController keeps one policy state machine per tenant:
 *
 *     ADMIT -> THROTTLE(rate) -> SHED_BE -> SHED_LC
 *
 * Severity moves one step at a time, driven by three pressure signals
 * (windowed queued-time p99, windowed SLO-violation ratio, in-flight
 * depth) with two-sided hysteresis: escalation needs `escalateAfter`
 * consecutive high-pressure ticks, de-escalation `relaxAfter`
 * consecutive low-pressure ticks, and the band between the low and
 * high thresholds holds the current state. That bounds state changes
 * to at most ticks / min(escalateAfter, relaxAfter) + 1 per window —
 * tests/test_admission_fuzz.cc enforces the bound over randomized
 * overload/recovery schedules.
 *
 * Inside THROTTLE, best-effort admission runs at an adaptive duty
 * cycle (duty-in-dutySteps, stepped +-1 per tick), so BE throughput
 * degrades gracefully instead of falling off a cliff; SHED_BE stops
 * BE entirely while still admitting every LC request; SHED_LC (the
 * last resort) rejects BE and admits only a deterministic 1-in-N
 * trickle of LC probes so recovery can be observed. LC is therefore
 * never rejected in a state that still admits BE — the monotone-
 * severity invariant.
 *
 * Decisions are a pure function of (state, duty, per-tenant decision
 * counters): no clock reads, no RNG draws. The simulated runtime steps
 * the policy on simulated publisher ticks, so same-seed runs stay
 * byte-identical; the real runtime steps it from a telemetry sampler
 * on the publisher thread (one-tick-delayed closed loop).
 *
 * Fail-open by construction: a tenant with no snapshot, a stale
 * snapshot (seq unchanged), or a never-started publisher yields zero
 * pressure, which relaxes the machine toward ADMIT — telemetry
 * outages can never wedge the system shut.
 */

#ifndef PREEMPT_CONTROL_ADMISSION_HH
#define PREEMPT_CONTROL_ADMISSION_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hh"
#include "obs/telemetry.hh"

namespace preempt::control {

/** Severity ladder; values are ordered and stable (gauge export). */
enum class PolicyState : std::uint8_t
{
    Admit = 0,    ///< everything admitted
    Throttle = 1, ///< LC admitted; BE at a duty-cycle rate
    ShedBe = 2,   ///< LC admitted; BE rejected
    ShedLc = 3,   ///< BE rejected; LC only as a 1-in-N probe trickle
};

/** Stable lowercase name ("admit", "throttle", "shed_be", "shed_lc"). */
const char *stateName(PolicyState state);

/** One tick's worth of pressure inputs for one tenant. */
struct AdmissionSignals
{
    /**
     * False when the inputs could not be trusted this tick (publisher
     * never ticked, snapshot seq unchanged since the last poll): the
     * tick then counts as zero pressure — fail open.
     */
    bool fresh = true;

    /** Windowed queued-time p99 (submit -> first launch), ns. */
    std::uint64_t queuedP99Ns = 0;

    /** Windowed violations / finishes, in [0, 1]. */
    double violationRatio = 0;

    /** Admitted-but-unfinished requests (backlog incl. running). */
    std::int64_t depth = 0;
};

/** Thresholds and hysteresis constants of the state machine. */
struct AdmissionParams
{
    // High/low threshold pairs. Pressure is HIGH when any signal is
    // at/above its high mark, LOW when every signal is at/below its
    // low mark, and in the hysteresis band otherwise (state holds).
    std::uint64_t queuedHighNs = 1000000; ///< 1 ms windowed queued p99
    std::uint64_t queuedLowNs = 200000;
    double violationHigh = 0.5;
    double violationLow = 0.05;
    std::int64_t depthHigh = 64;
    std::int64_t depthLow = 16;

    /** Consecutive HIGH ticks before severity may step up. */
    int escalateAfter = 2;

    /** Consecutive LOW ticks before severity may step down. */
    int relaxAfter = 4;

    /** THROTTLE duty denominator: BE admitted duty-in-dutySteps. */
    std::uint32_t dutySteps = 8;

    /** SHED_LC probe rate: 1-in-lcTrickle LC requests admitted. */
    std::uint32_t lcTrickle = 64;
};

/** Exact per-tenant accounting (submitted == admitted + rejected). */
struct TenantAdmissionStats
{
    PolicyState state = PolicyState::Admit;
    std::uint32_t duty = 0;          ///< BE slots per dutySteps
    std::uint64_t ticks = 0;         ///< onTick calls observed
    std::uint64_t stateChanges = 0;  ///< severity transitions
    std::uint64_t submittedLc = 0;
    std::uint64_t submittedBe = 0;
    std::uint64_t admittedLc = 0;
    std::uint64_t admittedBe = 0;
    std::uint64_t rejectedLc = 0;
    std::uint64_t rejectedBe = 0;

    std::uint64_t submitted() const { return submittedLc + submittedBe; }
    std::uint64_t admitted() const { return admittedLc + admittedBe; }
    std::uint64_t rejected() const { return rejectedLc + rejectedBe; }
};

/**
 * The controller: per-tenant state machines plus the telemetry
 * glue. decide() is safe from any submit thread; onTick()/
 * onSnapshot()/exportMetrics() belong to one stepping thread (the
 * publisher's sampler in the real runtime, the event loop in the sim).
 */
class AdmissionController
{
  public:
    explicit AdmissionController(AdmissionParams params = {});
    ~AdmissionController();

    AdmissionController(const AdmissionController &) = delete;
    AdmissionController &operator=(const AdmissionController &) = delete;

    /**
     * Gate one submission. Counts the decision exactly (conservation:
     * submitted == admitted + rejected per tenant per class).
     * @param cls 0 = latency-critical, nonzero = best-effort
     * @return true to admit, false to reject
     */
    bool decide(std::uint32_t tenant, int cls);

    /** Step one tenant's state machine with this tick's signals. */
    void onTick(std::uint32_t tenant, const AdmissionSignals &signals);

    /** Pressure classification: 0 = low, 1 = band (hold), 2 = high. */
    static int pressure(const AdmissionSignals &signals,
                        const AdmissionParams &params);

    /** Current state (Admit for a tenant never seen). */
    PolicyState state(std::uint32_t tenant) const;

    /** Exact counters snapshot (zeros for a tenant never seen). */
    TenantAdmissionStats tenantStats(std::uint32_t tenant) const;

    /** Tenants with any state (decided or ticked at least once). */
    std::vector<std::uint32_t> tenants() const;

    const AdmissionParams &params() const { return params_; }

    /**
     * Publish per-tenant control series into a metrics registry:
     * `control.state/tN`, `control.duty/tN` gauges and
     * `control.admitted.{lc,be}/tN`, `control.rejected.{lc,be}/tN`
     * counters (delta-fed; single stepping thread).
     */
    void exportMetrics(obs::MetricsRegistry &registry);

#ifndef PREEMPT_OBS_DISABLED
    /**
     * Derive one tenant's signals from a published snapshot: windowed
     * queued p99 and violation ratio from its span entry, depth from
     * its `runtime[/tN].in_flight` gauge. The ratio is computed over
     * windowed finishes only, so counter resets (StatTracker
     * re-basing) cannot spike it.
     */
    static AdmissionSignals
    signalsFromSnapshot(const obs::TelemetrySnapshot &snap,
                        std::uint32_t tenant);

    /**
     * Step every known tenant (plus tenants that appear in the
     * snapshot's span section) from one snapshot. A snapshot with
     * seq 0 (never published) or an unchanged seq (stale) steps all
     * tenants with fresh = false — fail open.
     */
    void onSnapshot(const obs::TelemetrySnapshot &snap);

    /**
     * Close the loop against a live publisher: registers a telemetry
     * sampler that polls the previous published snapshot, steps the
     * policies, and exports the control series into the publisher's
     * registry on every tick. Idempotent per controller; detached by
     * the destructor.
     */
    void attachPublisher(obs::TelemetryPublisher *publisher);

    /** Unregister the sampler (safe when never attached). */
    void detachPublisher();
#endif

  private:
    struct Tenant
    {
        // Read by decide() on submit threads, written by the stepping
        // thread: atomics keep the cross-thread pieces race-free.
        std::atomic<std::uint8_t> state{0};
        std::atomic<std::uint32_t> duty{0}; ///< set on construction
        std::atomic<std::uint64_t> beSeq{0};
        std::atomic<std::uint64_t> lcSeq{0};
        std::atomic<std::uint64_t> submittedLc{0};
        std::atomic<std::uint64_t> submittedBe{0};
        std::atomic<std::uint64_t> admittedLc{0};
        std::atomic<std::uint64_t> admittedBe{0};
        std::atomic<std::uint64_t> rejectedLc{0};
        std::atomic<std::uint64_t> rejectedBe{0};

        // Stepping-thread-only state.
        std::uint64_t ticks = 0;
        std::uint64_t stateChanges = 0;
        int highStreak = 0;
        int lowStreak = 0;

        // Cumulative values already pushed into exported counters
        // (delta feed; stepping thread only).
        std::uint64_t pubAdmittedLc = 0;
        std::uint64_t pubAdmittedBe = 0;
        std::uint64_t pubRejectedLc = 0;
        std::uint64_t pubRejectedBe = 0;
    };

    Tenant &tenantRef(std::uint32_t id);
    void setState(Tenant &t, PolicyState next);

    AdmissionParams params_;
    mutable std::mutex mutex_; ///< guards tenants_ map shape
    std::map<std::uint32_t, std::unique_ptr<Tenant>> tenants_;

#ifndef PREEMPT_OBS_DISABLED
    obs::TelemetryPublisher *publisher_ = nullptr;
    std::uint64_t samplerId_ = 0;
    std::uint64_t lastSeq_ = 0;
#endif
};

} // namespace preempt::control

#endif // PREEMPT_CONTROL_ADMISSION_HH
